package corrfuse

import (
	"fmt"

	"corrfuse/internal/baseline"
	"corrfuse/internal/cluster"
	"corrfuse/internal/core"
	"corrfuse/internal/quality"
	"corrfuse/internal/triple"
)

// scorer is the common surface of all algorithms.
type scorer interface {
	Name() string
	Probability(id triple.TripleID) float64
	Score(ids []triple.TripleID) []float64
}

// Fuser scores triples with correctness probabilities using the configured
// method. Build one with New; it is immutable and safe for concurrent use
// after construction. Freeze (called implicitly by Fuse) computes every
// probability once and turns the whole read surface into O(1) index reads.
type Fuser struct {
	d    *Dataset
	opts Options
	alg  scorer

	clusters [][]SourceID
	est      *quality.Estimator

	// fr is the frozen score index; see Freeze in snapshot.go.
	fr frozen
}

// New builds a Fuser over d. Supervised methods (PrecRec and the PrecRecCorr
// family) require gold labels on a training subset of d (Options.Train, or
// all labeled triples); unsupervised baselines do not.
func New(d *Dataset, opts Options) (*Fuser, error) {
	if d == nil {
		return nil, fmt.Errorf("corrfuse: nil dataset")
	}
	if opts.Alpha == 0 {
		opts.Alpha = 0.5
	}
	if opts.Alpha <= 0 || opts.Alpha >= 1 {
		return nil, fmt.Errorf("corrfuse: Alpha %v outside (0,1)", opts.Alpha)
	}
	if opts.Scope == nil {
		opts.Scope = ScopeGlobal{}
	}
	if opts.ElasticLevel == 0 {
		opts.ElasticLevel = 3
	}
	if opts.UnionK == 0 {
		opts.UnionK = 50
	}
	if opts.Seed == 0 {
		opts.Seed = 1
	}

	f := &Fuser{d: d, opts: opts}
	switch opts.Method {
	case UnionK:
		alg, err := baseline.NewUnionKScoped(d, opts.UnionK, opts.Scope)
		if err != nil {
			return nil, err
		}
		f.alg = alg
	case ThreeEstimates:
		f.alg = baseline.NewThreeEstimates(d, baseline.ThreeEstimatesOptions{
			Iterations: opts.Iterations,
			Scope:      opts.Scope,
		})
	case LTM:
		f.alg = baseline.NewLTM(d, baseline.LTMOptions{
			Iterations: opts.LTMIterations,
			BurnIn:     opts.LTMBurnIn,
			Seed:       opts.Seed,
			Scope:      opts.Scope,
		})
	case PrecRec, PrecRecCorr, PrecRecCorrAggressive, PrecRecCorrElastic:
		est, err := quality.NewEstimator(d, quality.Options{
			Alpha:     opts.Alpha,
			Scope:     opts.Scope,
			Smoothing: opts.Smoothing,
			Train:     opts.Train,
			Fallback:  opts.qualityFallback,
		})
		if err != nil {
			return nil, err
		}
		f.est = est
		cfg := core.Config{Dataset: d, Params: est, Scope: opts.Scope}
		if opts.Method != PrecRec {
			clusters, err := f.resolveClusters(est)
			if err != nil {
				return nil, err
			}
			f.clusters = clusters
			cfg.Clusters = clusters
		}
		var alg scorer
		switch opts.Method {
		case PrecRec:
			alg, err = core.NewPrecRec(cfg)
		case PrecRecCorr:
			alg, err = core.NewExact(cfg)
		case PrecRecCorrAggressive:
			alg, err = core.NewAggressive(cfg)
		case PrecRecCorrElastic:
			alg, err = core.NewElastic(cfg, opts.ElasticLevel)
		}
		if err != nil {
			return nil, err
		}
		f.alg = alg
	default:
		return nil, fmt.Errorf("corrfuse: unknown method %v", opts.Method)
	}
	return f, nil
}

// resolveClusters applies the clustering policy.
func (f *Fuser) resolveClusters(est *quality.Estimator) ([][]SourceID, error) {
	n := f.d.NumSources()
	copts := cluster.Options{
		Threshold:      f.opts.ClusterThreshold,
		MaxClusterSize: f.opts.MaxClusterSize,
	}
	switch f.opts.Clustering {
	case ClusterNever:
		if f.opts.Method == PrecRecCorr && n > core.MaxExactCluster {
			return nil, fmt.Errorf("corrfuse: %d sources exceed the exact model's limit of %d; enable clustering or use the elastic method", n, core.MaxExactCluster)
		}
		return nil, nil // single cluster (core default)
	case ClusterAlways:
		return cluster.Cluster(est, copts), nil
	default: // ClusterAuto
		if n <= core.MaxExactCluster && f.opts.Method == PrecRecCorr {
			return nil, nil
		}
		if n <= 16 {
			// Small enough for any method without clustering.
			return nil, nil
		}
		return cluster.Cluster(est, copts), nil
	}
}

// MethodName returns the descriptive name of the configured algorithm.
func (f *Fuser) MethodName() string { return f.alg.Name() }

// Clusters returns the correlation clusters in effect (nil when the method
// runs over a single cluster).
func (f *Fuser) Clusters() [][]SourceID { return f.clusters }

// Probability returns Pr(t true | observations) for a triple already present
// in the dataset. ok is false when the triple is unknown. After Freeze the
// value is an O(1) read from the frozen score index.
func (f *Fuser) Probability(t Triple) (p float64, ok bool) {
	id, ok := f.d.TripleID(t)
	if !ok {
		return 0, false
	}
	return f.ProbabilityByID(id), true
}

// ProbabilityByID returns Pr(t true | observations) for a triple ID. After
// Freeze the value is an O(1) read from the frozen score index.
func (f *Fuser) ProbabilityByID(id TripleID) float64 {
	if p, _, ok := f.fr.lookup(id); ok {
		return p
	}
	return f.alg.Probability(id)
}

// Score computes probabilities for the given triple IDs. After Freeze every
// provided ID is an O(1) index read; before, the core algorithms score with
// Options.Parallelism workers.
func (f *Fuser) Score(ids []TripleID) []float64 {
	if f.fr.ready.Load() {
		return f.fr.score(ids, f.scoreModel)
	}
	return f.scoreModel(ids)
}

// scoreModel runs the fusion algorithm over the IDs (the pre-freeze path).
func (f *Fuser) scoreModel(ids []TripleID) []float64 {
	if alg, ok := f.alg.(core.Algorithm); ok && f.opts.Parallelism != 1 {
		return core.ParallelScore(alg, ids, f.opts.Parallelism)
	}
	return f.alg.Score(ids)
}

// Decide reports whether the triple is accepted as true (probability > 0.5;
// for UnionK, the K% provider rule).
func (f *Fuser) Decide(t Triple) (accepted, known bool) {
	id, ok := f.d.TripleID(t)
	if !ok {
		return false, false
	}
	return f.decideID(id), true
}

func (f *Fuser) decideID(id TripleID) bool {
	if _, accepted, ok := f.fr.lookup(id); ok {
		return accepted
	}
	if u, ok := f.alg.(*baseline.UnionK); ok {
		return u.Decide(id)
	}
	return f.alg.Probability(id) > 0.5
}

// decideScored is decideID for a triple whose probability is already
// computed, sparing the probability lookup for the threshold methods.
func (f *Fuser) decideScored(id TripleID, p float64) bool {
	if u, ok := f.alg.(*baseline.UnionK); ok {
		return u.Decide(id)
	}
	return p > 0.5
}

// Fuse scores every provided triple and returns the accepted set R — the
// paper's high-quality output {t : t ∈ O ∧ t is true} — together with the
// full ranking. The first call freezes the score index (see Freeze) and
// ranks it; every subsequent call returns copies of the frozen ranking
// without rescoring or re-sorting.
func (f *Fuser) Fuse() (*Result, error) {
	f.Freeze()
	return f.fr.rankedResult(f.d), nil
}
