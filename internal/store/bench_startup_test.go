package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// Startup (cold-load) benchmarks at the acceptance-criterion scale: a
// 52k-triple store loaded from the JSONL text format versus the CFSN
// binary snapshot. CI records both in BENCH_startup.json and fails the
// bench job unless the binary path is >= 10x faster.

// startupBench holds the files both benchmarks load, built once: the
// generator and the two saves dominate a single load many times over.
var startupBench struct {
	once       sync.Once
	dir        string
	entries    int
	jsonlBytes int64
	binBytes   int64
	jsonlPath  string
	binPath    string
	tbFatal    error
}

// startupStore synthesizes the 52k-triple store the cold-start criterion
// names: 13000 subjects x 4 predicates over 144 sources (the
// shardBenchDataset shape), with fused probabilities on every entry —
// exactly what a persist() writes after a rebuild.
func startupStore() *Store {
	const groups, subjects, preds = 48, 13000, 4
	s := New()
	for i := 0; i < subjects; i++ {
		sub := fmt.Sprintf("entity-%05d", i)
		for p := 0; p < preds; p++ {
			t := mk(sub, fmt.Sprintf("p%d", p), "v")
			g := (i + p) % groups
			e := Entry{Triple: t, Sources: []string{
				fmt.Sprintf("copierA-%d", g), fmt.Sprintf("copierB-%d", g),
			}}
			if n := i*preds + p; n%3 == 0 {
				e.Sources = append(e.Sources, fmt.Sprintf("indep-%d", g))
			}
			if n := i*preds + p; n%10 < 4 {
				if n%5 == 4 {
					e.Label = "false"
				} else {
					e.Label = "true"
				}
			}
			s.Put(e)
			s.SetFusion(t, float64(i%1000)/1000+0.0005, (i+p)%3 != 0)
		}
	}
	return s
}

// startupFiles writes the store once in both formats and returns the paths.
func startupFiles(b *testing.B) (jsonlPath, binPath string) {
	b.Helper()
	startupBench.once.Do(func() {
		dir, err := os.MkdirTemp("", "startup-bench-*")
		if err != nil {
			startupBench.tbFatal = err
			return
		}
		startupBench.dir = dir
		st := startupStore()
		startupBench.entries = st.Len()
		startupBench.jsonlPath = filepath.Join(dir, "store.jsonl")
		startupBench.binPath = BinaryPath(startupBench.jsonlPath)
		if err := st.Save(startupBench.jsonlPath); err != nil {
			startupBench.tbFatal = err
			return
		}
		if err := st.SaveBinary(startupBench.binPath); err != nil {
			startupBench.tbFatal = err
			return
		}
		if fi, err := os.Stat(startupBench.jsonlPath); err == nil {
			startupBench.jsonlBytes = fi.Size()
		}
		if fi, err := os.Stat(startupBench.binPath); err == nil {
			startupBench.binBytes = fi.Size()
		}
	})
	if startupBench.tbFatal != nil {
		b.Fatal(startupBench.tbFatal)
	}
	return startupBench.jsonlPath, startupBench.binPath
}

// BenchmarkStartupJSONL is the pre-snapshot cold start: parse the full
// JSONL store before the first byte can be served.
func BenchmarkStartupJSONL(b *testing.B) {
	jsonlPath, _ := startupFiles(b)
	b.SetBytes(startupBench.jsonlBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := Load(jsonlPath)
		if err != nil {
			b.Fatal(err)
		}
		if st.Len() != startupBench.entries {
			b.Fatalf("loaded %d entries, want %d", st.Len(), startupBench.entries)
		}
	}
	b.ReportMetric(float64(startupBench.entries), "entries")
}

// BenchmarkStartupBinary is the snapshot cold start: mmap + header/CRC
// validation + index wiring straight off the mapping.
func BenchmarkStartupBinary(b *testing.B) {
	_, binPath := startupFiles(b)
	b.SetBytes(startupBench.binBytes)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, _, err := LoadBinary(binPath)
		if err != nil {
			b.Fatal(err)
		}
		if st.Len() != startupBench.entries {
			b.Fatalf("loaded %d entries, want %d", st.Len(), startupBench.entries)
		}
	}
	b.ReportMetric(float64(startupBench.entries), "entries")
}

// TestBinaryColdStartSpeedup is the local (non-CI) form of the >= 10x
// acceptance criterion: best-of-3 binary load vs best-of-3 JSONL load on
// the 52k-triple store. Skipped in -short runs; CI enforces the same
// bound from BENCH_startup.json where the timings are stable.
func TestBinaryColdStartSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("cold-start ratio measurement skipped in -short mode")
	}
	dir := t.TempDir()
	jsonlPath := filepath.Join(dir, "store.jsonl")
	st := startupStore()
	if err := st.Save(jsonlPath); err != nil {
		t.Fatal(err)
	}
	if err := st.SaveBinary(BinaryPath(jsonlPath)); err != nil {
		t.Fatal(err)
	}
	best := func(load func() error) time.Duration {
		bestD := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if err := load(); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	jsonl := best(func() error { _, err := Load(jsonlPath); return err })
	bin := best(func() error { _, _, err := LoadBinary(BinaryPath(jsonlPath)); return err })
	t.Logf("cold start on %d entries: jsonl %v, binary %v (%.1fx)",
		st.Len(), jsonl, bin, float64(jsonl)/float64(bin))
	if bin*10 > jsonl {
		t.Errorf("binary cold start %v is not >= 10x faster than JSONL %v", bin, jsonl)
	}
}
