//go:build unix

package store

import (
	"fmt"
	"math"
	"os"
	"syscall"
)

// mapFile memory-maps a file read-only. The second return reports whether
// the bytes are an mmap (true) or a heap copy (false, used for empty
// files and non-unix builds); mapped bytes must be released with
// unmapFile if the caller rejects them.
func mapFile(path string) ([]byte, bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	size := fi.Size()
	if size == 0 {
		// mmap rejects zero-length mappings; an empty snapshot fails
		// validation anyway, so hand back an empty heap slice.
		return []byte{}, false, nil
	}
	if size > math.MaxInt32 && ^uint(0)>>32 == 0 || size < 0 {
		return nil, false, fmt.Errorf("store: %s: %d bytes does not fit the address space", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return nil, false, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	return data, true, nil
}

func unmapFile(data []byte) {
	//lint:ignore errswallow releasing a rejected mapping; nothing to do on failure beyond leaking pages
	syscall.Munmap(data)
}
