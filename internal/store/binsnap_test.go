package store

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"corrfuse/internal/triple"
)

// snapStore builds a store with the shapes that stress the binary format:
// shared strings across entries, empty labels, zero-source fusion interns,
// denormal and tie probabilities.
func snapStore() *Store {
	s := New()
	for i := 0; i < 64; i++ {
		e := Entry{
			Triple: triple.Triple{
				Subject:   fmt.Sprintf("subject-%d", i%8),
				Predicate: fmt.Sprintf("pred-%d", i%3),
				Object:    fmt.Sprintf("object-%d", i),
			},
			Sources: []string{fmt.Sprintf("src-%d", i%5), "shared-source"},
		}
		if i%4 == 0 {
			e.Label = "true"
		} else if i%4 == 1 {
			e.Label = "false"
		}
		s.Put(e)
		if i%2 == 0 {
			s.SetFusion(e.Triple, float64(i%7)/7.0, i%3 == 0)
		}
	}
	// A fusion-only intern (no provenance) and extreme probabilities.
	s.SetFusion(triple.Triple{Subject: "ghost", Predicate: "p", Object: "o"}, 5e-324, false)
	s.SetFusion(triple.Triple{Subject: "subject-0", Predicate: "pred-0", Object: "object-0"}, 0.25, true)
	s.SetFusion(triple.Triple{Subject: "subject-0", Predicate: "pred-0", Object: "object-8"}, 0.25, true)
	s.Put(Entry{Triple: triple.Triple{Subject: "uni \u00e9", Predicate: "p\tq", Object: "emoji \U0001f600"},
		Sources: []string{""}, Label: "weird"})
	return s
}

// sameEntries asserts a and b store identical entry sets (probability
// compared bit-exactly) and identical secondary-index membership.
func sameEntries(t *testing.T, a, b *Store) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("Len mismatch: %d vs %d", a.Len(), b.Len())
	}
	for _, e := range a.entries {
		got, ok := b.Get(e.Triple)
		if !ok {
			t.Fatalf("lost %v", e.Triple)
		}
		if math.Float64bits(got.Probability) != math.Float64bits(e.Probability) {
			t.Fatalf("%v probability changed: %x vs %x", e.Triple,
				math.Float64bits(e.Probability), math.Float64bits(got.Probability))
		}
		got.Probability, e.Probability = 0, 0
		if len(got.Sources) == 0 && len(e.Sources) == 0 {
			got.Sources, e.Sources = nil, nil
		}
		if !reflect.DeepEqual(got, e) {
			t.Fatalf("%v changed:\n  before %+v\n  after  %+v", e.Triple, e, got)
		}
	}
	// Secondary indexes agree as sets (the binary load pre-ranks them,
	// insertion order is not preserved).
	for name, pair := range map[string][2]map[string][]int{
		"bySubject":   {a.bySubject, b.bySubject},
		"byPredicate": {a.byPredicate, b.byPredicate},
		"bySource":    {a.bySource, b.bySource},
	} {
		if len(pair[0]) != len(pair[1]) {
			t.Fatalf("%s key count: %d vs %d", name, len(pair[0]), len(pair[1]))
		}
		for k, idxs := range pair[0] {
			keys := func(s *Store, idxs []int) []string {
				out := make([]string, len(idxs))
				for i, j := range idxs {
					out[i] = s.entries[j].Triple.Key()
				}
				sort.Strings(out)
				return out
			}
			if !reflect.DeepEqual(keys(a, idxs), keys(b, pair[1][k])) {
				t.Fatalf("%s[%q] membership differs", name, k)
			}
		}
	}
	// No version comparison here: SetFusion interns entries without
	// advancing the version, so any reload — JSONL or binary — can land
	// on a different count than the live store it was saved from.
	// TestBinaryVersionMatchesJSONLLoad pins the invariant that matters.
}

// TestBinaryVersionMatchesJSONLLoad: a binary load must report the same
// data version a JSONL load of the same store would, so downstream
// version-compare logic (refreshers, shard trackers) behaves identically
// whichever format served the cold start.
func TestBinaryVersionMatchesJSONLLoad(t *testing.T) {
	s := snapStore()
	var jbuf, bbuf bytes.Buffer
	if err := s.Write(&jbuf); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBinary(&bbuf); err != nil {
		t.Fatal(err)
	}
	viaJSONL := New()
	if err := viaJSONL.Read(bytes.NewReader(jbuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	viaBinary, err := loadBinary(bbuf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if viaBinary.Version() != viaJSONL.Version() {
		t.Fatalf("binary load version %d, JSONL load version %d", viaBinary.Version(), viaJSONL.Version())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	s := snapStore()
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := loadBinary(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	sameEntries(t, s, got)
}

func TestBinaryDeterministic(t *testing.T) {
	s := snapStore()
	var a, b bytes.Buffer
	if err := s.WriteBinary(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two writes of the same store differ")
	}
}

func TestBinaryPostingsRanked(t *testing.T) {
	s := snapStore()
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := loadBinary(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []map[string][]int{got.bySubject, got.byPredicate, got.bySource} {
		for k, idxs := range m {
			for i := 1; i < len(idxs); i++ {
				a, b := &got.entries[idxs[i-1]], &got.entries[idxs[i]]
				if a.Probability < b.Probability ||
					(a.Probability == b.Probability && a.Triple.Key() > b.Triple.Key()) {
					t.Fatalf("posting %q not ranked at position %d", k, i)
				}
			}
		}
	}
}

func TestBinarySaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.jsonl")
	s := snapStore()
	if err := s.SaveBinary(BinaryPath(path)); err != nil {
		t.Fatal(err)
	}
	got, info, err := LoadBinary(BinaryPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if info.Entries != s.Len() || info.Bytes <= 0 {
		t.Fatalf("info = %+v, want %d entries", info, s.Len())
	}
	sameEntries(t, s, got)
}

func TestLoadPreferred(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.jsonl")
	s := snapStore()
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}

	// No binary snapshot: quiet JSONL fallback, no reason recorded.
	got, info, err := LoadPreferred(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Format != "jsonl" || info.FallbackReason != "" {
		t.Fatalf("missing snapshot: info = %+v", info)
	}
	sameEntries(t, s, got)

	// Valid binary snapshot: preferred.
	if err := s.SaveBinary(BinaryPath(path)); err != nil {
		t.Fatal(err)
	}
	got, info, err = LoadPreferred(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Format != "binary" || info.Bytes <= 0 {
		t.Fatalf("valid snapshot: info = %+v", info)
	}
	sameEntries(t, s, got)

	// Corrupt snapshot: loud JSONL fallback.
	raw, err := os.ReadFile(BinaryPath(path))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(BinaryPath(path), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, info, err = LoadPreferred(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Format != "jsonl" || info.FallbackReason == "" {
		t.Fatalf("corrupt snapshot: info = %+v", info)
	}
	sameEntries(t, s, got)
}

// TestBinaryCorruptionDetected flips, truncates and tears the snapshot in
// every section and asserts the loader reports ErrBadSnapshot — loudly,
// never a panic, never a silently wrong store.
func TestBinaryCorruptionDetected(t *testing.T) {
	s := snapStore()
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	check := func(name string, data []byte) {
		t.Helper()
		st, err := loadBinary(data)
		if err == nil {
			t.Fatalf("%s: corrupt snapshot loaded (%d entries)", name, st.Len())
		}
		if !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("%s: error %v does not wrap ErrBadSnapshot", name, err)
		}
	}

	// Truncations at every section boundary and mid-section.
	for _, n := range []int{0, 3, binHeaderLen - 1, binHeaderLen, len(good) / 3, len(good) / 2, len(good) - 1} {
		check(fmt.Sprintf("truncate-to-%d", n), good[:n])
	}
	// Single bit flips spread across the file (header, arena, entries,
	// postings, CRC footer).
	for i := 0; i < len(good); i += len(good)/37 + 1 {
		bad := append([]byte(nil), good...)
		bad[i] ^= 0x01
		check(fmt.Sprintf("bitflip-at-%d", i), bad)
	}
	// A torn write: valid prefix, zero tail (what a crash mid-write could
	// leave if rename discipline were violated).
	torn := append([]byte(nil), good...)
	for i := len(torn) / 2; i < len(torn); i++ {
		torn[i] = 0
	}
	check("torn-tail", torn)
	// Trailing garbage.
	check("trailing-garbage", append(append([]byte(nil), good...), 0xde, 0xad))
	// Wrong magic / version.
	wrongMagic := append([]byte(nil), good...)
	copy(wrongMagic, "XFSN")
	check("bad-magic", wrongMagic)
	wrongVer := append([]byte(nil), good...)
	wrongVer[4] = 0xee
	check("bad-version", wrongVer)
}

func TestBinaryEmptyStore(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := loadBinary(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Version() != 0 {
		t.Fatalf("empty store round trip: len=%d version=%d", got.Len(), got.Version())
	}
}

// FuzzLoadBinary feeds arbitrary bytes to the binary loader: it must
// never panic, and anything it accepts must survive a re-serialize /
// re-load round trip identically.
func FuzzLoadBinary(f *testing.F) {
	var seed bytes.Buffer
	if err := snapStore().WriteBinary(&seed); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	// A minimal one-entry snapshot keeps engine-side minimization cheap.
	tiny := New()
	tiny.Put(Entry{Triple: triple.Triple{Subject: "s", Predicate: "p", Object: "o"}, Sources: []string{"a"}})
	var tinyBuf bytes.Buffer
	if err := tiny.WriteBinary(&tinyBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(tinyBuf.Bytes())
	f.Add([]byte("CFSN"))
	f.Add([]byte{})
	trunc := seed.Bytes()
	f.Add(trunc[:len(trunc)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := loadBinary(data)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := st.WriteBinary(&buf); err != nil {
			t.Fatalf("accepted store failed to serialize: %v", err)
		}
		st2, err := loadBinary(buf.Bytes())
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if st2.Len() != st.Len() {
			t.Fatalf("round trip changed Len: %d -> %d", st.Len(), st2.Len())
		}
		for _, e := range st.entries {
			got, ok := st2.Get(e.Triple)
			if !ok {
				t.Fatalf("round trip lost %v", e.Triple)
			}
			if math.Float64bits(got.Probability) != math.Float64bits(e.Probability) ||
				got.Label != e.Label || got.Accepted != e.Accepted ||
				!reflect.DeepEqual(got.Sources, e.Sources) {
				t.Fatalf("round trip changed %v", e.Triple)
			}
		}
	})
}

// FuzzJSONLToBinary is the cross-format oracle: any store the JSONL
// reader accepts must convert to a binary snapshot and back without
// losing an entry, a source, a label, or a bit of probability.
func FuzzJSONLToBinary(f *testing.F) {
	f.Add([]byte(`{"triple":{"Subject":"s","Predicate":"p","Object":"o"},"sources":["a","b"],"label":"true","probability":0.25,"accepted":true}`))
	f.Add([]byte("{\"triple\":{\"Subject\":\"s\",\"Predicate\":\"p\",\"Object\":\"o\"}}\n{\"triple\":{\"Subject\":\"t\",\"Predicate\":\"p\",\"Object\":\"o\"},\"sources\":[\"x\"]}\n"))
	f.Add([]byte(`{"triple":{"Subject":"","Predicate":"","Object":"o"},"sources":[""]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s := New()
		if err := s.Read(bytes.NewReader(data)); err != nil {
			return
		}
		var buf bytes.Buffer
		if err := s.WriteBinary(&buf); err != nil {
			t.Fatalf("JSONL-accepted store failed binary encode: %v", err)
		}
		got, err := loadBinary(buf.Bytes())
		if err != nil {
			t.Fatalf("binary round trip rejected: %v", err)
		}
		sameEntries(t, s, got)
	})
}
