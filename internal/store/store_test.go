package store

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"corrfuse/internal/dataset"
	"corrfuse/internal/shard"
	"corrfuse/internal/triple"
)

func mk(s, p, o string) triple.Triple {
	return triple.Triple{Subject: s, Predicate: p, Object: o}
}

func TestPutGetMerge(t *testing.T) {
	s := New()
	tr := mk("Obama", "profession", "president")
	s.Put(Entry{Triple: tr, Sources: []string{"S1"}})
	s.Put(Entry{Triple: tr, Sources: []string{"S2", "S1"}, Label: "true"})
	e, ok := s.Get(tr)
	if !ok {
		t.Fatal("entry missing")
	}
	if len(e.Sources) != 2 || e.Sources[0] != "S1" || e.Sources[1] != "S2" {
		t.Errorf("sources = %v", e.Sources)
	}
	if e.Label != "true" {
		t.Errorf("label = %q", e.Label)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if _, ok := s.Get(mk("x", "y", "z")); ok {
		t.Error("missing triple reported present")
	}
}

func TestIndexes(t *testing.T) {
	s := New()
	s.Put(Entry{Triple: mk("Obama", "profession", "president"), Sources: []string{"A"}})
	s.Put(Entry{Triple: mk("Obama", "spouse", "Michelle"), Sources: []string{"B"}})
	s.Put(Entry{Triple: mk("Bush", "profession", "president"), Sources: []string{"A"}})

	if got := s.BySubject("Obama"); len(got) != 2 {
		t.Errorf("BySubject(Obama) = %d entries", len(got))
	}
	if got := s.ByPredicate("profession"); len(got) != 2 {
		t.Errorf("ByPredicate(profession) = %d entries", len(got))
	}
	if got := s.BySource("A"); len(got) != 2 {
		t.Errorf("BySource(A) = %d entries", len(got))
	}
	if got := s.BySource("C"); len(got) != 0 {
		t.Errorf("BySource(C) = %d entries", len(got))
	}
}

func TestAccepted(t *testing.T) {
	s := New()
	s.Put(Entry{Triple: mk("a", "p", "1"), Accepted: true, Probability: 0.9})
	s.Put(Entry{Triple: mk("a", "p", "2"), Probability: 0.2})
	acc := s.Accepted()
	if len(acc) != 1 || acc[0].Triple.Object != "1" {
		t.Errorf("Accepted = %v", acc)
	}
}

func TestDatasetRoundTrip(t *testing.T) {
	d := dataset.Obama()
	s := FromDataset(d)
	if s.Len() != 10 {
		t.Fatalf("store Len = %d, want 10", s.Len())
	}
	back := s.Dataset()
	if back.NumTriples() != d.NumTriples() || back.NumSources() != d.NumSources() {
		t.Fatalf("round trip shape mismatch")
	}
	nt1, nf1 := d.CountLabels()
	nt2, nf2 := back.CountLabels()
	if nt1 != nt2 || nf1 != nf2 {
		t.Errorf("labels (%d,%d) vs (%d,%d)", nt1, nf1, nt2, nf2)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s := FromDataset(dataset.Obama())
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back := New()
	if err := back.Read(&buf); err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("Len %d vs %d", back.Len(), s.Len())
	}
	tr := mk("Obama", "profession", "president")
	a, _ := s.Get(tr)
	b, ok := back.Get(tr)
	if !ok || len(a.Sources) != len(b.Sources) || a.Label != b.Label {
		t.Errorf("entry mismatch: %v vs %v", a, b)
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	s := New()
	if err := s.Read(bytes.NewBufferString("{bad json\n")); err == nil {
		t.Error("garbage should fail")
	}
}

func TestSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.jsonl")
	s := FromDataset(dataset.Obama())
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() {
		t.Errorf("Len %d vs %d", back.Len(), s.Len())
	}
	if _, err := Load(filepath.Join(dir, "missing.jsonl")); err == nil {
		t.Error("missing file should fail")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr := mk("e", "p", string(rune('a'+i%26)))
				s.Put(Entry{Triple: tr, Sources: []string{"S"}})
				s.Get(tr)
				s.BySubject("e")
				s.Len()
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 26 {
		t.Errorf("Len = %d, want 26", s.Len())
	}
}

// TestSetFusion: unlike Put's merge, SetFusion is authoritative — a batch
// re-fusion overwrites the stored probability and acceptance even when the
// new values are zero/false, so demotions stick.
func TestSetFusion(t *testing.T) {
	s := New()
	tr := mk("Obama", "born", "Kenya")
	s.Put(Entry{Triple: tr, Sources: []string{"S1"}, Probability: 0.99, Accepted: true})

	// Put cannot demote: zero probability and false acceptance are
	// ignored by the merge.
	s.Put(Entry{Triple: tr, Probability: 0, Accepted: false})
	if e, _ := s.Get(tr); e.Probability != 0.99 || !e.Accepted {
		t.Fatalf("Put merge changed fusion state: %+v", e)
	}

	s.SetFusion(tr, 0.07, false)
	e, _ := s.Get(tr)
	if e.Probability != 0.07 || e.Accepted {
		t.Fatalf("SetFusion did not demote: %+v", e)
	}
	if len(e.Sources) != 1 || e.Label != "" {
		t.Fatalf("SetFusion clobbered provenance: %+v", e)
	}
	s.SetFusion(tr, 0, false)
	if e, _ := s.Get(tr); e.Probability != 0 {
		t.Fatalf("SetFusion(0) did not stick: %+v", e)
	}

	// SetFusion interns unknown triples and indexes them.
	fresh := mk("new", "p", "v")
	s.SetFusion(fresh, 0.8, true)
	if e, ok := s.Get(fresh); !ok || !e.Accepted {
		t.Fatalf("SetFusion did not intern: %+v", e)
	}
	if got := s.BySubject("new"); len(got) != 1 {
		t.Fatalf("interned triple not indexed: %v", got)
	}
}

// TestVersion: the data version advances on mutations that feed the fusion
// model and stays put for no-ops and fusion writebacks.
func TestVersion(t *testing.T) {
	s := New()
	if s.Version() != 0 {
		t.Fatalf("fresh store version = %d", s.Version())
	}
	tr := mk("a", "p", "v")
	s.Put(Entry{Triple: tr, Sources: []string{"S1"}})
	v1 := s.Version()
	if v1 == 0 {
		t.Fatal("insert did not advance the version")
	}
	s.Put(Entry{Triple: tr, Sources: []string{"S1"}}) // duplicate: no-op
	if s.Version() != v1 {
		t.Fatal("duplicate Put advanced the version")
	}
	s.Put(Entry{Triple: tr, Sources: []string{"S2"}}) // new provenance
	v2 := s.Version()
	if v2 == v1 {
		t.Fatal("new provenance did not advance the version")
	}
	s.Put(Entry{Triple: tr, Label: "true"}) // label change
	v3 := s.Version()
	if v3 == v2 {
		t.Fatal("label change did not advance the version")
	}
	s.SetFusion(tr, 0.9, true) // fusion writeback: derived state
	if s.Version() != v3 {
		t.Fatal("SetFusion advanced the data version")
	}
	s.Put(Entry{Triple: tr, Probability: 0.5, Accepted: true}) // merge of derived state
	if s.Version() != v3 {
		t.Fatal("probability merge advanced the data version")
	}
}

func TestShardVersions(t *testing.T) {
	const n = 4
	s := New()
	if s.ShardVersions() != nil {
		t.Fatal("tracking reported before TrackShards")
	}
	s.TrackShards(n)
	base := s.ShardVersions()
	if len(base) != n {
		t.Fatalf("ShardVersions = %d counters, want %d", len(base), n)
	}

	tr := mk("Obama", "profession", "president")
	home := shard.Of(tr.Subject, n)
	s.Put(Entry{Triple: tr, Sources: []string{"S1"}})
	after := s.ShardVersions()
	for i := 0; i < n; i++ {
		if i == home && after[i] == base[i] {
			t.Errorf("Put did not advance shard %d (the subject's shard)", i)
		}
		if i != home && after[i] != base[i] {
			t.Errorf("Put advanced shard %d, subject routes to %d", i, home)
		}
	}

	// No-op merge: same provenance again moves nothing.
	s.Put(Entry{Triple: tr, Sources: []string{"S1"}})
	if got := s.ShardVersions(); got[home] != after[home] {
		t.Error("duplicate provenance advanced the shard version")
	}
	// New provenance and label changes advance the home shard only.
	s.Put(Entry{Triple: tr, Sources: []string{"S2"}, Label: "true"})
	bumped := s.ShardVersions()
	if bumped[home] == after[home] {
		t.Error("new provenance + label did not advance the home shard")
	}
	// Fusion writebacks are derived state: no shard moves, even when the
	// triple is interned fresh.
	s.SetFusion(tr, 0.9, true)
	s.SetFusion(mk("new", "p", "v"), 0.4, false)
	if got := s.ShardVersions(); !equalVersions(got, bumped) {
		t.Errorf("SetFusion moved shard versions: %v -> %v", bumped, got)
	}
	// The per-shard counters decompose the global version: their sum
	// advances exactly when Version does.
	var sum uint64
	for _, v := range s.ShardVersions() {
		sum += v
	}
	if sum != s.Version() {
		t.Errorf("shard versions sum to %d, global version is %d", sum, s.Version())
	}

	// Resizing resets: captures across a TrackShards call compare changed.
	s.TrackShards(8)
	if got := s.ShardVersions(); len(got) != 8 {
		t.Fatalf("resize kept %d counters", len(got))
	}
}

func equalVersions(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSaveFsyncBeforeRename: the regression test for crash-atomic saves.
// Save must fsync the temp file BEFORE renaming it over the target (else a
// power cut can publish a truncated store) and fsync the parent directory
// after the rename (else the rename itself can vanish). The injectable
// fsync hook records the ordering.
func TestSaveFsyncBeforeRename(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.jsonl")

	// A pre-existing target with known content lets the hook detect
	// whether the rename already happened when the temp file is synced.
	old := New()
	old.Put(Entry{Triple: mk("old", "p", "v"), Sources: []string{"S1"}})
	if err := old.Save(path); err != nil {
		t.Fatal(err)
	}

	s := New()
	s.Put(Entry{Triple: mk("new", "p", "v"), Sources: []string{"S1"}})

	var calls []string
	orig := fsyncFile
	fsyncFile = func(f *os.File) error {
		calls = append(calls, f.Name())
		if strings.HasPrefix(filepath.Base(f.Name()), ".store-") {
			// The temp-file sync must precede the rename: the target
			// still holds the old content at this moment.
			reloaded, err := Load(path)
			if err != nil {
				t.Errorf("target unreadable during temp-file sync: %v", err)
			} else if _, ok := reloaded.Get(mk("old", "p", "v")); !ok {
				t.Error("temp file synced after the rename already replaced the target")
			}
		}
		return orig(f)
	}
	defer func() { fsyncFile = orig }()

	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	// old.Save above ran with the real hook; only s.Save is recorded.
	if len(calls) != 2 {
		t.Fatalf("fsync calls = %v, want [tempfile, dir]", calls)
	}
	if !strings.HasPrefix(filepath.Base(calls[0]), ".store-") {
		t.Errorf("first fsync hit %q, want the temp file", calls[0])
	}
	if calls[1] != dir {
		t.Errorf("second fsync hit %q, want the directory %q", calls[1], dir)
	}

	reloaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reloaded.Get(mk("new", "p", "v")); !ok {
		t.Fatal("saved store does not hold the new content")
	}
}

// TestSaveFsyncFailureAborts: a failed temp-file fsync must abort the save
// and leave the existing target untouched.
func TestSaveFsyncFailureAborts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.jsonl")
	old := New()
	old.Put(Entry{Triple: mk("old", "p", "v"), Sources: []string{"S1"}})
	if err := old.Save(path); err != nil {
		t.Fatal(err)
	}

	orig := fsyncFile
	fsyncFile = func(f *os.File) error { return errors.New("injected fsync failure") }
	defer func() { fsyncFile = orig }()

	s := New()
	s.Put(Entry{Triple: mk("new", "p", "v"), Sources: []string{"S1"}})
	if err := s.Save(path); err == nil {
		t.Fatal("Save succeeded despite fsync failure")
	}
	fsyncFile = orig
	reloaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reloaded.Get(mk("old", "p", "v")); !ok {
		t.Fatal("failed save clobbered the existing store")
	}
	if _, ok := reloaded.Get(mk("new", "p", "v")); ok {
		t.Fatal("failed save published new content")
	}
	if leftovers, _ := filepath.Glob(filepath.Join(dir, ".store-*")); len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
}
