package store

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzRead feeds arbitrary bytes to the JSONL loader and checks the two
// contracts external data gets: malformed input returns an error (never a
// panic), and anything the loader accepts survives a Write/Read round trip
// as the identical store — the persistence path must be lossless for
// whatever it admits.
func FuzzRead(f *testing.F) {
	f.Add([]byte(`{"triple":{"Subject":"s","Predicate":"p","Object":"o"},"sources":["a","b"],"label":"true"}`))
	f.Add([]byte(`{"triple":{"Subject":"s","Predicate":"p","Object":"o"},"probability":0.75,"accepted":true}`))
	f.Add([]byte("{\"triple\":{\"Subject\":\"s\",\"Predicate\":\"p\",\"Object\":\"o\"}}\n{\"triple\":{\"Subject\":\"s\",\"Predicate\":\"p\",\"Object\":\"o\"},\"sources\":[\"x\"]}\n"))
	f.Add([]byte(`{"triple":`))
	f.Add([]byte("\n\n\n"))
	f.Add([]byte(`{"triple":{"Subject":"\u001f","Predicate":"","Object":"o"},"sources":[""]}`))
	f.Add([]byte(`{"probability":1e999}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s := New()
		if err := s.Read(bytes.NewReader(data)); err != nil {
			return // rejected input: an error is the contract
		}
		var buf bytes.Buffer
		if err := s.Write(&buf); err != nil {
			t.Fatalf("accepted store failed to serialize: %v", err)
		}
		s2 := New()
		if err := s2.Read(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("round trip rejected by Read: %v\nserialized: %q", err, buf.Bytes())
		}
		if s2.Len() != s.Len() {
			t.Fatalf("round trip changed Len: %d -> %d", s.Len(), s2.Len())
		}
		for _, e := range s.entries {
			got, ok := s2.Get(e.Triple)
			if !ok {
				t.Fatalf("round trip lost %v", e.Triple)
			}
			if !reflect.DeepEqual(got, e) {
				t.Fatalf("round trip changed %v:\n  before %+v\n  after  %+v", e.Triple, e, got)
			}
		}
	})
}
