// Package store provides an indexed, persistent triple store: the storage
// substrate a production deployment of the fusion pipeline sits on. It keeps
// the observation data of a triple.Dataset queryable by subject, predicate
// and source, records fused results, and persists to JSON Lines.
package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"

	"corrfuse/internal/shard"
	"corrfuse/internal/triple"
)

// Entry is a stored triple with its provenance and fusion state.
type Entry struct {
	Triple      triple.Triple `json:"triple"`
	Sources     []string      `json:"sources"`
	Label       string        `json:"label,omitempty"`
	Probability float64       `json:"probability,omitempty"`
	Accepted    bool          `json:"accepted,omitempty"`
}

// Store is an in-memory indexed triple store with JSONL persistence.
// It is safe for concurrent use.
type Store struct {
	mu sync.RWMutex

	entries []Entry
	byKey   map[triple.Triple]int
	// Secondary indexes: entry positions by subject / predicate / source.
	bySubject   map[string][]int
	byPredicate map[string][]int
	bySource    map[string][]int

	// version counts data mutations — new entries, new provenance, label
	// changes — but not fusion-result writebacks (SetFusion, or Put merging
	// a probability). A re-fusion therefore reads the same version it
	// started from, letting a refresher skip rebuilds when nothing that
	// feeds the model has changed.
	version uint64

	// shardVersions, when TrackShards enabled it, splits the data version
	// by subject-hash shard: every mutation that advances version also
	// advances the counter of the shard the mutated subject routes to
	// (shard.Of — the same FNV-1a routing the sharded fusion engine uses).
	// SetFusion never advances them: fusion writebacks are derived state,
	// and the triples it interns carry no provenance or label, so they are
	// invisible to Dataset. A refresher comparing two captures of these
	// counters learns exactly which shards' local datasets may differ.
	shardVersions []uint64
}

// New returns an empty store.
func New() *Store {
	return &Store{
		byKey:       make(map[triple.Triple]int),
		bySubject:   make(map[string][]int),
		byPredicate: make(map[string][]int),
		bySource:    make(map[string][]int),
	}
}

// Put inserts or merges an entry. Provenance lists are united; a non-empty
// label, probability or acceptance overwrites the stored one.
func (s *Store) Put(e Entry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, ok := s.byKey[e.Triple]; ok {
		cur := &s.entries[i]
		for _, src := range e.Sources {
			if !containsString(cur.Sources, src) {
				cur.Sources = append(cur.Sources, src)
				sort.Strings(cur.Sources)
				s.bySource[src] = append(s.bySource[src], i)
				s.bump(e.Triple.Subject)
			}
		}
		if e.Label != "" && e.Label != cur.Label {
			cur.Label = e.Label
			s.bump(e.Triple.Subject)
		}
		if e.Probability != 0 {
			cur.Probability = e.Probability
		}
		if e.Accepted {
			cur.Accepted = true
		}
		return
	}
	i := len(s.entries)
	sort.Strings(e.Sources)
	s.entries = append(s.entries, e)
	s.byKey[e.Triple] = i
	s.bySubject[e.Triple.Subject] = append(s.bySubject[e.Triple.Subject], i)
	s.byPredicate[e.Triple.Predicate] = append(s.byPredicate[e.Triple.Predicate], i)
	for _, src := range e.Sources {
		s.bySource[src] = append(s.bySource[src], i)
	}
	s.bump(e.Triple.Subject)
}

// bump advances the data version and, when shard tracking is enabled, the
// version of the shard the subject routes to. Callers hold the write lock.
func (s *Store) bump(subject string) {
	s.version++
	if len(s.shardVersions) > 0 {
		s.shardVersions[shard.Of(subject, len(s.shardVersions))]++
	}
}

// SetFusion records the authoritative fusion result for a triple,
// overwriting whatever is stored — unlike Put's merge, a zero probability or
// a rejection sticks, so a batch re-fusion can demote a previously accepted
// entry. The triple is interned if it is not stored yet. SetFusion never
// advances the data version (global or per shard): fusion results are
// derived state, not input, and an entry interned here carries no provenance
// or label, so Dataset cannot see it — advancing the version would only
// trigger rebuilds over unchanged data.
func (s *Store) SetFusion(t triple.Triple, prob float64, accepted bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.byKey[t]
	if !ok {
		i = len(s.entries)
		s.entries = append(s.entries, Entry{Triple: t})
		s.byKey[t] = i
		s.bySubject[t.Subject] = append(s.bySubject[t.Subject], i)
		s.byPredicate[t.Predicate] = append(s.byPredicate[t.Predicate], i)
	}
	s.entries[i].Probability = prob
	s.entries[i].Accepted = accepted
}

// Version returns the data version: a counter advanced by every mutation
// that would change the dataset a fusion model is trained on (new triples,
// new provenance, label changes). Fusion writebacks do not advance it.
func (s *Store) Version() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.version
}

// TrackShards starts (or resizes) per-shard version tracking over n
// subject-hash shards. Counters restart at zero, so captures taken across a
// TrackShards call compare as changed — a safe full rebuild, never a missed
// one. n < 1 disables tracking.
func (s *Store) TrackShards(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 1 {
		s.shardVersions = nil
		return
	}
	if len(s.shardVersions) != n {
		s.shardVersions = make([]uint64, n)
	}
}

// ShardVersions returns a copy of the per-shard data version counters, or
// nil when TrackShards has not enabled tracking. A shard whose counter is
// unchanged between two captures received no data mutation in between: its
// slice of the store — and therefore its shard-local dataset under the same
// shard count — is identical.
func (s *Store) ShardVersions() []uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.shardVersions == nil {
		return nil
	}
	out := make([]uint64, len(s.shardVersions))
	copy(out, s.shardVersions)
	return out
}

// Get returns the entry for a triple.
func (s *Store) Get(t triple.Triple) (Entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i, ok := s.byKey[t]
	if !ok {
		return Entry{}, false
	}
	return s.entries[i], true
}

// Len returns the number of stored triples.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}

// BySubject returns the entries about a subject, in insertion order. The
// serving layer's subject listings read the per-snapshot fused-result index
// instead (internal/index); this remains the store-level query surface for
// tools, tests and offline inspection.
func (s *Store) BySubject(subject string) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.collect(s.bySubject[subject])
}

// ByPredicate returns the entries with a predicate.
func (s *Store) ByPredicate(pred string) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.collect(s.byPredicate[pred])
}

// BySource returns the entries provided by a source; like BySubject, a
// store-level query surface (the serving layer lists via internal/index).
func (s *Store) BySource(src string) []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.collect(s.bySource[src])
}

// Accepted returns the entries marked accepted by fusion, the cleaned
// output set R of the paper.
func (s *Store) Accepted() []Entry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Entry
	for _, e := range s.entries {
		if e.Accepted {
			out = append(out, e)
		}
	}
	return out
}

func (s *Store) collect(idx []int) []Entry {
	out := make([]Entry, len(idx))
	for j, i := range idx {
		out[j] = s.entries[i]
	}
	return out
}

// FromDataset loads every provided triple of a dataset into a new store.
func FromDataset(d *triple.Dataset) *Store {
	s := New()
	for i := 0; i < d.NumTriples(); i++ {
		id := triple.TripleID(i)
		provs := d.Providers(id)
		if len(provs) == 0 && d.Label(id) == triple.Unknown {
			continue
		}
		e := Entry{Triple: d.Triple(id)}
		for _, p := range provs {
			e.Sources = append(e.Sources, d.SourceName(p))
		}
		switch d.Label(id) {
		case triple.True:
			e.Label = "true"
		case triple.False:
			e.Label = "false"
		}
		s.Put(e)
	}
	return s
}

// Dataset converts the store back into a triple.Dataset.
func (s *Store) Dataset() *triple.Dataset {
	s.mu.RLock()
	defer s.mu.RUnlock()
	d := triple.NewDataset()
	for _, e := range s.entries {
		for _, src := range e.Sources {
			d.Observe(d.AddSource(src), e.Triple)
		}
		switch e.Label {
		case "true":
			d.SetLabel(e.Triple, triple.True)
		case "false":
			d.SetLabel(e.Triple, triple.False)
		}
	}
	return d
}

// Write streams the store as JSONL.
func (s *Store) Write(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range s.entries {
		if err := enc.Encode(&s.entries[i]); err != nil {
			return fmt.Errorf("store: encode entry %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read loads JSONL entries into the store (merging with existing ones).
func (s *Store) Read(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(raw, &e); err != nil {
			return fmt.Errorf("store: line %d: %w", line, err)
		}
		s.Put(e)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: scan: %w", err)
	}
	return nil
}

// fsyncFile syncs a file (or directory) to stable storage. It is a
// variable so tests can intercept it and assert the sync-before-rename
// ordering that makes Save crash-atomic.
var fsyncFile = func(f *os.File) error { return f.Sync() }

// Save writes the store to a file, atomically AND durably: the data is
// streamed to a temporary file in the same directory, fsynced, renamed over
// the target, and the parent directory is fsynced. The fsync before the
// rename is what makes the atomicity real — without it a power cut can
// leave the rename on disk pointing at a zero-length or partial file; the
// directory fsync afterwards makes the rename itself survive the cut.
func (s *Store) Save(path string) error {
	return writeFileAtomic(path, ".store-*.jsonl", s.Write)
}

// writeFileAtomic streams write into a temp file in path's directory and
// moves it over path with the fsync-before-rename / fsync-dir-after
// discipline Save documents. SaveBinary shares it for the .cfsn snapshot.
func writeFileAtomic(path, pattern string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	tmp := f.Name()
	if err := write(f); err != nil {
		//lint:ignore errswallow cleanup on the error path; the Write error is returned and the temp file removed
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := fsyncFile(f); err != nil {
		//lint:ignore errswallow cleanup on the error path; the fsync error is returned and the temp file removed
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("store: fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: %w", err)
	}
	if runtime.GOOS == "windows" {
		// Windows cannot fsync a directory handle; NTFS journals the
		// rename itself.
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer d.Close()
	if err := fsyncFile(d); err != nil {
		return fmt.Errorf("store: fsync dir: %w", err)
	}
	return nil
}

// Load reads a store from a file.
func Load(path string) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	s := New()
	if err := s.Read(f); err != nil {
		return nil, err
	}
	return s, nil
}

func containsString(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
