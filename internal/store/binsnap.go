package store

// The CFSN binary snapshot: a versioned, CRC-footed, mmap-able image of
// the store. Where the JSONL file is the durable interchange format —
// human-greppable, append-merged by Read — the binary snapshot is the
// cold-start format: fixed-width entry records over a deduplicated string
// arena, the frozen fusion score/decision per entry, and the secondary
// postings (subject / predicate / source) serialized pre-ranked, so
// startup is mmap + header/CRC validation + table fill instead of a
// reflective parse of every line.
//
// On-disk layout (little-endian throughout):
//
//	header (72 B)  magic "CFSN", format version, section counts
//	arena          concatenated bytes of every distinct string
//	strtab         nStrings × {off u64, len u32}   (into arena)
//	entries        nEntries × 40 B fixed records (see below)
//	refs           nRefs × u32                    (string idx, source lists)
//	postings       3 groups (subject, predicate, source):
//	                 per key: {key u32, n u32, n × entry u32}
//	footer         crc32(IEEE) over everything above, u32
//
// Entry record (40 B): subject u32, predicate u32, object u32, label u32
// (string indices; "" is always index 0), srcOff u32, srcLen u32 (into
// refs), probability f64 bits, flags u64 (bit 0 = accepted).
//
// Postings are written pre-ranked: each subject/predicate/source list is
// ordered by descending stored probability with the triple key breaking
// ties — identical data always serializes identically, and a loaded
// store serves its most probable results first without re-sorting. (A
// JSONL-loaded store keeps insertion order instead; both are valid under
// the documented "insertion order until mutated" contract, and the fused
// outputs — which consume the primary entry order — are bit-identical.)
//
// Every section offset and index is bounds-checked at load: a torn,
// truncated or bit-flipped file fails loudly (almost always at the CRC,
// but never with a panic), and LoadPreferred falls back to the JSONL
// store next to it.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sort"
	"unsafe"

	"corrfuse/internal/triple"
)

const (
	binMagic     = "CFSN"
	binVersion   = 1
	binHeaderLen = 72
	entryRecLen  = 40
	strRecLen    = 12
	flagAccepted = 1 << 0
)

// ErrBadSnapshot wraps every binary-snapshot validation failure, letting
// callers distinguish "corrupt/unreadable snapshot, fall back" from I/O
// errors like a missing file.
var ErrBadSnapshot = errors.New("invalid binary snapshot")

func badSnapshot(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadSnapshot, fmt.Sprintf(format, args...))
}

// BinaryPath returns the conventional binary-snapshot path next to a
// JSONL store path.
func BinaryPath(path string) string { return path + ".cfsn" }

// arenaString views the arena bytes as a string without copying. The
// mapping (or heap copy) backing it must outlive every string sliced
// from it — which LoadBinary guarantees by never unmapping a snapshot
// that validated.
func arenaString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// intern deduplicates strings into the arena during WriteBinary.
type intern struct {
	idx   map[string]uint32
	strs  []string
	bytes uint64
}

func newIntern() *intern {
	in := &intern{idx: make(map[string]uint32)}
	in.of("") // "" is always index 0 (absent labels)
	return in
}

func (in *intern) of(s string) uint32 {
	if i, ok := in.idx[s]; ok {
		return i
	}
	i := uint32(len(in.strs))
	in.idx[s] = i
	in.strs = append(in.strs, s)
	in.bytes += uint64(len(s))
	return i
}

// WriteBinary streams the store as a CFSN binary snapshot.
func (s *Store) WriteBinary(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()

	if len(s.entries) > math.MaxUint32 {
		return fmt.Errorf("store: %d entries exceed the binary snapshot's u32 space", len(s.entries))
	}
	in := newIntern()
	var nRefs uint64
	for i := range s.entries {
		e := &s.entries[i]
		in.of(e.Triple.Subject)
		in.of(e.Triple.Predicate)
		in.of(e.Triple.Object)
		in.of(e.Label)
		for _, src := range e.Sources {
			in.of(src)
		}
		nRefs += uint64(len(e.Sources))
	}

	subjKeys, subjRefs := s.rankedPostings(s.bySubject, in)
	predKeys, predRefs := s.rankedPostings(s.byPredicate, in)
	srcKeys, srcRefs := s.rankedPostings(s.bySource, in)
	totalPostingRefs := uint64(subjRefs + predRefs + srcRefs)

	crc := crc32.NewIEEE()
	bw := newBinWriter(io.MultiWriter(w, crc))

	var hdr [binHeaderLen]byte
	copy(hdr[0:4], binMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], binVersion)
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(s.entries)))
	binary.LittleEndian.PutUint64(hdr[16:24], uint64(len(in.strs)))
	binary.LittleEndian.PutUint64(hdr[24:32], nRefs)
	binary.LittleEndian.PutUint64(hdr[32:40], in.bytes)
	binary.LittleEndian.PutUint64(hdr[40:48], uint64(len(subjKeys)))
	binary.LittleEndian.PutUint64(hdr[48:56], uint64(len(predKeys)))
	binary.LittleEndian.PutUint64(hdr[56:64], uint64(len(srcKeys)))
	binary.LittleEndian.PutUint64(hdr[64:72], totalPostingRefs)
	bw.write(hdr[:])

	// Arena and string table.
	for _, str := range in.strs {
		bw.write([]byte(str))
	}
	var off uint64
	for _, str := range in.strs {
		bw.u64(off)
		bw.u32(uint32(len(str)))
		off += uint64(len(str))
	}

	// Entry records, then the concatenated source-ref lists.
	var srcOff uint32
	for i := range s.entries {
		e := &s.entries[i]
		bw.u32(in.of(e.Triple.Subject))
		bw.u32(in.of(e.Triple.Predicate))
		bw.u32(in.of(e.Triple.Object))
		bw.u32(in.of(e.Label))
		bw.u32(srcOff)
		bw.u32(uint32(len(e.Sources)))
		srcOff += uint32(len(e.Sources))
		bw.u64(math.Float64bits(e.Probability))
		var flags uint64
		if e.Accepted {
			flags |= flagAccepted
		}
		bw.u64(flags)
	}
	for i := range s.entries {
		for _, src := range s.entries[i].Sources {
			bw.u32(in.of(src))
		}
	}

	for _, group := range [][]postingKey{subjKeys, predKeys, srcKeys} {
		for _, pk := range group {
			bw.u32(pk.str)
			bw.u32(uint32(len(pk.entries)))
			for _, ei := range pk.entries {
				bw.u32(uint32(ei))
			}
		}
	}
	if err := bw.flush(); err != nil {
		return fmt.Errorf("store: write binary snapshot: %w", err)
	}
	// Footer: CRC over everything written so far (not through crc —
	// write it to w alone).
	var foot [4]byte
	binary.LittleEndian.PutUint32(foot[:], crc.Sum32())
	if _, err := w.Write(foot[:]); err != nil {
		return fmt.Errorf("store: write binary snapshot: %w", err)
	}
	return nil
}

type postingKey struct {
	key     string
	str     uint32
	entries []int
}

// rankedPostings freezes one secondary index deterministically: keys
// sorted lexicographically, each posting list re-ranked by descending
// stored probability with the triple key breaking ties. Callers hold the
// read lock.
func (s *Store) rankedPostings(m map[string][]int, in *intern) ([]postingKey, int) {
	keys := make([]postingKey, 0, len(m))
	total := 0
	for k, idxs := range m {
		ranked := make([]int, len(idxs))
		copy(ranked, idxs)
		sort.SliceStable(ranked, func(a, b int) bool {
			ea, eb := &s.entries[ranked[a]], &s.entries[ranked[b]]
			if ea.Probability != eb.Probability {
				return ea.Probability > eb.Probability
			}
			return ea.Triple.Key() < eb.Triple.Key()
		})
		keys = append(keys, postingKey{key: k, str: in.of(k), entries: ranked})
		total += len(ranked)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a].key < keys[b].key })
	return keys, total
}

// binWriter batches small fixed-width writes with sticky error handling.
type binWriter struct {
	w   io.Writer
	buf []byte
	err error
}

func newBinWriter(w io.Writer) *binWriter {
	return &binWriter{w: w, buf: make([]byte, 0, 1<<16)}
}

func (b *binWriter) flushIfFull() {
	if len(b.buf) < cap(b.buf)-16 {
		return
	}
	if b.err == nil {
		_, b.err = b.w.Write(b.buf)
	}
	b.buf = b.buf[:0]
}

func (b *binWriter) write(p []byte) {
	if b.err != nil {
		return
	}
	if len(b.buf) > 0 {
		_, b.err = b.w.Write(b.buf)
		b.buf = b.buf[:0]
		if b.err != nil {
			return
		}
	}
	_, b.err = b.w.Write(p)
}

func (b *binWriter) u32(v uint32) {
	b.buf = binary.LittleEndian.AppendUint32(b.buf, v)
	b.flushIfFull()
}

func (b *binWriter) u64(v uint64) {
	b.buf = binary.LittleEndian.AppendUint64(b.buf, v)
	b.flushIfFull()
}

func (b *binWriter) flush() error {
	if b.err == nil && len(b.buf) > 0 {
		_, b.err = b.w.Write(b.buf)
		b.buf = b.buf[:0]
	}
	return b.err
}

// SaveBinary writes the binary snapshot to a file with the same
// crash-atomicity discipline as Save: temp file in the same directory,
// fsync, rename, directory fsync.
func (s *Store) SaveBinary(path string) error {
	return writeFileAtomic(path, ".store-*.cfsn", s.WriteBinary)
}

// BinaryInfo describes a loaded binary snapshot.
type BinaryInfo struct {
	// Bytes is the snapshot file size.
	Bytes int64
	// Entries is the number of stored triples.
	Entries int
	// Mapped reports whether the snapshot is served from an mmap (the
	// mapping stays alive for the life of the process; string data
	// references it directly) rather than a heap copy.
	Mapped bool
}

// LoadBinary loads a CFSN binary snapshot, memory-mapping it where the
// platform supports it. String data is served zero-copy out of the
// mapping, which therefore intentionally stays mapped for the life of
// the process (the Store has no close; a validation failure unmaps).
// Errors from a structurally invalid file wrap ErrBadSnapshot.
func LoadBinary(path string) (*Store, *BinaryInfo, error) {
	data, mapped, err := mapFile(path)
	if err != nil {
		return nil, nil, err
	}
	st, err := loadBinary(data)
	if err != nil {
		if mapped {
			unmapFile(data)
		}
		return nil, nil, fmt.Errorf("store: %s: %w", path, err)
	}
	return st, &BinaryInfo{Bytes: int64(len(data)), Entries: len(st.entries), Mapped: mapped}, nil
}

// loadBinary reconstructs a Store from the raw snapshot image. data is
// untrusted: every offset, count and index is validated before use.
func loadBinary(data []byte) (*Store, error) {
	if len(data) < binHeaderLen+4 {
		return nil, badSnapshot("file too short (%d bytes)", len(data))
	}
	if string(data[0:4]) != binMagic {
		return nil, badSnapshot("bad magic %q", data[0:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != binVersion {
		return nil, badSnapshot("unsupported format version %d", v)
	}
	nEntries := binary.LittleEndian.Uint64(data[8:16])
	nStrings := binary.LittleEndian.Uint64(data[16:24])
	nRefs := binary.LittleEndian.Uint64(data[24:32])
	arenaLen := binary.LittleEndian.Uint64(data[32:40])
	nSubj := binary.LittleEndian.Uint64(data[40:48])
	nPred := binary.LittleEndian.Uint64(data[48:56])
	nSrc := binary.LittleEndian.Uint64(data[56:64])
	totalPostingRefs := binary.LittleEndian.Uint64(data[64:72])

	// Reject absurd counts before any size arithmetic can overflow.
	const maxCount = 1 << 40
	for _, c := range []uint64{nEntries, nStrings, nRefs, arenaLen, nSubj, nPred, nSrc, totalPostingRefs} {
		if c > maxCount {
			return nil, badSnapshot("implausible section count %d", c)
		}
	}
	arenaOff := uint64(binHeaderLen)
	strTabOff := arenaOff + arenaLen
	entriesOff := strTabOff + nStrings*strRecLen
	refsOff := entriesOff + nEntries*entryRecLen
	postingsOff := refsOff + nRefs*4
	footerOff := postingsOff + (nSubj+nPred+nSrc)*8 + totalPostingRefs*4
	if want := footerOff + 4; want != uint64(len(data)) {
		return nil, badSnapshot("file is %d bytes, layout wants %d", len(data), want)
	}
	// CRC before trusting any section content.
	wantCRC := binary.LittleEndian.Uint32(data[footerOff:])
	if got := crc32.ChecksumIEEE(data[:footerOff]); got != wantCRC {
		return nil, badSnapshot("CRC mismatch: file says %08x, content is %08x", wantCRC, got)
	}

	// Strings: one zero-copy view over the arena; every table entry is a
	// substring of it.
	arena := arenaString(data[arenaOff:strTabOff])
	strs := make([]string, nStrings)
	for i := uint64(0); i < nStrings; i++ {
		rec := data[strTabOff+i*strRecLen:]
		off := binary.LittleEndian.Uint64(rec[0:8])
		n := uint64(binary.LittleEndian.Uint32(rec[8:12]))
		if off+n > arenaLen || off+n < off {
			return nil, badSnapshot("string %d spans [%d,%d) outside the %d-byte arena", i, off, off+n, arenaLen)
		}
		strs[i] = arena[off : off+n]
	}
	if nEntries > 0 && (nStrings == 0 || strs[0] != "") {
		return nil, badSnapshot("string table must start with the empty string")
	}

	st := &Store{
		entries:     make([]Entry, nEntries),
		byKey:       make(map[triple.Triple]int, nEntries),
		bySubject:   make(map[string][]int, nSubj),
		byPredicate: make(map[string][]int, nPred),
		bySource:    make(map[string][]int, nSrc),
	}
	str := func(i uint32, what string) (string, error) {
		if uint64(i) >= nStrings {
			return "", badSnapshot("%s string index %d out of range (%d strings)", what, i, nStrings)
		}
		return strs[i], nil
	}

	// One backing array for every source list: nEntries slices without
	// nEntries allocations.
	refBacking := make([]string, nRefs)
	for i := uint64(0); i < nRefs; i++ {
		si := binary.LittleEndian.Uint32(data[refsOff+i*4:])
		s, err := str(si, "source ref")
		if err != nil {
			return nil, err
		}
		refBacking[i] = s
	}
	for i := uint64(0); i < nEntries; i++ {
		rec := data[entriesOff+i*entryRecLen:]
		var e Entry
		var err error
		if e.Triple.Subject, err = str(binary.LittleEndian.Uint32(rec[0:4]), "subject"); err != nil {
			return nil, err
		}
		if e.Triple.Predicate, err = str(binary.LittleEndian.Uint32(rec[4:8]), "predicate"); err != nil {
			return nil, err
		}
		if e.Triple.Object, err = str(binary.LittleEndian.Uint32(rec[8:12]), "object"); err != nil {
			return nil, err
		}
		if e.Label, err = str(binary.LittleEndian.Uint32(rec[12:16]), "label"); err != nil {
			return nil, err
		}
		srcOff := uint64(binary.LittleEndian.Uint32(rec[16:20]))
		srcLen := uint64(binary.LittleEndian.Uint32(rec[20:24]))
		if srcOff+srcLen > nRefs {
			return nil, badSnapshot("entry %d source list [%d,%d) outside %d refs", i, srcOff, srcOff+srcLen, nRefs)
		}
		if srcLen > 0 {
			e.Sources = refBacking[srcOff : srcOff+srcLen : srcOff+srcLen]
		}
		e.Probability = math.Float64frombits(binary.LittleEndian.Uint64(rec[24:32]))
		e.Accepted = binary.LittleEndian.Uint64(rec[32:40])&flagAccepted != 0
		st.entries[i] = e
		if _, dup := st.byKey[e.Triple]; dup {
			return nil, badSnapshot("duplicate triple at entry %d", i)
		}
		st.byKey[e.Triple] = int(i)
	}

	// Postings: one backing array again, then per-key sub-slices.
	postBacking := make([]int, totalPostingRefs)
	pos := postingsOff
	used := uint64(0)
	for g, group := range []struct {
		n uint64
		m map[string][]int
	}{{nSubj, st.bySubject}, {nPred, st.byPredicate}, {nSrc, st.bySource}} {
		for k := uint64(0); k < group.n; k++ {
			if pos+8 > footerOff {
				return nil, badSnapshot("postings overrun section (group %d)", g)
			}
			key, err := str(binary.LittleEndian.Uint32(data[pos:]), "posting key")
			if err != nil {
				return nil, err
			}
			cnt := uint64(binary.LittleEndian.Uint32(data[pos+4:]))
			pos += 8
			if used+cnt > totalPostingRefs || pos+cnt*4 > footerOff {
				return nil, badSnapshot("posting list for %q overruns section", key)
			}
			list := postBacking[used : used : used+cnt]
			for j := uint64(0); j < cnt; j++ {
				ei := binary.LittleEndian.Uint32(data[pos:])
				pos += 4
				if uint64(ei) >= nEntries {
					return nil, badSnapshot("posting for %q references entry %d of %d", key, ei, nEntries)
				}
				list = append(list, int(ei))
			}
			used += cnt
			if _, dup := group.m[key]; dup {
				return nil, badSnapshot("duplicate posting key %q", key)
			}
			group.m[key] = list
		}
	}
	if used != totalPostingRefs || pos != footerOff {
		return nil, badSnapshot("posting sections do not tile the file (used %d/%d refs)", used, totalPostingRefs)
	}

	// Match a JSONL load's version arithmetic: one bump per entry.
	st.version = nEntries
	return st, nil
}

// LoadInfo describes how a store was loaded.
type LoadInfo struct {
	// Format is "binary" or "jsonl".
	Format string
	// Bytes is the size of the file the store was loaded from.
	Bytes int64
	// Mapped reports an mmap-backed binary load.
	Mapped bool
	// FallbackReason is non-empty when a binary snapshot existed but was
	// rejected (CRC/validation failure) and the JSONL store was loaded
	// instead — loud enough to alert on, harmless to serve through.
	FallbackReason string
}

// LoadPreferred loads the store for a JSONL path, preferring the binary
// snapshot next to it (BinaryPath) and falling back to the JSONL file
// when the snapshot is missing or fails validation. A corrupt snapshot
// never serves: it is reported in LoadInfo.FallbackReason and skipped.
func LoadPreferred(path string) (*Store, LoadInfo, error) {
	binPath := BinaryPath(path)
	st, bi, err := LoadBinary(binPath)
	if err == nil {
		return st, LoadInfo{Format: "binary", Bytes: bi.Bytes, Mapped: bi.Mapped}, nil
	}
	info := LoadInfo{Format: "jsonl"}
	if !os.IsNotExist(err) {
		info.FallbackReason = err.Error()
	}
	st, err = Load(path)
	if err != nil {
		return nil, info, err
	}
	if fi, statErr := os.Stat(path); statErr == nil {
		info.Bytes = fi.Size()
	}
	return st, info, nil
}
