//go:build !unix

package store

import "os"

// mapFile reads the whole file on platforms without the unix mmap shim;
// the loader works identically over a heap copy, just without the
// page-cache sharing.
func mapFile(path string) ([]byte, bool, error) {
	data, err := os.ReadFile(path)
	return data, false, err
}

func unmapFile([]byte) {}
