package dataset

import (
	"fmt"

	"corrfuse/internal/stat"
	"corrfuse/internal/triple"
)

// Window restricts the portion of an item pool a source draws from, as a
// sub-interval of [0, 1). Sources with overlapping windows tend to provide
// the same items (positive correlation); sources with disjoint windows are
// complementary (negative correlation). The zero value means "no window" and
// is treated as the full interval.
type Window struct {
	Lo, Hi float64
}

// full reports whether the window is the whole pool (including zero value).
func (w Window) full() bool { return w.Lo <= 0 && (w.Hi <= 0 || w.Hi >= 1) }

func (w Window) normalized() Window {
	if w.full() {
		return Window{0, 1}
	}
	return Window{stat.Clamp01(w.Lo), stat.Clamp01(w.Hi)}
}

func (w Window) width() float64 {
	n := w.normalized()
	if n.Hi <= n.Lo {
		return 0
	}
	return n.Hi - n.Lo
}

func (w Window) contains(pos float64) bool {
	n := w.normalized()
	return pos >= n.Lo && pos < n.Hi
}

// SourceSpec configures one synthetic source.
type SourceSpec struct {
	// Name of the source (defaults to "S<i+1>").
	Name string
	// Precision and Recall are the target quality of the source. The
	// false-positive rate is derived so that the expected precision of
	// the generated output matches: q = (1−p)/p · r·|True|/|False|.
	Precision, Recall float64
	// TrueWindow and FalseWindow restrict which true/false items the
	// source can provide. Marginal rates are rescaled by the window
	// width, so recall/precision targets are preserved (up to clamping).
	TrueWindow, FalseWindow Window
}

// GroupSpec declares a latent-event correlation group: with probability
// Strength each member copies a shared per-item draw instead of drawing
// independently. OnTrue selects whether the group correlates on true items
// or on false items. A source may belong to at most one group per domain.
type GroupSpec struct {
	Members  []int
	OnTrue   bool
	Strength float64
}

// SyntheticSpec configures a synthetic dataset generation run.
type SyntheticSpec struct {
	// NumTrue and NumFalse size the pools of true and false items.
	NumTrue, NumFalse int
	Sources           []SourceSpec
	Groups            []GroupSpec
	Seed              int64
	// SubjectPrefix names the generated entities (default "item").
	SubjectPrefix string
}

// Generate builds a dataset according to spec. Every generated triple gets a
// gold label; the observation matrix is sampled from the per-source rates,
// windows and correlation groups. Triples provided by no source are still
// present (labeled) so that recall denominators match the spec; callers that
// want only provided triples can filter on len(Providers) > 0.
func Generate(spec SyntheticSpec) (*triple.Dataset, error) {
	if spec.NumTrue <= 0 {
		return nil, fmt.Errorf("dataset: NumTrue must be positive")
	}
	if spec.NumFalse < 0 {
		return nil, fmt.Errorf("dataset: NumFalse must be non-negative")
	}
	if len(spec.Sources) == 0 {
		return nil, fmt.Errorf("dataset: no sources")
	}
	prefix := spec.SubjectPrefix
	if prefix == "" {
		prefix = "item"
	}
	nS := len(spec.Sources)

	// Validate groups and index them per source per domain.
	trueGroup := make([]int, nS)  // group index + 1, 0 = none
	falseGroup := make([]int, nS) // likewise
	for gi, g := range spec.Groups {
		if g.Strength < 0 || g.Strength > 1 {
			return nil, fmt.Errorf("dataset: group %d strength %v outside [0,1]", gi, g.Strength)
		}
		for _, m := range g.Members {
			if m < 0 || m >= nS {
				return nil, fmt.Errorf("dataset: group %d member %d out of range", gi, m)
			}
			slot := falseGroup
			if g.OnTrue {
				slot = trueGroup
			}
			if slot[m] != 0 {
				return nil, fmt.Errorf("dataset: source %d in two groups for the same domain", m)
			}
			slot[m] = gi + 1
		}
	}

	rng := stat.NewRNG(spec.Seed)
	d := triple.NewDataset()
	ids := make([]triple.SourceID, nS)
	for i, s := range spec.Sources {
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("S%d", i+1)
		}
		ids[i] = d.AddSource(name)
	}

	// Per-source rates.
	recall := make([]float64, nS)
	fpr := make([]float64, nS)
	for i, s := range spec.Sources {
		if s.Recall < 0 || s.Recall > 1 {
			return nil, fmt.Errorf("dataset: source %d recall %v outside [0,1]", i, s.Recall)
		}
		if s.Precision <= 0 || s.Precision > 1 {
			return nil, fmt.Errorf("dataset: source %d precision %v outside (0,1]", i, s.Precision)
		}
		recall[i] = s.Recall
		if spec.NumFalse > 0 {
			fpr[i] = stat.Clamp01((1 - s.Precision) / s.Precision * s.Recall *
				float64(spec.NumTrue) / float64(spec.NumFalse))
		}
	}

	// groupRate[g] is the latent event rate for the group: the mean of its
	// members' marginal rates in the group's domain.
	groupRate := make([]float64, len(spec.Groups))
	for gi, g := range spec.Groups {
		sum := 0.0
		for _, m := range g.Members {
			if g.OnTrue {
				sum += recall[m]
			} else {
				sum += fpr[m]
			}
		}
		if len(g.Members) > 0 {
			groupRate[gi] = sum / float64(len(g.Members))
		}
	}

	sample := func(isTrue bool, count int, label triple.Label, object string) {
		groupEvent := make([]bool, len(spec.Groups))
		for j := 0; j < count; j++ {
			pos := float64(j) / float64(count)
			t := triple.Triple{
				Subject:   fmt.Sprintf("%s-%06d", prefix, j),
				Predicate: "value",
				Object:    object,
			}
			if !isTrue {
				t.Subject = fmt.Sprintf("%s-f%06d", prefix, j)
			}
			d.SetLabel(t, label)
			// Draw the per-item latent event of each relevant group.
			for gi, g := range spec.Groups {
				if g.OnTrue == isTrue {
					groupEvent[gi] = rng.Bernoulli(groupRate[gi])
				}
			}
			for i := range spec.Sources {
				var w Window
				var rate float64
				var grp int
				if isTrue {
					w, rate, grp = spec.Sources[i].TrueWindow, recall[i], trueGroup[i]
				} else {
					w, rate, grp = spec.Sources[i].FalseWindow, fpr[i], falseGroup[i]
				}
				provide := false
				if grp != 0 && rng.Bernoulli(spec.Groups[grp-1].Strength) {
					// Follow the group's shared draw.
					provide = groupEvent[grp-1]
				} else {
					if !w.contains(pos) {
						continue
					}
					eff := rate
					if width := w.width(); width > 0 && width < 1 {
						eff = stat.Clamp01(rate / width)
					}
					provide = rng.Bernoulli(eff)
				}
				if provide {
					d.Observe(ids[i], t)
				}
			}
		}
	}

	sample(true, spec.NumTrue, triple.True, "correct")
	sample(false, spec.NumFalse, triple.False, "wrong")
	return d, nil
}

// UniformSpec builds a SyntheticSpec with n identical independent sources,
// the configuration used throughout Figure 6: numTriples items of which
// trueFraction are true, every source with the given precision and recall.
func UniformSpec(n, numTriples int, trueFraction, precision, recall float64, seed int64) SyntheticSpec {
	numTrue := int(float64(numTriples)*trueFraction + 0.5)
	spec := SyntheticSpec{
		NumTrue:  numTrue,
		NumFalse: numTriples - numTrue,
		Seed:     seed,
	}
	for i := 0; i < n; i++ {
		spec.Sources = append(spec.Sources, SourceSpec{Precision: precision, Recall: recall})
	}
	return spec
}

// ProvidedLabeled returns the labeled triples that at least one source
// provides — the population the paper evaluates on (“the provided triples”).
func ProvidedLabeled(d *triple.Dataset) []triple.TripleID {
	var out []triple.TripleID
	for _, id := range d.Labeled() {
		if len(d.Providers(id)) > 0 {
			out = append(out, id)
		}
	}
	return out
}

// GoldLabels converts the labels of ids into a boolean slice (true = gold
// True). It panics if any triple is unlabeled.
func GoldLabels(d *triple.Dataset, ids []triple.TripleID) []bool {
	out := make([]bool, len(ids))
	for i, id := range ids {
		switch d.Label(id) {
		case triple.True:
			out[i] = true
		case triple.False:
			out[i] = false
		default:
			panic(fmt.Sprintf("dataset: triple %d has no gold label", id))
		}
	}
	return out
}
