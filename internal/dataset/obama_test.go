package dataset

import (
	"testing"

	"corrfuse/internal/quality"
	"corrfuse/internal/stat"
	"corrfuse/internal/triple"
)

// sid returns the SourceID of extractor Si in the Obama dataset.
func sid(t *testing.T, d *triple.Dataset, i int) triple.SourceID {
	t.Helper()
	id, ok := d.SourceID(sourceName(i))
	if !ok {
		t.Fatalf("source S%d not found", i)
	}
	return id
}

func TestObamaShape(t *testing.T) {
	d := Obama()
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := d.NumSources(); got != 5 {
		t.Fatalf("NumSources = %d, want 5", got)
	}
	if got := d.NumTriples(); got != 10 {
		t.Fatalf("NumTriples = %d, want 10", got)
	}
	nt, nf := d.CountLabels()
	if nt != 6 || nf != 4 {
		t.Fatalf("labels = (%d true, %d false), want (6, 4)", nt, nf)
	}
	// Example 2.1: O1 = {t1, t2, t6, t7, t8, t9, t10}.
	want := map[int]bool{1: true, 2: true, 6: true, 7: true, 8: true, 9: true, 10: true}
	s1 := sid(t, d, 1)
	if got := d.OutputSize(s1); got != 7 {
		t.Fatalf("|O1| = %d, want 7", got)
	}
	for i := 1; i <= 10; i++ {
		tr, _ := ObamaTriple(i)
		id, ok := d.TripleID(tr)
		if !ok {
			t.Fatalf("t%d not interned", i)
		}
		if d.Provides(s1, id) != want[i] {
			t.Errorf("S1 provides t%d = %v, want %v", i, !want[i], want[i])
		}
	}
}

// TestObamaFigure1b checks every precision/recall number in Figure 1b.
func TestObamaFigure1b(t *testing.T) {
	d := Obama()
	est, err := quality.NewEstimator(d, quality.Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	singles := []struct {
		i    int
		p, r float64
	}{
		{1, 4.0 / 7, 4.0 / 6},
		{2, 3.0 / 7, 3.0 / 6},
		{3, 4.0 / 5, 4.0 / 6},
		{4, 4.0 / 6, 4.0 / 6},
		{5, 4.0 / 6, 4.0 / 6},
	}
	for _, tc := range singles {
		s := sid(t, d, tc.i)
		if got := est.Precision(s); !stat.ApproxEqual(got, tc.p, 1e-9) {
			t.Errorf("precision(S%d) = %.4f, want %.4f", tc.i, got, tc.p)
		}
		if got := est.Recall(s); !stat.ApproxEqual(got, tc.r, 1e-9) {
			t.Errorf("recall(S%d) = %.4f, want %.4f", tc.i, got, tc.r)
		}
	}
	joints := []struct {
		srcs []int
		p, r float64
	}{
		{[]int{2, 3}, 2.0 / 3, 2.0 / 6},
		{[]int{1, 3}, 1.0, 2.0 / 6},
		{[]int{1, 2, 4}, 1.0 / 3, 1.0 / 6},
		{[]int{1, 4, 5}, 3.0 / 5, 3.0 / 6},
	}
	for _, tc := range joints {
		subset := make([]triple.SourceID, len(tc.srcs))
		for i, n := range tc.srcs {
			subset[i] = sid(t, d, n)
		}
		p, ok := est.JointPrecision(subset)
		if !ok || !stat.ApproxEqual(p, tc.p, 1e-9) {
			t.Errorf("joint precision(%v) = %.4f (ok=%v), want %.4f", tc.srcs, p, ok, tc.p)
		}
		r, ok := est.JointRecall(subset)
		if !ok || !stat.ApproxEqual(r, tc.r, 1e-9) {
			t.Errorf("joint recall(%v) = %.4f (ok=%v), want %.4f", tc.srcs, r, ok, tc.r)
		}
	}
}

// TestObamaFPR checks the derived false positive rates quoted in
// Examples 3.3 and 3.4: q1=0.5, q2=0.67, q3=0.167, q4=q5=0.33.
func TestObamaFPR(t *testing.T) {
	d := Obama()
	est, err := quality.NewEstimator(d, quality.Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]float64{1: 0.5, 2: 2.0 / 3, 3: 1.0 / 6, 4: 1.0 / 3, 5: 1.0 / 3}
	for i, q := range want {
		if got := est.FPR(sid(t, d, i)); !stat.ApproxEqual(got, q, 1e-9) {
			t.Errorf("q%d = %.4f, want %.4f", i, got, q)
		}
	}
}

// TestObamaCorrelationFactors checks C45 = 1.5, C13 = 0.75, C23 = 1
// (Section 4.2 narrative).
func TestObamaCorrelationFactors(t *testing.T) {
	d := Obama()
	est, err := quality.NewEstimator(d, quality.Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	pair := func(a, b int) []triple.SourceID {
		return []triple.SourceID{sid(t, d, a), sid(t, d, b)}
	}
	if c, ok := quality.CorrelationTrue(est, pair(4, 5)); !ok || !stat.ApproxEqual(c, 1.5, 1e-9) {
		t.Errorf("C45 = %.4f (ok=%v), want 1.5", c, ok)
	}
	if c, ok := quality.CorrelationTrue(est, pair(1, 3)); !ok || !stat.ApproxEqual(c, 0.75, 1e-9) {
		t.Errorf("C13 = %.4f (ok=%v), want 0.75", c, ok)
	}
	if c, ok := quality.CorrelationTrue(est, pair(2, 3)); !ok || !stat.ApproxEqual(c, 1.0, 1e-9) {
		t.Errorf("C23 = %.4f (ok=%v), want 1.0", c, ok)
	}
}
