package dataset

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"corrfuse/internal/triple"
)

// Record is the JSONL wire format for one triple: its components, the names
// of the sources providing it, and an optional gold label ("true"/"false").
type Record struct {
	Subject   string   `json:"subject"`
	Predicate string   `json:"predicate"`
	Object    string   `json:"object"`
	Sources   []string `json:"sources"`
	Label     string   `json:"label,omitempty"`
}

// Write serializes d as JSON Lines: one Record per triple, in TripleID
// order.
func Write(w io.Writer, d *triple.Dataset) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := 0; i < d.NumTriples(); i++ {
		id := triple.TripleID(i)
		t := d.Triple(id)
		rec := Record{Subject: t.Subject, Predicate: t.Predicate, Object: t.Object}
		for _, s := range d.Providers(id) {
			rec.Sources = append(rec.Sources, d.SourceName(s))
		}
		sort.Strings(rec.Sources)
		switch d.Label(id) {
		case triple.True:
			rec.Label = "true"
		case triple.False:
			rec.Label = "false"
		}
		if err := enc.Encode(&rec); err != nil {
			return fmt.Errorf("dataset: encode triple %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read parses a JSONL stream written by Write (or produced externally) into
// a Dataset. Unknown labels are left as triple.Unknown.
func Read(r io.Reader) (*triple.Dataset, error) {
	d := triple.NewDataset()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		t := triple.Triple{Subject: rec.Subject, Predicate: rec.Predicate, Object: rec.Object}
		for _, name := range rec.Sources {
			d.Observe(d.AddSource(name), t)
		}
		switch rec.Label {
		case "true":
			d.SetLabel(t, triple.True)
		case "false":
			d.SetLabel(t, triple.False)
		case "":
			// leave Unknown; intern so unprovided gold rows round-trip
			if len(rec.Sources) == 0 {
				d.SetLabel(t, triple.Unknown)
			}
		default:
			return nil, fmt.Errorf("dataset: line %d: unknown label %q", line, rec.Label)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: scan: %w", err)
	}
	return d, nil
}
