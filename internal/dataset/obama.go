// Package dataset provides the gold-standard datasets used by the
// experiments: the paper's running example (Figure 1), parameterized
// synthetic generators, and statistical simulations of the three real-world
// datasets (REVERB, RESTAURANT, BOOK) whose raw data is not redistributable.
package dataset

import "corrfuse/internal/triple"

// Obama triple names, exported for tests that refer to specific rows of
// Figure 1.
var obamaTriples = []struct {
	t     triple.Triple
	label triple.Label
	srcs  []int // 1-based extractor numbers, per the reconstruction below
}{
	{triple.Triple{Subject: "Obama", Predicate: "profession", Object: "president"}, triple.True, []int{1, 2, 4, 5}},             // t1
	{triple.Triple{Subject: "Obama", Predicate: "died", Object: "1982"}, triple.False, []int{1, 2}},                             // t2
	{triple.Triple{Subject: "Obama", Predicate: "profession", Object: "lawyer"}, triple.True, []int{3}},                         // t3
	{triple.Triple{Subject: "Obama", Predicate: "religion", Object: "Christian"}, triple.True, []int{2, 3, 4, 5}},               // t4
	{triple.Triple{Subject: "Obama", Predicate: "age", Object: "50"}, triple.False, []int{2, 3}},                                // t5
	{triple.Triple{Subject: "Obama", Predicate: "support", Object: "White Sox"}, triple.True, []int{1, 4, 5}},                   // t6
	{triple.Triple{Subject: "Obama", Predicate: "spouse", Object: "Michelle"}, triple.True, []int{1, 2, 3}},                     // t7
	{triple.Triple{Subject: "Obama", Predicate: "administered by", Object: "John G. Roberts"}, triple.False, []int{1, 2, 4, 5}}, // t8
	{triple.Triple{Subject: "Obama", Predicate: "surgical operation", Object: "05/01/2011"}, triple.False, []int{1, 2, 4, 5}},   // t9
	{triple.Triple{Subject: "Obama", Predicate: "profession", Object: "community organizer"}, triple.True, []int{1, 3, 4, 5}},   // t10
}

// Obama returns the running example of the paper (Figure 1): ten knowledge
// triples about Barack Obama extracted by five extraction systems S1–S5.
//
// The paper's figure does not machine-readably align the X marks with
// extractor columns, so the matrix here is reconstructed from the paper's
// stated constraints, all of which it satisfies exactly:
//
//   - O1 = {t1,t2,t6,t7,t8,t9,t10} (Example 2.1)
//   - per-source precision/recall of Figure 1b for all five sources
//   - joint precision/recall of Figure 1b for {S2,S3}, {S1,S3}, {S1,S2,S4},
//     {S1,S4,S5}
//   - S1,S4,S5 all provide t1,t6,t8,t9,t10; S1,S3 share exactly t7,t10
//     (Example 2.3)
//   - the per-K Union results of Figure 1c
//   - t3 is provided only by S3; t2 by S1 and S2; St8 = {S1,S2,S4,S5}
func Obama() *triple.Dataset {
	d := triple.NewDataset()
	ids := make([]triple.SourceID, 6)
	for i := 1; i <= 5; i++ {
		ids[i] = d.AddSource(sourceName(i))
	}
	for _, row := range obamaTriples {
		for _, s := range row.srcs {
			d.Observe(ids[s], row.t)
		}
		d.SetLabel(row.t, row.label)
	}
	return d
}

// ObamaTriple returns the Figure-1 triple t<i> (1-based) and its gold label.
func ObamaTriple(i int) (triple.Triple, triple.Label) {
	row := obamaTriples[i-1]
	return row.t, row.label
}

func sourceName(i int) string {
	return "S" + string(rune('0'+i))
}
