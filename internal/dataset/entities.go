package dataset

import (
	"fmt"

	"corrfuse/internal/stat"
	"corrfuse/internal/triple"
)

// EntitySourceSpec configures one source of an entity-centric generation
// run: the source covers an entity (lists a book, knows a restaurant) with
// probability Coverage, and each claim it makes about a covered entity is a
// correct value with probability Accuracy.
type EntitySourceSpec struct {
	Name     string
	Coverage float64
	Accuracy float64
	// ClaimsPerEntity is the mean number of claims for a covered entity
	// (at least 1; fractional parts are sampled). Default 1.
	ClaimsPerEntity float64
}

// EntityGroupSpec declares a copying group: with probability Strength a
// member mirrors the group's shared behaviour for an entity — the same
// coverage decision and the same value picks — instead of acting
// independently. OnTrue narrows the copying to correct picks only (shared
// extraction patterns); otherwise the group also copies mistakes, the
// classic copying scenario of the paper.
type EntityGroupSpec struct {
	Members  []int
	Strength float64
	OnTrue   bool
}

// EntitySpec configures entity-centric generation: a world of entities, each
// with a few correct values and a pool of plausible wrong values, and
// sources that cover entities and claim values. This models the BOOK-style
// scenario where several triples share a subject, so subject-scoped fusion
// has real negative evidence.
type EntitySpec struct {
	NumEntities int
	// TruePerEntity is the number of correct values per entity (authors
	// of a book). FalsePerEntity sizes the pool of wrong candidates.
	TruePerEntity, FalsePerEntity int
	Predicate                     string
	Sources                       []EntitySourceSpec
	Groups                        []EntityGroupSpec
	Seed                          int64
	SubjectPrefix                 string
}

// GenerateEntities builds a dataset from an EntitySpec. All correct values
// are labeled True (whether provided or not); wrong values are labeled False
// and only interned when some source provides them, mirroring how gold
// standards for real datasets only contain provided mistakes.
func GenerateEntities(spec EntitySpec) (*triple.Dataset, error) {
	if spec.NumEntities <= 0 || spec.TruePerEntity <= 0 || spec.FalsePerEntity <= 0 {
		return nil, fmt.Errorf("dataset: entity spec needs positive entity/value counts")
	}
	if len(spec.Sources) == 0 {
		return nil, fmt.Errorf("dataset: no sources")
	}
	prefix := spec.SubjectPrefix
	if prefix == "" {
		prefix = "entity"
	}
	pred := spec.Predicate
	if pred == "" {
		pred = "value"
	}
	nS := len(spec.Sources)
	memberGroup := make([]int, nS) // group index + 1; 0 = none
	for gi, g := range spec.Groups {
		if g.Strength < 0 || g.Strength > 1 {
			return nil, fmt.Errorf("dataset: group %d strength outside [0,1]", gi)
		}
		for _, m := range g.Members {
			if m < 0 || m >= nS {
				return nil, fmt.Errorf("dataset: group %d member %d out of range", gi, m)
			}
			if memberGroup[m] != 0 {
				return nil, fmt.Errorf("dataset: source %d in two groups", m)
			}
			memberGroup[m] = gi + 1
		}
	}

	rng := stat.NewRNG(spec.Seed)
	d := triple.NewDataset()
	ids := make([]triple.SourceID, nS)
	for i, s := range spec.Sources {
		name := s.Name
		if name == "" {
			name = fmt.Sprintf("S%d", i+1)
		}
		if s.Coverage < 0 || s.Coverage > 1 || s.Accuracy < 0 || s.Accuracy > 1 {
			return nil, fmt.Errorf("dataset: source %d coverage/accuracy outside [0,1]", i)
		}
		ids[i] = d.AddSource(name)
	}

	trueTriple := func(e, v int) triple.Triple {
		return triple.Triple{
			Subject:   fmt.Sprintf("%s-%05d", prefix, e),
			Predicate: pred,
			Object:    fmt.Sprintf("correct-%d", v),
		}
	}
	falseTriple := func(e, v int) triple.Triple {
		return triple.Triple{
			Subject:   fmt.Sprintf("%s-%05d", prefix, e),
			Predicate: pred,
			Object:    fmt.Sprintf("wrong-%d", v),
		}
	}

	// pick draws one claim: a correct value with probability acc, else a
	// wrong one.
	type claim struct {
		correct bool
		value   int
	}
	pick := func(acc float64) claim {
		if rng.Bernoulli(acc) {
			return claim{correct: true, value: rng.Intn(spec.TruePerEntity)}
		}
		return claim{correct: false, value: rng.Intn(spec.FalsePerEntity)}
	}

	claimCount := func(mean float64) int {
		if mean <= 1 {
			return 1
		}
		n := int(mean)
		if rng.Bernoulli(mean - float64(n)) {
			n++
		}
		if n < 1 {
			n = 1
		}
		return n
	}

	for e := 0; e < spec.NumEntities; e++ {
		for v := 0; v < spec.TruePerEntity; v++ {
			d.SetLabel(trueTriple(e, v), triple.True)
		}
		// Shared behaviour per group for this entity.
		type groupDraw struct {
			covered bool
			claims  []claim
		}
		draws := make([]groupDraw, len(spec.Groups))
		for gi, g := range spec.Groups {
			// The group's latent prototype behaves like an average member.
			var cov, acc, cpe float64
			for _, m := range g.Members {
				cov += spec.Sources[m].Coverage
				acc += spec.Sources[m].Accuracy
				cpe += spec.Sources[m].ClaimsPerEntity
			}
			n := float64(len(g.Members))
			gd := groupDraw{covered: rng.Bernoulli(cov / n)}
			if gd.covered {
				for c := claimCount(cpe / n); c > 0; c-- {
					gd.claims = append(gd.claims, pick(acc/n))
				}
			}
			draws[gi] = gd
		}
		for i, src := range spec.Sources {
			var claims []claim
			gi := memberGroup[i]
			follows := gi != 0 && rng.Bernoulli(spec.Groups[gi-1].Strength)
			switch {
			case follows && !spec.Groups[gi-1].OnTrue:
				// Full copying: coverage and every pick mirrored.
				if !draws[gi-1].covered {
					continue
				}
				claims = draws[gi-1].claims
			case follows && spec.Groups[gi-1].OnTrue:
				// Correlated on true picks only: own coverage and
				// mistakes, shared correct picks.
				if !rng.Bernoulli(src.Coverage) {
					continue
				}
				for c := claimCount(src.ClaimsPerEntity); c > 0; c-- {
					cl := pick(src.Accuracy)
					if cl.correct {
						// Mirror a correct group pick when one exists.
						for _, gcl := range draws[gi-1].claims {
							if gcl.correct {
								cl = gcl
								break
							}
						}
					}
					claims = append(claims, cl)
				}
			default:
				if !rng.Bernoulli(src.Coverage) {
					continue
				}
				for c := claimCount(src.ClaimsPerEntity); c > 0; c-- {
					claims = append(claims, pick(src.Accuracy))
				}
			}
			for _, cl := range claims {
				var t triple.Triple
				if cl.correct {
					t = trueTriple(e, cl.value)
				} else {
					t = falseTriple(e, cl.value)
					d.SetLabel(t, triple.False)
				}
				d.Observe(ids[i], t)
			}
		}
	}
	return d, nil
}
