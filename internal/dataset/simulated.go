package dataset

import (
	"fmt"

	"corrfuse/internal/stat"
	"corrfuse/internal/triple"
)

// This file simulates the three real-world datasets of Section 5, whose raw
// data is proprietary or not redistributable. Each simulator matches the
// published shape of its dataset — source count, gold-standard size, truth
// ratio, per-source quality bands, and the correlation structure reported in
// the paper's "Discovered correlations" discussion — so the fusion
// algorithms exercise the same regimes as in the paper. See DESIGN.md for
// the substitution rationale.

// SimulatedReVerb mimics the REVERB ClueWeb extraction dataset: 6 extractors
// over 2407 gold triples (616 true, 1791 false) with fairly low precision
// and recall. Correlation structure (per §5): on true triples one group of 2
// and one group of 3 extractors are strongly correlated; on false triples
// two pairs are strongly correlated and one extractor is anti-correlated
// with every other (modeled by giving it a false-pool window mostly disjoint
// from the rest).
func SimulatedReVerb(seed int64) (*triple.Dataset, error) {
	spec := SyntheticSpec{
		NumTrue:       616,
		NumFalse:      1791,
		Seed:          seed,
		SubjectPrefix: "reverb",
		Sources: []SourceSpec{
			{Name: "TextRunner", Precision: 0.40, Recall: 0.45},
			{Name: "WOE-parse", Precision: 0.42, Recall: 0.50},
			{Name: "WOE-pos", Precision: 0.35, Recall: 0.40},
			{Name: "ReVerb", Precision: 0.50, Recall: 0.55},
			{Name: "ReVerb-lex", Precision: 0.48, Recall: 0.50},
			{Name: "OLLIE", Precision: 0.38, Recall: 0.35,
				FalseWindow: Window{Lo: 0.72, Hi: 1.0}},
		},
		Groups: []GroupSpec{
			{Members: []int{0, 1}, OnTrue: true, Strength: 0.75},
			{Members: []int{2, 3, 4}, OnTrue: true, Strength: 0.65},
			{Members: []int{0, 1}, OnTrue: false, Strength: 0.70},
			{Members: []int{3, 4}, OnTrue: false, Strength: 0.70},
		},
	}
	// Confine the non-OLLIE extractors' mistakes to the front of the
	// false pool so OLLIE's mistakes (back of the pool) are
	// anti-correlated with everyone else's.
	for i := 0; i < 5; i++ {
		spec.Sources[i].FalseWindow = Window{Lo: 0, Hi: 0.78}
	}
	return Generate(spec)
}

// SimulatedRestaurant mimics the RESTAURANT dataset: 7 high-precision
// sources over 93 gold triples (68 true, 25 false). Correlation structure
// (per §5): a group of 4 sources strongly correlated on true triples, one
// pair fairly strongly anti-correlated on true triples (disjoint windows),
// and a group of 6 correlated on false triples. scale multiplies the gold
// size for variance-reduction experiments; pass 1 for the paper's shape.
func SimulatedRestaurant(seed int64, scale int) (*triple.Dataset, error) {
	if scale < 1 {
		scale = 1
	}
	spec := SyntheticSpec{
		NumTrue:       68 * scale,
		NumFalse:      25 * scale,
		Seed:          seed,
		SubjectPrefix: "restaurant",
		Sources: []SourceSpec{
			{Name: "Yelp", Precision: 0.95, Recall: 0.80},
			{Name: "Foursquare", Precision: 0.93, Recall: 0.75},
			{Name: "OpenTable", Precision: 0.96, Recall: 0.70},
			{Name: "MechanicalTurk", Precision: 0.90, Recall: 0.85},
			{Name: "YellowPages", Precision: 0.92, Recall: 0.60,
				TrueWindow: Window{Lo: 0, Hi: 0.55}},
			{Name: "CitySearch", Precision: 0.88, Recall: 0.55,
				TrueWindow: Window{Lo: 0.55, Hi: 1.0}},
			{Name: "MenuPages", Precision: 0.94, Recall: 0.45},
		},
		Groups: []GroupSpec{
			// Four sources correlated on true triples.
			{Members: []int{0, 1, 2, 3}, OnTrue: true, Strength: 0.65},
			// Six sources correlated on false triples (common confusions).
			{Members: []int{0, 1, 2, 3, 4, 5}, OnTrue: false, Strength: 0.55},
		},
	}
	return Generate(spec)
}

// SimulatedBook mimics the BOOK dataset: abebooks.com seller sources
// providing book-author triples. The world has 225 gold books with two true
// authors each (≈ 482 correct gold triples in the paper) and a pool of
// plausible wrong authors per book; 333 sellers list books with long-tail
// coverage and varied accuracy, so several triples share each book subject
// and subject-scoped fusion has real negative evidence.
//
// Correlated clusters follow §5's "Discovered correlations": a cluster of 22
// sellers that copy each other outright (correlated on both true and false
// triples — the paper found the 22-cluster in both domains), clusters of 3
// and 2 correlated on true triples (shared cataloguing conventions), and
// low-accuracy copying clusters of 3, 2 and 2 whose correlation shows mostly
// on false triples.
func SimulatedBook(seed int64) (*triple.Dataset, error) {
	const (
		nSources = 333
		nBooks   = 225
	)
	rng := stat.NewRNG(seed ^ 0x5eedb00c)
	spec := EntitySpec{
		NumEntities:    nBooks,
		TruePerEntity:  2,
		FalsePerEntity: 6,
		Predicate:      "author",
		Seed:           seed,
		SubjectPrefix:  "book",
	}
	for i := 0; i < nSources; i++ {
		cov := 0.01 + 0.05*rng.Float64() // long tail: a few gold books each
		acc := 0.25 + 0.65*rng.Float64()
		if i < 30 {
			// A head of larger sellers.
			cov = 0.08 + 0.25*rng.Float64()
			acc = 0.35 + 0.60*rng.Float64()
		}
		claims := 1 + 0.5*rng.Float64()
		spec.Sources = append(spec.Sources, EntitySourceSpec{
			Name:            fmt.Sprintf("seller-%03d", i),
			Coverage:        cov,
			Accuracy:        acc,
			ClaimsPerEntity: claims,
		})
	}
	// Low-accuracy members for the false-copying clusters, so their
	// correlation manifests mostly on mistakes.
	for _, i := range []int{50, 51, 52, 60, 61, 70, 71} {
		spec.Sources[i].Accuracy = 0.15 + 0.15*rng.Float64()
	}
	members := func(lo, hi int) []int {
		out := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
		return out
	}
	spec.Groups = []EntityGroupSpec{
		{Members: members(0, 22), Strength: 0.6},                // copying ring
		{Members: members(30, 33), Strength: 0.7, OnTrue: true}, // shared conventions
		{Members: members(40, 42), Strength: 0.8, OnTrue: true},
		{Members: members(50, 53), Strength: 0.7}, // mistake copiers
		{Members: members(60, 62), Strength: 0.8},
		{Members: members(70, 72), Strength: 0.8},
	}
	return GenerateEntities(spec)
}

// SyntheticCorrelated generates the Figure 7 workloads.
// When antiCorrelated is false: five sources of moderate quality, four of
// them strongly positively correlated on true triples (they tend to provide
// the same correct data while making independent mistakes — Scenario 2 of
// Example 4.1). When antiCorrelated is true: the sources are complementary
// (Scenario 4) — each covers its own, mildly overlapping slice of the
// domain, so both its correct data and its mistakes rarely coincide with
// another source's, and a triple provided by a single source should not be
// penalized for the silence of out-of-domain sources.
func SyntheticCorrelated(seed int64, antiCorrelated bool) (*triple.Dataset, error) {
	spec := SyntheticSpec{
		NumTrue:       500,
		NumFalse:      500,
		Seed:          seed,
		SubjectPrefix: "syn",
	}
	if antiCorrelated {
		// Staggered windows of width 0.3 at stride 0.175: neighbours
		// overlap a little, distant sources not at all.
		for i := 0; i < 5; i++ {
			lo := 0.175 * float64(i)
			w := Window{Lo: lo, Hi: lo + 0.3}
			spec.Sources = append(spec.Sources, SourceSpec{
				Precision:   0.65,
				Recall:      0.25,
				TrueWindow:  w,
				FalseWindow: w,
			})
		}
		return Generate(spec)
	}
	for i := 0; i < 5; i++ {
		spec.Sources = append(spec.Sources, SourceSpec{Precision: 0.65, Recall: 0.45})
	}
	spec.Groups = []GroupSpec{
		{Members: []int{0, 1, 2, 3}, OnTrue: true, Strength: 0.8},
	}
	return Generate(spec)
}
