package dataset

import (
	"bytes"
	"math"
	"testing"

	"corrfuse/internal/quality"
	"corrfuse/internal/triple"
)

func TestGenerateValidation(t *testing.T) {
	bad := []SyntheticSpec{
		{NumTrue: 0, Sources: []SourceSpec{{Precision: 0.5, Recall: 0.5}}},
		{NumTrue: 10, NumFalse: -1, Sources: []SourceSpec{{Precision: 0.5, Recall: 0.5}}},
		{NumTrue: 10},
		{NumTrue: 10, Sources: []SourceSpec{{Precision: 0, Recall: 0.5}}},
		{NumTrue: 10, Sources: []SourceSpec{{Precision: 0.5, Recall: 1.5}}},
		{NumTrue: 10, Sources: []SourceSpec{{Precision: 0.5, Recall: 0.5}},
			Groups: []GroupSpec{{Members: []int{0}, Strength: 2}}},
		{NumTrue: 10, Sources: []SourceSpec{{Precision: 0.5, Recall: 0.5}},
			Groups: []GroupSpec{{Members: []int{1}, Strength: 0.5}}},
		{NumTrue: 10, Sources: []SourceSpec{{Precision: 0.5, Recall: 0.5}},
			Groups: []GroupSpec{
				{Members: []int{0}, OnTrue: true, Strength: 0.5},
				{Members: []int{0}, OnTrue: true, Strength: 0.5},
			}},
	}
	for i, spec := range bad {
		if _, err := Generate(spec); err == nil {
			t.Errorf("spec %d should be rejected", i)
		}
	}
}

// TestGenerateCalibration: realized source precision and recall match the
// configured targets within sampling tolerance.
func TestGenerateCalibration(t *testing.T) {
	spec := UniformSpec(4, 4000, 0.4, 0.7, 0.5, 123)
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	nt, nf := d.CountLabels()
	if nt != 1600 || nf != 2400 {
		t.Fatalf("labels = (%d, %d), want (1600, 2400)", nt, nf)
	}
	est, err := quality.NewEstimator(d, quality.Options{Alpha: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < d.NumSources(); s++ {
		sid := triple.SourceID(s)
		if p := est.Precision(sid); math.Abs(p-0.7) > 0.05 {
			t.Errorf("source %d precision = %v, want ≈ 0.7", s, p)
		}
		if r := est.Recall(sid); math.Abs(r-0.5) > 0.05 {
			t.Errorf("source %d recall = %v, want ≈ 0.5", s, r)
		}
	}
}

// TestGenerateDeterminism: the same seed gives the same dataset.
func TestGenerateDeterminism(t *testing.T) {
	spec := UniformSpec(3, 500, 0.5, 0.6, 0.4, 77)
	a, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumTriples() != b.NumTriples() {
		t.Fatal("triple counts differ")
	}
	for i := 0; i < a.NumTriples(); i++ {
		id := triple.TripleID(i)
		pa, pb := a.Providers(id), b.Providers(id)
		if len(pa) != len(pb) {
			t.Fatalf("providers differ at %d", i)
		}
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("providers differ at %d", i)
			}
		}
	}
}

// TestGroupCorrelationRealized: a strong positive group pushes the pairwise
// joint recall above the independence product.
func TestGroupCorrelationRealized(t *testing.T) {
	spec := UniformSpec(4, 3000, 0.5, 0.7, 0.4, 99)
	spec.Groups = []GroupSpec{{Members: []int{0, 1}, OnTrue: true, Strength: 0.9}}
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	est, err := quality.NewEstimator(d, quality.Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	corr, ok := quality.CorrelationTrue(est, []triple.SourceID{0, 1})
	if !ok || corr < 1.5 {
		t.Errorf("grouped pair C_true = %v (ok=%v), want > 1.5", corr, ok)
	}
	indep, ok := quality.CorrelationTrue(est, []triple.SourceID{2, 3})
	if !ok || indep > 1.3 || indep < 0.7 {
		t.Errorf("independent pair C_true = %v (ok=%v), want ≈ 1", indep, ok)
	}
}

// TestWindowComplementarity: disjoint windows produce negative correlation.
func TestWindowComplementarity(t *testing.T) {
	spec := SyntheticSpec{
		NumTrue:  2000,
		NumFalse: 2000,
		Seed:     5,
		Sources: []SourceSpec{
			{Precision: 0.6, Recall: 0.3, TrueWindow: Window{Lo: 0, Hi: 0.5}},
			{Precision: 0.6, Recall: 0.3, TrueWindow: Window{Lo: 0.5, Hi: 1}},
		},
	}
	d, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	est, err := quality.NewEstimator(d, quality.Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	r, ok := est.JointRecall([]triple.SourceID{0, 1})
	if !ok || r > 0.01 {
		t.Errorf("joint recall of disjoint windows = %v, want ≈ 0", r)
	}
}

func TestWindowHelpers(t *testing.T) {
	if !(Window{}).full() || !(Window{0, 1}).full() {
		t.Error("zero and unit windows should be full")
	}
	w := Window{Lo: 0.2, Hi: 0.7}
	if w.full() {
		t.Error("partial window reported full")
	}
	if got := w.width(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("width = %v", got)
	}
	if !w.contains(0.2) || w.contains(0.7) || w.contains(0.1) {
		t.Error("contains broken")
	}
	if (Window{Lo: 0.9, Hi: 0.5}).width() != 0 {
		t.Error("inverted window should have zero width")
	}
}

func TestEntityGeneration(t *testing.T) {
	spec := EntitySpec{
		NumEntities:    100,
		TruePerEntity:  2,
		FalsePerEntity: 4,
		Seed:           3,
		Sources: []EntitySourceSpec{
			{Name: "good", Coverage: 0.8, Accuracy: 0.9, ClaimsPerEntity: 1.5},
			{Name: "bad", Coverage: 0.5, Accuracy: 0.3},
			{Name: "tiny", Coverage: 0.05, Accuracy: 0.7},
		},
	}
	d, err := GenerateEntities(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	nt, _ := d.CountLabels()
	if nt != 200 {
		t.Errorf("true labels = %d, want 200 (all correct values labeled)", nt)
	}
	// The accurate source should realize much higher precision.
	est, err := quality.NewEstimator(d, quality.Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	good, _ := d.SourceID("good")
	bad, _ := d.SourceID("bad")
	if pg, pb := est.Precision(good), est.Precision(bad); pg < pb+0.2 {
		t.Errorf("precision(good)=%v should clearly exceed precision(bad)=%v", pg, pb)
	}
	// Subjects are shared between true and false triples of one entity.
	subjHasBoth := false
	bySubj := map[string][2]bool{}
	for i := 0; i < d.NumTriples(); i++ {
		id := triple.TripleID(i)
		tr := d.Triple(id)
		e := bySubj[tr.Subject]
		if d.Label(id) == triple.True {
			e[0] = true
		} else if d.Label(id) == triple.False {
			e[1] = true
		}
		bySubj[tr.Subject] = e
		if e[0] && e[1] {
			subjHasBoth = true
		}
	}
	if !subjHasBoth {
		t.Error("entity generation should mix true and false triples per subject")
	}
}

func TestEntityCopyingGroup(t *testing.T) {
	spec := EntitySpec{
		NumEntities:    400,
		TruePerEntity:  1,
		FalsePerEntity: 5,
		Seed:           9,
		Sources: []EntitySourceSpec{
			{Coverage: 0.5, Accuracy: 0.6},
			{Coverage: 0.5, Accuracy: 0.6},
			{Coverage: 0.5, Accuracy: 0.6},
		},
		Groups: []EntityGroupSpec{{Members: []int{0, 1}, Strength: 0.9}},
	}
	d, err := GenerateEntities(spec)
	if err != nil {
		t.Fatal(err)
	}
	est, err := quality.NewEstimator(d, quality.Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	copied, _ := quality.CorrelationTrue(est, []triple.SourceID{0, 1})
	indep, _ := quality.CorrelationTrue(est, []triple.SourceID{0, 2})
	if copied < indep+0.3 {
		t.Errorf("copying pair C=%v should clearly exceed independent pair C=%v", copied, indep)
	}
}

func TestEntityValidation(t *testing.T) {
	base := EntitySpec{
		NumEntities: 10, TruePerEntity: 1, FalsePerEntity: 2,
		Sources: []EntitySourceSpec{{Coverage: 0.5, Accuracy: 0.5}},
	}
	bad := []func(EntitySpec) EntitySpec{
		func(s EntitySpec) EntitySpec { s.NumEntities = 0; return s },
		func(s EntitySpec) EntitySpec { s.TruePerEntity = 0; return s },
		func(s EntitySpec) EntitySpec { s.Sources = nil; return s },
		func(s EntitySpec) EntitySpec { s.Sources[0].Coverage = 2; return s },
		func(s EntitySpec) EntitySpec {
			s.Groups = []EntityGroupSpec{{Members: []int{5}, Strength: 0.5}}
			return s
		},
	}
	for i, mod := range bad {
		if _, err := GenerateEntities(mod(base)); err == nil {
			t.Errorf("case %d should be rejected", i)
		}
		base = EntitySpec{
			NumEntities: 10, TruePerEntity: 1, FalsePerEntity: 2,
			Sources: []EntitySourceSpec{{Coverage: 0.5, Accuracy: 0.5}},
		}
	}
}

func TestSimulatedDatasetsShape(t *testing.T) {
	rv, err := SimulatedReVerb(1)
	if err != nil {
		t.Fatal(err)
	}
	if rv.NumSources() != 6 {
		t.Errorf("ReVerb sources = %d, want 6", rv.NumSources())
	}
	nt, nf := rv.CountLabels()
	if nt != 616 || nf != 1791 {
		t.Errorf("ReVerb labels = (%d, %d), want (616, 1791)", nt, nf)
	}

	rs, err := SimulatedRestaurant(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rs.NumSources() != 7 {
		t.Errorf("Restaurant sources = %d, want 7", rs.NumSources())
	}
	nt, nf = rs.CountLabels()
	if nt != 68 || nf != 25 {
		t.Errorf("Restaurant labels = (%d, %d), want (68, 25)", nt, nf)
	}

	bk, err := SimulatedBook(1)
	if err != nil {
		t.Fatal(err)
	}
	if bk.NumSources() != 333 {
		t.Errorf("Book sources = %d, want 333", bk.NumSources())
	}
	nt, nf = bk.CountLabels()
	if nt != 450 || nf < 500 {
		t.Errorf("Book labels = (%d, %d), want 450 true and several hundred false", nt, nf)
	}
}

func TestProvidedLabeledAndGoldLabels(t *testing.T) {
	d := Obama()
	ids := ProvidedLabeled(d)
	if len(ids) != 10 {
		t.Fatalf("Obama provided labeled = %d, want 10", len(ids))
	}
	labels := GoldLabels(d, ids)
	nTrue := 0
	for _, l := range labels {
		if l {
			nTrue++
		}
	}
	if nTrue != 6 {
		t.Errorf("true labels = %d, want 6", nTrue)
	}
}

func TestIORoundTrip(t *testing.T) {
	d, err := SimulatedRestaurant(4, 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTriples() != d.NumTriples() {
		t.Fatalf("triples: %d vs %d", back.NumTriples(), d.NumTriples())
	}
	nt1, nf1 := d.CountLabels()
	nt2, nf2 := back.CountLabels()
	if nt1 != nt2 || nf1 != nf2 {
		t.Fatalf("labels: (%d,%d) vs (%d,%d)", nt1, nf1, nt2, nf2)
	}
	for i := 0; i < d.NumTriples(); i++ {
		id := triple.TripleID(i)
		tr := d.Triple(id)
		backID, ok := back.TripleID(tr)
		if !ok {
			t.Fatalf("triple %v lost", tr)
		}
		if back.Label(backID) != d.Label(id) {
			t.Errorf("label mismatch for %v", tr)
		}
		if len(back.Providers(backID)) != len(d.Providers(id)) {
			t.Errorf("provider count mismatch for %v", tr)
		}
		for _, s := range d.Providers(id) {
			name := d.SourceName(s)
			bs, ok := back.SourceID(name)
			if !ok || !back.Provides(bs, backID) {
				t.Errorf("provider %s lost for %v", name, tr)
			}
		}
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewBufferString("not json\n")); err == nil {
		t.Error("garbage should fail")
	}
	if _, err := Read(bytes.NewBufferString(`{"subject":"s","predicate":"p","object":"o","label":"maybe"}` + "\n")); err == nil {
		t.Error("unknown label should fail")
	}
	// Blank lines are fine.
	d, err := Read(bytes.NewBufferString("\n" + `{"subject":"s","predicate":"p","object":"o","sources":["A"],"label":"true"}` + "\n\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTriples() != 1 || d.NumSources() != 1 {
		t.Error("valid line not parsed")
	}
}

func TestSyntheticCorrelatedScenarios(t *testing.T) {
	pos, err := SyntheticCorrelated(1, false)
	if err != nil {
		t.Fatal(err)
	}
	est, err := quality.NewEstimator(pos, quality.Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	c, ok := quality.CorrelationTrue(est, []triple.SourceID{0, 1})
	if !ok || c < 1.3 {
		t.Errorf("positive scenario pair C_true = %v, want > 1.3", c)
	}

	anti, err := SyntheticCorrelated(1, true)
	if err != nil {
		t.Fatal(err)
	}
	est2, err := quality.NewEstimator(anti, quality.Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Distant windows: near-zero overlap.
	c2, ok := quality.CorrelationTrue(est2, []triple.SourceID{0, 4})
	if ok && c2 > 0.5 {
		t.Errorf("anti scenario distant pair C_true = %v, want < 0.5", c2)
	}
}
