package index_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"corrfuse"
	"corrfuse/internal/index"
	"corrfuse/internal/triple"
)

// randomDataset generates a reproducible random dataset: nSrc sources
// observing triples over a handful of subjects, ~2/3 labeled. A small
// backbone (true triples provided by every source, false triples provided
// by half) guarantees quality estimation is viable for every seed.
func randomDataset(seed int64) *triple.Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := triple.NewDataset()
	nSrc := 4 + rng.Intn(8)
	srcs := make([]triple.SourceID, nSrc)
	for i := range srcs {
		srcs[i] = d.AddSource(fmt.Sprintf("src%d", i))
	}
	for i := 0; i < 3; i++ {
		t := triple.Triple{Subject: fmt.Sprintf("base%d", i), Predicate: "p", Object: "v"}
		for _, s := range srcs {
			d.Observe(s, t)
		}
		d.SetLabel(t, triple.True)
	}
	for i := 0; i < 2; i++ {
		t := triple.Triple{Subject: fmt.Sprintf("basef%d", i), Predicate: "p", Object: "v"}
		for j, s := range srcs {
			if j%2 == i%2 {
				d.Observe(s, t)
			}
		}
		d.SetLabel(t, triple.False)
	}
	nSub := 10 + rng.Intn(30)
	for s := 0; s < nSub; s++ {
		for p := 0; p < 1+rng.Intn(3); p++ {
			t := triple.Triple{
				Subject:   fmt.Sprintf("s%d", s),
				Predicate: fmt.Sprintf("p%d", p),
				Object:    fmt.Sprintf("o%d", rng.Intn(3)),
			}
			provided := false
			for _, src := range srcs {
				if rng.Float64() < 0.4 {
					d.Observe(src, t)
					provided = true
				}
			}
			switch rng.Intn(3) {
			case 0:
				d.SetLabel(t, triple.True)
			case 1:
				if provided {
					d.SetLabel(t, triple.False)
				}
			}
		}
	}
	return d
}

// buildModel trains the model for one property-test configuration.
func buildModel(t *testing.T, d *triple.Dataset, method corrfuse.Method, shards int) corrfuse.Model {
	t.Helper()
	opts := corrfuse.Options{Method: method, Smoothing: 0.5, Shards: shards}
	m, err := corrfuse.NewModel(d, opts)
	if err != nil {
		t.Fatalf("NewModel(%v, shards=%d): %v", method, shards, err)
	}
	return m
}

// buildIndex freezes the model and builds an Index over its score tables,
// the way the serving layer does at snapshot-swap time.
func buildIndex(t *testing.T, d *triple.Dataset, m corrfuse.Model, version uint64) *index.Index {
	t.Helper()
	probs, provided, accepted := m.FrozenScores()
	return index.Build(d, probs, provided, accepted, version)
}

// propertyConfigs spans the supervised methods (monolithic and sharded) and
// an unsupervised baseline.
func propertyConfigs() []struct {
	name   string
	method corrfuse.Method
	shards int
} {
	return []struct {
		name   string
		method corrfuse.Method
		shards int
	}{
		{"precrec", corrfuse.PrecRec, 0},
		{"corr", corrfuse.PrecRecCorr, 0},
		{"corr-sharded3", corrfuse.PrecRecCorr, 3},
		{"union", corrfuse.UnionK, 0},
	}
}

// TestIndexInvariants checks, over random datasets and every engine
// configuration, the read-path invariants the serving layer relies on:
//
//   - every indexed probability is in [0, 1];
//   - Lookup(id) equals the model's Probability for every triple of the
//     dataset, to 1e-12 (in fact exactly: the index freezes the model's own
//     outputs);
//   - Lookup rejects exactly the IDs outside the fused result set;
//   - every per-subject and per-source slice is ranked by descending
//     probability and contains only matching entries.
func TestIndexInvariants(t *testing.T) {
	for _, cfg := range propertyConfigs() {
		for seed := int64(1); seed <= 8; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", cfg.name, seed), func(t *testing.T) {
				d := randomDataset(seed)
				m := buildModel(t, d, cfg.method, cfg.shards)
				idx := buildIndex(t, d, m, uint64(seed))
				if idx.Version() != uint64(seed) {
					t.Fatalf("Version = %d, want %d", idx.Version(), seed)
				}
				provided := 0
				for i := 0; i < d.NumTriples(); i++ {
					id := triple.TripleID(i)
					p, _, ok := idx.Lookup(id)
					if len(d.Providers(id)) == 0 {
						if ok {
							t.Fatalf("Lookup(%d) ok for unprovided triple", id)
						}
						continue
					}
					provided++
					if !ok {
						t.Fatalf("Lookup(%d) not ok for provided triple %v", id, d.Triple(id))
					}
					if p < 0 || p > 1 || math.IsNaN(p) {
						t.Fatalf("probability %v outside [0,1] for %v", p, d.Triple(id))
					}
					if want := m.ProbabilityByID(id); math.Abs(p-want) > 1e-12 {
						t.Fatalf("Lookup(%d) = %v, model says %v", id, p, want)
					}
				}
				if idx.Len() != provided {
					t.Fatalf("index has %d entries, dataset has %d provided triples", idx.Len(), provided)
				}
				if _, _, ok := idx.Lookup(triple.TripleID(d.NumTriples())); ok {
					t.Fatal("Lookup beyond the dataset returned ok")
				}
				checkRanked(t, d, idx)
			})
		}
	}
}

// checkRanked asserts every subject and source slice is sorted by
// descending probability with entries matching the key.
func checkRanked(t *testing.T, d *triple.Dataset, idx *index.Index) {
	t.Helper()
	subjects := make(map[string]bool)
	sources := make(map[string]bool)
	for i := 0; i < d.NumTriples(); i++ {
		id := triple.TripleID(i)
		subjects[d.Triple(id).Subject] = true
		for _, s := range d.Providers(id) {
			sources[d.SourceName(s)] = true
		}
	}
	total := 0
	for sub := range subjects {
		entries := idx.Subject(sub)
		total += len(entries)
		for i, e := range entries {
			if e.Triple.Subject != sub {
				t.Fatalf("subject %q slice contains %v", sub, e.Triple)
			}
			if i > 0 && entries[i-1].Probability < e.Probability {
				t.Fatalf("subject %q slice not ranked: %v before %v", sub, entries[i-1].Probability, e.Probability)
			}
		}
	}
	if total != idx.Len() {
		t.Fatalf("subject slices hold %d entries, index %d", total, idx.Len())
	}
	for src := range sources {
		entries := idx.Source(src)
		for i, e := range entries {
			found := false
			for _, name := range e.Sources {
				if name == src {
					found = true
				}
			}
			if !found {
				t.Fatalf("source %q slice contains %v provided by %v", src, e.Triple, e.Sources)
			}
			if i > 0 && entries[i-1].Probability < e.Probability {
				t.Fatalf("source %q slice not ranked", src)
			}
		}
	}
}

// TestIndexDeterministicAcrossRebuilds: rebuilding identical data must
// produce bitwise-identical rankings — same subjects, same order, same
// probabilities — so replicas fused from the same store serve the same
// answers and a replayed rebuild is reproducible.
func TestIndexDeterministicAcrossRebuilds(t *testing.T) {
	for _, cfg := range propertyConfigs() {
		for seed := int64(1); seed <= 4; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", cfg.name, seed), func(t *testing.T) {
				d1 := randomDataset(seed)
				d2 := randomDataset(seed)
				idx1 := buildIndex(t, d1, buildModel(t, d1, cfg.method, cfg.shards), 1)
				idx2 := buildIndex(t, d2, buildModel(t, d2, cfg.method, cfg.shards), 1)
				r1, r2 := idx1.Ranked(), idx2.Ranked()
				if len(r1) != len(r2) {
					t.Fatalf("rebuild changed result count: %d vs %d", len(r1), len(r2))
				}
				for i := range r1 {
					if r1[i].Triple != r2[i].Triple {
						t.Fatalf("rank %d: %v vs %v", i, r1[i].Triple, r2[i].Triple)
					}
					if r1[i].Probability != r2[i].Probability {
						t.Fatalf("rank %d (%v): probability %v vs %v",
							i, r1[i].Triple, r1[i].Probability, r2[i].Probability)
					}
					if r1[i].Accepted != r2[i].Accepted || r1[i].Label != r2[i].Label {
						t.Fatalf("rank %d (%v): decision or label differs", i, r1[i].Triple)
					}
				}
			})
		}
	}
}

// TestFrozenModelMatchesUnfrozen: freezing must not change a single served
// value — Probability and Score after Fuse equal the algorithm's direct
// outputs computed by an identical unfrozen model.
func TestFrozenModelMatchesUnfrozen(t *testing.T) {
	for _, cfg := range propertyConfigs() {
		t.Run(cfg.name, func(t *testing.T) {
			d := randomDataset(42)
			frozen := buildModel(t, d, cfg.method, cfg.shards)
			if _, err := frozen.Fuse(); err != nil {
				t.Fatal(err)
			}
			cold := buildModel(t, d, cfg.method, cfg.shards)
			var ids []triple.TripleID
			for i := 0; i < d.NumTriples(); i++ {
				ids = append(ids, triple.TripleID(i))
			}
			warm := frozen.Score(ids)
			want := cold.Score(ids)
			for i := range ids {
				if warm[i] != want[i] {
					t.Fatalf("Score(%v) = %v frozen, %v unfrozen", d.Triple(ids[i]), warm[i], want[i])
				}
				if p := frozen.ProbabilityByID(ids[i]); p != want[i] {
					t.Fatalf("ProbabilityByID(%v) = %v frozen, %v unfrozen", d.Triple(ids[i]), p, want[i])
				}
			}
		})
	}
}
