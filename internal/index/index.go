// Package index provides the immutable read-path index of the fusion
// service: one frozen, jointly-scored view of a snapshot's fused results,
// built once per batch rebuild and shared lock-free by every reader.
//
// The paper frames fusion output as a single result set scored jointly per
// snapshot; this package freezes exactly that shape. A Build call turns the
// scored triples of one rebuild into three read structures:
//
//   - a dense triple-ID → {probability, decision} table (O(1) point reads),
//   - a subject → ranked result slice map (pre-sorted once; serving a
//     subject never re-sorts),
//   - a source → ranked contribution slice map.
//
// An Index is immutable after Build. Readers reach it through the serving
// layer's atomic snapshot pointer, so no lock is ever taken on the read
// path and no reader can observe a half-built index. The version the index
// was built at is carried alongside, letting responses prove that index and
// snapshot belong to the same generation.
package index

import (
	"sort"
	"time"

	"corrfuse/internal/triple"
)

// Entry is one served result: the triple with its provenance, gold label
// and frozen fusion state. The JSON shape matches what the serving layer
// returns from its listing endpoints.
type Entry struct {
	Triple      triple.Triple `json:"triple"`
	Sources     []string      `json:"sources,omitempty"`
	Label       string        `json:"label,omitempty"`
	Probability float64       `json:"probability"`
	Accepted    bool          `json:"accepted"`
}

// Index is the immutable fused-result index of one snapshot. All methods
// are safe for unsynchronized concurrent use; the slices returned by
// Subject and Source are shared and must not be mutated.
type Index struct {
	version uint64
	built   time.Duration

	// Dense tables by TripleID over the snapshot dataset; provided marks
	// the IDs the fused result set covers (triples with at least one
	// provider). The slices are shared with the frozen model (see
	// Model.FrozenScores), not copied — both sides are immutable.
	probs    []float64
	accepted []bool
	provided []bool

	// entries holds every fused result in global rank order (descending
	// probability, ties broken by triple key so identical data always
	// ranks identically). The per-subject and per-source slices point into
	// it, inheriting the order.
	entries   []Entry
	bySubject map[string][]*Entry
	bySource  map[string][]*Entry
}

// Build freezes the fused results of one rebuild into an Index. d is the
// snapshot dataset the IDs refer to; probs, provided and accepted are the
// model's frozen score tables (Model.FrozenScores), dense by TripleID —
// they are adopted by reference, not copied, so the index adds only the
// ranked listing structures on top of the tables the model already holds.
// version is the store data version the snapshot was captured at.
// Provenance, labels and the tables must not be mutated afterwards (the
// serving layer's datasets and frozen models never are).
func Build(d *triple.Dataset, probs []float64, provided, accepted []bool, version uint64) *Index {
	begin := time.Now()
	n := d.NumTriples()
	if n > len(provided) {
		n = len(provided) // defensive: never read past the tables
	}
	count := 0
	for i := 0; i < n; i++ {
		if provided[i] {
			count++
		}
	}
	idx := &Index{
		version:   version,
		probs:     probs,
		accepted:  accepted,
		provided:  provided,
		entries:   make([]Entry, 0, count),
		bySubject: make(map[string][]*Entry),
		bySource:  make(map[string][]*Entry),
	}
	for i := 0; i < n; i++ {
		id := triple.TripleID(i)
		if !provided[i] {
			continue
		}
		e := Entry{Triple: d.Triple(id), Probability: probs[i], Accepted: accepted[i]}
		provs := d.Providers(id)
		if len(provs) > 0 {
			e.Sources = make([]string, len(provs))
			for j, s := range provs {
				e.Sources[j] = d.SourceName(s)
			}
			sort.Strings(e.Sources)
		}
		switch d.Label(id) {
		case triple.True:
			e.Label = "true"
		case triple.False:
			e.Label = "false"
		}
		idx.entries = append(idx.entries, e)
	}
	// One global ranking with a total, data-only tie-break: identical data
	// always produces identical order, independent of input order or of
	// sort-internal permutations.
	sort.Slice(idx.entries, func(a, b int) bool {
		ea, eb := &idx.entries[a], &idx.entries[b]
		if ea.Probability != eb.Probability {
			return ea.Probability > eb.Probability
		}
		return ea.Triple.Key() < eb.Triple.Key()
	})
	// The per-subject and per-source slices append in global rank order,
	// so every slice is born ranked — serving never sorts again.
	for i := range idx.entries {
		e := &idx.entries[i]
		idx.bySubject[e.Triple.Subject] = append(idx.bySubject[e.Triple.Subject], e)
		for _, src := range e.Sources {
			idx.bySource[src] = append(idx.bySource[src], e)
		}
	}
	idx.built = time.Since(begin)
	return idx
}

// Version returns the store data version the index was built at. A response
// assembled from one snapshot must carry an index version equal to the
// snapshot's own version; a mismatch would mean a reader mixed generations.
func (idx *Index) Version() uint64 { return idx.version }

// BuildTime returns the wall time Build took.
func (idx *Index) BuildTime() time.Duration { return idx.built }

// Len returns the number of fused results in the index.
func (idx *Index) Len() int { return len(idx.entries) }

// Subjects returns the number of distinct subjects with fused results.
func (idx *Index) Subjects() int { return len(idx.bySubject) }

// Sources returns the number of distinct sources contributing results.
func (idx *Index) Sources() int { return len(idx.bySource) }

// Lookup returns the frozen probability and acceptance decision for a
// snapshot triple ID in O(1). ok is false for IDs outside the fused result
// set (unknown, or stored without any provider).
//
//corrfuse:hotpath
func (idx *Index) Lookup(id triple.TripleID) (p float64, accepted, ok bool) {
	if int(id) >= len(idx.provided) || !idx.provided[id] {
		return 0, false, false
	}
	return idx.probs[id], idx.accepted[id], true
}

// Subject returns the fused results about a subject, pre-ranked by
// descending probability. The slice is shared: callers must not mutate it.
func (idx *Index) Subject(subject string) []*Entry {
	return idx.bySubject[subject]
}

// Source returns the fused results a source contributed to, pre-ranked by
// descending probability. The slice is shared: callers must not mutate it.
func (idx *Index) Source(name string) []*Entry {
	return idx.bySource[name]
}

// Ranked returns every fused result in global rank order. The slice is
// shared: callers must not mutate it.
func (idx *Index) Ranked() []Entry { return idx.entries }
