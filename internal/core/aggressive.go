package core

import (
	"corrfuse/internal/quality"
	"corrfuse/internal/triple"
)

// Aggressive is the linear-time approximation of Definition 4.5. Each
// source's recall and FPR are re-weighted by the correlation factors
//
//	C⁺ᵢ = r_{1..n} / (rᵢ · r_{1..n ∖ i})
//	C⁻ᵢ = q_{1..n} / (qᵢ · q_{1..n ∖ i})
//
// and the independent-model product formula is applied to the weighted rates:
//
//	µ_aggr = ∏_{St} (C⁺ᵢrᵢ)/(C⁻ᵢqᵢ) · ∏_{St̄} (1−C⁺ᵢrᵢ)/(1−C⁻ᵢqᵢ)
//
// With independent sources every factor is 1 and the result coincides with
// PrecRec (Corollary 4.6). Factors are computed within each cluster.
type Aggressive struct {
	cfg    Config
	views  []*clusterView
	cplus  [][]float64
	cminus [][]float64
}

// NewAggressive builds the aggressive approximation.
func NewAggressive(cfg Config) (*Aggressive, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	a := &Aggressive{cfg: cfg}
	for _, cl := range cfg.Clusters {
		a.views = append(a.views, newClusterView(cl))
		cp, cm := quality.AggressiveFactors(cfg.Params, cl)
		a.cplus = append(a.cplus, cp)
		a.cminus = append(a.cminus, cm)
	}
	return a, nil
}

// Name implements Algorithm.
func (a *Aggressive) Name() string { return "PrecRecCorr-Aggr" }

// Factors exposes the per-cluster C⁺/C⁻ factors (Figure 3 of the paper).
// The outer index is the cluster, the inner index the member position.
func (a *Aggressive) Factors() (cplus, cminus [][]float64) { return a.cplus, a.cminus }

// clusterMu evaluates the weighted product for one cluster/pattern.
func (a *Aggressive) clusterMu(ci int, p pattern) float64 {
	cv := a.views[ci]
	mu := 1.0
	for _, i := range p.inScope.Elems() {
		s := cv.members[i]
		r := clampRate(a.cplus[ci][i] * a.cfg.Params.Recall(s))
		q := clampRate(a.cminus[ci][i] * a.cfg.Params.FPR(s))
		if p.providers.Contains(i) {
			mu *= r / q
		} else {
			mu *= (1 - r) / (1 - q)
		}
	}
	return mu
}

// Mu returns µ_aggr for a triple.
func (a *Aggressive) Mu(id triple.TripleID) float64 {
	mu := 1.0
	for ci, cv := range a.views {
		pat := cv.patternFor(a.cfg.Dataset, a.cfg.Scope, id)
		c := ci
		mu *= cv.muCached(pat, func(p pattern) float64 { return a.clusterMu(c, p) })
	}
	return mu
}

// Probability implements Algorithm.
func (a *Aggressive) Probability(id triple.TripleID) float64 {
	return muToProb(a.cfg.Params.Alpha(), a.Mu(id))
}

// Score implements Algorithm.
func (a *Aggressive) Score(ids []triple.TripleID) []float64 { return scoreAll(a, ids) }
