package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"corrfuse/internal/triple"
)

// cheapAlg is a scoring stub whose per-triple cost is a few nanoseconds, so
// a work-queue benchmark measures dispatch overhead, not scoring.
type cheapAlg struct{}

func (cheapAlg) Name() string { return "cheap" }
func (cheapAlg) Probability(id triple.TripleID) float64 {
	return 1 / (1 + float64(id))
}
func (cheapAlg) Score(ids []triple.TripleID) []float64 { return scoreAll(cheapAlg{}, ids) }

// mutexDispatch is the work queue ParallelScore used before the atomic
// cursor: a counter guarded by a mutex. Kept here as the benchmark baseline.
func mutexDispatch(a Algorithm, ids []triple.TripleID, workers, chunk int) []float64 {
	out := make([]float64, len(ids))
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				lo := next
				next += chunk
				mu.Unlock()
				if lo >= len(ids) {
					return
				}
				hi := lo + chunk
				if hi > len(ids) {
					hi = len(ids)
				}
				for i := lo; i < hi; i++ {
					out[i] = a.Probability(ids[i])
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// atomicDispatch is the same loop with the lock-free cursor ParallelScore
// now uses, with the chunk size parameterized for the comparison.
func atomicDispatch(a Algorithm, ids []triple.TripleID, workers, chunk int) []float64 {
	out := make([]float64, len(ids))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(chunk))) - chunk
				if lo >= len(ids) {
					return
				}
				hi := lo + chunk
				if hi > len(ids) {
					hi = len(ids)
				}
				for i := lo; i < hi; i++ {
					out[i] = a.Probability(ids[i])
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// BenchmarkWorkQueue contrasts the mutex-guarded and atomic work-queue
// counters under maximal contention: a tiny chunk size and a near-free
// per-triple cost, so workers hammer the counter. chunk=1 is the worst
// case; chunk=64 is ParallelScore's production setting, where the atomic
// cursor still wins but both amortize well.
func BenchmarkWorkQueue(b *testing.B) {
	ids := make([]triple.TripleID, 1<<16)
	for i := range ids {
		ids[i] = triple.TripleID(i)
	}
	workers := runtime.GOMAXPROCS(0)
	for _, chunk := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("mutex-chunk-%d", chunk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mutexDispatch(cheapAlg{}, ids, workers, chunk)
			}
		})
		b.Run(fmt.Sprintf("atomic-chunk-%d", chunk), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				atomicDispatch(cheapAlg{}, ids, workers, chunk)
			}
		})
	}
}
