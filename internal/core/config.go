// Package core implements the paper's fusion algorithms: the independent
// Bayesian model PrecRec (Theorem 3.1), the exact correlation-aware model
// (Theorem 4.2), the linear-time aggressive approximation (Definition 4.5),
// and the elastic approximation (Algorithm 1).
//
// Every algorithm turns the observation pattern of a triple t — which sources
// provide it (St) and which in-scope sources do not (St̄) — into the ratio
// µ = Pr(Ot|t) / Pr(Ot|¬t), and then into the correctness probability
//
//	Pr(t | Ot) = 1 / (1 + (1−α)/α · 1/µ).
//
// The correlation-aware algorithms may factor the source set into clusters
// (independence assumed across clusters, exact or approximate treatment
// within each cluster), which is how the paper scales to the BOOK dataset.
package core

import (
	"fmt"
	"math"
	"sync"

	"corrfuse/internal/quality"
	"corrfuse/internal/stat"
	"corrfuse/internal/triple"
)

// probEps is the clamp applied to rates before they enter ratios and
// logarithms, so estimated rates of exactly 0 or 1 cannot produce NaNs.
const probEps = 1e-12

// sumEps is the floor applied to inclusion–exclusion sums: with estimated
// joint parameters the alternating sums can come out marginally negative.
const sumEps = 1e-15

// Config carries the inputs shared by all fusion algorithms.
type Config struct {
	// Dataset supplies the observation matrix.
	Dataset *triple.Dataset
	// Params supplies α, per-source and joint quality parameters.
	Params quality.Params
	// Scope decides which non-providing sources count as evidence
	// against a triple. Defaults to triple.ScopeGlobal{}.
	Scope triple.Scope
	// Clusters partitions the sources for the correlation-aware
	// algorithms: sources in different clusters are treated as
	// independent. Nil means a single cluster containing every source.
	// PrecRec ignores clusters (it assumes full independence).
	Clusters [][]triple.SourceID
}

// normalize fills defaults and validates the cluster partition.
func (c *Config) normalize() error {
	if c.Dataset == nil {
		return fmt.Errorf("core: Config.Dataset is nil")
	}
	if c.Params == nil {
		return fmt.Errorf("core: Config.Params is nil")
	}
	if c.Scope == nil {
		c.Scope = triple.ScopeGlobal{}
	}
	n := c.Dataset.NumSources()
	if c.Clusters == nil {
		all := make([]triple.SourceID, n)
		for i := range all {
			all[i] = triple.SourceID(i)
		}
		c.Clusters = [][]triple.SourceID{all}
		return nil
	}
	seen := make([]bool, n)
	for ci, cl := range c.Clusters {
		if len(cl) == 0 {
			return fmt.Errorf("core: cluster %d is empty", ci)
		}
		for _, s := range cl {
			if int(s) < 0 || int(s) >= n {
				return fmt.Errorf("core: cluster %d contains unknown source %d", ci, s)
			}
			if seen[s] {
				return fmt.Errorf("core: source %d appears in two clusters", s)
			}
			seen[s] = true
		}
	}
	for s, ok := range seen {
		if !ok {
			return fmt.Errorf("core: source %d missing from cluster partition", s)
		}
	}
	return nil
}

// Algorithm scores triples with correctness probabilities.
type Algorithm interface {
	// Name identifies the algorithm (for tables and logs).
	Name() string
	// Probability returns Pr(t | Ot) for one triple.
	Probability(id triple.TripleID) float64
	// Score returns Pr(t | Ot) for each listed triple.
	Score(ids []triple.TripleID) []float64
}

// muToProb converts µ into Pr(t|Ot) = 1/(1 + (1−α)/α · 1/µ) working through
// the log-odds to stay stable for extreme µ.
func muToProb(alpha, mu float64) float64 {
	if mu <= 0 {
		return 0
	}
	if math.IsInf(mu, 1) {
		return 1
	}
	return stat.Sigmoid(stat.Logit(alpha) + math.Log(mu))
}

// pattern captures, for one cluster, which members provide a triple and
// which members are in scope. It is the memoization key for per-cluster µ.
type pattern struct {
	providers stat.Set64
	inScope   stat.Set64
}

// clusterView precomputes the local indexing of one cluster.
type clusterView struct {
	members []triple.SourceID
	// local[s] is the local index of global source s, or -1.
	local map[triple.SourceID]int

	mu    sync.Mutex
	cache map[pattern]float64
}

func newClusterView(members []triple.SourceID) *clusterView {
	cv := &clusterView{
		members: members,
		local:   make(map[triple.SourceID]int, len(members)),
		cache:   make(map[pattern]float64),
	}
	for i, s := range members {
		cv.local[s] = i
	}
	return cv
}

// patternFor computes the observation pattern of triple id within the
// cluster under the given scope.
func (cv *clusterView) patternFor(d *triple.Dataset, sc triple.Scope, id triple.TripleID) pattern {
	var p pattern
	for i, s := range cv.members {
		if d.Provides(s, id) {
			p.providers = p.providers.Add(i)
			p.inScope = p.inScope.Add(i)
		} else if sc.InScope(d, s, id) {
			p.inScope = p.inScope.Add(i)
		}
	}
	return p
}

// muCached returns the memoized µ for a pattern, computing it with f on miss.
func (cv *clusterView) muCached(p pattern, f func(pattern) float64) float64 {
	cv.mu.Lock()
	v, ok := cv.cache[p]
	cv.mu.Unlock()
	if ok {
		return v
	}
	v = f(p)
	cv.mu.Lock()
	cv.cache[p] = v
	cv.mu.Unlock()
	return v
}

// subsetIDs converts a local-index set into global source IDs.
func (cv *clusterView) subsetIDs(s stat.Set64) []triple.SourceID {
	elems := s.Elems()
	out := make([]triple.SourceID, len(elems))
	for i, e := range elems {
		out[i] = cv.members[e]
	}
	return out
}

// clampRate bounds a probability estimate away from 0 and 1.
func clampRate(v float64) float64 { return stat.Clamp(v, probEps, 1-probEps) }

// jointRecallOf returns the joint recall of a local subset, with r_∅ = 1 and
// an independence-product fallback when the parameter has no support.
func jointRecallOf(p quality.Params, cv *clusterView, s stat.Set64) float64 {
	if s.Empty() {
		return 1
	}
	ids := cv.subsetIDs(s)
	if r, ok := p.JointRecall(ids); ok {
		return r
	}
	return quality.IndepJointRecall(p, ids)
}

// jointFPROf returns the joint FPR of a local subset, with q_∅ = 1 and an
// independence-product fallback when the parameter has no support.
func jointFPROf(p quality.Params, cv *clusterView, s stat.Set64) float64 {
	if s.Empty() {
		return 1
	}
	ids := cv.subsetIDs(s)
	if q, ok := p.JointFPR(ids); ok {
		return q
	}
	return quality.IndepJointFPR(p, ids)
}

// scoreAll runs Probability over ids.
func scoreAll(a Algorithm, ids []triple.TripleID) []float64 {
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = a.Probability(id)
	}
	return out
}
