package core

import (
	"testing"

	"corrfuse/internal/quality"
	"corrfuse/internal/stat"
	"corrfuse/internal/triple"
)

// TestPatternDistributionSumsToOne: for a consistent parameter set, the
// inclusion–exclusion expansion of Pr(Ot|t) over all 2^n observation
// patterns must total 1 (it is a probability distribution over patterns).
// We build the parameters from an explicit joint distribution over source
// behaviour so they are exactly consistent, then check the invariant.
func TestPatternDistributionSumsToOne(t *testing.T) {
	const n = 4
	d := triple.NewDataset()
	srcs := make([]triple.SourceID, n)
	for i := range srcs {
		srcs[i] = d.AddSource(string(rune('A' + i)))
	}

	// Explicit joint distribution over provider patterns given t true:
	// weight per pattern, normalized. Derived joint recalls are then
	// consistent by construction.
	rng := stat.NewRNG(99)
	weights := make([]float64, 1<<n)
	total := 0.0
	for i := range weights {
		weights[i] = rng.Float64()
		total += weights[i]
	}
	for i := range weights {
		weights[i] /= total
	}
	// jointRecall(S) = Σ over patterns ⊇ S of weight.
	jointRecall := func(set stat.Set64) float64 {
		sum := 0.0
		for pat := 0; pat < 1<<n; pat++ {
			if set.IsSubsetOf(stat.Set64(pat)) {
				sum += weights[pat]
			}
		}
		return sum
	}

	m := quality.NewManual(0.5)
	full := stat.FullSet64(n)
	full.Subsets(func(sub stat.Set64) bool {
		if sub.Empty() {
			return true
		}
		ids := make([]triple.SourceID, 0, sub.Len())
		for _, e := range sub.Elems() {
			ids = append(ids, srcs[e])
		}
		r := jointRecall(sub)
		m.SetJointRecall(ids, r)
		m.SetJointFPR(ids, r) // same distribution for the false side
		if sub.Len() == 1 {
			m.SetSource(ids[0], r, r)
		}
		return true
	})

	// One triple per provider pattern, so every pattern appears.
	patTriple := make([]triple.Triple, 1<<n)
	for pat := 1; pat < 1<<n; pat++ {
		tr := triple.Triple{Subject: "e", Predicate: "p", Object: string(rune('0'+pat%10)) + string(rune('a'+pat/10))}
		patTriple[pat] = tr
		for _, e := range stat.Set64(pat).Elems() {
			d.Observe(srcs[e], tr)
		}
	}

	ex, err := NewExact(Config{Dataset: d, Params: m})
	if err != nil {
		t.Fatal(err)
	}
	cv := ex.views[0]

	var sum stat.KahanSum
	for pat := 0; pat < 1<<n; pat++ {
		p := pattern{providers: stat.Set64(pat), inScope: full}
		// Reconstruct Pr(pattern | t) from the same machinery clusterMu
		// uses: inclusion–exclusion over non-providers.
		nonProviders := full.Minus(stat.Set64(pat))
		var rSum stat.KahanSum
		nonProviders.Subsets(func(sub stat.Set64) bool {
			set := p.providers.Union(sub)
			sign := 1.0
			if sub.Len()%2 == 1 {
				sign = -1
			}
			rSum.Add(sign * jointRecallOf(m, cv, set))
			return true
		})
		pr := rSum.Sum()
		if pr < -1e-9 {
			t.Errorf("pattern %v: negative probability %v", stat.Set64(pat), pr)
		}
		// Cross-check against the explicit distribution.
		if !stat.ApproxEqual(pr, weights[pat], 1e-9) {
			t.Errorf("pattern %v: Pr = %v, want %v", stat.Set64(pat), pr, weights[pat])
		}
		sum.Add(pr)
	}
	if !stat.ApproxEqual(sum.Sum(), 1, 1e-9) {
		t.Errorf("pattern probabilities sum to %v, want 1", sum.Sum())
	}

	// And with a consistent distribution, µ = weights[pat]/weights[pat]
	// = 1 for every provided pattern (true and false sides identical).
	for pat := 1; pat < 1<<n; pat++ {
		id, ok := d.TripleID(patTriple[pat])
		if !ok {
			t.Fatalf("pattern triple %d missing", pat)
		}
		if mu := ex.Mu(id); !stat.ApproxEqual(mu, 1, 1e-6) {
			t.Errorf("pattern %v: µ = %v, want 1 (identical true/false distributions)", stat.Set64(pat), mu)
		}
	}
}
