package core

import (
	"math"
	"testing"

	"corrfuse/internal/dataset"
	"corrfuse/internal/quality"
	"corrfuse/internal/stat"
	"corrfuse/internal/triple"
)

// obamaSetup builds the Obama dataset with a gold-standard estimator.
func obamaSetup(t *testing.T) (*triple.Dataset, *quality.Estimator) {
	t.Helper()
	d := dataset.Obama()
	est, err := quality.NewEstimator(d, quality.Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return d, est
}

func obamaID(t *testing.T, d *triple.Dataset, i int) triple.TripleID {
	t.Helper()
	tr, _ := dataset.ObamaTriple(i)
	id, ok := d.TripleID(tr)
	if !ok {
		t.Fatalf("t%d missing", i)
	}
	return id
}

// TestExample33 reproduces Example 3.3: with the paper's quality parameters,
// PrecRec computes µ(t2) = 0.1 and Pr(t2) = 0.09, and µ(t8) = 1.6 with
// Pr(t8) = 0.62 (the independence assumption misclassifies t8).
func TestExample33(t *testing.T) {
	d, est := obamaSetup(t)
	pr, err := NewPrecRec(Config{Dataset: d, Params: est})
	if err != nil {
		t.Fatal(err)
	}

	mu2 := math.Exp(pr.LogMu(obamaID(t, d, 2)))
	if !stat.ApproxEqual(mu2, 0.1, 1e-6) {
		t.Errorf("µ(t2) = %.6f, want 0.1", mu2)
	}
	p2 := pr.Probability(obamaID(t, d, 2))
	if !stat.ApproxEqual(p2, 1.0/11, 1e-6) {
		t.Errorf("Pr(t2) = %.4f, want 0.0909", p2)
	}

	mu8 := math.Exp(pr.LogMu(obamaID(t, d, 8)))
	if !stat.ApproxEqual(mu8, 1.6, 1e-6) {
		t.Errorf("µ(t8) = %.6f, want 1.6", mu8)
	}
	p8 := pr.Probability(obamaID(t, d, 8))
	if !stat.ApproxEqual(p8, 1.6/2.6, 1e-6) {
		t.Errorf("Pr(t8) = %.4f, want 0.6154", p8)
	}
}

// paperManualParams returns the Manual params used by Examples 4.4 and 4.10:
// the individual recalls/FPRs from Figure 1b plus the explicitly "given"
// joint values r1245 = q1245 = 0.22, r12345 = 0.11, q12345 = 0.037.
func paperManualParams(t *testing.T, d *triple.Dataset) *quality.Manual {
	t.Helper()
	m := quality.NewManual(0.5)
	recalls := map[string]float64{"S1": 2.0 / 3, "S2": 0.5, "S3": 2.0 / 3, "S4": 2.0 / 3, "S5": 2.0 / 3}
	fprs := map[string]float64{"S1": 0.5, "S2": 2.0 / 3, "S3": 1.0 / 6, "S4": 1.0 / 3, "S5": 1.0 / 3}
	for name, r := range recalls {
		id, ok := d.SourceID(name)
		if !ok {
			t.Fatalf("source %s missing", name)
		}
		m.SetSource(id, r, fprs[name])
	}
	get := func(names ...string) []triple.SourceID {
		out := make([]triple.SourceID, len(names))
		for i, n := range names {
			id, _ := d.SourceID(n)
			out[i] = id
		}
		return out
	}
	s1245 := get("S1", "S2", "S4", "S5")
	sAll := get("S1", "S2", "S3", "S4", "S5")
	m.SetJointRecall(s1245, 0.22)
	m.SetJointFPR(s1245, 0.22)
	m.SetJointRecall(sAll, 0.11)
	m.SetJointFPR(sAll, 0.037)
	return m
}

// TestExample44 reproduces Example 4.4: with the paper-given joint
// parameters the exact solution computes Pr(Ot8|t8) = 0.22 − 0.11 = 0.11 and
// Pr(Ot8|¬t8) = 0.22 − 0.037 = 0.183 (the paper rounds this to 0.185), so
// Pr(t8|O) ≈ 0.37, correctly classifying t8 as false.
func TestExample44(t *testing.T) {
	d, _ := obamaSetup(t)
	m := paperManualParams(t, d)
	ex, err := NewExact(Config{Dataset: d, Params: m})
	if err != nil {
		t.Fatal(err)
	}
	id := obamaID(t, d, 8)
	mu := ex.Mu(id)
	// Pr(Ot|t) = r1245 − r12345 = 0.11; Pr(Ot|¬t) = q1245 − q12345 = 0.183.
	wantMu := (0.22 - 0.11) / (0.22 - 0.037)
	if !stat.ApproxEqual(mu, wantMu, 1e-9) {
		t.Fatalf("µ(t8) = %.6f, want %.6f", mu, wantMu)
	}
	p := ex.Probability(id)
	if p >= 0.5 {
		t.Errorf("exact Pr(t8) = %.4f, want < 0.5 (t8 is false)", p)
	}
	// The paper rounds to 0.37 (using 0.185 in the denominator); our exact
	// arithmetic gives 1/(1+0.183/0.11) = 0.3754.
	if !stat.ApproxEqual(p, wantMu/(1+wantMu), 1e-9) {
		t.Errorf("Pr(t8) = %.4f, want %.4f", p, wantMu/(1+wantMu))
	}
	if p < 0.35 || p > 0.40 {
		t.Errorf("Pr(t8) = %.4f, want ≈ 0.37", p)
	}
}

// TestExample410 reproduces Example 4.10: the level-0 elastic adjustment for
// t8 yields µ = 0.22/0.22 · (1 − 0.75·0.67)/(1 − 0.167) = 0.6, and level-1
// (= exact here, since |St̄| = 1) yields ≈ 0.59... the exact µ.
func TestExample410(t *testing.T) {
	d, _ := obamaSetup(t)
	m := paperManualParams(t, d)
	id := obamaID(t, d, 8)

	lvl0, err := NewElastic(Config{Dataset: d, Params: m}, 0)
	if err != nil {
		t.Fatal(err)
	}
	mu0 := lvl0.Mu(id)
	// R = r1245·(1 − C3⁺r3) with C3⁺ = r12345/(r3·r1245) = 0.11/(0.667·0.22) = 0.75.
	// µ = (0.22·(1−0.75·2/3)) / (0.22·(1−C3⁻q3)) where C3⁻ = 0.037/(q3·q1245).
	c3p := 0.11 / (2.0 / 3 * 0.22)
	c3m := 0.037 / (1.0 / 6 * 0.22)
	wantMu0 := (0.22 * (1 - c3p*2.0/3)) / (0.22 * (1 - c3m/6))
	if !stat.ApproxEqual(mu0, wantMu0, 1e-9) {
		t.Fatalf("level-0 µ(t8) = %.6f, want %.6f", mu0, wantMu0)
	}
	if mu0 < 0.55 || mu0 > 0.65 {
		t.Errorf("level-0 µ(t8) = %.4f, want ≈ 0.6 (paper)", mu0)
	}

	lvl1, err := NewElastic(Config{Dataset: d, Params: m}, 1)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewExact(Config{Dataset: d, Params: m})
	if err != nil {
		t.Fatal(err)
	}
	mu1 := lvl1.Mu(id)
	if !stat.ApproxEqual(mu1, ex.Mu(id), 1e-9) {
		t.Errorf("level-1 µ(t8) = %.6f, want exact %.6f", mu1, ex.Mu(id))
	}
	if mu1 < 0.55 || mu1 > 0.65 {
		t.Errorf("level-1 µ(t8) = %.4f, want ≈ 0.59–0.60 (paper)", mu1)
	}
}

// TestCorollary43And46: with independent sources, Exact, Aggressive and
// Elastic all coincide with PrecRec.
func TestIndependentSourcesAgree(t *testing.T) {
	d := triple.NewDataset()
	a := d.AddSource("A")
	b := d.AddSource("B")
	c := d.AddSource("C")
	tr := func(i byte) triple.Triple {
		return triple.Triple{Subject: "e", Predicate: "p", Object: string([]byte{'v', i})}
	}
	// Construct outputs and labels.
	d.Observe(a, tr(1))
	d.Observe(b, tr(1))
	d.Observe(c, tr(1))
	d.Observe(a, tr(2))
	d.Observe(b, tr(3))
	d.Observe(c, tr(4))
	for i := byte(1); i <= 4; i++ {
		d.SetLabel(tr(i), triple.True)
	}
	d.Observe(a, tr(5))
	d.SetLabel(tr(5), triple.False)

	// Manual params with exact independence: joint values are products.
	m := quality.NewManual(0.5)
	m.SetSource(a, 0.6, 0.2)
	m.SetSource(b, 0.5, 0.1)
	m.SetSource(c, 0.7, 0.3)
	subsets := [][]triple.SourceID{
		{a, b}, {a, c}, {b, c}, {a, b, c},
	}
	for _, sub := range subsets {
		m.SetJointRecall(sub, quality.IndepJointRecall(m, sub))
		m.SetJointFPR(sub, quality.IndepJointFPR(m, sub))
	}

	pr, _ := NewPrecRec(Config{Dataset: d, Params: m})
	ex, _ := NewExact(Config{Dataset: d, Params: m})
	ag, _ := NewAggressive(Config{Dataset: d, Params: m})
	el, _ := NewElastic(Config{Dataset: d, Params: m}, 2)
	for i := 0; i < d.NumTriples(); i++ {
		id := triple.TripleID(i)
		want := pr.Probability(id)
		for _, alg := range []Algorithm{ex, ag, el} {
			if got := alg.Probability(id); !stat.ApproxEqual(got, want, 1e-9) {
				t.Errorf("%s Pr(t%d) = %.6f, want PrecRec %.6f", alg.Name(), i, got, want)
			}
		}
	}
}

// TestObamaHeadline reproduces the paper's Section 2.3 headline: on the
// running example PrecRec achieves precision 0.75 and recall 1 (F1 ≈ 0.86),
// and the correlation-aware model improves on it.
func TestObamaHeadline(t *testing.T) {
	d, est := obamaSetup(t)
	pr, err := NewPrecRec(Config{Dataset: d, Params: est})
	if err != nil {
		t.Fatal(err)
	}
	var tp, fp, fn int
	for i := 1; i <= 10; i++ {
		id := obamaID(t, d, i)
		accepted := pr.Probability(id) > 0.5
		isTrue := d.Label(id) == triple.True
		switch {
		case accepted && isTrue:
			tp++
		case accepted && !isTrue:
			fp++
		case !accepted && isTrue:
			fn++
		}
	}
	prec := float64(tp) / float64(tp+fp)
	rec := float64(tp) / float64(tp+fn)
	if !stat.ApproxEqual(prec, 0.75, 1e-9) {
		t.Errorf("PrecRec precision = %.4f (tp=%d fp=%d), want 0.75", prec, tp, fp)
	}
	if !stat.ApproxEqual(rec, 1.0, 1e-9) {
		t.Errorf("PrecRec recall = %.4f, want 1.0", rec)
	}
}

// TestProposition32 checks the monotone influence of good and bad sources:
// a good provider raises the probability; a good non-provider lowers it.
func TestProposition32(t *testing.T) {
	build := func(withExtra bool, extraProvides bool, goodExtra bool) float64 {
		d := triple.NewDataset()
		a := d.AddSource("A")
		tr := triple.Triple{Subject: "x", Predicate: "p", Object: "v"}
		d.Observe(a, tr)
		m := quality.NewManual(0.5)
		m.SetSource(a, 0.6, 0.3)
		if withExtra {
			b := d.AddSource("B")
			if extraProvides {
				d.Observe(b, tr)
			} else {
				// make B in scope by providing some other triple
				d.Observe(b, triple.Triple{Subject: "x", Predicate: "p", Object: "w"})
			}
			if goodExtra {
				m.SetSource(b, 0.7, 0.2) // r > q: good
			} else {
				m.SetSource(b, 0.2, 0.7) // r < q: bad
			}
		}
		pr, err := NewPrecRec(Config{Dataset: d, Params: m})
		if err != nil {
			t.Fatal(err)
		}
		id, _ := d.TripleID(tr)
		return pr.Probability(id)
	}
	base := build(false, false, false)
	if p := build(true, true, true); p <= base {
		t.Errorf("good provider should raise probability: %.4f vs base %.4f", p, base)
	}
	if p := build(true, false, true); p >= base {
		t.Errorf("good non-provider should lower probability: %.4f vs base %.4f", p, base)
	}
	if p := build(true, true, false); p >= base {
		t.Errorf("bad provider should lower probability: %.4f vs base %.4f", p, base)
	}
	if p := build(true, false, false); p <= base {
		t.Errorf("bad non-provider should raise probability: %.4f vs base %.4f", p, base)
	}
}
