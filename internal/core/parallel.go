package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"corrfuse/internal/triple"
)

// scoreChunk is the number of triples a worker claims per counter bump.
// Large enough to amortize the claim, small enough to balance uneven
// per-triple costs (pattern-cache misses are much slower than hits).
const scoreChunk = 64

// ParallelScore scores ids with the given number of worker goroutines
// (0 or negative means GOMAXPROCS). The paper notes that PrecRecCorr
// parallelizes well because the per-pattern terms are independent; all
// algorithms in this package are safe for concurrent scoring (the pattern
// memo and the quality estimator's joint-statistic memo are mutex-guarded),
// so the speedup is close to linear once the pattern cache is warm.
//
// The work queue is a single atomic cursor rather than a mutex-guarded
// counter: claiming a chunk is one lock-free fetch-add, so the queue never
// serializes workers behind a lock even when chunks drain quickly (see
// BenchmarkWorkQueue for the contention comparison).
func ParallelScore(a Algorithm, ids []triple.TripleID, workers int) []float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(ids) < 2*workers {
		return a.Score(ids)
	}
	out := make([]float64, len(ids))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(scoreChunk)) - scoreChunk
				if lo >= len(ids) {
					return
				}
				hi := lo + scoreChunk
				if hi > len(ids) {
					hi = len(ids)
				}
				for i := lo; i < hi; i++ {
					out[i] = a.Probability(ids[i])
				}
			}
		}()
	}
	wg.Wait()
	return out
}
