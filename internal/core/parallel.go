package core

import (
	"runtime"
	"sync"

	"corrfuse/internal/triple"
)

// ParallelScore scores ids with the given number of worker goroutines
// (0 or negative means GOMAXPROCS). The paper notes that PrecRecCorr
// parallelizes well because the per-pattern terms are independent; all
// algorithms in this package are safe for concurrent scoring (the pattern
// memo and the quality estimator's joint-statistic memo are mutex-guarded),
// so the speedup is close to linear once the pattern cache is warm.
func ParallelScore(a Algorithm, ids []triple.TripleID, workers int) []float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 || len(ids) < 2*workers {
		return a.Score(ids)
	}
	out := make([]float64, len(ids))
	var next int
	var mu sync.Mutex
	const chunk = 64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				lo := next
				next += chunk
				mu.Unlock()
				if lo >= len(ids) {
					return
				}
				hi := lo + chunk
				if hi > len(ids) {
					hi = len(ids)
				}
				for i := lo; i < hi; i++ {
					out[i] = a.Probability(ids[i])
				}
			}
		}()
	}
	wg.Wait()
	return out
}
