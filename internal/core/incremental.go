package core

import (
	"fmt"
	"math"

	"corrfuse/internal/quality"
	"corrfuse/internal/stat"
	"corrfuse/internal/triple"
)

// Incremental maintains PrecRec correctness probabilities under a stream of
// observations, in the spirit of online data fusion (Liu et al., PVLDB'11,
// which the paper cites as related work): each arriving (source, triple)
// claim updates the triple's log-odds in O(1), so current probabilities are
// queryable at any point without rescoring the whole dataset.
//
// Under the independence model the update is exact: a new provider Si moves
// the triple's contribution of Si from the non-provider factor
// (1−ri)/(1−qi) (if Si was in scope) to the provider factor ri/qi.
// Correlation-aware maintenance would need the full pattern and is not
// incremental; use the batch algorithms for that.
type Incremental struct {
	params quality.Params
	// scopeAll reports whether non-providing sources count by default.
	// Incremental streams have no subject index, so scope is either
	// global (every registered source is accountable for every triple)
	// or provider-only.
	penalizeSilence bool

	nSources int
	// baseline log-odds of a triple no source provides: prior + every
	// source silent (if penalizeSilence).
	baseLogOdds float64
	// silentContribution[s] = log((1−r)/(1−q)); providerDelta[s] converts
	// a silent source into a provider.
	providerDelta []float64

	logOdds   map[triple.Triple]float64
	providers map[triple.Triple]map[triple.SourceID]bool
}

// NewIncremental builds an online fuser over nSources sources whose quality
// is given by params. penalizeSilence selects global scope semantics (every
// source not yet providing a triple counts against it).
func NewIncremental(params quality.Params, nSources int, penalizeSilence bool) (*Incremental, error) {
	if params == nil {
		return nil, fmt.Errorf("core: nil params")
	}
	if nSources <= 0 {
		return nil, fmt.Errorf("core: need at least one source")
	}
	inc := &Incremental{
		params:          params,
		penalizeSilence: penalizeSilence,
		nSources:        nSources,
		providerDelta:   make([]float64, nSources),
		logOdds:         make(map[triple.Triple]float64),
		providers:       make(map[triple.Triple]map[triple.SourceID]bool),
	}
	inc.baseLogOdds = stat.Logit(params.Alpha())
	for s := 0; s < nSources; s++ {
		sid := triple.SourceID(s)
		r := stat.Clamp(params.Recall(sid), probEps, 1-probEps)
		q := stat.Clamp(params.FPR(sid), probEps, 1-probEps)
		provide := math.Log(r) - math.Log(q)
		silent := math.Log(1-r) - math.Log(1-q)
		if penalizeSilence {
			inc.baseLogOdds += silent
			inc.providerDelta[s] = provide - silent
		} else {
			inc.providerDelta[s] = provide
		}
	}
	return inc, nil
}

// Observe records that source s provides t, updating the triple's odds in
// O(1). Duplicate observations are idempotent. It returns the updated
// probability.
func (inc *Incremental) Observe(s triple.SourceID, t Triple) (float64, error) {
	if int(s) < 0 || int(s) >= inc.nSources {
		return 0, fmt.Errorf("core: source %d out of range", s)
	}
	provs, ok := inc.providers[t]
	if !ok {
		provs = make(map[triple.SourceID]bool)
		inc.providers[t] = provs
		inc.logOdds[t] = inc.baseLogOdds
	}
	if !provs[s] {
		provs[s] = true
		inc.logOdds[t] += inc.providerDelta[s]
	}
	return stat.Sigmoid(inc.logOdds[t]), nil
}

// Triple aliases the data model's triple for the incremental API.
type Triple = triple.Triple

// Probability returns the current Pr(t | observations so far); ok is false
// for triples never observed.
func (inc *Incremental) Probability(t Triple) (p float64, ok bool) {
	lo, ok := inc.logOdds[t]
	if !ok {
		return 0, false
	}
	return stat.Sigmoid(lo), true
}

// Providers returns how many sources currently provide t.
func (inc *Incremental) Providers(t Triple) int { return len(inc.providers[t]) }

// Len returns the number of distinct triples observed.
func (inc *Incremental) Len() int { return len(inc.logOdds) }

// Accepted returns all triples whose current probability exceeds 0.5.
func (inc *Incremental) Accepted() []Triple {
	var out []Triple
	for t, lo := range inc.logOdds {
		if stat.Sigmoid(lo) > 0.5 {
			out = append(out, t)
		}
	}
	return out
}
