package core

import (
	"fmt"

	"corrfuse/internal/quality"
	"corrfuse/internal/stat"
	"corrfuse/internal/triple"
)

// Elastic is Algorithm 1 of the paper: it starts from the aggressive
// approximation with the level-0 adjustment already applied,
//
//	R ← r_{St} · ∏_{Si∈St̄} (1 − C⁺ᵢrᵢ)
//	Q ← q_{St} · ∏_{Si∈St̄} (1 − C⁻ᵢqᵢ)
//
// and for each level l = 1..λ corrects every degree-(|St|+l) term with its
// exact coefficient:
//
//	R += (−1)^l · ( r_{St∪S*} − r_{St}·∏_{Si∈S*} C⁺ᵢrᵢ )   for all S*⊆St̄, |S*|=l
//	Q += (−1)^l · ( q_{St∪S*} − q_{St}·∏_{Si∈S*} C⁻ᵢqᵢ )
//
// µ = R/Q. At λ = |St̄| every coefficient is exact and the result equals the
// exact solution; the cost and the number of required joint parameters are
// O(n^λ) per triple (Proposition 4.11).
type Elastic struct {
	cfg    Config
	level  int
	views  []*clusterView
	cplus  [][]float64
	cminus [][]float64
}

// NewElastic builds the elastic approximation at adjustment level λ ≥ 0.
// Level 0 applies only the initialization of Algorithm 1 (lines 1–2).
func NewElastic(cfg Config, level int) (*Elastic, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	if level < 0 {
		return nil, fmt.Errorf("core: elastic level must be >= 0, got %d", level)
	}
	e := &Elastic{cfg: cfg, level: level}
	for _, cl := range cfg.Clusters {
		e.views = append(e.views, newClusterView(cl))
		cp, cm := quality.AggressiveFactors(cfg.Params, cl)
		e.cplus = append(e.cplus, cp)
		e.cminus = append(e.cminus, cm)
	}
	return e, nil
}

// Name implements Algorithm.
func (a *Elastic) Name() string { return fmt.Sprintf("PrecRecCorr-Lvl%d", a.level) }

// Level returns the adjustment level λ.
func (a *Elastic) Level() int { return a.level }

// clusterMu evaluates Algorithm 1 within one cluster for one pattern.
func (a *Elastic) clusterMu(ci int, p pattern) float64 {
	cv := a.views[ci]
	params := a.cfg.Params
	providers := p.providers
	nonProviders := p.inScope.Minus(p.providers)

	rSt := jointRecallOf(params, cv, providers)
	qSt := jointFPROf(params, cv, providers)

	// Lines 1–2: aggressive form with level-0 adjustment.
	var rAcc, qAcc stat.KahanSum
	rInit, qInit := rSt, qSt
	for _, i := range nonProviders.Elems() {
		s := cv.members[i]
		rInit *= 1 - stat.Clamp(a.cplus[ci][i]*params.Recall(s), 0, 1-probEps)
		qInit *= 1 - stat.Clamp(a.cminus[ci][i]*params.FPR(s), 0, 1-probEps)
	}
	rAcc.Add(rInit)
	qAcc.Add(qInit)

	// Lines 3–7: per-level corrections.
	maxLevel := a.level
	if maxLevel > nonProviders.Len() {
		maxLevel = nonProviders.Len()
	}
	for l := 1; l <= maxLevel; l++ {
		sign := 1.0
		if l%2 == 1 {
			sign = -1
		}
		nonProviders.SubsetsOfSize(l, func(sub stat.Set64) bool {
			set := providers.Union(sub)
			exactR := jointRecallOf(params, cv, set)
			exactQ := jointFPROf(params, cv, set)
			approxR, approxQ := rSt, qSt
			for _, i := range sub.Elems() {
				s := cv.members[i]
				approxR *= a.cplus[ci][i] * params.Recall(s)
				approxQ *= a.cminus[ci][i] * params.FPR(s)
			}
			rAcc.Add(sign * (exactR - approxR))
			qAcc.Add(sign * (exactQ - approxQ))
			return true
		})
	}

	r, q := rAcc.Sum(), qAcc.Sum()
	if r < sumEps {
		r = sumEps
	}
	if q < sumEps {
		q = sumEps
	}
	return r / q
}

// Mu returns the elastic µ for a triple.
func (a *Elastic) Mu(id triple.TripleID) float64 {
	mu := 1.0
	for ci, cv := range a.views {
		pat := cv.patternFor(a.cfg.Dataset, a.cfg.Scope, id)
		c := ci
		mu *= cv.muCached(pat, func(p pattern) float64 { return a.clusterMu(c, p) })
	}
	return mu
}

// Probability implements Algorithm.
func (a *Elastic) Probability(id triple.TripleID) float64 {
	return muToProb(a.cfg.Params.Alpha(), a.Mu(id))
}

// Score implements Algorithm.
func (a *Elastic) Score(ids []triple.TripleID) []float64 { return scoreAll(a, ids) }
