package core

import (
	"testing"

	"corrfuse/internal/dataset"
	"corrfuse/internal/quality"
	"corrfuse/internal/stat"
	"corrfuse/internal/triple"
)

// TestIncrementalMatchesBatch: streaming all observations of the Obama
// dataset reproduces PrecRec's batch probabilities exactly.
func TestIncrementalMatchesBatch(t *testing.T) {
	d := dataset.Obama()
	est, err := quality.NewEstimator(d, quality.Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	batch, err := NewPrecRec(Config{Dataset: d, Params: est})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := NewIncremental(est, d.NumSources(), true)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < d.NumSources(); s++ {
		for _, id := range d.Output(triple.SourceID(s)) {
			if _, err := inc.Observe(triple.SourceID(s), d.Triple(id)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if inc.Len() != d.NumTriples() {
		t.Fatalf("observed %d triples, want %d", inc.Len(), d.NumTriples())
	}
	for i := 0; i < d.NumTriples(); i++ {
		id := triple.TripleID(i)
		want := batch.Probability(id)
		got, ok := inc.Probability(d.Triple(id))
		if !ok {
			t.Fatalf("triple %d unobserved", i)
		}
		if !stat.ApproxEqual(got, want, 1e-9) {
			t.Errorf("triple %d: incremental %v, batch %v", i, got, want)
		}
	}
}

// TestIncrementalMonotonicity: observing a good source raises a triple's
// probability; duplicates are no-ops.
func TestIncrementalMonotonicity(t *testing.T) {
	m := quality.NewManual(0.5)
	m.SetSource(0, 0.6, 0.2) // good
	m.SetSource(1, 0.2, 0.6) // bad
	inc, err := NewIncremental(m, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	tt := Triple{Subject: "e", Predicate: "p", Object: "v"}
	p1, err := inc.Observe(0, tt)
	if err != nil {
		t.Fatal(err)
	}
	base, _ := inc.Probability(tt)
	if p1 != base {
		t.Error("Observe should return the current probability")
	}
	p1again, _ := inc.Observe(0, tt)
	if p1again != p1 {
		t.Error("duplicate observation changed the probability")
	}
	if inc.Providers(tt) != 1 {
		t.Error("duplicate observation changed the provider count")
	}
	p2, _ := inc.Observe(1, tt)
	if p2 >= p1 {
		t.Errorf("bad provider should lower the probability: %v -> %v", p1, p2)
	}
}

// TestIncrementalScopeModes: without silence penalties, an unprovided
// triple's first good provider immediately pushes it over the prior.
func TestIncrementalScopeModes(t *testing.T) {
	m := quality.NewManual(0.5)
	for s := 0; s < 5; s++ {
		m.SetSource(triple.SourceID(s), 0.6, 0.2)
	}
	noPenalty, err := NewIncremental(m, 5, false)
	if err != nil {
		t.Fatal(err)
	}
	withPenalty, err := NewIncremental(m, 5, true)
	if err != nil {
		t.Fatal(err)
	}
	tt := Triple{Subject: "e", Predicate: "p", Object: "v"}
	pNo, _ := noPenalty.Observe(0, tt)
	pWith, _ := withPenalty.Observe(0, tt)
	if pNo <= pWith {
		t.Errorf("silence penalties should lower the one-provider probability: %v vs %v", pNo, pWith)
	}
	if pNo <= 0.5 {
		t.Errorf("one good provider without penalties should exceed the prior: %v", pNo)
	}
	if len(noPenalty.Accepted()) != 1 {
		t.Error("accepted set should contain the provided triple")
	}
}

func TestIncrementalValidation(t *testing.T) {
	if _, err := NewIncremental(nil, 3, true); err == nil {
		t.Error("nil params should fail")
	}
	m := quality.NewManual(0.5)
	if _, err := NewIncremental(m, 0, true); err == nil {
		t.Error("zero sources should fail")
	}
	inc, err := NewIncremental(m, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inc.Observe(5, Triple{}); err == nil {
		t.Error("out-of-range source should fail")
	}
	if _, ok := inc.Probability(Triple{Subject: "x"}); ok {
		t.Error("unobserved triple should be unknown")
	}
}
