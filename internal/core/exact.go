package core

import (
	"fmt"

	"corrfuse/internal/stat"
	"corrfuse/internal/triple"
)

// MaxExactCluster bounds the cluster width the exact algorithm accepts: the
// inclusion–exclusion sum enumerates 2^|St̄| subsets per cluster.
const MaxExactCluster = 30

// Exact is the exact correlation-aware model of Theorem 4.2. Within each
// cluster it evaluates the inclusion–exclusion expansions
//
//	Pr(Ot|t)  = Σ_{S*⊆St̄} (−1)^{|S*|} r_{St∪S*}     (Eq. 10)
//	Pr(Ot|¬t) = Σ_{S*⊆St̄} (−1)^{|S*|} q_{St∪S*}     (Eq. 11)
//
// and multiplies the per-cluster ratios µ_c = Pr(Ot|t)/Pr(Ot|¬t) across
// clusters (independence across clusters). With a single cluster holding all
// sources this is the paper's exact solution.
type Exact struct {
	cfg   Config
	views []*clusterView
}

// NewExact builds the exact model. It fails if any cluster is wider than
// MaxExactCluster, because the computation is exponential in cluster width.
func NewExact(cfg Config) (*Exact, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	e := &Exact{cfg: cfg}
	for _, cl := range cfg.Clusters {
		if len(cl) > MaxExactCluster {
			return nil, fmt.Errorf("core: exact solution infeasible for cluster of %d sources (max %d); use Elastic or a finer clustering", len(cl), MaxExactCluster)
		}
		e.views = append(e.views, newClusterView(cl))
	}
	return e, nil
}

// Name implements Algorithm.
func (a *Exact) Name() string { return "PrecRecCorr" }

// clusterMu computes µ_c for one cluster/pattern by full
// inclusion–exclusion over the in-scope non-providers.
func (a *Exact) clusterMu(cv *clusterView, p pattern) float64 {
	nonProviders := p.inScope.Minus(p.providers)
	var rSum, qSum stat.KahanSum
	nonProviders.Subsets(func(sub stat.Set64) bool {
		set := p.providers.Union(sub)
		sign := 1.0
		if sub.Len()%2 == 1 {
			sign = -1
		}
		rSum.Add(sign * jointRecallOf(a.cfg.Params, cv, set))
		qSum.Add(sign * jointFPROf(a.cfg.Params, cv, set))
		return true
	})
	r := rSum.Sum()
	q := qSum.Sum()
	// Estimated joint parameters can push the alternating sums slightly
	// negative; clamp so µ stays a positive finite ratio.
	if r < sumEps {
		r = sumEps
	}
	if q < sumEps {
		q = sumEps
	}
	return r / q
}

// Mu returns µ for a triple: the product of per-cluster ratios.
func (a *Exact) Mu(id triple.TripleID) float64 {
	mu := 1.0
	for _, cv := range a.views {
		pat := cv.patternFor(a.cfg.Dataset, a.cfg.Scope, id)
		mu *= cv.muCached(pat, func(p pattern) float64 { return a.clusterMu(cv, p) })
	}
	return mu
}

// Probability implements Algorithm.
func (a *Exact) Probability(id triple.TripleID) float64 {
	return muToProb(a.cfg.Params.Alpha(), a.Mu(id))
}

// Score implements Algorithm.
func (a *Exact) Score(ids []triple.TripleID) []float64 { return scoreAll(a, ids) }
