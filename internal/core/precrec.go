package core

import (
	"math"

	"corrfuse/internal/triple"
)

// PrecRec is the independent-source Bayesian model of Theorem 3.1:
//
//	µ = ∏_{Si ∈ St} ri/qi · ∏_{Si ∈ St̄} (1−ri)/(1−qi)
//
// where St are the sources providing t and St̄ the in-scope sources that do
// not. The product runs in log space.
type PrecRec struct {
	cfg Config
}

// NewPrecRec builds the independent model. Clusters in cfg are ignored —
// under independence the factorization is trivial.
func NewPrecRec(cfg Config) (*PrecRec, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	return &PrecRec{cfg: cfg}, nil
}

// Name implements Algorithm.
func (a *PrecRec) Name() string { return "PrecRec" }

// LogMu returns log µ for a triple.
func (a *PrecRec) LogMu(id triple.TripleID) float64 {
	d, p, sc := a.cfg.Dataset, a.cfg.Params, a.cfg.Scope
	logMu := 0.0
	for s := 0; s < d.NumSources(); s++ {
		sid := triple.SourceID(s)
		r := clampRate(p.Recall(sid))
		q := clampRate(p.FPR(sid))
		switch {
		case d.Provides(sid, id):
			logMu += math.Log(r) - math.Log(q)
		case sc.InScope(d, sid, id):
			logMu += math.Log(1-r) - math.Log(1-q)
		}
	}
	return logMu
}

// Probability implements Algorithm.
func (a *PrecRec) Probability(id triple.TripleID) float64 {
	return muToProb(a.cfg.Params.Alpha(), math.Exp(a.LogMu(id)))
}

// Score implements Algorithm.
func (a *PrecRec) Score(ids []triple.TripleID) []float64 { return scoreAll(a, ids) }
