package core

import (
	"testing"

	"corrfuse/internal/dataset"
	"corrfuse/internal/quality"
	"corrfuse/internal/triple"
)

// TestParallelScoreMatchesSerial checks that concurrent scoring produces the
// same results as serial scoring on every algorithm. Run with -race to
// exercise the memo locking.
func TestParallelScoreMatchesSerial(t *testing.T) {
	d, err := dataset.SimulatedReVerb(3)
	if err != nil {
		t.Fatal(err)
	}
	est, err := quality.NewEstimator(d, quality.Options{Alpha: 0.26})
	if err != nil {
		t.Fatal(err)
	}
	var ids []triple.TripleID
	for i := 0; i < d.NumTriples(); i++ {
		if len(d.Providers(triple.TripleID(i))) > 0 {
			ids = append(ids, triple.TripleID(i))
		}
	}
	cfg := Config{Dataset: d, Params: est}
	builders := []func() (Algorithm, error){
		func() (Algorithm, error) { return NewPrecRec(cfg) },
		func() (Algorithm, error) { return NewExact(cfg) },
		func() (Algorithm, error) { return NewAggressive(cfg) },
		func() (Algorithm, error) { return NewElastic(cfg, 2) },
	}
	for _, build := range builders {
		alg, err := build()
		if err != nil {
			t.Fatal(err)
		}
		want := alg.Score(ids)
		// Fresh instance so the parallel run populates a cold cache.
		alg2, err := build()
		if err != nil {
			t.Fatal(err)
		}
		got := ParallelScore(alg2, ids, 8)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: parallel[%d] = %v, serial = %v", alg.Name(), i, got[i], want[i])
			}
		}
	}
}

func TestParallelScoreSmallInput(t *testing.T) {
	d, err := dataset.SimulatedRestaurant(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	est, err := quality.NewEstimator(d, quality.Options{Alpha: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	pr, err := NewPrecRec(Config{Dataset: d, Params: est})
	if err != nil {
		t.Fatal(err)
	}
	ids := []triple.TripleID{0, 1, 2}
	if got := ParallelScore(pr, ids, 16); len(got) != 3 {
		t.Fatal("small input should fall back to serial")
	}
	if got := ParallelScore(pr, nil, 4); len(got) != 0 {
		t.Fatal("empty input")
	}
}
