package core

import (
	"math"
	"testing"

	"corrfuse/internal/dataset"
	"corrfuse/internal/quality"
	"corrfuse/internal/stat"
	"corrfuse/internal/triple"
)

// randomSetup generates a correlated synthetic dataset with a gold-standard
// estimator, for properties that should hold on arbitrary data.
func randomSetup(t *testing.T, seed int64) (*triple.Dataset, *quality.Estimator, []triple.TripleID) {
	t.Helper()
	spec := dataset.SyntheticSpec{
		NumTrue:  80,
		NumFalse: 80,
		Seed:     seed,
		Sources: []dataset.SourceSpec{
			{Precision: 0.7, Recall: 0.5},
			{Precision: 0.6, Recall: 0.4},
			{Precision: 0.8, Recall: 0.3},
			{Precision: 0.5, Recall: 0.6},
			{Precision: 0.65, Recall: 0.45},
		},
		Groups: []dataset.GroupSpec{
			{Members: []int{0, 1}, OnTrue: true, Strength: 0.7},
			{Members: []int{2, 3}, OnTrue: false, Strength: 0.6},
		},
	}
	d, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	est, err := quality.NewEstimator(d, quality.Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var ids []triple.TripleID
	for i := 0; i < d.NumTriples(); i++ {
		if len(d.Providers(triple.TripleID(i))) > 0 {
			ids = append(ids, triple.TripleID(i))
		}
	}
	return d, est, ids
}

// TestElasticConvergesToExact: at λ = |St̄| the elastic approximation equals
// the exact solution for every triple (Section 4.3).
func TestElasticConvergesToExact(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		d, est, ids := randomSetup(t, seed)
		cfg := Config{Dataset: d, Params: est}
		ex, err := NewExact(cfg)
		if err != nil {
			t.Fatal(err)
		}
		el, err := NewElastic(cfg, d.NumSources()) // λ ≥ any |St̄|
		if err != nil {
			t.Fatal(err)
		}
		for _, id := range ids {
			got, want := el.Mu(id), ex.Mu(id)
			if !stat.ApproxEqual(got, want, 1e-9) {
				t.Errorf("seed %d triple %d: elastic(full) µ = %v, exact µ = %v", seed, id, got, want)
			}
		}
	}
}

// TestElasticLevelZeroVsAggressive: level-0 elastic differs from aggressive
// only by the level-0 adjustment (joint recall of the provider set instead
// of the independence product), so for singleton provider sets they agree.
func TestElasticLevelZeroSingleProvider(t *testing.T) {
	d, est, ids := randomSetup(t, 7)
	cfg := Config{Dataset: d, Params: est}
	ag, err := NewAggressive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	el, err := NewElastic(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, id := range ids {
		if len(d.Providers(id)) != 1 {
			continue
		}
		checked++
		// r_{St} = r_i for singletons, so level-0 = aggressive up to the
		// clamping of C⁺ᵢrᵢ in the provider term.
		got, want := el.Probability(id), ag.Probability(id)
		if math.Abs(got-want) > 0.25 {
			t.Errorf("triple %d: level-0 %v vs aggressive %v diverge unexpectedly", id, got, want)
		}
	}
	if checked == 0 {
		t.Skip("no singleton-provider triples generated")
	}
}

// TestClusterFactorization: declaring genuinely independent sources as
// separate clusters must give the same probabilities as one big cluster
// would under independence (the factorization is exact in that case).
func TestClusterFactorization(t *testing.T) {
	d := triple.NewDataset()
	a := d.AddSource("A")
	b := d.AddSource("B")
	c := d.AddSource("C")
	mk := func(o string) triple.Triple {
		return triple.Triple{Subject: "e", Predicate: "p", Object: o}
	}
	d.Observe(a, mk("1"))
	d.Observe(b, mk("1"))
	d.Observe(c, mk("2"))
	d.SetLabel(mk("1"), triple.True)
	d.SetLabel(mk("2"), triple.False)
	d.SetLabel(mk("3"), triple.True)

	m := quality.NewManual(0.5)
	m.SetSource(a, 0.6, 0.2)
	m.SetSource(b, 0.5, 0.3)
	m.SetSource(c, 0.7, 0.1)
	for _, sub := range [][]triple.SourceID{{a, b}, {a, c}, {b, c}, {a, b, c}} {
		m.SetJointRecall(sub, quality.IndepJointRecall(m, sub))
		m.SetJointFPR(sub, quality.IndepJointFPR(m, sub))
	}

	one, err := NewExact(Config{Dataset: d, Params: m})
	if err != nil {
		t.Fatal(err)
	}
	three, err := NewExact(Config{
		Dataset:  d,
		Params:   m,
		Clusters: [][]triple.SourceID{{a}, {b}, {c}},
	})
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := NewExact(Config{
		Dataset:  d,
		Params:   m,
		Clusters: [][]triple.SourceID{{a, b}, {c}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.NumTriples(); i++ {
		id := triple.TripleID(i)
		p1, p3, pm := one.Probability(id), three.Probability(id), mixed.Probability(id)
		if !stat.ApproxEqual(p1, p3, 1e-9) || !stat.ApproxEqual(p1, pm, 1e-9) {
			t.Errorf("triple %d: cluster partitions disagree: %v %v %v", i, p1, p3, pm)
		}
	}
}

// TestConfigValidation covers the cluster-partition checks.
func TestConfigValidation(t *testing.T) {
	d := triple.NewDataset()
	a := d.AddSource("A")
	b := d.AddSource("B")
	m := quality.NewManual(0.5)
	m.SetSource(a, 0.5, 0.2)
	m.SetSource(b, 0.5, 0.2)

	cases := []struct {
		name     string
		clusters [][]triple.SourceID
	}{
		{"empty cluster", [][]triple.SourceID{{a}, {}}},
		{"duplicate source", [][]triple.SourceID{{a, b}, {b}}},
		{"missing source", [][]triple.SourceID{{a}}},
		{"unknown source", [][]triple.SourceID{{a, b, 7}}},
	}
	for _, tc := range cases {
		_, err := NewExact(Config{Dataset: d, Params: m, Clusters: tc.clusters})
		if err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := NewExact(Config{Params: m}); err == nil {
		t.Error("nil dataset should fail")
	}
	if _, err := NewExact(Config{Dataset: d}); err == nil {
		t.Error("nil params should fail")
	}
	if _, err := NewElastic(Config{Dataset: d, Params: m}, -1); err == nil {
		t.Error("negative level should fail")
	}
}

// TestExactWidthLimit: clusters wider than MaxExactCluster are refused.
func TestExactWidthLimit(t *testing.T) {
	d := triple.NewDataset()
	m := quality.NewManual(0.5)
	for i := 0; i < MaxExactCluster+1; i++ {
		s := d.AddSource(string(rune('a'+i%26)) + string(rune('0'+i/26)))
		m.SetSource(s, 0.5, 0.2)
	}
	if _, err := NewExact(Config{Dataset: d, Params: m}); err == nil {
		t.Error("expected width-limit error")
	}
	// Elastic accepts the same width.
	if _, err := NewElastic(Config{Dataset: d, Params: m}, 2); err != nil {
		t.Errorf("elastic should accept wide clusters: %v", err)
	}
}

// TestScoreMatchesProbability: Score is Probability applied element-wise.
func TestScoreMatchesProbability(t *testing.T) {
	d, est, ids := randomSetup(t, 11)
	for _, build := range []func() (Algorithm, error){
		func() (Algorithm, error) { return NewPrecRec(Config{Dataset: d, Params: est}) },
		func() (Algorithm, error) { return NewExact(Config{Dataset: d, Params: est}) },
		func() (Algorithm, error) { return NewAggressive(Config{Dataset: d, Params: est}) },
		func() (Algorithm, error) { return NewElastic(Config{Dataset: d, Params: est}, 2) },
	} {
		alg, err := build()
		if err != nil {
			t.Fatal(err)
		}
		scores := alg.Score(ids)
		for i, id := range ids {
			if scores[i] != alg.Probability(id) {
				t.Errorf("%s: Score[%d] != Probability", alg.Name(), i)
			}
		}
	}
}

// TestProbabilitiesAreValid: every algorithm outputs values in [0, 1].
func TestProbabilitiesAreValid(t *testing.T) {
	for seed := int64(20); seed < 23; seed++ {
		d, est, ids := randomSetup(t, seed)
		algs := []Algorithm{}
		if a, err := NewPrecRec(Config{Dataset: d, Params: est}); err == nil {
			algs = append(algs, a)
		}
		if a, err := NewExact(Config{Dataset: d, Params: est}); err == nil {
			algs = append(algs, a)
		}
		if a, err := NewAggressive(Config{Dataset: d, Params: est}); err == nil {
			algs = append(algs, a)
		}
		for l := 0; l <= 3; l++ {
			if a, err := NewElastic(Config{Dataset: d, Params: est}, l); err == nil {
				algs = append(algs, a)
			}
		}
		for _, alg := range algs {
			for _, p := range alg.Score(ids) {
				if p < 0 || p > 1 || math.IsNaN(p) {
					t.Fatalf("%s produced invalid probability %v", alg.Name(), p)
				}
			}
		}
	}
}

// TestScenario1Copying reproduces Scenario 1 of Example 4.1: n replicated
// sources should contribute like a single source, so a triple provided by
// all replicas gets a lower probability under the correlation model than
// under independence.
func TestScenario1Copying(t *testing.T) {
	d := triple.NewDataset()
	var srcs []triple.SourceID
	for _, n := range []string{"A", "B", "C"} {
		srcs = append(srcs, d.AddSource(n))
	}
	tt := triple.Triple{Subject: "e", Predicate: "p", Object: "v"}
	for _, s := range srcs {
		d.Observe(s, tt)
	}
	id, _ := d.TripleID(tt)

	const r, q = 0.6, 0.3
	m := quality.NewManual(0.5)
	for _, s := range srcs {
		m.SetSource(s, r, q)
	}
	// Replicas: every joint equals the single-source value.
	for _, sub := range [][]triple.SourceID{{srcs[0], srcs[1]}, {srcs[0], srcs[2]}, {srcs[1], srcs[2]}, srcs} {
		m.SetJointRecall(sub, r)
		m.SetJointFPR(sub, q)
	}
	pr, _ := NewPrecRec(Config{Dataset: d, Params: m})
	ex, _ := NewExact(Config{Dataset: d, Params: m})
	muIndep := math.Exp(pr.LogMu(id))
	muCorr := ex.Mu(id)
	if !stat.ApproxEqual(muIndep, math.Pow(r/q, 3), 1e-9) {
		t.Errorf("µ_indep = %v, want (r/q)^3 = %v", muIndep, math.Pow(r/q, 3))
	}
	if !stat.ApproxEqual(muCorr, r/q, 1e-9) {
		t.Errorf("µ_corr = %v, want r/q = %v (replicas count once)", muCorr, r/q)
	}
}

// TestScenario4Complementary reproduces Scenario 4: with complementary
// sources, a triple provided by a single source is *not* penalized by the
// silence of the others under the correlation model.
func TestScenario4Complementary(t *testing.T) {
	d := triple.NewDataset()
	a := d.AddSource("A")
	b := d.AddSource("B")
	tt := triple.Triple{Subject: "e", Predicate: "p", Object: "v"}
	d.Observe(a, tt)
	// Keep B in scope by providing something else.
	d.Observe(b, triple.Triple{Subject: "e", Predicate: "p", Object: "w"})
	id, _ := d.TripleID(tt)

	const r, q = 0.5, 0.2
	m := quality.NewManual(0.5)
	m.SetSource(a, r, q)
	m.SetSource(b, r, q)
	// Perfectly complementary: never overlap.
	m.SetJointRecall([]triple.SourceID{a, b}, 0)
	m.SetJointFPR([]triple.SourceID{a, b}, 0)

	pr, _ := NewPrecRec(Config{Dataset: d, Params: m})
	ex, _ := NewExact(Config{Dataset: d, Params: m})
	// µ_corr = (r_a − r_ab)/(q_a − q_ab) = r/q; µ_indep = (r/q)·(1−r)/(1−q) < r/q.
	muCorr := ex.Mu(id)
	muIndep := math.Exp(pr.LogMu(id))
	if !stat.ApproxEqual(muCorr, r/q, 1e-9) {
		t.Errorf("µ_corr = %v, want r/q = %v", muCorr, r/q)
	}
	if muIndep >= muCorr {
		t.Errorf("independence should penalize the non-provider: %v >= %v", muIndep, muCorr)
	}
}

// TestMemoization: repeated scoring of triples with identical observation
// patterns hits the per-cluster cache and stays consistent.
func TestMemoization(t *testing.T) {
	d, est, ids := randomSetup(t, 31)
	ex, err := NewExact(Config{Dataset: d, Params: est})
	if err != nil {
		t.Fatal(err)
	}
	first := ex.Score(ids)
	second := ex.Score(ids)
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("memoized rescoring diverged at %d", i)
		}
	}
}

// TestAggressiveFactorsExposed: the Factors accessor matches the quality
// package's computation.
func TestAggressiveFactorsExposed(t *testing.T) {
	d, est, _ := randomSetup(t, 41)
	ag, err := NewAggressive(Config{Dataset: d, Params: est})
	if err != nil {
		t.Fatal(err)
	}
	cp, cm := ag.Factors()
	if len(cp) != 1 || len(cp[0]) != d.NumSources() || len(cm[0]) != d.NumSources() {
		t.Fatalf("factor shape: %d clusters × %d", len(cp), len(cp[0]))
	}
	group := make([]triple.SourceID, d.NumSources())
	for i := range group {
		group[i] = triple.SourceID(i)
	}
	wantP, wantM := quality.AggressiveFactors(est, group)
	for i := range wantP {
		if cp[0][i] != wantP[i] || cm[0][i] != wantM[i] {
			t.Errorf("factor[%d] mismatch", i)
		}
	}
}
