// Package crowd simulates the crowdsourced labeling process the paper relies
// on for training data (§3.2: "crowdsourcing platforms, such as Amazon
// Mechanical Turk, greatly facilitate the labeling process"; the RESTAURANT
// gold standard is the majority vote of 10 Mechanical Turk responses per
// triple). Workers with heterogeneous accuracies answer true/false labeling
// tasks; per-triple responses are aggregated by majority vote, yielding a
// training set whose noise level is controlled by worker quality and
// redundancy.
package crowd

import (
	"fmt"

	"corrfuse/internal/stat"
	"corrfuse/internal/triple"
)

// Worker is one annotator: it answers a labeling task correctly with
// probability Accuracy.
type Worker struct {
	Name     string
	Accuracy float64
}

// Config drives a labeling run.
type Config struct {
	// Workers is the annotator pool. Each task is answered by
	// ResponsesPerTask workers sampled without replacement.
	Workers []Worker
	// ResponsesPerTask is the redundancy (the paper's RESTAURANT used 10).
	ResponsesPerTask int
	Seed             int64
}

// Response is one worker's answer for one triple.
type Response struct {
	Triple triple.Triple
	Worker string
	Answer bool // true = "the triple is correct"
}

// Result of a labeling run.
type Result struct {
	// Labels is the majority-vote label per labeled triple.
	Labels map[triple.TripleID]triple.Label
	// Responses is the raw answer log.
	Responses []Response
	// Disagreement counts triples whose vote was not unanimous.
	Disagreement int
}

// Label simulates the annotation of the given triples of d. The true answer
// of each task is d's gold label (which the simulation knows but the workers
// only observe through their noisy accuracy); the output labels are the
// majority votes. Ties break toward False (annotators are conservative).
func Label(d *triple.Dataset, ids []triple.TripleID, cfg Config) (*Result, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("crowd: no workers")
	}
	k := cfg.ResponsesPerTask
	if k <= 0 {
		k = 10
	}
	if k > len(cfg.Workers) {
		return nil, fmt.Errorf("crowd: redundancy %d exceeds pool of %d workers", k, len(cfg.Workers))
	}
	for i, w := range cfg.Workers {
		if w.Accuracy < 0 || w.Accuracy > 1 {
			return nil, fmt.Errorf("crowd: worker %d accuracy outside [0,1]", i)
		}
	}
	rng := stat.NewRNG(cfg.Seed)
	res := &Result{Labels: make(map[triple.TripleID]triple.Label, len(ids))}
	for _, id := range ids {
		gold := d.Label(id)
		if gold == triple.Unknown {
			continue
		}
		truth := gold == triple.True
		votesTrue := 0
		for _, wi := range rng.SampleWithoutReplacement(len(cfg.Workers), k) {
			w := cfg.Workers[wi]
			answer := truth
			if !rng.Bernoulli(w.Accuracy) {
				answer = !answer
			}
			if answer {
				votesTrue++
			}
			name := w.Name
			if name == "" {
				name = fmt.Sprintf("worker-%d", wi)
			}
			res.Responses = append(res.Responses, Response{
				Triple: d.Triple(id),
				Worker: name,
				Answer: answer,
			})
		}
		if votesTrue != 0 && votesTrue != k {
			res.Disagreement++
		}
		if votesTrue*2 > k {
			res.Labels[id] = triple.True
		} else {
			res.Labels[id] = triple.False
		}
	}
	return res, nil
}

// Apply writes the crowd labels into a copy of the dataset, replacing the
// gold labels of the labeled subset — the realistic setting in which the
// fusion pipeline only ever sees crowd labels. It returns the copy and the
// labeled IDs (for use as quality.Options.Train).
func Apply(d *triple.Dataset, res *Result) (*triple.Dataset, []triple.TripleID) {
	// Remove gold labels outside the crowd-labeled subset by rebuilding:
	// simpler and safer — label only what the crowd labeled. Every
	// original triple is interned (even unprovided ones), so IDs of the
	// copy cover the same universe.
	out := triple.NewDataset()
	for _, s := range d.Sources() {
		out.AddSource(s.Name)
	}
	for i := 0; i < d.NumTriples(); i++ {
		id := triple.TripleID(i)
		out.SetLabel(d.Triple(id), triple.Unknown)
		for _, s := range d.Providers(id) {
			out.Observe(s, d.Triple(id))
		}
	}
	var train []triple.TripleID
	for id, l := range res.Labels {
		nid := out.SetLabel(d.Triple(id), l)
		train = append(train, nid)
	}
	return out, train
}

// UniformPool builds n workers with accuracies evenly spread across
// [lo, hi].
func UniformPool(n int, lo, hi float64) []Worker {
	out := make([]Worker, n)
	for i := range out {
		frac := 0.5
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		out[i] = Worker{
			Name:     fmt.Sprintf("worker-%02d", i),
			Accuracy: lo + (hi-lo)*frac,
		}
	}
	return out
}

// MajorityAccuracy returns the probability that a majority vote of k
// independent workers with the given accuracy is correct — a quick design
// aid for choosing redundancy.
func MajorityAccuracy(accuracy float64, k int) float64 {
	if k <= 0 {
		return 0
	}
	// Sum of binomial tail: P(X > k/2), X ~ Binomial(k, accuracy).
	total := 0.0
	for wins := k/2 + 1; wins <= k; wins++ {
		total += stat.Binomial(k, wins) *
			pow(accuracy, wins) * pow(1-accuracy, k-wins)
	}
	return total
}

func pow(b float64, e int) float64 {
	out := 1.0
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}
