package crowd

import (
	"math"
	"testing"

	"corrfuse/internal/dataset"
	"corrfuse/internal/quality"
	"corrfuse/internal/triple"
)

func TestLabelValidation(t *testing.T) {
	d := dataset.Obama()
	ids := d.Labeled()
	if _, err := Label(d, ids, Config{}); err == nil {
		t.Error("no workers should fail")
	}
	if _, err := Label(d, ids, Config{Workers: UniformPool(3, 0.8, 0.9), ResponsesPerTask: 10}); err == nil {
		t.Error("redundancy beyond pool should fail")
	}
	if _, err := Label(d, ids, Config{Workers: []Worker{{Accuracy: 2}}, ResponsesPerTask: 1}); err == nil {
		t.Error("invalid accuracy should fail")
	}
}

func TestAccurateWorkersRecoverGold(t *testing.T) {
	d := dataset.Obama()
	ids := d.Labeled()
	res, err := Label(d, ids, Config{
		Workers:          UniformPool(15, 0.95, 0.99),
		ResponsesPerTask: 11,
		Seed:             1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != len(ids) {
		t.Fatalf("labeled %d of %d", len(res.Labels), len(ids))
	}
	for id, l := range res.Labels {
		if l != d.Label(id) {
			t.Errorf("triple %d mislabeled: crowd %v, gold %v", id, l, d.Label(id))
		}
	}
	if len(res.Responses) != len(ids)*11 {
		t.Errorf("responses = %d, want %d", len(res.Responses), len(ids)*11)
	}
}

func TestNoisyWorkersDisagree(t *testing.T) {
	d, err := dataset.SimulatedRestaurant(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	ids := d.Labeled()
	res, err := Label(d, ids, Config{
		Workers:          UniformPool(20, 0.55, 0.75),
		ResponsesPerTask: 10,
		Seed:             2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Disagreement == 0 {
		t.Error("noisy workers should disagree on some tasks")
	}
	// Majority vote should still be mostly right.
	correct := 0
	for id, l := range res.Labels {
		if l == d.Label(id) {
			correct++
		}
	}
	frac := float64(correct) / float64(len(res.Labels))
	if frac < 0.75 {
		t.Errorf("majority-vote accuracy = %v, want >= 0.75", frac)
	}
}

func TestApplyBuildsTrainableDataset(t *testing.T) {
	d, err := dataset.SimulatedRestaurant(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	ids := d.Labeled()[:60]
	res, err := Label(d, ids, Config{
		Workers:          UniformPool(12, 0.8, 0.95),
		ResponsesPerTask: 9,
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	crowdD, train := Apply(d, res)
	if len(train) != len(res.Labels) {
		t.Fatalf("train = %d, want %d", len(train), len(res.Labels))
	}
	nt, nf := crowdD.CountLabels()
	if nt+nf != len(res.Labels) {
		t.Errorf("crowd dataset has %d labels, want %d (gold hidden)", nt+nf, len(res.Labels))
	}
	// The crowd-labeled dataset trains a quality estimator.
	if _, err := quality.NewEstimator(crowdD, quality.Options{Alpha: 0.5, Train: train}); err != nil {
		t.Fatalf("estimator on crowd labels: %v", err)
	}
	// Observation matrix preserved.
	if crowdD.NumTriples() != d.NumTriples() || crowdD.NumSources() != d.NumSources() {
		t.Error("Apply should preserve the observation matrix")
	}
}

func TestMajorityAccuracy(t *testing.T) {
	// Perfect workers: always correct.
	if got := MajorityAccuracy(1, 5); got != 1 {
		t.Errorf("MajorityAccuracy(1,5) = %v", got)
	}
	// Coin-flip workers with odd k: exactly 0.5.
	if got := MajorityAccuracy(0.5, 5); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("MajorityAccuracy(0.5,5) = %v", got)
	}
	// Redundancy amplifies accuracy (Condorcet).
	one := MajorityAccuracy(0.7, 1)
	nine := MajorityAccuracy(0.7, 9)
	if nine <= one {
		t.Errorf("redundancy should amplify: k=9 %v <= k=1 %v", nine, one)
	}
	if math.Abs(one-0.7) > 1e-9 {
		t.Errorf("k=1 should equal worker accuracy, got %v", one)
	}
	if MajorityAccuracy(0.7, 0) != 0 {
		t.Error("k=0 should be 0")
	}
}

func TestUniformPool(t *testing.T) {
	pool := UniformPool(5, 0.6, 0.9)
	if len(pool) != 5 {
		t.Fatal("pool size")
	}
	if pool[0].Accuracy != 0.6 || pool[4].Accuracy != 0.9 {
		t.Errorf("endpoints: %v, %v", pool[0].Accuracy, pool[4].Accuracy)
	}
	single := UniformPool(1, 0.6, 0.9)
	if single[0].Accuracy != 0.75 {
		t.Errorf("singleton pool accuracy = %v, want midpoint", single[0].Accuracy)
	}
}

func TestLabelSkipsUnlabeled(t *testing.T) {
	d := triple.NewDataset()
	s := d.AddSource("A")
	id := d.Observe(s, triple.Triple{Subject: "e", Predicate: "p", Object: "v"})
	res, err := Label(d, []triple.TripleID{id}, Config{
		Workers:          UniformPool(3, 0.9, 0.9),
		ResponsesPerTask: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Labels) != 0 {
		t.Error("unlabeled triples cannot be crowd-labeled (no ground truth to simulate)")
	}
}
