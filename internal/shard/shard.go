// Package shard partitions a fusion dataset by subject hash so that
// independent per-shard models can be trained and queried concurrently.
//
// The paper's PrecRecCorr terms are per-pattern independent, and with a
// subject-hash partition every triple about one subject lands in the same
// shard, so subject-scoped accountability (triple.ScopeSubject) and
// subject-local correlation survive the split exactly: a source's scope
// within a shard equals its global scope restricted to the shard. Quality
// statistics and correlations that span shards are approximated by
// shard-local training (see the root package's ShardedFuser for the exact
// consistency contract).
//
// The partition keeps every source registered in every shard in global
// registration order, so triple.SourceID values are interchangeable between
// the global dataset and any shard — quality parameters, clusters and
// incremental scorers can be moved across the boundary without translation.
package shard

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"corrfuse/internal/triple"
)

// FNV-1a constants (hash/fnv, inlined to keep hashing allocation-free).
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// Of returns the shard index of a subject under an n-way partition: the
// FNV-1a hash of the subject modulo n. It is the single routing function of
// the sharded engine — datasets, batch models and online scorers must all
// agree on it.
func Of(subject string, n int) int {
	if n <= 1 {
		return 0
	}
	h := uint64(offset64)
	for i := 0; i < len(subject); i++ {
		h ^= uint64(subject[i])
		h *= prime64
	}
	return int(h % uint64(n))
}

// Partition is an n-way subject-hash split of a dataset. Each shard is a
// self-contained triple.Dataset holding exactly the triples whose subject
// hashes to it (observations and labels included), with the full source
// table registered in global order. The partition records the two-way
// TripleID mapping between the global dataset and the shards.
//
// A Partition is immutable after New and safe for concurrent use.
type Partition struct {
	global *triple.Dataset
	shards []*triple.Dataset

	// shardOf and localID map a global TripleID to its shard and its ID
	// within that shard's dataset.
	shardOf []int32
	localID []triple.TripleID
	// globalID[s][local] is the inverse mapping.
	globalID [][]triple.TripleID

	timings Timings
}

// Timings is the stage cost breakdown of one partition build, feeding the
// service's corrfused_rebuild_stage_seconds metrics: Route is the serial
// subject-hash routing pass, Build the wall time of the concurrent
// per-shard dataset builds (for RebuildPartial, adoption checks included).
type Timings struct {
	Route time.Duration
	Build time.Duration
}

// Timings returns the partition build's stage costs.
func (p *Partition) Timings() Timings { return p.timings }

// New splits d into n subject-hash shards, building the shard datasets on
// up to workers goroutines (<= 0 means GOMAXPROCS). n < 1 is treated as 1
// (a single shard containing everything, useful as a degenerate case in
// tests).
//
// Only the routing pass — one subject hash per triple — is serial; the
// per-shard dataset builds (the expensive part: interning every triple and
// observation into the shard's indexes) run concurrently, one goroutine per
// shard. Each goroutine writes localID only at the indexes of its own
// shard's triples, so the builds share no mutable state.
func New(d *triple.Dataset, n, workers int) *Partition {
	if n < 1 {
		n = 1
	}
	p := &Partition{
		global:   d,
		shards:   make([]*triple.Dataset, n),
		shardOf:  make([]int32, d.NumTriples()),
		localID:  make([]triple.TripleID, d.NumTriples()),
		globalID: make([][]triple.TripleID, n),
	}
	begin := time.Now()
	for i := 0; i < d.NumTriples(); i++ {
		si := Of(d.Triple(triple.TripleID(i)).Subject, n)
		p.shardOf[i] = int32(si)
		p.globalID[si] = append(p.globalID[si], triple.TripleID(i))
	}
	p.timings.Route = time.Since(begin)
	begin = time.Now()
	// Build errors are impossible here (fn always returns nil).
	ForEach(n, workers, func(si int) error {
		p.buildShard(d, si)
		return nil
	})
	p.timings.Build = time.Since(begin)
	return p
}

// buildShard interns shard si's triples (p.globalID[si], in global order)
// into a fresh dataset, recording the local IDs. Interning in ascending
// global order makes local IDs positional: the j-th routed triple gets local
// ID j — the stable assignment RebuildPartial's dataset comparison relies
// on.
func (p *Partition) buildShard(d *triple.Dataset, si int) {
	ids := p.globalID[si]
	sd := triple.NewDatasetCap(d.NumSources(), len(ids))
	for _, s := range d.Sources() {
		sd.AddSource(s.Name)
	}
	for _, id := range ids {
		t := d.Triple(id)
		var lid triple.TripleID
		if provs := d.Providers(id); len(provs) > 0 {
			for _, s := range provs {
				lid = sd.Observe(s, t)
			}
			if l := d.Label(id); l != triple.Unknown {
				sd.SetLabel(t, l)
			}
		} else {
			// A label-only triple (gold truth missed by every
			// source) still needs an ID in its shard.
			lid = sd.SetLabel(t, d.Label(id))
		}
		p.localID[id] = lid
	}
	p.shards[si] = sd
}

// RebuildPartial builds a partition of d with prev's shard count, adopting
// prev's immutable shard dataset verbatim for every shard si with keep[si]
// true whose slice of d is verifiably identical to prev's. It returns the
// new partition, which shards were actually adopted, and whether the source
// tables of d and prev's dataset agree (callers gate other SourceID-indexed
// reuse, e.g. quality estimators, on the same verdict).
//
// The subject-hash routing is stable and the global dataset only appends,
// so an unchanged shard's triples arrive in the same relative order as in
// prev and local IDs are positional — adoption needs no re-interning, only
// the cheap positional comparison of shardUnchanged (no hashing, no
// allocation). keep is the caller's change-tracking claim (e.g. per-shard
// store version counters); the comparison verifies it, so a wrong claim
// degrades to a rebuild of that shard, never to a stale adoption. When the
// source tables of d and prev's dataset differ, no shard is adopted: shard
// datasets register the full global source table, and quality parameters
// and silence-as-evidence scoring depend on it.
func RebuildPartial(d *triple.Dataset, prev *Partition, keep []bool, workers int) (*Partition, []bool, bool) {
	n := prev.NumShards()
	p := &Partition{
		global:   d,
		shards:   make([]*triple.Dataset, n),
		shardOf:  make([]int32, d.NumTriples()),
		localID:  make([]triple.TripleID, d.NumTriples()),
		globalID: make([][]triple.TripleID, n),
	}
	begin := time.Now()
	for i := 0; i < d.NumTriples(); i++ {
		si := Of(d.Triple(triple.TripleID(i)).Subject, n)
		p.shardOf[i] = int32(si)
		p.globalID[si] = append(p.globalID[si], triple.TripleID(i))
	}
	p.timings.Route = time.Since(begin)
	begin = time.Now()
	sameSources := SourceTablesEqual(d, prev.global)
	reused := make([]bool, n)
	ForEach(n, workers, func(si int) error {
		if si < len(keep) && keep[si] && sameSources && shardUnchanged(d, p.globalID[si], prev.shards[si]) {
			p.shards[si] = prev.shards[si]
			for j, id := range p.globalID[si] {
				p.localID[id] = triple.TripleID(j)
			}
			reused[si] = true
			return nil
		}
		p.buildShard(d, si)
		return nil
	})
	p.timings.Build = time.Since(begin)
	return p, reused, sameSources
}

// SourceTablesEqual reports whether two datasets register the same sources
// in the same order — the condition for SourceID-indexed state (quality
// parameters, shard datasets' source registrations) to carry over between
// captures.
func SourceTablesEqual(a, b *triple.Dataset) bool {
	if a.NumSources() != b.NumSources() {
		return false
	}
	for _, s := range a.Sources() {
		if b.SourceName(s.ID) != s.Name {
			return false
		}
	}
	return true
}

// shardUnchanged reports whether the shard dataset sd (built from an earlier
// capture) is exactly the shard-local view of d's triples ids: same triples
// in the same positions with the same labels and providers. Local IDs are
// positional (see buildShard), so the comparison is one linear pass over the
// shard's triples and observations.
func shardUnchanged(d *triple.Dataset, ids []triple.TripleID, sd *triple.Dataset) bool {
	if len(ids) != sd.NumTriples() {
		return false
	}
	for j, id := range ids {
		lid := triple.TripleID(j)
		if d.Triple(id) != sd.Triple(lid) || d.Label(id) != sd.Label(lid) {
			return false
		}
		pg, pl := d.Providers(id), sd.Providers(lid)
		if len(pg) != len(pl) {
			return false
		}
		for k := range pg {
			if pg[k] != pl[k] {
				return false
			}
		}
	}
	return true
}

// NumShards returns the number of shards.
func (p *Partition) NumShards() int { return len(p.shards) }

// Global returns the dataset the partition was built from.
func (p *Partition) Global() *triple.Dataset { return p.global }

// Shard returns shard i's dataset. It must not be mutated.
func (p *Partition) Shard(i int) *triple.Dataset { return p.shards[i] }

// Locate maps a global TripleID to its shard and shard-local TripleID.
func (p *Partition) Locate(id triple.TripleID) (shard int, local triple.TripleID) {
	return int(p.shardOf[id]), p.localID[id]
}

// GlobalID maps a shard-local TripleID back to the global one.
func (p *Partition) GlobalID(shard int, local triple.TripleID) triple.TripleID {
	return p.globalID[shard][local]
}

// Sizes returns the number of triples routed to each shard.
func (p *Partition) Sizes() []int {
	out := make([]int, len(p.shards))
	for i, sd := range p.shards {
		out[i] = sd.NumTriples()
	}
	return out
}

// Validate checks the partition invariants: every global triple is mapped to
// exactly one shard, the two-way ID mapping is consistent, every shard's
// source table matches the global one, and every shard dataset is internally
// consistent. Intended for tests.
func (p *Partition) Validate() error {
	total := 0
	for si, sd := range p.shards {
		if sd.NumSources() != p.global.NumSources() {
			return fmt.Errorf("shard %d registers %d sources, global has %d", si, sd.NumSources(), p.global.NumSources())
		}
		for _, s := range p.global.Sources() {
			if id, ok := sd.SourceID(s.Name); !ok || id != s.ID {
				return fmt.Errorf("shard %d: source %q has ID %d, global %d", si, s.Name, id, s.ID)
			}
		}
		if err := sd.Validate(); err != nil {
			return fmt.Errorf("shard %d: %w", si, err)
		}
		total += sd.NumTriples()
		if len(p.globalID[si]) != sd.NumTriples() {
			return fmt.Errorf("shard %d: %d globalID entries for %d triples", si, len(p.globalID[si]), sd.NumTriples())
		}
	}
	if total != p.global.NumTriples() {
		return fmt.Errorf("shards hold %d triples, global has %d", total, p.global.NumTriples())
	}
	for i := 0; i < p.global.NumTriples(); i++ {
		id := triple.TripleID(i)
		si, lid := p.Locate(id)
		if want := Of(p.global.Triple(id).Subject, len(p.shards)); si != want {
			return fmt.Errorf("triple %d routed to shard %d, subject hashes to %d", id, si, want)
		}
		if p.shards[si].Triple(lid) != p.global.Triple(id) {
			return fmt.Errorf("triple %d maps to shard %d local %d holding a different triple", id, si, lid)
		}
		if back := p.GlobalID(si, lid); back != id {
			return fmt.Errorf("triple %d round-trips to %d", id, back)
		}
		if lg, gl := p.global.Label(id), p.shards[si].Label(lid); lg != gl {
			return fmt.Errorf("triple %d: label %v became %v in shard %d", id, lg, gl, si)
		}
		pg, pl := p.global.Providers(id), p.shards[si].Providers(lid)
		if len(pg) != len(pl) {
			return fmt.Errorf("triple %d: %d providers became %d in shard %d", id, len(pg), len(pl), si)
		}
		for j := range pg {
			if pg[j] != pl[j] {
				return fmt.Errorf("triple %d: provider %d is %d in shard %d, %d globally", id, j, pl[j], si, pg[j])
			}
		}
	}
	return nil
}

// ForEach runs fn(0), …, fn(n-1) across min(workers, n) goroutines
// (workers <= 0 means GOMAXPROCS) and returns the first error encountered.
// Work is handed out through an atomic counter, so uneven per-index costs
// balance across workers. On error the remaining indexes may or may not run;
// callers must treat the whole batch as failed.
func ForEach(n, workers int, fn func(i int) error) error {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		errOnce sync.Once
		first   error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					errOnce.Do(func() { first = err })
					return
				}
			}
		}()
	}
	wg.Wait()
	return first
}
