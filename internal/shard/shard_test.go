package shard

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"corrfuse/internal/triple"
)

func buildDataset(subjects, sourcesN int) *triple.Dataset {
	d := triple.NewDataset()
	srcs := make([]triple.SourceID, sourcesN)
	for i := range srcs {
		srcs[i] = d.AddSource(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < subjects; i++ {
		t := triple.Triple{Subject: fmt.Sprintf("e%d", i), Predicate: "p", Object: "v"}
		for j := 0; j <= i%sourcesN; j++ {
			d.Observe(srcs[j], t)
		}
		switch i % 3 {
		case 0:
			d.SetLabel(t, triple.True)
		case 1:
			d.SetLabel(t, triple.False)
		}
	}
	// A gold triple no source provides.
	d.SetLabel(triple.Triple{Subject: "gold-only", Predicate: "p", Object: "v"}, triple.True)
	return d
}

func TestOfDeterministicAndInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 17} {
		for i := 0; i < 100; i++ {
			sub := fmt.Sprintf("subject-%d", i)
			got := Of(sub, n)
			if got < 0 || got >= n {
				t.Fatalf("Of(%q, %d) = %d out of range", sub, n, got)
			}
			if again := Of(sub, n); again != got {
				t.Fatalf("Of(%q, %d) not deterministic: %d then %d", sub, n, got, again)
			}
		}
	}
	if Of("anything", 0) != 0 || Of("anything", 1) != 0 {
		t.Fatal("n <= 1 must route everything to shard 0")
	}
}

func TestPartitionInvariants(t *testing.T) {
	d := buildDataset(200, 7)
	for _, n := range []int{1, 2, 4, 9} {
		p := New(d, n, 2)
		if p.NumShards() != n {
			t.Fatalf("NumShards = %d, want %d", p.NumShards(), n)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestPartitionSpreadsSubjects(t *testing.T) {
	d := buildDataset(400, 5)
	p := New(d, 4, 0)
	for i, size := range p.Sizes() {
		if size == 0 {
			t.Errorf("shard %d is empty over 400 subjects", i)
		}
	}
}

func TestPartitionKeepsSubjectsTogether(t *testing.T) {
	d := triple.NewDataset()
	s := d.AddSource("s")
	for i := 0; i < 50; i++ {
		sub := fmt.Sprintf("e%d", i%10) // 10 subjects, 5 predicates each
		d.Observe(s, triple.Triple{Subject: sub, Predicate: fmt.Sprintf("p%d", i/10), Object: "v"})
	}
	p := New(d, 4, 0)
	bySubject := make(map[string]int)
	for i := 0; i < d.NumTriples(); i++ {
		id := triple.TripleID(i)
		si, _ := p.Locate(id)
		sub := d.Triple(id).Subject
		if prev, ok := bySubject[sub]; ok && prev != si {
			t.Fatalf("subject %q split across shards %d and %d", sub, prev, si)
		}
		bySubject[sub] = si
	}
}

func TestForEachCoversAllAndParallel(t *testing.T) {
	const n = 1000
	var hit [n]atomic.Int32
	if err := ForEach(n, 8, func(i int) error {
		hit[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hit {
		if got := hit[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
	}
	// Serial path.
	count := 0
	if err := ForEach(5, 1, func(i int) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("serial ForEach ran %d of 5", count)
	}
}

func TestForEachFirstError(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(100, 4, func(i int) error {
		if i == 37 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if err := ForEach(3, 1, func(i int) error {
		if i == 1 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("serial err = %v, want boom", err)
	}
}

// mutatedCopy clones d and adds fresh observations on existing subjects
// routed to the given shards (under an n-way partition), returning the new
// dataset and the set of shards actually touched.
func mutatedCopy(t *testing.T, d *triple.Dataset, n int, touch map[int]bool) *triple.Dataset {
	t.Helper()
	d2 := d.Clone()
	touched := map[int]bool{}
	for i := 0; i < d.NumTriples(); i++ {
		sub := d.Triple(triple.TripleID(i)).Subject
		si := Of(sub, n)
		if !touch[si] || touched[si] {
			continue
		}
		touched[si] = true
		d2.Observe(0, triple.Triple{Subject: sub, Predicate: "p-new", Object: "v"})
	}
	if len(touched) != len(touch) {
		t.Fatalf("touched shards %v, wanted %v", touched, touch)
	}
	return d2
}

func TestRebuildPartialAdoptsUnchangedShards(t *testing.T) {
	const n = 4
	d := buildDataset(200, 7)
	prev := New(d, n, 2)
	dirty := map[int]bool{1: true, 3: true}
	d2 := mutatedCopy(t, d, n, dirty)

	keep := make([]bool, n)
	for i := range keep {
		keep[i] = !dirty[i]
	}
	p, reused, _ := RebuildPartial(d2, prev, keep, 2)
	if err := p.Validate(); err != nil {
		t.Fatalf("partial partition invalid: %v", err)
	}
	for si := 0; si < n; si++ {
		if dirty[si] {
			if reused[si] {
				t.Errorf("dirty shard %d reported reused", si)
			}
			if p.Shard(si) == prev.Shard(si) {
				t.Errorf("dirty shard %d adopted the stale dataset", si)
			}
		} else {
			if !reused[si] {
				t.Errorf("clean shard %d not reused", si)
			}
			if p.Shard(si) != prev.Shard(si) {
				t.Errorf("clean shard %d rebuilt instead of adopted", si)
			}
		}
	}
	// The partial partition must equal a from-scratch one shard for shard.
	full := New(d2, n, 2)
	for i := 0; i < d2.NumTriples(); i++ {
		id := triple.TripleID(i)
		psi, plid := p.Locate(id)
		fsi, flid := full.Locate(id)
		if psi != fsi || plid != flid {
			t.Fatalf("triple %d located at (%d,%d) partial vs (%d,%d) full", id, psi, plid, fsi, flid)
		}
	}
}

// TestRebuildPartialVerifiesKeepClaim: a wrong keep claim (the shard did
// change) must degrade to a rebuild, never adopt stale data.
func TestRebuildPartialVerifiesKeepClaim(t *testing.T) {
	const n = 4
	d := buildDataset(120, 5)
	prev := New(d, n, 1)
	d2 := mutatedCopy(t, d, n, map[int]bool{2: true})

	keep := []bool{true, true, true, true} // lies about shard 2
	p, reused, _ := RebuildPartial(d2, prev, keep, 1)
	if reused[2] {
		t.Fatal("changed shard adopted on a false keep claim")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Label changes must be caught too, not only new triples.
	d3 := d.Clone()
	var relabeled bool
	for i := 0; i < d.NumTriples() && !relabeled; i++ {
		id := triple.TripleID(i)
		tr := d.Triple(id)
		if Of(tr.Subject, n) == 0 && d.Label(id) == triple.Unknown {
			d3.SetLabel(tr, triple.False)
			relabeled = true
		}
	}
	if !relabeled {
		t.Fatal("no unlabeled triple in shard 0 to relabel")
	}
	_, reused, _ = RebuildPartial(d3, prev, keep, 1)
	if reused[0] {
		t.Fatal("relabeled shard adopted")
	}
	for si := 1; si < n; si++ {
		if !reused[si] {
			t.Errorf("untouched shard %d rebuilt", si)
		}
	}
}

// TestRebuildPartialNewSourceBlocksAdoption: shard datasets register the
// full source table, so a new source invalidates every shard.
func TestRebuildPartialNewSourceBlocksAdoption(t *testing.T) {
	const n = 3
	d := buildDataset(90, 4)
	prev := New(d, n, 1)
	d2 := d.Clone()
	s := d2.AddSource("brand-new")
	d2.Observe(s, triple.Triple{Subject: "e0", Predicate: "p2", Object: "v"})

	p, reused, sameSources := RebuildPartial(d2, prev, []bool{true, true, true}, 1)
	if sameSources {
		t.Error("changed source table reported equal")
	}
	for si, r := range reused {
		if r {
			t.Errorf("shard %d adopted across a source-table change", si)
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPartitionTimings: both build paths record their stage costs — the
// routing pass and the dataset builds both do real work here, so the
// recorded durations must be positive and the zero value must be gone.
func TestPartitionTimings(t *testing.T) {
	d := buildDataset(2000, 5)
	p := New(d, 4, 2)
	tm := p.Timings()
	if tm.Route <= 0 || tm.Build <= 0 {
		t.Fatalf("New timings not recorded: %+v", tm)
	}

	keep := []bool{true, true, true, true}
	p2, _, _ := RebuildPartial(d, p, keep, 2)
	tm2 := p2.Timings()
	if tm2.Route <= 0 || tm2.Build <= 0 {
		t.Fatalf("RebuildPartial timings not recorded: %+v", tm2)
	}
}
