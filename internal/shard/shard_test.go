package shard

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"corrfuse/internal/triple"
)

func buildDataset(subjects, sourcesN int) *triple.Dataset {
	d := triple.NewDataset()
	srcs := make([]triple.SourceID, sourcesN)
	for i := range srcs {
		srcs[i] = d.AddSource(fmt.Sprintf("s%d", i))
	}
	for i := 0; i < subjects; i++ {
		t := triple.Triple{Subject: fmt.Sprintf("e%d", i), Predicate: "p", Object: "v"}
		for j := 0; j <= i%sourcesN; j++ {
			d.Observe(srcs[j], t)
		}
		switch i % 3 {
		case 0:
			d.SetLabel(t, triple.True)
		case 1:
			d.SetLabel(t, triple.False)
		}
	}
	// A gold triple no source provides.
	d.SetLabel(triple.Triple{Subject: "gold-only", Predicate: "p", Object: "v"}, triple.True)
	return d
}

func TestOfDeterministicAndInRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 17} {
		for i := 0; i < 100; i++ {
			sub := fmt.Sprintf("subject-%d", i)
			got := Of(sub, n)
			if got < 0 || got >= n {
				t.Fatalf("Of(%q, %d) = %d out of range", sub, n, got)
			}
			if again := Of(sub, n); again != got {
				t.Fatalf("Of(%q, %d) not deterministic: %d then %d", sub, n, got, again)
			}
		}
	}
	if Of("anything", 0) != 0 || Of("anything", 1) != 0 {
		t.Fatal("n <= 1 must route everything to shard 0")
	}
}

func TestPartitionInvariants(t *testing.T) {
	d := buildDataset(200, 7)
	for _, n := range []int{1, 2, 4, 9} {
		p := New(d, n, 2)
		if p.NumShards() != n {
			t.Fatalf("NumShards = %d, want %d", p.NumShards(), n)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
	}
}

func TestPartitionSpreadsSubjects(t *testing.T) {
	d := buildDataset(400, 5)
	p := New(d, 4, 0)
	for i, size := range p.Sizes() {
		if size == 0 {
			t.Errorf("shard %d is empty over 400 subjects", i)
		}
	}
}

func TestPartitionKeepsSubjectsTogether(t *testing.T) {
	d := triple.NewDataset()
	s := d.AddSource("s")
	for i := 0; i < 50; i++ {
		sub := fmt.Sprintf("e%d", i%10) // 10 subjects, 5 predicates each
		d.Observe(s, triple.Triple{Subject: sub, Predicate: fmt.Sprintf("p%d", i/10), Object: "v"})
	}
	p := New(d, 4, 0)
	bySubject := make(map[string]int)
	for i := 0; i < d.NumTriples(); i++ {
		id := triple.TripleID(i)
		si, _ := p.Locate(id)
		sub := d.Triple(id).Subject
		if prev, ok := bySubject[sub]; ok && prev != si {
			t.Fatalf("subject %q split across shards %d and %d", sub, prev, si)
		}
		bySubject[sub] = si
	}
}

func TestForEachCoversAllAndParallel(t *testing.T) {
	const n = 1000
	var hit [n]atomic.Int32
	if err := ForEach(n, 8, func(i int) error {
		hit[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range hit {
		if got := hit[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times", i, got)
		}
	}
	// Serial path.
	count := 0
	if err := ForEach(5, 1, func(i int) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("serial ForEach ran %d of 5", count)
	}
}

func TestForEachFirstError(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(100, 4, func(i int) error {
		if i == 37 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if err := ForEach(3, 1, func(i int) error {
		if i == 1 {
			return boom
		}
		return nil
	}); !errors.Is(err, boom) {
		t.Fatalf("serial err = %v, want boom", err)
	}
}
