// Package quality estimates source quality and inter-source correlation from
// training data, following Sections 2.2 and 3.2 of "Fusing Data with
// Correlations" (SIGMOD'14).
//
// Quality of a single source Si is its precision pi = Pr(t | Si⊨t) and recall
// ri = Pr(Si⊨t | t). The false positive rate qi = Pr(Si⊨t | ¬t) is never
// counted directly from training data (Example 3.4 shows counting is biased
// by the quality of the other sources); it is derived from precision and
// recall via the Theorem 3.5 identity
//
//	qi = α/(1−α) · (1−pi)/pi · ri
//
// Correlation between a subset S* of sources is captured by the joint
// precision p_{S*} = Pr(t | S*⊨t) and joint recall r_{S*} = Pr(S*⊨t | t),
// with joint false positive rate derived by the same identity.
package quality

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"

	"corrfuse/internal/triple"
)

// Params supplies the probabilistic parameters the fusion algorithms consume.
// Implementations: *Estimator (computed from labeled data) and *Manual
// (explicitly supplied, e.g. for the paper's worked examples).
type Params interface {
	// Alpha returns the a-priori probability that a triple is true.
	Alpha() float64
	// Recall returns ri for a single source.
	Recall(s triple.SourceID) float64
	// FPR returns qi for a single source.
	FPR(s triple.SourceID) float64
	// JointRecall returns r_{S*} for the subset. ok is false when the
	// training data gives the subset no support, in which case callers
	// should fall back to the independence assumption.
	JointRecall(subset []triple.SourceID) (r float64, ok bool)
	// JointFPR returns q_{S*}, derived from joint precision and recall.
	JointFPR(subset []triple.SourceID) (q float64, ok bool)
}

// Options configures an Estimator.
type Options struct {
	// Alpha is the a-priori probability that a triple is true.
	// Must be in (0, 1). The paper's experiments use 0.5.
	Alpha float64
	// Scope decides which sources are accountable for which triples.
	// Defaults to triple.ScopeGlobal{}.
	Scope triple.Scope
	// Smoothing is an add-k Laplace smoothing constant applied to the
	// precision and recall counts. Zero (the default) reproduces the
	// paper's worked examples exactly; a small value (e.g. 0.1) is
	// recommended for small training sets to avoid degenerate 0/1 rates.
	Smoothing float64
	// Train restricts estimation to the given labeled triples. Nil means
	// all labeled triples in the dataset.
	Train []triple.TripleID
	// MinJointSupport is the minimum number of training triples backing a
	// joint statistic for it to be reported; below it JointRecall and
	// JointFPR return ok=false, and the fusion algorithms fall back to
	// the independence product. 0 (the default, used by the worked
	// examples) only requires non-empty support. Sparse many-source
	// datasets benefit from a handful (the estimates for rare source
	// combinations are otherwise noise).
	MinJointSupport int

	// Fallback, when non-nil, supplies per-source quality for sources the
	// training slice carries no evidence about (sources providing none of
	// the labeled triples). Counting such a source's precision as 0 would
	// derive a false positive rate of 1 and wrongly turn its silence into
	// strong evidence for a triple. Sharded training uses this: a shard's
	// label slice can miss a source entirely, and the globally trained
	// estimator stands in for it. With a Fallback set, an empty or
	// all-false training slice is not an error — every source then runs
	// on fallback quality and all joint statistics are unsupported.
	Fallback Params
}

// Estimator computes per-source and joint quality metrics from the labeled
// triples of a dataset. It memoizes joint statistics, so it is cheap to
// query repeatedly, and it is safe for concurrent use: the memo tables are
// guarded by a mutex.
type Estimator struct {
	d     *triple.Dataset
	opts  Options
	train []triple.TripleID

	mu sync.Mutex // guards jointRec and jointPrec

	trueIDs  []triple.TripleID
	labelled []triple.TripleID

	prec []float64 // per-source precision
	rec  []float64 // per-source recall
	fpr  []float64 // per-source derived FPR

	// provLab[s] is a bitset over positions of e.labelled marking the
	// labeled triples source s provides; scopeLab[s] marks the labeled
	// triples in s's scope; labTrue marks the true ones. They make joint
	// statistics O(sources · labeled/64) per subset.
	provLab  [][]uint64
	scopeLab [][]uint64
	labTrue  []uint64

	jointRec  map[string]jointStat
	jointPrec map[string]jointStat
}

type jointStat struct {
	v  float64
	ok bool
}

// NewEstimator builds an estimator for d. It panics if Alpha is outside
// (0, 1); it returns an error if the training set contains no true triples
// (recall would be undefined).
func NewEstimator(d *triple.Dataset, opts Options) (*Estimator, error) {
	if opts.Alpha <= 0 || opts.Alpha >= 1 {
		panic(fmt.Sprintf("quality: Alpha %v outside (0,1)", opts.Alpha))
	}
	if opts.Scope == nil {
		opts.Scope = triple.ScopeGlobal{}
	}
	train := opts.Train
	if train == nil {
		train = d.Labeled()
	}
	e := &Estimator{
		d:         d,
		opts:      opts,
		train:     train,
		jointRec:  make(map[string]jointStat),
		jointPrec: make(map[string]jointStat),
	}
	for _, id := range train {
		switch d.Label(id) {
		case triple.True:
			e.trueIDs = append(e.trueIDs, id)
			e.labelled = append(e.labelled, id)
		case triple.False:
			e.labelled = append(e.labelled, id)
		}
	}
	if len(e.trueIDs) == 0 && opts.Fallback == nil {
		return nil, fmt.Errorf("quality: training set has no true triples")
	}
	e.buildBitsets()
	e.computeSingles()
	return e, nil
}

// buildBitsets indexes provider membership and scope over the labeled
// triples.
func (e *Estimator) buildBitsets() {
	words := (len(e.labelled) + 63) / 64
	e.labTrue = make([]uint64, words)
	e.provLab = make([][]uint64, e.d.NumSources())
	e.scopeLab = make([][]uint64, e.d.NumSources())
	for s := range e.provLab {
		e.provLab[s] = make([]uint64, words)
		e.scopeLab[s] = make([]uint64, words)
	}
	_, global := e.opts.Scope.(triple.ScopeGlobal)
	for pos, id := range e.labelled {
		w, b := pos/64, uint(pos%64)
		if e.d.Label(id) == triple.True {
			e.labTrue[w] |= 1 << b
		}
		for _, s := range e.d.Providers(id) {
			e.provLab[s][w] |= 1 << b
		}
		for s := 0; s < e.d.NumSources(); s++ {
			if global || e.opts.Scope.InScope(e.d, triple.SourceID(s), id) {
				e.scopeLab[s][w] |= 1 << b
			}
		}
	}
}

// intersectProviders ANDs the provider bitsets of the subset into dst.
func (e *Estimator) intersectProviders(subset []triple.SourceID, dst []uint64) {
	copy(dst, e.provLab[subset[0]])
	for _, s := range subset[1:] {
		bs := e.provLab[s]
		for w := range dst {
			dst[w] &= bs[w]
		}
	}
}

// intersectScopes ANDs the scope bitsets of the subset into dst.
func (e *Estimator) intersectScopes(subset []triple.SourceID, dst []uint64) {
	copy(dst, e.scopeLab[subset[0]])
	for _, s := range subset[1:] {
		bs := e.scopeLab[s]
		for w := range dst {
			dst[w] &= bs[w]
		}
	}
}

func popcount(bits []uint64) int {
	n := 0
	for _, w := range bits {
		n += onesCount64(w)
	}
	return n
}

func popcountAnd(a, b []uint64) int {
	n := 0
	for w := range a {
		n += onesCount64(a[w] & b[w])
	}
	return n
}

// computeSingles fills the per-source precision/recall/FPR tables.
func (e *Estimator) computeSingles() {
	n := e.d.NumSources()
	e.prec = make([]float64, n)
	e.rec = make([]float64, n)
	e.fpr = make([]float64, n)
	k := e.opts.Smoothing
	for s := 0; s < n; s++ {
		sid := triple.SourceID(s)
		var provided, providedTrue, inScopeTrue float64
		for _, id := range e.labelled {
			if !e.opts.Scope.InScope(e.d, sid, id) {
				continue
			}
			isTrue := e.d.Label(id) == triple.True
			if e.d.Provides(sid, id) {
				provided++
				if isTrue {
					providedTrue++
				}
			}
			if isTrue {
				inScopeTrue++
			}
		}
		if (provided == 0 || len(e.trueIDs) == 0) && e.opts.Fallback != nil {
			// The training slice has no evidence about this source —
			// or no true triples at all, leaving every recall
			// denominator empty; inherit the source's quality from
			// the fallback. Precision is back-derived from the
			// Theorem 3.5 identity so the (p, r, q) triple stays
			// internally consistent.
			r := e.opts.Fallback.Recall(sid)
			q := e.opts.Fallback.FPR(sid)
			e.rec[s] = r
			e.fpr[s] = q
			e.prec[s] = derivePrecision(e.opts.Alpha, r, q)
			continue
		}
		e.prec[s] = safeRatio(providedTrue+k, provided+2*k)
		e.rec[s] = safeRatio(providedTrue+k, inScopeTrue+2*k)
		e.fpr[s] = DeriveFPR(e.opts.Alpha, e.prec[s], e.rec[s])
	}
}

// derivePrecision inverts the Theorem 3.5 identity q = α/(1−α)·(1−p)/p·r,
// giving p = αr / (αr + (1−α)q). A source with no recall and no false
// positives carries no information; its precision is reported as 0.
func derivePrecision(alpha, r, q float64) float64 {
	den := alpha*r + (1-alpha)*q
	if den <= 0 {
		return 0
	}
	return alpha * r / den
}

// safeRatio returns num/den, or 0 when den is 0.
func safeRatio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// DeriveFPR computes q = α/(1−α) · (1−p)/p · r (Theorem 3.5), clamped to
// [0, 1]. A source with p = 0 is maximally bad; we return 1.
func DeriveFPR(alpha, p, r float64) float64 {
	if p <= 0 {
		return 1
	}
	q := alpha / (1 - alpha) * (1 - p) / p * r
	if q > 1 {
		return 1
	}
	if q < 0 {
		return 0
	}
	return q
}

// ValidFPR reports whether the Theorem 3.5 derivation yields a valid
// probability, i.e. α ≤ p/(p + r − p·r).
func ValidFPR(alpha, p, r float64) bool {
	den := p + r - p*r
	if den <= 0 {
		return false
	}
	return alpha <= p/den
}

// Dataset returns the dataset this estimator was built on.
func (e *Estimator) Dataset() *triple.Dataset { return e.d }

// Scope returns the scope used for estimation.
func (e *Estimator) Scope() triple.Scope { return e.opts.Scope }

// Alpha implements Params.
func (e *Estimator) Alpha() float64 { return e.opts.Alpha }

// Precision returns pi for source s.
func (e *Estimator) Precision(s triple.SourceID) float64 { return e.prec[s] }

// Recall implements Params.
func (e *Estimator) Recall(s triple.SourceID) float64 { return e.rec[s] }

// FPR implements Params.
func (e *Estimator) FPR(s triple.SourceID) float64 { return e.fpr[s] }

// Good reports whether s is a good source in the paper's sense (ri > qi): it
// is more likely to provide a true triple than a false one.
func (e *Estimator) Good(s triple.SourceID) bool { return e.rec[s] > e.fpr[s] }

// subsetKey builds a canonical cache key for a source subset.
func subsetKey(subset []triple.SourceID) string {
	ids := make([]int, len(subset))
	for i, s := range subset {
		ids[i] = int(s)
	}
	sort.Ints(ids)
	b := make([]byte, 0, 4*len(ids))
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), byte(id>>16), byte(id>>24))
	}
	return string(b)
}

// JointPrecision returns p_{S*}: among labeled triples provided by every
// source in the subset, the fraction that are true. ok is false when no
// labeled triple is provided by all of them.
func (e *Estimator) JointPrecision(subset []triple.SourceID) (float64, bool) {
	if len(subset) == 0 {
		return 0, false
	}
	if len(subset) == 1 {
		return e.prec[subset[0]], true
	}
	key := subsetKey(subset)
	e.mu.Lock()
	if st, hit := e.jointPrec[key]; hit {
		e.mu.Unlock()
		return st.v, st.ok
	}
	e.mu.Unlock()
	inter := make([]uint64, len(e.labTrue))
	e.intersectProviders(subset, inter)
	all := popcount(inter)
	allTrue := popcountAnd(inter, e.labTrue)
	st := jointStat{ok: all > e.minSupport()}
	if st.ok {
		st.v = float64(allTrue) / float64(all)
	}
	e.mu.Lock()
	e.jointPrec[key] = st
	e.mu.Unlock()
	return st.v, st.ok
}

// JointRecall implements Params: r_{S*} = |true triples provided by all| /
// |true triples in the scope of all|, the scope-aware reading of §2.2 ("the
// recall of a source should be calculated with respect to the scope of its
// input"); with the default global scope the denominator is all true
// triples. ok is false when the subset is empty or no true triple lies in
// the joint scope.
func (e *Estimator) JointRecall(subset []triple.SourceID) (float64, bool) {
	if len(subset) == 0 {
		return 0, false
	}
	if len(subset) == 1 {
		return e.rec[subset[0]], true
	}
	key := subsetKey(subset)
	e.mu.Lock()
	if st, hit := e.jointRec[key]; hit {
		e.mu.Unlock()
		return st.v, st.ok
	}
	e.mu.Unlock()
	inter := make([]uint64, len(e.labTrue))
	e.intersectProviders(subset, inter)
	allTrue := popcountAnd(inter, e.labTrue)
	e.intersectScopes(subset, inter)
	scopeTrue := popcountAnd(inter, e.labTrue)
	st := jointStat{ok: scopeTrue > e.minSupport()}
	if st.ok {
		st.v = float64(allTrue) / float64(scopeTrue)
	}
	e.mu.Lock()
	e.jointRec[key] = st
	e.mu.Unlock()
	return st.v, st.ok
}

// minSupport returns the support floor for joint statistics (at least 0,
// meaning "non-empty").
func (e *Estimator) minSupport() int {
	if e.opts.MinJointSupport > 1 {
		return e.opts.MinJointSupport - 1
	}
	return 0
}

// JointFPR implements Params: q_{S*} derived from joint precision and joint
// recall via Theorem 3.5. ok is false when the joint precision has no
// support in the training data.
func (e *Estimator) JointFPR(subset []triple.SourceID) (float64, bool) {
	if len(subset) == 1 {
		return e.fpr[subset[0]], true
	}
	p, pok := e.JointPrecision(subset)
	if !pok {
		return 0, false
	}
	r, rok := e.JointRecall(subset)
	if !rok {
		return 0, false
	}
	return DeriveFPR(e.Alpha(), p, r), true
}

// onesCount64 is math/bits.OnesCount64; aliased here to keep the import list
// tidy in one place.
func onesCount64(w uint64) int { return bits.OnesCount64(w) }

// Manual is a Params implementation with explicitly supplied values, used in
// tests that reproduce the paper's worked examples and in simulations where
// the true generative parameters are known.
type Manual struct {
	Prior   float64
	Recalls map[triple.SourceID]float64
	FPRs    map[triple.SourceID]float64
	// JointRecalls and JointFPRs are keyed by canonical subset key; use
	// SetJointRecall / SetJointFPR to populate them.
	JointRecalls map[string]float64
	JointFPRs    map[string]float64
}

// NewManual returns an empty Manual with the given prior α.
func NewManual(alpha float64) *Manual {
	return &Manual{
		Prior:        alpha,
		Recalls:      make(map[triple.SourceID]float64),
		FPRs:         make(map[triple.SourceID]float64),
		JointRecalls: make(map[string]float64),
		JointFPRs:    make(map[string]float64),
	}
}

// SetSource sets the recall and FPR of a single source.
func (m *Manual) SetSource(s triple.SourceID, recall, fpr float64) {
	m.Recalls[s] = recall
	m.FPRs[s] = fpr
}

// SetJointRecall records r_{S*} for a subset.
func (m *Manual) SetJointRecall(subset []triple.SourceID, r float64) {
	m.JointRecalls[subsetKey(subset)] = r
}

// SetJointFPR records q_{S*} for a subset.
func (m *Manual) SetJointFPR(subset []triple.SourceID, q float64) {
	m.JointFPRs[subsetKey(subset)] = q
}

// Alpha implements Params.
func (m *Manual) Alpha() float64 { return m.Prior }

// Recall implements Params.
func (m *Manual) Recall(s triple.SourceID) float64 { return m.Recalls[s] }

// FPR implements Params.
func (m *Manual) FPR(s triple.SourceID) float64 { return m.FPRs[s] }

// JointRecall implements Params. Singleton subsets fall back to Recall;
// larger subsets must have been set explicitly.
func (m *Manual) JointRecall(subset []triple.SourceID) (float64, bool) {
	if len(subset) == 1 {
		r, ok := m.Recalls[subset[0]]
		return r, ok
	}
	r, ok := m.JointRecalls[subsetKey(subset)]
	return r, ok
}

// JointFPR implements Params.
func (m *Manual) JointFPR(subset []triple.SourceID) (float64, bool) {
	if len(subset) == 1 {
		q, ok := m.FPRs[subset[0]]
		return q, ok
	}
	q, ok := m.JointFPRs[subsetKey(subset)]
	return q, ok
}

// IndepJointRecall returns the joint recall a set of independent sources
// would have: the product of individual recalls.
func IndepJointRecall(p Params, subset []triple.SourceID) float64 {
	out := 1.0
	for _, s := range subset {
		out *= p.Recall(s)
	}
	return out
}

// IndepJointFPR returns the joint FPR under independence: the product of
// individual FPRs.
func IndepJointFPR(p Params, subset []triple.SourceID) float64 {
	out := 1.0
	for _, s := range subset {
		out *= p.FPR(s)
	}
	return out
}

// CorrelationTrue returns the correlation factor C_{S*} = r_{S*} / ∏ ri
// (Eq. 16). Values > 1 indicate positive correlation on true triples, < 1
// negative correlation, 1 independence. ok is false when either the joint
// recall is unsupported or the independence product is zero.
func CorrelationTrue(p Params, subset []triple.SourceID) (float64, bool) {
	r, ok := p.JointRecall(subset)
	if !ok {
		return 1, false
	}
	ind := IndepJointRecall(p, subset)
	if ind == 0 {
		return 1, false
	}
	return r / ind, true
}

// CorrelationFalse returns C¬_{S*} = q_{S*} / ∏ qi (Eq. 17).
func CorrelationFalse(p Params, subset []triple.SourceID) (float64, bool) {
	q, ok := p.JointFPR(subset)
	if !ok {
		return 1, false
	}
	ind := IndepJointFPR(p, subset)
	if ind == 0 {
		return 1, false
	}
	return q / ind, true
}

// AggressiveFactors returns C⁺ᵢ and C⁻ᵢ (Eq. 14–15) for every source in
// group, computed within the group:
//
//	C⁺ᵢ = r_G / (rᵢ · r_{G∖{i}})    C⁻ᵢ = q_G / (qᵢ · q_{G∖{i}})
//
// When a joint parameter lacks support or a denominator is zero, the factor
// falls back to 1 (independence), the safe neutral value (Corollary 4.6).
func AggressiveFactors(p Params, group []triple.SourceID) (cplus, cminus []float64) {
	n := len(group)
	cplus = make([]float64, n)
	cminus = make([]float64, n)
	for i := range cplus {
		cplus[i], cminus[i] = 1, 1
	}
	if n < 2 {
		return
	}
	rAll, rAllOK := p.JointRecall(group)
	qAll, qAllOK := p.JointFPR(group)
	rest := make([]triple.SourceID, 0, n-1)
	for i, s := range group {
		rest = rest[:0]
		for j, t := range group {
			if j != i {
				rest = append(rest, t)
			}
		}
		if rAllOK {
			if rRest, ok := p.JointRecall(rest); ok {
				den := p.Recall(s) * rRest
				if den > 0 && rAll > 0 {
					cplus[i] = rAll / den
				}
			}
		}
		if qAllOK {
			if qRest, ok := p.JointFPR(rest); ok {
				den := p.FPR(s) * qRest
				if den > 0 && qAll > 0 {
					cminus[i] = qAll / den
				}
			}
		}
	}
	return
}

// PairCounts reports the raw co-provision counts of two sources over the
// training data: how many true and false labeled triples each provides and
// both provide, plus the totals. The cluster package uses these to score the
// statistical significance of a pairwise correlation.
func (e *Estimator) PairCounts(a, b triple.SourceID) (bothTrue, bothFalse, aTrue, aFalse, bTrue, bFalse, totTrue, totFalse int) {
	inter := make([]uint64, len(e.labTrue))
	e.intersectProviders([]triple.SourceID{a, b}, inter)
	both := popcount(inter)
	bothTrue = popcountAnd(inter, e.labTrue)
	bothFalse = both - bothTrue
	aAll := popcount(e.provLab[a])
	aTrue = popcountAnd(e.provLab[a], e.labTrue)
	aFalse = aAll - aTrue
	bAll := popcount(e.provLab[b])
	bTrue = popcountAnd(e.provLab[b], e.labTrue)
	bFalse = bAll - bTrue
	totTrue = len(e.trueIDs)
	totFalse = len(e.labelled) - totTrue
	return
}

// PairCorrelation summarizes the pairwise correlation between two sources on
// true and on false triples; used by the clustering package.
func PairCorrelation(p Params, a, b triple.SourceID) (onTrue, onFalse float64) {
	pair := []triple.SourceID{a, b}
	ct, okT := CorrelationTrue(p, pair)
	cf, okF := CorrelationFalse(p, pair)
	if !okT {
		ct = 1
	}
	if !okF {
		cf = 1
	}
	if math.IsInf(ct, 0) || math.IsNaN(ct) {
		ct = 1
	}
	if math.IsInf(cf, 0) || math.IsNaN(cf) {
		cf = 1
	}
	return ct, cf
}
