package quality

import (
	"testing"

	"corrfuse/internal/dataset"
	"corrfuse/internal/stat"
	"corrfuse/internal/triple"
)

// naiveJointRecall recomputes r_{S*} by direct iteration, as a reference for
// the bitset implementation.
func naiveJointRecall(d *triple.Dataset, scope triple.Scope, subset []triple.SourceID) (float64, bool) {
	var provided, inScope int
	for _, id := range d.Labeled() {
		if d.Label(id) != triple.True {
			continue
		}
		allScope := true
		for _, s := range subset {
			if !scope.InScope(d, s, id) {
				allScope = false
				break
			}
		}
		if !allScope {
			continue
		}
		inScope++
		allProv := true
		for _, s := range subset {
			if !d.Provides(s, id) {
				allProv = false
				break
			}
		}
		if allProv {
			provided++
		}
	}
	if inScope == 0 {
		return 0, false
	}
	return float64(provided) / float64(inScope), true
}

// naiveJointPrecision recomputes p_{S*} by direct iteration.
func naiveJointPrecision(d *triple.Dataset, subset []triple.SourceID) (float64, bool) {
	var all, allTrue int
	for _, id := range d.Labeled() {
		provided := true
		for _, s := range subset {
			if !d.Provides(s, id) {
				provided = false
				break
			}
		}
		if !provided {
			continue
		}
		all++
		if d.Label(id) == triple.True {
			allTrue++
		}
	}
	if all == 0 {
		return 0, false
	}
	return float64(allTrue) / float64(all), true
}

// TestJointStatsDifferential cross-checks the bitset joint statistics
// against the naive reference on random correlated data, for both scopes
// and many random subsets.
func TestJointStatsDifferential(t *testing.T) {
	rng := stat.NewRNG(2024)
	for trial := 0; trial < 3; trial++ {
		spec := dataset.SyntheticSpec{
			NumTrue:  150,
			NumFalse: 150,
			Seed:     int64(1000 + trial),
			Sources: []dataset.SourceSpec{
				{Precision: 0.7, Recall: 0.5},
				{Precision: 0.6, Recall: 0.4},
				{Precision: 0.8, Recall: 0.3},
				{Precision: 0.5, Recall: 0.6},
				{Precision: 0.6, Recall: 0.5},
				{Precision: 0.7, Recall: 0.4},
			},
			Groups: []dataset.GroupSpec{
				{Members: []int{0, 1, 2}, OnTrue: true, Strength: 0.7},
			},
		}
		d, err := dataset.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		scopes := []triple.Scope{triple.ScopeGlobal{}, triple.NewScopeSubject(d)}
		for si, scope := range scopes {
			e, err := NewEstimator(d, Options{Alpha: 0.5, Scope: scope})
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 20; k++ {
				size := 2 + rng.Intn(4)
				idx := rng.SampleWithoutReplacement(6, size)
				subset := make([]triple.SourceID, size)
				for i, v := range idx {
					subset[i] = triple.SourceID(v)
				}
				gotR, gotROK := e.JointRecall(subset)
				wantR, wantROK := naiveJointRecall(d, scope, subset)
				if gotROK != wantROK || (gotROK && !stat.ApproxEqual(gotR, wantR, 1e-12)) {
					t.Fatalf("trial %d scope %d subset %v: JointRecall = (%v,%v), naive (%v,%v)",
						trial, si, subset, gotR, gotROK, wantR, wantROK)
				}
				gotP, gotPOK := e.JointPrecision(subset)
				wantP, wantPOK := naiveJointPrecision(d, subset)
				if gotPOK != wantPOK || (gotPOK && !stat.ApproxEqual(gotP, wantP, 1e-12)) {
					t.Fatalf("trial %d subset %v: JointPrecision = (%v,%v), naive (%v,%v)",
						trial, subset, gotP, gotPOK, wantP, wantPOK)
				}
			}
		}
	}
}

// TestPairCountsDifferential cross-checks PairCounts against direct
// iteration.
func TestPairCountsDifferential(t *testing.T) {
	d, err := dataset.SimulatedReVerb(9)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEstimator(d, Options{Alpha: 0.26})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < d.NumSources(); a++ {
		for b := a + 1; b < d.NumSources(); b++ {
			bt, bf, at, af, btr, bfr, tt, tf := e.PairCounts(triple.SourceID(a), triple.SourceID(b))
			var wantBT, wantBF, wantAT, wantAF, wantBTr, wantBFr, wantTT, wantTF int
			for _, id := range d.Labeled() {
				isTrue := d.Label(id) == triple.True
				pa := d.Provides(triple.SourceID(a), id)
				pb := d.Provides(triple.SourceID(b), id)
				if isTrue {
					wantTT++
				} else {
					wantTF++
				}
				if pa && isTrue {
					wantAT++
				}
				if pa && !isTrue {
					wantAF++
				}
				if pb && isTrue {
					wantBTr++
				}
				if pb && !isTrue {
					wantBFr++
				}
				if pa && pb && isTrue {
					wantBT++
				}
				if pa && pb && !isTrue {
					wantBF++
				}
			}
			if bt != wantBT || bf != wantBF || at != wantAT || af != wantAF ||
				btr != wantBTr || bfr != wantBFr || tt != wantTT || tf != wantTF {
				t.Fatalf("PairCounts(%d,%d) mismatch", a, b)
			}
		}
	}
}
