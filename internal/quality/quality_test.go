package quality

import (
	"math"
	"testing"
	"testing/quick"

	"corrfuse/internal/stat"
	"corrfuse/internal/triple"
)

func tr(o string) triple.Triple {
	return triple.Triple{Subject: "e", Predicate: "p", Object: o}
}

// buildSimple: A provides {1t, 2t, 3f}; B provides {1t, 4f}; triple 5t is
// provided by nobody. t = true, f = false.
func buildSimple(t *testing.T) (*triple.Dataset, triple.SourceID, triple.SourceID) {
	t.Helper()
	d := triple.NewDataset()
	a := d.AddSource("A")
	b := d.AddSource("B")
	d.Observe(a, tr("1"))
	d.Observe(a, tr("2"))
	d.Observe(a, tr("3"))
	d.Observe(b, tr("1"))
	d.Observe(b, tr("4"))
	for _, o := range []string{"1", "2", "5"} {
		d.SetLabel(tr(o), triple.True)
	}
	for _, o := range []string{"3", "4"} {
		d.SetLabel(tr(o), triple.False)
	}
	return d, a, b
}

func TestEstimatorSingles(t *testing.T) {
	d, a, b := buildSimple(t)
	e, err := NewEstimator(d, Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := e.Precision(a); !stat.ApproxEqual(got, 2.0/3, 1e-12) {
		t.Errorf("precision(A) = %v", got)
	}
	if got := e.Recall(a); !stat.ApproxEqual(got, 2.0/3, 1e-12) {
		t.Errorf("recall(A) = %v", got)
	}
	if got := e.Precision(b); !stat.ApproxEqual(got, 0.5, 1e-12) {
		t.Errorf("precision(B) = %v", got)
	}
	if got := e.Recall(b); !stat.ApproxEqual(got, 1.0/3, 1e-12) {
		t.Errorf("recall(B) = %v", got)
	}
	// Theorem 3.5: qA = (1-2/3)/(2/3) · 2/3 = 1/3 with α = 0.5.
	if got := e.FPR(a); !stat.ApproxEqual(got, 1.0/3, 1e-12) {
		t.Errorf("FPR(A) = %v", got)
	}
	if !e.Good(a) {
		t.Error("A should be good (r > q)")
	}
	// B: qB = 1 · 1/3 = 1/3 = rB → not good.
	if e.Good(b) {
		t.Error("B should not be good (r == q)")
	}
}

func TestEstimatorJoint(t *testing.T) {
	d, a, b := buildSimple(t)
	e, err := NewEstimator(d, Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	pair := []triple.SourceID{a, b}
	p, ok := e.JointPrecision(pair)
	if !ok || !stat.ApproxEqual(p, 1, 1e-12) {
		t.Errorf("joint precision = %v (ok=%v), want 1", p, ok)
	}
	r, ok := e.JointRecall(pair)
	if !ok || !stat.ApproxEqual(r, 1.0/3, 1e-12) {
		t.Errorf("joint recall = %v (ok=%v), want 1/3", r, ok)
	}
	q, ok := e.JointFPR(pair)
	if !ok || !stat.ApproxEqual(q, 0, 1e-12) {
		t.Errorf("joint FPR = %v (ok=%v), want 0 (perfect joint precision)", q, ok)
	}
	// Order must not matter.
	r2, _ := e.JointRecall([]triple.SourceID{b, a})
	if r2 != r {
		t.Error("joint recall depends on subset order")
	}
}

func TestJointNoSupport(t *testing.T) {
	d := triple.NewDataset()
	a := d.AddSource("A")
	b := d.AddSource("B")
	d.Observe(a, tr("1"))
	d.Observe(b, tr("2"))
	d.SetLabel(tr("1"), triple.True)
	d.SetLabel(tr("2"), triple.True)
	e, err := NewEstimator(d, Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := e.JointPrecision([]triple.SourceID{a, b}); ok {
		t.Error("disjoint sources should have unsupported joint precision")
	}
	if _, ok := e.JointFPR([]triple.SourceID{a, b}); ok {
		t.Error("joint FPR should propagate missing support")
	}
	if r, ok := e.JointRecall([]triple.SourceID{a, b}); !ok || r != 0 {
		t.Errorf("joint recall = (%v, %v), want (0, true)", r, ok)
	}
}

func TestMinJointSupport(t *testing.T) {
	d, a, b := buildSimple(t)
	e, err := NewEstimator(d, Options{Alpha: 0.5, MinJointSupport: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Only one labeled triple is provided by both → below support 2.
	if _, ok := e.JointPrecision([]triple.SourceID{a, b}); ok {
		t.Error("joint precision should be suppressed below MinJointSupport")
	}
}

func TestNoTrueTriples(t *testing.T) {
	d := triple.NewDataset()
	a := d.AddSource("A")
	d.Observe(a, tr("1"))
	d.SetLabel(tr("1"), triple.False)
	if _, err := NewEstimator(d, Options{Alpha: 0.5}); err == nil {
		t.Error("expected error with no true training triples")
	}
}

func TestAlphaValidation(t *testing.T) {
	d, _, _ := buildSimple(t)
	defer func() {
		if recover() == nil {
			t.Error("Alpha outside (0,1) should panic")
		}
	}()
	_, _ = NewEstimator(d, Options{Alpha: 0})
}

func TestSmoothing(t *testing.T) {
	d := triple.NewDataset()
	a := d.AddSource("A")
	b := d.AddSource("B")
	d.Observe(a, tr("1"))
	d.Observe(b, tr("2")) // b provides only a false triple → raw p = 0
	d.SetLabel(tr("1"), triple.True)
	d.SetLabel(tr("2"), triple.False)
	raw, err := NewEstimator(d, Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if raw.Precision(b) != 0 || raw.FPR(b) != 1 {
		t.Errorf("raw: p=%v q=%v, want 0 and 1", raw.Precision(b), raw.FPR(b))
	}
	sm, err := NewEstimator(d, Options{Alpha: 0.5, Smoothing: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p := sm.Precision(b); p <= 0 || p >= 0.5 {
		t.Errorf("smoothed precision = %v, want in (0, 0.5)", p)
	}
	if q := sm.FPR(b); q >= 1 {
		t.Errorf("smoothed FPR = %v, want < 1", q)
	}
}

func TestDeriveFPRTheorem35(t *testing.T) {
	// The derivation must invert the precision formula:
	// p = αr / (αr + (1−α)q).
	f := func(rawAlpha, rawP, rawR float64) bool {
		alpha := 0.05 + 0.9*math.Abs(math.Mod(rawAlpha, 1))
		p := 0.05 + 0.9*math.Abs(math.Mod(rawP, 1))
		r := 0.05 + 0.9*math.Abs(math.Mod(rawR, 1))
		q := DeriveFPR(alpha, p, r)
		if q >= 1 || q <= 0 {
			return true // clamped; identity does not apply
		}
		back := alpha * r / (alpha*r + (1-alpha)*q)
		return stat.ApproxEqual(back, p, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidFPRCondition(t *testing.T) {
	// α ≤ p/(p+r−pr) exactly when the derived q ≤ 1 (before clamping).
	for _, tc := range []struct {
		alpha, p, r float64
	}{{0.5, 0.8, 0.5}, {0.5, 0.3, 0.9}, {0.9, 0.5, 0.5}, {0.2, 0.1, 0.9}} {
		raw := tc.alpha / (1 - tc.alpha) * (1 - tc.p) / tc.p * tc.r
		if got, want := ValidFPR(tc.alpha, tc.p, tc.r), raw <= 1+1e-12; got != want {
			t.Errorf("ValidFPR(%v) = %v, want %v (raw q = %v)", tc, got, want, raw)
		}
	}
}

func TestGoodSourceCondition(t *testing.T) {
	// Theorem 3.5: p > α implies q < r.
	for _, alpha := range []float64{0.2, 0.5, 0.8} {
		for _, p := range []float64{0.1, 0.3, 0.6, 0.9} {
			for _, r := range []float64{0.2, 0.5, 0.9} {
				q := DeriveFPR(alpha, p, r)
				if p > alpha && q >= r && r > 0 {
					t.Errorf("p=%v > α=%v but q=%v >= r=%v", p, alpha, q, r)
				}
			}
		}
	}
}

func TestManualParams(t *testing.T) {
	m := NewManual(0.4)
	if m.Alpha() != 0.4 {
		t.Error("Alpha")
	}
	m.SetSource(0, 0.7, 0.2)
	m.SetSource(1, 0.6, 0.1)
	if m.Recall(0) != 0.7 || m.FPR(1) != 0.1 {
		t.Error("single-source getters")
	}
	pair := []triple.SourceID{0, 1}
	if _, ok := m.JointRecall(pair); ok {
		t.Error("unset joint should be unsupported")
	}
	m.SetJointRecall(pair, 0.5)
	m.SetJointFPR(pair, 0.05)
	if r, ok := m.JointRecall([]triple.SourceID{1, 0}); !ok || r != 0.5 {
		t.Error("joint recall should be order-insensitive")
	}
	if q, ok := m.JointFPR(pair); !ok || q != 0.05 {
		t.Error("joint FPR")
	}
	if r, ok := m.JointRecall([]triple.SourceID{0}); !ok || r != 0.7 {
		t.Error("singleton joint should fall back to Recall")
	}
}

func TestCorrelationFactors(t *testing.T) {
	m := NewManual(0.5)
	m.SetSource(0, 0.5, 0.2)
	m.SetSource(1, 0.4, 0.1)
	pair := []triple.SourceID{0, 1}
	m.SetJointRecall(pair, 0.3) // > 0.2 = independent product → positive
	m.SetJointFPR(pair, 0.01)   // < 0.02 → negative on false
	ct, ok := CorrelationTrue(m, pair)
	if !ok || !stat.ApproxEqual(ct, 1.5, 1e-12) {
		t.Errorf("C_true = %v (ok=%v), want 1.5", ct, ok)
	}
	cf, ok := CorrelationFalse(m, pair)
	if !ok || !stat.ApproxEqual(cf, 0.5, 1e-12) {
		t.Errorf("C_false = %v (ok=%v), want 0.5", cf, ok)
	}
	onTrue, onFalse := PairCorrelation(m, 0, 1)
	if onTrue != ct || onFalse != cf {
		t.Error("PairCorrelation disagrees with factors")
	}
}

func TestAggressiveFactorsIndependence(t *testing.T) {
	m := NewManual(0.5)
	m.SetSource(0, 0.5, 0.2)
	m.SetSource(1, 0.4, 0.1)
	m.SetSource(2, 0.6, 0.3)
	group := []triple.SourceID{0, 1, 2}
	// Products everywhere → independence → all factors 1 (Corollary 4.6).
	for _, sub := range [][]triple.SourceID{{0, 1}, {0, 2}, {1, 2}, {0, 1, 2}} {
		m.SetJointRecall(sub, IndepJointRecall(m, sub))
		m.SetJointFPR(sub, IndepJointFPR(m, sub))
	}
	cp, cm := AggressiveFactors(m, group)
	for i := range cp {
		if !stat.ApproxEqual(cp[i], 1, 1e-9) || !stat.ApproxEqual(cm[i], 1, 1e-9) {
			t.Errorf("factor[%d] = (%v, %v), want (1, 1)", i, cp[i], cm[i])
		}
	}
}

func TestAggressiveFactorsFallback(t *testing.T) {
	m := NewManual(0.5)
	m.SetSource(0, 0.5, 0.2)
	m.SetSource(1, 0.4, 0.1)
	// No joint parameters at all → factors fall back to 1.
	cp, cm := AggressiveFactors(m, []triple.SourceID{0, 1})
	for i := range cp {
		if cp[i] != 1 || cm[i] != 1 {
			t.Errorf("fallback factor[%d] = (%v, %v)", i, cp[i], cm[i])
		}
	}
	// Singleton group: trivially 1.
	cp, cm = AggressiveFactors(m, []triple.SourceID{0})
	if len(cp) != 1 || cp[0] != 1 || cm[0] != 1 {
		t.Error("singleton group factors should be 1")
	}
}

func TestScopedRecall(t *testing.T) {
	// A covers only subject "x"; its recall should not be penalized for
	// true triples about "y".
	d := triple.NewDataset()
	a := d.AddSource("A")
	b := d.AddSource("B")
	x1 := triple.Triple{Subject: "x", Predicate: "p", Object: "1"}
	x2 := triple.Triple{Subject: "x", Predicate: "p", Object: "2"}
	y1 := triple.Triple{Subject: "y", Predicate: "p", Object: "1"}
	d.Observe(a, x1)
	d.Observe(b, x1)
	d.Observe(b, y1)
	d.SetLabel(x1, triple.True)
	d.SetLabel(x2, triple.True)
	d.SetLabel(y1, triple.True)

	global, err := NewEstimator(d, Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := global.Recall(a); !stat.ApproxEqual(got, 1.0/3, 1e-12) {
		t.Errorf("global recall(A) = %v, want 1/3", got)
	}
	scoped, err := NewEstimator(d, Options{Alpha: 0.5, Scope: triple.NewScopeSubject(d)})
	if err != nil {
		t.Fatal(err)
	}
	if got := scoped.Recall(a); !stat.ApproxEqual(got, 0.5, 1e-12) {
		t.Errorf("scoped recall(A) = %v, want 1/2 (x-triples only)", got)
	}
	// Scoped joint recall of {A,B} conditions on the joint scope (x's).
	r, ok := scoped.JointRecall([]triple.SourceID{a, b})
	if !ok || !stat.ApproxEqual(r, 0.5, 1e-12) {
		t.Errorf("scoped joint recall = %v (ok=%v), want 1/2", r, ok)
	}
}

func TestTrainSubset(t *testing.T) {
	d, a, _ := buildSimple(t)
	// Restrict training to triples 1 (true) and 3 (false).
	var train []triple.TripleID
	for _, o := range []string{"1", "3"} {
		id, _ := d.TripleID(tr(o))
		train = append(train, id)
	}
	e, err := NewEstimator(d, Options{Alpha: 0.5, Train: train})
	if err != nil {
		t.Fatal(err)
	}
	// A provides both training triples, 1 of which is true.
	if got := e.Precision(a); !stat.ApproxEqual(got, 0.5, 1e-12) {
		t.Errorf("precision(A) on train subset = %v, want 0.5", got)
	}
	if got := e.Recall(a); !stat.ApproxEqual(got, 1, 1e-12) {
		t.Errorf("recall(A) on train subset = %v, want 1", got)
	}
}
