package codec

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"corrfuse/internal/index"
	"corrfuse/internal/triple"
)

// marshalNoHTML reproduces the serving layer's legacy encoding exactly:
// json.Encoder with EscapeHTML disabled, trailing newline included.
func marshalNoHTML(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		t.Fatalf("reference encode: %v", err)
	}
	return buf.Bytes()
}

var trickyStrings = []string{
	"",
	"plain",
	"with \"quotes\" and \\backslashes\\",
	"tabs\tnewlines\nreturns\r",
	"backspace\bformfeed\f",
	"control \x00\x01\x1f bytes",
	"html <b>&amp;</b> stays raw",
	"unicode: héllo wörld — ünïcödé",
	"emoji: \U0001F600\U0001F680",
	"line separators: \u2028 and \u2029",
	"invalid utf8: \xff\xfe partial \xc3",
	"lone continuation \x80 byte",
	"nul\x00nul",
	"ascii then multibyte \xe2\x82",
	strings.Repeat("long ", 100),
}

func TestAppendStringMatchesJSON(t *testing.T) {
	for _, s := range trickyStrings {
		want := marshalNoHTML(t, s)
		want = want[:len(want)-1] // strip Encoder's newline
		got := AppendString(nil, s)
		if !bytes.Equal(got, want) {
			t.Errorf("AppendString(%q) = %s, want %s", s, got, want)
		}
	}
}

func TestAppendFloatMatchesJSON(t *testing.T) {
	vals := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 0.25, 1.0 / 3.0, 0.1 + 0.2,
		1e-6, 9.999999e-7, 1e-7, 1e21, 1e21 - 65537, 1e20, -1e-9,
		math.MaxFloat64, math.SmallestNonzeroFloat64, 0.9999999999999999,
		123456789.123456789, 5e-324, 2.2250738585072014e-308,
	}
	for _, f := range vals {
		want := marshalNoHTML(t, f)
		want = want[:len(want)-1]
		got := AppendFloat(nil, f)
		if !bytes.Equal(got, want) {
			t.Errorf("AppendFloat(%v) = %s, want %s", f, got, want)
		}
	}
}

func TestAppendFloatRandomMatchesJSON(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		f := rng.NormFloat64() * math.Pow(10, float64(rng.Intn(50)-25))
		want := marshalNoHTML(t, f)
		want = want[:len(want)-1]
		got := AppendFloat(nil, f)
		if !bytes.Equal(got, want) {
			t.Fatalf("AppendFloat(%v) = %s, want %s", f, got, want)
		}
	}
}

func TestAppendFloatNonFinite(t *testing.T) {
	for _, f := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if got := string(AppendFloat(nil, f)); got != "null" {
			t.Errorf("AppendFloat(%v) = %q, want null", f, got)
		}
	}
}

// parseAny decodes JSON into a generic tree for value-level comparison
// (the hand-rolled encoders fix field order; the legacy map-based bodies
// serialized keys alphabetically).
func parseAny(t *testing.T, data []byte) any {
	t.Helper()
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, data)
	}
	return v
}

func sampleScoreResults() []ScoreResult {
	tr := func(s string) triple.Triple {
		return triple.Triple{Subject: s, Predicate: "born_in \"x\"", Object: "city\n" + s}
	}
	yes, no := true, false
	return []ScoreResult{
		{Triple: tr("a"), Probability: 0.87234, Basis: "snapshot", Accepted: &yes},
		{Triple: tr("b"), Probability: 1e-9, Basis: "snapshot", Accepted: &no},
		{Triple: tr("c\xffbad"), Probability: 0.5, Basis: "live"},
		{Triple: tr("d"), Basis: "unknown"},
	}
}

func TestAppendScoreResponseMatchesJSON(t *testing.T) {
	results := sampleScoreResults()
	legacy := marshalNoHTML(t, map[string]any{
		"results":         results,
		"snapshotSeq":     uint64(7),
		"snapshotVersion": uint64(12),
		"indexVersion":    uint64(12),
	})
	got := AppendScoreResponse(nil, results, 7, 12, 12)
	if got[len(got)-1] != '\n' {
		t.Fatalf("missing trailing newline")
	}
	if !reflect.DeepEqual(parseAny(t, got), parseAny(t, legacy)) {
		t.Errorf("score response mismatch:\n got %s\nwant %s", got, legacy)
	}
	if !reflect.DeepEqual(parseAny(t, AppendScoreResponse(nil, nil, 0, 0, 0)),
		parseAny(t, marshalNoHTML(t, map[string]any{
			"results": []ScoreResult{}, "snapshotSeq": 0, "snapshotVersion": 0, "indexVersion": 0,
		}))) {
		t.Errorf("empty score response mismatch")
	}
}

func TestAppendObserveResponseMatchesJSON(t *testing.T) {
	results := []ObserveResult{
		{Triple: triple.Triple{Subject: "s", Predicate: "p", Object: "o"}, Probability: 0.75, Live: true},
		{Triple: triple.Triple{Subject: "s2", Predicate: "p", Object: "o"}, Probability: 0.5, PendingSource: true},
	}
	for _, withWAL := range []bool{true, false} {
		legacyMap := map[string]any{"results": results, "snapshotSeq": uint64(3)}
		if withWAL {
			legacyMap["walSeq"] = uint64(99)
		}
		legacy := marshalNoHTML(t, legacyMap)
		got := AppendObserveResponse(nil, results, 3, 99, withWAL)
		if !reflect.DeepEqual(parseAny(t, got), parseAny(t, legacy)) {
			t.Errorf("observe response (wal=%v) mismatch:\n got %s\nwant %s", withWAL, got, legacy)
		}
	}
}

func TestAppendEntriesResponseMatchesJSON(t *testing.T) {
	entries := []*index.Entry{
		{Triple: triple.Triple{Subject: "s", Predicate: "p", Object: "o"},
			Sources: []string{"src\"1", "src2"}, Label: "true", Probability: 0.99, Accepted: true},
		{Triple: triple.Triple{Subject: "s", Predicate: "p", Object: "o2"},
			Probability: 0.01, Accepted: false},
	}
	legacy := marshalNoHTML(t, map[string]any{
		"results":         entries,
		"snapshotSeq":     uint64(4),
		"snapshotVersion": uint64(9),
		"indexVersion":    uint64(9),
	})
	got := AppendEntriesResponse(nil, entries, 4, 9, 9)
	if !reflect.DeepEqual(parseAny(t, got), parseAny(t, legacy)) {
		t.Errorf("entries response mismatch:\n got %s\nwant %s", got, legacy)
	}
	// nil entries must serve as "results": [] (the serving layer's
	// contract), matching the legacy empty-slice body.
	legacyEmpty := marshalNoHTML(t, map[string]any{
		"results": []*index.Entry{}, "snapshotSeq": 0, "snapshotVersion": 0, "indexVersion": 0,
	})
	if !reflect.DeepEqual(parseAny(t, AppendEntriesResponse(nil, nil, 0, 0, 0)), parseAny(t, legacyEmpty)) {
		t.Errorf("empty entries response mismatch")
	}
}

// TestEncodeZeroAlloc is the gate behind deleting the hotpathalloc
// suppressions: once the response buffer has warmed up, encoding a full
// score/observe/listing response performs zero heap allocations.
func TestEncodeZeroAlloc(t *testing.T) {
	results := sampleScoreResults()
	obsResults := []ObserveResult{
		{Triple: triple.Triple{Subject: "s", Predicate: "p", Object: "o"}, Probability: 0.75, Live: true},
	}
	entries := []*index.Entry{
		{Triple: triple.Triple{Subject: "s", Predicate: "p", Object: "o"},
			Sources: []string{"a", "b"}, Label: "true", Probability: 0.25, Accepted: true},
	}
	buf := make([]byte, 0, 1<<16)
	if n := testing.AllocsPerRun(100, func() {
		buf = AppendScoreResponse(buf[:0], results, 7, 12, 12)
	}); n != 0 {
		t.Errorf("AppendScoreResponse allocates %v times per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		buf = AppendObserveResponse(buf[:0], obsResults, 3, 99, true)
	}); n != 0 {
		t.Errorf("AppendObserveResponse allocates %v times per op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		buf = AppendEntriesResponse(buf[:0], entries, 4, 9, 9)
	}); n != 0 {
		t.Errorf("AppendEntriesResponse allocates %v times per op, want 0", n)
	}
}

// BenchmarkAppendScoreResponse is the CI allocation gate on the codec
// encode path: the bench job greps its -benchmem output and fails unless
// it reports exactly 0 allocs/op (the machine-checked form of the
// deleted handlers.go hotpathalloc suppressions).
func BenchmarkAppendScoreResponse(b *testing.B) {
	results := sampleScoreResults()
	buf := make([]byte, 0, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendScoreResponse(buf[:0], results, 7, 12, 12)
	}
	_ = buf
}

func TestBufferPoolRoundTrip(t *testing.T) {
	b := GetBuffer()
	if len(b.B) != 0 {
		t.Fatalf("pooled buffer not reset: len %d", len(b.B))
	}
	b.B = append(b.B, "hello"...)
	PutBuffer(b)
	b2 := GetBuffer()
	if len(b2.B) != 0 {
		t.Fatalf("reused buffer not reset: %q", b2.B)
	}
	PutBuffer(b2)

	// Oversized buffers are dropped, not pooled.
	big := &Buffer{B: make([]byte, 0, maxPooledBuffer+1)}
	PutBuffer(big) // must not panic; nothing observable beyond that
}

func TestBufferReadFrom(t *testing.T) {
	payload := strings.Repeat("0123456789", 1000)
	var b Buffer
	n, err := b.ReadFrom(strings.NewReader(payload))
	if err != nil || n != int64(len(payload)) || string(b.B) != payload {
		t.Fatalf("ReadFrom: n=%d err=%v match=%v", n, err, string(b.B) == payload)
	}
	// Reuse keeps capacity and appends after existing content.
	b.Reset()
	if _, err := b.ReadFrom(strings.NewReader("abc")); err != nil || string(b.B) != "abc" {
		t.Fatalf("ReadFrom after reset: %q err=%v", b.B, err)
	}
}

func TestBufferWrite(t *testing.T) {
	var b Buffer
	enc := json.NewEncoder(&b)
	if err := enc.Encode(map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if string(b.B) != "{\"x\":1}\n" {
		t.Fatalf("Buffer as io.Writer: %q", b.B)
	}
}
