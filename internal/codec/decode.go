package codec

import (
	"errors"
	"fmt"
	"unicode/utf16"
	"unicode/utf8"

	"corrfuse/internal/triple"
)

// ErrTrailing reports a second JSON value (or garbage) after the request
// document — the serving layer turns it into the same 400 the old
// json.Decoder-based framing check produced.
var ErrTrailing = errors.New("trailing data after JSON document")

// SyntaxError is a malformed-body error with the byte offset it was
// detected at.
type SyntaxError struct {
	Offset int
	Msg    string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("invalid JSON at byte %d: %s", e.Offset, e.Msg)
}

// maxNestingDepth caps how deep skipped values may nest, mirroring
// encoding/json's scanner limit so the strict and reflective paths agree
// on what parses.
const maxNestingDepth = 10000

// DecodeScoreRequest parses a /v1/score body into req, with
// encoding/json's field semantics: case-insensitive names, unknown fields
// skipped, null no-ops, last duplicate wins. A top-level null leaves req
// untouched. Data after the document returns an error wrapping
// ErrTrailing.
func DecodeScoreRequest(data []byte, req *ScoreRequest) error {
	d := &decodeState{data: data}
	d.skipSpace()
	if d.eat('n') {
		if err := d.literal("null"); err != nil {
			return err
		}
		return d.trailing()
	}
	if err := d.object(func(key []byte) error {
		if keyIs(key, "triples") {
			return d.tripleArray(&req.Triples)
		}
		return d.skipValue(0)
	}); err != nil {
		return err
	}
	return d.trailing()
}

// DecodeObserveRequest parses a /v1/observe body into req (either a
// single top-level observation, {"observations": [...]}, or — ambiguously
// — both; the serving layer rejects the ambiguity). Semantics match
// DecodeScoreRequest.
func DecodeObserveRequest(data []byte, req *ObserveRequest) error {
	d := &decodeState{data: data}
	d.skipSpace()
	if d.eat('n') {
		if err := d.literal("null"); err != nil {
			return err
		}
		return d.trailing()
	}
	if err := d.object(func(key []byte) error {
		switch {
		case keyIs(key, "source"):
			return d.stringField(&req.Source)
		case keyIs(key, "subject"):
			return d.stringField(&req.Subject)
		case keyIs(key, "predicate"):
			return d.stringField(&req.Predicate)
		case keyIs(key, "object"):
			return d.stringField(&req.Object)
		case keyIs(key, "label"):
			return d.stringField(&req.Label)
		case keyIs(key, "observations"):
			return d.observationArray(&req.Observations)
		}
		return d.skipValue(0)
	}); err != nil {
		return err
	}
	return d.trailing()
}

type decodeState struct {
	data []byte
	pos  int
}

func (d *decodeState) errf(format string, args ...any) error {
	return &SyntaxError{Offset: d.pos, Msg: fmt.Sprintf(format, args...)}
}

func (d *decodeState) skipSpace() {
	for d.pos < len(d.data) {
		switch d.data[d.pos] {
		case ' ', '\t', '\n', '\r':
			d.pos++
		default:
			return
		}
	}
}

// eat reports whether the next byte is c without consuming it.
func (d *decodeState) eat(c byte) bool {
	return d.pos < len(d.data) && d.data[d.pos] == c
}

// advance consumes one expected byte.
func (d *decodeState) advance(c byte) error {
	if !d.eat(c) {
		return d.errf("expected %q", string(rune(c)))
	}
	d.pos++
	return nil
}

// trailing errors unless only whitespace remains.
func (d *decodeState) trailing() error {
	d.skipSpace()
	if d.pos != len(d.data) {
		return fmt.Errorf("%w (at byte %d)", ErrTrailing, d.pos)
	}
	return nil
}

// literal consumes an exact keyword (true, false, null).
func (d *decodeState) literal(want string) error {
	if len(d.data)-d.pos < len(want) || string(d.data[d.pos:d.pos+len(want)]) != want {
		return d.errf("invalid literal")
	}
	d.pos += len(want)
	return nil
}

// object parses {"key": value, ...}, dispatching each value to field,
// which must consume it (keys are raw unquoted bytes).
func (d *decodeState) object(field func(key []byte) error) error {
	d.skipSpace()
	if err := d.advance('{'); err != nil {
		return err
	}
	d.skipSpace()
	if d.eat('}') {
		d.pos++
		return nil
	}
	for {
		d.skipSpace()
		key, err := d.key()
		if err != nil {
			return err
		}
		d.skipSpace()
		if err := d.advance(':'); err != nil {
			return err
		}
		if err := field(key); err != nil {
			return err
		}
		d.skipSpace()
		if d.eat(',') {
			d.pos++
			continue
		}
		return d.advance('}')
	}
}

// array parses [value, ...], dispatching each element to elem.
func (d *decodeState) array(elem func() error) error {
	d.skipSpace()
	if err := d.advance('['); err != nil {
		return err
	}
	d.skipSpace()
	if d.eat(']') {
		d.pos++
		return nil
	}
	for {
		if err := elem(); err != nil {
			return err
		}
		d.skipSpace()
		if d.eat(',') {
			d.pos++
			d.skipSpace()
			continue
		}
		return d.advance(']')
	}
}

// nullOr consumes a null (returning true) or leaves the position for a
// real value.
func (d *decodeState) nullOr() (bool, error) {
	d.skipSpace()
	if d.eat('n') {
		if err := d.literal("null"); err != nil {
			return false, err
		}
		return true, nil
	}
	return false, nil
}

// stringField decodes a string value into dst; null leaves dst unchanged.
func (d *decodeState) stringField(dst *string) error {
	isNull, err := d.nullOr()
	if err != nil || isNull {
		return err
	}
	s, err := d.string()
	if err != nil {
		return err
	}
	*dst = s
	return nil
}

// tripleArray decodes [{"subject":...}, ...] into dst (replacing it, as
// encoding/json does for slices); null leaves dst unchanged.
func (d *decodeState) tripleArray(dst *[]triple.Triple) error {
	isNull, err := d.nullOr()
	if err != nil || isNull {
		return err
	}
	// encoding/json reuses existing slice elements in place (a duplicate
	// key's second array merges element-wise into the first); reading
	// prev[len(out)] before the append overwrites that slot preserves it.
	prev := *dst
	out := prev[:0]
	err = d.array(func() error {
		var t triple.Triple
		if len(out) < len(prev) {
			t = prev[len(out)]
		}
		if err := d.tripleValue(&t); err != nil {
			return err
		}
		out = append(out, t)
		return nil
	})
	if out == nil {
		// encoding/json materializes an empty non-nil slice for [].
		out = []triple.Triple{}
	}
	*dst = out
	return err
}

func (d *decodeState) tripleValue(t *triple.Triple) error {
	isNull, err := d.nullOr()
	if err != nil || isNull {
		return err
	}
	return d.object(func(key []byte) error {
		switch {
		case keyIs(key, "subject"):
			return d.stringField(&t.Subject)
		case keyIs(key, "predicate"):
			return d.stringField(&t.Predicate)
		case keyIs(key, "object"):
			return d.stringField(&t.Object)
		}
		return d.skipValue(0)
	})
}

// observationArray decodes [{"source":...}, ...] into dst; null leaves
// dst unchanged.
func (d *decodeState) observationArray(dst *[]Observation) error {
	isNull, err := d.nullOr()
	if err != nil || isNull {
		return err
	}
	// Same element-reuse semantics as tripleArray.
	prev := *dst
	out := prev[:0]
	err = d.array(func() error {
		var o Observation
		if len(out) < len(prev) {
			o = prev[len(out)]
		}
		isNull, err := d.nullOr()
		if err != nil {
			return err
		}
		if !isNull {
			err = d.object(func(key []byte) error {
				switch {
				case keyIs(key, "source"):
					return d.stringField(&o.Source)
				case keyIs(key, "subject"):
					return d.stringField(&o.Subject)
				case keyIs(key, "predicate"):
					return d.stringField(&o.Predicate)
				case keyIs(key, "object"):
					return d.stringField(&o.Object)
				case keyIs(key, "label"):
					return d.stringField(&o.Label)
				}
				return d.skipValue(0)
			})
			if err != nil {
				return err
			}
		}
		out = append(out, o)
		return nil
	})
	if out == nil {
		// encoding/json materializes an empty non-nil slice for [].
		out = []Observation{}
	}
	*dst = out
	return err
}

// key parses an object key, returning its unescaped raw bytes. Keys
// without escapes alias the input buffer (no allocation); escaped keys
// are unquoted into a fresh slice so folding sees the real characters.
func (d *decodeState) key() ([]byte, error) {
	if err := d.advance('"'); err != nil {
		return nil, err
	}
	start := d.pos
	for d.pos < len(d.data) {
		switch c := d.data[d.pos]; {
		case c == '"':
			raw := d.data[start:d.pos]
			d.pos++
			return raw, nil
		case c == '\\':
			d.pos = start - 1 // rewind to the opening quote
			s, err := d.string()
			if err != nil {
				return nil, err
			}
			return []byte(s), nil
		case c < 0x20:
			return nil, d.errf("control character in string")
		default:
			d.pos++
		}
	}
	return nil, d.errf("unterminated string")
}

// string parses a JSON string value with encoding/json's semantics:
// strict escape validation, surrogate pairs combined, unpaired surrogates
// and invalid UTF-8 coerced to U+FFFD.
func (d *decodeState) string() (string, error) {
	if err := d.advance('"'); err != nil {
		return "", err
	}
	start := d.pos
	// Fast path: plain ASCII without escapes aliases no memory but costs
	// exactly one string allocation.
	for d.pos < len(d.data) {
		c := d.data[d.pos]
		if c == '"' {
			s := string(d.data[start:d.pos])
			d.pos++
			return s, nil
		}
		if c == '\\' || c >= utf8.RuneSelf {
			break
		}
		if c < 0x20 {
			return "", d.errf("control character in string")
		}
		d.pos++
	}
	// Slow path: escapes or non-ASCII bytes.
	buf := append([]byte(nil), d.data[start:d.pos]...)
	for d.pos < len(d.data) {
		switch c := d.data[d.pos]; {
		case c == '"':
			d.pos++
			return string(buf), nil
		case c == '\\':
			d.pos++
			r, err := d.escape()
			if err != nil {
				return "", err
			}
			buf = utf8.AppendRune(buf, r)
		case c < 0x20:
			return "", d.errf("control character in string")
		case c < utf8.RuneSelf:
			buf = append(buf, c)
			d.pos++
		default:
			r, size := utf8.DecodeRune(d.data[d.pos:])
			// DecodeRune already maps invalid sequences to U+FFFD with
			// size 1, which is exactly encoding/json's coercion.
			buf = utf8.AppendRune(buf, r)
			d.pos += size
		}
	}
	return "", d.errf("unterminated string")
}

// escape parses one backslash escape (the backslash already consumed),
// returning the rune it denotes.
func (d *decodeState) escape() (rune, error) {
	if d.pos >= len(d.data) {
		return 0, d.errf("unterminated escape")
	}
	c := d.data[d.pos]
	d.pos++
	switch c {
	case '"', '\\', '/':
		return rune(c), nil
	case 'b':
		return '\b', nil
	case 'f':
		return '\f', nil
	case 'n':
		return '\n', nil
	case 'r':
		return '\r', nil
	case 't':
		return '\t', nil
	case 'u':
		r, err := d.hex4()
		if err != nil {
			return 0, err
		}
		if utf16.IsSurrogate(r) {
			if d.pos+1 < len(d.data) && d.data[d.pos] == '\\' && d.data[d.pos+1] == 'u' {
				save := d.pos
				d.pos += 2
				r2, err := d.hex4()
				if err != nil {
					return 0, err
				}
				if combined := utf16.DecodeRune(r, r2); combined != utf8.RuneError {
					return combined, nil
				}
				// Not a valid pair: the second escape stands alone
				// (itself coerced if it is a surrogate half).
				d.pos = save
			}
			return utf8.RuneError, nil
		}
		return r, nil
	}
	return 0, d.errf("invalid escape character")
}

func (d *decodeState) hex4() (rune, error) {
	if d.pos+4 > len(d.data) {
		return 0, d.errf("truncated \\u escape")
	}
	var r rune
	for i := 0; i < 4; i++ {
		c := d.data[d.pos+i]
		switch {
		case c >= '0' && c <= '9':
			c -= '0'
		case c >= 'a' && c <= 'f':
			c = c - 'a' + 10
		case c >= 'A' && c <= 'F':
			c = c - 'A' + 10
		default:
			return 0, d.errf("invalid \\u escape")
		}
		r = r<<4 + rune(c)
	}
	d.pos += 4
	return r, nil
}

// skipValue consumes any well-formed JSON value without decoding it.
func (d *decodeState) skipValue(depth int) error {
	if depth > maxNestingDepth {
		return d.errf("exceeded max nesting depth")
	}
	d.skipSpace()
	if d.pos >= len(d.data) {
		return d.errf("unexpected end of input")
	}
	switch c := d.data[d.pos]; {
	case c == '{':
		return d.object(func([]byte) error { return d.skipValue(depth + 1) })
	case c == '[':
		return d.array(func() error { return d.skipValue(depth + 1) })
	case c == '"':
		return d.skipString()
	case c == 't':
		return d.literal("true")
	case c == 'f':
		return d.literal("false")
	case c == 'n':
		return d.literal("null")
	case c == '-' || (c >= '0' && c <= '9'):
		return d.skipNumber()
	}
	return d.errf("unexpected character %q", string(rune(d.data[d.pos])))
}

// skipString validates a string without building it.
func (d *decodeState) skipString() error {
	if err := d.advance('"'); err != nil {
		return err
	}
	for d.pos < len(d.data) {
		switch c := d.data[d.pos]; {
		case c == '"':
			d.pos++
			return nil
		case c == '\\':
			d.pos++
			if _, err := d.escape(); err != nil {
				return err
			}
		case c < 0x20:
			return d.errf("control character in string")
		default:
			d.pos++
		}
	}
	return d.errf("unterminated string")
}

// skipNumber validates a number against the JSON grammar:
// -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
func (d *decodeState) skipNumber() error {
	digits := func() bool {
		n := 0
		for d.pos < len(d.data) && d.data[d.pos] >= '0' && d.data[d.pos] <= '9' {
			d.pos++
			n++
		}
		return n > 0
	}
	if d.eat('-') {
		d.pos++
	}
	switch {
	case d.eat('0'):
		d.pos++
	case d.pos < len(d.data) && d.data[d.pos] >= '1' && d.data[d.pos] <= '9':
		digits()
	default:
		return d.errf("invalid number")
	}
	if d.eat('.') {
		d.pos++
		if !digits() {
			return d.errf("invalid number")
		}
	}
	if d.eat('e') || d.eat('E') {
		d.pos++
		if d.eat('+') || d.eat('-') {
			d.pos++
		}
		if !digits() {
			return d.errf("invalid number")
		}
	}
	return nil
}

// keyIs reports whether a raw key matches a field name the way
// encoding/json folds: ASCII case-insensitively, plus the two Unicode
// runes whose simple fold lands in ASCII (U+017F long s, U+212A kelvin).
// name must be ASCII lowercase.
func keyIs(key []byte, name string) bool {
	i := 0
	for j := 0; j < len(name); j++ {
		if i >= len(key) {
			return false
		}
		r, size := utf8.DecodeRune(key[i:])
		i += size
		switch {
		case r >= 'A' && r <= 'Z':
			r += 'a' - 'A'
		case r == '\u017f': // long s
			r = 's'
		case r == '\u212a': // kelvin sign
			r = 'k'
		}
		if r != rune(name[j]) {
			return false
		}
	}
	return i == len(key)
}
