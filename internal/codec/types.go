package codec

import "corrfuse/internal/triple"

// The request/response shapes of the hot endpoints live here so both the
// serving layer (which aliases them into its public API) and the codec's
// encoders/decoders can reference them without an import cycle. The JSON
// tags are the wire contract; the hand-rolled paths must stay in lockstep
// with them (the codec tests diff both directions against encoding/json).

// Observation is one ingested claim: a source asserting a triple, with an
// optional gold label ("true" or "false") that joins the training set at
// the next re-fusion.
type Observation struct {
	Source    string `json:"source"`
	Subject   string `json:"subject"`
	Predicate string `json:"predicate"`
	Object    string `json:"object"`
	Label     string `json:"label,omitempty"`
}

// ObserveRequest is the /v1/observe body: either a single top-level
// Observation or {"observations": [...]} — the serving layer rejects
// bodies carrying both.
type ObserveRequest struct {
	Observation
	Observations []Observation `json:"observations"`
}

// ObserveResult reports the freshest probability after applying one claim.
type ObserveResult struct {
	Triple      triple.Triple `json:"triple"`
	Probability float64       `json:"probability"`
	// Live reports that the probability came from the incremental model
	// (false: stored batch value, e.g. for unsupervised methods).
	Live bool `json:"live"`
	// PendingSource reports that the claiming source is not yet in the
	// quality model; its evidence joins at the next re-fusion.
	PendingSource bool `json:"pendingSource,omitempty"`
}

// ScoreRequest asks for probabilities of a batch of triples (at most
// Config.MaxScoreTriples per request).
type ScoreRequest struct {
	Triples []triple.Triple `json:"triples"`
}

// ScoreResult is one scored triple of a batch.
type ScoreResult struct {
	Triple      triple.Triple `json:"triple"`
	Probability float64       `json:"probability"`
	// Basis is "snapshot" (frozen batch index), "live" (incremental
	// model) or "unknown" (never observed; probability is 0).
	Basis string `json:"basis"`
	// Accepted reports the snapshot's acceptance decision. It is present
	// exactly when Basis is "snapshot" (a rejected triple serializes as
	// false, not as an absent field) and omitted otherwise.
	Accepted *bool `json:"accepted,omitempty"`
}
