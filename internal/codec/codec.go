// Package codec holds the hand-rolled JSON fast paths of the serving data
// plane: pooled []byte buffers, allocation-free append-style encoders for
// the /v1/score, /v1/observe, /v1/subject and /v1/source response shapes,
// and strict decoders for the two request shapes — replacing reflection-
// based encoding/json on every function annotated //corrfuse:hotpath.
//
// The encoders are byte-compatible with encoding/json (EscapeHTML
// disabled): identical string escaping (including invalid-UTF-8 coercion
// to U+FFFD and the \u2028/\u2029 escapes), identical float formatting
// ('f' shortest form, switching to exponent form below 1e-6 and at 1e21,
// with the exponent's leading zero stripped). The decoders implement the
// full JSON grammar with encoding/json's semantics where they matter to
// the wire: case-insensitive field matching, unknown fields skipped,
// null no-ops, last duplicate wins, invalid UTF-8 coerced.
//
// Encode-path functions carry //corrfuse:hotpath so corrfuselint's
// hotpathalloc analyzer rejects any future encoding/json, fmt.*, map or
// string<->[]byte-conversion allocation creeping back in. The decoders are
// deliberately not annotated: producing Go strings from a request body is
// where the read path's per-request allocations are supposed to live.
package codec

import (
	"io"
	"sync"
)

// Buffer is a reusable byte buffer. The zero value is ready to use; Get
// and Put recycle buffers through a pool so steady-state encoding does
// not allocate.
type Buffer struct {
	// B is the accumulated bytes. Append-style encoders take and return
	// it directly: buf.B = codec.AppendScoreResponse(buf.B, ...).
	B []byte
}

// Write appends p, implementing io.Writer so a Buffer can back
// json.Encoder on cold paths. It never fails.
func (b *Buffer) Write(p []byte) (int, error) {
	b.B = append(b.B, p...)
	return len(p), nil
}

// Reset empties the buffer, keeping its capacity.
func (b *Buffer) Reset() { b.B = b.B[:0] }

// ReadFrom appends r's entire contents, growing as needed but reusing the
// buffer's existing capacity first. It returns the byte count and the
// first read error other than io.EOF.
func (b *Buffer) ReadFrom(r io.Reader) (int64, error) {
	var total int64
	for {
		if len(b.B) == cap(b.B) {
			b.B = append(b.B, 0)[:len(b.B)]
		}
		n, err := r.Read(b.B[len(b.B):cap(b.B)])
		b.B = b.B[:len(b.B)+n]
		total += int64(n)
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// maxPooledBuffer caps what Put returns to the pool: one pathological
// response (a huge subject listing, say) must not pin megabytes inside
// the pool forever.
const maxPooledBuffer = 1 << 20

var bufPool = sync.Pool{
	New: func() any { return &Buffer{B: make([]byte, 0, 4096)} },
}

// GetBuffer returns an empty pooled buffer. Pair with PutBuffer.
func GetBuffer() *Buffer {
	b := bufPool.Get().(*Buffer)
	b.Reset()
	return b
}

// PutBuffer recycles a buffer obtained from GetBuffer. Oversized buffers
// are dropped instead of pooled. The caller must not touch b (or slices
// of b.B) afterwards.
func PutBuffer(b *Buffer) {
	if cap(b.B) > maxPooledBuffer {
		return
	}
	bufPool.Put(b)
}
