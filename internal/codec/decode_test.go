package codec

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// refDecode replicates the serving layer's legacy decode exactly:
// json.Decoder, then a second Decode that must hit io.EOF (anything else
// is trailing data).
func refDecode(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(v); err != nil {
		return err
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		if err == nil {
			return errors.New("trailing data")
		}
		return err
	}
	return nil
}

var decodeBodies = []string{
	`{"triples":[{"subject":"s","predicate":"p","object":"o"}]}`,
	`{"triples":[{"Subject":"s","PREDICATE":"p","oBjEcT":"o"}]}`,
	`{"triples":[]}`,
	`{"triples":null}`,
	`{}`,
	`null`,
	` { "triples" : [ { "subject" : "a" } , { "object" : "b" } ] } `,
	`{"unknown":123,"triples":[{"subject":"s","predicate":"p","object":"o"}],"extra":{"deep":[1,2,{"x":null}]}}`,
	`{"triples":[{"subject":"dup"}],"triples":[{"subject":"wins"}]}`,
	`{"triples":[{"subject":"esc\nape\t\"q\"\u0041\u00e9\ud83d\ude00"}]}`,
	`{"triples":[{"subject":"\ud800"}]}`,
	`{"triples":[{"subject":"\ud800\udc00"}]}`,
	`{"triples":[{"subject":"\ud800\ud800"}]}`,
	`{"triples":[{"subject":"raw é unicode"}]}`,
	"{\"triples\":[{\"subject\":\"bad \xff utf8\"}]}",
	`{"triples":[{"subject":null,"predicate":"p"}]}`,
	`{"triples":[null]}`,
	`{"triples":[{"subject":"s","nested":{"a":[true,false,null,1.5e10,-0.25]}}]}`,
	`{"ſubject":"long s top-level is unknown here"}`,
	`{"triples":[{"ſubject":"folds to subject"}]}`,
	`{"triples":[{"subject":"s"}]}{"another":"doc"}`,
	`{"triples":[{"subject":"s"}]} garbage`,
	`{"triples":[{"subject":"s"}]}` + "\n\t ",
	`{"triples":[{"subject":1}]}`,
	`{"triples":"not an array"}`,
	`{"triples":[{"subject":"s"},]}`,
	`{"triples":[{"subject":"s"}`,
	`{"triples":[{"subject":"unterminated`,
	`{"triples":[{"subject":"bad \q escape"}]}`,
	`{"triples":[{"subject":"bad \u00zz hex"}]}`,
	`{"triples":[{"subject":"ctrl ` + "\x01" + ` raw"}]}`,
	`{bad json`,
	``,
	`   `,
	`true`,
	`42`,
	`"a string"`,
	`[1,2,3]`,
	`{"n":01}`,
	`{"n":1e999}`,
	`{"n":-0.5e+10}`,
	`{"n":.5}`,
	`{"n":5.}`,
	`{"n":+1}`,
	`{"triples":[{"subject":"s"}],}`,
	`{"triples" [}`,
	`{"a":}`,
	`{:1}`,
	strings.Repeat(`{"x":`, 200) + `1` + strings.Repeat(`}`, 200),
}

func TestDecodeScoreRequestMatchesJSON(t *testing.T) {
	for _, body := range decodeBodies {
		var want ScoreRequest
		wantErr := refDecode([]byte(body), &want)
		var got ScoreRequest
		gotErr := DecodeScoreRequest([]byte(body), &got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("body %q: error disagreement: encoding/json=%v codec=%v", body, wantErr, gotErr)
			continue
		}
		if wantErr == nil && !reflect.DeepEqual(got, want) {
			t.Errorf("body %q:\n got %+v\nwant %+v", body, got, want)
		}
	}
}

func TestDecodeObserveRequestMatchesJSON(t *testing.T) {
	bodies := append([]string{
		`{"source":"a","subject":"s","predicate":"p","object":"o"}`,
		`{"source":"a","subject":"s","predicate":"p","object":"o","label":"true"}`,
		`{"observations":[{"source":"a","subject":"s","predicate":"p","object":"o"}]}`,
		`{"observations":[{"source":"a"},{"label":"false"}]}`,
		`{"source":"both","observations":[{"source":"a"}]}`,
		`{"observations":null,"label":"x"}`,
		`{"observations":[null,{"source":"a"}]}`,
		`{"SOURCE":"caps","Observations":[{"LABEL":"t"}]}`,
	}, decodeBodies...)
	for _, body := range bodies {
		var want ObserveRequest
		wantErr := refDecode([]byte(body), &want)
		var got ObserveRequest
		gotErr := DecodeObserveRequest([]byte(body), &got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Errorf("body %q: error disagreement: encoding/json=%v codec=%v", body, wantErr, gotErr)
			continue
		}
		if wantErr == nil && !reflect.DeepEqual(got, want) {
			t.Errorf("body %q:\n got %+v\nwant %+v", body, got, want)
		}
	}
}

func TestDecodeTrailingSentinel(t *testing.T) {
	var req ScoreRequest
	err := DecodeScoreRequest([]byte(`{} {}`), &req)
	if !errors.Is(err, ErrTrailing) {
		t.Fatalf("want ErrTrailing, got %v", err)
	}
	err = DecodeScoreRequest([]byte(`{"x":1`), &req)
	var syn *SyntaxError
	if !errors.As(err, &syn) {
		t.Fatalf("want SyntaxError, got %v", err)
	}
}

// The fuzzers hold the decoders to encoding/json's observable behavior:
// no panics, agreement on accept/reject, and identical decoded values on
// accept.
func FuzzDecodeScoreRequest(f *testing.F) {
	for _, body := range decodeBodies {
		f.Add([]byte(body))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var want ScoreRequest
		wantErr := refDecode(data, &want)
		var got ScoreRequest
		gotErr := DecodeScoreRequest(data, &got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error disagreement on %q: encoding/json=%v codec=%v", data, wantErr, gotErr)
		}
		if wantErr == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("value disagreement on %q:\n got %+v\nwant %+v", data, got, want)
		}
	})
}

func FuzzDecodeObserveRequest(f *testing.F) {
	for _, body := range decodeBodies {
		f.Add([]byte(body))
	}
	f.Add([]byte(`{"source":"a","observations":[{"subject":"s"}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var want ObserveRequest
		wantErr := refDecode(data, &want)
		var got ObserveRequest
		gotErr := DecodeObserveRequest(data, &got)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("error disagreement on %q: encoding/json=%v codec=%v", data, wantErr, gotErr)
		}
		if wantErr == nil && !reflect.DeepEqual(got, want) {
			t.Fatalf("value disagreement on %q:\n got %+v\nwant %+v", data, got, want)
		}
	})
}

// FuzzAppendStringRoundTrip checks the encoder against encoding/json on
// arbitrary (including invalid-UTF-8) inputs: identical bytes out.
func FuzzAppendStringRoundTrip(f *testing.F) {
	for _, s := range trickyStrings {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		enc.SetEscapeHTML(false)
		if err := enc.Encode(s); err != nil {
			t.Skip()
		}
		want := bytes.TrimSuffix(buf.Bytes(), []byte("\n"))
		if got := AppendString(nil, s); !bytes.Equal(got, want) {
			t.Fatalf("AppendString(%q) = %s, want %s", s, got, want)
		}
	})
}
