package codec

import (
	"math"
	"strconv"
	"unicode/utf8"

	"corrfuse/internal/index"
	"corrfuse/internal/triple"
)

const hexDigits = "0123456789abcdef"

// AppendString appends s as a JSON string, byte-identical to what
// encoding/json emits with EscapeHTML disabled: quotes and backslashes
// escaped, control bytes as \u00XX (\b, \f, \n, \r, \t named), invalid
// UTF-8
// coerced to �, and U+2028/U+2029 escaped for JS embedding.
//
//corrfuse:hotpath
func AppendString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= 0x20 && b != '"' && b != '\\' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}

// AppendFloat appends f with encoding/json's float64 formatting: shortest
// 'f' form, switching to exponent form below 1e-6 and at 1e21, with the
// exponent's leading zero stripped (e-09 becomes e-9). Non-finite values
// — which encoding/json refuses to marshal at all — append null; the
// fusion model never produces them (probabilities live in [0, 1]).
//
//corrfuse:hotpath
func AppendFloat(dst []byte, f float64) []byte {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return append(dst, 'n', 'u', 'l', 'l')
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		n := len(dst)
		if n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// AppendUint appends v in decimal.
//
//corrfuse:hotpath
func AppendUint(dst []byte, v uint64) []byte {
	return strconv.AppendUint(dst, v, 10)
}

// AppendBool appends v as true or false.
//
//corrfuse:hotpath
func AppendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 't', 'r', 'u', 'e')
	}
	return append(dst, 'f', 'a', 'l', 's', 'e')
}

// appendTriple appends a triple.Triple with encoding/json's field names —
// the struct carries no tags, so the exported names are the wire shape.
//
//corrfuse:hotpath
func appendTriple(dst []byte, t triple.Triple) []byte {
	dst = append(dst, `{"Subject":`...)
	dst = AppendString(dst, t.Subject)
	dst = append(dst, `,"Predicate":`...)
	dst = AppendString(dst, t.Predicate)
	dst = append(dst, `,"Object":`...)
	dst = AppendString(dst, t.Object)
	return append(dst, '}')
}

// AppendScoreResponse appends the complete /v1/score 200 body, trailing
// newline included (matching json.Encoder's framing).
//
//corrfuse:hotpath
func AppendScoreResponse(dst []byte, results []ScoreResult, snapshotSeq, snapshotVersion, indexVersion uint64) []byte {
	dst = append(dst, `{"results":[`...)
	for i := range results {
		if i > 0 {
			dst = append(dst, ',')
		}
		r := &results[i]
		dst = append(dst, `{"triple":`...)
		dst = appendTriple(dst, r.Triple)
		dst = append(dst, `,"probability":`...)
		dst = AppendFloat(dst, r.Probability)
		dst = append(dst, `,"basis":`...)
		dst = AppendString(dst, r.Basis)
		if r.Accepted != nil {
			dst = append(dst, `,"accepted":`...)
			dst = AppendBool(dst, *r.Accepted)
		}
		dst = append(dst, '}')
	}
	dst = append(dst, `],"snapshotSeq":`...)
	dst = AppendUint(dst, snapshotSeq)
	dst = append(dst, `,"snapshotVersion":`...)
	dst = AppendUint(dst, snapshotVersion)
	dst = append(dst, `,"indexVersion":`...)
	dst = AppendUint(dst, indexVersion)
	return append(dst, '}', '\n')
}

// AppendObserveResponse appends the complete /v1/observe 200 body. walSeq
// is emitted only when withWALSeq is set (the server runs with a WAL).
//
//corrfuse:hotpath
func AppendObserveResponse(dst []byte, results []ObserveResult, snapshotSeq, walSeq uint64, withWALSeq bool) []byte {
	dst = append(dst, `{"results":[`...)
	for i := range results {
		if i > 0 {
			dst = append(dst, ',')
		}
		r := &results[i]
		dst = append(dst, `{"triple":`...)
		dst = appendTriple(dst, r.Triple)
		dst = append(dst, `,"probability":`...)
		dst = AppendFloat(dst, r.Probability)
		dst = append(dst, `,"live":`...)
		dst = AppendBool(dst, r.Live)
		if r.PendingSource {
			dst = append(dst, `,"pendingSource":true`...)
		}
		dst = append(dst, '}')
	}
	dst = append(dst, `],"snapshotSeq":`...)
	dst = AppendUint(dst, snapshotSeq)
	if withWALSeq {
		dst = append(dst, `,"walSeq":`...)
		dst = AppendUint(dst, walSeq)
	}
	return append(dst, '}', '\n')
}

// AppendEntriesResponse appends the complete /v1/subject and /v1/source
// 200 body: pre-ranked index entries plus the generation trailer proving
// snapshot and index belong together.
//
//corrfuse:hotpath
func AppendEntriesResponse(dst []byte, entries []*index.Entry, snapshotSeq, snapshotVersion, indexVersion uint64) []byte {
	dst = append(dst, `{"results":[`...)
	for i, e := range entries {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, `{"triple":`...)
		dst = appendTriple(dst, e.Triple)
		if len(e.Sources) > 0 {
			dst = append(dst, `,"sources":[`...)
			for j, src := range e.Sources {
				if j > 0 {
					dst = append(dst, ',')
				}
				dst = AppendString(dst, src)
			}
			dst = append(dst, ']')
		}
		if e.Label != "" {
			dst = append(dst, `,"label":`...)
			dst = AppendString(dst, e.Label)
		}
		dst = append(dst, `,"probability":`...)
		dst = AppendFloat(dst, e.Probability)
		dst = append(dst, `,"accepted":`...)
		dst = AppendBool(dst, e.Accepted)
		dst = append(dst, '}')
	}
	dst = append(dst, `],"snapshotSeq":`...)
	dst = AppendUint(dst, snapshotSeq)
	dst = append(dst, `,"snapshotVersion":`...)
	dst = AppendUint(dst, snapshotVersion)
	dst = append(dst, `,"indexVersion":`...)
	dst = AppendUint(dst, indexVersion)
	return append(dst, '}', '\n')
}
