package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"corrfuse/internal/wal"
)

// Status is a follower's replication position, for health and metrics.
type Status struct {
	// Connected reports that the last leader contact succeeded. It drops
	// to false on any fetch error and recovers on the next good fetch —
	// reads stay up throughout (stale, never down).
	Connected bool
	// AppliedSeq is the last record applied locally; LeaderSeq is the
	// leader's head as of the last contact.
	AppliedSeq, LeaderSeq uint64
	// SegmentsShipped counts applied shipment batches since start.
	SegmentsShipped uint64
	// LagRecords is max(LeaderSeq-AppliedSeq, 0); LagSeconds is how long
	// the follower has continuously trailed the leader (0 when caught up
	// or before first contact).
	LagRecords uint64
	LagSeconds float64
	// Diverged reports the follower holds records the leader's durable
	// history does not (leader data loss, a wiped leader, an older-backup
	// restore). It is sticky: fetching stops and reads serve stale until an
	// operator wipes the follower's state and re-bootstraps it.
	Diverged bool
	// Rebootstraps counts automatic snapshot re-bootstraps completed after
	// the leader truncated past this follower's position (HTTP 410). A
	// nonzero value is worth alerting on: each one means this follower fell
	// behind a full retention window and re-downloaded the store.
	Rebootstraps uint64
}

// FollowerOptions configures Follower. LeaderURL, WAL and Apply are
// required.
type FollowerOptions struct {
	// LeaderURL is the leader's debug/admin base URL (scheme://host:port).
	LeaderURL string
	// WAL is the follower's own log; fetched lines are appended to it
	// verbatim (AppendShipped) after Apply succeeds, and fetching resumes
	// from its head seq.
	WAL *wal.WAL
	// Apply applies verified records to the follower's store/journal path.
	// It runs BEFORE the local log append, mirroring the leader's
	// store-write-before-WAL-append ordering so log truncation can never
	// outrun the store.
	Apply func(recs []wal.Record) error
	// Client is the HTTP client (default http.DefaultClient; give it no
	// global timeout — long-polls hold connections open deliberately).
	Client *http.Client
	// Rebootstrap, when non-nil, is invoked after the leader answers 410
	// (its retained history no longer reaches our next record): the hook
	// must download a fresh leader snapshot, apply it to the local store,
	// and Rebase the local WAL to the first uncovered sequence — after
	// which fetching resumes automatically. Nil keeps 410 an operator
	// problem: the follower serves stale reads and retries forever.
	//
	// Divergence (the follower AHEAD of the leader's durable history) is
	// deliberately NOT auto-healed by this hook: a diverged follower holds
	// acknowledged records the leader lost, and silently discarding them
	// is a data-loss decision only an operator should make.
	Rebootstrap func(ctx context.Context) error
	// Logf receives operational log lines; nil silences them.
	Logf func(format string, args ...any)
	// FetchWait is the long-poll wait requested per fetch (default 10s).
	FetchWait time.Duration
	// MinBackoff..MaxBackoff bound the reconnect backoff (defaults 500ms
	// and 8s, doubling per consecutive failure).
	MinBackoff, MaxBackoff time.Duration
}

// Follower runs the fetch-verify-apply loop against a leader.
type Follower struct {
	opts FollowerOptions
	base string

	mu       sync.Mutex
	st       Status
	lagSince time.Time // zero when caught up
	lastErr  string
	diverged bool // sticky: leader's durable history fell below ours
}

// NewFollower validates options and builds a follower (Run starts it).
func NewFollower(opts FollowerOptions) (*Follower, error) {
	if opts.LeaderURL == "" || opts.WAL == nil || opts.Apply == nil {
		return nil, errors.New("repl: FollowerOptions.LeaderURL, WAL and Apply are required")
	}
	u, err := url.Parse(opts.LeaderURL)
	if err != nil || u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("repl: leader URL %q is not absolute", opts.LeaderURL)
	}
	if opts.Client == nil {
		opts.Client = http.DefaultClient
	}
	if opts.FetchWait <= 0 {
		opts.FetchWait = 10 * time.Second
	}
	if opts.MinBackoff <= 0 {
		opts.MinBackoff = 500 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 8 * time.Second
	}
	return &Follower{opts: opts, base: strings.TrimRight(opts.LeaderURL, "/")}, nil
}

func (f *Follower) logf(format string, args ...any) {
	if f.opts.Logf != nil {
		f.opts.Logf(format, args...)
	}
}

// Status returns the current replication position. LagSeconds is computed
// at call time from how long the follower has continuously trailed.
func (f *Follower) Status() Status {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.st
	if !f.lagSince.IsZero() {
		st.LagSeconds = time.Since(f.lagSince).Seconds()
	}
	return st
}

// Run fetches, verifies, applies and re-logs shipments until ctx ends. All
// deadlines flow from ctx — a follower shutting down abandons its in-flight
// long-poll immediately. Run only ever returns ctx's error: every fetch or
// apply failure is survived with backoff (a leader restart means stale
// reads, never a follower crash).
func (f *Follower) Run(ctx context.Context) error {
	backoff := f.opts.MinBackoff
	// The first fetch after start or after an error is a zero-wait probe, so
	// connection state (and any waiting health check) updates immediately
	// instead of after a full long-poll window.
	wait := time.Duration(0)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		_, err := f.fetchOnce(ctx, wait)
		switch {
		case err == nil:
			backoff = f.opts.MinBackoff
			wait = f.opts.FetchWait
		case ctx.Err() != nil:
			return ctx.Err()
		default:
			if IsTruncated(err) && f.opts.Rebootstrap != nil {
				f.logf("repl: follower: leader truncated our position; re-bootstrapping from a fresh snapshot")
				if rerr := f.opts.Rebootstrap(ctx); rerr == nil {
					f.noteRebootstrapped()
					f.logf("repl: follower: re-bootstrap complete; resuming from seq %d", f.opts.WAL.Seq()+1)
					backoff = f.opts.MinBackoff
					wait = 0
					continue
				} else if ctx.Err() != nil {
					return ctx.Err()
				} else {
					// Keep IsTruncated true so the next round retries the
					// re-bootstrap instead of fetching into another 410.
					err = fmt.Errorf("%w (automatic re-bootstrap failed: %v)", errTruncated, rerr)
				}
			}
			wait = 0
			f.noteError(err)
			f.logf("repl: follower: fetch failed (retrying in %s): %v", backoff, err)
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			case <-t.C:
			}
			if backoff *= 2; backoff > f.opts.MaxBackoff {
				backoff = f.opts.MaxBackoff
			}
		}
	}
}

// errTruncated marks a 410: the leader no longer has our next record.
var errTruncated = errors.New("repl: leader truncated our position; wipe the follower state and re-bootstrap")

// errDiverged marks a leader whose durable history ends BELOW our applied
// position: we hold records the leader never made durable — leader data
// loss, a wiped leader, or a restore from an older backup. Healthy shipping
// can never produce this (ReadFrom caps at the leader's durability
// watermark, which only advances), so treating the leader's caught-up answer
// as healthy would report connected with lag 0 while the replicas have
// silently forked. The condition is sticky: the leader may re-append past
// our position with different data, making later responses look normal, so
// once seen the follower refuses to fetch until an operator wipes and
// re-bootstraps it (reads stay up, stale, like a truncation).
var errDiverged = errors.New("repl: follower is ahead of the leader's durable history (diverged replicas); wipe the follower state and re-bootstrap")

// fetchOnce performs one fetch (long-polling up to wait) and applies its
// shipment. It returns the number of records applied (0 on a caught-up 204).
func (f *Follower) fetchOnce(ctx context.Context, wait time.Duration) (int, error) {
	f.mu.Lock()
	diverged := f.st.Diverged
	f.mu.Unlock()
	if diverged {
		// Sticky: the leader may since have re-appended past our position
		// with different data, making fresh responses look healthy again.
		return 0, errDiverged
	}
	from := f.opts.WAL.Seq() + 1
	u := fmt.Sprintf("%s/repl/wal?from=%d&wait=%g", f.base, from, wait.Seconds())
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		//lint:ignore errswallow drain-and-close of an exhausted response body; nothing actionable
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		//lint:ignore errswallow see above
		resp.Body.Close()
	}()

	switch resp.StatusCode {
	case http.StatusNoContent:
		// A caught-up answer must actually cover our position: every local
		// record came from the leader's durable history, and the durability
		// watermark only advances, so a leader whose durable (head as a
		// fallback) seq sits BELOW our applied seq has lost records we hold.
		// Reporting connected/lag-0 here would hide a silent fork.
		if limit, ok := leaderLimit(resp); ok && limit < from-1 {
			return 0, f.noteDiverged(limit, from-1)
		}
		f.noteCaughtUp(headSeq(resp), from-1)
		return 0, nil
	case http.StatusGone:
		// Deliberately fatal-looking but survived by Run's backoff: the
		// operator must wipe and re-bootstrap; until then we serve stale.
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		f.logf("repl: follower: leader returned 410 for seq %d: %s", from, strings.TrimSpace(string(body)))
		return 0, errTruncated
	case http.StatusOK:
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return 0, fmt.Errorf("repl: leader answered %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}

	first, err := headerSeq(resp, HdrFirst)
	if err != nil {
		return 0, err
	}
	last, err := headerSeq(resp, HdrLast)
	if err != nil {
		return 0, err
	}
	if first != from {
		return 0, fmt.Errorf("repl: leader shipped from seq %d, asked for %d", first, from)
	}
	lines, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, fmt.Errorf("repl: shipment body: %w", err)
	}
	// Follower-side re-verification: every CRC envelope, contiguous seqs.
	raws, recs, err := wal.SplitShipment(lines, first)
	if err != nil {
		return 0, err
	}
	if len(recs) == 0 || recs[len(recs)-1].Seq != last {
		return 0, fmt.Errorf("repl: shipment body ends at wrong seq (want %d)", last)
	}

	// Store before log, like the leader's ingest path: if we crash between
	// the two, the records are refetched and re-applied idempotently.
	if err := f.opts.Apply(recs); err != nil {
		return 0, fmt.Errorf("repl: apply: %w", err)
	}
	for _, raw := range raws {
		if _, err := f.opts.WAL.AppendShipped(raw); err != nil {
			return 0, err
		}
	}
	f.noteApplied(headSeq(resp), last)
	return len(recs), nil
}

// headerSeq parses a required decimal sequence header.
func headerSeq(resp *http.Response, name string) (uint64, error) {
	v, err := strconv.ParseUint(resp.Header.Get(name), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("repl: leader response missing/invalid %s header", name)
	}
	return v, nil
}

// headSeq reads the optional leader-head header (0 when absent).
func headSeq(resp *http.Response) uint64 {
	v, _ := strconv.ParseUint(resp.Header.Get(HdrHeadSeq), 10, 64)
	return v
}

// leaderLimit reads the leader's durability watermark from a response,
// falling back to the head seq, and reports whether either header was
// present — absence (a proxy error page, an old leader) must not read as
// seq 0 and trip a false divergence.
func leaderLimit(resp *http.Response) (uint64, bool) {
	for _, name := range []string{HdrDurableSeq, HdrHeadSeq} {
		if s := resp.Header.Get(name); s != "" {
			if v, err := strconv.ParseUint(s, 10, 64); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

func (f *Follower) noteCaughtUp(leaderSeq, applied uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.st.Connected = true
	f.st.AppliedSeq = applied
	if leaderSeq > f.st.LeaderSeq {
		f.st.LeaderSeq = leaderSeq
	}
	f.updateLagLocked()
}

func (f *Follower) noteApplied(leaderSeq, applied uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.st.Connected = true
	f.st.SegmentsShipped++
	f.st.AppliedSeq = applied
	if leaderSeq > f.st.LeaderSeq {
		f.st.LeaderSeq = leaderSeq
	}
	f.updateLagLocked()
}

// noteDiverged latches the sticky diverged state and returns errDiverged
// (Run's error path then marks the link down and keeps serving stale reads).
func (f *Follower) noteDiverged(leaderLimit, applied uint64) error {
	f.logf("repl: follower: DIVERGED: local log holds seq %d but the leader's durable history ends at %d; "+
		"refusing to fetch — wipe this follower's state and re-bootstrap", applied, leaderLimit)
	f.mu.Lock()
	f.st.Diverged = true
	f.mu.Unlock()
	return errDiverged
}

// noteRebootstrapped records a completed automatic re-bootstrap. Connected
// stays false until the next fetch succeeds against the rebased position.
func (f *Follower) noteRebootstrapped() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.st.Rebootstraps++
}

func (f *Follower) noteError(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.st.Connected = false
	f.lastErr = err.Error()
	if f.lagSince.IsZero() {
		f.lagSince = time.Now()
	}
}

// updateLagLocked recomputes the record lag and the trailing-since stamp.
// Callers hold f.mu.
func (f *Follower) updateLagLocked() {
	if f.st.LeaderSeq > f.st.AppliedSeq {
		f.st.LagRecords = f.st.LeaderSeq - f.st.AppliedSeq
		if f.lagSince.IsZero() {
			f.lagSince = time.Now()
		}
	} else {
		f.st.LagRecords = 0
		f.lagSince = time.Time{}
		f.st.LagSeconds = 0
	}
}

// Snapshot downloads the leader's store stream for bootstrap, returning the
// covered seq (the follower's log must start at covered+1) and the body.
// The caller owns closing the body and verifying the store parses.
func Snapshot(ctx context.Context, client *http.Client, leaderURL string) (covered uint64, body io.ReadCloser, err error) {
	if client == nil {
		client = http.DefaultClient
	}
	u := strings.TrimRight(leaderURL, "/") + "/repl/snapshot"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		//lint:ignore errswallow error path already carries the status; close is best-effort
		resp.Body.Close()
		return 0, nil, fmt.Errorf("repl: snapshot: leader answered %s: %s", resp.Status, strings.TrimSpace(string(b)))
	}
	covered, err = headerSeq(resp, HdrCoveredSeq)
	if err != nil {
		//lint:ignore errswallow error path; close is best-effort
		resp.Body.Close()
		return 0, nil, err
	}
	return covered, resp.Body, nil
}

// LastError returns the most recent fetch error line ("" when none) — a
// debugging convenience for health output.
func (f *Follower) LastError() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.lastErr
}

// IsTruncated reports whether err is the leader-truncated-our-history
// condition (HTTP 410) that requires an operator re-bootstrap.
func IsTruncated(err error) bool {
	return errors.Is(err, errTruncated)
}

// IsDiverged reports whether err is the follower-ahead-of-leader condition
// (leader data loss / wipe / older restore) that requires an operator
// re-bootstrap.
func IsDiverged(err error) bool {
	return errors.Is(err, errDiverged)
}
