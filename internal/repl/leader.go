// Package repl ships the write-ahead log from a leader to read-only
// followers over HTTP. The leader side serves verbatim CRC-enveloped WAL
// lines (plus a store snapshot for bootstrap) from the debug/admin mux; the
// follower side pulls them, re-verifies every envelope, applies the records
// through the caller's store path, and appends the lines to its own log —
// so a follower's disk is byte-compatible with the leader's history and its
// own replay machinery re-verifies everything on restart.
//
// The package deliberately depends only on internal/wal and the standard
// library: internal/serve integrates through small function hooks, never
// the other way around.
package repl

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"corrfuse/internal/wal"
)

// Shipping protocol headers. Values are decimal sequence numbers.
const (
	// HdrFirst and HdrLast bound the shipped batch.
	HdrFirst = "X-Corrfused-Repl-First"
	HdrLast  = "X-Corrfused-Repl-Last"
	// HdrHeadSeq is the leader's last assigned seq at read time — the
	// follower's lag reference.
	HdrHeadSeq = "X-Corrfused-Repl-Head-Seq"
	// HdrDurableSeq is the leader's durability watermark; shipping never
	// passes it.
	HdrDurableSeq = "X-Corrfused-Repl-Durable-Seq"
	// HdrCoveredSeq, on snapshot responses, is the highest seq the snapshot
	// is guaranteed to contain; the follower's log starts at the next one.
	HdrCoveredSeq = "X-Corrfused-Repl-Covered-Seq"
)

// LeaderOptions configures Leader. WAL is required.
type LeaderOptions struct {
	// WAL is the log to ship from.
	WAL *wal.WAL
	// CoveredSeq and WriteSnapshot serve follower bootstrap: CoveredSeq
	// reports a seq S such that a snapshot written afterwards contains
	// every record <= S (records > S may also appear — replication applies
	// them idempotently); WriteSnapshot streams the store. Both nil
	// disables /repl/snapshot (404).
	CoveredSeq    func() uint64
	WriteSnapshot func(io.Writer) error
	// Logf receives operational log lines; nil silences them.
	Logf func(format string, args ...any)
	// MaxBatchBytes caps one shipment (default 1 MiB).
	MaxBatchBytes int64
	// MaxWait caps the long-poll wait a follower may request (default 25s).
	MaxWait time.Duration
	// PollInterval is the long-poll re-check cadence (default 50ms).
	PollInterval time.Duration
}

// Leader serves the shipping endpoints:
//
//	GET /repl/wal?from=N[&wait=SECONDS] — verbatim WAL lines for seqs >= N,
//	    200 with headers First/Last/Head-Seq/Durable-Seq; 204 when caught up
//	    (after the long-poll wait, if requested); 410 with
//	    {"error":..., "earliestSeq":E} when N predates retained history.
//	GET /repl/snapshot — store stream with Covered-Seq header, for bootstrap.
//
// Mount it on the debug/admin mux: replication is an operator surface, not
// a public one.
type Leader struct {
	opts LeaderOptions
	mux  *http.ServeMux
}

// NewLeader builds the leader handler.
func NewLeader(opts LeaderOptions) (*Leader, error) {
	if opts.WAL == nil {
		return nil, errors.New("repl: LeaderOptions.WAL is required")
	}
	if (opts.CoveredSeq == nil) != (opts.WriteSnapshot == nil) {
		return nil, errors.New("repl: CoveredSeq and WriteSnapshot must be set together")
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = 1 << 20
	}
	if opts.MaxWait <= 0 {
		opts.MaxWait = 25 * time.Second
	}
	if opts.PollInterval <= 0 {
		opts.PollInterval = 50 * time.Millisecond
	}
	l := &Leader{opts: opts, mux: http.NewServeMux()}
	l.mux.HandleFunc("GET /repl/wal", l.handleWAL)
	if opts.WriteSnapshot != nil {
		l.mux.HandleFunc("GET /repl/snapshot", l.handleSnapshot)
	}
	return l, nil
}

func (l *Leader) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	l.mux.ServeHTTP(w, r)
}

func (l *Leader) logf(format string, args ...any) {
	if l.opts.Logf != nil {
		l.opts.Logf(format, args...)
	}
}

func (l *Leader) handleWAL(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	from, err := strconv.ParseUint(q.Get("from"), 10, 64)
	if err != nil || from == 0 {
		replError(w, http.StatusBadRequest, "from must be a positive sequence number")
		return
	}
	var wait time.Duration
	if s := q.Get("wait"); s != "" {
		secs, err := strconv.ParseFloat(s, 64)
		if err != nil || secs < 0 {
			replError(w, http.StatusBadRequest, "wait must be a non-negative number of seconds")
			return
		}
		wait = time.Duration(secs * float64(time.Second))
		if wait > l.opts.MaxWait {
			wait = l.opts.MaxWait
		}
	}

	// Long-poll on the follower's request context — its deadline, or a
	// disconnect, ends the wait. Never a detached context: an abandoned
	// request must not keep polling the log.
	ctx := r.Context()
	deadline := time.Now().Add(wait)
	for {
		sh, err := l.opts.WAL.ReadFrom(from, l.opts.MaxBatchBytes)
		var te *wal.TruncatedError
		switch {
		case errors.As(err, &te):
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusGone)
			if err := json.NewEncoder(w).Encode(map[string]any{
				"error":       fmt.Sprintf("history from seq %d truncated; re-bootstrap from /repl/snapshot", from),
				"earliestSeq": te.Earliest,
			}); err != nil {
				l.logf("repl: leader: 410 body encode failed: %v", err)
			}
			return
		case err != nil:
			l.logf("repl: leader: ReadFrom(%d) failed: %v", from, err)
			replError(w, http.StatusInternalServerError, "log read failed: %v", err)
			return
		}
		if sh.Last >= sh.First {
			h := w.Header()
			h.Set("Content-Type", "application/jsonl")
			h.Set(HdrFirst, strconv.FormatUint(sh.First, 10))
			h.Set(HdrLast, strconv.FormatUint(sh.Last, 10))
			h.Set(HdrHeadSeq, strconv.FormatUint(sh.HeadSeq, 10))
			h.Set(HdrDurableSeq, strconv.FormatUint(sh.DurableSeq, 10))
			if _, err := w.Write(sh.Lines); err != nil {
				l.logf("repl: leader: shipment [%d,%d] write failed mid-body: %v", sh.First, sh.Last, err)
			}
			return
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			h := w.Header()
			h.Set(HdrHeadSeq, strconv.FormatUint(sh.HeadSeq, 10))
			h.Set(HdrDurableSeq, strconv.FormatUint(sh.DurableSeq, 10))
			w.WriteHeader(http.StatusNoContent)
			return
		}
		pause := l.opts.PollInterval
		if remain < pause {
			pause = remain
		}
		t := time.NewTimer(pause)
		select {
		case <-ctx.Done():
			t.Stop()
			// The follower went away or this process is shutting down:
			// answer 204 (headers only) so a still-listening follower sees
			// a clean caught-up response, not a headerless 200.
			h := w.Header()
			h.Set(HdrHeadSeq, strconv.FormatUint(sh.HeadSeq, 10))
			h.Set(HdrDurableSeq, strconv.FormatUint(sh.DurableSeq, 10))
			w.WriteHeader(http.StatusNoContent)
			return
		case <-t.C:
		}
	}
}

func (l *Leader) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	// Capture the covered watermark BEFORE streaming: every record <= it is
	// already applied to the store, so the snapshot written next includes
	// them all. Later records may slip in too — the follower re-applies
	// them idempotently when shipping resumes at covered+1.
	covered := l.opts.CoveredSeq()
	h := w.Header()
	h.Set("Content-Type", "application/jsonl")
	h.Set(HdrCoveredSeq, strconv.FormatUint(covered, 10))
	// Commit the status and the covered-seq header before streaming: the
	// follower learns its bootstrap watermark immediately, and a mid-stream
	// failure below is then unambiguously a body error on its side.
	if fl, ok := w.(http.Flusher); ok {
		fl.Flush()
	}
	if err := l.opts.WriteSnapshot(w); err != nil {
		l.logf("repl: leader: snapshot stream failed mid-body: %v", err)
		// Headers are gone, so the status can't change — and a store stream
		// that fails at a line boundary leaves a truncated-but-parseable
		// body. Returning normally would end the chunked response CLEANLY
		// and the follower would bootstrap from a partial store with no
		// error, permanently missing records <= covered. Abort the
		// connection instead so the follower's download fails loudly —
		// unless the error IS the client going away, in which case there is
		// no one left to protect.
		if r.Context().Err() == nil {
			panic(http.ErrAbortHandler)
		}
	}
}

// replError writes the service's structured JSON error shape.
func replError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	//lint:ignore errswallow the error body is best-effort; the status code already left
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}
