package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"corrfuse/internal/wal"
)

func rec(i int) wal.Record {
	return wal.Record{
		Source:    fmt.Sprintf("src%d", i%3),
		Subject:   fmt.Sprintf("s%d", i),
		Predicate: "p",
		Object:    "v",
	}
}

func mustWAL(t *testing.T, opts wal.Options) *wal.WAL {
	t.Helper()
	w, _, err := wal.Open(t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

func appendCommit(t *testing.T, w *wal.WAL, r wal.Record) {
	t.Helper()
	seq, err := w.Append(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(seq); err != nil {
		t.Fatal(err)
	}
}

// applied collects records Apply receives, concurrency-safe.
type applied struct {
	mu   sync.Mutex
	recs []wal.Record
}

func (a *applied) apply(recs []wal.Record) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.recs = append(a.recs, recs...)
	return nil
}

func (a *applied) len() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.recs)
}

func newLeaderServer(t *testing.T, w *wal.WAL, snapshot func(io.Writer) error, covered func() uint64) *httptest.Server {
	t.Helper()
	l, err := NewLeader(LeaderOptions{
		WAL:           w,
		CoveredSeq:    covered,
		WriteSnapshot: snapshot,
		Logf:          t.Logf,
		PollInterval:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(l)
	t.Cleanup(srv.Close)
	return srv
}

func newTestFollower(t *testing.T, leaderURL string, fw *wal.WAL, sink *applied) *Follower {
	t.Helper()
	f, err := NewFollower(FollowerOptions{
		LeaderURL:  leaderURL,
		WAL:        fw,
		Apply:      sink.apply,
		Logf:       t.Logf,
		FetchWait:  200 * time.Millisecond,
		MinBackoff: 10 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestFollowerReplicates: records committed on the leader arrive at the
// follower's Apply and its own log, in order, with a caught-up status.
func TestFollowerReplicates(t *testing.T) {
	lw := mustWAL(t, wal.Options{})
	const n = 12
	for i := 0; i < n; i++ {
		appendCommit(t, lw, rec(i))
	}
	srv := newLeaderServer(t, lw, nil, nil)
	fw := mustWAL(t, wal.Options{})
	sink := &applied{}
	f := newTestFollower(t, srv.URL, fw, sink)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()

	waitFor(t, "replication of the first batch", func() bool { return sink.len() == n })
	// Records committed while the follower is live arrive via long-poll.
	appendCommit(t, lw, rec(n))
	waitFor(t, "live tail replication", func() bool { return sink.len() == n+1 })
	waitFor(t, "caught-up status", func() bool {
		st := f.Status()
		return st.Connected && st.AppliedSeq == n+1 && st.LagRecords == 0 && st.LagSeconds == 0
	})
	if st := f.Status(); st.SegmentsShipped == 0 {
		t.Fatal("SegmentsShipped never incremented")
	}
	if got := fw.Seq(); got != n+1 {
		t.Fatalf("follower log head %d, want %d", got, n+1)
	}

	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}

	sink.mu.Lock()
	defer sink.mu.Unlock()
	for i, r := range sink.recs {
		if r.Seq != uint64(i+1) || r.Subject != fmt.Sprintf("s%d", i%(n+1)) {
			t.Fatalf("applied record %d out of order or corrupted: %+v", i, r)
		}
	}
}

// TestFollowerSurvivesLeaderRestart: a dead leader flips Connected to
// false (stale reads, no crash); a revived one at the same address
// reconnects and resumes.
func TestFollowerSurvivesLeaderRestart(t *testing.T) {
	lw := mustWAL(t, wal.Options{})
	appendCommit(t, lw, rec(0))

	l, err := NewLeader(LeaderOptions{WAL: lw, PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	var down bool
	var downMu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		downMu.Lock()
		d := down
		downMu.Unlock()
		if d {
			// Simulate the restart window: connection-level failure.
			panic(http.ErrAbortHandler)
		}
		l.ServeHTTP(w, r)
	}))
	t.Cleanup(srv.Close)

	fw := mustWAL(t, wal.Options{})
	sink := &applied{}
	f := newTestFollower(t, srv.URL, fw, sink)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		//lint:ignore errswallow Run only returns ctx.Err(); the test ends via cancel
		f.Run(ctx)
	}()

	waitFor(t, "initial replication", func() bool { return sink.len() == 1 })

	downMu.Lock()
	down = true
	downMu.Unlock()
	waitFor(t, "disconnect detection", func() bool { return !f.Status().Connected })
	if f.LastError() == "" {
		t.Fatal("disconnect left no LastError")
	}

	appendCommit(t, lw, rec(1))
	downMu.Lock()
	down = false
	downMu.Unlock()
	waitFor(t, "reconnect and catch-up", func() bool {
		st := f.Status()
		return st.Connected && st.AppliedSeq == 2
	})
	if sink.len() != 2 {
		t.Fatalf("applied %d records after reconnect, want 2", sink.len())
	}
}

// TestFollowerRejectsTamperedShipment: a proxy flipping one bit in the body
// must make the follower reject the batch and apply nothing.
func TestFollowerRejectsTamperedShipment(t *testing.T) {
	lw := mustWAL(t, wal.Options{})
	appendCommit(t, lw, rec(0))
	l, err := NewLeader(LeaderOptions{WAL: lw, PollInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	tamper := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rr := httptest.NewRecorder()
		l.ServeHTTP(rr, r)
		for k, vs := range rr.Header() {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		body := rr.Body.Bytes()
		if rr.Code == http.StatusOK && len(body) > 0 {
			body[len(body)/2] ^= 0x40
		}
		w.WriteHeader(rr.Code)
		//lint:ignore errswallow test proxy write; the follower sees any truncation anyway
		w.Write(body)
	}))
	t.Cleanup(tamper.Close)

	fw := mustWAL(t, wal.Options{})
	sink := &applied{}
	f := newTestFollower(t, tamper.URL, fw, sink)
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	//lint:ignore errswallow Run only returns ctx.Err(); assertions below are the test
	f.Run(ctx)

	if sink.len() != 0 {
		t.Fatalf("tampered shipment applied %d records, want 0", sink.len())
	}
	if fw.Seq() != 0 {
		t.Fatalf("tampered shipment reached the follower log (seq %d)", fw.Seq())
	}
	if !strings.Contains(f.LastError(), "crc") && !strings.Contains(f.LastError(), "shipment") {
		t.Fatalf("LastError does not explain the rejection: %q", f.LastError())
	}
}

// TestFollowerTruncated410: a leader whose history moved past the follower
// answers 410; the follower logs it, stays up, and does not apply garbage.
func TestFollowerTruncated410(t *testing.T) {
	lw := mustWAL(t, wal.Options{SegmentBytes: 1})
	for i := 0; i < 6; i++ {
		appendCommit(t, lw, rec(i))
	}
	if err := lw.TruncateThrough(4); err != nil {
		t.Fatal(err)
	}
	srv := newLeaderServer(t, lw, nil, nil)

	// A fresh follower asks from seq 1, which is truncated away.
	fw := mustWAL(t, wal.Options{})
	sink := &applied{}
	f := newTestFollower(t, srv.URL, fw, sink)
	ctx, cancel := context.WithTimeout(context.Background(), 400*time.Millisecond)
	defer cancel()
	//lint:ignore errswallow Run only returns ctx.Err(); assertions below are the test
	f.Run(ctx)

	if sink.len() != 0 {
		t.Fatalf("truncated follower applied %d records", sink.len())
	}
	if !strings.Contains(f.LastError(), "re-bootstrap") {
		t.Fatalf("410 not surfaced as a re-bootstrap error: %q", f.LastError())
	}
	if f.Status().Connected {
		t.Fatal("truncated follower still reports Connected")
	}
}

// TestFollowerAutoRebootstrap: a 410 with a Rebootstrap hook configured
// re-bootstraps in place — snapshot downloaded, local WAL rebased to
// covered+1, shipping resumed from there — instead of parking on an
// operator error, and the Rebootstraps counter records it happened.
func TestFollowerAutoRebootstrap(t *testing.T) {
	lw := mustWAL(t, wal.Options{SegmentBytes: 1})
	for i := 0; i < 6; i++ {
		appendCommit(t, lw, rec(i))
	}
	if err := lw.TruncateThrough(4); err != nil {
		t.Fatal(err)
	}
	const storeBody = "leader-store-snapshot\n"
	srv := newLeaderServer(t, lw,
		func(w io.Writer) error { _, err := io.WriteString(w, storeBody); return err },
		func() uint64 { return 4 }, // snapshot covers the truncated seqs 1-4
	)

	fw := mustWAL(t, wal.Options{})
	sink := &applied{}
	var snapMu sync.Mutex
	var snapshots []string
	f, err := NewFollower(FollowerOptions{
		LeaderURL: srv.URL,
		WAL:       fw,
		Apply:     sink.apply,
		Rebootstrap: func(ctx context.Context) error {
			covered, body, err := Snapshot(ctx, nil, srv.URL)
			if err != nil {
				return err
			}
			b, err := io.ReadAll(body)
			//lint:ignore errswallow test hook; a close error changes nothing below
			body.Close()
			if err != nil {
				return err
			}
			snapMu.Lock()
			snapshots = append(snapshots, string(b))
			snapMu.Unlock()
			return fw.Rebase(covered + 1)
		},
		Logf:       t.Logf,
		FetchWait:  200 * time.Millisecond,
		MinBackoff: 10 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		//lint:ignore errswallow Run only returns ctx.Err(); the test ends via cancel
		f.Run(ctx)
	}()

	// A fresh follower asks from seq 1, which is truncated away: 410 →
	// auto-rebootstrap → resume shipping the retained seqs 5-6.
	waitFor(t, "post-rebootstrap replication", func() bool { return sink.len() == 2 })
	sink.mu.Lock()
	if sink.recs[0].Seq != 5 || sink.recs[1].Seq != 6 {
		t.Fatalf("post-rebootstrap shipment seqs %d,%d; want 5,6", sink.recs[0].Seq, sink.recs[1].Seq)
	}
	sink.mu.Unlock()
	snapMu.Lock()
	if len(snapshots) != 1 || snapshots[0] != storeBody {
		t.Fatalf("rebootstrap downloaded %d snapshots (%q), want one of %q", len(snapshots), snapshots, storeBody)
	}
	snapMu.Unlock()
	waitFor(t, "caught-up post-rebootstrap status", func() bool {
		st := f.Status()
		return st.Connected && st.AppliedSeq == 6 && st.Rebootstraps == 1 && !st.Diverged
	})
	if got := fw.Seq(); got != 6 {
		t.Fatalf("follower log head %d after rebootstrap, want 6", got)
	}

	// The link is fully healed: live tail records keep flowing.
	appendCommit(t, lw, rec(6))
	waitFor(t, "live tail after rebootstrap", func() bool { return sink.len() == 3 })
}

// TestDivergedNeverRebootstraps: divergence means the follower holds
// acknowledged records the leader lost — discarding them is an operator
// decision, so the automatic Rebootstrap hook must never fire for it.
func TestDivergedNeverRebootstraps(t *testing.T) {
	lw := mustWAL(t, wal.Options{})
	appendCommit(t, lw, rec(0))
	fw := mustWAL(t, wal.Options{})
	for i := 0; i < 4; i++ {
		appendCommit(t, fw, rec(i)) // follower runs ahead of the leader
	}
	srv := newLeaderServer(t, lw, nil, nil)
	sink := &applied{}
	var hookCalls atomic.Uint64
	f, err := NewFollower(FollowerOptions{
		LeaderURL: srv.URL,
		WAL:       fw,
		Apply:     sink.apply,
		Rebootstrap: func(ctx context.Context) error {
			hookCalls.Add(1)
			return nil
		},
		Logf:       t.Logf,
		FetchWait:  200 * time.Millisecond,
		MinBackoff: 10 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		//lint:ignore errswallow Run only returns ctx.Err(); the test ends via cancel
		f.Run(ctx)
	}()

	waitFor(t, "diverged state", func() bool { return f.Status().Diverged })
	time.Sleep(100 * time.Millisecond) // several backoff cycles on the sticky error
	if n := hookCalls.Load(); n != 0 {
		t.Fatalf("Rebootstrap hook fired %d times on divergence", n)
	}
	if st := f.Status(); st.Rebootstraps != 0 {
		t.Fatalf("diverged follower counted %d rebootstraps", st.Rebootstraps)
	}
}

// TestSnapshotBootstrap: the snapshot endpoint streams the store with the
// covered-seq header, and a follower bootstrapped at covered+1 resumes
// shipping without a gap.
func TestSnapshotBootstrap(t *testing.T) {
	lw := mustWAL(t, wal.Options{})
	for i := 0; i < 5; i++ {
		appendCommit(t, lw, rec(i))
	}
	const storeBody = "fake-store-jsonl\n"
	srv := newLeaderServer(t, lw,
		func(w io.Writer) error { _, err := io.WriteString(w, storeBody); return err },
		func() uint64 { return 3 }, // snapshot covers seqs 1-3
	)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	covered, body, err := Snapshot(ctx, nil, srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(body)
	body.Close()
	if err != nil || string(b) != storeBody {
		t.Fatalf("snapshot body %q (err=%v), want %q", b, err, storeBody)
	}
	if covered != 3 {
		t.Fatalf("covered seq %d, want 3", covered)
	}

	// Bootstrap the follower log at covered+1 and follow: only seqs 4-5
	// ship (1-3 are in the snapshot).
	fdir := t.TempDir()
	if err := wal.WriteBootstrapSegment(fdir, covered+1); err != nil {
		t.Fatal(err)
	}
	fw, _, err := wal.Open(fdir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fw.Close() })
	sink := &applied{}
	f := newTestFollower(t, srv.URL, fw, sink)
	runCtx, stop := context.WithCancel(context.Background())
	defer stop()
	go func() {
		//lint:ignore errswallow Run only returns ctx.Err(); the test ends via stop
		f.Run(runCtx)
	}()
	waitFor(t, "post-bootstrap catch-up", func() bool { return sink.len() == 2 })
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if sink.recs[0].Seq != 4 || sink.recs[1].Seq != 5 {
		t.Fatalf("post-bootstrap shipment seqs %d,%d; want 4,5", sink.recs[0].Seq, sink.recs[1].Seq)
	}
}

// TestFollowerDetectsDivergedLeader: a follower whose log runs past the
// leader's durable history (leader data loss, wipe, or older-backup restore)
// must not read the leader's caught-up 204 as healthy — it latches a sticky
// diverged state, stops fetching, and keeps serving stale reads.
func TestFollowerDetectsDivergedLeader(t *testing.T) {
	lw := mustWAL(t, wal.Options{})
	for i := 0; i < 2; i++ {
		appendCommit(t, lw, rec(i))
	}
	fw := mustWAL(t, wal.Options{})
	for i := 0; i < 5; i++ {
		appendCommit(t, fw, rec(i)) // follower is 3 records ahead
	}
	srv := newLeaderServer(t, lw, nil, nil)
	sink := &applied{}
	f := newTestFollower(t, srv.URL, fw, sink)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		//lint:ignore errswallow Run only returns ctx.Err(); the test ends via cancel
		f.Run(ctx)
	}()

	waitFor(t, "diverged state", func() bool { return f.Status().Diverged })
	if f.Status().Connected {
		t.Fatal("diverged follower reports Connected")
	}
	if !IsDiverged(errDiverged) || !strings.Contains(f.LastError(), "re-bootstrap") {
		t.Fatalf("divergence not surfaced as a re-bootstrap error: %q", f.LastError())
	}

	// Sticky: the leader re-appending past the follower's position (with
	// what would be different data for the same seqs) must not "heal" the
	// link — nothing may ever be fetched again.
	for i := 0; i < 6; i++ {
		appendCommit(t, lw, rec(100+i))
	}
	time.Sleep(150 * time.Millisecond) // several backoff cycles
	if sink.len() != 0 {
		t.Fatalf("diverged follower fetched %d records from the re-grown leader", sink.len())
	}
	if st := f.Status(); !st.Diverged || st.Connected {
		t.Fatalf("diverged state did not stick: %+v", st)
	}
}

// TestSnapshotStreamFailureAbortsConnection: a store stream that fails
// mid-body for a non-network reason must tear the connection down — a
// cleanly terminated chunked response would hand the follower a
// truncated-but-parseable store that bootstraps with no error, permanently
// missing records <= covered.
func TestSnapshotStreamFailureAbortsConnection(t *testing.T) {
	lw := mustWAL(t, wal.Options{})
	appendCommit(t, lw, rec(0))
	srv := newLeaderServer(t, lw,
		func(w io.Writer) error {
			if _, err := io.WriteString(w, "{\"partial\":\"store line\"}\n"); err != nil {
				return err
			}
			return errors.New("store iteration failed")
		},
		func() uint64 { return 1 },
	)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	covered, body, err := Snapshot(ctx, nil, srv.URL)
	if err != nil {
		// Headers and the 200 left before the failure, so the call itself
		// succeeds; the error must surface while reading the body.
		t.Fatalf("Snapshot: %v", err)
	}
	defer body.Close()
	if covered != 1 {
		t.Fatalf("covered seq %d, want 1", covered)
	}
	if _, err := io.ReadAll(body); err == nil {
		t.Fatal("truncated snapshot stream read cleanly to EOF; a partial store would bootstrap silently")
	}
}

// TestLeaderLongPollAndParamValidation: 204 after the wait when caught up;
// structured 400s on bad parameters.
func TestLeaderLongPollAndParamValidation(t *testing.T) {
	lw := mustWAL(t, wal.Options{})
	appendCommit(t, lw, rec(0))
	srv := newLeaderServer(t, lw, nil, nil)

	start := time.Now()
	resp, err := http.Get(srv.URL + "/repl/wal?from=2&wait=0.15")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("caught-up long-poll answered %d, want 204", resp.StatusCode)
	}
	if waited := time.Since(start); waited < 100*time.Millisecond {
		t.Fatalf("long-poll returned after %s, want ~150ms of waiting", waited)
	}
	if got := resp.Header.Get(HdrHeadSeq); got != "1" {
		t.Fatalf("204 head-seq header %q, want 1", got)
	}

	for _, q := range []string{"", "from=0", "from=x", "from=1&wait=-1"} {
		resp, err := http.Get(srv.URL + "/repl/wal?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("query %q answered %d, want 400", q, resp.StatusCode)
		}
	}

	// No snapshot hooks configured: /repl/snapshot is absent.
	resp, err = http.Get(srv.URL + "/repl/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("snapshot without hooks answered %d, want 404", resp.StatusCode)
	}
}
