package baseline

import (
	"corrfuse/internal/stat"
	"corrfuse/internal/triple"
	"math"
)

// LTMOptions configures the Latent Truth Model baseline.
type LTMOptions struct {
	// Iterations is the number of Gibbs sweeps whose samples are
	// averaged (default 10, matching the paper's "LTM (10 iter)").
	Iterations int
	// BurnIn sweeps are discarded before averaging (default 5).
	BurnIn int
	// Seed drives the sampler's RNG.
	Seed int64
	// Scope decides which non-providing sources generate a negative
	// observation. Defaults to triple.ScopeGlobal{}.
	Scope triple.Scope

	// TruthPrior is the Beta-Bernoulli prior (β1, β0) on a triple being
	// true. Default (0.5, 0.5).
	TruthPriorTrue, TruthPriorFalse float64
	// FPRPrior is the Beta prior (α01, α00) on a source claiming a false
	// triple: α01 counts claims of false triples, α00 silences. The
	// default (10, 90) — prior mean 0.1, as in the LTM paper — encodes
	// the assumption that sources rarely assert false facts.
	FPRPriorClaim, FPRPriorSilent float64
	// RecallPrior is the Beta prior (α11, α10) on a source claiming a
	// true triple. The default (50, 50) is agnostic.
	RecallPriorClaim, RecallPriorSilent float64
}

func (o *LTMOptions) normalize() {
	if o.Iterations <= 0 {
		o.Iterations = 10
	}
	if o.BurnIn < 0 {
		o.BurnIn = 0
	} else if o.BurnIn == 0 {
		o.BurnIn = 5
	}
	if o.Scope == nil {
		o.Scope = triple.ScopeGlobal{}
	}
	if o.TruthPriorTrue <= 0 {
		o.TruthPriorTrue = 0.5
	}
	if o.TruthPriorFalse <= 0 {
		o.TruthPriorFalse = 0.5
	}
	if o.FPRPriorClaim <= 0 {
		o.FPRPriorClaim = 10
	}
	if o.FPRPriorSilent <= 0 {
		o.FPRPriorSilent = 90
	}
	if o.RecallPriorClaim <= 0 {
		o.RecallPriorClaim = 50
	}
	if o.RecallPriorSilent <= 0 {
		o.RecallPriorSilent = 50
	}
}

// LTM implements the Latent Truth Model of Zhao et al. (PVLDB'12) with
// collapsed Gibbs sampling. Each triple has a latent truth label; each
// source has a latent sensitivity (recall) and false positive rate with Beta
// priors. The sampler integrates the source parameters out and resamples
// each truth label from its posterior given the current labels of all other
// triples; the returned probability of a triple is the fraction of
// post-burn-in sweeps in which its label was true.
//
// Differences from PrecRec highlighted in Section 3 of the SIGMOD'14 paper:
// LTM's probabilities come from Beta-distribution assumptions about the data
// generation process, and source quality is re-estimated jointly with the
// labels rather than from training data. LTM assumes source independence.
type LTM struct {
	d    *triple.Dataset
	opts LTMOptions
	prob []float64
	rec  []float64 // posterior mean sensitivity per source
	fpr  []float64 // posterior mean FPR per source
}

// NewLTM runs the Gibbs sampler over all triples of d.
func NewLTM(d *triple.Dataset, opts LTMOptions) *LTM {
	opts.normalize()
	m := &LTM{d: d, opts: opts, prob: make([]float64, d.NumTriples())}
	m.run()
	return m
}

// run executes the collapsed Gibbs sweeps.
func (m *LTM) run() {
	nT := m.d.NumTriples()
	nS := m.d.NumSources()
	rng := stat.NewRNG(m.opts.Seed)

	// observation lists per triple: sources in scope, with claim bit.
	type obs struct {
		src   []triple.SourceID
		claim []bool
	}
	observations := make([]obs, nT)
	for i := 0; i < nT; i++ {
		id := triple.TripleID(i)
		var o obs
		for s := 0; s < nS; s++ {
			sid := triple.SourceID(s)
			if m.d.Provides(sid, id) {
				o.src = append(o.src, sid)
				o.claim = append(o.claim, true)
			} else if m.opts.Scope.InScope(m.d, sid, id) {
				o.src = append(o.src, sid)
				o.claim = append(o.claim, false)
			}
		}
		observations[i] = o
	}

	// counts[s][z][o]: number of (triple, source) pairs where the triple
	// currently has label z and source s's observation is o.
	counts := make([][2][2]float64, nS)
	z := make([]bool, nT)
	// Initialize labels: claimed by any source → true with probability
	// equal to provider fraction (a voting warm start).
	for i := 0; i < nT; i++ {
		frac := 0.0
		if len(observations[i].src) > 0 {
			pos := 0
			for _, c := range observations[i].claim {
				if c {
					pos++
				}
			}
			frac = float64(pos) / float64(len(observations[i].src))
		}
		z[i] = rng.Bernoulli(frac)
		m.applyCounts(counts, observations[i].src, observations[i].claim, z[i], +1)
	}

	nTrueLabels := 0
	for _, zi := range z {
		if zi {
			nTrueLabels++
		}
	}

	total := m.opts.BurnIn + m.opts.Iterations
	kept := 0
	acc := make([]float64, nT)
	for sweep := 0; sweep < total; sweep++ {
		for i := 0; i < nT; i++ {
			o := observations[i]
			// Remove triple i from the counts.
			m.applyCounts(counts, o.src, o.claim, z[i], -1)
			if z[i] {
				nTrueLabels--
			}
			// Collapsed posterior odds for z_i = 1 vs 0 in log space.
			logOdds := 0.0
			logOdds += logf(m.opts.TruthPriorTrue+float64(nTrueLabels)) -
				logf(m.opts.TruthPriorFalse+float64(nT-1-nTrueLabels))
			for j, s := range o.src {
				c := 0
				if o.claim[j] {
					c = 1
				}
				// Predictive probability of observation c given z=1 (recall side).
				a1c, a10 := m.opts.RecallPriorClaim, m.opts.RecallPriorSilent
				num1 := counts[s][1][c] + betaParam(a1c, a10, c)
				den1 := counts[s][1][0] + counts[s][1][1] + a1c + a10
				// … and given z=0 (FPR side).
				a0c, a00 := m.opts.FPRPriorClaim, m.opts.FPRPriorSilent
				num0 := counts[s][0][c] + betaParam(a0c, a00, c)
				den0 := counts[s][0][0] + counts[s][0][1] + a0c + a00
				logOdds += logf(num1/den1) - logf(num0/den0)
			}
			z[i] = rng.Bernoulli(stat.Sigmoid(logOdds))
			if z[i] {
				nTrueLabels++
			}
			m.applyCounts(counts, o.src, o.claim, z[i], +1)
		}
		if sweep >= m.opts.BurnIn {
			kept++
			for i := range z {
				if z[i] {
					acc[i]++
				}
			}
		}
	}
	for i := range acc {
		if kept > 0 {
			m.prob[i] = acc[i] / float64(kept)
		}
	}

	// Posterior-mean source quality from the final counts.
	m.rec = make([]float64, nS)
	m.fpr = make([]float64, nS)
	for s := 0; s < nS; s++ {
		m.rec[s] = (counts[s][1][1] + m.opts.RecallPriorClaim) /
			(counts[s][1][0] + counts[s][1][1] + m.opts.RecallPriorClaim + m.opts.RecallPriorSilent)
		m.fpr[s] = (counts[s][0][1] + m.opts.FPRPriorClaim) /
			(counts[s][0][0] + counts[s][0][1] + m.opts.FPRPriorClaim + m.opts.FPRPriorSilent)
	}
}

// betaParam selects the prior pseudo-count matching observation c.
func betaParam(claim, silent float64, c int) float64 {
	if c == 1 {
		return claim
	}
	return silent
}

func logf(v float64) float64 {
	if v <= 0 {
		v = 1e-300
	}
	return math.Log(v)
}

// applyCounts adds delta to the (z, o) cell of every source observing the
// triple.
func (m *LTM) applyCounts(counts [][2][2]float64, srcs []triple.SourceID, claims []bool, z bool, delta float64) {
	zi := 0
	if z {
		zi = 1
	}
	for j, s := range srcs {
		oi := 0
		if claims[j] {
			oi = 1
		}
		counts[s][zi][oi] += delta
	}
}

// Name implements the scorer convention.
func (m *LTM) Name() string { return "LTM" }

// Probability returns the posterior probability the triple is true.
func (m *LTM) Probability(id triple.TripleID) float64 { return m.prob[id] }

// Score implements the scorer convention.
func (m *LTM) Score(ids []triple.TripleID) []float64 {
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = m.prob[id]
	}
	return out
}

// Recall returns the posterior-mean sensitivity of a source.
func (m *LTM) Recall(s triple.SourceID) float64 { return m.rec[s] }

// FPR returns the posterior-mean false positive rate of a source.
func (m *LTM) FPR(s triple.SourceID) float64 { return m.fpr[s] }
