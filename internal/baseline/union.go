// Package baseline implements the comparison methods of Section 5: Union-K
// voting, 3-Estimates (Galland et al., WSDM'10) and the Latent Truth Model
// (Zhao et al., PVLDB'12), all adapted to the independent-triple, open-world
// semantics of the paper.
package baseline

import (
	"fmt"

	"corrfuse/internal/triple"
)

// UnionK accepts a triple as true when at least K% of the sources provide
// it. Union-50 is majority voting. Its ranking score is the fraction of
// sources providing the triple (identical for every K, as noted in §5.1).
type UnionK struct {
	d     *triple.Dataset
	k     int
	scope triple.Scope
}

// NewUnionK builds a Union-K voter with global scope. K must be in (0, 100].
func NewUnionK(d *triple.Dataset, k int) (*UnionK, error) {
	return NewUnionKScoped(d, k, triple.ScopeGlobal{})
}

// NewUnionKScoped builds a Union-K voter whose electorate for each triple is
// the set of in-scope sources (e.g. with ScopeSubject, the sources providing
// any data about the triple's subject). This is the natural reading for
// datasets with many narrow sources, where no triple could ever reach K% of
// all sources.
func NewUnionKScoped(d *triple.Dataset, k int, scope triple.Scope) (*UnionK, error) {
	if k <= 0 || k > 100 {
		return nil, fmt.Errorf("baseline: Union-K requires K in (0,100], got %d", k)
	}
	if scope == nil {
		scope = triple.ScopeGlobal{}
	}
	return &UnionK{d: d, k: k, scope: scope}, nil
}

// electorate returns the number of in-scope sources for a triple.
func (u *UnionK) electorate(id triple.TripleID) int {
	if _, ok := u.scope.(triple.ScopeGlobal); ok {
		return u.d.NumSources()
	}
	n := 0
	for s := 0; s < u.d.NumSources(); s++ {
		if u.scope.InScope(u.d, triple.SourceID(s), id) {
			n++
		}
	}
	return n
}

// Name implements the scorer convention.
func (u *UnionK) Name() string { return fmt.Sprintf("Union-%d", u.k) }

// K returns the acceptance percentage.
func (u *UnionK) K() int { return u.k }

// Providers returns the number of sources providing id.
func (u *UnionK) Providers(id triple.TripleID) int { return len(u.d.Providers(id)) }

// Decide reports whether the triple is accepted: at least K% of the in-scope
// sources provide it (count·100 ≥ K·n).
func (u *UnionK) Decide(id triple.TripleID) bool {
	return u.Providers(id)*100 >= u.k*u.electorate(id)
}

// Probability returns the ranking score: the in-scope provider fraction. It
// is not a calibrated probability; it is the quantity the paper ranks by for
// the Union PR/ROC curves.
func (u *UnionK) Probability(id triple.TripleID) float64 {
	n := u.electorate(id)
	if n == 0 {
		return 0
	}
	return float64(u.Providers(id)) / float64(n)
}

// Score implements the scorer convention.
func (u *UnionK) Score(ids []triple.TripleID) []float64 {
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = u.Probability(id)
	}
	return out
}

// Decisions returns the binary accept decisions for ids.
func (u *UnionK) Decisions(ids []triple.TripleID) []bool {
	out := make([]bool, len(ids))
	for i, id := range ids {
		out[i] = u.Decide(id)
	}
	return out
}
