package baseline

import (
	"math"

	"corrfuse/internal/quality"
	"corrfuse/internal/triple"
)

// CopyDiscountOptions configures the copy-detection baseline.
type CopyDiscountOptions struct {
	// Scope decides the electorate per triple (as in Union-K).
	Scope triple.Scope
	// MinSharedFalse is the minimum number of shared false triples for a
	// pair to be suspected of copying (default 3).
	MinSharedFalse int
	// ZSaturation is the z-score at which the copy probability saturates
	// at 1 (default 10).
	ZSaturation float64
	// AcceptThreshold is the effective-vote fraction above which a triple
	// is accepted (default 0.5, the majority analogue).
	AcceptThreshold float64
}

func (o *CopyDiscountOptions) normalize() {
	if o.Scope == nil {
		o.Scope = triple.ScopeGlobal{}
	}
	if o.MinSharedFalse <= 0 {
		o.MinSharedFalse = 3
	}
	if o.ZSaturation <= 0 {
		o.ZSaturation = 10
	}
	if o.AcceptThreshold <= 0 {
		o.AcceptThreshold = 0.5
	}
}

// CopyDiscount is a copy-detection baseline in the spirit of Dong et al.
// (PVLDB'09/'10), which the paper compares against conceptually in §5
// ("common mistakes are strong evidence of copying … instead of just
// discounting votes from copiers, we may boost contributions …").
//
// It estimates a pairwise copy probability from the statistical excess of
// *shared false triples* over the independence expectation (the hallmark of
// copying: independent sources rarely make the same mistake), then counts
// discounted votes: each provider's vote is scaled by the probability that
// it did not copy the triple from an earlier provider. The triple is
// accepted when the discounted vote fraction of the in-scope electorate
// exceeds the threshold.
//
// By design it captures only Scenario 1 of Example 4.1 (positive correlation
// on false data). It cannot reward correlation on true data or compensate
// for anti-correlation, which is exactly the gap PrecRecCorr closes — the
// experiments show this contrast.
type CopyDiscount struct {
	d    *triple.Dataset
	opts CopyDiscountOptions
	// copyProb[a][b] is the estimated probability that a and b share a
	// copied stream (symmetric, 0 on the diagonal).
	copyProb [][]float64
	union    *UnionK
}

// NewCopyDiscount estimates the copy graph from est's training data and
// prepares discounted voting over d.
func NewCopyDiscount(est *quality.Estimator, opts CopyDiscountOptions) *CopyDiscount {
	opts.normalize()
	d := est.Dataset()
	n := d.NumSources()
	c := &CopyDiscount{d: d, opts: opts, copyProb: make([][]float64, n)}
	for i := range c.copyProb {
		c.copyProb[i] = make([]float64, n)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			p := c.estimatePair(est, triple.SourceID(a), triple.SourceID(b))
			c.copyProb[a][b] = p
			c.copyProb[b][a] = p
		}
	}
	u, _ := NewUnionKScoped(d, 50, opts.Scope)
	c.union = u
	return c
}

// estimatePair converts the shared-false-count z-score into a copy
// probability.
func (c *CopyDiscount) estimatePair(est *quality.Estimator, a, b triple.SourceID) float64 {
	_, bothFalse, _, aFalse, _, bFalse, _, totFalse := est.PairCounts(a, b)
	if bothFalse < c.opts.MinSharedFalse || totFalse == 0 {
		return 0
	}
	expected := float64(aFalse) * float64(bFalse) / float64(totFalse)
	if expected <= 0 {
		// Any shared mistake with zero expectation is a strong signal.
		return 1
	}
	z := (float64(bothFalse) - expected) / math.Sqrt(expected)
	if z <= 0 {
		return 0
	}
	p := z / c.opts.ZSaturation
	if p > 1 {
		p = 1
	}
	return p
}

// CopyProbability exposes the estimated copy probability of a pair.
func (c *CopyDiscount) CopyProbability(a, b triple.SourceID) float64 {
	return c.copyProb[a][b]
}

// Name implements the scorer convention.
func (c *CopyDiscount) Name() string { return "CopyDiscount" }

// effectiveVotes returns the discounted vote mass of a triple's providers:
// the first provider counts fully; each later provider is scaled by the
// probability that it is independent of every earlier one.
func (c *CopyDiscount) effectiveVotes(id triple.TripleID) float64 {
	providers := c.d.Providers(id)
	votes := 0.0
	for i, s := range providers {
		w := 1.0
		for _, p := range providers[:i] {
			w *= 1 - c.copyProb[s][p]
		}
		votes += w
	}
	return votes
}

// Probability returns the discounted vote fraction of the in-scope
// electorate — the ranking score.
func (c *CopyDiscount) Probability(id triple.TripleID) float64 {
	n := c.union.electorate(id)
	if n == 0 {
		return 0
	}
	return c.effectiveVotes(id) / float64(n)
}

// Decide accepts the triple when the discounted vote fraction exceeds the
// threshold.
func (c *CopyDiscount) Decide(id triple.TripleID) bool {
	return c.Probability(id) >= c.opts.AcceptThreshold
}

// Score implements the scorer convention.
func (c *CopyDiscount) Score(ids []triple.TripleID) []float64 {
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = c.Probability(id)
	}
	return out
}

// Decisions returns the binary accept decisions for ids.
func (c *CopyDiscount) Decisions(ids []triple.TripleID) []bool {
	out := make([]bool, len(ids))
	for i, id := range ids {
		out[i] = c.Decide(id)
	}
	return out
}
