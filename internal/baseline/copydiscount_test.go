package baseline

import (
	"testing"

	"corrfuse/internal/dataset"
	"corrfuse/internal/quality"
	"corrfuse/internal/triple"
)

// copiedSetup builds three copying sources and two independents.
func copiedSetup(t *testing.T) (*quality.Estimator, *triple.Dataset) {
	t.Helper()
	spec := dataset.UniformSpec(5, 2000, 0.5, 0.65, 0.45, 17)
	spec.Groups = []dataset.GroupSpec{
		{Members: []int{0, 1, 2}, OnTrue: true, Strength: 0.85},
		{Members: []int{0, 1, 2}, OnTrue: false, Strength: 0.85},
	}
	d, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	est, err := quality.NewEstimator(d, quality.Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return est, d
}

func TestCopyDiscountDetectsCopiers(t *testing.T) {
	est, _ := copiedSetup(t)
	c := NewCopyDiscount(est, CopyDiscountOptions{})
	// Copying pairs should have high copy probability; independent pairs
	// near zero.
	if p := c.CopyProbability(0, 1); p < 0.5 {
		t.Errorf("copy probability(0,1) = %v, want > 0.5", p)
	}
	if p := c.CopyProbability(0, 2); p < 0.5 {
		t.Errorf("copy probability(0,2) = %v, want > 0.5", p)
	}
	if p := c.CopyProbability(3, 4); p > 0.3 {
		t.Errorf("copy probability(3,4) = %v, want ≈ 0", p)
	}
	if c.CopyProbability(0, 1) != c.CopyProbability(1, 0) {
		t.Error("copy probability should be symmetric")
	}
}

func TestCopyDiscountDiscountsCopiedVotes(t *testing.T) {
	est, d := copiedSetup(t)
	c := NewCopyDiscount(est, CopyDiscountOptions{})
	// A triple provided by the three copiers should have roughly one
	// effective vote; one provided by the two independents, roughly two.
	var copiedID, indepID triple.TripleID = -1, -1
	for i := 0; i < d.NumTriples(); i++ {
		id := triple.TripleID(i)
		prov := d.Providers(id)
		if len(prov) == 3 && prov[0] == 0 && prov[1] == 1 && prov[2] == 2 && copiedID < 0 {
			copiedID = id
		}
		if len(prov) == 2 && prov[0] == 3 && prov[1] == 4 && indepID < 0 {
			indepID = id
		}
	}
	if copiedID < 0 || indepID < 0 {
		t.Skip("needed provider patterns not generated")
	}
	if v := c.effectiveVotes(copiedID); v > 2 {
		t.Errorf("three copiers count as %v votes, want < 2", v)
	}
	if v := c.effectiveVotes(indepID); v < 1.5 {
		t.Errorf("two independents count as %v votes, want ≈ 2", v)
	}
	if c.Name() != "CopyDiscount" {
		t.Error("name")
	}
}

func TestCopyDiscountScoreDecisions(t *testing.T) {
	est, d := copiedSetup(t)
	c := NewCopyDiscount(est, CopyDiscountOptions{AcceptThreshold: 0.4})
	ids := make([]triple.TripleID, 0, d.NumTriples())
	for i := 0; i < d.NumTriples(); i++ {
		if len(d.Providers(triple.TripleID(i))) > 0 {
			ids = append(ids, triple.TripleID(i))
		}
	}
	scores := c.Score(ids)
	decisions := c.Decisions(ids)
	for i := range ids {
		if scores[i] < 0 || scores[i] > 1 {
			t.Fatalf("score %v out of range", scores[i])
		}
		if decisions[i] != (scores[i] >= 0.4) {
			t.Fatalf("decision inconsistent with score at %d", i)
		}
	}
}
