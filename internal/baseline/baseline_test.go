package baseline

import (
	"testing"

	"corrfuse/internal/dataset"
	"corrfuse/internal/triple"
)

func obamaIDs(t *testing.T, d *triple.Dataset) []triple.TripleID {
	t.Helper()
	ids := make([]triple.TripleID, d.NumTriples())
	for i := range ids {
		ids[i] = triple.TripleID(i)
	}
	return ids
}

// TestUnionKFigure1c pins Union-K on the Obama example to Figure 1c.
func TestUnionKFigure1c(t *testing.T) {
	d := dataset.Obama()
	cases := []struct {
		k                 int
		wantAcc           int // accepted triples
		wantTP            int
		precision, recall float64
	}{
		{25, 9, 5, 5.0 / 9, 5.0 / 6},
		{50, 7, 5, 5.0 / 7, 5.0 / 6},
		{75, 5, 3, 3.0 / 5, 3.0 / 6},
	}
	for _, tc := range cases {
		u, err := NewUnionK(d, tc.k)
		if err != nil {
			t.Fatal(err)
		}
		acc, tp := 0, 0
		for _, id := range obamaIDs(t, d) {
			if u.Decide(id) {
				acc++
				if d.Label(id) == triple.True {
					tp++
				}
			}
		}
		if acc != tc.wantAcc || tp != tc.wantTP {
			t.Errorf("Union-%d: accepted %d (%d true), want %d (%d)", tc.k, acc, tp, tc.wantAcc, tc.wantTP)
		}
	}
}

func TestUnionKValidation(t *testing.T) {
	d := dataset.Obama()
	for _, k := range []int{0, -5, 101} {
		if _, err := NewUnionK(d, k); err == nil {
			t.Errorf("K=%d should be rejected", k)
		}
	}
	u, err := NewUnionK(d, 100)
	if err != nil {
		t.Fatal(err)
	}
	if u.Name() != "Union-100" || u.K() != 100 {
		t.Error("accessors broken")
	}
}

func TestUnionKScore(t *testing.T) {
	d := dataset.Obama()
	u, _ := NewUnionK(d, 50)
	ids := obamaIDs(t, d)
	scores := u.Score(ids)
	for i, id := range ids {
		want := float64(len(d.Providers(id))) / 5
		if scores[i] != want {
			t.Errorf("score[%d] = %v, want %v", i, scores[i], want)
		}
	}
}

func TestUnionKScoped(t *testing.T) {
	// Two subjects; A and B cover "x", only C covers "y". A y-triple
	// provided by C alone is 100% of its electorate under subject scope.
	d := triple.NewDataset()
	a := d.AddSource("A")
	b := d.AddSource("B")
	c := d.AddSource("C")
	x := triple.Triple{Subject: "x", Predicate: "p", Object: "1"}
	y := triple.Triple{Subject: "y", Predicate: "p", Object: "1"}
	d.Observe(a, x)
	d.Observe(b, x)
	yID := d.Observe(c, y)

	global, _ := NewUnionK(d, 50)
	if global.Decide(yID) {
		t.Error("global Union-50 should reject a 1-of-3 triple")
	}
	scoped, err := NewUnionKScoped(d, 50, triple.NewScopeSubject(d))
	if err != nil {
		t.Fatal(err)
	}
	if !scoped.Decide(yID) {
		t.Error("scoped Union-50 should accept a 1-of-1 triple")
	}
	if got := scoped.Probability(yID); got != 1 {
		t.Errorf("scoped probability = %v, want 1", got)
	}
}

func TestThreeEstimatesSeparatesCleanData(t *testing.T) {
	// Three good sources agree on true triples; false triples have a
	// single provider. 3-Estimates should rank agreed triples higher.
	d := triple.NewDataset()
	a := d.AddSource("A")
	b := d.AddSource("B")
	c := d.AddSource("C")
	mk := func(o string) triple.Triple {
		return triple.Triple{Subject: "e", Predicate: "p", Object: o}
	}
	var trueIDs, falseIDs []triple.TripleID
	for i := 0; i < 10; i++ {
		tt := mk("t" + string(rune('0'+i)))
		d.Observe(a, tt)
		d.Observe(b, tt)
		d.Observe(c, tt)
		d.SetLabel(tt, triple.True)
		id, _ := d.TripleID(tt)
		trueIDs = append(trueIDs, id)
	}
	for i := 0; i < 5; i++ {
		ft := mk("f" + string(rune('0'+i)))
		d.Observe(a, ft)
		d.SetLabel(ft, triple.False)
		id, _ := d.TripleID(ft)
		falseIDs = append(falseIDs, id)
	}
	te := NewThreeEstimates(d, ThreeEstimatesOptions{})
	minTrue, maxFalse := 1.0, 0.0
	for _, id := range trueIDs {
		if p := te.Probability(id); p < minTrue {
			minTrue = p
		}
	}
	for _, id := range falseIDs {
		if p := te.Probability(id); p > maxFalse {
			maxFalse = p
		}
	}
	if minTrue <= maxFalse {
		t.Errorf("3-Estimates failed to separate: min true %v <= max false %v", minTrue, maxFalse)
	}
	if te.Name() != "3-Estimates" {
		t.Error("name")
	}
	// Converged quantities stay in [0, 1].
	for s := 0; s < d.NumSources(); s++ {
		if e := te.SourceError(triple.SourceID(s)); e < 0 || e > 1 {
			t.Errorf("source error %v outside [0,1]", e)
		}
	}
	for i := 0; i < d.NumTriples(); i++ {
		if phi := te.Difficulty(triple.TripleID(i)); phi < 0 || phi > 1 {
			t.Errorf("difficulty %v outside [0,1]", phi)
		}
	}
}

func TestLTMSeparatesCleanData(t *testing.T) {
	// Same clean setup: LTM should give consensus triples higher
	// posterior probability than singleton mistakes.
	d := triple.NewDataset()
	srcs := []triple.SourceID{d.AddSource("A"), d.AddSource("B"), d.AddSource("C"), d.AddSource("D")}
	mk := func(o string, i int) triple.Triple {
		return triple.Triple{Subject: "e", Predicate: "p", Object: o + string(rune('0'+i%10)) + string(rune('0'+i/10))}
	}
	var trueIDs, falseIDs []triple.TripleID
	for i := 0; i < 30; i++ {
		tt := mk("t", i)
		for _, s := range srcs {
			d.Observe(s, tt)
		}
		d.SetLabel(tt, triple.True)
		id, _ := d.TripleID(tt)
		trueIDs = append(trueIDs, id)
	}
	for i := 0; i < 15; i++ {
		ft := mk("f", i)
		d.Observe(srcs[i%4], ft)
		d.SetLabel(ft, triple.False)
		id, _ := d.TripleID(ft)
		falseIDs = append(falseIDs, id)
	}
	m := NewLTM(d, LTMOptions{Iterations: 20, BurnIn: 5, Seed: 7})
	var sumTrue, sumFalse float64
	for _, id := range trueIDs {
		sumTrue += m.Probability(id)
	}
	for _, id := range falseIDs {
		sumFalse += m.Probability(id)
	}
	avgTrue := sumTrue / float64(len(trueIDs))
	avgFalse := sumFalse / float64(len(falseIDs))
	if avgTrue <= avgFalse {
		t.Errorf("LTM failed to separate: avg true %v <= avg false %v", avgTrue, avgFalse)
	}
	// Posterior quality estimates stay in [0, 1].
	for _, s := range srcs {
		if r := m.Recall(s); r < 0 || r > 1 {
			t.Errorf("recall %v", r)
		}
		if q := m.FPR(s); q < 0 || q > 1 {
			t.Errorf("fpr %v", q)
		}
	}
	if m.Name() != "LTM" {
		t.Error("name")
	}
}

func TestLTMDeterministicForSeed(t *testing.T) {
	d := dataset.Obama()
	a := NewLTM(d, LTMOptions{Seed: 3})
	b := NewLTM(d, LTMOptions{Seed: 3})
	ids := obamaIDs(t, d)
	sa, sb := a.Score(ids), b.Score(ids)
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatal("LTM not deterministic for a fixed seed")
		}
	}
}

func TestNormalize01(t *testing.T) {
	xs := []float64{-1, 0.5, 3}
	normalize01(xs)
	if xs[0] != 0 || xs[2] != 1 || xs[1] <= 0 || xs[1] >= 1 {
		t.Errorf("normalize01 = %v", xs)
	}
	// Already in range: untouched.
	ys := []float64{0.2, 0.8}
	normalize01(ys)
	if ys[0] != 0.2 || ys[1] != 0.8 {
		t.Errorf("in-range slice modified: %v", ys)
	}
	// Constant out-of-range: clamped.
	zs := []float64{2, 2}
	normalize01(zs)
	if zs[0] != 1 || zs[1] != 1 {
		t.Errorf("constant slice: %v", zs)
	}
}
