package baseline

import (
	"math"

	"corrfuse/internal/triple"
)

// ThreeEstimatesOptions configures the 3-Estimates baseline.
type ThreeEstimatesOptions struct {
	// Iterations is the number of fixed-point rounds (default 20).
	Iterations int
	// Scope decides which non-providing sources cast negative votes.
	// Defaults to triple.ScopeGlobal{}.
	Scope triple.Scope
	// InitError is the initial per-source error factor (default 0.1).
	InitError float64
	// InitDifficulty is the initial per-triple difficulty (default 0.5).
	InitDifficulty float64
}

func (o *ThreeEstimatesOptions) normalize() {
	if o.Iterations <= 0 {
		o.Iterations = 20
	}
	if o.Scope == nil {
		o.Scope = triple.ScopeGlobal{}
	}
	if o.InitError <= 0 {
		o.InitError = 0.1
	}
	if o.InitDifficulty <= 0 {
		o.InitDifficulty = 0.5
	}
}

// ThreeEstimates implements the 3-Estimates algorithm of Galland et al.
// (WSDM'10), which iteratively estimates three quantities: the truth value
// θ_f of each fact, the error factor ε_s of each source, and the difficulty
// φ_f of each fact, under the model that source s errs on fact f with
// probability ε_s·φ_f.
//
// The original is specified for closed-world positive/negative claims; as in
// the paper's experiments we adapt it to open-world semantics: a source
// votes positively for the triples it provides and negatively for in-scope
// triples it does not provide. After each round ε and φ are renormalized
// into [0, 1], which the original authors report is essential for stability.
type ThreeEstimates struct {
	d     *triple.Dataset
	opts  ThreeEstimatesOptions
	theta []float64 // per-triple truth estimate
	eps   []float64 // per-source error factor
	phi   []float64 // per-triple difficulty
}

// NewThreeEstimates runs the fixed-point computation on all triples of d.
func NewThreeEstimates(d *triple.Dataset, opts ThreeEstimatesOptions) *ThreeEstimates {
	opts.normalize()
	a := &ThreeEstimates{
		d:     d,
		opts:  opts,
		theta: make([]float64, d.NumTriples()),
		eps:   make([]float64, d.NumSources()),
		phi:   make([]float64, d.NumTriples()),
	}
	a.run()
	return a
}

// votes returns, for triple id, the voting sources and their votes
// (true = positive vote).
func (a *ThreeEstimates) votes(id triple.TripleID) ([]triple.SourceID, []bool) {
	var srcs []triple.SourceID
	var vals []bool
	for s := 0; s < a.d.NumSources(); s++ {
		sid := triple.SourceID(s)
		if a.d.Provides(sid, id) {
			srcs = append(srcs, sid)
			vals = append(vals, true)
		} else if a.opts.Scope.InScope(a.d, sid, id) {
			srcs = append(srcs, sid)
			vals = append(vals, false)
		}
	}
	return srcs, vals
}

func (a *ThreeEstimates) run() {
	nT := a.d.NumTriples()
	nS := a.d.NumSources()
	for i := range a.eps {
		a.eps[i] = a.opts.InitError
	}
	for i := range a.phi {
		a.phi[i] = a.opts.InitDifficulty
	}
	// Initialize θ from voting.
	for i := 0; i < nT; i++ {
		srcs, vals := a.votes(triple.TripleID(i))
		pos := 0
		for _, v := range vals {
			if v {
				pos++
			}
		}
		if len(srcs) > 0 {
			a.theta[i] = float64(pos) / float64(len(srcs))
		}
	}

	for it := 0; it < a.opts.Iterations; it++ {
		// Update θ: probability the fact is true given ε, φ.
		for i := 0; i < nT; i++ {
			id := triple.TripleID(i)
			srcs, vals := a.votes(id)
			if len(srcs) == 0 {
				continue
			}
			sum := 0.0
			for j, s := range srcs {
				pErr := clamp01(a.eps[s] * a.phi[i])
				if vals[j] {
					sum += 1 - pErr
				} else {
					sum += pErr
				}
			}
			a.theta[i] = sum / float64(len(srcs))
		}
		// Update ε: per-source average claim error, weighted by difficulty.
		epsNum := make([]float64, nS)
		epsDen := make([]float64, nS)
		phiNum := make([]float64, nT)
		phiDen := make([]float64, nT)
		for i := 0; i < nT; i++ {
			id := triple.TripleID(i)
			srcs, vals := a.votes(id)
			for j, s := range srcs {
				var claimErr float64
				if vals[j] {
					claimErr = 1 - a.theta[i]
				} else {
					claimErr = a.theta[i]
				}
				epsNum[s] += claimErr
				epsDen[s] += a.phi[i]
				phiNum[i] += claimErr
				phiDen[i] += a.eps[s]
			}
		}
		for s := 0; s < nS; s++ {
			if epsDen[s] > 0 {
				a.eps[s] = epsNum[s] / epsDen[s]
			}
		}
		for i := 0; i < nT; i++ {
			if phiDen[i] > 0 {
				a.phi[i] = phiNum[i] / phiDen[i]
			}
		}
		normalize01(a.eps)
		normalize01(a.phi)
	}
}

// clamp01 bounds v to [0, 1].
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// normalize01 rescales a slice linearly into [0, 1] when any value escapes
// the unit interval, as prescribed by the 3-Estimates authors.
func normalize01(xs []float64) {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		lo = math.Min(lo, x)
		hi = math.Max(hi, x)
	}
	if len(xs) == 0 || (lo >= 0 && hi <= 1) {
		return
	}
	span := hi - lo
	if span == 0 {
		for i := range xs {
			xs[i] = clamp01(xs[i])
		}
		return
	}
	for i := range xs {
		xs[i] = (xs[i] - lo) / span
	}
}

// Name implements the scorer convention.
func (a *ThreeEstimates) Name() string { return "3-Estimates" }

// Probability returns θ_f, the estimated truth of the triple.
func (a *ThreeEstimates) Probability(id triple.TripleID) float64 { return a.theta[id] }

// Score implements the scorer convention.
func (a *ThreeEstimates) Score(ids []triple.TripleID) []float64 {
	out := make([]float64, len(ids))
	for i, id := range ids {
		out[i] = a.theta[id]
	}
	return out
}

// SourceError returns the converged error factor ε_s of a source.
func (a *ThreeEstimates) SourceError(s triple.SourceID) float64 { return a.eps[s] }

// Difficulty returns the converged difficulty φ_f of a triple.
func (a *ThreeEstimates) Difficulty(id triple.TripleID) float64 { return a.phi[id] }
