// Package stat provides the numeric and statistical substrate the fusion
// algorithms need: a deterministic random number generator, samplers for the
// Beta/Gamma/Binomial/Bernoulli distributions (required by the LTM baseline
// and the synthetic data generators), compensated summation, log-space
// helpers, and small-set (bitset) utilities for subset enumeration in the
// inclusion–exclusion computations.
//
// Go's standard library has no scientific stack, so everything here is
// implemented from scratch on top of math and math/rand.
package stat

import (
	"math"
	"math/rand"
)

// RNG is a deterministic random source. It wraps math/rand with the samplers
// the rest of the repository needs, so all stochastic components (data
// generation, Gibbs sampling) are reproducible from a single seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns an RNG seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// NormFloat64 returns a standard normal sample.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Bernoulli returns true with probability p.
func (g *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Gamma samples from the Gamma distribution with shape alpha and scale 1,
// using the Marsaglia–Tsang (2000) squeeze method, with the Ahrens–Dieter
// boost for alpha < 1.
func (g *RNG) Gamma(alpha float64) float64 {
	if alpha <= 0 {
		panic("stat: Gamma requires alpha > 0")
	}
	if alpha < 1 {
		// Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
		u := g.r.Float64()
		for u == 0 {
			u = g.r.Float64()
		}
		return g.Gamma(alpha+1) * math.Pow(u, 1/alpha)
	}
	d := alpha - 1.0/3.0
	c := 1.0 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = g.r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := g.r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return d * v
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return d * v
		}
	}
}

// Beta samples from the Beta(a, b) distribution via two Gamma draws.
func (g *RNG) Beta(a, b float64) float64 {
	x := g.Gamma(a)
	y := g.Gamma(b)
	if x+y == 0 {
		return 0.5
	}
	return x / (x + y)
}

// Binomial samples the number of successes in n Bernoulli(p) trials.
// For the modest n used in this repository a direct loop is fine; for large n
// it switches to a normal approximation with continuity correction.
func (g *RNG) Binomial(n int, p float64) int {
	if n < 0 {
		panic("stat: Binomial requires n >= 0")
	}
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if g.r.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	k := int(math.Round(mean + sd*g.r.NormFloat64()))
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}

// SampleWithoutReplacement returns k distinct indexes drawn uniformly from
// [0, n) in random order. It panics if k > n.
func (g *RNG) SampleWithoutReplacement(n, k int) []int {
	if k > n {
		panic("stat: sample size exceeds population")
	}
	perm := g.r.Perm(n)
	return perm[:k]
}

// Categorical samples an index proportionally to the non-negative weights.
// It panics if all weights are zero or any weight is negative.
func (g *RNG) Categorical(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("stat: Categorical requires non-negative weights")
		}
		total += w
	}
	if total <= 0 {
		panic("stat: Categorical requires a positive total weight")
	}
	u := g.r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}
