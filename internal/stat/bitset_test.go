package stat

import (
	"testing"
	"testing/quick"
)

func TestSet64Basics(t *testing.T) {
	s := NewSet64(1, 3, 5)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if !s.Contains(3) || s.Contains(2) || s.Contains(-1) || s.Contains(64) {
		t.Error("Contains broken")
	}
	s = s.Add(2)
	if got := s.Elems(); len(got) != 4 || got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 5 {
		t.Errorf("Elems = %v", got)
	}
	s = s.Remove(3)
	if s.Contains(3) || s.Len() != 3 {
		t.Error("Remove broken")
	}
	if s.String() != "{1,2,5}" {
		t.Errorf("String = %s", s.String())
	}
}

func TestSet64Ops(t *testing.T) {
	a := NewSet64(0, 1, 2)
	b := NewSet64(2, 3)
	if got := a.Union(b); got != NewSet64(0, 1, 2, 3) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); got != NewSet64(2) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); got != NewSet64(0, 1) {
		t.Errorf("Minus = %v", got)
	}
	if !NewSet64(1).IsSubsetOf(a) || b.IsSubsetOf(a) {
		t.Error("IsSubsetOf broken")
	}
	if !Set64(0).Empty() || a.Empty() {
		t.Error("Empty broken")
	}
}

func TestFullSet64(t *testing.T) {
	if FullSet64(0) != 0 {
		t.Error("FullSet64(0)")
	}
	if got := FullSet64(5); got.Len() != 5 || !got.Contains(4) || got.Contains(5) {
		t.Errorf("FullSet64(5) = %v", got)
	}
	if got := FullSet64(64); got.Len() != 64 {
		t.Errorf("FullSet64(64).Len = %d", got.Len())
	}
}

func TestSubsetsEnumeratesAll(t *testing.T) {
	s := NewSet64(1, 4, 9)
	seen := map[Set64]bool{}
	s.Subsets(func(sub Set64) bool {
		if !sub.IsSubsetOf(s) {
			t.Fatalf("%v is not a subset of %v", sub, s)
		}
		if seen[sub] {
			t.Fatalf("duplicate subset %v", sub)
		}
		seen[sub] = true
		return true
	})
	if len(seen) != 8 {
		t.Errorf("enumerated %d subsets, want 8", len(seen))
	}
}

func TestSubsetsEarlyStop(t *testing.T) {
	count := 0
	NewSet64(0, 1, 2).Subsets(func(Set64) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("early stop after %d", count)
	}
}

func TestSubsetsOfSize(t *testing.T) {
	s := NewSet64(2, 3, 5, 7, 11)
	for k := 0; k <= 5; k++ {
		seen := map[Set64]bool{}
		s.SubsetsOfSize(k, func(sub Set64) bool {
			if sub.Len() != k || !sub.IsSubsetOf(s) {
				t.Fatalf("bad subset %v for k=%d", sub, k)
			}
			if seen[sub] {
				t.Fatalf("duplicate %v", sub)
			}
			seen[sub] = true
			return true
		})
		if want := int(Binomial(5, k)); len(seen) != want {
			t.Errorf("k=%d: %d subsets, want %d", k, len(seen), want)
		}
	}
	// Out-of-range sizes enumerate nothing.
	called := false
	s.SubsetsOfSize(6, func(Set64) bool { called = true; return true })
	if called {
		t.Error("k > |s| should enumerate nothing")
	}
}

func TestSubsetsMatchesSizeUnion(t *testing.T) {
	// Subsets == union over k of SubsetsOfSize.
	f := func(raw uint16) bool {
		s := Set64(raw)
		all := map[Set64]bool{}
		s.Subsets(func(sub Set64) bool { all[sub] = true; return true })
		count := 0
		for k := 0; k <= s.Len(); k++ {
			s.SubsetsOfSize(k, func(sub Set64) bool {
				if !all[sub] {
					t.Fatalf("SubsetsOfSize produced %v not in Subsets", sub)
				}
				count++
				return true
			})
		}
		return count == len(all)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestBinomialCoefficients(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{5, 6, 0}, {5, -1, 0}, {52, 5, 2598960},
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}
