package stat

import "math"

// KahanSum accumulates floating-point values with Kahan–Babuška compensated
// summation. The zero value is ready to use. It keeps the alternating
// inclusion–exclusion sums of the exact correlation model numerically honest.
type KahanSum struct {
	sum float64
	c   float64
}

// Add accumulates v.
func (k *KahanSum) Add(v float64) {
	t := k.sum + v
	if math.Abs(k.sum) >= math.Abs(v) {
		k.c += (k.sum - t) + v
	} else {
		k.c += (v - t) + k.sum
	}
	k.sum = t
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum + k.c }

// Sum adds values with compensated summation.
func Sum(xs []float64) float64 {
	var k KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum()
}

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (0 for fewer than two
// values).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var k KahanSum
	for _, x := range xs {
		d := x - m
		k.Add(d * d)
	}
	return k.Sum() / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// LogAddExp returns log(exp(a) + exp(b)) without overflow.
func LogAddExp(a, b float64) float64 {
	if math.IsInf(a, -1) {
		return b
	}
	if math.IsInf(b, -1) {
		return a
	}
	if a < b {
		a, b = b, a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// LogSumExp returns log(sum(exp(xs))) without overflow. It returns -Inf for
// an empty slice.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	maxv := math.Inf(-1)
	for _, x := range xs {
		if x > maxv {
			maxv = x
		}
	}
	if math.IsInf(maxv, -1) {
		return maxv
	}
	var k KahanSum
	for _, x := range xs {
		k.Add(math.Exp(x - maxv))
	}
	return maxv + math.Log(k.Sum())
}

// Sigmoid returns 1/(1+exp(-x)).
func Sigmoid(x float64) float64 {
	if x >= 0 {
		z := math.Exp(-x)
		return 1 / (1 + z)
	}
	z := math.Exp(x)
	return z / (1 + z)
}

// Logit returns log(p/(1-p)), the inverse of Sigmoid. p is clamped to
// (eps, 1-eps) to keep the result finite.
func Logit(p float64) float64 {
	const eps = 1e-12
	p = Clamp(p, eps, 1-eps)
	return math.Log(p / (1 - p))
}

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Clamp01 bounds v to [0, 1].
func Clamp01(v float64) float64 { return Clamp(v, 0, 1) }

// ApproxEqual reports whether a and b agree within tol absolutely or
// relatively (whichever is looser). NaNs are never equal.
func ApproxEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*scale
}

// Odds converts a probability to odds p/(1-p); Inf for p >= 1.
func Odds(p float64) float64 {
	if p >= 1 {
		return math.Inf(1)
	}
	return p / (1 - p)
}

// FromOdds converts odds back to a probability odds/(1+odds). It maps +Inf
// to 1 and negative values to 0.
func FromOdds(odds float64) float64 {
	if math.IsInf(odds, 1) {
		return 1
	}
	if odds <= 0 {
		return 0
	}
	return odds / (1 + odds)
}

// LogBeta returns log(B(a, b)).
func LogBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// HarmonicMean returns the harmonic mean of a and b (the F-measure when a and
// b are precision and recall). It returns 0 if either input is 0.
func HarmonicMean(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return 2 * a * b / (a + b)
}
