package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKahanSumCompensates(t *testing.T) {
	// Summing many tiny values onto a large one loses precision naively.
	var k KahanSum
	k.Add(1e16)
	for i := 0; i < 1000; i++ {
		k.Add(1.0)
	}
	if got, want := k.Sum(), 1e16+1000; got != want {
		t.Errorf("KahanSum = %v, want %v", got, want)
	}
}

func TestSumMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Sum(xs); got != 40 {
		t.Errorf("Sum = %v", got)
	}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v", got)
	}
	if got := Variance(xs); !ApproxEqual(got, 32.0/7, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7)
	}
	if got := StdDev(xs); !ApproxEqual(got, math.Sqrt(32.0/7), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestLogAddExp(t *testing.T) {
	a, b := math.Log(3), math.Log(4)
	if got := LogAddExp(a, b); !ApproxEqual(got, math.Log(7), 1e-12) {
		t.Errorf("LogAddExp = %v", got)
	}
	if got := LogAddExp(math.Inf(-1), a); got != a {
		t.Errorf("LogAddExp(-Inf, a) = %v", got)
	}
	// No overflow for large magnitudes.
	if got := LogAddExp(1000, 1000); !ApproxEqual(got, 1000+math.Log(2), 1e-9) {
		t.Errorf("LogAddExp(1000,1000) = %v", got)
	}
}

func TestLogSumExp(t *testing.T) {
	if !math.IsInf(LogSumExp(nil), -1) {
		t.Error("empty LogSumExp should be -Inf")
	}
	xs := []float64{math.Log(1), math.Log(2), math.Log(3)}
	if got := LogSumExp(xs); !ApproxEqual(got, math.Log(6), 1e-12) {
		t.Errorf("LogSumExp = %v", got)
	}
}

func TestSigmoidLogitInverse(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) || math.Abs(x) > 30 {
			return true
		}
		return ApproxEqual(Logit(Sigmoid(x)), x, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOddsRoundTrip(t *testing.T) {
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 0.999} {
		if got := FromOdds(Odds(p)); !ApproxEqual(got, p, 1e-12) {
			t.Errorf("FromOdds(Odds(%v)) = %v", p, got)
		}
	}
	if FromOdds(Odds(1)) != 1 {
		t.Error("p=1 should round trip through +Inf odds")
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp broken")
	}
	if Clamp01(2) != 1 || Clamp01(-1) != 0 {
		t.Error("Clamp01 broken")
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean(1, 1); got != 1 {
		t.Errorf("HarmonicMean(1,1) = %v", got)
	}
	if got := HarmonicMean(0.5, 1); !ApproxEqual(got, 2.0/3, 1e-12) {
		t.Errorf("HarmonicMean(0.5,1) = %v", got)
	}
	if HarmonicMean(0, 1) != 0 {
		t.Error("HarmonicMean with a zero input should be 0")
	}
}

func TestLogBeta(t *testing.T) {
	// B(2,3) = 1/12.
	if got := LogBeta(2, 3); !ApproxEqual(got, math.Log(1.0/12), 1e-12) {
		t.Errorf("LogBeta(2,3) = %v", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed should give same stream")
		}
	}
}

func TestBernoulliEdgeCases(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 100; i++ {
		if g.Bernoulli(0) {
			t.Fatal("Bernoulli(0) fired")
		}
		if !g.Bernoulli(1) {
			t.Fatal("Bernoulli(1) missed")
		}
	}
}

func TestBetaMoments(t *testing.T) {
	g := NewRNG(7)
	const n = 20000
	a, b := 2.0, 5.0
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := g.Beta(a, b)
		if x < 0 || x > 1 {
			t.Fatalf("Beta sample %v outside [0,1]", x)
		}
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	wantMean := a / (a + b)
	if math.Abs(mean-wantMean) > 0.01 {
		t.Errorf("Beta mean = %v, want %v", mean, wantMean)
	}
	variance := sumSq/n - mean*mean
	wantVar := a * b / ((a + b) * (a + b) * (a + b + 1))
	if math.Abs(variance-wantVar) > 0.005 {
		t.Errorf("Beta variance = %v, want %v", variance, wantVar)
	}
}

func TestGammaMoments(t *testing.T) {
	g := NewRNG(11)
	for _, alpha := range []float64{0.5, 1, 3.5, 10} {
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			x := g.Gamma(alpha)
			if x < 0 {
				t.Fatalf("Gamma sample %v negative", x)
			}
			sum += x
		}
		mean := sum / n
		if math.Abs(mean-alpha) > 0.1*alpha+0.05 {
			t.Errorf("Gamma(%v) mean = %v", alpha, mean)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	g := NewRNG(13)
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.3}, {64, 0.5}, {1000, 0.1}} {
		const reps = 5000
		var sum float64
		for i := 0; i < reps; i++ {
			k := g.Binomial(tc.n, tc.p)
			if k < 0 || k > tc.n {
				t.Fatalf("Binomial(%d,%v) = %d out of range", tc.n, tc.p, k)
			}
			sum += float64(k)
		}
		mean := sum / reps
		want := float64(tc.n) * tc.p
		if math.Abs(mean-want) > 0.05*want+0.5 {
			t.Errorf("Binomial(%d,%v) mean = %v, want %v", tc.n, tc.p, mean, want)
		}
	}
	if g.Binomial(5, 0) != 0 || g.Binomial(5, 1) != 5 || g.Binomial(0, 0.5) != 0 {
		t.Error("Binomial edge cases broken")
	}
}

func TestCategorical(t *testing.T) {
	g := NewRNG(17)
	weights := []float64{1, 2, 7}
	counts := make([]int, 3)
	const n = 30000
	for i := 0; i < n; i++ {
		counts[g.Categorical(weights)]++
	}
	for i, w := range weights {
		got := float64(counts[i]) / n
		want := w / 10
		if math.Abs(got-want) > 0.02 {
			t.Errorf("Categorical[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	g := NewRNG(19)
	s := g.SampleWithoutReplacement(10, 5)
	if len(s) != 5 {
		t.Fatalf("sample size %d", len(s))
	}
	seen := map[int]bool{}
	for _, v := range s {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad sample %v", s)
		}
		seen[v] = true
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1, 1, 0) {
		t.Error("identical values")
	}
	if !ApproxEqual(1e12, 1e12+1, 1e-9) {
		t.Error("relative tolerance")
	}
	if ApproxEqual(math.NaN(), 1, 1) {
		t.Error("NaN should never be equal")
	}
}
