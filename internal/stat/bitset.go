package stat

import (
	"fmt"
	"math/bits"
	"strings"
)

// Set64 is a set over a universe of at most 64 elements, used to index source
// subsets in the correlation computations. Element i is member i of the
// cluster being analyzed. The zero value is the empty set.
type Set64 uint64

// NewSet64 builds a set from the given elements.
func NewSet64(elems ...int) Set64 {
	var s Set64
	for _, e := range elems {
		s = s.Add(e)
	}
	return s
}

// FullSet64 returns the set {0, …, n-1}. It panics for n > 64.
func FullSet64(n int) Set64 {
	if n < 0 || n > 64 {
		panic(fmt.Sprintf("stat: FullSet64(%d) out of range", n))
	}
	if n == 64 {
		return ^Set64(0)
	}
	return Set64(1)<<uint(n) - 1
}

// Add returns s with element e added.
func (s Set64) Add(e int) Set64 {
	if e < 0 || e >= 64 {
		panic(fmt.Sprintf("stat: Set64 element %d out of range", e))
	}
	return s | 1<<uint(e)
}

// Remove returns s with element e removed.
func (s Set64) Remove(e int) Set64 {
	if e < 0 || e >= 64 {
		panic(fmt.Sprintf("stat: Set64 element %d out of range", e))
	}
	return s &^ (1 << uint(e))
}

// Contains reports whether e is in s.
func (s Set64) Contains(e int) bool {
	if e < 0 || e >= 64 {
		return false
	}
	return s&(1<<uint(e)) != 0
}

// Union returns s ∪ t.
func (s Set64) Union(t Set64) Set64 { return s | t }

// Intersect returns s ∩ t.
func (s Set64) Intersect(t Set64) Set64 { return s & t }

// Minus returns s \ t.
func (s Set64) Minus(t Set64) Set64 { return s &^ t }

// IsSubsetOf reports whether every element of s is in t.
func (s Set64) IsSubsetOf(t Set64) bool { return s&^t == 0 }

// Len returns |s|.
func (s Set64) Len() int { return bits.OnesCount64(uint64(s)) }

// Empty reports whether s has no elements.
func (s Set64) Empty() bool { return s == 0 }

// Elems returns the elements of s in ascending order.
func (s Set64) Elems() []int {
	out := make([]int, 0, s.Len())
	for v := uint64(s); v != 0; {
		e := bits.TrailingZeros64(v)
		out = append(out, e)
		v &= v - 1
	}
	return out
}

// String renders the set as {a,b,c}.
func (s Set64) String() string {
	elems := s.Elems()
	parts := make([]string, len(elems))
	for i, e := range elems {
		parts[i] = fmt.Sprintf("%d", e)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Subsets calls fn for every subset of s, including the empty set and s
// itself, in an arbitrary but deterministic order. If fn returns false the
// enumeration stops early.
func (s Set64) Subsets(fn func(Set64) bool) {
	// Standard subset-enumeration trick: iterate sub = (sub-1) & s.
	sub := uint64(s)
	for {
		if !fn(Set64(sub)) {
			return
		}
		if sub == 0 {
			return
		}
		sub = (sub - 1) & uint64(s)
	}
}

// SubsetsOfSize calls fn for every subset of s with exactly k elements.
// If fn returns false the enumeration stops early.
func (s Set64) SubsetsOfSize(k int, fn func(Set64) bool) {
	elems := s.Elems()
	n := len(elems)
	if k < 0 || k > n {
		return
	}
	if k == 0 {
		fn(0)
		return
	}
	// Gosper-style combination enumeration over positions, mapped through
	// elems so the subsets are subsets of s rather than of {0..n-1}.
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		var sub Set64
		for _, i := range idx {
			sub = sub.Add(elems[i])
		}
		if !fn(sub) {
			return
		}
		// Advance the combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// Binomial returns C(n, k) as a float64 (to survive large n).
func Binomial(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := 1.0
	for i := 0; i < k; i++ {
		out = out * float64(n-i) / float64(i+1)
	}
	return out
}
