package obs

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header carrying a request's trace ID: honored on
// the way in (subject to sanitization) and echoed on every response.
const TraceHeader = "X-Corrfused-Trace-Id"

// maxSpans caps the spans one trace retains; further spans are counted but
// dropped, so a 10k-observation batch cannot balloon its trace.
const maxSpans = 128

// maxTraceIDLen bounds an honored caller-supplied trace ID.
const maxTraceIDLen = 128

// traceSeed is a per-process random prefix; trace IDs are seed-counter so
// generation is one atomic add, not a syscall per request.
var (
	traceSeed    = func() string { var b [8]byte; rand.Read(b[:]); return hex.EncodeToString(b[:]) }()
	traceCounter atomic.Uint64
)

// NewTraceID returns a process-unique trace ID: an 8-byte random process
// prefix plus a monotone counter.
func NewTraceID() string {
	var c [8]byte
	binary.BigEndian.PutUint64(c[:], traceCounter.Add(1))
	return traceSeed + hex.EncodeToString(c[:])
}

// SanitizeTraceID validates a caller-supplied trace ID: printable ASCII, no
// spaces, at most maxTraceIDLen bytes. It reports whether the ID is usable
// as-is; callers should generate a fresh one otherwise.
func SanitizeTraceID(id string) bool {
	if id == "" || len(id) > maxTraceIDLen {
		return false
	}
	for i := 0; i < len(id); i++ {
		if c := id[i]; c <= ' ' || c > '~' {
			return false
		}
	}
	return true
}

// Span is one timed stage within a trace, offset-relative to the trace
// start so a JSON dump reads as a waterfall.
type Span struct {
	Name     string        `json:"name"`
	Offset   time.Duration `json:"-"`
	Duration time.Duration `json:"-"`

	// Serialized forms (microseconds) — stable JSON for /debug/traces.
	OffsetUs   int64 `json:"offsetUs"`
	DurationUs int64 `json:"durationUs"`
}

// Trace is one request's (or one refresh cycle's) timing record. A trace is
// owned by the goroutine serving the request; AddSpan may be called
// concurrently (e.g. by parallel stages) and locks briefly.
type Trace struct {
	ID    string
	Name  string // endpoint, or "refresh" for rebuild cycles
	Start time.Time

	mu      sync.Mutex
	spans   []Span
	dropped int

	// set by Finish
	total  time.Duration
	status int
}

// NewTrace starts a trace now under the given ID and name.
func NewTrace(id, name string) *Trace {
	return &Trace{ID: id, Name: name, Start: time.Now()}
}

// StartSpan opens a span and returns its closer; call the closer when the
// stage completes. Nil-safe: a nil trace returns a no-op closer, so
// instrumented code never branches on tracing being enabled.
func (t *Trace) StartSpan(name string) func() {
	if t == nil {
		return func() {}
	}
	begin := time.Now()
	return func() { t.AddSpan(name, begin.Sub(t.Start), time.Since(begin)) }
}

// AddSpan records an already-measured stage. Nil-safe.
func (t *Trace) AddSpan(name string, offset, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) < maxSpans {
		t.spans = append(t.spans, Span{Name: name, Offset: offset, Duration: d})
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Finish stamps the trace's total duration and response status.
func (t *Trace) Finish(status int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.total = time.Since(t.Start)
	t.status = status
	t.mu.Unlock()
}

// Duration returns the finished trace's total duration (0 before Finish).
func (t *Trace) Duration() time.Duration {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// TraceSnapshot is the immutable JSON form of a finished trace.
type TraceSnapshot struct {
	ID           string    `json:"id"`
	Name         string    `json:"name"`
	Start        time.Time `json:"start"`
	DurationUs   int64     `json:"durationUs"`
	Status       int       `json:"status,omitempty"`
	Spans        []Span    `json:"spans"`
	DroppedSpans int       `json:"droppedSpans,omitempty"`
}

func (t *Trace) snapshot() TraceSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	spans := make([]Span, len(t.spans))
	for i, sp := range t.spans {
		sp.OffsetUs = sp.Offset.Microseconds()
		sp.DurationUs = sp.Duration.Microseconds()
		spans[i] = sp
	}
	return TraceSnapshot{
		ID: t.ID, Name: t.Name, Start: t.Start,
		DurationUs: t.total.Microseconds(), Status: t.status,
		Spans: spans, DroppedSpans: t.dropped,
	}
}

type traceKey struct{}

// ContextWithTrace attaches a trace to a context.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom returns the context's trace, or nil. All Trace methods are
// nil-safe, so callers use the result unconditionally.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}

// TraceRecorder keeps the most recent finished traces at or above a
// duration threshold in a fixed-size ring. With Threshold 0 every finished
// trace is kept (the default: the acceptance path needs any traced request
// retrievable); operators raise the threshold to keep only slow ones.
type TraceRecorder struct {
	mu        sync.Mutex
	ring      []TraceSnapshot
	next      int
	total     uint64 // traces recorded (not just retained)
	threshold time.Duration
}

// NewTraceRecorder builds a recorder retaining up to n traces of duration
// ≥ threshold. n < 1 defaults to 256.
func NewTraceRecorder(n int, threshold time.Duration) *TraceRecorder {
	if n < 1 {
		n = 256
	}
	return &TraceRecorder{ring: make([]TraceSnapshot, 0, n), threshold: threshold}
}

// Record retains a finished trace if it meets the threshold. Nil-safe on
// both receiver and trace.
func (r *TraceRecorder) Record(t *Trace) {
	if r == nil || t == nil {
		return
	}
	d := t.Duration()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.total++
	if d < r.threshold {
		return
	}
	snap := t.snapshot()
	if len(r.ring) < cap(r.ring) {
		r.ring = append(r.ring, snap)
		r.next = len(r.ring) % cap(r.ring)
		return
	}
	r.ring[r.next] = snap
	r.next = (r.next + 1) % len(r.ring)
}

// Snapshots returns the retained traces, most recent first.
func (r *TraceRecorder) Snapshots() []TraceSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]TraceSnapshot, 0, len(r.ring))
	for i := 1; i <= len(r.ring); i++ {
		out = append(out, r.ring[(r.next-i+len(r.ring))%len(r.ring)])
	}
	return out
}

// Total returns the number of traces ever offered to the recorder.
func (r *TraceRecorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Handler serves the recorder as JSON: {"thresholdMs":…,"recorded":…,
// "traces":[…]} with traces most recent first. An optional ?min_ms=N query
// filters to traces at least that slow.
func (r *TraceRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		minUs := int64(0)
		if v := req.URL.Query().Get("min_ms"); v != "" {
			ms, err := strconv.ParseFloat(v, 64)
			if err != nil {
				http.Error(w, `{"error":"min_ms must be a number"}`, http.StatusBadRequest)
				return
			}
			minUs = int64(ms * 1000)
		}
		all := r.Snapshots()
		traces := all[:0:0]
		for _, t := range all {
			if t.DurationUs >= minUs {
				traces = append(traces, t)
			}
		}
		if traces == nil {
			traces = []TraceSnapshot{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		if err := enc.Encode(map[string]any{
			"thresholdMs": float64(r.threshold.Microseconds()) / 1000,
			"recorded":    r.Total(),
			"retained":    len(all),
			"traces":      traces,
		}); err != nil {
			// Mid-write failure (usually the debugging client went
			// away); too late to change the status, so count it.
			noteEncodeFailure()
		}
	})
}
