package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// LintExposition validates a Prometheus text-exposition document against
// the invariants the registry promises:
//
//   - every sample line belongs to a family whose # HELP and # TYPE were
//     both declared before it;
//   - no family is declared twice;
//   - no sample line (name + label set) repeats;
//   - each histogram child carries monotone non-decreasing cumulative
//     buckets ordered by ascending le, an le="+Inf" bucket equal to its
//     _count, and a _sum sample;
//   - metric names are legal.
//
// It returns every violation found, nil when the document is clean.
func LintExposition(doc []byte) []error {
	l := &linter{
		declaredHelp: map[string]bool{},
		declaredType: map[string]string{},
		seenSamples:  map[string]bool{},
		histograms:   map[string]map[string]*histChild{},
	}
	sc := bufio.NewScanner(bytes.NewReader(doc))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line := 0
	for sc.Scan() {
		line++
		l.line(line, strings.TrimRight(sc.Text(), "\r"))
	}
	if err := sc.Err(); err != nil {
		l.errs = append(l.errs, fmt.Errorf("read: %w", err))
	}
	l.finishHistograms()
	return l.errs
}

var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// histChild is one histogram time series (one label set of a family, or
// the sole series of an unlabeled histogram).
type histChild struct {
	les    []float64
	counts []float64
	sum    *float64
	count  *float64
}

type linter struct {
	errs         []error
	declaredHelp map[string]bool
	declaredType map[string]string
	seenSamples  map[string]bool
	// histograms[family][child-labels] accumulates bucket/sum/count lines;
	// child-labels is the label set with le stripped.
	histograms map[string]map[string]*histChild
}

func (l *linter) errf(line int, format string, args ...any) {
	l.errs = append(l.errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

func (l *linter) line(n int, s string) {
	if s == "" {
		return
	}
	if strings.HasPrefix(s, "# HELP ") {
		fields := strings.SplitN(strings.TrimPrefix(s, "# HELP "), " ", 2)
		name := fields[0]
		if l.declaredHelp[name] {
			l.errf(n, "duplicate HELP for family %s", name)
		}
		l.declaredHelp[name] = true
		return
	}
	if strings.HasPrefix(s, "# TYPE ") {
		fields := strings.Fields(strings.TrimPrefix(s, "# TYPE "))
		if len(fields) != 2 {
			l.errf(n, "malformed TYPE line %q", s)
			return
		}
		name, typ := fields[0], fields[1]
		if _, dup := l.declaredType[name]; dup {
			l.errf(n, "duplicate TYPE for family %s", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			l.errf(n, "family %s has unknown type %q", name, typ)
		}
		l.declaredType[name] = typ
		if typ == "histogram" {
			l.histograms[name] = map[string]*histChild{}
		}
		return
	}
	if strings.HasPrefix(s, "#") {
		return // free-form comment
	}
	l.sample(n, s)
}

// familyOf maps a sample name to its declared family, resolving histogram
// and summary sample suffixes.
func (l *linter) familyOf(name string) (string, bool) {
	if _, ok := l.declaredType[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if t, ok := l.declaredType[base]; ok && (t == "histogram" || t == "summary") {
				return base, true
			}
		}
	}
	return "", false
}

var leRe = regexp.MustCompile(`,?le="([^"]*)"`)

func (l *linter) sample(n int, s string) {
	// <name>[{labels}] <value> [timestamp]
	nameEnd := strings.IndexAny(s, "{ ")
	if nameEnd < 0 {
		l.errf(n, "malformed sample line %q", s)
		return
	}
	name := s[:nameEnd]
	if !metricNameRe.MatchString(name) {
		l.errf(n, "illegal metric name %q", name)
		return
	}
	rest := s[nameEnd:]
	labels := ""
	if rest[0] == '{' {
		end := strings.Index(rest, "}")
		if end < 0 {
			l.errf(n, "unterminated label set in %q", s)
			return
		}
		labels = rest[:end+1]
		rest = rest[end+1:]
	}
	valStr := strings.Fields(rest)
	if len(valStr) < 1 || len(valStr) > 2 {
		l.errf(n, "sample %s has %d value fields, want 1 (or 2 with timestamp)", name, len(valStr))
		return
	}
	val, err := strconv.ParseFloat(valStr[0], 64)
	if err != nil {
		l.errf(n, "sample %s has unparseable value %q", name, valStr[0])
		return
	}

	family, ok := l.familyOf(name)
	if !ok {
		l.errf(n, "sample %s has no preceding TYPE declaration", name)
		return
	}
	if !l.declaredHelp[family] {
		l.errf(n, "sample %s of family %s has no preceding HELP", name, family)
	}

	key := name + labels
	if l.seenSamples[key] {
		l.errf(n, "duplicate sample %s", key)
	}
	l.seenSamples[key] = true

	if children := l.histograms[family]; children != nil {
		l.histogramSample(n, children, family, name, labels, val)
	}
}

func (l *linter) histogramSample(n int, children map[string]*histChild, family, name, labels string, val float64) {
	childKey := labels
	var le float64
	isBucket := name == family+"_bucket"
	if isBucket {
		m := leRe.FindStringSubmatch(labels)
		if m == nil {
			l.errf(n, "histogram bucket %s%s lacks an le label", name, labels)
			return
		}
		if m[1] == "+Inf" {
			le = math.Inf(1)
		} else {
			var err error
			le, err = strconv.ParseFloat(m[1], 64)
			if err != nil {
				l.errf(n, "histogram bucket le=%q is not a number", m[1])
				return
			}
		}
		childKey = leRe.ReplaceAllString(labels, "")
		if childKey == "{}" {
			childKey = ""
		}
	}
	ch := children[childKey]
	if ch == nil {
		ch = &histChild{}
		children[childKey] = ch
	}
	switch name {
	case family + "_bucket":
		ch.les = append(ch.les, le)
		ch.counts = append(ch.counts, val)
	case family + "_sum":
		ch.sum = &val
	case family + "_count":
		ch.count = &val
	}
}

// finishHistograms checks the cross-line invariants of every histogram
// child once the document is fully read.
func (l *linter) finishHistograms() {
	families := make([]string, 0, len(l.histograms))
	for f := range l.histograms {
		families = append(families, f)
	}
	sort.Strings(families)
	for _, family := range families {
		children := l.histograms[family]
		keys := make([]string, 0, len(children))
		for k := range children {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			l.finishChild(family, key, children[key])
		}
	}
}

func (l *linter) finishChild(family, key string, ch *histChild) {
	id := family
	if key != "" {
		id += key
	}
	if len(ch.les) == 0 && ch.sum == nil && ch.count == nil {
		return // declared but unpopulated family: allowed
	}
	for i := 1; i < len(ch.les); i++ {
		if ch.les[i] <= ch.les[i-1] {
			l.errs = append(l.errs, fmt.Errorf("histogram %s: bucket le=%g does not ascend past le=%g", id, ch.les[i], ch.les[i-1]))
		}
		if ch.counts[i] < ch.counts[i-1] {
			l.errs = append(l.errs, fmt.Errorf("histogram %s: bucket le=%g count %g < preceding count %g (non-monotone)", id, ch.les[i], ch.counts[i], ch.counts[i-1]))
		}
	}
	if len(ch.les) == 0 || !math.IsInf(ch.les[len(ch.les)-1], 1) {
		l.errs = append(l.errs, fmt.Errorf("histogram %s: buckets do not end at le=\"+Inf\"", id))
		return
	}
	if ch.count == nil {
		l.errs = append(l.errs, fmt.Errorf("histogram %s: missing _count sample", id))
	} else if inf := ch.counts[len(ch.counts)-1]; inf != *ch.count {
		l.errs = append(l.errs, fmt.Errorf("histogram %s: le=\"+Inf\" bucket %g != _count %g", id, inf, *ch.count))
	}
	if ch.sum == nil {
		l.errs = append(l.errs, fmt.Errorf("histogram %s: missing _sum sample", id))
	}
}
