package obs

import (
	"runtime"
	"strconv"
)

// Version and Commit identify the running build. They are variables, not
// constants, so release builds inject real values at link time:
//
//	go build -ldflags "-X corrfuse/internal/obs.Version=$(git describe --tags --always) \
//	                   -X corrfuse/internal/obs.Commit=$(git rev-parse --short HEAD)" ./cmd/fused
//
// The defaults identify an uninjected developer build.
var (
	Version = "dev"
	Commit  = "unknown"
)

// BuildInfo is the build identity exposed on /healthz and as the
// corrfused_build_info metric.
type BuildInfo struct {
	Version   string `json:"version"`
	Commit    string `json:"commit"`
	GoVersion string `json:"goVersion"`
}

// GetBuildInfo returns the running build's identity.
func GetBuildInfo() BuildInfo {
	return BuildInfo{Version: Version, Commit: Commit, GoVersion: runtime.Version()}
}

// RegisterBuildInfo adds the corrfused_build_info constant gauge to a
// registry: value 1 with the build identity as labels, the standard
// Prometheus idiom for joining version metadata onto other series.
func RegisterBuildInfo(r *Registry, name string) {
	bi := GetBuildInfo()
	labels := "{version=" + strconv.Quote(bi.Version) + ",commit=" + strconv.Quote(bi.Commit) +
		",go_version=" + strconv.Quote(bi.GoVersion) + "}"
	r.SampleFunc(name, "Build identity of the running binary.", "gauge", func() []Sample {
		return []Sample{{Labels: labels, Value: 1}}
	})
}
