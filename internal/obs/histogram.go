package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency buckets: log-spaced from 100µs to 10s
// in a 1-2.5-5 progression, wide enough to hold both O(µs) index reads and
// fsync-bound commits without resizing.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// FineBuckets start at 10µs for stages that complete well under a
// millisecond (frozen-index lookups, in-memory WAL appends).
var FineBuckets = []float64{
	0.00001, 0.000025, 0.00005, 0.0001, 0.00025, 0.0005,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1,
}

// ExpBuckets returns n log-spaced bucket bounds starting at start (seconds),
// each factor times the previous.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		return nil
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Histogram is a fixed-bucket latency histogram safe for concurrent use.
// Observation is wait-free: one atomic add into the bucket counter plus two
// atomic adds for the running count and nanosecond sum — no locks on the
// hot path, so request handlers can observe without contending with scrapes.
type Histogram struct {
	// upper are the inclusive bucket upper bounds in seconds, ascending; an
	// implicit +Inf bucket follows.
	upper []float64
	// counts[i] is the number of observations ≤ upper[i] exclusively in
	// bucket i (NOT cumulative; the exposition writer accumulates). The
	// final element is the +Inf bucket.
	counts []atomic.Uint64
	count  atomic.Uint64
	// sumNanos accumulates the observed durations in nanoseconds: integer
	// adds are atomic without a CAS loop, and ~292 years of summed latency
	// fit in int64 before overflow.
	sumNanos atomic.Int64
}

// NewHistogram builds a histogram over the given ascending bucket bounds
// (seconds). Nil or empty buckets fall back to DefBuckets.
func NewHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	h := &Histogram{
		upper:  append([]float64(nil), buckets...),
		counts: make([]atomic.Uint64, len(buckets)+1),
	}
	return h
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := d.Seconds()
	// Binary search is overkill for ≤ ~16 buckets; a linear scan stays in
	// one cache line of float64s.
	i := 0
	for i < len(h.upper) && s > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNanos.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed durations in seconds.
func (h *Histogram) Sum() float64 {
	return time.Duration(h.sumNanos.Load()).Seconds()
}

// Quantile returns an estimate of the q-quantile (0 ≤ q ≤ 1) by linear
// interpolation within the owning bucket — the usual Prometheus
// histogram_quantile estimate, handy for slow-log decisions and tests.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum uint64
	lower := 0.0
	for i := range h.counts {
		c := h.counts[i].Load()
		if c == 0 {
			if i < len(h.upper) {
				lower = h.upper[i]
			}
			continue
		}
		if float64(cum+c) >= rank {
			upper := lower
			if i < len(h.upper) {
				upper = h.upper[i]
			}
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
		cum += c
		if i < len(h.upper) {
			lower = h.upper[i]
		}
	}
	return lower
}

// snapshot returns cumulative bucket counts aligned with upper (+Inf last),
// plus count and sum. Reads are atomic per counter; a scrape racing
// observations may see a bucket updated before the total — the linter and
// Prometheus both tolerate that skew, and it never decreases.
func (h *Histogram) snapshot() (cum []uint64, count uint64, sum float64) {
	cum = make([]uint64, len(h.counts))
	var running uint64
	for i := range h.counts {
		running += h.counts[i].Load()
		cum[i] = running
	}
	// Derive count from the same pass so le="+Inf" always equals the
	// reported count even mid-scrape.
	return cum, cum[len(cum)-1], h.Sum()
}
