package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	h.Observe(500 * time.Microsecond) // bucket 0
	h.Observe(5 * time.Millisecond)   // bucket 1
	h.Observe(50 * time.Millisecond)  // bucket 2
	h.Observe(2 * time.Second)        // +Inf
	h.Observe(-time.Second)           // clamped to 0 → bucket 0

	cum, count, sum := h.snapshot()
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	want := []uint64{2, 3, 4, 5}
	for i, w := range want {
		if cum[i] != w {
			t.Errorf("cum[%d] = %d, want %d", i, cum[i], w)
		}
	}
	wantSum := 0.0005 + 0.005 + 0.05 + 2
	if math.Abs(sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", sum, wantSum)
	}
	if q := h.Quantile(0.5); q < 0 || q > 0.01 {
		t.Errorf("median %v outside [0, 0.01]", q)
	}
}

func TestHistogramBoundaryInclusive(t *testing.T) {
	h := NewHistogram([]float64{0.001})
	h.Observe(time.Millisecond) // exactly the bound: le is inclusive
	cum, _, _ := h.snapshot()
	if cum[0] != 1 {
		t.Fatalf("1ms observation landed past le=0.001: %v", cum)
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "A counter.")
	c.Add(3)
	cv := r.CounterVec("test_codes_total", "By code.", "code")
	cv.With("404").Add(2)
	cv.With("200").Inc()
	r.GaugeFunc("test_gauge", "A gauge.", func() float64 { return 1.5 })
	r.SampleFunc("test_absent", "Suppressed family.", "gauge", func() []Sample { return nil })
	r.SampleFunc("test_shards", "Labeled gauge.", "gauge", func() []Sample {
		return []Sample{{Labels: Label("shard", "0"), Value: 7}}
	})
	h := r.Histogram("test_seconds", "A histogram.", []float64{0.01, 0.1})
	h.Observe(5 * time.Millisecond)
	h.Observe(time.Second)
	hv := r.HistogramVec("test_stage_seconds", "Stage histogram.", "stage", []float64{0.01})
	hv.With("decode").Observe(time.Millisecond)
	hv.With("encode").Observe(20 * time.Millisecond)

	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"# HELP test_total A counter.\n# TYPE test_total counter\ntest_total 3\n",
		`test_codes_total{code="200"} 1`,
		`test_codes_total{code="404"} 2`,
		"test_gauge 1.5",
		`test_shards{shard="0"} 7`,
		`test_seconds_bucket{le="0.01"} 1`,
		`test_seconds_bucket{le="+Inf"} 2`,
		"test_seconds_count 2",
		`test_stage_seconds_bucket{stage="decode",le="0.01"} 1`,
		`test_stage_seconds_bucket{stage="encode",le="0.01"} 0`,
		`test_stage_seconds_count{stage="encode"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, "test_absent") {
		t.Error("suppressed family leaked into the exposition")
	}
	if errs := LintExposition(buf.Bytes()); len(errs) > 0 {
		t.Errorf("registry output fails its own lint: %v", errs)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r := NewRegistry()
	r.Counter("dup_total", "x")
	r.Counter("dup_total", "y")
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"missing type", "orphan 1\n", "no preceding TYPE"},
		{"missing help", "# TYPE bare counter\nbare 1\n", "no preceding HELP"},
		{"duplicate sample", "# HELP d x\n# TYPE d counter\nd 1\nd 2\n", "duplicate sample"},
		{"duplicate family", "# HELP d x\n# TYPE d counter\n# TYPE d counter\n", "duplicate TYPE"},
		{
			"non-monotone buckets",
			"# HELP h x\n# TYPE h histogram\n" +
				`h_bucket{le="0.1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\n" +
				"h_sum 1\nh_count 3\n",
			"non-monotone",
		},
		{
			"inf != count",
			"# HELP h x\n# TYPE h histogram\n" +
				`h_bucket{le="+Inf"} 3` + "\n" + "h_sum 1\nh_count 4\n",
			`!= _count`,
		},
		{
			"missing inf",
			"# HELP h x\n# TYPE h histogram\n" + `h_bucket{le="0.1"} 3` + "\n" +
				"h_sum 1\nh_count 3\n",
			`end at le="+Inf"`,
		},
		{"bad value", "# HELP g x\n# TYPE g gauge\ng nope\n", "unparseable value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			errs := LintExposition([]byte(tc.doc))
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.wantErr) {
					found = true
				}
			}
			if !found {
				t.Errorf("lint of %q: want an error containing %q, got %v", tc.doc, tc.wantErr, errs)
			}
		})
	}
}

func TestLintCleanDocument(t *testing.T) {
	doc := "# HELP ok_total x\n# TYPE ok_total counter\nok_total 1\n" +
		"# HELP h x\n# TYPE h histogram\n" +
		`h_bucket{le="0.1"} 2` + "\n" + `h_bucket{le="+Inf"} 3` + "\n" +
		"h_sum 0.5\nh_count 3\n"
	if errs := LintExposition([]byte(doc)); len(errs) > 0 {
		t.Fatalf("clean document flagged: %v", errs)
	}
}

func TestTraceSpansAndRecorder(t *testing.T) {
	rec := NewTraceRecorder(2, 0)
	for i := 0; i < 3; i++ {
		tr := NewTrace(fmt.Sprintf("id-%d", i), "test")
		done := tr.StartSpan("stage")
		time.Sleep(time.Millisecond)
		done()
		tr.Finish(200)
		rec.Record(tr)
	}
	snaps := rec.Snapshots()
	if len(snaps) != 2 {
		t.Fatalf("ring retained %d traces, want 2", len(snaps))
	}
	// Most recent first; id-0 evicted.
	if snaps[0].ID != "id-2" || snaps[1].ID != "id-1" {
		t.Errorf("ring order = %s, %s; want id-2, id-1", snaps[0].ID, snaps[1].ID)
	}
	if rec.Total() != 3 {
		t.Errorf("total = %d, want 3", rec.Total())
	}
	if len(snaps[0].Spans) != 1 || snaps[0].Spans[0].Name != "stage" {
		t.Fatalf("spans = %+v", snaps[0].Spans)
	}
	if snaps[0].Spans[0].DurationUs <= 0 || snaps[0].DurationUs < snaps[0].Spans[0].DurationUs {
		t.Errorf("span %dus exceeds trace %dus", snaps[0].Spans[0].DurationUs, snaps[0].DurationUs)
	}
}

func TestTraceThresholdFilters(t *testing.T) {
	rec := NewTraceRecorder(8, time.Hour)
	tr := NewTrace("fast", "test")
	tr.Finish(200)
	rec.Record(tr)
	if got := rec.Snapshots(); len(got) != 0 {
		t.Fatalf("fast trace retained despite threshold: %+v", got)
	}
	if rec.Total() != 1 {
		t.Fatalf("total = %d, want 1", rec.Total())
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace("big", "test")
	for i := 0; i < maxSpans+10; i++ {
		tr.AddSpan("s", 0, time.Microsecond)
	}
	tr.Finish(200)
	snap := tr.snapshot()
	if len(snap.Spans) != maxSpans || snap.DroppedSpans != 10 {
		t.Fatalf("spans=%d dropped=%d, want %d and 10", len(snap.Spans), snap.DroppedSpans, maxSpans)
	}
}

func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	tr.StartSpan("x")()
	tr.AddSpan("y", 0, 0)
	tr.Finish(200)
	if d := tr.Duration(); d != 0 {
		t.Fatal("nil trace has a duration")
	}
	var rec *TraceRecorder
	rec.Record(tr)
	if got := TraceFrom(context.Background()); got != nil {
		t.Fatal("empty context returned a trace")
	}
}

func TestTraceIDGenerationAndSanitize(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatal("trace IDs collide")
	}
	if !SanitizeTraceID(a) {
		t.Fatalf("generated ID %q rejected by sanitizer", a)
	}
	for _, bad := range []string{"", "has space", "ctl\x01", strings.Repeat("x", 200), "uni\u00e9"} {
		if SanitizeTraceID(bad) {
			t.Errorf("sanitizer accepted %q", bad)
		}
	}
	if !SanitizeTraceID("client-supplied-123") {
		t.Error("sanitizer rejected a plain ASCII ID")
	}
}

func TestTraceHandler(t *testing.T) {
	rec := NewTraceRecorder(4, 0)
	tr := NewTrace("slow-1", "observe")
	tr.AddSpan("decode", 0, 2*time.Millisecond)
	time.Sleep(2 * time.Millisecond)
	tr.Finish(200)
	rec.Record(tr)

	w := httptest.NewRecorder()
	rec.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces", nil))
	var out struct {
		Recorded int             `json:"recorded"`
		Traces   []TraceSnapshot `json:"traces"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("bad JSON: %v: %s", err, w.Body.String())
	}
	if out.Recorded != 1 || len(out.Traces) != 1 || out.Traces[0].ID != "slow-1" {
		t.Fatalf("unexpected payload: %s", w.Body.String())
	}

	// min_ms filters.
	w = httptest.NewRecorder()
	rec.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces?min_ms=60000", nil))
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 0 {
		t.Fatalf("min_ms did not filter: %s", w.Body.String())
	}

	w = httptest.NewRecorder()
	rec.Handler().ServeHTTP(w, httptest.NewRequest("GET", "/debug/traces?min_ms=nope", nil))
	if w.Code != 400 {
		t.Fatalf("bad min_ms got %d", w.Code)
	}
}

func TestLoggerTextAndJSON(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo, "text")
	ctx := ContextWithTrace(context.Background(), NewTrace("tid-1", "observe"))
	l.Info(ctx, "hello", "key", "value with space", "n", 42)
	l.Debug(ctx, "suppressed")
	line := buf.String()
	if !strings.Contains(line, "INFO hello") || !strings.Contains(line, `key="value with space"`) ||
		!strings.Contains(line, "n=42") || !strings.Contains(line, "traceId=tid-1") {
		t.Errorf("text line = %q", line)
	}
	if strings.Contains(line, "suppressed") {
		t.Error("debug line emitted at info level")
	}

	buf.Reset()
	j := NewLogger(&buf, LevelDebug, "json")
	j.Warn(ctx, "watch out", "err", fmt.Errorf("boom"), "d", 250*time.Millisecond)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("bad JSON log line %q: %v", buf.String(), err)
	}
	if rec["level"] != "warn" || rec["msg"] != "watch out" || rec["traceId"] != "tid-1" ||
		rec["err"] != "boom" || rec["d"] != "250ms" {
		t.Errorf("json record = %v", rec)
	}
}

func TestLoggerMarshalFallbackCounted(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo, "json")
	before := EncodeFailures()
	// NaN survives jsonValue's coercion and defeats json.Marshal, forcing
	// the fallback record; the loss must be counted, never silent.
	l.Info(context.Background(), "bad payload", "v", math.NaN())
	if got := EncodeFailures() - before; got != 1 {
		t.Fatalf("EncodeFailures delta = %d, want 1", got)
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("fallback line is not valid JSON: %q: %v", buf.String(), err)
	}
	if rec["level"] != "error" || !strings.Contains(rec["msg"].(string), "not marshalable") {
		t.Errorf("fallback record = %v", rec)
	}
}

func TestLoggerFuncAndNil(t *testing.T) {
	var lines []string
	l := NewLoggerFunc(func(s string) { lines = append(lines, s) }, LevelInfo, "text")
	l.Logf("compat %d", 7)
	if len(lines) != 1 || !strings.Contains(lines[0], "compat 7") {
		t.Fatalf("lines = %v", lines)
	}
	var nilLogger *Logger
	nilLogger.Info(context.Background(), "nothing")
	nilLogger.Logf("nothing")
	if nilLogger.Enabled(LevelError) {
		t.Fatal("nil logger claims to be enabled")
	}
}

func TestLoggerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo, "json")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Info(context.Background(), "line", "worker", i, "j", j)
			}
		}(i)
	}
	wg.Wait()
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("interleaved write produced bad JSON: %q", line)
		}
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{"debug": LevelDebug, "info": LevelInfo, "": LevelInfo, "warn": LevelWarn, "warning": LevelWarn, "error": LevelError} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}

func TestBuildInfo(t *testing.T) {
	bi := GetBuildInfo()
	if bi.Version == "" || bi.Commit == "" || !strings.HasPrefix(bi.GoVersion, "go") {
		t.Fatalf("build info = %+v", bi)
	}
	r := NewRegistry()
	RegisterBuildInfo(r, "test_build_info")
	var buf bytes.Buffer
	r.WriteTo(&buf)
	if !strings.Contains(buf.String(), `test_build_info{version=`) || !strings.Contains(buf.String(), "} 1\n") {
		t.Fatalf("build info exposition: %s", buf.String())
	}
	if errs := LintExposition(buf.Bytes()); len(errs) > 0 {
		t.Fatalf("build info fails lint: %v", errs)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(0.001, 10, 4)
	want := []float64{0.001, 0.01, 0.1, 1}
	if len(b) != len(want) {
		t.Fatalf("b = %v", b)
	}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Errorf("b[%d] = %v, want %v", i, b[i], want[i])
		}
	}
	if ExpBuckets(0, 2, 3) != nil || ExpBuckets(1, 1, 3) != nil || ExpBuckets(1, 2, 0) != nil {
		t.Error("invalid ExpBuckets input did not return nil")
	}
}

// TestLintFile lints an exposition document named by METRICS_LINT_FILE —
// the CI hook that validates a live server's /metrics output. Skipped when
// the variable is unset.
func TestLintFile(t *testing.T) {
	path := envMetricsLintFile()
	if path == "" {
		t.Skip("METRICS_LINT_FILE not set")
	}
	doc, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(doc) == 0 {
		t.Fatalf("%s is empty", path)
	}
	if errs := LintExposition(doc); len(errs) > 0 {
		for _, e := range errs {
			t.Error(e)
		}
	}
}

func envMetricsLintFile() string { return os.Getenv("METRICS_LINT_FILE") }

func readFile(path string) ([]byte, error) { return os.ReadFile(path) }
