package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Level is a log severity. The zero value is LevelInfo, so a zero-config
// logger behaves like the log package it replaces.
type Level int8

const (
	LevelDebug Level = -1
	LevelInfo  Level = 0
	LevelWarn  Level = 1
	LevelError Level = 2
)

// String returns the lowercase level name.
func (l Level) String() string {
	switch {
	case l <= LevelDebug:
		return "debug"
	case l == LevelInfo:
		return "info"
	case l == LevelWarn:
		return "warn"
	default:
		return "error"
	}
}

// ParseLevel parses a level name ("debug", "info", "warn", "error").
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q", s)
}

// Logger is a leveled, optionally JSON-formatted structured logger. Every
// line carries a timestamp, level and message; key/value pairs and the
// calling request's trace ID ride along. A nil *Logger is silent: every
// method no-ops, so components hold one unconditionally.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	emit  func(line string) // alternative sink (already formatted, no \n)
	level Level
	json  bool
}

// NewLogger builds a logger writing one line per record to w. format is
// "json" or "text" (anything else means text).
func NewLogger(w io.Writer, level Level, format string) *Logger {
	return &Logger{w: w, level: level, json: format == "json"}
}

// NewLoggerFunc builds a logger delivering formatted lines (without the
// trailing newline) to fn — the bridge onto legacy Logf sinks.
func NewLoggerFunc(fn func(line string), level Level, format string) *Logger {
	return &Logger{emit: fn, level: level, json: format == "json"}
}

// Enabled reports whether records at the given level are emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.level
}

// Log emits one record. keyvals alternate key, value; a trailing unpaired
// key gets the value "(MISSING)". The context's trace ID, if any, is
// stamped on the record.
func (l *Logger) Log(ctx context.Context, level Level, msg string, keyvals ...any) {
	if !l.Enabled(level) {
		return
	}
	traceID := ""
	if ctx != nil {
		if t := TraceFrom(ctx); t != nil {
			traceID = t.ID
		}
	}
	l.write(level, traceID, msg, keyvals)
}

// Debug, Info, Warn and Error are Log shorthands.
func (l *Logger) Debug(ctx context.Context, msg string, keyvals ...any) {
	l.Log(ctx, LevelDebug, msg, keyvals...)
}
func (l *Logger) Info(ctx context.Context, msg string, keyvals ...any) {
	l.Log(ctx, LevelInfo, msg, keyvals...)
}
func (l *Logger) Warn(ctx context.Context, msg string, keyvals ...any) {
	l.Log(ctx, LevelWarn, msg, keyvals...)
}
func (l *Logger) Error(ctx context.Context, msg string, keyvals ...any) {
	l.Log(ctx, LevelError, msg, keyvals...)
}

// Logf is the printf-compatibility shim for components that predate
// structured logging; it emits at info level with no trace.
func (l *Logger) Logf(format string, args ...any) {
	if !l.Enabled(LevelInfo) {
		return
	}
	l.write(LevelInfo, "", fmt.Sprintf(format, args...), nil)
}

func (l *Logger) write(level Level, traceID, msg string, keyvals []any) {
	ts := time.Now().UTC()
	var line string
	if l.json {
		rec := make(map[string]any, 4+len(keyvals)/2)
		rec["ts"] = ts.Format(time.RFC3339Nano)
		rec["level"] = level.String()
		rec["msg"] = msg
		if traceID != "" {
			rec["traceId"] = traceID
		}
		for i := 0; i < len(keyvals); i += 2 {
			k, ok := keyvals[i].(string)
			if !ok {
				k = fmt.Sprint(keyvals[i])
			}
			if i+1 < len(keyvals) {
				rec[k] = jsonValue(keyvals[i+1])
			} else {
				rec[k] = "(MISSING)"
			}
		}
		raw, err := json.Marshal(rec)
		if err != nil {
			// A keyval defeated jsonValue's coercion. Count the loss
			// (corrfused_obs_encode_failures_total) and fall back to a
			// minimal record; if even that fails, hand-assemble the
			// line so the failure is never silent.
			noteEncodeFailure()
			raw, err = json.Marshal(map[string]string{
				"ts": ts.Format(time.RFC3339Nano), "level": "error",
				"msg": "log record not marshalable: " + err.Error(),
			})
			if err != nil {
				raw = []byte(`{"ts":` + strconv.Quote(ts.Format(time.RFC3339Nano)) +
					`,"level":"error","msg":"log record not marshalable"}`)
			}
		}
		line = string(raw)
	} else {
		var b strings.Builder
		b.WriteString(ts.Format("2006-01-02T15:04:05.000Z"))
		b.WriteByte(' ')
		b.WriteString(strings.ToUpper(level.String()))
		b.WriteByte(' ')
		b.WriteString(msg)
		for i := 0; i < len(keyvals); i += 2 {
			b.WriteByte(' ')
			fmt.Fprint(&b, keyvals[i])
			b.WriteByte('=')
			if i+1 < len(keyvals) {
				writeTextValue(&b, keyvals[i+1])
			} else {
				b.WriteString("(MISSING)")
			}
		}
		if traceID != "" {
			b.WriteString(" traceId=")
			b.WriteString(traceID)
		}
		line = b.String()
	}
	if l.emit != nil {
		l.emit(line)
		return
	}
	l.mu.Lock()
	fmt.Fprintln(l.w, line)
	l.mu.Unlock()
}

// jsonValue coerces non-marshalable values (errors, Stringers) to strings.
func jsonValue(v any) any {
	switch x := v.(type) {
	case error:
		return x.Error()
	case time.Duration:
		return x.String()
	case fmt.Stringer:
		return x.String()
	}
	return v
}

// writeTextValue renders one text-format value, quoting strings with spaces.
func writeTextValue(b *strings.Builder, v any) {
	s := fmt.Sprint(jsonValue(v))
	if strings.ContainsAny(s, " \t\n\"=") {
		fmt.Fprintf(b, "%q", s)
		return
	}
	b.WriteString(s)
}
