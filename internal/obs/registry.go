// Package obs is the service's zero-dependency observability core: a
// Prometheus-text metric registry (counters, gauges, fixed-bucket latency
// histograms), lightweight request tracing with a ring buffer of recent
// traces, a leveled JSON/text logger that stamps trace IDs, and build
// metadata injected at link time. Everything is stdlib-only and safe for
// concurrent use; the hot-path primitives (counter adds, histogram
// observations, span records) are lock-free or near-free so instrumentation
// can stay on in production.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Sample is one exposition line's variable part: a preformatted label set
// (`{code="404"}`, or "" for an unlabeled metric) and its value.
type Sample struct {
	Labels string
	Value  float64
}

// Label formats one label pair into a Sample-ready label set. strconv.Quote
// covers the exposition format's required escapes (backslash, quote,
// newline); our label values are endpoint names, status codes and version
// strings, which need nothing more exotic.
func Label(name, value string) string {
	return "{" + name + "=" + strconv.Quote(value) + "}"
}

// collector is one registered metric family: a HELP/TYPE header plus its
// sample lines.
type collector interface {
	meta() (name, help, typ string)
	// write emits the family's sample lines. Returning false suppresses
	// the whole family, header included (e.g. WAL gauges without a WAL).
	write(w io.Writer) bool
}

// Registry is an ordered collection of metric families that renders itself
// in the Prometheus text exposition format: HELP and TYPE are declared once
// per family at registration, and WriteTo emits every family in one loop —
// no hand-maintained header blocks. Registration is not thread-safe
// (register everything at construction); scraping concurrent with metric
// updates is.
type Registry struct {
	families []collector
	names    map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(name string, c collector) {
	if r.names[name] {
		panic("obs: duplicate metric family " + name)
	}
	r.names[name] = true
	r.families = append(r.families, c)
}

// WriteTo renders every family in registration order.
func (r *Registry) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: w}
	for _, f := range r.families {
		var buf strings.Builder
		if !f.write(&buf) {
			continue
		}
		name, help, typ := f.meta()
		fmt.Fprintf(cw, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		io.WriteString(cw, buf.String())
		if cw.err != nil {
			return cw.n, cw.err
		}
	}
	return cw.n, cw.err
}

type countingWriter struct {
	w   io.Writer
	n   int64
	err error
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	if cw.err != nil {
		return 0, cw.err
	}
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	cw.err = err
	return n, err
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ---- counters ----

type counterFamily struct {
	name, help string
	c          *Counter
}

func (f *counterFamily) meta() (string, string, string) { return f.name, f.help, "counter" }
func (f *counterFamily) write(w io.Writer) bool {
	fmt.Fprintf(w, "%s %d\n", f.name, f.c.Load())
	return true
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, &counterFamily{name: name, help: help, c: c})
	return c
}

// CounterVec is a family of counters keyed by one label's value, created on
// demand: unseen label values allocate their counter on first With.
type CounterVec struct {
	name, label string
	mu          sync.RWMutex
	children    map[string]*Counter
}

// With returns the counter for the given label value, creating it if new.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c := v.children[value]
	v.mu.RUnlock()
	if c != nil {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c = v.children[value]; c == nil {
		c = &Counter{}
		v.children[value] = c
	}
	return c
}

type counterVecFamily struct {
	help string
	v    *CounterVec
}

func (f *counterVecFamily) meta() (string, string, string) { return f.v.name, f.help, "counter" }
func (f *counterVecFamily) write(w io.Writer) bool {
	f.v.mu.RLock()
	keys := make([]string, 0, len(f.v.children))
	for k := range f.v.children {
		keys = append(keys, k)
	}
	f.v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		//lint:ignore labelbound exposition loop; k ranges over already-created children, no new series
		fmt.Fprintf(w, "%s%s %d\n", f.v.name, Label(f.v.label, k), f.v.With(k).Load())
	}
	return true
}

// CounterVec registers a one-label counter family. A family with no
// children yet emits its header and no samples.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{name: name, label: label, children: make(map[string]*Counter)}
	r.register(name, &counterVecFamily{help: help, v: v})
	return v
}

// ---- gauges ----

type gaugeFunc struct {
	name, help string
	fn         func() float64
}

func (f *gaugeFunc) meta() (string, string, string) { return f.name, f.help, "gauge" }
func (f *gaugeFunc) write(w io.Writer) bool {
	fmt.Fprintf(w, "%s %s\n", f.name, formatValue(f.fn()))
	return true
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, &gaugeFunc{name: name, help: help, fn: fn})
}

type sampleFunc struct {
	name, help, typ string
	fn              func() []Sample
}

func (f *sampleFunc) meta() (string, string, string) { return f.name, f.help, f.typ }
func (f *sampleFunc) write(w io.Writer) bool {
	samples := f.fn()
	if samples == nil {
		return false
	}
	for _, s := range samples {
		fmt.Fprintf(w, "%s%s %s\n", f.name, s.Labels, formatValue(s.Value))
	}
	return true
}

// SampleFunc registers a family whose (possibly labeled) samples are
// computed at scrape time. typ is "gauge" or "counter". Returning nil
// suppresses the family for that scrape (e.g. WAL metrics without a WAL);
// returning an empty non-nil slice emits the header with no samples.
func (r *Registry) SampleFunc(name, help, typ string, fn func() []Sample) {
	r.register(name, &sampleFunc{name: name, help: help, typ: typ, fn: fn})
}

// ---- histograms ----

type histogramFamily struct {
	name, help string
	h          *Histogram
}

func (f *histogramFamily) meta() (string, string, string) { return f.name, f.help, "histogram" }
func (f *histogramFamily) write(w io.Writer) bool {
	writeHistogram(w, f.name, "", f.h)
	return true
}

func writeHistogram(w io.Writer, name, labels string, h *Histogram) {
	cum, count, sum := h.snapshot()
	for i, ub := range h.upper {
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, formatValue(ub)), cum[i])
	}
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(labels, "+Inf"), cum[len(cum)-1])
	fmt.Fprintf(w, "%s_sum%s %s\n", name, labels, formatValue(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, labels, count)
}

// bucketLabels merges a family's constant label set with the le label.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return strings.TrimSuffix(labels, "}") + `,le="` + le + `"}`
}

// Histogram registers and returns an unlabeled latency histogram.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := NewHistogram(buckets)
	r.register(name, &histogramFamily{name: name, help: help, h: h})
	return h
}

// HistogramVec is a family of histograms keyed by one label's value.
// Children share the family's bucket layout and are created on first With.
type HistogramVec struct {
	name, label string
	buckets     []float64
	mu          sync.RWMutex
	children    map[string]*Histogram
}

// With returns the histogram for the given label value, creating it if new.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h := v.children[value]
	v.mu.RUnlock()
	if h != nil {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h = v.children[value]; h == nil {
		h = NewHistogram(v.buckets)
		v.children[value] = h
	}
	return h
}

type histogramVecFamily struct {
	help string
	v    *HistogramVec
}

func (f *histogramVecFamily) meta() (string, string, string) { return f.v.name, f.help, "histogram" }
func (f *histogramVecFamily) write(w io.Writer) bool {
	f.v.mu.RLock()
	keys := make([]string, 0, len(f.v.children))
	for k := range f.v.children {
		keys = append(keys, k)
	}
	f.v.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		//lint:ignore labelbound exposition loop; k ranges over already-created children, no new series
		writeHistogram(w, f.v.name, Label(f.v.label, k), f.v.With(k))
	}
	return true
}

// HistogramVec registers a one-label histogram family with shared buckets.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	if len(buckets) == 0 {
		buckets = DefBuckets
	}
	v := &HistogramVec{name: name, label: label, buckets: append([]float64(nil), buckets...), children: make(map[string]*Histogram)}
	r.register(name, &histogramVecFamily{help: help, v: v})
	return v
}
