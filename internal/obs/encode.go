package obs

import "sync/atomic"

// encodeFailures counts JSON encodings that failed inside the
// observability layer itself: a log record that could not be
// marshaled, or a /debug/traces response whose encode broke mid-write.
// The observability layer cannot log its own failures without risking
// recursion, so it counts them instead; serve exposes the counter as
// corrfused_obs_encode_failures_total.
var encodeFailures atomic.Uint64

func noteEncodeFailure() { encodeFailures.Add(1) }

// EncodeFailures returns the number of JSON encode failures inside the
// observability layer since process start.
func EncodeFailures() uint64 { return encodeFailures.Load() }
