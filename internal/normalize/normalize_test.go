package normalize

import (
	"testing"
	"testing/quick"

	"corrfuse/internal/triple"
)

func TestCanonical(t *testing.T) {
	cases := map[string]string{
		"  Barack   Obama  ": "barack obama",
		"PRESIDENT.":         "president",
		"a\tb\nc":            "a b c",
		"":                   "",
		"  ":                 "",
		"Doctor.":            "doctor",
	}
	for in, want := range cases {
		if got := Canonical(in); got != want {
			t.Errorf("Canonical(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCanonicalIdempotent(t *testing.T) {
	f := func(s string) bool {
		c := Canonical(s)
		return Canonical(c) == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApplyAliases(t *testing.T) {
	n := New()
	n.MapPredicate("occupation", "profession")
	n.MapEntity("Barack Obama", "Obama")
	n.MapEntity("B. Obama", "Obama")
	n.MapValue("US President", "president")

	variants := []triple.Triple{
		{Subject: "Barack Obama", Predicate: "occupation", Object: "US President"},
		{Subject: "b. obama", Predicate: "Occupation", Object: "us  president"},
		{Subject: "BARACK  OBAMA", Predicate: "occupation.", Object: "US President."},
	}
	want := triple.Triple{Subject: "Obama", Predicate: "profession", Object: "president"}
	for _, v := range variants {
		if got := n.Apply(v); got != want {
			t.Errorf("Apply(%v) = %v, want %v", v, got, want)
		}
	}
	// Entity aliases apply to objects too (spouse-style references).
	spouse := n.Apply(triple.Triple{Subject: "Michelle", Predicate: "spouse", Object: "B. Obama"})
	if spouse.Object != "Obama" {
		t.Errorf("object entity alias not applied: %v", spouse)
	}
}

func TestZeroValueNormalizer(t *testing.T) {
	var n Normalizer
	got := n.Apply(triple.Triple{Subject: " A ", Predicate: "B", Object: "C."})
	want := triple.Triple{Subject: "a", Predicate: "b", Object: "c"}
	if got != want {
		t.Errorf("zero-value Apply = %v, want %v", got, want)
	}
}

func TestDatasetMergesVariants(t *testing.T) {
	d := triple.NewDataset()
	s1 := d.AddSource("S1")
	s2 := d.AddSource("S2")
	v1 := triple.Triple{Subject: "Barack Obama", Predicate: "occupation", Object: "President"}
	v2 := triple.Triple{Subject: "B. Obama", Predicate: "profession", Object: "president."}
	d.Observe(s1, v1)
	d.Observe(s2, v2)
	d.SetLabel(v1, triple.True)

	n := New()
	n.MapPredicate("occupation", "profession")
	n.MapEntity("Barack Obama", "obama")
	n.MapEntity("B. Obama", "obama")

	out := n.Dataset(d)
	if out.NumTriples() != 1 {
		t.Fatalf("variants not merged: %d triples", out.NumTriples())
	}
	canon := triple.Triple{Subject: "obama", Predicate: "profession", Object: "president"}
	id, ok := out.TripleID(canon)
	if !ok {
		t.Fatalf("canonical triple missing; have %v", out.Triple(0))
	}
	if len(out.Providers(id)) != 2 {
		t.Errorf("providers = %d, want 2 (merged)", len(out.Providers(id)))
	}
	if out.Label(id) != triple.True {
		t.Error("label lost in normalization")
	}
	if err := out.Validate(); err != nil {
		t.Fatal(err)
	}
}
