package normalize

import (
	"strings"
	"testing"
	"unicode"

	"corrfuse/internal/triple"
)

// FuzzCanonical checks the canonicalization invariants on arbitrary input:
// no panic, idempotency (the property Apply's repeated-pass contract needs),
// and the structural guarantees of the canonical form (no leading/trailing
// space, no doubled internal spaces, no trailing period, no upper-case).
//
// The "x.." and "a ." seeds pin the regression the fuzzer originally found:
// stripping only a single trailing period (or leaving the space a strip
// exposes) made Canonical("x..") = "x." canonicalize differently on a
// second pass.
func FuzzCanonical(f *testing.F) {
	for _, seed := range []string{
		"", "  ", "  Barack   Obama  ", "PRESIDENT.", "a\tb\nc",
		"x..", "a .", "v1.0", ". . .", "İstanbul.", "ümlaut  ss",
		" nbsp ", "mixed unicode spaces.",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		c := Canonical(s)
		if again := Canonical(c); again != c {
			t.Fatalf("not idempotent: %q -> %q -> %q", s, c, again)
		}
		if strings.HasPrefix(c, " ") || strings.HasSuffix(c, " ") {
			t.Fatalf("Canonical(%q) = %q has edge whitespace", s, c)
		}
		if strings.Contains(c, "  ") {
			t.Fatalf("Canonical(%q) = %q has uncollapsed spaces", s, c)
		}
		if strings.HasSuffix(c, ".") {
			t.Fatalf("Canonical(%q) = %q keeps a trailing period", s, c)
		}
		for _, r := range c {
			if unicode.IsUpper(r) && unicode.ToLower(r) != r {
				t.Fatalf("Canonical(%q) = %q keeps upper-case %q", s, c, r)
			}
		}
	})
}

// FuzzApply checks that a Normalizer with canonical-form alias targets is
// idempotent on arbitrary triples: a second Apply pass must be a no-op, so
// normalizing already-normalized data can never fork a triple identity.
func FuzzApply(f *testing.F) {
	f.Add("Barack Obama", "occupation", "US President")
	f.Add("b.  obama", "OCCUPATION.", "president..")
	f.Add("", "", "")
	f.Add("x..", "p .", " . ")
	f.Fuzz(func(t *testing.T, sub, pred, obj string) {
		n := New()
		n.MapPredicate("occupation", "profession")
		n.MapEntity("barack obama", "obama")
		n.MapEntity("b. obama", "obama")
		n.MapValue("us president", "president")

		in := triple.Triple{Subject: sub, Predicate: pred, Object: obj}
		once := n.Apply(in)
		if twice := n.Apply(once); twice != once {
			t.Fatalf("Apply not idempotent: %v -> %v -> %v", in, once, twice)
		}
	})
}
