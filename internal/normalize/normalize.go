// Package normalize implements the pre-processing the paper assumes has
// happened before fusion (§2.1: "we assume schema mapping and reference
// reconciliation have been applied so we can compare the triples across
// sources"): canonicalization of triple components, predicate/schema alias
// mapping, and simple reference reconciliation via an alias table, so that
// the same real-world statement from different sources becomes the same
// Triple value.
package normalize

import (
	"strings"
	"unicode"

	"corrfuse/internal/triple"
)

// Normalizer rewrites triples into canonical form. The zero value performs
// only textual canonicalization; add alias tables with the Map* methods.
// Not safe for concurrent mutation; concurrent Apply calls are fine.
type Normalizer struct {
	// predicateAlias maps source-specific predicate names (canonicalized)
	// to schema predicates ("schema mapping").
	predicateAlias map[string]string
	// entityAlias maps entity mentions (canonicalized) to canonical
	// entity names ("reference reconciliation").
	entityAlias map[string]string
	// valueAlias maps object-value variants to canonical values.
	valueAlias map[string]string
}

// New returns an empty Normalizer.
func New() *Normalizer {
	return &Normalizer{
		predicateAlias: make(map[string]string),
		entityAlias:    make(map[string]string),
		valueAlias:     make(map[string]string),
	}
}

// MapPredicate registers a schema mapping: every (canonicalized) occurrence
// of alias becomes canonical. The canonical target is substituted verbatim —
// pass it in canonical form (see Canonical) so repeated Apply calls are
// idempotent.
func (n *Normalizer) MapPredicate(alias, canonical string) {
	n.predicateAlias[Canonical(alias)] = canonical
}

// MapEntity registers a reference reconciliation: mentions of alias resolve
// to the canonical entity.
func (n *Normalizer) MapEntity(alias, canonical string) {
	n.entityAlias[Canonical(alias)] = canonical
}

// MapValue registers an object-value canonicalization.
func (n *Normalizer) MapValue(alias, canonical string) {
	n.valueAlias[Canonical(alias)] = canonical
}

// Canonical performs textual canonicalization: trim, collapse internal
// whitespace, lower-case, and strip trailing periods. Stripping removes the
// whole trailing run of periods and any whitespace the strip exposes
// ("x.." and "x ." both canonicalize to "x"), so Canonical is idempotent —
// Canonical(Canonical(s)) == Canonical(s) — which repeated Apply passes
// rely on (see FuzzCanonical).
func Canonical(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	space := false
	started := false
	for _, r := range s {
		if unicode.IsSpace(r) {
			space = started
			continue
		}
		if space {
			b.WriteByte(' ')
			space = false
		}
		b.WriteRune(unicode.ToLower(r))
		started = true
	}
	return strings.TrimRight(b.String(), ". ")
}

// Apply canonicalizes a triple and resolves its components through the alias
// tables.
func (n *Normalizer) Apply(t triple.Triple) triple.Triple {
	subject := Canonical(t.Subject)
	predicate := Canonical(t.Predicate)
	object := Canonical(t.Object)
	if n.entityAlias != nil {
		if canon, ok := n.entityAlias[subject]; ok {
			subject = canon
		}
	}
	if n.predicateAlias != nil {
		if canon, ok := n.predicateAlias[predicate]; ok {
			predicate = canon
		}
	}
	if n.valueAlias != nil {
		if canon, ok := n.valueAlias[object]; ok {
			object = canon
		}
		// Object values can also be entity mentions (e.g. a spouse).
		if canon, ok := n.entityAlias[object]; ok {
			object = canon
		}
	}
	return triple.Triple{Subject: subject, Predicate: predicate, Object: object}
}

// Dataset rebuilds a dataset with every triple normalized: observations of
// variant triples merge onto the canonical triple, and labels follow (a
// conflict — variants of one canonical triple labeled both true and false —
// resolves to the last label seen in TripleID order).
func (n *Normalizer) Dataset(d *triple.Dataset) *triple.Dataset {
	out := triple.NewDataset()
	for _, s := range d.Sources() {
		out.AddSource(s.Name)
	}
	for i := 0; i < d.NumTriples(); i++ {
		id := triple.TripleID(i)
		canon := n.Apply(d.Triple(id))
		for _, s := range d.Providers(id) {
			out.Observe(s, canon)
		}
		if l := d.Label(id); l != triple.Unknown {
			out.SetLabel(canon, l)
		}
	}
	return out
}
