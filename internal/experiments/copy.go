package experiments

import (
	"fmt"
	"io"
	"time"

	"corrfuse/internal/baseline"
	"corrfuse/internal/dataset"
	"corrfuse/internal/quality"
	"corrfuse/internal/triple"
)

// CopyComparison contrasts copy detection (in the spirit of Dong et al.,
// which the paper discusses in §5: on BOOK it "achieves high precision of
// 0.97 as it successfully detects copying … However, it has a low recall of
// 0.82, since it also discounts vote counts on true values and ignores other
// types of correlations") with the paper's correlation model, on two
// regimes: a copying-dominated dataset where both do well, and a
// complementary-source dataset where only PrecRecCorr can help.
func CopyComparison(seed int64) (map[string][]MethodEval, error) {
	out := make(map[string][]MethodEval)

	scenarios := []struct {
		name  string
		build func() (*triple.Dataset, error)
	}{
		{"copying", func() (*triple.Dataset, error) {
			spec := dataset.UniformSpec(5, 2000, 0.5, 0.65, 0.45, seed)
			spec.Groups = []dataset.GroupSpec{
				{Members: []int{0, 1, 2}, OnTrue: true, Strength: 0.85},
				{Members: []int{0, 1, 2}, OnTrue: false, Strength: 0.85},
			}
			return dataset.Generate(spec)
		}},
		{"complementary", func() (*triple.Dataset, error) {
			return dataset.SyntheticCorrelated(seed, true)
		}},
	}

	for _, sc := range scenarios {
		d, err := sc.build()
		if err != nil {
			return nil, err
		}
		ids := providedLabeled(d)
		labels := goldLabels(d, ids)
		alpha := DeriveAlpha(d)
		est, err := quality.NewEstimator(d, quality.Options{Alpha: alpha})
		if err != nil {
			return nil, err
		}

		var evals []MethodEval

		start := time.Now()
		u, err := baseline.NewUnionK(d, 25)
		if err != nil {
			return nil, err
		}
		evals = append(evals, evalRun(u.Name(), u.Score(ids), u.Decisions(ids), labels, time.Since(start)))

		start = time.Now()
		cd := baseline.NewCopyDiscount(est, baseline.CopyDiscountOptions{AcceptThreshold: 0.25})
		evals = append(evals, evalRun(cd.Name(), cd.Score(ids), cd.Decisions(ids), labels, time.Since(start)))

		base, err := EvaluateAll(d, Options{Seed: seed, ExactCorrelation: true,
			SkipLTM: true, SkipThreeEstimates: true})
		if err != nil {
			return nil, err
		}
		for _, e := range base {
			if e.Method == "PrecRec" || e.Method == "PrecRecCorr" {
				evals = append(evals, e)
			}
		}
		out[sc.name] = evals
	}
	return out, nil
}

// PrintCopyComparison writes the copy-detection comparison tables.
func PrintCopyComparison(w io.Writer, seed int64) error {
	res, err := CopyComparison(seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Copy detection vs. correlation model (§5 discussion)")
	for _, name := range []string{"copying", "complementary"} {
		fmt.Fprintf(w, "\n%s sources:\n", name)
		PrintMethodEvals(w, res[name])
	}
	return nil
}
