package experiments

import (
	"fmt"
	"io"

	"corrfuse/internal/core"
	"corrfuse/internal/crowd"
	"corrfuse/internal/dataset"
	"corrfuse/internal/eval"
	"corrfuse/internal/quality"
	"corrfuse/internal/triple"
)

// CrowdRow is one point of the label-noise robustness study.
type CrowdRow struct {
	WorkerAccuracy float64
	// LabelAccuracy is the fraction of crowd labels matching gold.
	LabelAccuracy float64
	// F1 of PrecRec and PrecRecCorr trained on the crowd labels but
	// evaluated against gold.
	PrecRecF1, CorrF1 float64
}

// CrowdRobustness trains the fusion models on crowd-sourced labels of
// decreasing worker quality (redundancy 10, as in the paper's RESTAURANT
// labeling) and evaluates against the gold standard, quantifying how label
// noise propagates into fusion quality. This operationalizes §3.2's reliance
// on crowdsourced training data.
func CrowdRobustness(seed int64) ([]CrowdRow, error) {
	gold, err := dataset.SimulatedRestaurant(seed, 4)
	if err != nil {
		return nil, err
	}
	ids := providedLabeled(gold)
	labels := goldLabels(gold, ids)

	var rows []CrowdRow
	for _, acc := range []float64{0.95, 0.85, 0.75, 0.65, 0.55} {
		res, err := crowd.Label(gold, gold.Labeled(), crowd.Config{
			Workers:          crowd.UniformPool(25, acc-0.05, acc+0.05),
			ResponsesPerTask: 10,
			Seed:             seed,
		})
		if err != nil {
			return nil, err
		}
		correct := 0
		for id, l := range res.Labels {
			if l == gold.Label(id) {
				correct++
			}
		}
		crowdD, train := crowd.Apply(gold, res)

		est, err := quality.NewEstimator(crowdD, quality.Options{
			Alpha: DeriveAlpha(crowdD), Smoothing: 0.5, Train: train,
		})
		if err != nil {
			return nil, err
		}
		// Evaluate against GOLD labels on the same triples (IDs align:
		// Apply preserves the triple universe in order).
		f1 := func(a core.Algorithm) float64 {
			crowdIDs := make([]triple.TripleID, len(ids))
			for i, id := range ids {
				cid, ok := crowdD.TripleID(gold.Triple(id))
				if !ok {
					cid = id
				}
				crowdIDs[i] = cid
			}
			scores := a.Score(crowdIDs)
			return eval.Classify(scores, labels, 0.5).F1()
		}
		pr, err := core.NewPrecRec(core.Config{Dataset: crowdD, Params: est})
		if err != nil {
			return nil, err
		}
		ex, err := core.NewExact(core.Config{Dataset: crowdD, Params: est})
		if err != nil {
			return nil, err
		}
		rows = append(rows, CrowdRow{
			WorkerAccuracy: acc,
			LabelAccuracy:  float64(correct) / float64(len(res.Labels)),
			PrecRecF1:      f1(pr),
			CorrF1:         f1(ex),
		})
	}
	return rows, nil
}

// PrintCrowdRobustness writes the label-noise study as a table.
func PrintCrowdRobustness(w io.Writer, seed int64) error {
	rows, err := CrowdRobustness(seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Crowd-label robustness — restaurant-style data, 10 responses/task")
	fmt.Fprintf(w, "%-16s %14s %12s %14s\n", "Worker accuracy", "Label accuracy", "PrecRec F1", "PrecRecCorr F1")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16.2f %14.3f %12.3f %14.3f\n",
			r.WorkerAccuracy, r.LabelAccuracy, r.PrecRecF1, r.CorrF1)
	}
	return nil
}
