package experiments

import (
	"testing"

	"corrfuse/internal/core"
	"corrfuse/internal/dataset"
	"corrfuse/internal/quality"
	"corrfuse/internal/triple"
)

// paperParams rebuilds the §4 given-parameter set used by Figure 3 and
// Example 4.7 (shared with Fig3 via buildFig3Params below).
func paperParams(t *testing.T, d *triple.Dataset) *quality.Manual {
	t.Helper()
	m := quality.NewManual(0.5)
	type sq struct{ r, q float64 }
	singles := map[string]sq{
		"S1": {2.0 / 3, 0.5}, "S2": {0.5, 2.0 / 3}, "S3": {2.0 / 3, 1.0 / 6},
		"S4": {2.0 / 3, 1.0 / 3}, "S5": {2.0 / 3, 1.0 / 3},
	}
	ids := make(map[string]triple.SourceID)
	for name, v := range singles {
		id, ok := d.SourceID(name)
		if !ok {
			t.Fatalf("source %s missing", name)
		}
		ids[name] = id
		m.SetSource(id, v.r, v.q)
	}
	subset := func(names ...string) []triple.SourceID {
		out := make([]triple.SourceID, len(names))
		for i, n := range names {
			out[i] = ids[n]
		}
		return out
	}
	m.SetJointRecall(subset("S1", "S2", "S3", "S4", "S5"), 0.11)
	m.SetJointFPR(subset("S1", "S2", "S3", "S4", "S5"), 0.037)
	m.SetJointRecall(subset("S2", "S3", "S4", "S5"), 1.0/6)
	m.SetJointFPR(subset("S2", "S3", "S4", "S5"), 0.037)
	m.SetJointRecall(subset("S1", "S3", "S4", "S5"), 0.22)
	m.SetJointFPR(subset("S1", "S3", "S4", "S5"), 0.037/(2.0/3))
	m.SetJointRecall(subset("S1", "S2", "S4", "S5"), 0.22)
	m.SetJointFPR(subset("S1", "S2", "S4", "S5"), 0.22)
	m.SetJointRecall(subset("S1", "S2", "S3", "S5"), 0.11)
	m.SetJointFPR(subset("S1", "S2", "S3", "S5"), 0.037)
	m.SetJointRecall(subset("S1", "S2", "S3", "S4"), 0.11)
	m.SetJointFPR(subset("S1", "S2", "S3", "S4"), 0.037)
	return m
}

// TestExample47 reproduces Example 4.7: with the Figure 3 correlation
// parameters the aggressive approximation computes µ_aggr ≈ 0.3 for t8 and
// Pr(t8|O) ≈ 0.23, correctly classifying t8 as false (and more conservative
// than the exact 0.37 of Example 4.4).
func TestExample47(t *testing.T) {
	d := dataset.Obama()
	m := paperParams(t, d)
	ag, err := core.NewAggressive(core.Config{Dataset: d, Params: m})
	if err != nil {
		t.Fatal(err)
	}
	t8, _ := dataset.ObamaTriple(8)
	id, ok := d.TripleID(t8)
	if !ok {
		t.Fatal("t8 missing")
	}
	mu := ag.Mu(id)
	if mu < 0.25 || mu > 0.35 {
		t.Errorf("µ_aggr(t8) = %.4f, want ≈ 0.3 (paper)", mu)
	}
	p := ag.Probability(id)
	if p < 0.20 || p > 0.27 {
		t.Errorf("Pr(t8) = %.4f, want ≈ 0.23 (paper)", p)
	}
	if p >= 0.5 {
		t.Error("aggressive approximation should classify t8 as false")
	}
}
