package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"corrfuse/internal/dataset"
	"corrfuse/internal/stat"
	"corrfuse/internal/triple"
)

func TestFig1bMatchesPaper(t *testing.T) {
	singles, joints, err := Fig1b()
	if err != nil {
		t.Fatal(err)
	}
	if len(singles) != 5 || len(joints) != 4 {
		t.Fatalf("shape: %d singles, %d joints", len(singles), len(joints))
	}
	// Paper values, rounded as in Figure 1b.
	wantP := []float64{0.57, 0.43, 0.80, 0.67, 0.67}
	for i, row := range singles {
		if !stat.ApproxEqual(row.Precision, wantP[i], 0.01) {
			t.Errorf("precision(%s) = %.3f, want %.2f", row.Source, row.Precision, wantP[i])
		}
	}
	if !stat.ApproxEqual(joints[1].Precision, 1.0, 1e-9) {
		t.Errorf("joint precision S1S3 = %v, want 1", joints[1].Precision)
	}
	if !stat.ApproxEqual(joints[3].Recall, 0.5, 1e-9) {
		t.Errorf("joint recall S1S4S5 = %v, want 0.5", joints[3].Recall)
	}
}

func TestFig1cMatchesPaper(t *testing.T) {
	rows, err := Fig1c()
	if err != nil {
		t.Fatal(err)
	}
	want := []struct{ p, r, f float64 }{
		{0.56, 0.83, 0.67},
		{0.71, 0.83, 0.77},
		{0.60, 0.50, 0.55},
	}
	for i, row := range rows {
		if !stat.ApproxEqual(row.Precision, want[i].p, 0.01) ||
			!stat.ApproxEqual(row.Recall, want[i].r, 0.01) ||
			!stat.ApproxEqual(row.FMeasure, want[i].f, 0.01) {
			t.Errorf("Union-%d = (%.2f, %.2f, %.2f), want (%.2f, %.2f, %.2f)",
				row.K, row.Precision, row.Recall, row.FMeasure, want[i].p, want[i].r, want[i].f)
		}
	}
}

func TestFig3MatchesPaper(t *testing.T) {
	_, cplus, cminus, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	wantPlus := []float64{1, 1, 0.75, 1.5, 1.5}
	wantMinus := []float64{2, 1, 1, 3, 3}
	for i := range wantPlus {
		if !stat.ApproxEqual(cplus[i], wantPlus[i], 0.02) {
			t.Errorf("C+[%d] = %.3f, want %.2f", i, cplus[i], wantPlus[i])
		}
		if !stat.ApproxEqual(cminus[i], wantMinus[i], 0.02) {
			t.Errorf("C-[%d] = %.3f, want %.2f", i, cminus[i], wantMinus[i])
		}
	}
}

// TestFig4Shape asserts the qualitative findings of Figure 4 on each
// simulated dataset: PrecRecCorr has the best F-measure among all methods
// (or ties the best within a small margin), and 3-Estimates is the weakest
// of the non-voting methods.
func TestFig4Shape(t *testing.T) {
	for _, name := range []string{"reverb", "restaurant", "book"} {
		evals, err := Fig4(name, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		byName := map[string]MethodEval{}
		bestF1 := 0.0
		for _, e := range evals {
			byName[e.Method] = e
			if e.Metrics.F1() > bestF1 {
				bestF1 = e.Metrics.F1()
			}
		}
		corr := byName["PrecRecCorr"]
		if corr.Metrics.F1() < bestF1-0.02 {
			t.Errorf("%s: PrecRecCorr F1 %.3f not within 0.02 of best %.3f",
				name, corr.Metrics.F1(), bestF1)
		}
		if corr.Metrics.F1() < byName["3-Estimates"].Metrics.F1() {
			t.Errorf("%s: PrecRecCorr below 3-Estimates", name)
		}
		// Correlation awareness should not hurt the ranking quality much
		// and usually helps (paper: AUC-PR +10.3%% on average).
		pr := byName["PrecRec"]
		if corr.AUCROC < pr.AUCROC-0.05 {
			t.Errorf("%s: PrecRecCorr AUC-ROC %.3f well below PrecRec %.3f",
				name, corr.AUCROC, pr.AUCROC)
		}
	}
}

// TestFig5aShape: the aggressive estimate is the worst of the elastic
// family, and deeper levels approach the exact reference.
func TestFig5aShape(t *testing.T) {
	res, err := Fig5a("reverb", 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ExactRef {
		t.Fatal("reverb should have an exact reference")
	}
	last := res.ByLevel[len(res.ByLevel)-1]
	if res.Aggressive > last {
		t.Errorf("aggressive %.3f should not beat level-%d %.3f",
			res.Aggressive, len(res.ByLevel)-1, last)
	}
	gapLast := abs(last - res.Reference)
	gapAggr := abs(res.Aggressive - res.Reference)
	if gapLast > gapAggr {
		t.Errorf("deep level gap %.3f should be <= aggressive gap %.3f", gapLast, gapAggr)
	}
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// TestFig7Shape: PrecRecCorr benefits from modeling correlation in both
// scenarios.
func TestFig7Shape(t *testing.T) {
	res, err := Fig7(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for scenario, pts := range res {
		f1 := pts[0].F1
		if f1["PrecRecCorr"] < f1["PrecRec"]-1e-9 {
			t.Errorf("%s: PrecRecCorr %.3f below PrecRec %.3f",
				scenario, f1["PrecRecCorr"], f1["PrecRec"])
		}
	}
	corr := res["correlation"][0].F1
	for m, v := range corr {
		if m == "PrecRecCorr" {
			continue
		}
		if corr["PrecRecCorr"] < v {
			t.Errorf("correlation scenario: PrecRecCorr %.3f below %s %.3f",
				corr["PrecRecCorr"], m, v)
		}
	}
}

// TestRunSweepSmoke runs a minimal Figure-6-style sweep.
func TestRunSweepSmoke(t *testing.T) {
	cfg := SweepConfig{
		TrueFraction: 0.5,
		Points:       [][2]float64{{0.75, 0.375}},
		Reps:         2,
		Seed:         1,
	}
	points, err := RunSweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 1 {
		t.Fatalf("points = %d", len(points))
	}
	if len(points[0].F1) < 6 {
		t.Errorf("methods = %d, want the full suite", len(points[0].F1))
	}
	for m, v := range points[0].F1 {
		if v < 0 || v > 1 {
			t.Errorf("%s F1 = %v out of range", m, v)
		}
	}
	// In this easy regime the paper's methods beat raw 3-Estimates.
	if points[0].F1["PrecRec"] < points[0].F1["3-Estimates"] {
		t.Error("PrecRec should beat 3-Estimates at p=0.75")
	}
}

func TestPrintersProduceOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := PrintFig1b(&buf); err != nil {
		t.Fatal(err)
	}
	if err := PrintFig1c(&buf); err != nil {
		t.Fatal(err)
	}
	if err := PrintFig3(&buf); err != nil {
		t.Fatal(err)
	}
	if err := PrintFig4(&buf, "restaurant", 1); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 1b", "Figure 1c", "Figure 3", "Figure 4", "PrecRecCorr"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestDatasetByName(t *testing.T) {
	for _, name := range []string{"reverb", "ReVerb", "BOOK", "Restaurant"} {
		if _, err := DatasetByName(name); err != nil {
			t.Errorf("DatasetByName(%q): %v", name, err)
		}
	}
	if _, err := DatasetByName("imaginary"); err == nil {
		t.Error("unknown dataset should fail")
	}
}

func TestDeriveAlpha(t *testing.T) {
	d := dataset.Obama()
	if got := DeriveAlpha(d); !stat.ApproxEqual(got, 0.6, 1e-9) {
		t.Errorf("DeriveAlpha(obama) = %v, want 0.6", got)
	}
	unlabeled := triple.NewDataset()
	s := unlabeled.AddSource("A")
	unlabeled.Observe(s, triple.Triple{Subject: "e", Predicate: "p", Object: "v"})
	if got := DeriveAlpha(unlabeled); got != 0.5 {
		t.Errorf("DeriveAlpha(no labels) = %v, want 0.5", got)
	}
}

// TestCrowdRobustnessShape: accurate workers reproduce near-gold fusion
// quality; fusion quality degrades monotonically-ish as workers approach
// coin flips.
func TestCrowdRobustnessShape(t *testing.T) {
	rows, err := CrowdRobustness(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.LabelAccuracy < 0.95 {
		t.Errorf("accurate workers should label near-perfectly, got %v", first.LabelAccuracy)
	}
	if last.LabelAccuracy >= first.LabelAccuracy {
		t.Error("noisy workers should label worse")
	}
	if first.CorrF1 < 0.9 {
		t.Errorf("fusion on near-gold labels should be strong, got %v", first.CorrF1)
	}
	if last.CorrF1 >= first.CorrF1 {
		t.Error("fusion quality should degrade with label noise")
	}
}

func TestWriteCurves(t *testing.T) {
	evals, err := Fig4("restaurant", 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteCurves(dir, "Restaurant", evals); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2*len(evals) {
		t.Fatalf("wrote %d files, want %d", len(entries), 2*len(evals))
	}
	raw, err := os.ReadFile(filepath.Join(dir, "restaurant-precreccorr-roc.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 2 {
		t.Fatal("curve too short")
	}
	for _, l := range lines {
		if !strings.Contains(l, "\t") {
			t.Fatalf("malformed line %q", l)
		}
	}
}
