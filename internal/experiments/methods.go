// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 5): the Figure 1 analysis of the running example, the
// Figure 4 comparisons on the three (simulated) real-world datasets, the
// Figure 5 elastic-approximation and runtime studies, and the Figure 6/7
// synthetic sweeps. Each experiment has a Run function returning structured
// results and a Print function emitting the paper-style table.
package experiments

import (
	"fmt"
	"time"

	"corrfuse/internal/baseline"
	"corrfuse/internal/cluster"
	"corrfuse/internal/core"
	"corrfuse/internal/eval"
	"corrfuse/internal/quality"
	"corrfuse/internal/triple"
)

// Options configures an evaluation run.
type Options struct {
	// Alpha is the a-priori truth probability. When 0 it is derived from
	// the gold standard as the fraction of true triples (§3.1: "the
	// a-priori probability α can be derived from a training set"), which
	// keeps the Theorem 3.5 FPR derivation consistent with the data: with
	// a fixed α = 0.5, every source whose precision is below 0.5 would be
	// treated as anti-indicative (Theorem 3.5's p > α condition).
	Alpha float64
	// Seed drives LTM's Gibbs sampler (default 1).
	Seed int64
	// LTMIterations (default 10, matching "LTM (10 iter)").
	LTMIterations int
	// ExactCorrelation selects the exact inclusion–exclusion for
	// PrecRecCorr; when false, the elastic approximation at ElasticLevel
	// is used instead (needed for BOOK-scale data; the paper reports
	// level 3 is nearly identical to exact).
	ExactCorrelation bool
	// ElasticLevel for the approximate PrecRecCorr (default 3).
	ElasticLevel int
	// ClusterSources partitions sources by pairwise correlation before
	// the correlation-aware methods run (the paper's device for BOOK).
	ClusterSources bool
	// MaxClusterSize caps correlation clusters (default 22).
	MaxClusterSize int
	// SkipLTM and SkipThreeEstimates drop the slow baselines (useful in
	// benchmarks that only target the paper's methods).
	SkipLTM, SkipThreeEstimates bool
	// SubjectScope holds sources accountable only for triples whose
	// subject they cover (the natural semantics for many narrow sources,
	// e.g. booksellers). When false, every source is in scope for every
	// triple.
	SubjectScope bool
	// Smoothing is the add-k constant for the quality counts (useful for
	// datasets with very sparse sources; 0 = raw counts).
	Smoothing float64
	// MinJointSupport regularizes joint statistics: source combinations
	// with fewer backing training triples are treated as independent.
	MinJointSupport int
}

func (o *Options) normalize() {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.LTMIterations == 0 {
		o.LTMIterations = 10
	}
	if o.ElasticLevel == 0 {
		o.ElasticLevel = 3
	}
	if o.MaxClusterSize == 0 {
		o.MaxClusterSize = 22
	}
}

// MethodEval is the evaluation of one method on one dataset: the binary
// metrics of Figure 4's bar charts, the curve areas, and the wall-clock time
// of Figure 5b.
type MethodEval struct {
	Method  string
	Metrics eval.BinaryMetrics
	AUCPR   float64
	AUCROC  float64
	Elapsed time.Duration
	// Scores and Labels allow callers to re-plot the PR/ROC curves.
	Scores []float64
	Labels []bool
}

// EvaluateAll runs the Section 5 method suite — Union-25/50/75, 3-Estimates,
// LTM, PrecRec, PrecRecCorr — on the gold-labeled triples of d that at least
// one source provides, and returns one MethodEval per method in the paper's
// ordering.
func EvaluateAll(d *triple.Dataset, opts Options) ([]MethodEval, error) {
	opts.normalize()
	ids := providedLabeled(d)
	if len(ids) == 0 {
		return nil, fmt.Errorf("experiments: dataset has no provided labeled triples")
	}
	labels := goldLabels(d, ids)
	if opts.Alpha == 0 {
		opts.Alpha = DeriveAlpha(d)
	}
	var scope triple.Scope = triple.ScopeGlobal{}
	if opts.SubjectScope {
		scope = triple.NewScopeSubject(d)
	}

	var out []MethodEval

	for _, k := range []int{25, 50, 75} {
		start := time.Now()
		u, err := baseline.NewUnionKScoped(d, k, scope)
		if err != nil {
			return nil, err
		}
		scores := u.Score(ids)
		decisions := u.Decisions(ids)
		out = append(out, evalRun(u.Name(), scores, decisions, labels, time.Since(start)))
	}

	if !opts.SkipThreeEstimates {
		start := time.Now()
		te := baseline.NewThreeEstimates(d, baseline.ThreeEstimatesOptions{Scope: scope})
		scores := te.Score(ids)
		out = append(out, evalRun(te.Name(), scores, threshold(scores, 0.5), labels, time.Since(start)))
	}

	if !opts.SkipLTM {
		start := time.Now()
		ltm := baseline.NewLTM(d, baseline.LTMOptions{Iterations: opts.LTMIterations, Seed: opts.Seed, Scope: scope})
		scores := ltm.Score(ids)
		out = append(out, evalRun(ltm.Name(), scores, threshold(scores, 0.5), labels, time.Since(start)))
	}

	// Supervised methods share one estimator (quality from gold standard,
	// as in §5 "PRECREC … computed source precision and recall according
	// to the gold standard").
	est, err := quality.NewEstimator(d, quality.Options{Alpha: opts.Alpha, Scope: scope,
		Smoothing: opts.Smoothing, MinJointSupport: opts.MinJointSupport})
	if err != nil {
		return nil, err
	}

	start := time.Now()
	pr, err := core.NewPrecRec(core.Config{Dataset: d, Params: est, Scope: scope})
	if err != nil {
		return nil, err
	}
	scores := pr.Score(ids)
	out = append(out, evalRun(pr.Name(), scores, threshold(scores, 0.5), labels, time.Since(start)))

	start = time.Now()
	corr, err := buildCorr(d, est, scope, opts)
	if err != nil {
		return nil, err
	}
	scores = corr.Score(ids)
	ev := evalRun("PrecRecCorr", scores, threshold(scores, 0.5), labels, time.Since(start))
	out = append(out, ev)

	return out, nil
}

// buildCorr constructs the correlation-aware scorer per the options.
func buildCorr(d *triple.Dataset, est *quality.Estimator, scope triple.Scope, opts Options) (core.Algorithm, error) {
	cfg := core.Config{Dataset: d, Params: est, Scope: scope}
	if opts.ClusterSources {
		cfg.Clusters = cluster.Cluster(est, cluster.Options{MaxClusterSize: opts.MaxClusterSize})
	}
	if opts.ExactCorrelation {
		return core.NewExact(cfg)
	}
	return core.NewElastic(cfg, opts.ElasticLevel)
}

// evalRun assembles a MethodEval from scores and binary decisions.
func evalRun(name string, scores []float64, decisions []bool, labels []bool, elapsed time.Duration) MethodEval {
	var m eval.BinaryMetrics
	for i, dec := range decisions {
		switch {
		case dec && labels[i]:
			m.TP++
		case dec && !labels[i]:
			m.FP++
		case !dec && labels[i]:
			m.FN++
		default:
			m.TN++
		}
	}
	return MethodEval{
		Method:  name,
		Metrics: m,
		AUCPR:   eval.AUCPR(scores, labels),
		AUCROC:  eval.AUCROC(scores, labels),
		Elapsed: elapsed,
		Scores:  scores,
		Labels:  labels,
	}
}

// DeriveAlpha estimates the a-priori truth probability from the gold
// standard: the fraction of labeled triples that are true, clamped away from
// the extremes.
func DeriveAlpha(d *triple.Dataset) float64 {
	nt, nf := d.CountLabels()
	if nt+nf == 0 {
		return 0.5
	}
	a := float64(nt) / float64(nt+nf)
	if a < 0.05 {
		a = 0.05
	}
	if a > 0.95 {
		a = 0.95
	}
	return a
}

// threshold converts scores into accept decisions (score > th).
func threshold(scores []float64, th float64) []bool {
	out := make([]bool, len(scores))
	for i, s := range scores {
		out[i] = s > th
	}
	return out
}

// providedLabeled lists gold triples with at least one provider.
func providedLabeled(d *triple.Dataset) []triple.TripleID {
	var out []triple.TripleID
	for _, id := range d.Labeled() {
		if len(d.Providers(id)) > 0 {
			out = append(out, id)
		}
	}
	return out
}

// goldLabels converts gold labels into booleans.
func goldLabels(d *triple.Dataset, ids []triple.TripleID) []bool {
	out := make([]bool, len(ids))
	for i, id := range ids {
		out[i] = d.Label(id) == triple.True
	}
	return out
}
