package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"corrfuse/internal/eval"
)

// WriteCurves exports the PR and ROC curves of each evaluated method as TSV
// files (x<TAB>y per line) into dir, named <dataset>-<method>-{pr,roc}.tsv —
// the series from which Figure 4's curves are re-plotted.
func WriteCurves(dir, datasetName string, evals []MethodEval) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	for _, e := range evals {
		pr, roc := CurvePoints(e)
		for _, c := range []struct {
			kind   string
			points []eval.Point
		}{{"pr", pr}, {"roc", roc}} {
			name := fmt.Sprintf("%s-%s-%s.tsv", slug(datasetName), slug(e.Method), c.kind)
			if err := writeTSV(filepath.Join(dir, name), c.points); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeTSV(path string, points []eval.Point) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	for _, p := range points {
		if _, err := fmt.Fprintf(f, "%.6f\t%.6f\n", p.X, p.Y); err != nil {
			//lint:ignore errswallow cleanup on the error path; the Fprintf error is returned
			f.Close()
			return fmt.Errorf("experiments: %w", err)
		}
	}
	return f.Close()
}

func slug(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return strings.Trim(b.String(), "-")
}
