package experiments

import (
	"fmt"
	"io"
	"sort"
	"time"

	"corrfuse/internal/baseline"
	"corrfuse/internal/cluster"
	"corrfuse/internal/core"
	"corrfuse/internal/dataset"
	"corrfuse/internal/eval"
	"corrfuse/internal/quality"
	"corrfuse/internal/triple"
)

// DatasetBuilder names a dataset generator for the Figure 4/5 experiments.
type DatasetBuilder struct {
	Name  string
	Build func(seed int64) (*triple.Dataset, error)
	// Exact reports whether the exact correlation model is used for
	// PrecRecCorr; when false the elastic level-3 approximation runs
	// instead.
	Exact bool
	// Cluster partitions sources by pairwise correlation first, the
	// paper's device for the many-source BOOK dataset.
	Cluster bool
	// SubjectScope selects subject-level accountability (used for BOOK,
	// where a seller says nothing about books it does not list).
	SubjectScope bool
	// Smoothing is the add-k quality smoothing for sparse sources.
	Smoothing float64
	// MinJointSupport regularizes the joint statistics of rare source
	// combinations toward independence.
	MinJointSupport int
	// MaxClusterSize caps correlation clusters (0 = default). Narrow
	// clusters keep the within-cluster inclusion–exclusion estimates
	// well-supported on sparse many-source data.
	MaxClusterSize int
}

// Datasets returns the three simulated real-world datasets in the paper's
// order.
func Datasets() []DatasetBuilder {
	return []DatasetBuilder{
		{Name: "ReVerb", Build: dataset.SimulatedReVerb, Exact: true},
		{Name: "Restaurant", Build: func(seed int64) (*triple.Dataset, error) {
			return dataset.SimulatedRestaurant(seed, 1)
		}, Exact: true},
		{Name: "Book", Build: dataset.SimulatedBook, Exact: true, Cluster: true,
			SubjectScope: true, Smoothing: 0.5, MinJointSupport: 3, MaxClusterSize: 6},
	}
}

// DatasetByName resolves one of "reverb", "restaurant", "book".
func DatasetByName(name string) (DatasetBuilder, error) {
	for _, b := range Datasets() {
		if equalsFold(b.Name, name) {
			return b, nil
		}
	}
	return DatasetBuilder{}, fmt.Errorf("experiments: unknown dataset %q", name)
}

func equalsFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Figure 1b — source and joint quality of the running example.

// SourceQualityRow is one line of Figure 1b's left table.
type SourceQualityRow struct {
	Source            string
	Precision, Recall float64
}

// JointQualityRow is one line of Figure 1b's right table.
type JointQualityRow struct {
	Sources           []string
	Precision, Recall float64
}

// Fig1b recomputes Figure 1b from the reconstructed Obama dataset.
func Fig1b() ([]SourceQualityRow, []JointQualityRow, error) {
	d := dataset.Obama()
	est, err := quality.NewEstimator(d, quality.Options{Alpha: 0.5})
	if err != nil {
		return nil, nil, err
	}
	var singles []SourceQualityRow
	for _, s := range d.Sources() {
		singles = append(singles, SourceQualityRow{
			Source:    s.Name,
			Precision: est.Precision(s.ID),
			Recall:    est.Recall(s.ID),
		})
	}
	combos := [][]string{{"S2", "S3"}, {"S1", "S3"}, {"S1", "S2", "S4"}, {"S1", "S4", "S5"}}
	var joints []JointQualityRow
	for _, names := range combos {
		subset := make([]triple.SourceID, len(names))
		for i, n := range names {
			id, ok := d.SourceID(n)
			if !ok {
				return nil, nil, fmt.Errorf("experiments: source %s missing", n)
			}
			subset[i] = id
		}
		p, _ := est.JointPrecision(subset)
		r, _ := est.JointRecall(subset)
		joints = append(joints, JointQualityRow{Sources: names, Precision: p, Recall: r})
	}
	return singles, joints, nil
}

// PrintFig1b writes Figure 1b as text tables.
func PrintFig1b(w io.Writer) error {
	singles, joints, err := Fig1b()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 1b — extractor quality (Obama example)")
	fmt.Fprintf(w, "%-8s %9s %9s\n", "Source", "Precision", "Recall")
	for _, r := range singles {
		fmt.Fprintf(w, "%-8s %9.2f %9.2f\n", r.Source, r.Precision, r.Recall)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %10s %10s\n", "Sources", "Joint prec", "Joint rec")
	for _, r := range joints {
		name := ""
		for _, s := range r.Sources {
			name += s
		}
		fmt.Fprintf(w, "%-12s %10.2f %10.2f\n", name, r.Precision, r.Recall)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Figure 1c — Union-K on the running example.

// UnionRow is one line of Figure 1c.
type UnionRow struct {
	K                           int
	Precision, Recall, FMeasure float64
}

// Fig1c recomputes Figure 1c: Union-25/50/75 on the Obama example.
func Fig1c() ([]UnionRow, error) {
	d := dataset.Obama()
	ids := providedLabeled(d)
	labels := goldLabels(d, ids)
	var rows []UnionRow
	for _, k := range []int{25, 50, 75} {
		u, err := baseline.NewUnionK(d, k)
		if err != nil {
			return nil, err
		}
		me := evalRun(u.Name(), u.Score(ids), u.Decisions(ids), labels, 0)
		rows = append(rows, UnionRow{
			K:         k,
			Precision: me.Metrics.Precision(),
			Recall:    me.Metrics.Recall(),
			FMeasure:  me.Metrics.F1(),
		})
	}
	return rows, nil
}

// PrintFig1c writes Figure 1c as a text table.
func PrintFig1c(w io.Writer) error {
	rows, err := Fig1c()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 1c — naive voting on the Obama example")
	fmt.Fprintf(w, "%-10s %9s %9s %9s\n", "Method", "Precision", "Recall", "F-measure")
	for _, r := range rows {
		fmt.Fprintf(w, "Union-%-4d %9.2f %9.2f %9.2f\n", r.K, r.Precision, r.Recall, r.FMeasure)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Figure 3 — aggressive correlation parameters of the running example.

// Fig3 recomputes the C⁺/C⁻ factors of the aggressive approximation for the
// five Obama extractors, using the joint parameters the paper gives in
// Section 4 (r12345 = 0.11, q12345 = 0.037 and the leave-one-out joints they
// imply). The factors cannot be counted empirically on this example: no
// triple is provided by all five extractors, so the counted all-source joint
// recall is 0 — exactly the degenerate case of Proposition 4.8, in which our
// estimator falls back to the independence value 1.
func Fig3() (sources []string, cplus, cminus []float64, err error) {
	d := dataset.Obama()
	m := quality.NewManual(0.5)
	type sq struct{ r, q float64 }
	singles := map[string]sq{
		"S1": {2.0 / 3, 0.5}, "S2": {0.5, 2.0 / 3}, "S3": {2.0 / 3, 1.0 / 6},
		"S4": {2.0 / 3, 1.0 / 3}, "S5": {2.0 / 3, 1.0 / 3},
	}
	ids := make(map[string]triple.SourceID, len(singles))
	for name, v := range singles {
		id, ok := d.SourceID(name)
		if !ok {
			return nil, nil, nil, fmt.Errorf("experiments: source %s missing", name)
		}
		ids[name] = id
		m.SetSource(id, v.r, v.q)
	}
	subset := func(names ...string) []triple.SourceID {
		out := make([]triple.SourceID, len(names))
		for i, n := range names {
			out[i] = ids[n]
		}
		return out
	}
	// Paper-given joint parameters (Example 4.4 and Figure 3).
	m.SetJointRecall(subset("S1", "S2", "S3", "S4", "S5"), 0.11)
	m.SetJointFPR(subset("S1", "S2", "S3", "S4", "S5"), 0.037)
	m.SetJointRecall(subset("S2", "S3", "S4", "S5"), 1.0/6)
	m.SetJointFPR(subset("S2", "S3", "S4", "S5"), 0.037)
	m.SetJointRecall(subset("S1", "S3", "S4", "S5"), 0.22)
	m.SetJointFPR(subset("S1", "S3", "S4", "S5"), 0.037/(2.0/3))
	m.SetJointRecall(subset("S1", "S2", "S4", "S5"), 0.22)
	m.SetJointFPR(subset("S1", "S2", "S4", "S5"), 0.22)
	m.SetJointRecall(subset("S1", "S2", "S3", "S5"), 0.11)
	m.SetJointFPR(subset("S1", "S2", "S3", "S5"), 0.037)
	m.SetJointRecall(subset("S1", "S2", "S3", "S4"), 0.11)
	m.SetJointFPR(subset("S1", "S2", "S3", "S4"), 0.037)

	group := make([]triple.SourceID, d.NumSources())
	for i := range group {
		group[i] = triple.SourceID(i)
		sources = append(sources, d.SourceName(group[i]))
	}
	cplus, cminus = quality.AggressiveFactors(m, group)
	return sources, cplus, cminus, nil
}

// PrintFig3 writes Figure 3 as a text table.
func PrintFig3(w io.Writer) error {
	sources, cplus, cminus, err := Fig3()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 3 — aggressive-approximation correlation parameters")
	fmt.Fprintf(w, "%-4s", "")
	for _, s := range sources {
		fmt.Fprintf(w, " %8s", s)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-4s", "C+")
	for _, v := range cplus {
		fmt.Fprintf(w, " %8.2f", v)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-4s", "C-")
	for _, v := range cminus {
		fmt.Fprintf(w, " %8.2f", v)
	}
	fmt.Fprintln(w)
	return nil
}

// ---------------------------------------------------------------------------
// Figure 4 — method comparison on the three (simulated) datasets.

// Fig4 runs the full method suite on the named dataset ("reverb",
// "restaurant" or "book").
func Fig4(name string, seed int64) ([]MethodEval, error) {
	b, err := DatasetByName(name)
	if err != nil {
		return nil, err
	}
	d, err := b.Build(seed)
	if err != nil {
		return nil, err
	}
	opts := Options{Seed: seed, ExactCorrelation: b.Exact, ClusterSources: b.Cluster,
		SubjectScope: b.SubjectScope, Smoothing: b.Smoothing,
		MinJointSupport: b.MinJointSupport, MaxClusterSize: b.MaxClusterSize}
	return EvaluateAll(d, opts)
}

// PrintFig4 writes the Figure 4 tables (bars + curve areas) for a dataset.
func PrintFig4(w io.Writer, name string, seed int64) error {
	evals, err := Fig4(name, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Figure 4 — fusion results on %s (simulated, seed %d)\n", name, seed)
	PrintMethodEvals(w, evals)
	return nil
}

// PrintMethodEvals writes a method comparison table.
func PrintMethodEvals(w io.Writer, evals []MethodEval) {
	fmt.Fprintf(w, "%-18s %9s %9s %9s %8s %8s %12s\n",
		"Method", "Precision", "Recall", "F1", "AUC-PR", "AUC-ROC", "Time")
	for _, e := range evals {
		fmt.Fprintf(w, "%-18s %9.3f %9.3f %9.3f %8.3f %8.3f %12s\n",
			e.Method, e.Metrics.Precision(), e.Metrics.Recall(), e.Metrics.F1(),
			e.AUCPR, e.AUCROC, e.Elapsed.Round(time.Millisecond))
	}
}

// CurvePoints returns the PR and ROC curves for a completed evaluation, for
// callers that want to re-plot Figure 4's curves.
func CurvePoints(me MethodEval) (pr, roc []eval.Point) {
	return eval.PRCurve(me.Scores, me.Labels), eval.ROCCurve(me.Scores, me.Labels)
}

// ---------------------------------------------------------------------------
// Figure 5a — elastic approximation levels.

// ElasticLevelResult is the F-measure trajectory of the elastic
// approximation on one dataset, from the aggressive estimate to the
// reference (exact where feasible, deepest level otherwise).
type ElasticLevelResult struct {
	Dataset    string
	Aggressive float64
	ByLevel    []float64 // F-measure at λ = 0, 1, 2, …
	Reference  float64   // exact F-measure (or deepest level for BOOK)
	ExactRef   bool
}

// Fig5a sweeps elastic levels 0..maxLevel on the named dataset.
func Fig5a(name string, seed int64, maxLevel int) (*ElasticLevelResult, error) {
	b, err := DatasetByName(name)
	if err != nil {
		return nil, err
	}
	d, err := b.Build(seed)
	if err != nil {
		return nil, err
	}
	var scope triple.Scope = triple.ScopeGlobal{}
	if b.SubjectScope {
		scope = triple.NewScopeSubject(d)
	}
	est, err := quality.NewEstimator(d, quality.Options{Alpha: DeriveAlpha(d), Scope: scope,
		Smoothing: b.Smoothing, MinJointSupport: b.MinJointSupport})
	if err != nil {
		return nil, err
	}
	ids := providedLabeled(d)
	labels := goldLabels(d, ids)
	cfg := core.Config{Dataset: d, Params: est, Scope: scope}
	if b.Cluster {
		cfg.Clusters = cluster.Cluster(est, cluster.Options{MaxClusterSize: b.MaxClusterSize})
	}

	f1 := func(a core.Algorithm) float64 {
		scores := a.Score(ids)
		return eval.Classify(scores, labels, 0.5).F1()
	}

	res := &ElasticLevelResult{Dataset: b.Name}
	ag, err := core.NewAggressive(cfg)
	if err != nil {
		return nil, err
	}
	res.Aggressive = f1(ag)
	for l := 0; l <= maxLevel; l++ {
		el, err := core.NewElastic(cfg, l)
		if err != nil {
			return nil, err
		}
		res.ByLevel = append(res.ByLevel, f1(el))
	}
	if b.Exact {
		ex, err := core.NewExact(cfg)
		if err != nil {
			return nil, err
		}
		res.Reference = f1(ex)
		res.ExactRef = true
	} else if len(res.ByLevel) > 0 {
		res.Reference = res.ByLevel[len(res.ByLevel)-1]
	}
	return res, nil
}

// PrintFig5a writes the level sweep for all three datasets.
func PrintFig5a(w io.Writer, seed int64, maxLevel int) error {
	fmt.Fprintln(w, "Figure 5a — elastic approximation levels (F-measure)")
	fmt.Fprintf(w, "%-12s %10s", "Dataset", "aggressive")
	for l := 0; l <= maxLevel; l++ {
		fmt.Fprintf(w, " %7s", fmt.Sprintf("lvl-%d", l))
	}
	fmt.Fprintf(w, " %8s\n", "exact")
	for _, name := range []string{"reverb", "restaurant", "book"} {
		res, err := Fig5a(name, seed, maxLevel)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-12s %10.3f", res.Dataset, res.Aggressive)
		for _, v := range res.ByLevel {
			fmt.Fprintf(w, " %7.3f", v)
		}
		mark := ""
		if !res.ExactRef {
			mark = "*"
		}
		fmt.Fprintf(w, " %7.3f%s\n", res.Reference, mark)
	}
	fmt.Fprintln(w, "(* deepest computed level; exact is infeasible at this width)")
	return nil
}

// ---------------------------------------------------------------------------
// Figure 5b — runtime comparison.

// Fig5b measures wall-clock runtimes of every method on every dataset and
// returns rows keyed by method name, matching the layout of Figure 5b.
func Fig5b(seed int64) (methods []string, columns []string, cells map[string]map[string]time.Duration, err error) {
	cells = make(map[string]map[string]time.Duration)
	for _, b := range Datasets() {
		columns = append(columns, b.Name)
		d, err := b.Build(seed)
		if err != nil {
			return nil, nil, nil, err
		}
		evals, err := EvaluateAll(d, Options{Seed: seed, ExactCorrelation: b.Exact, ClusterSources: b.Cluster,
			SubjectScope: b.SubjectScope, Smoothing: b.Smoothing,
			MinJointSupport: b.MinJointSupport, MaxClusterSize: b.MaxClusterSize})
		if err != nil {
			return nil, nil, nil, err
		}
		for _, e := range evals {
			if cells[e.Method] == nil {
				cells[e.Method] = make(map[string]time.Duration)
				methods = append(methods, e.Method)
			}
			cells[e.Method][b.Name] = e.Elapsed
		}
	}
	return methods, columns, cells, nil
}

// PrintFig5b writes the runtime table.
func PrintFig5b(w io.Writer, seed int64) error {
	methods, columns, cells, err := Fig5b(seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 5b — runtimes")
	fmt.Fprintf(w, "%-18s", "Method")
	for _, c := range columns {
		fmt.Fprintf(w, " %12s", c)
	}
	fmt.Fprintln(w)
	for _, m := range methods {
		fmt.Fprintf(w, "%-18s", m)
		for _, c := range columns {
			fmt.Fprintf(w, " %12s", cells[m][c].Round(time.Millisecond))
		}
		fmt.Fprintln(w)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Figure 6 — synthetic sweeps with independent sources.

// SweepPoint is the F-measure of every method at one sweep coordinate,
// averaged over repetitions.
type SweepPoint struct {
	Label string
	F1    map[string]float64
}

// SweepConfig describes one Figure 6 panel.
type SweepConfig struct {
	// TrueFraction of the 1000-triple dataset.
	TrueFraction float64
	// Points are (precision, recall) coordinates of the sweep.
	Points [][2]float64
	// Reps is the number of random repetitions averaged (paper: 10).
	Reps int
	Seed int64
}

// Fig6a returns the paper's panel (a): low precision p=0.1, recall swept,
// 25% true triples.
func Fig6a() SweepConfig {
	return SweepConfig{
		TrueFraction: 0.25,
		Points: [][2]float64{
			{0.1, 0.025}, {0.1, 0.075}, {0.1, 0.125}, {0.1, 0.175}, {0.1, 0.225},
		},
		Reps: 10,
		Seed: 1,
	}
}

// Fig6b returns panel (b): high precision p=0.75, recall swept, 50% true.
func Fig6b() SweepConfig {
	return SweepConfig{
		TrueFraction: 0.5,
		Points: [][2]float64{
			{0.75, 0.075}, {0.75, 0.225}, {0.75, 0.375}, {0.75, 0.525}, {0.75, 0.675},
		},
		Reps: 10,
		Seed: 2,
	}
}

// Fig6c returns panel (c): low recall r=0.25, precision swept, 25% true.
func Fig6c() SweepConfig {
	return SweepConfig{
		TrueFraction: 0.25,
		Points: [][2]float64{
			{0.1, 0.25}, {0.3, 0.25}, {0.5, 0.25}, {0.7, 0.25}, {0.9, 0.25},
		},
		Reps: 10,
		Seed: 3,
	}
}

// RunSweep executes a Figure 6 sweep: 5 independent sources over 1000
// triples per the panel config, averaging method F-measures over Reps
// repetitions.
func RunSweep(cfg SweepConfig) ([]SweepPoint, error) {
	var out []SweepPoint
	for pi, pt := range cfg.Points {
		prec, rec := pt[0], pt[1]
		sums := make(map[string]float64)
		var names []string
		for rep := 0; rep < cfg.Reps; rep++ {
			seed := cfg.Seed + int64(pi*1000+rep)
			spec := dataset.UniformSpec(5, 1000, cfg.TrueFraction, prec, rec, seed)
			d, err := dataset.Generate(spec)
			if err != nil {
				return nil, err
			}
			evals, err := EvaluateAll(d, Options{Seed: seed, ExactCorrelation: true, LTMIterations: 10})
			if err != nil {
				return nil, err
			}
			for _, e := range evals {
				if _, seen := sums[e.Method]; !seen && rep == 0 {
					names = append(names, e.Method)
				}
				sums[e.Method] += e.Metrics.F1()
			}
		}
		point := SweepPoint{
			Label: fmt.Sprintf("p=%.2g r=%.3g", prec, rec),
			F1:    make(map[string]float64, len(sums)),
		}
		for _, n := range names {
			point.F1[n] = sums[n] / float64(cfg.Reps)
		}
		out = append(out, point)
	}
	return out, nil
}

// PrintSweep writes a Figure 6 panel as a table: one row per method, one
// column per sweep coordinate.
func PrintSweep(w io.Writer, title string, points []SweepPoint) {
	fmt.Fprintln(w, title)
	var methods []string
	for m := range points[0].F1 {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	fmt.Fprintf(w, "%-18s", "Method \\ config")
	for _, p := range points {
		fmt.Fprintf(w, " %16s", p.Label)
	}
	fmt.Fprintln(w)
	for _, m := range methods {
		fmt.Fprintf(w, "%-18s", m)
		for _, p := range points {
			fmt.Fprintf(w, " %16.3f", p.F1[m])
		}
		fmt.Fprintln(w)
	}
}

// ---------------------------------------------------------------------------
// Figure 7 — synthetic correlated sources.

// Fig7 evaluates all methods on the two correlated-synthetic scenarios:
// positive correlation on true triples, and anti-correlation on false
// triples. It returns the per-scenario evaluations.
func Fig7(seed int64, reps int) (map[string][]SweepPoint, error) {
	if reps <= 0 {
		reps = 5
	}
	out := make(map[string][]SweepPoint)
	for _, scenario := range []struct {
		name string
		anti bool
	}{{"correlation", false}, {"anti-correlation", true}} {
		sums := make(map[string]float64)
		var names []string
		for rep := 0; rep < reps; rep++ {
			d, err := dataset.SyntheticCorrelated(seed+int64(rep), scenario.anti)
			if err != nil {
				return nil, err
			}
			evals, err := EvaluateAll(d, Options{Seed: seed, ExactCorrelation: true})
			if err != nil {
				return nil, err
			}
			for _, e := range evals {
				if _, seen := sums[e.Method]; !seen && rep == 0 {
					names = append(names, e.Method)
				}
				sums[e.Method] += e.Metrics.F1()
			}
		}
		pt := SweepPoint{Label: scenario.name, F1: make(map[string]float64)}
		for _, n := range names {
			pt.F1[n] = sums[n] / float64(reps)
		}
		out[scenario.name] = []SweepPoint{pt}
	}
	return out, nil
}

// PrintFig7 writes the Figure 7 comparison.
func PrintFig7(w io.Writer, seed int64, reps int) error {
	res, err := Fig7(seed, reps)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 7 — synthetic data with correlated sources (F-measure)")
	var scenarios []string
	for s := range res {
		scenarios = append(scenarios, s)
	}
	sort.Strings(scenarios)
	var methods []string
	for m := range res[scenarios[0]][0].F1 {
		methods = append(methods, m)
	}
	sort.Strings(methods)
	fmt.Fprintf(w, "%-18s", "Method")
	for _, s := range scenarios {
		fmt.Fprintf(w, " %18s", s)
	}
	fmt.Fprintln(w)
	for _, m := range methods {
		fmt.Fprintf(w, "%-18s", m)
		for _, s := range scenarios {
			fmt.Fprintf(w, " %18.3f", res[s][0].F1[m])
		}
		fmt.Fprintln(w)
	}
	return nil
}
