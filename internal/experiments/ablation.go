package experiments

import (
	"fmt"
	"io"

	"corrfuse/internal/cluster"
	"corrfuse/internal/core"
	"corrfuse/internal/eval"
	"corrfuse/internal/quality"
	"corrfuse/internal/triple"
)

// AblationRow is one configuration of the BOOK ablation study.
type AblationRow struct {
	Name    string
	Metrics eval.BinaryMetrics
	AUCPR   float64
	AUCROC  float64
}

// AblateBook quantifies the design choices DESIGN.md calls out, on the
// simulated BOOK dataset (the hardest regime: 333 sparse sources):
//
//   - accountability scope: global vs subject
//   - quality smoothing: raw counts vs add-½
//   - correlation-cluster width: 6 vs 22
//   - joint-statistic regularization: none vs MinJointSupport 3
//
// Each row runs exact PrecRecCorr with one knob flipped from the tuned
// configuration (subject scope, smoothing 0.5, width 6, support 3).
func AblateBook(seed int64) ([]AblationRow, error) {
	d, err := datasetBook(seed)
	if err != nil {
		return nil, err
	}
	ids := providedLabeled(d)
	labels := goldLabels(d, ids)
	alpha := DeriveAlpha(d)

	type knobs struct {
		name       string
		subject    bool
		smoothing  float64
		width      int
		minSupport int
	}
	tuned := knobs{name: "tuned (subject, smooth .5, width 6, support 3)",
		subject: true, smoothing: 0.5, width: 6, minSupport: 3}
	configs := []knobs{
		tuned,
		{name: "global scope", subject: false, smoothing: 0.5, width: 6, minSupport: 3},
		{name: "no smoothing", subject: true, smoothing: 0, width: 6, minSupport: 3},
		{name: "wide clusters (22)", subject: true, smoothing: 0.5, width: 22, minSupport: 3},
		{name: "no joint-support floor", subject: true, smoothing: 0.5, width: 6, minSupport: 0},
	}

	var rows []AblationRow
	for _, k := range configs {
		var scope triple.Scope = triple.ScopeGlobal{}
		if k.subject {
			scope = triple.NewScopeSubject(d)
		}
		est, err := quality.NewEstimator(d, quality.Options{
			Alpha: alpha, Scope: scope,
			Smoothing: k.smoothing, MinJointSupport: k.minSupport,
		})
		if err != nil {
			return nil, err
		}
		clusters := cluster.Cluster(est, cluster.Options{MaxClusterSize: k.width})
		var feasible [][]triple.SourceID
		for _, c := range clusters {
			feasible = append(feasible, c)
		}
		ex, err := core.NewExact(core.Config{
			Dataset: d, Params: est, Scope: scope, Clusters: feasible,
		})
		if err != nil {
			return nil, err
		}
		scores := ex.Score(ids)
		rows = append(rows, AblationRow{
			Name:    k.name,
			Metrics: eval.Classify(scores, labels, 0.5),
			AUCPR:   eval.AUCPR(scores, labels),
			AUCROC:  eval.AUCROC(scores, labels),
		})
	}
	return rows, nil
}

func datasetBook(seed int64) (*triple.Dataset, error) {
	b, err := DatasetByName("book")
	if err != nil {
		return nil, err
	}
	return b.Build(seed)
}

// PrintAblation writes the ablation table.
func PrintAblation(w io.Writer, seed int64) error {
	rows, err := AblateBook(seed)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation — exact PrecRecCorr on simulated BOOK, one knob at a time")
	fmt.Fprintf(w, "%-46s %9s %9s %9s %8s %8s\n", "Configuration", "Precision", "Recall", "F1", "AUC-PR", "AUC-ROC")
	for _, r := range rows {
		fmt.Fprintf(w, "%-46s %9.3f %9.3f %9.3f %8.3f %8.3f\n",
			r.Name, r.Metrics.Precision(), r.Metrics.Recall(), r.Metrics.F1(), r.AUCPR, r.AUCROC)
	}
	return nil
}
