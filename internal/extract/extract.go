// Package extract simulates the paper's motivating scenario: knowledge-triple
// extraction from web pages by multiple extraction systems. A synthetic
// corpus of pages carries facts expressed through different pattern kinds
// (infobox, free text, tables); extractors support different pattern subsets
// with different reliability and may share extraction rules.
//
// The simulation produces exactly the correlation structures Section 1
// motivates:
//
//   - extractors supporting the same patterns extract overlapping sets of
//     true triples (positive correlation on true data, without copying);
//   - extractors sharing rules corrupt facts identically (positive
//     correlation on false data — the S1/S4/S5 phenomenon of Example 1.1);
//   - extractors supporting disjoint patterns are complementary (negative
//     correlation — the S3-vs-text-extractors phenomenon).
//
// Ground truth is known by construction ("the extractor input represents the
// real world", Example 2.1): a triple is true iff the page states it.
package extract

import (
	"fmt"
	"hash/fnv"

	"corrfuse/internal/stat"
	"corrfuse/internal/triple"
)

// PatternKind is a way a fact can be expressed on a page.
type PatternKind int

// The pattern kinds of the simulated pages.
const (
	Infobox PatternKind = iota
	FreeText
	Table
	numPatternKinds
)

// String implements fmt.Stringer.
func (p PatternKind) String() string {
	switch p {
	case Infobox:
		return "infobox"
	case FreeText:
		return "text"
	case Table:
		return "table"
	default:
		return fmt.Sprintf("pattern(%d)", int(p))
	}
}

// Fact is a true statement on a page together with the pattern kinds through
// which the page expresses it.
type Fact struct {
	Triple   triple.Triple
	Patterns []PatternKind
}

// Page is one synthetic web document.
type Page struct {
	URL   string
	Facts []Fact
}

// Corpus is a collection of pages with known ground truth.
type Corpus struct {
	Pages []Page
}

// CorpusConfig sizes the synthetic corpus.
type CorpusConfig struct {
	// NumPages in the corpus.
	NumPages int
	// FactsPerPage is the mean number of facts per page (≥ 1).
	FactsPerPage int
	// MultiPatternFraction is the probability a fact is expressed through
	// two pattern kinds instead of one (e.g. both infobox and text).
	MultiPatternFraction float64
	Seed                 int64
}

// attribute pool for generated facts; values are per-entity.
var attributes = []string{
	"profession", "religion", "spouse", "birthplace", "education",
	"award", "employer", "residence", "member of", "supports",
}

// NewCorpus synthesizes a corpus: each page describes one entity through a
// few facts, each fact expressed via one or two pattern kinds.
func NewCorpus(cfg CorpusConfig) (*Corpus, error) {
	if cfg.NumPages <= 0 {
		return nil, fmt.Errorf("extract: NumPages must be positive")
	}
	if cfg.FactsPerPage <= 0 {
		cfg.FactsPerPage = 5
	}
	rng := stat.NewRNG(cfg.Seed)
	c := &Corpus{}
	for p := 0; p < cfg.NumPages; p++ {
		entity := fmt.Sprintf("entity-%05d", p)
		page := Page{URL: "wiki/" + entity}
		n := 1 + rng.Intn(2*cfg.FactsPerPage-1) // mean ≈ FactsPerPage
		for f := 0; f < n; f++ {
			attr := attributes[rng.Intn(len(attributes))]
			fact := Fact{
				Triple: triple.Triple{
					Subject:   entity,
					Predicate: attr,
					Object:    fmt.Sprintf("%s-value-%d", attr, rng.Intn(50)),
				},
			}
			first := PatternKind(rng.Intn(int(numPatternKinds)))
			fact.Patterns = append(fact.Patterns, first)
			if rng.Bernoulli(cfg.MultiPatternFraction) {
				second := PatternKind(rng.Intn(int(numPatternKinds)))
				if second != first {
					fact.Patterns = append(fact.Patterns, second)
				}
			}
			page.Facts = append(page.Facts, fact)
		}
		c.Pages = append(c.Pages, page)
	}
	return c, nil
}

// NumFacts returns the total number of facts in the corpus.
func (c *Corpus) NumFacts() int {
	n := 0
	for _, p := range c.Pages {
		n += len(p.Facts)
	}
	return n
}

// ExtractorConfig describes one simulated extraction system.
type ExtractorConfig struct {
	Name string
	// PatternRecall maps each supported pattern kind to the probability
	// that the extractor captures a fact expressed through it.
	// Unsupported kinds are simply not extracted (the complementarity
	// mechanism).
	PatternRecall map[PatternKind]float64
	// ErrorRate is the probability that a captured fact is corrupted
	// into a wrong triple instead of extracted faithfully.
	ErrorRate float64
	// RuleSet identifies the extraction rules. Extractors with the same
	// RuleSet corrupt a given fact into the *same* wrong triple — the
	// "common rules" positive correlation on false data. Extractors with
	// different rule sets make independent mistakes.
	RuleSet int64
}

// Run executes the extractors over the corpus and assembles the fused
// dataset: one source per extractor, gold labels from the ground truth
// (true = the page indeed expresses the triple).
func Run(corpus *Corpus, extractors []ExtractorConfig, seed int64) (*triple.Dataset, error) {
	if corpus == nil || len(corpus.Pages) == 0 {
		return nil, fmt.Errorf("extract: empty corpus")
	}
	if len(extractors) == 0 {
		return nil, fmt.Errorf("extract: no extractors")
	}
	d := triple.NewDataset()
	ids := make([]triple.SourceID, len(extractors))
	for i, e := range extractors {
		if e.Name == "" {
			return nil, fmt.Errorf("extract: extractor %d has no name", i)
		}
		if e.ErrorRate < 0 || e.ErrorRate > 1 {
			return nil, fmt.Errorf("extract: extractor %q error rate outside [0,1]", e.Name)
		}
		for k, r := range e.PatternRecall {
			if r < 0 || r > 1 {
				return nil, fmt.Errorf("extract: extractor %q recall for %v outside [0,1]", e.Name, k)
			}
		}
		ids[i] = d.AddSource(e.Name)
	}
	rng := stat.NewRNG(seed)

	for _, page := range corpus.Pages {
		for _, fact := range page.Facts {
			// Every stated fact is a true triple, whether extracted or not.
			d.SetLabel(fact.Triple, triple.True)
			for i, e := range extractors {
				captured := false
				for _, pat := range fact.Patterns {
					r, ok := e.PatternRecall[pat]
					if ok && rng.Bernoulli(r) {
						captured = true
						break
					}
				}
				if !captured {
					continue
				}
				if rng.Bernoulli(e.ErrorRate) {
					wrong := Corrupt(fact.Triple, e.RuleSet)
					d.Observe(ids[i], wrong)
					d.SetLabel(wrong, triple.False)
				} else {
					d.Observe(ids[i], fact.Triple)
				}
			}
		}
	}
	return d, nil
}

// Corrupt deterministically derives the wrong triple an extractor with the
// given rule set produces from a fact. Determinism in (fact, ruleSet) is the
// point: extractors sharing rules share mistakes.
func Corrupt(t triple.Triple, ruleSet int64) triple.Triple {
	h := fnv.New64a()
	h.Write([]byte(t.Key()))
	var b [8]byte
	for i := range b {
		b[i] = byte(ruleSet >> (8 * i))
	}
	h.Write(b[:])
	switch h.Sum64() % 3 {
	case 0:
		// Truncated object (boundary detection error).
		obj := t.Object
		if len(obj) > 3 {
			obj = obj[:len(obj)/2]
		} else {
			obj += "-x"
		}
		return triple.Triple{Subject: t.Subject, Predicate: t.Predicate, Object: obj}
	case 1:
		// Wrong predicate (relation classification error).
		return triple.Triple{Subject: t.Subject, Predicate: t.Predicate + "-of", Object: t.Object}
	default:
		// Subject confusion (coreference error — the Obama Sr. case).
		return triple.Triple{Subject: t.Subject + " Sr.", Predicate: t.Predicate, Object: t.Object}
	}
}

// StandardExtractors returns a five-extractor setup mirroring Example 1.1:
// S1, S4, S5 share text rules (correlated, with shared mistakes), S2 uses
// its own text rules, and S3 reads only the infobox and tables
// (anti-correlated with the text extractors).
func StandardExtractors() []ExtractorConfig {
	textish := map[PatternKind]float64{FreeText: 0.75, Table: 0.2}
	return []ExtractorConfig{
		{Name: "S1", PatternRecall: textish, ErrorRate: 0.25, RuleSet: 100},
		{Name: "S2", PatternRecall: map[PatternKind]float64{FreeText: 0.6}, ErrorRate: 0.35, RuleSet: 200},
		{Name: "S3", PatternRecall: map[PatternKind]float64{Infobox: 0.9, Table: 0.7}, ErrorRate: 0.08, RuleSet: 300},
		{Name: "S4", PatternRecall: textish, ErrorRate: 0.22, RuleSet: 100},
		{Name: "S5", PatternRecall: textish, ErrorRate: 0.22, RuleSet: 100},
	}
}
