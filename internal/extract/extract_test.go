package extract

import (
	"testing"

	"corrfuse/internal/quality"
	"corrfuse/internal/triple"
)

func buildCorpus(t *testing.T) *Corpus {
	t.Helper()
	c, err := NewCorpus(CorpusConfig{NumPages: 300, FactsPerPage: 5, MultiPatternFraction: 0.3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCorpusShape(t *testing.T) {
	c := buildCorpus(t)
	if len(c.Pages) != 300 {
		t.Fatalf("pages = %d", len(c.Pages))
	}
	if c.NumFacts() < 300 {
		t.Errorf("facts = %d, want ≥ pages", c.NumFacts())
	}
	for _, p := range c.Pages {
		if p.URL == "" {
			t.Fatal("page without URL")
		}
		for _, f := range p.Facts {
			if len(f.Patterns) == 0 || len(f.Patterns) > 2 {
				t.Fatalf("fact with %d patterns", len(f.Patterns))
			}
		}
	}
	if _, err := NewCorpus(CorpusConfig{}); err == nil {
		t.Error("empty config should fail")
	}
}

func TestCorruptDeterminism(t *testing.T) {
	tr := triple.Triple{Subject: "Obama", Predicate: "died", Object: "1982-value"}
	a := Corrupt(tr, 42)
	b := Corrupt(tr, 42)
	if a != b {
		t.Error("same rule set must corrupt identically")
	}
	c := Corrupt(tr, 43)
	// Different rule sets usually differ; at minimum, corruption must not
	// return the original.
	if a == tr || c == tr {
		t.Error("corruption returned the original fact")
	}
}

func TestRunValidation(t *testing.T) {
	c := buildCorpus(t)
	if _, err := Run(nil, StandardExtractors(), 1); err == nil {
		t.Error("nil corpus should fail")
	}
	if _, err := Run(c, nil, 1); err == nil {
		t.Error("no extractors should fail")
	}
	if _, err := Run(c, []ExtractorConfig{{Name: ""}}, 1); err == nil {
		t.Error("unnamed extractor should fail")
	}
	if _, err := Run(c, []ExtractorConfig{{Name: "X", ErrorRate: 2}}, 1); err == nil {
		t.Error("invalid error rate should fail")
	}
}

// TestRunProducesExpectedCorrelations checks that the simulated pipeline
// realizes the Example 1.1 correlation structure: S1/S4/S5 positively
// correlated (shared patterns and rules), S3 anti-correlated with them.
func TestRunProducesExpectedCorrelations(t *testing.T) {
	c := buildCorpus(t)
	d, err := Run(c, StandardExtractors(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	est, err := quality.NewEstimator(d, quality.Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	id := func(n string) triple.SourceID {
		s, ok := d.SourceID(n)
		if !ok {
			t.Fatalf("source %s missing", n)
		}
		return s
	}
	// S4, S5 share rules and patterns → strong positive correlation.
	c45, ok := quality.CorrelationTrue(est, []triple.SourceID{id("S4"), id("S5")})
	if !ok || c45 < 1.1 {
		t.Errorf("C45 = %v, want clearly > 1", c45)
	}
	// S3 vs S4 extract from mostly disjoint patterns → C < 1.
	c34, ok := quality.CorrelationTrue(est, []triple.SourceID{id("S3"), id("S4")})
	if !ok || c34 > 0.95 {
		t.Errorf("C34 = %v, want < 1 (complementary)", c34)
	}
	// Shared rules: S4 and S5 produce overlapping false triples.
	cf45, ok := quality.CorrelationFalse(est, []triple.SourceID{id("S4"), id("S5")})
	if !ok || cf45 < 1.5 {
		t.Errorf("C¬45 = %v, want ≫ 1 (shared mistakes)", cf45)
	}
	// S3 is far more precise than the error-prone text extractors.
	if p3, p2 := est.Precision(id("S3")), est.Precision(id("S2")); p3 < p2+0.1 {
		t.Errorf("precision(S3)=%v should clearly exceed precision(S2)=%v", p3, p2)
	}
}

// TestGroundTruthLabels: every stated fact is labeled true; every corrupted
// extraction is labeled false.
func TestGroundTruthLabels(t *testing.T) {
	c := buildCorpus(t)
	d, err := Run(c, StandardExtractors(), 3)
	if err != nil {
		t.Fatal(err)
	}
	stated := map[triple.Triple]bool{}
	for _, p := range c.Pages {
		for _, f := range p.Facts {
			stated[f.Triple] = true
		}
	}
	for i := 0; i < d.NumTriples(); i++ {
		tid := triple.TripleID(i)
		tr := d.Triple(tid)
		switch d.Label(tid) {
		case triple.True:
			if !stated[tr] {
				t.Fatalf("true label on unstated triple %v", tr)
			}
		case triple.False:
			if stated[tr] {
				t.Fatalf("false label on stated triple %v", tr)
			}
		default:
			t.Fatalf("unlabeled triple %v", tr)
		}
	}
}

func TestPatternKindString(t *testing.T) {
	if Infobox.String() != "infobox" || FreeText.String() != "text" || Table.String() != "table" {
		t.Error("pattern names")
	}
	if PatternKind(9).String() == "" {
		t.Error("unknown pattern should still render")
	}
}
