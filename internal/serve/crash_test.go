package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"corrfuse/internal/store"
	"corrfuse/internal/triple"
)

// crashChildEnv gates the child half of the crash-recovery test: when set,
// the test binary runs a real WAL-backed server until it is killed.
const (
	crashChildEnv = "SERVE_CRASH_CHILD"
	crashDirEnv   = "SERVE_CRASH_DIR"
)

// TestCrashChildProcess is not a test in its own right: it is the server
// process TestCrashRecovery SIGKILLs. Run directly it skips.
func TestCrashChildProcess(t *testing.T) {
	if os.Getenv(crashChildEnv) != "1" {
		t.Skip("helper process for TestCrashRecovery")
	}
	dir := os.Getenv(crashDirEnv)
	storePath := filepath.Join(dir, "store.jsonl")
	st, err := store.Load(storePath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := walConfig(dir)
	cfg.PersistPath = storePath
	// No background refresher: the WAL is the only thing standing between
	// an acknowledged observe and the kill — maximum crash exposure.
	cfg.RefreshInterval = 0
	srv, err := New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// Publish the address atomically so the parent never reads a torn file.
	tmp := filepath.Join(dir, ".addr.tmp")
	if err := os.WriteFile(tmp, []byte(ln.Addr().String()), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, "addr")); err != nil {
		t.Fatal(err)
	}
	// Serve until SIGKILL. This never returns cleanly by design.
	t.Fatal(http.Serve(ln, srv.Handler()))
}

// TestCrashRecovery is the end-to-end durability proof: a real server
// process is SIGKILLed mid-ingest — after acknowledging writes, before any
// snapshot persist — and restarted from the stale store plus the WAL. Every
// observation the parent saw acknowledged must be present afterwards with
// its provenance and label. (ack = durable, the tentpole contract.)
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	storePath := filepath.Join(dir, "store.jsonl")
	if err := seedStoreData().Save(storePath); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChildProcess$", "-test.v")
	cmd.Env = append(os.Environ(), crashChildEnv+"=1", crashDirEnv+"="+dir)
	var childOut bytes.Buffer
	cmd.Stdout, cmd.Stderr = &childOut, &childOut
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Reap through a channel: the poll loops below need to notice a child
	// that dies early (cmd.ProcessState is only set by Wait, so polling it
	// directly would spin forever).
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	reaped := false
	reap := func() {
		if !reaped {
			<-waitErr
			reaped = true
		}
	}
	defer func() {
		cmd.Process.Kill()
		reap()
	}()

	// Wait for the child to publish its address. childOut is written by
	// exec's copier goroutine, so it is only read after the child is
	// reaped (Wait joins the copiers).
	var base string
	deadline := time.Now().Add(15 * time.Second)
	for {
		if raw, err := os.ReadFile(filepath.Join(dir, "addr")); err == nil && len(raw) > 0 {
			base = "http://" + string(raw)
			break
		}
		select {
		case <-waitErr:
			reaped = true
			t.Fatalf("child exited before becoming ready:\n%s", childOut.String())
		default:
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			reap()
			t.Fatalf("child never became ready:\n%s", childOut.String())
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Hammer it from concurrent writers, recording exactly the
	// observations whose acknowledgment (the 200 response) we received.
	const writers = 4
	const minAcked = 120
	client := &http.Client{Timeout: 5 * time.Second}
	sources := []string{"good1", "good2", "bad"}
	acked := make([][]Observation, writers)
	var ackCount atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				o := Observation{
					Source:    sources[(w+i)%len(sources)],
					Subject:   fmt.Sprintf("crash-%d-%d", w, i),
					Predicate: "p",
					Object:    "v",
				}
				if i%7 == 0 {
					o.Label = "true"
				}
				raw, _ := json.Marshal(o)
				resp, err := client.Post(base+"/v1/observe", "application/json", bytes.NewReader(raw))
				if err != nil {
					return // the kill landed mid-request: not acknowledged
				}
				var body map[string]any
				decErr := json.NewDecoder(resp.Body).Decode(&body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					return
				}
				// Full response received: this write was acknowledged.
				acked[w] = append(acked[w], o)
				ackCount.Add(1)
			}
		}(w)
	}

	// Kill the process mid-stream, with writers still in flight.
	killDeadline := time.Now().Add(60 * time.Second)
	for ackCount.Load() < minAcked {
		select {
		case <-waitErr:
			reaped = true
			t.Fatalf("child exited early:\n%s", childOut.String())
		default:
		}
		if time.Now().After(killDeadline) {
			t.Fatalf("only %d acknowledgments after 60s", ackCount.Load())
		}
		time.Sleep(time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	reap() // SIGKILL: Wait error by design
	close(stop)
	wg.Wait()
	total := int(ackCount.Load())
	if total < minAcked {
		t.Fatalf("only %d acknowledged writes before the kill", total)
	}

	// Recover: the store file is still the seed (the child never
	// persisted), so everything hangs on the WAL replay.
	st2, err := store.Load(storePath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := walConfig(dir)
	cfg.PersistPath = storePath
	srv2 := newServer(t, st2, cfg)
	if srv2.walRecovered < total {
		t.Errorf("WAL replayed %d records, but %d writes were acknowledged", srv2.walRecovered, total)
	}
	sn := srv2.snap.Load()
	lost := 0
	for w := range acked {
		for _, o := range acked[w] {
			tt := triple.Triple{Subject: o.Subject, Predicate: o.Predicate, Object: o.Object}
			e, ok := st2.Get(tt)
			if !ok {
				lost++
				t.Errorf("acknowledged observation %s lost", o.Subject)
				continue
			}
			if !containsStr(e.Sources, o.Source) {
				t.Errorf("%s lost its provenance: %v misses %s", o.Subject, e.Sources, o.Source)
			}
			if o.Label != "" && e.Label != o.Label {
				t.Errorf("%s lost its label %q", o.Subject, o.Label)
			}
			if _, ok := sn.data.TripleID(tt); !ok {
				t.Errorf("%s missing from the recovery snapshot's dataset", o.Subject)
			}
		}
	}
	if lost == 0 {
		t.Logf("crash recovery: %d acknowledged writes killed mid-stream, 0 lost (%d replayed)", total, srv2.walRecovered)
	}
}
