package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"corrfuse"
	"corrfuse/internal/store"
)

// updateGolden regenerates the golden response files:
//
//	go test ./internal/serve -run TestGoldenReplay -update
var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestGoldenReplay replays the committed fixture store and claim journal
// through a full sharded server over HTTP and pins the complete JSON bodies
// of /v1/refuse and /v1/subject against golden files. Any change to the
// serving shape — fields, ranking, probabilities, partial-rebuild counts —
// shows up as a readable golden diff. Probabilities are rounded to 1e-9 and
// durationMs zeroed before comparison, so the goldens are robust to
// platform math-library ULP differences and wall-clock noise.
func TestGoldenReplay(t *testing.T) {
	st, err := store.Load(filepath.Join("testdata", "golden_store.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Options: corrfuse.Options{
			Method:         corrfuse.PrecRecCorr,
			Smoothing:      0.1,
			Shards:         2,
			RebuildWorkers: 2,
		},
		PartialRebuild:  true,
		PenalizeSilence: true,
	}
	srv := newServer(t, st, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Replay the journal: one /v1/observe per committed claim.
	jf, err := os.Open(filepath.Join("testdata", "golden_journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer jf.Close()
	sc := bufio.NewScanner(jf)
	claims := 0
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		resp, err := http.Post(ts.URL+"/v1/observe", "application/json", bytes.NewReader(sc.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("observe claim %d: %d", claims, resp.StatusCode)
		}
		claims++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if claims == 0 {
		t.Fatal("empty journal fixture")
	}

	// Re-fuse (the dirty-shard partial path: the journal touched a subset
	// of subjects) and pin the full response.
	resp, err := http.Post(ts.URL+"/v1/refuse", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	refuse, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refuse: %d: %s", resp.StatusCode, refuse)
	}
	checkGolden(t, "golden_refuse.json", refuse)

	// Pin the full subject bodies: one subject fused entirely from the
	// journal, one whose journal claim joined seeded provenance.
	for _, subject := range []string{"eris", "pluto"} {
		resp, err := http.Get(ts.URL + "/v1/subject/" + subject)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("subject %s: %d: %s", subject, resp.StatusCode, body)
		}
		checkGolden(t, fmt.Sprintf("golden_subject_%s.json", subject), body)
	}
}

// checkGolden normalizes a response body and compares it against (or, with
// -update, rewrites) the named golden file.
func checkGolden(t *testing.T, name string, body []byte) {
	t.Helper()
	got := normalizeJSON(t, body)
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (rerun with -update to create the golden files)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s diverged from golden file:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// normalizeJSON canonicalizes a response body for golden comparison: keys
// sorted (via map round-trip), every number rounded to 9 decimals, and the
// wall-clock durationMs field zeroed.
func normalizeJSON(t *testing.T, raw []byte) []byte {
	t.Helper()
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		t.Fatalf("normalize %s: %v", raw, err)
	}
	v = normalizeValue(v, "")
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

func normalizeValue(v any, key string) any {
	switch x := v.(type) {
	case map[string]any:
		for k, e := range x {
			x[k] = normalizeValue(e, k)
		}
		return x
	case []any:
		for i, e := range x {
			x[i] = normalizeValue(e, "")
		}
		return x
	case float64:
		if key == "durationMs" {
			return 0.0
		}
		return math.Round(x*1e9) / 1e9
	default:
		return v
	}
}
