package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"corrfuse/internal/codec"
	"corrfuse/internal/index"
	"corrfuse/internal/obs"
	"corrfuse/internal/serve/middleware"
	"corrfuse/internal/store"
	"corrfuse/internal/triple"
)

// The hot request/response shapes live in internal/codec next to their
// hand-rolled encoders and decoders; the aliases keep serve's public API
// unchanged.

// Observation is one ingested claim: a source asserting a triple, with an
// optional gold label ("true" or "false") that joins the training set at
// the next re-fusion.
type Observation = codec.Observation

// ObserveResult reports the freshest probability after applying one claim.
type ObserveResult = codec.ObserveResult

// TripleStatus is the full query answer for one stored triple.
type TripleStatus struct {
	Triple           triple.Triple `json:"triple"`
	Sources          []string      `json:"sources,omitempty"`
	Label            string        `json:"label,omitempty"`
	Probability      float64       `json:"probability"`
	Live             bool          `json:"live"`
	BatchProbability float64       `json:"batchProbability"`
	Accepted         bool          `json:"accepted"`
}

// ScoreRequest asks for probabilities of a batch of triples (at most
// Config.MaxScoreTriples per request).
type ScoreRequest = codec.ScoreRequest

// ScoreResult is one scored triple of a batch.
type ScoreResult = codec.ScoreResult

// acceptedTrue and acceptedFalse back the ScoreResult.Accepted pointers:
// pointing into these package-level values instead of a per-result local
// keeps the scoring loop allocation-free.
var acceptedTrue, acceptedFalse = true, false

// routes mounts the API. The /v1 endpoints sit behind the admission-control
// chain (rate limit → load shed → deadline; see admit): durable writes and
// the refresh control ride the write class so they are shed last, queries
// ride the read class and are shed first. The operational endpoints
// (/healthz, /metrics, /debug/traces) bypass admission entirely — an
// overloaded service must stay observable, or operators are blind exactly
// when they need the signals.
func (s *Server) routes() {
	v1 := func(endpoint string, class middleware.Class, h http.HandlerFunc) http.Handler {
		return s.route(endpoint, s.admit(endpoint, class, h))
	}
	s.mux.Handle("POST /v1/observe", v1("observe", middleware.ClassWrite, s.handleObserve))
	s.mux.Handle("GET /v1/triple", v1("triple", middleware.ClassRead, s.handleTriple))
	s.mux.Handle("GET /v1/subject/{subject}", v1("subject", middleware.ClassRead, s.handleSubject))
	s.mux.Handle("GET /v1/source/{source}", v1("source", middleware.ClassRead, s.handleSource))
	s.mux.Handle("POST /v1/score", v1("score", middleware.ClassRead, s.handleScore))
	s.mux.Handle("POST /v1/refuse", v1("refuse", middleware.ClassWrite, s.handleRefuse))
	s.mux.Handle("GET /healthz", s.route("healthz", http.HandlerFunc(s.handleHealthz)))
	s.mux.Handle("GET /metrics", s.route("metrics", http.HandlerFunc(s.handleMetrics)))
	s.mux.Handle("GET /debug/traces", s.route("traces", s.traces.Handler()))
}

// writeJSON writes a JSON response body. The encode runs into a pooled
// buffer before any byte (or the status line) reaches the wire, so an
// encode failure downgrades cleanly to a 500 — the old stream-to-wire
// encoder could only truncate the body after a 2xx was already sent.
// Failures are still counted (corrfused_response_encode_failures_total).
func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	buf := codec.GetBuffer()
	defer codec.PutBuffer(buf)
	enc := json.NewEncoder(buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		s.m.encodeFailures.Inc()
		s.logf("serve: response encode failed before write (status %d became 500): %v", code, err)
		s.writeBody(w, http.StatusInternalServerError, errEncodeBody)
		return
	}
	s.writeBody(w, code, buf.B)
}

// errEncodeBody is the static fallback body for responses whose intended
// payload failed to encode.
var errEncodeBody = []byte("{\"error\":\"response encoding failed\"}\n")

// writeBody writes an already-encoded JSON body.
func (s *Server) writeBody(w http.ResponseWriter, code int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// A write error here means the client went away mid-response; there
	// is no one left to tell.
	//lint:ignore errswallow client disconnects mid-write are not actionable
	w.Write(body)
}

// httpError writes a structured JSON error. 4xx accounting happens in the
// instrumentation middleware off the recorded response status — covering the
// mux's own 404/405 responses too, which per-handler counting used to miss.
func (s *Server) httpError(w http.ResponseWriter, code int, format string, args ...any) {
	s.writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// payloadTooLarge rejects an oversized request with 413 and a structured
// error naming the limit that was exceeded (limitField is "maxTriples" or
// "maxBytes").
func (s *Server) payloadTooLarge(w http.ResponseWriter, limitField string, limit int64, format string, args ...any) {
	s.writeJSON(w, http.StatusRequestEntityTooLarge, map[string]any{
		"error":    fmt.Sprintf(format, args...),
		limitField: limit,
	})
}

// readCapped reads the whole request body into buf under the server's
// byte cap, answering the 413 (structured, naming the limit) or 400
// itself on failure. It reports whether the read succeeded.
func (s *Server) readCapped(w http.ResponseWriter, r *http.Request, buf *codec.Buffer) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBodyBytes)
	if _, err := buf.ReadFrom(r.Body); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			s.payloadTooLarge(w, "maxBytes", tooLarge.Limit,
				"request body exceeds %d bytes", tooLarge.Limit)
			return false
		}
		s.httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return false
	}
	return true
}

// decodeError answers a codec decode failure: 400 either way, but a
// trailing second JSON value keeps its dedicated message — garbage after
// the document would otherwise be silently dropped, acknowledging a
// request the client half-sent.
func (s *Server) decodeError(w http.ResponseWriter, err error) {
	if errors.Is(err, codec.ErrTrailing) {
		s.httpError(w, http.StatusBadRequest, "trailing data after JSON document")
		return
	}
	s.httpError(w, http.StatusBadRequest, "malformed body: %v", err)
}

// decodeScore parses a /v1/score body through the codec fast path,
// answering 413/400 itself. It reports whether decoding succeeded.
func (s *Server) decodeScore(w http.ResponseWriter, r *http.Request, req *ScoreRequest) bool {
	defer s.span(r.Context(), "decode")()
	buf := codec.GetBuffer()
	defer codec.PutBuffer(buf)
	if !s.readCapped(w, r, buf) {
		return false
	}
	if err := codec.DecodeScoreRequest(buf.B, req); err != nil {
		s.decodeError(w, err)
		return false
	}
	return true
}

// decodeObserve is decodeScore's twin for the /v1/observe body.
func (s *Server) decodeObserve(w http.ResponseWriter, r *http.Request, req *codec.ObserveRequest) bool {
	defer s.span(r.Context(), "decode")()
	buf := codec.GetBuffer()
	defer codec.PutBuffer(buf)
	if !s.readCapped(w, r, buf) {
		return false
	}
	if err := codec.DecodeObserveRequest(buf.B, req); err != nil {
		s.decodeError(w, err)
		return false
	}
	return true
}

// handleObserve ingests one claim or a batch of claims. The body is either
// a single Observation object or {"observations": [...]} — carrying both is
// ambiguous and rejected — capped at the same byte limit as /v1/score.
//
// The 200 response is the acknowledgment, and with a WAL configured it is
// only written after the whole batch is durable per the sync policy: every
// observation is appended to the log and the batch's highest sequence is
// group-committed before a byte of the response leaves. Without a WAL the
// acknowledgment only promises the claims reached memory.
//
//corrfuse:hotpath
func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	if s.cfg.ReadOnly {
		// Followers never accept writes: a claim ingested here would fork
		// the replica from the leader's history. Rejection is the cold
		// branch — the allocating response builder lives off the hot path.
		s.rejectReadOnly(w)
		return
	}
	if s.closing.Load() && s.wal == nil {
		// Shutdown has begun and there is no WAL to make this durable: the
		// final persist may already have captured the store, so an ack now
		// could be an acknowledged-then-lost write. Refuse instead.
		s.httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	var batch codec.ObserveRequest
	if !s.decodeObserve(w, r, &batch) {
		return
	}
	single := batch.Observation
	hasSingle := single.Source != "" || single.Subject != "" || single.Predicate != "" || single.Object != "" || single.Label != ""
	if hasSingle && len(batch.Observations) > 0 {
		// Both forms at once: the single-object fields used to be silently
		// dropped in favor of the array — reject the ambiguity instead.
		s.httpError(w, http.StatusBadRequest,
			"ambiguous body: carries both a top-level observation and \"observations\"; send one or the other")
		return
	}
	obs := batch.Observations
	if len(obs) == 0 {
		obs = []Observation{single}
	}
	// Validate the whole batch before applying any of it, so a 400 means
	// nothing was ingested.
	for i, o := range obs {
		if o.Source == "" || o.Subject == "" || o.Predicate == "" || o.Object == "" {
			s.httpError(w, http.StatusBadRequest, "observation %d: source, subject, predicate and object are required", i)
			return
		}
		switch o.Label {
		case "", "true", "false":
		default:
			s.httpError(w, http.StatusBadRequest, "observation %d: label must be \"true\" or \"false\"", i)
			return
		}
	}
	results := make([]ObserveResult, 0, len(obs))
	var maxSeq uint64
	endIngest := s.span(r.Context(), "ingest")
	for _, o := range obs {
		if err := r.Context().Err(); err != nil {
			// The request's deadline budget expired (or the client left)
			// mid-batch: stop ingesting. Claims already applied stay in
			// memory unacknowledged (at-least-once), same as a WAL error.
			endIngest()
			s.httpError(w, http.StatusServiceUnavailable, "request canceled mid-batch, nothing acknowledged: %v", err)
			return
		}
		res, seq, err := s.ingest(o)
		if err != nil {
			// The WAL refused the append (closed or poisoned): nothing in
			// this response was acknowledged; claims already applied stay
			// in memory unacknowledged (at-least-once).
			endIngest()
			s.httpError(w, http.StatusServiceUnavailable, "durability unavailable: %v", err)
			return
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		results = append(results, res)
	}
	endIngest()
	if s.wal != nil {
		// The commit wait honors the request's deadline budget: a caller
		// that is gone stops occupying a group-commit slot. An abandoned
		// wait is NOT an acknowledgment — the record becomes durable with
		// the next fsync, but this response reports failure.
		endCommit := s.span(r.Context(), "wal_commit")
		err := s.wal.CommitContext(r.Context(), maxSeq)
		endCommit()
		if err != nil {
			s.httpError(w, http.StatusServiceUnavailable, "durability not confirmed, nothing acknowledged: %v", err)
			return
		}
	} else if s.closing.Load() {
		// Re-check after the store writes: the entry check above races the
		// flag flip, but this one cannot — the claims are in the store
		// before this load, so either Close's final persist (which starts
		// after the flip) captures them, or we see the flip here and
		// refuse. Never acknowledged-then-lost.
		s.httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	sn := s.snap.Load()
	buf := codec.GetBuffer()
	defer codec.PutBuffer(buf)
	buf.B = codec.AppendObserveResponse(buf.B, results, sn.seq, maxSeq, s.wal != nil)
	s.writeBody(w, http.StatusOK, buf.B)
}

func (s *Server) status(sn *snapshot, e store.Entry) TripleStatus {
	st := TripleStatus{
		Triple:           e.Triple,
		Sources:          e.Sources,
		Label:            e.Label,
		Probability:      e.Probability,
		BatchProbability: e.Probability,
		Accepted:         e.Accepted,
	}
	if p, live, ok := s.liveProbability(sn, e.Triple); ok {
		st.Probability = p
		st.Live = live
	}
	return st
}

func (s *Server) handleTriple(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	t := triple.Triple{Subject: q.Get("subject"), Predicate: q.Get("predicate"), Object: q.Get("object")}
	if t.Subject == "" || t.Predicate == "" || t.Object == "" {
		s.httpError(w, http.StatusBadRequest, "subject, predicate and object query parameters are required")
		return
	}
	e, ok := s.store.Get(t)
	if !ok {
		s.httpError(w, http.StatusNotFound, "triple %s not stored", t)
		return
	}
	sn := s.snap.Load()
	s.writeJSON(w, http.StatusOK, map[string]any{
		"result":      s.status(sn, e),
		"snapshotSeq": sn.seq,
	})
}

// writeIndexed answers a listing request with pre-ranked index entries from
// one snapshot. Every response carries both the snapshot's store version and
// the index's own version: they are always equal (the index is built from
// exactly the snapshot's capture), so a client — or the soak test — can
// verify no response ever mixed two generations. nil entries serve as
// "results": [] (the codec encoder guarantees it).
//
//corrfuse:hotpath
func (s *Server) writeIndexed(w http.ResponseWriter, sn *snapshot, entries []*index.Entry) {
	buf := codec.GetBuffer()
	defer codec.PutBuffer(buf)
	buf.B = codec.AppendEntriesResponse(buf.B, entries, sn.seq, sn.version, sn.idx.Version())
	s.writeBody(w, http.StatusOK, buf.B)
}

// handleSubject serves the snapshot's fused results about a subject,
// pre-ranked by descending probability at index build time — no store scan,
// no per-request sort, no lock. The view is snapshot-consistent: claims
// ingested after the snapshot's capture appear at the next rebuild (query
// /v1/triple or /v1/score for live-overlay freshness).
//
//corrfuse:hotpath
func (s *Server) handleSubject(w http.ResponseWriter, r *http.Request) {
	end := s.span(r.Context(), "index_lookup")
	sn := s.snap.Load()
	entries := sn.idx.Subject(r.PathValue("subject"))
	end()
	s.writeIndexed(w, sn, entries)
}

// handleSource serves the snapshot's fused results a source contributed to,
// pre-ranked like handleSubject and equally snapshot-consistent.
//
//corrfuse:hotpath
func (s *Server) handleSource(w http.ResponseWriter, r *http.Request) {
	end := s.span(r.Context(), "index_lookup")
	sn := s.snap.Load()
	entries := sn.idx.Source(r.PathValue("source"))
	end()
	s.writeIndexed(w, sn, entries)
}

// handleScore scores a batch of up to Config.MaxScoreTriples triples in one
// request. Triples fully reflected in the snapshot are answered from the
// frozen index in O(1) each; triples with newer provenance by the
// incremental model. Oversized requests (body bytes or triple count) are
// rejected with 413 before any scoring work.
//
//corrfuse:hotpath
func (s *Server) handleScore(w http.ResponseWriter, r *http.Request) {
	var req ScoreRequest
	if !s.decodeScore(w, r, &req) {
		return
	}
	if len(req.Triples) == 0 {
		s.httpError(w, http.StatusBadRequest, "triples is required")
		return
	}
	if len(req.Triples) > s.maxScoreTriples {
		s.payloadTooLarge(w, "maxTriples", int64(s.maxScoreTriples),
			"request has %d triples, limit is %d", len(req.Triples), s.maxScoreTriples)
		return
	}
	endScore := s.span(r.Context(), "score")
	sn := s.snap.Load()
	results := make([]ScoreResult, len(req.Triples))
	// One read lock for the live-overlay checks; snapshot-resident triples
	// never touch the model — each is a constant-time index read.
	s.live.RLock()
	for i, t := range req.Triples {
		results[i] = ScoreResult{Triple: t, Basis: "unknown"}
		id, inSnap := sn.data.TripleID(t)
		snapProviders := 0
		if inSnap {
			snapProviders = len(sn.data.Providers(id))
		}
		if s.live.inc != nil && s.live.inc.Providers(t) > snapProviders {
			if p, ok := s.live.inc.Probability(t); ok {
				results[i].Probability = p
				results[i].Basis = "live"
			}
			continue
		}
		if inSnap {
			if p, accepted, ok := sn.idx.Lookup(id); ok {
				results[i].Probability = p
				if accepted {
					results[i].Accepted = &acceptedTrue
				} else {
					results[i].Accepted = &acceptedFalse
				}
				results[i].Basis = "snapshot"
			}
		}
	}
	s.live.RUnlock()
	endScore()
	s.m.scored.Add(uint64(len(req.Triples)))
	buf := codec.GetBuffer()
	defer codec.PutBuffer(buf)
	buf.B = codec.AppendScoreResponse(buf.B, results, sn.seq, sn.version, sn.idx.Version())
	s.writeBody(w, http.StatusOK, buf.B)
}

// handleRefuse forces a batch re-fusion and waits for it to complete.
// Concurrent refuse requests are single-flighted: the first starts the
// rebuild, later arrivals join it and share the same summary (their
// responses carry "coalesced": true and identical snapshot versions), so a
// refresh stampede costs one rebuild instead of N serialized ones. The
// shared rebuild runs under a context canceled only when every joined
// client has disconnected or timed out — one impatient caller cannot abort
// work the others are waiting on, but work nobody wants stops at the next
// rebuild checkpoint.
func (s *Server) handleRefuse(w http.ResponseWriter, r *http.Request) {
	begin := time.Now()
	v, shared, err := s.refuseFlight.Do(r.Context(), func(ctx context.Context) (any, error) {
		sn, skipped, err := s.rebuild(ctx, true)
		if err != nil {
			return nil, err
		}
		if err := s.persist(); err != nil {
			s.logf("%v", err)
		}
		return s.refuseSummary(sn, skipped), nil
	})
	if shared {
		s.m.refuseCoalesced.Inc()
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.httpError(w, http.StatusServiceUnavailable, "re-fusion canceled: %v", err)
			return
		}
		s.httpError(w, http.StatusInternalServerError, "re-fusion failed: %v", err)
		return
	}
	// The summary map is shared across coalesced waiters: copy before
	// adding the per-request fields.
	out := make(map[string]any, len(v.(map[string]any))+2)
	for k, val := range v.(map[string]any) {
		out[k] = val
	}
	out["durationMs"] = time.Since(begin).Milliseconds()
	if shared {
		out["coalesced"] = true
	}
	s.writeJSON(w, http.StatusOK, out)
}

// refuseSummary assembles the shared /v1/refuse response body for one
// completed rebuild (everything except the per-request durationMs and
// coalesced fields).
func (s *Server) refuseSummary(sn *snapshot, skipped bool) map[string]any {
	shards := 1
	if len(sn.shardStats) > 0 {
		shards = len(sn.shardStats)
	}
	out := map[string]any{
		"snapshotSeq":     sn.seq,
		"snapshotVersion": sn.version,
		"indexVersion":    sn.idx.Version(),
		"indexedTriples":  sn.idx.Len(),
		"indexedSubjects": sn.idx.Subjects(),
		"skipped":         skipped,
		"triples":         sn.triples,
		"accepted":        sn.accepted,
		"method":          sn.fuser.MethodName(),
		"shards":          shards,
	}
	if len(sn.shardStats) > 0 {
		rebuilt, reused := sn.rebuildCounts()
		out["rebuiltShards"] = rebuilt
		out["reusedShards"] = reused
	}
	if lastErr := s.lastPersistError(); lastErr != "" {
		out["lastPersistError"] = lastErr
	}
	out["persistFailures"] = s.m.persistFailures.Load()
	if s.wal != nil {
		out["wal"] = s.walStatus()
	}
	if st, ok := s.replStatusNow(); ok {
		out["repl"] = s.replSummary(st)
	}
	return out
}

// walStatus summarizes the write-ahead log for /v1/refuse and /healthz:
// recovery state (records replayed at startup) and the live log head.
func (s *Server) walStatus() map[string]any {
	st := s.wal.Stats()
	out := map[string]any{
		"recoveredRecords": s.walRecovered,
		"seq":              st.Seq,
		"durableSeq":       st.DurableSeq,
		"segments":         st.Segments,
		"bytes":            st.Bytes,
	}
	if st.IgnoredFiles > 0 {
		out["ignoredFiles"] = st.IgnoredFiles
	}
	return out
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sn := s.snap.Load()
	bi := obs.GetBuildInfo()
	out := map[string]any{
		"status":          "ok",
		"snapshotSeq":     sn.seq,
		"snapshotVersion": sn.version,
		"indexVersion":    sn.idx.Version(),
		"uptimeSeconds":   time.Since(s.started).Seconds(),
		"version":         bi.Version,
		"commit":          bi.Commit,
		"goVersion":       bi.GoVersion,
	}
	if snap := s.snapshotStatus(); snap != nil {
		out["snapshot"] = snap
	}
	if s.wal != nil {
		out["wal"] = s.walStatus()
	}
	if st, ok := s.replStatusNow(); ok {
		out["repl"] = s.replSummary(st)
	}
	s.writeJSON(w, http.StatusOK, out)
}

// snapshotStatus summarizes the cold-start snapshot state for /healthz:
// which format persist maintains, and how (and how fast) this process's
// store was loaded. Nil when there is nothing to report (persistence
// disabled and no load info recorded).
func (s *Server) snapshotStatus() map[string]any {
	out := map[string]any{}
	if s.cfg.PersistPath != "" {
		format := SnapshotJSONL
		if s.binarySnapshots() {
			format = SnapshotBinary
		}
		out["persistFormat"] = format
	}
	if li := s.cfg.SnapshotLoad; li != nil {
		out["loadFormat"] = li.Format
		out["loadBytes"] = li.Bytes
		out["loadSeconds"] = li.Duration.Seconds()
		out["mapped"] = li.Mapped
		if li.FallbackReason != "" {
			out["loadFallbackReason"] = li.FallbackReason
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
