package serve

import (
	"fmt"
	"net/http"
	"sync/atomic"
	"time"
)

type counter = atomic.Uint64

// metrics are the service's operational counters, exposed at /metrics in
// Prometheus text exposition format.
type metrics struct {
	observe, tripleQ, subjectQ, sourceQ counter
	score, refuse, health, metricsReqs  counter
	badRequests                         counter

	observations counter // claims ingested
	scored       counter // triples scored via /v1/score
	rebuilds     counter
	rebuildSkips counter
	// partialRebuilds counts rebuilds routed through the dirty-shard
	// partial path (a subset of rebuilds).
	partialRebuilds counter

	// onlineDisabled is a gauge: 1 while the live snapshot serves without
	// an incremental scorer (unsupervised method, or a scorer that failed
	// to derive/seed/replay — the log says which), 0 when live scoring is
	// up. It distinguishes batch-only degradation from normal operation.
	onlineDisabled atomic.Uint64

	// persistFailures counts store saves that failed; lastPersistErr holds
	// the latest failure message ("" after a successful save) for
	// /v1/refuse, so operators can alert on a service that can no longer
	// persist instead of finding out from a log line.
	persistFailures counter
	lastPersistErr  atomic.Value

	lastRebuildNanos atomic.Int64
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sn := s.snap.Load()
	storeVersion := s.store.Version()
	s.live.RLock()
	liveTriples := 0
	if s.live.inc != nil {
		liveTriples = s.live.inc.Len()
	}
	unknownSources := len(s.live.unknown)
	journalLen := len(s.live.journal)
	s.live.RUnlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }

	p("# HELP corrfused_requests_total Requests served, by endpoint.\n")
	p("# TYPE corrfused_requests_total counter\n")
	for _, e := range []struct {
		name string
		c    *counter
	}{
		{"observe", &s.m.observe}, {"triple", &s.m.tripleQ},
		{"subject", &s.m.subjectQ}, {"source", &s.m.sourceQ},
		{"score", &s.m.score}, {"refuse", &s.m.refuse},
		{"healthz", &s.m.health}, {"metrics", &s.m.metricsReqs},
	} {
		p("corrfused_requests_total{endpoint=%q} %d\n", e.name, e.c.Load())
	}
	p("# HELP corrfused_bad_requests_total Requests rejected with a 4xx status.\n")
	p("# TYPE corrfused_bad_requests_total counter\n")
	p("corrfused_bad_requests_total %d\n", s.m.badRequests.Load())
	p("# HELP corrfused_observations_total Claims ingested via /v1/observe.\n")
	p("# TYPE corrfused_observations_total counter\n")
	p("corrfused_observations_total %d\n", s.m.observations.Load())
	p("# HELP corrfused_scored_triples_total Triples scored via /v1/score.\n")
	p("# TYPE corrfused_scored_triples_total counter\n")
	p("corrfused_scored_triples_total %d\n", s.m.scored.Load())

	p("# HELP corrfused_snapshot_seq Sequence number of the live batch snapshot.\n")
	p("# TYPE corrfused_snapshot_seq gauge\n")
	p("corrfused_snapshot_seq %d\n", sn.seq)
	p("# HELP corrfused_snapshot_age_seconds Age of the live batch snapshot.\n")
	p("# TYPE corrfused_snapshot_age_seconds gauge\n")
	p("corrfused_snapshot_age_seconds %.3f\n", time.Since(sn.builtAt).Seconds())
	p("# HELP corrfused_snapshot_triples Triples scored by the live snapshot.\n")
	p("# TYPE corrfused_snapshot_triples gauge\n")
	p("corrfused_snapshot_triples %d\n", sn.triples)
	p("# HELP corrfused_snapshot_accepted Triples the live snapshot accepts as true.\n")
	p("# TYPE corrfused_snapshot_accepted gauge\n")
	p("corrfused_snapshot_accepted %d\n", sn.accepted)

	p("# HELP corrfused_index_version Store data version the live read index was built at (always equals corrfused_snapshot_version).\n")
	p("# TYPE corrfused_index_version gauge\n")
	p("corrfused_index_version %d\n", sn.idx.Version())
	p("# HELP corrfused_snapshot_version Store data version the live snapshot was captured at.\n")
	p("# TYPE corrfused_snapshot_version gauge\n")
	p("corrfused_snapshot_version %d\n", sn.version)
	p("# HELP corrfused_index_triples Fused results frozen in the live read index.\n")
	p("# TYPE corrfused_index_triples gauge\n")
	p("corrfused_index_triples %d\n", sn.idx.Len())
	p("# HELP corrfused_index_subjects Distinct subjects with results in the live read index.\n")
	p("# TYPE corrfused_index_subjects gauge\n")
	p("corrfused_index_subjects %d\n", sn.idx.Subjects())
	p("# HELP corrfused_index_sources Distinct sources contributing to the live read index.\n")
	p("# TYPE corrfused_index_sources gauge\n")
	p("corrfused_index_sources %d\n", sn.idx.Sources())
	p("# HELP corrfused_index_build_seconds Wall time of the live read index build.\n")
	p("# TYPE corrfused_index_build_seconds gauge\n")
	p("corrfused_index_build_seconds %.6f\n", sn.idx.BuildTime().Seconds())

	p("# HELP corrfused_store_triples Distinct triples in the store.\n")
	p("# TYPE corrfused_store_triples gauge\n")
	p("corrfused_store_triples %d\n", s.store.Len())
	p("# HELP corrfused_store_version Store data version (mutations that feed the model).\n")
	p("# TYPE corrfused_store_version gauge\n")
	p("corrfused_store_version %d\n", storeVersion)
	p("# HELP corrfused_ingest_lag Data mutations not yet reflected in the batch snapshot.\n")
	p("# TYPE corrfused_ingest_lag gauge\n")
	p("corrfused_ingest_lag %d\n", storeVersion-sn.version)

	p("# HELP corrfused_live_triples Triples tracked by the incremental scorer.\n")
	p("# TYPE corrfused_live_triples gauge\n")
	p("corrfused_live_triples %d\n", liveTriples)
	p("# HELP corrfused_journal_entries Claims journaled since the last snapshot capture.\n")
	p("# TYPE corrfused_journal_entries gauge\n")
	p("corrfused_journal_entries %d\n", journalLen)
	p("# HELP corrfused_unknown_sources Sources seen in ingests but absent from the quality model.\n")
	p("# TYPE corrfused_unknown_sources gauge\n")
	p("corrfused_unknown_sources %d\n", unknownSources)

	p("# HELP corrfused_rebuilds_total Batch re-fusions performed.\n")
	p("# TYPE corrfused_rebuilds_total counter\n")
	p("corrfused_rebuilds_total %d\n", s.m.rebuilds.Load())
	p("# HELP corrfused_rebuild_skips_total Re-fusions skipped because the store was unchanged.\n")
	p("# TYPE corrfused_rebuild_skips_total counter\n")
	p("corrfused_rebuild_skips_total %d\n", s.m.rebuildSkips.Load())
	p("# HELP corrfused_partial_rebuilds_total Re-fusions that retrained only the dirty shards.\n")
	p("# TYPE corrfused_partial_rebuilds_total counter\n")
	p("corrfused_partial_rebuilds_total %d\n", s.m.partialRebuilds.Load())
	p("# HELP corrfused_online_disabled 1 while the service runs batch-only (no incremental scorer), 0 when live scoring is up.\n")
	p("# TYPE corrfused_online_disabled gauge\n")
	p("corrfused_online_disabled %d\n", s.m.onlineDisabled.Load())
	p("# HELP corrfused_last_rebuild_seconds Duration of the last batch re-fusion.\n")
	p("# TYPE corrfused_last_rebuild_seconds gauge\n")
	p("corrfused_last_rebuild_seconds %.3f\n", time.Duration(s.m.lastRebuildNanos.Load()).Seconds())
	p("# HELP corrfused_persist_failures_total Store saves that failed.\n")
	p("# TYPE corrfused_persist_failures_total counter\n")
	p("corrfused_persist_failures_total %d\n", s.m.persistFailures.Load())

	if s.wal != nil {
		st := s.wal.Stats()
		p("# HELP corrfused_wal_seq Last assigned WAL sequence number.\n")
		p("# TYPE corrfused_wal_seq gauge\n")
		p("corrfused_wal_seq %d\n", st.Seq)
		p("# HELP corrfused_wal_durable_seq Highest WAL sequence number covered by an fsync.\n")
		p("# TYPE corrfused_wal_durable_seq gauge\n")
		p("corrfused_wal_durable_seq %d\n", st.DurableSeq)
		p("# HELP corrfused_wal_segments Live WAL segment files.\n")
		p("# TYPE corrfused_wal_segments gauge\n")
		p("corrfused_wal_segments %d\n", st.Segments)
		p("# HELP corrfused_wal_bytes Total bytes across live WAL segments.\n")
		p("# TYPE corrfused_wal_bytes gauge\n")
		p("corrfused_wal_bytes %d\n", st.Bytes)
		p("# HELP corrfused_wal_fsyncs_total WAL fsync calls (group commits, interval ticks, rotations).\n")
		p("# TYPE corrfused_wal_fsyncs_total counter\n")
		p("corrfused_wal_fsyncs_total %d\n", st.Fsyncs)
		p("# HELP corrfused_wal_group_commit_size Records the most recent group-commit fsync made durable at once.\n")
		p("# TYPE corrfused_wal_group_commit_size gauge\n")
		p("corrfused_wal_group_commit_size %d\n", st.LastGroupCommit)
		p("# HELP corrfused_wal_recovered_records Acknowledged observations replayed from the WAL at startup.\n")
		p("# TYPE corrfused_wal_recovered_records gauge\n")
		p("corrfused_wal_recovered_records %d\n", s.walRecovered)
	}

	shards := 1
	if len(sn.shardStats) > 0 {
		shards = len(sn.shardStats)
	}
	p("# HELP corrfused_shards Shards of the live batch model (1 = monolithic).\n")
	p("# TYPE corrfused_shards gauge\n")
	p("corrfused_shards %d\n", shards)
	if len(sn.shardStats) > 0 {
		rebuilt, reused := sn.rebuildCounts()
		p("# HELP corrfused_shards_rebuilt Shards retrained for the live snapshot.\n")
		p("# TYPE corrfused_shards_rebuilt gauge\n")
		p("corrfused_shards_rebuilt %d\n", rebuilt)
		p("# HELP corrfused_shards_reused Shards adopted verbatim from the previous snapshot's model.\n")
		p("# TYPE corrfused_shards_reused gauge\n")
		p("corrfused_shards_reused %d\n", reused)
		p("# HELP corrfused_shard_reused Whether each shard of the live snapshot was adopted (1) or retrained (0).\n")
		p("# TYPE corrfused_shard_reused gauge\n")
		for _, st := range sn.shardStats {
			v := 0
			if st.Reused {
				v = 1
			}
			p("corrfused_shard_reused{shard=\"%d\"} %d\n", st.Shard, v)
		}
		p("# HELP corrfused_shard_rebuild_seconds Wall time of each shard's model build in the live snapshot.\n")
		p("# TYPE corrfused_shard_rebuild_seconds gauge\n")
		for _, st := range sn.shardStats {
			p("corrfused_shard_rebuild_seconds{shard=\"%d\"} %.6f\n", st.Shard, st.Build.Seconds())
		}
		p("# HELP corrfused_shard_triples Distinct triples routed to each shard of the live snapshot.\n")
		p("# TYPE corrfused_shard_triples gauge\n")
		for _, st := range sn.shardStats {
			p("corrfused_shard_triples{shard=\"%d\"} %d\n", st.Shard, st.Triples)
		}
		p("# HELP corrfused_shard_labeled Labeled triples in each shard's training slice.\n")
		p("# TYPE corrfused_shard_labeled gauge\n")
		for _, st := range sn.shardStats {
			p("corrfused_shard_labeled{shard=\"%d\"} %d\n", st.Shard, st.Labeled)
		}
	}
}
