package serve

import (
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"corrfuse"
	"corrfuse/internal/obs"
	"corrfuse/internal/wal"
)

type counter = atomic.Uint64

// metrics are the service's operational counters. The exposition-facing
// counters are registry-backed (declared once, emitted by Registry.WriteTo);
// the rest are internal state some registered closure reads at scrape time.
type metrics struct {
	// badRequests counts responses with a 4xx status. It is driven by the
	// instrumentation middleware's status recorder, so it covers every 4xx
	// the service emits — including the mux's own 404/405 responses, which
	// the old per-handler accounting silently missed.
	badRequests *obs.Counter

	observations *obs.Counter // claims ingested
	scored       *obs.Counter // triples scored via /v1/score
	rebuilds     *obs.Counter
	rebuildSkips *obs.Counter
	// partialRebuilds counts rebuilds routed through the dirty-shard
	// partial path (a subset of rebuilds).
	partialRebuilds *obs.Counter

	// onlineDisabled is a gauge: 1 while the live snapshot serves without
	// an incremental scorer (unsupervised method, or a scorer that failed
	// to derive/seed/replay — the log says which), 0 when live scoring is
	// up. It distinguishes batch-only degradation from normal operation.
	onlineDisabled atomic.Uint64

	// Admission control: rateLimited counts 429s by API-key label (capped
	// cardinality, see rateKeyLabel), shed counts 503s by endpoint, and
	// refuseCoalesced counts /v1/refuse requests that joined another
	// request's rebuild instead of starting their own.
	rateLimited     *obs.CounterVec
	shed            *obs.CounterVec
	refuseCoalesced *obs.Counter

	// encodeFailures counts responses whose JSON encoding failed. The
	// encode now runs into a pooled buffer before the status line is
	// written, so a failure is answered with a clean 500 instead of a
	// truncated 2xx body.
	encodeFailures *obs.Counter

	// persistFailures counts store saves that failed; lastPersistErr holds
	// the latest failure message ("" after a successful save) for
	// /v1/refuse, so operators can alert on a service that can no longer
	// persist instead of finding out from a log line.
	persistFailures *obs.Counter
	lastPersistErr  atomic.Value

	lastRebuildNanos atomic.Int64
}

// endpoints are the routed endpoint names; their request counters and
// latency histograms are pre-created so every endpoint appears in /metrics
// from the first scrape, hit or not (dashboards and alerts can rely on the
// series existing).
var endpoints = []string{
	"observe", "triple", "subject", "source", "score", "refuse",
	"healthz", "metrics", "traces",
}

// shedEndpoints are the endpoints behind the admission gate; their shed
// counters are pre-created for the same dashboards-can-rely-on-it reason.
var shedEndpoints = []string{
	"observe", "triple", "subject", "source", "score", "refuse",
}

// initObs builds the metric registry, trace recorder and logger. It runs
// before the WAL opens (the commit-wait histogram feeds the WAL's hook) and
// before the initial rebuild (whose stages are already timed), so every
// instrument exists for the server's whole life.
//
// Families are registered in presentation order; HELP/TYPE headers are
// emitted by Registry.WriteTo, declared exactly once here.
func (s *Server) initObs() {
	s.obsOn = !s.cfg.DisableInstrumentation
	s.slowThreshold = s.cfg.SlowRequestThreshold
	s.traces = obs.NewTraceRecorder(s.cfg.TraceBufferSize, s.cfg.TraceThreshold)
	s.logger = s.cfg.Logger
	if s.logger == nil && s.cfg.Logf != nil {
		// Bridge structured records (slow-request logs) onto the legacy
		// printf sink so they are not lost on Logf-only deployments.
		logf := s.cfg.Logf
		s.logger = obs.NewLoggerFunc(func(line string) { logf("%s", line) }, obs.LevelInfo, "text")
	}

	r := obs.NewRegistry()
	s.reg = r

	obs.RegisterBuildInfo(r, "corrfused_build_info")

	s.reqCounts = r.CounterVec("corrfused_requests_total", "Requests served, by endpoint.", "endpoint")
	s.reqHist = r.HistogramVec("corrfused_request_seconds", "Request latency by endpoint.", "endpoint", obs.DefBuckets)
	for _, e := range endpoints {
		s.reqCounts.With(e)
		s.reqHist.With(e)
	}
	s.respCodes = r.CounterVec("corrfused_responses_total", "Responses sent, by HTTP status code (includes router 404/405s).", "code")
	s.m.badRequests = r.Counter("corrfused_bad_requests_total", "Requests rejected with a 4xx status.")
	s.stageHist = r.HistogramVec("corrfused_request_stage_seconds", "Request-stage latency (decode, ingest, wal_commit, index_lookup, score).", "stage", obs.FineBuckets)

	s.m.observations = r.Counter("corrfused_observations_total", "Claims ingested via /v1/observe.")
	s.m.scored = r.Counter("corrfused_scored_triples_total", "Triples scored via /v1/score.")

	// Admission control. The families exist (at zero) even when the knobs
	// are disabled, so dashboards and alerts can rely on the series.
	s.m.rateLimited = r.CounterVec("corrfused_ratelimited_total", "Requests refused with 429 by the per-API-key rate limiter, by key (\"anon\" = keyless fallback bucket; \"other\" past the label cap).", "key")
	s.m.shed = r.CounterVec("corrfused_shed_total", "Requests shed with 503 by the max-in-flight gate, by endpoint (reads shed before durable writes).", "endpoint")
	for _, e := range shedEndpoints {
		s.m.shed.With(e)
	}
	r.GaugeFunc("corrfused_inflight", "Requests currently executing inside the admission gate (0 when -max-inflight is disabled).",
		func() float64 {
			if s.shedder == nil {
				return 0
			}
			return float64(s.shedder.InFlight())
		})
	s.m.refuseCoalesced = r.Counter("corrfused_refuse_coalesced_total", "Concurrent /v1/refuse requests that joined an in-flight rebuild instead of starting another.")
	s.m.encodeFailures = r.Counter("corrfused_response_encode_failures_total", "Responses whose JSON encoding failed (answered with a 500; the encode happens before any bytes hit the wire).")
	r.SampleFunc("corrfused_obs_encode_failures_total", "JSON encodings that failed inside the observability layer itself (unmarshalable log records, broken /debug/traces writes).", "counter",
		func() []obs.Sample { return []obs.Sample{{Value: float64(obs.EncodeFailures())}} })

	snap := func(f func(sn *snapshot) float64) func() float64 {
		return func() float64 { return f(s.snap.Load()) }
	}
	r.GaugeFunc("corrfused_snapshot_seq", "Sequence number of the live batch snapshot.",
		snap(func(sn *snapshot) float64 { return float64(sn.seq) }))
	r.GaugeFunc("corrfused_snapshot_age_seconds", "Age of the live batch snapshot.",
		snap(func(sn *snapshot) float64 { return time.Since(sn.builtAt).Seconds() }))
	r.GaugeFunc("corrfused_snapshot_triples", "Triples scored by the live snapshot.",
		snap(func(sn *snapshot) float64 { return float64(sn.triples) }))
	r.GaugeFunc("corrfused_snapshot_accepted", "Triples the live snapshot accepts as true.",
		snap(func(sn *snapshot) float64 { return float64(sn.accepted) }))

	r.GaugeFunc("corrfused_index_version", "Store data version the live read index was built at (always equals corrfused_snapshot_version).",
		snap(func(sn *snapshot) float64 { return float64(sn.idx.Version()) }))
	r.GaugeFunc("corrfused_snapshot_version", "Store data version the live snapshot was captured at.",
		snap(func(sn *snapshot) float64 { return float64(sn.version) }))
	r.GaugeFunc("corrfused_index_triples", "Fused results frozen in the live read index.",
		snap(func(sn *snapshot) float64 { return float64(sn.idx.Len()) }))
	r.GaugeFunc("corrfused_index_subjects", "Distinct subjects with results in the live read index.",
		snap(func(sn *snapshot) float64 { return float64(sn.idx.Subjects()) }))
	r.GaugeFunc("corrfused_index_sources", "Distinct sources contributing to the live read index.",
		snap(func(sn *snapshot) float64 { return float64(sn.idx.Sources()) }))
	r.GaugeFunc("corrfused_index_build_seconds", "Wall time of the live read index build.",
		snap(func(sn *snapshot) float64 { return sn.idx.BuildTime().Seconds() }))

	r.GaugeFunc("corrfused_store_triples", "Distinct triples in the store.",
		func() float64 { return float64(s.store.Len()) })
	r.GaugeFunc("corrfused_store_version", "Store data version (mutations that feed the model).",
		func() float64 { return float64(s.store.Version()) })
	r.GaugeFunc("corrfused_ingest_lag", "Data mutations not yet reflected in the batch snapshot.",
		func() float64 {
			// Load the snapshot before the store version: a concurrent swap
			// then overstates the lag for one scrape, never understates it
			// (the gauge must not go negative, it is emitted unsigned).
			sn := s.snap.Load()
			return float64(s.store.Version() - sn.version)
		})

	r.GaugeFunc("corrfused_live_triples", "Triples tracked by the incremental scorer.",
		func() float64 {
			s.live.RLock()
			defer s.live.RUnlock()
			if s.live.inc == nil {
				return 0
			}
			return float64(s.live.inc.Len())
		})
	r.GaugeFunc("corrfused_journal_entries", "Claims journaled since the last snapshot capture.",
		func() float64 {
			s.live.RLock()
			defer s.live.RUnlock()
			return float64(len(s.live.journal))
		})
	r.GaugeFunc("corrfused_unknown_sources", "Sources seen in ingests but absent from the quality model.",
		func() float64 {
			s.live.RLock()
			defer s.live.RUnlock()
			return float64(len(s.live.unknown))
		})

	s.m.rebuilds = r.Counter("corrfused_rebuilds_total", "Batch re-fusions performed.")
	s.m.rebuildSkips = r.Counter("corrfused_rebuild_skips_total", "Re-fusions skipped because the store was unchanged.")
	s.m.partialRebuilds = r.Counter("corrfused_partial_rebuilds_total", "Re-fusions that retrained only the dirty shards.")
	r.GaugeFunc("corrfused_online_disabled", "1 while the service runs batch-only (no incremental scorer), 0 when live scoring is up.",
		func() float64 { return float64(s.m.onlineDisabled.Load()) })
	r.GaugeFunc("corrfused_last_rebuild_seconds", "Duration of the last batch re-fusion.",
		func() float64 { return time.Duration(s.m.lastRebuildNanos.Load()).Seconds() })
	s.rebuildStage = r.HistogramVec("corrfused_rebuild_stage_seconds", "Re-fusion stage wall time (capture, train, freeze, writeback, index_build, online_seed, swap, shard_route, shard_build, snapshot_save_binary, snapshot_save_jsonl).", "stage", obs.DefBuckets)
	s.m.persistFailures = r.Counter("corrfused_persist_failures_total", "Store saves that failed (either format; a binary-snapshot failure demotes the persist to JSONL-only, it never loses data).")

	// Snapshot formats: how the store was loaded at startup (suppressed
	// unless cmd/fused recorded it via Config.SnapshotLoad) and which
	// cold-start format persist maintains.
	r.GaugeFunc("corrfused_snapshot_binary_persist", "1 while persist maintains the mmap-able CFSN binary snapshot next to the JSONL store, 0 in JSONL-only mode (or with persistence disabled).",
		func() float64 {
			if s.cfg.PersistPath != "" && s.binarySnapshots() {
				return 1
			}
			return 0
		})
	loadSample := func(name, help string, f func(li SnapshotLoad) float64) {
		r.SampleFunc(name, help, "gauge", func() []obs.Sample {
			li := s.cfg.SnapshotLoad
			if li == nil {
				return nil
			}
			return []obs.Sample{{Value: f(*li)}}
		})
	}
	loadSample("corrfused_snapshot_load_seconds", "Wall time the startup store load took (the cold-start cost this process paid).",
		func(li SnapshotLoad) float64 { return li.Duration.Seconds() })
	loadSample("corrfused_snapshot_load_bytes", "Size of the file the store was loaded from at startup.",
		func(li SnapshotLoad) float64 { return float64(li.Bytes) })
	loadSample("corrfused_snapshot_load_binary", "1 when startup loaded the CFSN binary snapshot, 0 when it parsed the JSONL store.",
		func(li SnapshotLoad) float64 {
			if li.Format == SnapshotBinary {
				return 1
			}
			return 0
		})
	loadSample("corrfused_snapshot_load_fallback", "1 when a binary snapshot existed but failed validation and startup fell back to the JSONL store (the reason is in /healthz).",
		func(li SnapshotLoad) float64 {
			if li.FallbackReason != "" {
				return 1
			}
			return 0
		})

	s.walWait = r.Histogram("corrfused_wal_commit_wait_seconds", "Wall time Commit callers spent waiting for durability (group-commit fsync wait, or buffer flush).", obs.DefBuckets)
	// The WAL families are suppressed — header included — when no WAL is
	// configured: a nil []Sample from the closure drops the family for that
	// scrape, replacing the old hand-written `if s.wal != nil` block.
	walGauge := func(name, help string, f func(wal wal.Stats) float64) {
		r.SampleFunc(name, help, "gauge", func() []obs.Sample {
			if s.wal == nil {
				return nil
			}
			return []obs.Sample{{Value: f(s.wal.Stats())}}
		})
	}
	walGauge("corrfused_wal_seq", "Last assigned WAL sequence number.",
		func(st wal.Stats) float64 { return float64(st.Seq) })
	walGauge("corrfused_wal_durable_seq", "Highest WAL sequence number covered by an fsync.",
		func(st wal.Stats) float64 { return float64(st.DurableSeq) })
	walGauge("corrfused_wal_segments", "Live WAL segment files.",
		func(st wal.Stats) float64 { return float64(st.Segments) })
	walGauge("corrfused_wal_bytes", "Total bytes across live WAL segments.",
		func(st wal.Stats) float64 { return float64(st.Bytes) })
	r.SampleFunc("corrfused_wal_fsyncs_total", "WAL fsync calls (group commits, interval ticks, rotations).", "counter",
		func() []obs.Sample {
			if s.wal == nil {
				return nil
			}
			return []obs.Sample{{Value: float64(s.wal.Stats().Fsyncs)}}
		})
	walGauge("corrfused_wal_group_commit_size", "Records the most recent group-commit fsync made durable at once.",
		func(st wal.Stats) float64 { return float64(st.LastGroupCommit) })
	walGauge("corrfused_wal_recovered_records", "Acknowledged observations replayed from the WAL at startup.",
		func(st wal.Stats) float64 { return float64(s.walRecovered) })
	walGauge("corrfused_wal_ignored_files", "Files in the WAL directory skipped at startup because their names are not valid segments (crash leftovers; each is also logged).",
		func(st wal.Stats) float64 { return float64(st.IgnoredFiles) })

	// The replication families are suppressed — header included — until
	// SetReplStatus installs a status source (followers only), mirroring the
	// WAL-family pattern above.
	replMetric := func(name, help, typ string, f func(st ReplStatus) float64) {
		r.SampleFunc(name, help, typ, func() []obs.Sample {
			st, ok := s.replStatusNow()
			if !ok {
				return nil
			}
			return []obs.Sample{{Value: f(st)}}
		})
	}
	replMetric("corrfused_repl_follower_connected", "1 while the follower's last leader contact succeeded, 0 while it serves stale reads and retries.", "gauge",
		func(st ReplStatus) float64 {
			if st.Connected {
				return 1
			}
			return 0
		})
	replMetric("corrfused_repl_lag_records", "Leader records not yet applied by this follower.", "gauge",
		func(st ReplStatus) float64 { return float64(st.LagRecords) })
	replMetric("corrfused_repl_lag_seconds", "How long this follower has continuously trailed the leader (0 when caught up).", "gauge",
		func(st ReplStatus) float64 { return st.LagSeconds })
	replMetric("corrfused_repl_applied_seq", "Last replicated WAL sequence applied by this follower.", "gauge",
		func(st ReplStatus) float64 { return float64(st.AppliedSeq) })
	replMetric("corrfused_repl_leader_seq", "Leader WAL head as of this follower's last contact.", "gauge",
		func(st ReplStatus) float64 { return float64(st.LeaderSeq) })
	replMetric("corrfused_repl_segments_shipped_total", "Shipment batches fetched from the leader and applied.", "counter",
		func(st ReplStatus) float64 { return float64(st.SegmentsShipped) })
	replMetric("corrfused_repl_diverged", "1 while this follower holds records outside the leader's durable history and needs an operator re-bootstrap.", "gauge",
		func(st ReplStatus) float64 {
			if st.Diverged {
				return 1
			}
			return 0
		})
	replMetric("corrfused_repl_rebootstraps_total", "Automatic snapshot re-bootstraps after the leader truncated past this follower's position; nonzero means the follower fell behind a full retention window.", "counter",
		func(st ReplStatus) float64 { return float64(st.Rebootstraps) })

	r.GaugeFunc("corrfused_shards", "Shards of the live batch model (1 = monolithic).",
		snap(func(sn *snapshot) float64 {
			if len(sn.shardStats) > 0 {
				return float64(len(sn.shardStats))
			}
			return 1
		}))
	// The per-shard families are suppressed for the monolithic engine.
	shardSamples := func(f func(sn *snapshot) []obs.Sample) func() []obs.Sample {
		return func() []obs.Sample {
			sn := s.snap.Load()
			if len(sn.shardStats) == 0 {
				return nil
			}
			return f(sn)
		}
	}
	r.SampleFunc("corrfused_shards_rebuilt", "Shards retrained for the live snapshot.", "gauge",
		shardSamples(func(sn *snapshot) []obs.Sample {
			rebuilt, _ := sn.rebuildCounts()
			return []obs.Sample{{Value: float64(rebuilt)}}
		}))
	r.SampleFunc("corrfused_shards_reused", "Shards adopted verbatim from the previous snapshot's model.", "gauge",
		shardSamples(func(sn *snapshot) []obs.Sample {
			_, reused := sn.rebuildCounts()
			return []obs.Sample{{Value: float64(reused)}}
		}))
	perShard := func(name, help string, f func(st corrfuse.ShardStat) float64) {
		r.SampleFunc(name, help, "gauge", shardSamples(func(sn *snapshot) []obs.Sample {
			out := make([]obs.Sample, 0, len(sn.shardStats))
			for _, st := range sn.shardStats {
				out = append(out, obs.Sample{
					Labels: obs.Label("shard", strconv.Itoa(st.Shard)),
					Value:  f(st),
				})
			}
			return out
		}))
	}
	perShard("corrfused_shard_reused", "Whether each shard of the live snapshot was adopted (1) or retrained (0).",
		func(st corrfuse.ShardStat) float64 {
			if st.Reused {
				return 1
			}
			return 0
		})
	perShard("corrfused_shard_rebuild_seconds", "Wall time of each shard's model build in the live snapshot.",
		func(st corrfuse.ShardStat) float64 { return st.Build.Seconds() })
	perShard("corrfused_shard_triples", "Distinct triples routed to each shard of the live snapshot.",
		func(st corrfuse.ShardStat) float64 { return float64(st.Triples) })
	perShard("corrfused_shard_labeled", "Labeled triples in each shard's training slice.",
		func(st corrfuse.ShardStat) float64 { return float64(st.Labeled) })

	r.SampleFunc("corrfused_traces_recorded_total", "Finished traces offered to the trace ring buffer.", "counter",
		func() []obs.Sample { return []obs.Sample{{Value: float64(s.traces.Total())}} })
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	//lint:ignore errswallow a scrape write fails only when the scraper hung up; nothing to do and nowhere to report it
	s.reg.WriteTo(w)
}
