package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"corrfuse/internal/obs"
)

func getMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	return string(raw)
}

// TestTraceEchoAndDebugTraces: a request carrying a well-formed
// X-Corrfused-Trace-Id gets the ID echoed on the response and its trace —
// stage spans included — is retrievable from /debug/traces; a malformed ID
// is replaced with a generated one.
func TestTraceEchoAndDebugTraces(t *testing.T) {
	srv := newServer(t, seedStore(t), corrConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(Observation{Source: "good1", Subject: "trace-1", Predicate: "p", Object: "v"})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/observe", strings.NewReader(string(body)))
	req.Header.Set(obs.TraceHeader, "trace-echo-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe: %d", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != "trace-echo-test-1" {
		t.Errorf("trace ID not echoed: got %q", got)
	}

	resp, err = http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	var dump struct {
		Recorded float64             `json:"recorded"`
		Traces   []obs.TraceSnapshot `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var found *obs.TraceSnapshot
	for i := range dump.Traces {
		if dump.Traces[i].ID == "trace-echo-test-1" {
			found = &dump.Traces[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("traced request not retrievable from /debug/traces: %+v", dump)
	}
	if found.Name != "observe" || found.Status != http.StatusOK {
		t.Errorf("trace = (%s, %d), want (observe, 200)", found.Name, found.Status)
	}
	spans := map[string]bool{}
	for _, sp := range found.Spans {
		spans[sp.Name] = true
	}
	for _, want := range []string{"decode", "ingest"} {
		if !spans[want] {
			t.Errorf("trace missing %q span; spans: %+v", want, found.Spans)
		}
	}

	// A malformed caller ID (embedded space) must not be honored.
	req, _ = http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set(obs.TraceHeader, "bad id with spaces")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got == "bad id with spaces" || got == "" {
		t.Errorf("malformed trace ID handling: echoed %q, want a generated replacement", got)
	}
}

// TestResponsesTotalCoversRouterErrors: responses the mux answers itself
// (404 unknown path, 405 wrong method) are counted in
// corrfused_responses_total and corrfused_bad_requests_total and land in the
// latency histogram under endpoint="other" — the paths the old per-handler
// counting missed entirely.
func TestResponsesTotalCoversRouterErrors(t *testing.T) {
	srv := newServer(t, seedStore(t), corrConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /nope: %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest("PUT", ts.URL+"/healthz", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("PUT /healthz: %d, want 405", resp.StatusCode)
	}

	text := getMetrics(t, ts.URL)
	for _, want := range []string{
		`corrfused_responses_total{code="404"} 1`,
		`corrfused_responses_total{code="405"} 1`,
		"corrfused_bad_requests_total 2",
		`corrfused_request_seconds_count{endpoint="other"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestMetricsExpositionLint: the full /metrics document — WAL and shard
// families included — passes the exposition linter: HELP/TYPE before
// samples, no duplicates, monotone cumulative histogram buckets with
// le="+Inf" equal to _count.
func TestMetricsExpositionLint(t *testing.T) {
	dir := t.TempDir()
	cfg := corrConfig()
	cfg.Options.Shards = 3
	cfg.WALDir = dir + "/wal"
	cfg.PersistPath = dir + "/store.jsonl"
	srv := newServer(t, seedStore(t), cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Touch every kind of path so the document is as populated as it gets:
	// ingest (stage histograms + WAL commit wait), a read, a router 404 and
	// a refresh (rebuild stage histograms).
	postJSON(t, ts.URL+"/v1/observe", Observation{Source: "good1", Subject: "lint-1", Predicate: "p", Object: "v"})
	postJSON(t, ts.URL+"/v1/refuse", map[string]any{})
	resp, err := http.Get(ts.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	text := getMetrics(t, ts.URL)
	if errs := obs.LintExposition([]byte(text)); len(errs) > 0 {
		for _, e := range errs {
			t.Error(e)
		}
	}
	for _, want := range []string{
		`corrfused_request_seconds_count{endpoint="observe"} 1`,
		`stage="wal_commit"`,
		`stage="train"`,
		"corrfused_wal_commit_wait_seconds_count 1",
		"corrfused_build_info{",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestDisableInstrumentation: with Config.DisableInstrumentation no trace is
// created or echoed, but the endpoint request counters and the rest of
// /metrics keep working.
func TestDisableInstrumentation(t *testing.T) {
	cfg := corrConfig()
	cfg.DisableInstrumentation = true
	srv := newServer(t, seedStore(t), cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set(obs.TraceHeader, "should-not-echo")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(obs.TraceHeader); got != "" {
		t.Errorf("instrumentation disabled but trace ID echoed: %q", got)
	}

	text := getMetrics(t, ts.URL)
	if !strings.Contains(text, `corrfused_requests_total{endpoint="healthz"} 1`) {
		t.Error("endpoint request counter stopped working under DisableInstrumentation")
	}
	if strings.Contains(text, "corrfused_responses_total{") {
		t.Error("response-status accounting should be off under DisableInstrumentation")
	}
}

// TestConcurrentScrapeAndIngest hammers /metrics, /debug/traces, ingestion
// and forced rebuilds concurrently; every scraped document must still pass
// the exposition linter. Run with -race (CI does) this also proves the
// instrumentation hot path is data-race-free.
func TestConcurrentScrapeAndIngest(t *testing.T) {
	srv := newServer(t, seedStore(t), corrConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				body, _ := json.Marshal(Observation{
					Source: "good1", Subject: fmt.Sprintf("conc-%d-%d", w, i), Predicate: "p", Object: "v",
				})
				resp, err := http.Post(ts.URL+"/v1/observe", "application/json", strings.NewReader(string(body)))
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			if _, _, err := srv.rebuild(context.Background(), true); err != nil {
				errs <- err
				return
			}
		}
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					errs <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if lintErrs := obs.LintExposition(raw); len(lintErrs) > 0 {
					errs <- fmt.Errorf("scrape %d: %v", i, lintErrs[0])
					return
				}
				resp, err = http.Get(ts.URL + "/debug/traces")
				if err != nil {
					errs <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
