package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"corrfuse/internal/triple"
)

// TestIndexMatchesModel: through the real rebuild path (initial fusion,
// ingest, re-fusion), the snapshot's read index must agree with the batch
// model on every stored triple — the property the O(1) read path stands on.
func TestIndexMatchesModel(t *testing.T) {
	for _, shards := range []int{0, 3} {
		name := "monolithic"
		if shards > 0 {
			name = "sharded"
		}
		t.Run(name, func(t *testing.T) {
			st := seedStoreWide(t, 24)
			cfg := corrConfig()
			cfg.Options.Shards = shards
			srv := newServer(t, st, cfg)
			srv.ingest(Observation{Source: "good1", Subject: "wnew", Predicate: "p", Object: "v"})
			if _, skipped, err := srv.rebuild(context.Background(), false); err != nil || skipped {
				t.Fatalf("rebuild: skipped=%v err=%v", skipped, err)
			}
			sn := srv.snap.Load()
			if sn.idx.Version() != sn.version {
				t.Fatalf("index version %d != snapshot version %d", sn.idx.Version(), sn.version)
			}
			checked := 0
			for i := 0; i < sn.data.NumTriples(); i++ {
				id := triple.TripleID(i)
				if len(sn.data.Providers(id)) == 0 {
					continue
				}
				p, accepted, ok := sn.idx.Lookup(id)
				if !ok {
					t.Fatalf("index misses provided triple %v", sn.data.Triple(id))
				}
				if p < 0 || p > 1 || math.IsNaN(p) {
					t.Fatalf("index serves %v outside [0,1]", p)
				}
				if want := sn.fuser.ProbabilityByID(id); math.Abs(p-want) > 1e-12 {
					t.Fatalf("index %v != model %v for %v", p, want, sn.data.Triple(id))
				}
				if dec, known := sn.fuser.Decide(sn.data.Triple(id)); !known || dec != accepted {
					t.Fatalf("index decision %v != model %v for %v", accepted, dec, sn.data.Triple(id))
				}
				checked++
			}
			if checked == 0 {
				t.Fatal("no provided triples checked")
			}
			if sn.idx.Len() != checked {
				t.Fatalf("index holds %d results, dataset has %d provided triples", sn.idx.Len(), checked)
			}
		})
	}
}

// TestSubjectServedFromIndex: /v1/subject answers come pre-ranked from the
// snapshot index with matching version stamps, and reflect a re-fusion
// (not the pre-rebuild store state).
func TestSubjectServedFromIndex(t *testing.T) {
	st := seedStore(t)
	srv := newServer(t, st, corrConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, code := getJSON(t, ts.URL+"/v1/subject/u1")
	if code != http.StatusOK {
		t.Fatalf("subject: %d", code)
	}
	if body["indexVersion"].(float64) != body["snapshotVersion"].(float64) {
		t.Fatalf("index/snapshot version mismatch: %v vs %v", body["indexVersion"], body["snapshotVersion"])
	}
	results := body["results"].([]any)
	if len(results) != 1 {
		t.Fatalf("subject u1: %d results, want 1", len(results))
	}
	first := results[0].(map[string]any)
	if first["probability"].(float64) <= 0 {
		t.Fatalf("subject result not scored: %v", first)
	}

	// An unknown subject yields an empty (not absent) result list.
	body, code = getJSON(t, ts.URL+"/v1/subject/nosuchsubject")
	if code != http.StatusOK || len(body["results"].([]any)) != 0 {
		t.Fatalf("unknown subject: code %d results %v", code, body["results"])
	}

	// Ranked: seed a subject with a high- and a low-probability triple.
	postJSON(t, ts.URL+"/v1/observe", map[string]any{"observations": []Observation{
		{Source: "good1", Subject: "ranked", Predicate: "p", Object: "good"},
		{Source: "good2", Subject: "ranked", Predicate: "p", Object: "good"},
		{Source: "bad", Subject: "ranked", Predicate: "p", Object: "poor"},
	}})
	postJSON(t, ts.URL+"/v1/refuse", struct{}{})
	body, _ = getJSON(t, ts.URL+"/v1/subject/ranked")
	results = body["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("subject ranked: %d results, want 2", len(results))
	}
	p0 := results[0].(map[string]any)["probability"].(float64)
	p1 := results[1].(map[string]any)["probability"].(float64)
	if p0 < p1 {
		t.Fatalf("subject results not ranked: %v before %v", p0, p1)
	}
}

// TestScoreRequestLimits: oversized /v1/score requests are rejected with
// 413 and a structured error before any scoring work — both the triple
// count cap and the body byte cap.
func TestScoreRequestLimits(t *testing.T) {
	st := seedStore(t)
	cfg := corrConfig()
	cfg.MaxScoreTriples = 4
	cfg.MaxBodyBytes = 1 << 12
	srv := newServer(t, st, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func(body []byte) (int, map[string]any) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	// Five triples against a cap of four: 413 naming the triple limit.
	var req ScoreRequest
	for i := 0; i < 5; i++ {
		req.Triples = append(req.Triples, tr("t0", "v"))
	}
	raw, _ := json.Marshal(req)
	code, out := post(raw)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-count request: %d, want 413", code)
	}
	if out["error"] == nil || out["maxTriples"].(float64) != 4 {
		t.Fatalf("over-count error not structured: %v", out)
	}

	// A body past the byte cap: 413 naming the byte limit, even though the
	// triple count would have passed.
	big, _ := json.Marshal(ScoreRequest{Triples: []triple.Triple{
		{Subject: strings.Repeat("x", 1<<13), Predicate: "p", Object: "v"},
	}})
	code, out = post(big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: %d, want 413", code)
	}
	if out["error"] == nil || out["maxBytes"].(float64) != float64(1<<12) {
		t.Fatalf("oversized-body error not structured: %v", out)
	}

	// The byte cap guards the write path too: an oversized /v1/observe
	// body is rejected before any decoding work.
	resp, err := http.Post(ts.URL+"/v1/observe", "application/json", bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized observe body: %d, want 413", resp.StatusCode)
	}

	// At the cap, the request still succeeds.
	req.Triples = req.Triples[:4]
	raw, _ = json.Marshal(req)
	if code, _ = post(raw); code != http.StatusOK {
		t.Fatalf("at-cap request: %d, want 200", code)
	}

	// The defaults apply when the config leaves the caps zero.
	srv2 := newServer(t, seedStore(t), corrConfig())
	if srv2.maxScoreTriples != DefaultMaxScoreTriples || srv2.maxBodyBytes != DefaultMaxBodyBytes {
		t.Fatalf("default caps = %d/%d", srv2.maxScoreTriples, srv2.maxBodyBytes)
	}
}

// TestScoreServesAcceptance: snapshot-basis score results carry the frozen
// acceptance decision.
func TestScoreServesAcceptance(t *testing.T) {
	st := seedStore(t)
	srv := newServer(t, st, corrConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	sc := postJSON(t, ts.URL+"/v1/score", ScoreRequest{Triples: []triple.Triple{
		tr("t0", "v"), tr("f0", "v"),
	}})
	results := sc["results"].([]any)
	acceptedTrue := results[0].(map[string]any)
	if acceptedTrue["basis"].(string) != "snapshot" || acceptedTrue["accepted"] != true {
		t.Fatalf("true triple not served accepted from the snapshot: %v", acceptedTrue)
	}
	rejected := results[1].(map[string]any)
	if rejected["basis"].(string) != "snapshot" || rejected["accepted"] != false {
		t.Fatalf("rejected snapshot triple must carry accepted=false: %v", rejected)
	}
	if sc["indexVersion"].(float64) != sc["snapshotVersion"].(float64) {
		t.Fatalf("score response mixed generations: %v", sc)
	}
}
