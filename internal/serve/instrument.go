package serve

import (
	"context"
	"net/http"
	"strconv"
	"time"

	"corrfuse/internal/obs"
)

// reqState is the per-request slot the instrumentation middleware shares
// with the route wrappers. The Go 1.22 mux hands handlers a shallow request
// copy, so an outer middleware cannot read r.Pattern after the fact; instead
// the route wrapper writes the endpoint name into this slot, and a request
// the mux answers itself (404, 405) keeps the zero value and is accounted
// under "other".
type reqState struct {
	endpoint string
}

type reqStateKey struct{}

func stateFrom(ctx context.Context) *reqState {
	st, _ := ctx.Value(reqStateKey{}).(*reqState)
	return st
}

// statusRecorder captures the response status code so the middleware can
// account responses the handlers never see (the mux's own 404/405s included).
type statusRecorder struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (sr *statusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.code = code
		sr.wrote = true
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(p []byte) (int, error) {
	if !sr.wrote {
		sr.code = http.StatusOK
		sr.wrote = true
	}
	return sr.ResponseWriter.Write(p)
}

// Unwrap lets http.ResponseController reach the underlying writer's
// optional interfaces (Flusher, deadline control).
func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

func (sr *statusRecorder) status() int {
	if !sr.wrote {
		// Handler returned without writing: net/http sends 200.
		return http.StatusOK
	}
	return sr.code
}

// instrument is the outermost middleware: it resolves the request's trace ID
// (honoring a well-formed X-Corrfused-Trace-Id, generating one otherwise),
// echoes it on the response, attaches a Trace to the context for the stage
// spans downstream, and on completion feeds the per-endpoint latency
// histogram, the per-status response counter, the 4xx counter, the trace
// ring buffer, and — past the threshold — the slow-request log.
//
// With Config.DisableInstrumentation the mux is returned bare.
func (s *Server) instrument(h http.Handler) http.Handler {
	if !s.obsOn {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(obs.TraceHeader)
		if !obs.SanitizeTraceID(id) {
			id = obs.NewTraceID()
		}
		w.Header().Set(obs.TraceHeader, id)

		st := &reqState{}
		tr := obs.NewTrace(id, "")
		ctx := obs.ContextWithTrace(r.Context(), tr)
		ctx = context.WithValue(ctx, reqStateKey{}, st)
		rec := &statusRecorder{ResponseWriter: w}

		h.ServeHTTP(rec, r.WithContext(ctx))

		endpoint := st.endpoint
		if endpoint == "" {
			endpoint = "other"
		}
		status := rec.status()
		tr.Name = endpoint
		tr.Finish(status)
		d := tr.Duration()

		//lint:ignore labelbound endpoint is a route name or "other"; bounded by the mux
		s.reqHist.With(endpoint).Observe(d)
		//lint:ignore labelbound HTTP status codes are a bounded set
		s.respCodes.With(strconv.Itoa(status)).Inc()
		if status >= 400 && status < 500 {
			s.m.badRequests.Inc()
		}
		s.traces.Record(tr)
		if s.slowThreshold > 0 && d >= s.slowThreshold {
			s.logger.Warn(ctx, "slow request",
				"endpoint", endpoint,
				"method", r.Method,
				"path", r.URL.Path,
				"status", status,
				"duration", d,
			)
		}
	})
}

// route wraps a handler with its endpoint's request counter and labels the
// in-flight request state for the instrumentation middleware. The counter is
// resolved once at registration, so the per-request cost is one atomic add.
// It runs OUTSIDE the admission chain (see routes), so rate-limited and shed
// requests are still counted, labeled and traced under their endpoint.
func (s *Server) route(endpoint string, h http.Handler) http.Handler {
	//lint:ignore labelbound endpoint is a route constant at every route call site (see routes)
	c := s.reqCounts.With(endpoint)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.Inc()
		if st := stateFrom(r.Context()); st != nil {
			st.endpoint = endpoint
		}
		h.ServeHTTP(w, r)
	})
}

// span times one named stage of a request: it records a span on the
// request's trace and feeds the per-stage latency histogram. Call the
// returned closer when the stage completes. With instrumentation disabled it
// is a no-op.
func (s *Server) span(ctx context.Context, stage string) func() {
	if !s.obsOn {
		return func() {}
	}
	tr := obs.TraceFrom(ctx)
	begin := time.Now()
	return func() {
		d := time.Since(begin)
		if tr != nil {
			tr.AddSpan(stage, begin.Sub(tr.Start), d)
		}
		//lint:ignore labelbound stage is a stage-name constant at every span call site
		s.stageHist.With(stage).Observe(d)
	}
}
