package serve

import (
	"context"
	"path/filepath"
	"runtime"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"corrfuse/internal/wal"
)

// benchWriters is the concurrency the ingest benchmarks aim for: the
// acceptance bar is BenchmarkIngestWALGroupCommit sustaining at least half
// of BenchmarkIngestNoWAL's throughput at 8 concurrent writers with
// -wal-sync always — the group commit amortizing fsyncs across writers is
// what makes that possible.
const benchWriters = 8

// benchmarkIngest measures the full durable ingest path (store write, WAL
// append, group commit, live-scorer update) under concurrent writers.
func benchmarkIngest(b *testing.B, cfg Config) {
	srv, err := New(seedStoreData(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Close(ctx)
	}()

	procs := runtime.GOMAXPROCS(0)
	b.SetParallelism((benchWriters + procs - 1) / procs)
	var id atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			o := Observation{
				Source:    "good1",
				Subject:   "bench-" + strconv.FormatInt(id.Add(1), 10),
				Predicate: "p",
				Object:    "v",
			}
			_, seq, err := srv.ingest(o)
			if err != nil {
				b.Error(err)
				return
			}
			if srv.wal != nil {
				if err := srv.wal.Commit(seq); err != nil {
					b.Error(err)
					return
				}
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "obs/s")
}

// BenchmarkIngestNoWAL is the durability-free baseline: an ack only
// promises the claim reached memory.
func BenchmarkIngestNoWAL(b *testing.B) {
	benchmarkIngest(b, corrConfig())
}

// BenchmarkIngestWALInterval appends to the WAL but fsyncs on a timer: the
// write syscall is on the ingest path, the fsync is not.
func BenchmarkIngestWALInterval(b *testing.B) {
	dir := b.TempDir()
	cfg := corrConfig()
	cfg.WALDir = filepath.Join(dir, "wal")
	cfg.WALSync = wal.SyncInterval
	cfg.PersistPath = filepath.Join(dir, "store.jsonl")
	benchmarkIngest(b, cfg)
}

// BenchmarkIngestWALGroupCommit is the full contract: every ack is fsynced,
// with concurrent writers coalescing into shared group commits.
func BenchmarkIngestWALGroupCommit(b *testing.B) {
	dir := b.TempDir()
	cfg := corrConfig()
	cfg.WALDir = filepath.Join(dir, "wal")
	cfg.WALSync = wal.SyncAlways
	cfg.PersistPath = filepath.Join(dir, "store.jsonl")
	benchmarkIngest(b, cfg)
}

// BenchmarkIngestWALGroupCommitNoObs re-runs the group-commit benchmark with
// instrumentation disabled (no commit-wait timing hook): the delta against
// BenchmarkIngestWALGroupCommit is the observability overhead on the durable
// ingest path — budgeted at ≤ 5%. CI records both in BENCH_obs.json.
func BenchmarkIngestWALGroupCommitNoObs(b *testing.B) {
	dir := b.TempDir()
	cfg := corrConfig()
	cfg.WALDir = filepath.Join(dir, "wal")
	cfg.WALSync = wal.SyncAlways
	cfg.PersistPath = filepath.Join(dir, "store.jsonl")
	cfg.DisableInstrumentation = true
	benchmarkIngest(b, cfg)
}
