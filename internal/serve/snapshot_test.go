package serve

import (
	"context"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"corrfuse/internal/store"
	"corrfuse/internal/triple"
)

// scoreAll fetches /v1/score probabilities for every triple in the store.
func scoreAll(t *testing.T, base string, st *store.Store) map[string]float64 {
	t.Helper()
	d := st.Dataset()
	out := make(map[string]float64)
	for i := 0; i < d.NumTriples(); i++ {
		e := d.Triple(triple.TripleID(i))
		body := postJSON(t, base+"/v1/score", map[string]any{
			"triples": []map[string]string{{"subject": e.Subject, "predicate": e.Predicate, "object": e.Object}},
		})
		results, _ := body["results"].([]any)
		if len(results) != 1 {
			t.Fatalf("score %v: %d results", e, len(results))
		}
		r := results[0].(map[string]any)
		out[e.Key()], _ = r["probability"].(float64)
	}
	return out
}

// TestPersistDualFormatRoundTrip is the serve-level round-trip guarantee
// behind the binary snapshot: a persist writes both formats, a restart
// from the binary snapshot serves fused probabilities identical (within
// 1e-12; in practice bit-exact, since the store round-trips probability
// bits) to a restart from the JSONL store.
func TestPersistDualFormatRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.jsonl")
	cfg := corrConfig()
	cfg.PersistPath = path

	seed := seedStore(t)
	srv := newServer(t, seed, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	postJSON(t, ts.URL+"/v1/refuse", struct{}{}) // rebuild + persist

	if _, err := os.Stat(path); err != nil {
		t.Fatalf("JSONL store not written: %v", err)
	}
	if _, err := os.Stat(store.BinaryPath(path)); err != nil {
		t.Fatalf("binary snapshot not written: %v", err)
	}

	// Restart twice: once preferring the binary snapshot, once forced to
	// parse JSONL. Both must serve the same fused probabilities.
	fromBin, info, err := store.LoadPreferred(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Format != "binary" || info.FallbackReason != "" {
		t.Fatalf("restart did not use the binary snapshot: %+v", info)
	}
	fromJSONL, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}

	binSrv := newServer(t, fromBin, corrConfig())
	binTS := httptest.NewServer(binSrv.Handler())
	defer binTS.Close()
	jsonlSrv := newServer(t, fromJSONL, corrConfig())
	jsonlTS := httptest.NewServer(jsonlSrv.Handler())
	defer jsonlTS.Close()

	binScores := scoreAll(t, binTS.URL, fromBin)
	jsonlScores := scoreAll(t, jsonlTS.URL, fromJSONL)
	if len(binScores) == 0 || len(binScores) != len(jsonlScores) {
		t.Fatalf("score coverage differs: %d vs %d triples", len(binScores), len(jsonlScores))
	}
	for k, p := range binScores {
		q, ok := jsonlScores[k]
		if !ok {
			t.Fatalf("triple %q missing from JSONL restart", k)
		}
		if math.Abs(p-q) > 1e-12 {
			t.Errorf("triple %q: binary restart %v vs JSONL restart %v", k, p, q)
		}
	}
}

// TestPersistJSONLOnlyRemovesBinary: switching to -snapshot-format jsonl
// deletes the stale .cfsn so it can never shadow newer JSONL saves.
func TestPersistJSONLOnlyRemovesBinary(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.jsonl")

	binCfg := corrConfig()
	binCfg.PersistPath = path
	srv, err := New(seedStore(t), binCfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(store.BinaryPath(path)); err != nil {
		t.Fatalf("binary snapshot not written: %v", err)
	}

	jsonlCfg := corrConfig()
	jsonlCfg.PersistPath = path
	jsonlCfg.SnapshotFormat = SnapshotJSONL
	st, _, err := store.LoadPreferred(path)
	if err != nil {
		t.Fatal(err)
	}
	srv2, err := New(st, jsonlCfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := srv2.Close(ctx2); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(store.BinaryPath(path)); !os.IsNotExist(err) {
		t.Fatalf("stale binary snapshot not removed under SnapshotFormat jsonl: %v", err)
	}
}

func TestNewRejectsUnknownSnapshotFormat(t *testing.T) {
	cfg := corrConfig()
	cfg.SnapshotFormat = "msgpack"
	if _, err := New(seedStore(t), cfg); err == nil {
		t.Fatal("New accepted an unknown SnapshotFormat")
	}
}

// TestHealthzSnapshotSection: /healthz reports the persist format and the
// recorded startup load, including a loud fallback reason.
func TestHealthzSnapshotSection(t *testing.T) {
	cfg := corrConfig()
	cfg.PersistPath = filepath.Join(t.TempDir(), "store.jsonl")
	cfg.SnapshotLoad = &SnapshotLoad{
		Format:         SnapshotJSONL,
		Bytes:          12345,
		Duration:       42 * time.Millisecond,
		FallbackReason: "invalid binary snapshot: CRC mismatch",
	}
	srv := newServer(t, seedStore(t), cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, code := getJSON(t, ts.URL+"/healthz")
	if code != 200 {
		t.Fatalf("healthz: %d", code)
	}
	snap, ok := body["snapshot"].(map[string]any)
	if !ok {
		t.Fatalf("healthz missing snapshot section: %v", body)
	}
	if snap["persistFormat"] != "binary" || snap["loadFormat"] != "jsonl" {
		t.Errorf("snapshot formats: %v", snap)
	}
	if b, _ := snap["loadBytes"].(float64); b != 12345 {
		t.Errorf("loadBytes = %v", snap["loadBytes"])
	}
	if reason, _ := snap["loadFallbackReason"].(string); reason == "" {
		t.Errorf("fallback reason not surfaced: %v", snap)
	}

	// The load metrics are published when SnapshotLoad is recorded.
	metrics := getMetrics(t, ts.URL)
	for _, want := range []string{
		"corrfused_snapshot_binary_persist 1",
		"corrfused_snapshot_load_binary 0",
		"corrfused_snapshot_load_bytes 12345",
		"corrfused_snapshot_load_fallback 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestSnapshotLoadMetricsSuppressed: without recorded load info the
// corrfused_snapshot_load_* families are absent entirely.
func TestSnapshotLoadMetricsSuppressed(t *testing.T) {
	srv := newServer(t, seedStore(t), corrConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	metrics := getMetrics(t, ts.URL)
	if strings.Contains(metrics, "corrfused_snapshot_load_seconds") {
		t.Error("snapshot-load metrics published without load info")
	}
	if !strings.Contains(metrics, "corrfused_snapshot_binary_persist 0") {
		t.Error("missing corrfused_snapshot_binary_persist 0 (persistence disabled)")
	}
}

// TestCorruptBinarySnapshotFallsBackAtStartup drives the full restart
// path an operator would hit: persist both formats, corrupt the binary,
// reload — the JSONL store serves, the reason is recorded, and the
// fused results still match the original within 1e-12.
func TestCorruptBinarySnapshotFallsBackAtStartup(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.jsonl")
	cfg := corrConfig()
	cfg.PersistPath = path
	srv := newServer(t, seedStore(t), cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	postJSON(t, ts.URL+"/v1/refuse", struct{}{})

	raw, err := os.ReadFile(store.BinaryPath(path))
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/3] ^= 0x08
	if err := os.WriteFile(store.BinaryPath(path), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	st, info, err := store.LoadPreferred(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Format != "jsonl" || info.FallbackReason == "" {
		t.Fatalf("corrupt snapshot did not fall back loudly: %+v", info)
	}
	restarted := newServer(t, st, corrConfig())
	rts := httptest.NewServer(restarted.Handler())
	defer rts.Close()

	want := scoreAll(t, ts.URL, st)
	got := scoreAll(t, rts.URL, st)
	for k, p := range want {
		if q := got[k]; math.Abs(p-q) > 1e-12 {
			t.Errorf("triple %q: original %v vs fallback restart %v", k, p, q)
		}
	}
}
