package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// doJSON issues a request with an optional API key and decodes the JSON
// body, returning it with the status code and response headers.
func doJSON(t *testing.T, method, url, apiKey string, body any) (map[string]any, int, http.Header) {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if apiKey != "" {
		req.Header.Set(APIKeyHeader, apiKey)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return out, resp.StatusCode, resp.Header
}

// stageGate wires a testStageHook that blocks at the end of the named
// rebuild stage until released. entered is signalled (capacity-buffered,
// non-blocking) each time a rebuild reaches the gate.
type stageGate struct {
	stage   string
	release chan struct{}
	entered chan struct{}
}

func newStageGate(t *testing.T, srv *Server, stage string) *stageGate {
	t.Helper()
	g := &stageGate{
		stage:   stage,
		release: make(chan struct{}),
		entered: make(chan struct{}, 16),
	}
	srv.testStageHook = func(name string) {
		if name == g.stage {
			select {
			case g.entered <- struct{}{}:
			default:
			}
			<-g.release
		}
	}
	// Registered after newServer's cleanup, so it runs BEFORE the server
	// closes: a still-gated rebuild must be released or Close deadlocks on
	// rebuildMu.
	t.Cleanup(g.Release)
	return g
}

func (g *stageGate) Release() {
	select {
	case <-g.release:
	default:
		close(g.release)
	}
}

func (g *stageGate) WaitEntered(t *testing.T) {
	t.Helper()
	select {
	case <-g.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("rebuild never reached the gated stage")
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRateLimitEndToEnd: bursting past a key's bucket sees linted 429s —
// Retry-After header plus structured body — while the in-budget durable
// writes before it are fully acknowledged (walSeq present), and other keys
// are untouched. Exercises the acceptance scenario for the admission chain.
func TestRateLimitEndToEnd(t *testing.T) {
	cfg := walConfig(t.TempDir())
	cfg.RateLimit = 1
	cfg.RateBurst = 2
	srv := newServer(t, seedStore(t), cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Two in-budget durable writes acknowledge with a WAL sequence.
	for i := 0; i < 2; i++ {
		o := Observation{Source: "good1", Subject: fmt.Sprintf("rl%d", i), Predicate: "p", Object: "v"}
		body, code, _ := doJSON(t, "POST", ts.URL+"/v1/observe", "alice", o)
		if code != http.StatusOK {
			t.Fatalf("in-budget observe %d: status %d, body %v", i, code, body)
		}
		if _, ok := body["walSeq"]; !ok {
			t.Fatalf("in-budget observe %d acknowledged without walSeq: %v", i, body)
		}
	}

	// The third request in the same second exceeds the burst.
	body, code, hdr := doJSON(t, "POST", ts.URL+"/v1/observe", "alice",
		Observation{Source: "good1", Subject: "rl2", Predicate: "p", Object: "v"})
	if code != http.StatusTooManyRequests {
		t.Fatalf("burst request: status %d, want 429 (body %v)", code, body)
	}
	ra, err := strconv.Atoi(hdr.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After = %q, want whole seconds >= 1", hdr.Get("Retry-After"))
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "rate limit") {
		t.Fatalf("429 body error = %v, want a rate-limit message", body["error"])
	}
	if secs, ok := body["retryAfterSeconds"].(float64); !ok || secs <= 0 {
		t.Fatalf("429 body retryAfterSeconds = %v, want > 0", body["retryAfterSeconds"])
	}
	if got := srv.m.rateLimited.With("alice").Load(); got != 1 {
		t.Fatalf("corrfused_ratelimited_total{alice} = %d, want 1", got)
	}

	// A different key — and the anonymous fallback — have their own buckets.
	if _, code, _ := doJSON(t, "GET", ts.URL+"/v1/subject/t0", "bob", nil); code != http.StatusOK {
		t.Fatalf("other key caught by alice's bucket: status %d", code)
	}
	if _, code, _ := doJSON(t, "GET", ts.URL+"/v1/subject/t0", "", nil); code != http.StatusOK {
		t.Fatalf("anonymous request caught by alice's bucket: status %d", code)
	}
}

// TestShedReadsBeforeWrites: with an in-flight rebuild signalling pressure,
// reads are shed with a retryable 503 while a durable write through the
// same gate is still admitted and acknowledged — the shed order the gate
// exists to enforce.
func TestShedReadsBeforeWrites(t *testing.T) {
	cfg := corrConfig()
	cfg.MaxInFlight = 2 // readMax = 1, under pressure reads shed at 0
	srv := newServer(t, seedStore(t), cfg)
	gate := newStageGate(t, srv, "capture")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Park a rebuild mid-flight: /v1/refuse holds one write slot and
	// rebuildActive signals pressure.
	refuseDone := make(chan int, 1)
	go func() {
		_, code, _ := doJSON(t, "POST", ts.URL+"/v1/refuse", "", nil)
		refuseDone <- code
	}()
	gate.WaitEntered(t)

	// Reads now shed before reaching their handler.
	body, code, hdr := doJSON(t, "GET", ts.URL+"/v1/triple?subject=t0&predicate=p&object=v", "", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("read under pressure: status %d, want 503 (body %v)", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("shed 503 carries no Retry-After header")
	}
	if got := srv.m.shed.With("triple").Load(); got != 1 {
		t.Fatalf("corrfused_shed_total{triple} = %d, want 1", got)
	}

	// A write through the same gate is still admitted and acknowledged.
	obody, ocode, _ := doJSON(t, "POST", ts.URL+"/v1/observe", "",
		Observation{Source: "good1", Subject: "shed1", Predicate: "p", Object: "v"})
	if ocode != http.StatusOK {
		t.Fatalf("write under read-shedding pressure: status %d, body %v", ocode, obody)
	}
	if got := srv.m.shed.With("observe").Load(); got != 0 {
		t.Fatalf("corrfused_shed_total{observe} = %d, want 0", got)
	}

	gate.Release()
	if code := <-refuseDone; code != http.StatusOK {
		t.Fatalf("gated refuse finished with %d", code)
	}
	// Pressure clears once the rebuild lands: reads flow again.
	waitFor(t, "pressure to clear", func() bool { return !srv.rebuildActive.Load() })
	if _, code, _ := doJSON(t, "GET", ts.URL+"/v1/triple?subject=t0&predicate=p&object=v", "", nil); code != http.StatusOK {
		t.Fatalf("read after pressure cleared: status %d", code)
	}
}

// TestDeadlineCancelsSlowRebuild: a /v1/refuse that blows its budget
// (refuseTimeoutFactor x RequestTimeout) returns a retryable 503, the
// abandoned rebuild aborts at its next checkpoint without swapping a
// snapshot, and the service recovers to serve the next refuse normally.
func TestDeadlineCancelsSlowRebuild(t *testing.T) {
	cfg := corrConfig()
	cfg.RequestTimeout = 30 * time.Millisecond // refuse budget: 300ms
	srv := newServer(t, seedStore(t), cfg)
	gate := newStageGate(t, srv, "capture")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	base := srv.m.rebuilds.Load()
	body, code, _ := doJSON(t, "POST", ts.URL+"/v1/refuse", "", nil)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("over-budget refuse: status %d, want 503 (body %v)", code, body)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "re-fusion canceled") {
		t.Fatalf("over-budget refuse error = %v", body["error"])
	}

	// The handler answered at the deadline; the parked rebuild observes
	// its canceled context once released and aborts before training.
	gate.Release()
	waitFor(t, "canceled rebuild to unwind", func() bool { return !srv.rebuildActive.Load() })
	if got := srv.m.rebuilds.Load(); got != base {
		t.Fatalf("canceled refuse still completed a rebuild: %d -> %d", base, got)
	}

	// The gate is open now: the next refuse fits its budget and succeeds.
	body, code, _ = doJSON(t, "POST", ts.URL+"/v1/refuse", "", nil)
	if code != http.StatusOK {
		t.Fatalf("refuse after recovery: status %d, body %v", code, body)
	}
	if got := srv.m.rebuilds.Load(); got != base+1 {
		t.Fatalf("rebuilds after recovery = %d, want %d", got, base+1)
	}
}

// TestClientDisconnectCancelsRebuild: a client that abandons /v1/refuse
// mid-rebuild cancels the in-flight work (it was the only waiter), and the
// rebuild aborts at its next checkpoint instead of training and swapping a
// snapshot nobody asked to keep.
func TestClientDisconnectCancelsRebuild(t *testing.T) {
	cfg := corrConfig()
	srv := newServer(t, seedStore(t), cfg)
	gate := newStageGate(t, srv, "capture")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	base := srv.m.rebuilds.Load()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/refuse", nil)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errc <- err
	}()
	gate.WaitEntered(t)

	cancel() // the client hangs up while the rebuild is parked
	if err := <-errc; err == nil {
		t.Fatal("canceled request returned a response")
	}
	// The last waiter left: the flight cancels the rebuild's context.
	waitFor(t, "flight to cancel", func() bool { return srv.refuseFlight.Waiters() == 0 })

	gate.Release()
	waitFor(t, "abandoned rebuild to unwind", func() bool { return !srv.rebuildActive.Load() })
	if got := srv.m.rebuilds.Load(); got != base {
		t.Fatalf("abandoned refuse still completed a rebuild: %d -> %d", base, got)
	}
}

// TestRefuseCoalescing is the stampede test: five concurrent /v1/refuse
// requests deterministically assembled behind a gated rebuild produce
// exactly ONE rebuild — one refresh trace, rebuilds +1 — with all five
// acknowledged against the identical snapshot and four marked coalesced.
func TestRefuseCoalescing(t *testing.T) {
	cfg := corrConfig()
	srv := newServer(t, seedStore(t), cfg)
	gate := newStageGate(t, srv, "capture")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	refreshTraces := func() int {
		n := 0
		for _, tr := range srv.traces.Snapshots() {
			if tr.Name == "refresh" {
				n++
			}
		}
		return n
	}
	baseRebuilds := srv.m.rebuilds.Load()
	baseTraces := refreshTraces()

	const n = 5
	type result struct {
		body map[string]any
		code int
	}
	results := make(chan result, n)
	var wg sync.WaitGroup
	fire := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, code, _ := doJSON(t, "POST", ts.URL+"/v1/refuse", "", nil)
			results <- result{body, code}
		}()
	}
	fire() // the leader registers the flight and parks in the gate
	waitFor(t, "leader to join the flight", func() bool { return srv.refuseFlight.Waiters() == 1 })
	for i := 1; i < n; i++ {
		fire()
	}
	waitFor(t, "burst to assemble", func() bool { return srv.refuseFlight.Waiters() == n })
	gate.Release()
	wg.Wait()
	close(results)

	var seq, version any
	coalesced := 0
	for res := range results {
		if res.code != http.StatusOK {
			t.Fatalf("coalesced refuse: status %d, body %v", res.code, res.body)
		}
		if seq == nil {
			seq, version = res.body["snapshotSeq"], res.body["snapshotVersion"]
		} else if res.body["snapshotSeq"] != seq || res.body["snapshotVersion"] != version {
			t.Fatalf("coalesced waiters saw different snapshots: (%v,%v) vs (%v,%v)",
				seq, version, res.body["snapshotSeq"], res.body["snapshotVersion"])
		}
		if res.body["coalesced"] == true {
			coalesced++
		}
	}
	if coalesced != n-1 {
		t.Fatalf("%d responses marked coalesced, want %d", coalesced, n-1)
	}
	if got := srv.m.refuseCoalesced.Load(); got != n-1 {
		t.Fatalf("corrfused_refuse_coalesced_total = %d, want %d", got, n-1)
	}
	if got := srv.m.rebuilds.Load(); got != baseRebuilds+1 {
		t.Fatalf("burst of %d refuses ran %d rebuilds, want exactly 1", n, got-baseRebuilds)
	}
	if got := refreshTraces(); got != baseTraces+1 {
		t.Fatalf("burst left %d new refresh traces, want exactly 1", got-baseTraces)
	}
}

// TestAdmissionDisabledByDefault: the zero Config wires no admission
// middleware at all — no limiter, no shedder, no deadline on the request
// context — so existing deployments see byte-identical behavior.
func TestAdmissionDisabledByDefault(t *testing.T) {
	srv := newServer(t, seedStore(t), corrConfig())
	if srv.limiter != nil || srv.shedder != nil {
		t.Fatal("zero config built admission state")
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	for i := 0; i < 50; i++ {
		if _, code, _ := doJSON(t, "GET", ts.URL+"/v1/subject/t0", "", nil); code != http.StatusOK {
			t.Fatalf("request %d refused with admission disabled: %d", i, code)
		}
	}
}

// TestWriteJSONEncodeFailure: an unencodable response body is counted and
// — because the encode now runs into a pooled buffer before the status
// line is written — answered with a clean 500 and a well-formed error
// body, never a truncated 2xx.
func TestWriteJSONEncodeFailure(t *testing.T) {
	srv := newServer(t, seedStore(t), corrConfig())
	rec := httptest.NewRecorder()
	srv.writeJSON(rec, http.StatusOK, map[string]any{"bad": math.NaN()})
	if got := srv.m.encodeFailures.Load(); got != 1 {
		t.Fatalf("corrfused_response_encode_failures_total = %d, want 1", got)
	}
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500 (encode failed before any bytes were written)", rec.Code)
	}
	var body map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil || body["error"] == "" {
		t.Fatalf("error body not well-formed JSON: %q (err=%v)", rec.Body.String(), err)
	}
}

// TestRateKeyLabelCardinality: the 429 metric's key label is capped — keys
// past rateKeyLabelMax collapse into "other", long keys are truncated, and
// the empty key reads "anon" — so a key-spraying client cannot blow up the
// metric's cardinality.
func TestRateKeyLabelCardinality(t *testing.T) {
	cfg := corrConfig()
	cfg.RateLimit = 1000
	srv := newServer(t, seedStore(t), cfg)
	if got := srv.rateKeyLabel(""); got != "anon" {
		t.Fatalf("label(\"\") = %q, want anon", got)
	}
	long := strings.Repeat("k", 200)
	if got := srv.rateKeyLabel(long); got != long[:64] {
		t.Fatalf("long key label length = %d, want 64", len(got))
	}
	for i := 0; i < rateKeyLabelMax+10; i++ {
		srv.rateKeyLabel(fmt.Sprintf("key-%d", i))
	}
	if got := srv.rateKeyLabel("key-one-more"); got != "other" {
		t.Fatalf("label past cap = %q, want other", got)
	}
	if got := srv.rateKeyLabel("key-0"); got != "key-0" {
		t.Fatalf("seen key lost its label past the cap: %q", got)
	}
}
