package serve

import (
	"context"
	"fmt"
	"time"

	"corrfuse"
	"corrfuse/internal/index"
	"corrfuse/internal/obs"
	"corrfuse/internal/store"
	"corrfuse/internal/triple"
	"corrfuse/internal/wal"
)

// refresher periodically re-fuses the store in the background until the
// server is closed.
func (s *Server) refresher() {
	defer close(s.done)
	ticker := time.NewTicker(s.cfg.RefreshInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-ticker.C:
			//lint:ignore ctxflow the background refresher has no request to inherit a deadline from
			if _, skipped, err := s.rebuild(context.Background(), false); err != nil {
				s.logf("serve: background re-fusion failed: %v", err)
			} else if !skipped {
				if err := s.persist(); err != nil {
					s.logf("%v", err)
				}
			}
		}
	}
}

// rebuild re-fuses the accumulated store with the batch model and swaps the
// result in. Unless force is set, it is skipped (skipped=true) when the
// store's data version has not moved since the current snapshot.
//
// Concurrency protocol: the store capture happens under the live write lock,
// so every journal entry recorded before the capture is already in the
// store (ingest writes the store before journaling, and journaling needs
// the same lock). The per-shard version capture is a separate store-lock
// acquisition: ingest writes the store before taking the live lock, so a
// claim can land between the two reads. Versions are therefore captured
// BEFORE the dataset — an interleaved claim then appears in the dataset
// with its version bump unrecorded, and the next diff over-states dirtiness
// (an extra retrain, never a stale adoption); any remaining understatement
// is backstopped by shard.RebuildPartial verifying every adoption against
// the new capture. The long model build then runs without any lock. At swap
// time the journal suffix —
// claims ingested during the build, which the capture may have missed — is
// replayed onto the new incremental scorer; replaying a claim the capture
// did include is harmless because Incremental.Observe is idempotent.
//
// Online-scorer failures never abort a rebuild: by the time the scorer is
// seeded, SetFusion has already written the new model's results back to the
// store, so bailing out would leave store-backed endpoints (/v1/subject,
// /v1/accepted) serving the new model against a snapshot still serving the
// old one. The service instead degrades to batch-only (inc = nil), logs the
// cause once, raises the online_disabled gauge, and completes the swap.
//
// Cancellation: ctx bounds the rebuild (the refresher and New pass
// context.Background(); /v1/refuse passes the coalesced clients' budget).
// It is checked at the points of no side effects — on entry, after the
// capture, and after the model trains but BEFORE SetFusion writes anything
// back. Once write-back begins the rebuild runs to completion regardless:
// aborting between SetFusion and the snapshot swap would leave store-backed
// responses serving the new model against a snapshot still serving the old
// one, the exact inconsistency this function exists to prevent.
func (s *Server) rebuild(ctx context.Context, force bool) (*snapshot, bool, error) {
	s.rebuildMu.Lock()
	defer s.rebuildMu.Unlock()
	s.rebuildActive.Store(true)
	defer s.rebuildActive.Store(false)

	if err := ctx.Err(); err != nil {
		// Every client that queued for this rebuild is gone: don't start.
		return nil, false, fmt.Errorf("serve: rebuild canceled before start: %w", err)
	}

	cur := s.snap.Load()

	// Trace the refresh cycle like a request: each stage below records a
	// span and feeds corrfused_rebuild_stage_seconds, and the finished
	// trace lands in /debug/traces under the name "refresh".
	tr := obs.NewTrace(obs.NewTraceID(), "refresh")
	stage := func(name string) func() {
		begin := time.Now()
		return func() {
			d := time.Since(begin)
			tr.AddSpan(name, begin.Sub(tr.Start), d)
			//lint:ignore labelbound name is a stage-name constant at every stage call site below
			s.rebuildStage.With(name).Observe(d)
			if s.testStageHook != nil {
				s.testStageHook(name)
			}
		}
	}

	endCapture := stage("capture")
	s.live.Lock()
	version := s.store.Version()
	if !force && cur != nil && version == cur.version {
		// Unmoved version means every journaled claim was a no-op on the
		// store the current snapshot captured, so the journal can be
		// dropped — otherwise duplicate-claim traffic would grow it
		// forever across skipped rebuilds.
		s.live.journal = s.live.journal[:0]
		s.live.Unlock()
		s.m.rebuildSkips.Add(1)
		return cur, true, nil
	}
	shardVers := s.store.ShardVersions()
	d := s.store.Dataset()
	journalStart := len(s.live.journal)
	s.live.Unlock()
	endCapture()

	if err := ctx.Err(); err != nil {
		return nil, false, fmt.Errorf("serve: rebuild canceled after capture: %w", err)
	}

	begin := time.Now()
	endTrain := stage("train")
	var fuser corrfuse.Model
	var err error
	partial := false
	if cur == nil {
		opts := s.cfg.Options
		if s.cfg.SubjectScope {
			opts.Scope = corrfuse.NewScopeSubject(d)
		}
		fuser, err = corrfuse.NewModel(d, opts)
	} else if sh, dirty, ok := s.partialPlan(cur, shardVers); ok {
		fuser, err = sh.RebuildPartial(d, dirty)
		partial = true
	} else {
		fuser, err = corrfuse.Rebuild(cur.fuser, d)
	}
	endTrain()
	if err != nil {
		return nil, false, err
	}
	if err := ctx.Err(); err != nil {
		// Last checkpoint: the trained model is discarded whole. Nothing
		// was written back, so the store, snapshot and journal are exactly
		// as a never-started rebuild would leave them.
		return nil, false, fmt.Errorf("serve: rebuild canceled after train, results discarded: %w", err)
	}
	if sh, ok := fuser.(*corrfuse.ShardedFuser); ok {
		// The sharded engine already times its serial routing pass and its
		// parallel per-shard build internally; surface both as refresh
		// stages alongside the aggregate train time they are part of.
		pt := sh.PartitionTimings()
		tr.AddSpan("shard_route", 0, pt.Route)
		s.rebuildStage.With("shard_route").Observe(pt.Route)
		tr.AddSpan("shard_build", pt.Route, pt.Build)
		s.rebuildStage.With("shard_build").Observe(pt.Build)
	}
	// Freeze the model: every probability and decision is computed once
	// into the dense score tables that back all subsequent reads.
	endFreeze := stage("freeze")
	probs, provided, accepted := fuser.FrozenScores()
	endFreeze()

	// Write the batch results back as the authoritative fusion state.
	// SetFusion overwrites unconditionally, so demotions stick, and it
	// does not advance the data version, so this very rebuild does not
	// make the next one think the data changed.
	endWriteback := stage("writeback")
	nTriples, nAccepted := 0, 0
	for i, ok := range provided {
		if !ok {
			continue
		}
		id := corrfuse.TripleID(i)
		s.store.SetFusion(d.Triple(id), probs[i], accepted[i])
		nTriples++
		if accepted[i] {
			nAccepted++
		}
	}
	endWriteback()
	// Freeze the fused results into the snapshot's read index, sharing the
	// model's score tables (no copies — the index only adds the pre-ranked
	// listing structures). Built here, once per rebuild and before the
	// swap, so readers always find a fully built index behind the snapshot
	// pointer — version-stamped with the same capture the snapshot records.
	endIndex := stage("index_build")
	idx := index.Build(d, probs, provided, accepted, version)
	endIndex()

	// Reseed the incremental scorer from the new quality model (routed
	// per shard for a sharded model). The unsupervised baselines carry no
	// quality model; the service then serves batch results only and inc
	// stays nil — the log line and the online_disabled gauge tell that
	// state apart from a healthy supervised deployment.
	endSeed := stage("online_seed")
	inc, incErr := fuser.Online(s.cfg.PenalizeSilence)
	if s.testOnlineHook != nil {
		inc, incErr = s.testOnlineHook(inc, incErr)
	}
	if incErr != nil {
		inc = nil
		s.logf("serve: online scorer unavailable, serving batch results only: %v", incErr)
	}
	if inc != nil {
		if err := seedOnline(inc, d); err != nil {
			inc = nil
			s.logf("serve: online scorer seeding failed, serving batch results only: %v", err)
		}
	}
	endSeed()

	next := &snapshot{
		fuser:         fuser,
		data:          d,
		idx:           idx,
		version:       version,
		shardVersions: shardVers,
		builtAt:       time.Now(),
		triples:       nTriples,
		accepted:      nAccepted,
	}
	if sh, ok := fuser.(*corrfuse.ShardedFuser); ok {
		next.shardStats = sh.ShardStats()
	}
	if cur != nil {
		next.seq = cur.seq + 1
	} else {
		next.seq = 1
	}

	endSwap := stage("swap")
	s.live.Lock()
	if inc != nil {
		for _, o := range s.live.journal[journalStart:] {
			sid, ok := d.SourceID(o.source)
			if !ok {
				continue
			}
			if _, err := inc.Observe(sid, o.t); err != nil {
				// The store already holds the new model's results;
				// degrade to batch-only rather than abort mid-swap.
				inc = nil
				s.logf("serve: journal replay failed, serving batch results only: %v", err)
				break
			}
		}
	}
	s.live.inc = inc
	s.live.data = d
	// Keep only the suffix: everything before the capture is in the
	// store, so the next capture will include it.
	s.live.journal = append([]observation(nil), s.live.journal[journalStart:]...)
	for name := range s.live.unknown {
		if _, ok := d.SourceID(name); ok {
			delete(s.live.unknown, name)
		}
	}
	s.snap.Store(next)
	s.live.Unlock()
	endSwap()
	tr.Finish(0)
	s.traces.Record(tr)

	if inc == nil {
		s.m.onlineDisabled.Store(1)
	} else {
		s.m.onlineDisabled.Store(0)
	}
	s.m.rebuilds.Add(1)
	if partial {
		s.m.partialRebuilds.Add(1)
	}
	s.m.lastRebuildNanos.Store(int64(time.Since(begin)))
	s.logf("serve: snapshot %d: %s over %d sources, %d triples → %d accepted in %v",
		next.seq, fuser.MethodName(), d.NumSources(), next.triples, next.accepted, time.Since(begin).Round(time.Millisecond))
	if len(next.shardStats) > 0 {
		rebuilt, reused := next.rebuildCounts()
		s.logf("serve: snapshot %d: %d shards rebuilt, %d reused", next.seq, rebuilt, reused)
		for _, st := range next.shardStats {
			if st.Reused {
				continue
			}
			s.logf("serve: snapshot %d: shard %d: %d triples (%d labeled) built in %v",
				next.seq, st.Shard, st.Triples, st.Labeled, st.Build.Round(time.Millisecond))
		}
	}
	return next, false, nil
}

// partialPlan decides whether the next rebuild can go through the
// dirty-shard partial path, and with which dirty set: partial rebuilds must
// be enabled, the current model sharded, and the current snapshot must carry
// a per-shard version capture matching the tracked shard count. The returned
// dirty set holds the shards whose store version moved since that capture.
func (s *Server) partialPlan(cur *snapshot, shardVers []uint64) (*corrfuse.ShardedFuser, []int, bool) {
	if !s.cfg.PartialRebuild || cur == nil {
		return nil, nil, false
	}
	sh, ok := cur.fuser.(*corrfuse.ShardedFuser)
	if !ok {
		return nil, nil, false
	}
	if sh.Options().Train != nil {
		// RebuildPartial would delegate to a full rebuild for a
		// Train-restricted engine (only the initial snapshot can be one:
		// every rebuild clears Train); don't report that as partial.
		return nil, nil, false
	}
	if len(shardVers) == 0 || len(shardVers) != len(cur.shardVersions) || len(shardVers) != sh.NumShards() {
		return nil, nil, false
	}
	var dirty []int
	for i, v := range shardVers {
		if v != cur.shardVersions[i] {
			dirty = append(dirty, i)
		}
	}
	return sh, dirty, true
}

// seedOnline replays every observation of the captured dataset onto a
// freshly derived incremental scorer.
func seedOnline(inc corrfuse.OnlineScorer, d *corrfuse.Dataset) error {
	for si := 0; si < d.NumSources(); si++ {
		sid := triple.SourceID(si)
		for _, id := range d.Output(sid) {
			if _, err := inc.Observe(sid, d.Triple(id)); err != nil {
				return err
			}
		}
	}
	return nil
}

// ingest applies one claim: store first (so a concurrent capture that
// precedes our journal entry already has it), then the write-ahead log,
// then the live scorer and the journal under the live write lock. It
// returns the freshest probability available and whether it came from the
// live model, plus the claim's WAL sequence number (0 without a WAL).
//
// The returned sequence is NOT yet durable: the caller must wal.Commit the
// batch's highest sequence before acknowledging anything. Ordering matters
// twice over: the store write precedes the WAL append so that a persist
// capturing the WAL head is guaranteed to snapshot every logged record
// (safe truncation), and the WAL append precedes the acknowledgment so a
// crash can never eat an acknowledged claim. On a WAL append error the
// claim may survive in the store unacknowledged — at-least-once, never
// acknowledged-then-lost.
func (s *Server) ingest(o Observation) (ObserveResult, uint64, error) {
	t := triple.Triple{Subject: o.Subject, Predicate: o.Predicate, Object: o.Object}
	entry := store.Entry{Triple: t, Sources: []string{o.Source}, Label: o.Label}
	s.store.Put(entry)
	s.m.observations.Add(1)

	var seq uint64
	if s.wal != nil {
		var err error
		seq, err = s.wal.Append(wal.Record{
			Source: o.Source, Subject: o.Subject, Predicate: o.Predicate, Object: o.Object, Label: o.Label,
		})
		if err != nil {
			return ObserveResult{Triple: t}, 0, err
		}
	}

	res := ObserveResult{Triple: t}
	s.live.Lock()
	s.live.journal = append(s.live.journal, observation{source: o.Source, t: t})
	if s.live.inc == nil {
		s.live.Unlock()
		if e, ok := s.store.Get(t); ok {
			res.Probability = e.Probability
		}
		return res, seq, nil
	}
	sid, known := s.live.data.SourceID(o.Source)
	if !known {
		s.live.unknown[o.Source] = true
		p, ok := s.live.inc.Probability(t)
		s.live.Unlock()
		res.PendingSource = true
		if ok {
			res.Probability = p
			res.Live = true
		} else if e, ok := s.store.Get(t); ok {
			res.Probability = e.Probability
		}
		return res, seq, nil
	}
	p, err := s.live.inc.Observe(sid, t)
	s.live.Unlock()
	if err == nil {
		res.Probability = p
		res.Live = true
	}
	return res, seq, nil
}

// liveProbability returns the freshest probability for t. Triples whose
// observation set is fully reflected in the current snapshot get the batch
// (correlation-corrected) probability; triples newly observed — or with new
// provenance — since the capture get the incremental probability. ok is
// false when neither model knows t.
func (s *Server) liveProbability(sn *snapshot, t triple.Triple) (p float64, live, ok bool) {
	id, inSnap := sn.data.TripleID(t)
	snapProviders := 0
	if inSnap {
		snapProviders = len(sn.data.Providers(id))
	}
	s.live.RLock()
	if s.live.inc != nil && s.live.inc.Providers(t) > snapProviders {
		p, ok = s.live.inc.Probability(t)
		s.live.RUnlock()
		return p, true, ok
	}
	s.live.RUnlock()
	if inSnap && snapProviders > 0 {
		return sn.fuser.ProbabilityByID(id), false, true
	}
	return 0, false, false
}
