package serve

import (
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestSoakIndexedServing soaks the indexed read path under full write
// pressure (run under -race in CI): concurrent bulk /v1/score readers and
// subject readers against concurrent /v1/observe writers, while the
// background refresher performs dirty-shard partial rebuilds every few
// milliseconds. The invariant under fire is snapshot consistency: every
// single response must carry an index version equal to its snapshot
// version — a reader must never observe a mixed-generation result — with
// every served probability in [0,1] and every subject listing pre-ranked.
func TestSoakIndexedServing(t *testing.T) {
	soak := 2 * time.Second
	if testing.Short() {
		soak = 300 * time.Millisecond
	}
	st := seedStoreWide(t, 48)
	cfg := corrConfig()
	cfg.Options.Shards = 3
	cfg.Options.RebuildWorkers = 2
	cfg.PartialRebuild = true
	cfg.RefreshInterval = 25 * time.Millisecond
	srv := newServer(t, st, cfg)
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	deadline := time.Now().Add(soak)
	var wg sync.WaitGroup

	// Writers: a stream of claims (some labeled) spread over the subject
	// space, keeping shards continuously dirty.
	const writers = 3
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			sources := []string{"good1", "good2", "bad"}
			for i := 0; time.Now().Before(deadline); i++ {
				o := Observation{
					Source:    sources[rng.Intn(len(sources))],
					Subject:   fmt.Sprintf("soak-%d-%d", w, rng.Intn(64)),
					Predicate: "p", Object: "v",
				}
				if i%9 == 0 {
					o.Label = "true"
				}
				postJSON(t, ts.URL+"/v1/observe", o)
			}
		}(w)
	}

	// Bulk score readers: 64-triple batches mixing seeded and storm
	// subjects. Each response must be generation-consistent and in-bounds.
	const readers = 3
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			lastSeq := float64(0)
			for time.Now().Before(deadline) {
				var req ScoreRequest
				for len(req.Triples) < 64 {
					if rng.Intn(2) == 0 {
						req.Triples = append(req.Triples, tr(fmt.Sprintf("wu%d", rng.Intn(48)), "v"))
					} else {
						req.Triples = append(req.Triples,
							tr(fmt.Sprintf("soak-%d-%d", rng.Intn(writers), rng.Intn(64)), "v"))
					}
				}
				sc := postJSON(t, ts.URL+"/v1/score", req)
				if sc["indexVersion"].(float64) != sc["snapshotVersion"].(float64) {
					t.Errorf("reader %d: mixed generations: index %v vs snapshot %v",
						r, sc["indexVersion"], sc["snapshotVersion"])
					return
				}
				if seq := sc["snapshotSeq"].(float64); seq < lastSeq {
					t.Errorf("reader %d: snapshot seq went backwards: %v after %v", r, seq, lastSeq)
					return
				} else {
					lastSeq = seq
				}
				for _, raw := range sc["results"].([]any) {
					p := raw.(map[string]any)["probability"].(float64)
					if p < 0 || p > 1 {
						t.Errorf("reader %d: served probability %v outside [0,1]", r, p)
						return
					}
				}
			}
		}(r)
	}

	// Subject readers: pre-ranked listings must stay sorted and
	// generation-consistent while rebuilds swap underneath them.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for time.Now().Before(deadline) {
			body, code := getJSON(t, fmt.Sprintf("%s/v1/subject/wu%d", ts.URL, rng.Intn(48)))
			if code != 200 {
				t.Errorf("subject reader: %d", code)
				return
			}
			if body["indexVersion"].(float64) != body["snapshotVersion"].(float64) {
				t.Errorf("subject reader: mixed generations: %v vs %v",
					body["indexVersion"], body["snapshotVersion"])
				return
			}
			last := 2.0
			for _, raw := range body["results"].([]any) {
				p := raw.(map[string]any)["probability"].(float64)
				if p > last {
					t.Errorf("subject listing not ranked: %v after %v", p, last)
					return
				}
				last = p
			}
		}
	}()

	wg.Wait()
	if t.Failed() {
		return
	}

	// The refresher really ran (the writers kept the store moving), and the
	// final state is coherent: a quiescent re-fusion leaves the snapshot,
	// index and store at one version.
	postJSON(t, ts.URL+"/v1/refuse", struct{}{})
	sn := srv.snap.Load()
	if sn.seq < 2 {
		t.Fatalf("no background rebuild happened during the soak (seq %d)", sn.seq)
	}
	if sn.idx.Version() != sn.version || sn.version != srv.store.Version() {
		t.Fatalf("final state incoherent: index %d, snapshot %d, store %d",
			sn.idx.Version(), sn.version, srv.store.Version())
	}
	if sn.idx.Len() == 0 {
		t.Fatal("final index empty")
	}
}
