package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"corrfuse/internal/store"
	"corrfuse/internal/wal"
)

// walConfig is corrConfig plus a durable WAL in dir (and the snapshot path
// a WAL requires; callers persisting elsewhere override PersistPath).
func walConfig(dir string) Config {
	cfg := corrConfig()
	cfg.WALDir = filepath.Join(dir, "wal")
	cfg.WALSync = wal.SyncAlways
	cfg.PersistPath = filepath.Join(dir, "store.jsonl")
	return cfg
}

// TestWALRequiresPersistPath: a WAL whose segments could never be truncated
// (no snapshot to cover them) is a misconfiguration, not a mode.
func TestWALRequiresPersistPath(t *testing.T) {
	cfg := corrConfig()
	cfg.WALDir = filepath.Join(t.TempDir(), "wal")
	if _, err := New(seedStore(t), cfg); err == nil {
		t.Fatal("New accepted WALDir without PersistPath")
	}
}

// postObserve posts one observation and returns the decoded body and status.
func postObserve(t *testing.T, base string, o Observation) (map[string]any, int) {
	t.Helper()
	raw, _ := json.Marshal(o)
	resp, err := http.Post(base+"/v1/observe", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return out, resp.StatusCode
}

// TestWALRecoveryAfterCrash: acknowledged observations that never reached a
// store snapshot survive a crash via WAL replay. The "crash" abandons the
// first server without Close — no final persist, no truncation — exactly
// the state a SIGKILL leaves behind (the subprocess variant in
// crash_test.go kills a real process; this pins the replay path itself).
func TestWALRecoveryAfterCrash(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "store.jsonl")
	if err := seedStoreData().Save(storePath); err != nil {
		t.Fatal(err)
	}

	st1, err := store.Load(storePath)
	if err != nil {
		t.Fatal(err)
	}
	cfg := walConfig(dir)
	cfg.PersistPath = storePath
	srv1, err := New(st1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv1.Handler())

	// Acked single observes plus an acked batch — none of them persisted.
	acked := []Observation{
		{Source: "good1", Subject: "crash1", Predicate: "p", Object: "v"},
		{Source: "good2", Subject: "crash1", Predicate: "p", Object: "v"},
		{Source: "bad", Subject: "crash2", Predicate: "p", Object: "v", Label: "false"},
	}
	for _, o := range acked[:2] {
		body, code := postObserve(t, ts.URL, o)
		if code != http.StatusOK {
			t.Fatalf("observe: %d", code)
		}
		if _, ok := body["walSeq"]; !ok {
			t.Fatal("observe ack missing walSeq with a WAL configured")
		}
	}
	raw, _ := json.Marshal(map[string]any{"observations": acked[2:]})
	resp, err := http.Post(ts.URL+"/v1/observe", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch observe: %d", resp.StatusCode)
	}
	ts.Close()
	// Crash: srv1 is abandoned — no Close, no persist, no WAL truncation.

	// Restart from the stale snapshot plus the WAL.
	st2, err := store.Load(storePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range acked {
		if _, ok := st2.Get(tr(o.Subject, "v")); ok {
			t.Fatalf("%s already in the stale snapshot; test is vacuous", o.Subject)
		}
	}
	srv2 := newServer(t, st2, cfg)
	if srv2.walRecovered != len(acked) {
		t.Fatalf("recovered %d records, want %d", srv2.walRecovered, len(acked))
	}
	for _, o := range acked {
		e, ok := st2.Get(tr(o.Subject, "v"))
		if !ok {
			t.Fatalf("acknowledged observation %s lost in the crash", o.Subject)
		}
		if !containsStr(e.Sources, o.Source) {
			t.Fatalf("%s lost its provenance: %v misses %s", o.Subject, e.Sources, o.Source)
		}
		if o.Label != "" && e.Label != o.Label {
			t.Fatalf("%s lost its label: %q, want %q", o.Subject, e.Label, o.Label)
		}
	}
	// The initial fusion already scored the recovered claims.
	sn := srv2.snap.Load()
	if _, ok := sn.data.TripleID(tr("crash1", "v")); !ok {
		t.Fatal("recovered claim missing from the startup snapshot's dataset")
	}

	// Recovery status is surfaced on /healthz and /v1/refuse.
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	health, _ := getJSON(t, ts2.URL+"/healthz")
	w, ok := health["wal"].(map[string]any)
	if !ok {
		t.Fatalf("healthz has no wal status: %v", health)
	}
	if got := w["recoveredRecords"].(float64); int(got) != len(acked) {
		t.Fatalf("healthz wal.recoveredRecords = %v, want %d", got, len(acked))
	}
	ref := postJSON(t, ts2.URL+"/v1/refuse", struct{}{})
	if _, ok := ref["wal"].(map[string]any); !ok {
		t.Fatalf("refuse has no wal status: %v", ref)
	}
}

// TestWALTruncationOnPersist: each successful persist truncates the
// segments the snapshot covers, so the log tracks the un-persisted suffix;
// observations acked after the persist's capture survive a crash even
// though truncation ran.
func TestWALTruncationOnPersist(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "store.jsonl")
	if err := seedStoreData().Save(storePath); err != nil {
		t.Fatal(err)
	}
	st, _ := store.Load(storePath)
	cfg := walConfig(dir)
	cfg.PersistPath = storePath
	cfg.WALSegmentBytes = 128 // rotate every couple of records
	srv, err := New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())

	for i := 0; i < 6; i++ {
		o := Observation{Source: "good1", Subject: "pre" + string(rune('a'+i)), Predicate: "p", Object: "v"}
		if _, code := postObserve(t, ts.URL, o); code != http.StatusOK {
			t.Fatalf("observe: %d", code)
		}
	}
	before := srv.wal.Stats()
	if before.Segments < 2 {
		t.Fatalf("expected several segments before persist, got %d", before.Segments)
	}

	// /v1/refuse rebuilds AND persists: the log must shrink to ~empty.
	postJSON(t, ts.URL+"/v1/refuse", struct{}{})
	after := srv.wal.Stats()
	if after.Segments > 1 || after.Bytes >= before.Bytes {
		t.Fatalf("persist did not truncate the WAL: %+v -> %+v", before, after)
	}
	if after.Seq != before.Seq {
		t.Fatalf("truncation changed the sequence: %d -> %d", before.Seq, after.Seq)
	}

	// A post-persist ack lands in the suffix; crash + restart must keep it
	// (and replay nothing that the snapshot already covers).
	if _, code := postObserve(t, ts.URL, Observation{Source: "good2", Subject: "suffix", Predicate: "p", Object: "v"}); code != http.StatusOK {
		t.Fatal("post-persist observe refused")
	}
	ts.Close() // crash: no Close

	st2, err := store.Load(storePath)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := newServer(t, st2, cfg)
	if srv2.walRecovered != 1 {
		t.Fatalf("replayed %d records, want only the post-persist suffix (1)", srv2.walRecovered)
	}
	if _, ok := st2.Get(tr("suffix", "v")); !ok {
		t.Fatal("post-persist acknowledged observation lost")
	}
	if _, ok := st2.Get(tr("prea", "v")); !ok {
		t.Fatal("persisted observation lost from the snapshot")
	}
}

// TestShutdownOrderingNoWAL pins the shutdown contract without a WAL: once
// Close has begun, observes are refused with 503 — never acknowledged into
// a store the final persist may already have captured.
func TestShutdownOrderingNoWAL(t *testing.T) {
	dir := t.TempDir()
	cfg := corrConfig()
	cfg.PersistPath = filepath.Join(dir, "store.jsonl")
	srv, err := New(seedStore(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Simulate Close having just begun (the flag flips before the final
	// persist): an in-flight observe must be refused, not acknowledged.
	srv.closing.Store(true)
	body, code := postObserve(t, ts.URL, Observation{Source: "good1", Subject: "late", Predicate: "p", Object: "v"})
	if code != http.StatusServiceUnavailable {
		t.Fatalf("observe during shutdown: %d (%v), want 503", code, body)
	}
	if _, ok := srv.store.Get(tr("late", "v")); ok {
		t.Fatal("refused observation reached the store anyway")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
	if _, code := postObserve(t, ts.URL, Observation{Source: "good1", Subject: "later", Predicate: "p", Object: "v"}); code != http.StatusServiceUnavailable {
		t.Fatalf("observe after Close: %d, want 503", code)
	}
}

// TestShutdownOrderingWAL pins the other half of the contract: with a WAL,
// observes racing Close are still acknowledged as long as the log can make
// them durable — and such an ack survives the restart even though the final
// persist's capture missed it. After the WAL closes, observes get 503.
func TestShutdownOrderingWAL(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "store.jsonl")
	if err := seedStoreData().Save(storePath); err != nil {
		t.Fatal(err)
	}
	st, _ := store.Load(storePath)
	cfg := walConfig(dir)
	cfg.PersistPath = storePath
	srv, err := New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Close has begun (final persist running), WAL still open: the observe
	// is durable, so it is acknowledged.
	srv.closing.Store(true)
	body, code := postObserve(t, ts.URL, Observation{Source: "good1", Subject: "during-close", Predicate: "p", Object: "v"})
	if code != http.StatusOK {
		t.Fatalf("durable observe during shutdown refused: %d (%v)", code, body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}
	// WAL closed: no durability left to offer — refuse.
	if _, code := postObserve(t, ts.URL, Observation{Source: "good1", Subject: "post-close", Predicate: "p", Object: "v"}); code != http.StatusServiceUnavailable {
		t.Fatalf("observe after WAL close: %d, want 503", code)
	}

	// The during-close ack survives the restart: Close's persist captured
	// the WAL head before saving, so the record was either in the snapshot
	// or retained in the log — both paths keep it.
	st2, err := store.Load(storePath)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st2.Get(tr("during-close", "v")); ok {
		return // captured by the final persist
	}
	srv2 := newServer(t, st2, cfg)
	if _, ok := srv2.store.Get(tr("during-close", "v")); !ok {
		t.Fatal("observation acknowledged during shutdown was lost")
	}
}

// TestObserveAmbiguousBody: a body carrying both a top-level observation
// and an "observations" array used to silently drop the former — it must be
// rejected wholesale with 400.
func TestObserveAmbiguousBody(t *testing.T) {
	st := seedStore(t)
	srv := newServer(t, st, corrConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	raw := []byte(`{"source":"good1","subject":"solo","predicate":"p","object":"v",` +
		`"observations":[{"source":"good2","subject":"batched","predicate":"p","object":"v"}]}`)
	resp, err := http.Post(ts.URL+"/v1/observe", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var body map[string]any
	json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("ambiguous body: %d, want 400", resp.StatusCode)
	}
	if msg, _ := body["error"].(string); !strings.Contains(msg, "ambiguous") {
		t.Fatalf("error not structured/descriptive: %v", body)
	}
	for _, sub := range []string{"solo", "batched"} {
		if _, ok := st.Get(tr(sub, "v")); ok {
			t.Fatalf("ambiguous body partially ingested (%s)", sub)
		}
	}
}

// TestObserveTrailingGarbage: a second JSON value (or garbage) after the
// document used to be silently ignored — reject it so clients learn their
// framing bug instead of losing half their payload.
func TestObserveTrailingGarbage(t *testing.T) {
	st := seedStore(t)
	srv := newServer(t, st, corrConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, tail := range []string{
		`{"source":"good2","subject":"second","predicate":"p","object":"v"}`,
		`garbage`,
	} {
		payload := `{"source":"good1","subject":"first","predicate":"p","object":"v"}` + "\n" + tail
		resp, err := http.Post(ts.URL+"/v1/observe", "application/json", strings.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("trailing %q: %d, want 400", tail, resp.StatusCode)
		}
	}
	if _, ok := st.Get(tr("first", "v")); ok {
		t.Fatal("rejected request partially ingested")
	}
	// /v1/score gets the same treatment via the shared decoder.
	resp, err := http.Post(ts.URL+"/v1/score", "application/json",
		strings.NewReader(`{"triples":[{"subject":"u1","predicate":"p","object":"v"}]} trailing`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("score with trailing garbage: %d, want 400", resp.StatusCode)
	}
}

// TestPersistFailureSurfaced: a service that can no longer save must say so
// — counter on /metrics, lastPersistError on /v1/refuse — not just log.
func TestPersistFailureSurfaced(t *testing.T) {
	cfg := corrConfig()
	cfg.PersistPath = filepath.Join(t.TempDir(), "no", "such", "dir", "store.jsonl")
	srv, err := New(seedStore(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Force a data change so the refuse rebuild is real, then refuse: the
	// rebuild succeeds, the persist fails, and the response says so.
	postObserve(t, ts.URL, Observation{Source: "good1", Subject: "pf", Predicate: "p", Object: "v"})
	ref := postJSON(t, ts.URL+"/v1/refuse", struct{}{})
	if msg, _ := ref["lastPersistError"].(string); msg == "" {
		t.Fatalf("refuse does not surface the persist failure: %v", ref)
	}
	if n, _ := ref["persistFailures"].(float64); n < 1 {
		t.Fatalf("persistFailures = %v, want >= 1", ref["persistFailures"])
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(raw), "corrfused_persist_failures_total 1") {
		t.Error("metrics missing corrfused_persist_failures_total 1")
	}

	// Close also fails to persist; it must report it rather than swallow.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err == nil {
		t.Fatal("Close swallowed the persist failure")
	}
}

// TestWALMetricsExposition: the WAL gauges are published once a WAL is
// configured.
func TestWALMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	srv := newServer(t, seedStore(t), walConfig(dir))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postObserve(t, ts.URL, Observation{Source: "good1", Subject: "wm", Predicate: "p", Object: "v"})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		"corrfused_wal_seq 1",
		"corrfused_wal_durable_seq 1",
		"corrfused_wal_segments 1",
		"corrfused_wal_bytes ",
		"corrfused_wal_fsyncs_total ",
		"corrfused_wal_group_commit_size 1",
		"corrfused_wal_recovered_records 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
