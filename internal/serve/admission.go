package serve

import (
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"corrfuse/internal/serve/middleware"
)

// APIKeyHeader carries the client's API key for per-key rate limiting.
// Requests without it draw from one shared fallback bucket.
const APIKeyHeader = "X-Api-Key"

// rateKeyLabelMax caps the distinct key labels corrfused_ratelimited_total
// may grow: past it, further keys are counted under "other" so a
// key-spraying client cannot blow up the metric cardinality (the limiter
// itself still gives every key its own bucket).
const rateKeyLabelMax = 64

// admit builds the admission-control chain for one /v1 endpoint, innermost
// handler last: rate limit → load shed → deadline → h. Order matters: an
// over-budget request is refused before it can occupy an in-flight slot,
// and a shed request never starts a deadline it would not use. Disabled
// knobs contribute nil middlewares, which Chain skips, so the fully
// disabled configuration serves h bare — zero overhead, byte-identical
// behavior to the pre-admission service.
//
// The instrumentation middleware sits outside this chain (see routes), so
// 429s and 503s are traced, latency-sampled and status-counted exactly like
// served requests.
func (s *Server) admit(endpoint string, class middleware.Class, h http.Handler) http.Handler {
	var limit, shed, deadline middleware.Middleware
	if s.limiter != nil {
		limit = s.limiter.LimitFunc(apiKey, func(w http.ResponseWriter, r *http.Request, key string, retryAfter time.Duration) {
			s.m.rateLimited.With(s.rateKeyLabel(key)).Inc()
			s.rejectRetryable(w, http.StatusTooManyRequests, retryAfter,
				"rate limit exceeded: retry after %gs", retrySeconds(retryAfter))
		})
	}
	if s.shedder != nil {
		shed = s.shedder.ShedFunc(class, func(w http.ResponseWriter, r *http.Request) {
			//lint:ignore labelbound endpoint is a route constant at every admit call site (see routes)
			s.m.shed.With(endpoint).Inc()
			s.rejectRetryable(w, http.StatusServiceUnavailable, time.Second,
				"overloaded: too many requests in flight, %s shed", endpoint)
		})
	}
	if s.cfg.RequestTimeout > 0 {
		budget := s.cfg.RequestTimeout
		if endpoint == "refuse" {
			budget *= refuseTimeoutFactor
		}
		deadline = middleware.WithTimeout(budget)
	}
	return middleware.Chain(h, limit, shed, deadline)
}

// apiKey extracts the client's rate-limit identity; "" selects the shared
// fallback bucket.
func apiKey(r *http.Request) string { return r.Header.Get(APIKeyHeader) }

// rejectRetryable writes a structured admission refusal: the Retry-After
// header (whole seconds, at least 1 — the header does not admit fractions)
// plus a JSON body carrying the exact fractional wait, so both naive and
// careful clients can back off correctly.
func (s *Server) rejectRetryable(w http.ResponseWriter, code int, retryAfter time.Duration, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.FormatInt(retryHeaderSeconds(retryAfter), 10))
	s.writeJSON(w, code, map[string]any{
		"error":             fmt.Sprintf(format, args...),
		"retryAfterSeconds": retrySeconds(retryAfter),
	})
}

// retryHeaderSeconds rounds a wait up to whole seconds for the Retry-After
// header, never below 1 (a 0 would invite an immediate, doomed retry).
func retryHeaderSeconds(d time.Duration) int64 {
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return secs
}

// retrySeconds is the fractional wait for the JSON body, rounded to
// milliseconds so the error is stable to read and to assert on.
func retrySeconds(d time.Duration) float64 {
	if d < 0 {
		d = 0
	}
	return math.Round(d.Seconds()*1000) / 1000
}

// rateKeyLabel maps an API key to its metric label: "anon" for the shared
// fallback bucket, the key itself (truncated to 64 bytes) for the first
// rateKeyLabelMax distinct keys, then "other".
//
//corrfuse:labelcap
func (s *Server) rateKeyLabel(key string) string {
	if key == "" {
		return "anon"
	}
	if len(key) > 64 {
		key = key[:64]
	}
	s.rateKeys.Lock()
	defer s.rateKeys.Unlock()
	if s.rateKeys.seen[key] {
		return key
	}
	if len(s.rateKeys.seen) >= rateKeyLabelMax {
		return "other"
	}
	s.rateKeys.seen[key] = true
	return key
}
