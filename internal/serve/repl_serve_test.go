package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"corrfuse/internal/store"
	"corrfuse/internal/wal"
)

// replHTTP issues one request and returns the status code and raw body —
// unlike postJSON/getJSON it does not fatal on non-200, which follower
// write-rejection tests need.
func replHTTP(t *testing.T, method, url, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestReadOnlyFollowerRejectsWrites: a ReadOnly server answers /v1/observe
// with a structured 403 naming the leader, while the read endpoints and
// /v1/refuse (local re-fusion) keep serving.
func TestReadOnlyFollowerRejectsWrites(t *testing.T) {
	cfg := corrConfig()
	cfg.ReadOnly = true
	cfg.LeaderURL = "http://leader.example:6060"
	srv := newServer(t, seedStore(t), cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, raw := replHTTP(t, "POST", ts.URL+"/v1/observe",
		`{"source":"good1","subject":"t0","predicate":"p","object":"v"}`)
	if code != http.StatusForbidden {
		t.Fatalf("observe on a follower answered %d, want 403", code)
	}
	var body struct {
		Error  string `json:"error"`
		Leader string `json:"leader"`
	}
	if err := json.Unmarshal(raw, &body); err != nil {
		t.Fatalf("403 body not JSON: %v (%s)", err, raw)
	}
	if !strings.Contains(body.Error, "read-only") || body.Leader != cfg.LeaderURL {
		t.Fatalf("403 body does not point at the leader: %+v", body)
	}

	for _, path := range []string{
		"/v1/triple?subject=t0&predicate=p&object=v",
		"/v1/subject/t0",
		"/v1/source/good1",
		"/healthz",
	} {
		if code, _ := replHTTP(t, "GET", ts.URL+path, ""); code != http.StatusOK {
			t.Fatalf("GET %s on a follower answered %d, want 200", path, code)
		}
	}
	if code, _ := replHTTP(t, "POST", ts.URL+"/v1/refuse", ""); code != http.StatusOK {
		t.Fatalf("refuse on a follower answered %d, want 200", code)
	}
}

// TestApplyReplicated: replicated records land in the store, the journal
// and the live scorer exactly like ingested ones — visible to /v1/triple
// immediately and to the next rebuild; and a non-follower refuses the call.
func TestApplyReplicated(t *testing.T) {
	cfg := corrConfig()
	cfg.ReadOnly = true
	srv := newServer(t, seedStore(t), cfg)

	recs := []wal.Record{
		{Seq: 1, Source: "good1", Subject: "repl1", Predicate: "p", Object: "v"},
		{Seq: 2, Source: "good2", Subject: "repl1", Predicate: "p", Object: "v"},
		{Seq: 3, Source: "newsource", Subject: "repl2", Predicate: "p", Object: "v"},
	}
	if err := srv.ApplyReplicated(recs); err != nil {
		t.Fatal(err)
	}
	e, ok := srv.store.Get(tr("repl1", "v"))
	if !ok || len(e.Sources) != 2 {
		t.Fatalf("replicated triple not merged into the store: %+v (ok=%v)", e, ok)
	}
	// The live scorer saw the known-source claims: /v1/triple serves a live
	// probability without waiting for a rebuild.
	if p, live, ok := srv.liveProbability(srv.snap.Load(), tr("repl1", "v")); !ok || !live || p <= 0 {
		t.Fatalf("replicated claim not live-scored: p=%v live=%v ok=%v", p, live, ok)
	}
	// The unknown source is queued for the next rebuild, like ingest.
	srv.live.RLock()
	unknown := srv.live.unknown["newsource"]
	journal := len(srv.live.journal)
	srv.live.RUnlock()
	if !unknown {
		t.Fatal("unknown replicated source not queued for the next rebuild")
	}
	if journal != len(recs) {
		t.Fatalf("journal holds %d entries, want %d", journal, len(recs))
	}

	writer := newServer(t, seedStore(t), corrConfig())
	if err := writer.ApplyReplicated(recs); err == nil {
		t.Fatal("ApplyReplicated accepted on a non-follower server")
	}
}

// TestCoveredSeqIsDurableWatermark: the bootstrap watermark is the WAL's
// durability watermark, not its head. A snapshot served while records sit
// appended-but-unfsynced would otherwise pin a bootstrapped follower past
// sequence numbers a crashed leader restarts below and reassigns to
// different data — a silent permanent fork with perfect seq continuity.
func TestCoveredSeqIsDurableWatermark(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(dir)
	cfg.WALSync = wal.SyncInterval
	cfg.WALSyncInterval = time.Hour // no fsync fires during the test window
	srv := newServer(t, seedStore(t), cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for _, subj := range []string{"cov1", "cov2", "cov3"} {
		if _, code := postObserve(t, ts.URL, Observation{Source: "good1", Subject: subj, Predicate: "p", Object: "v"}); code != http.StatusOK {
			t.Fatalf("observe %s: %d", subj, code)
		}
	}
	st := srv.wal.Stats()
	if st.Seq != 3 || st.DurableSeq != 0 {
		t.Fatalf("precondition: head=%d durable=%d, want 3 appended-but-unfsynced records", st.Seq, st.DurableSeq)
	}
	if got := srv.CoveredSeq(); got != 0 {
		t.Fatalf("CoveredSeq() = %d, covering records no fsync protects (head %d)", got, st.Seq)
	}
	// Once the records are durable, the watermark follows.
	if err := srv.wal.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := srv.CoveredSeq(); got != 3 {
		t.Fatalf("CoveredSeq() after Sync = %d, want 3", got)
	}
}

// TestServerRebootstrap: the 410-recovery apply half — a leader snapshot
// stream merges into the follower's store and the local WAL is rebased so
// the next shipped record is covered+1; non-followers and WAL-less servers
// refuse the call.
func TestServerRebootstrap(t *testing.T) {
	dir := t.TempDir()
	cfg := walConfig(dir)
	cfg.ReadOnly = true
	srv := newServer(t, seedStore(t), cfg)

	// Stale local history the leader has since truncated past.
	if err := srv.ApplyReplicated([]wal.Record{
		{Seq: 1, Source: "good1", Subject: "old1", Predicate: "p", Object: "v"},
	}); err != nil {
		t.Fatal(err)
	}
	// The leader's snapshot: its current store as JSONL, covering seq 9.
	donor := store.New()
	donor.Put(store.Entry{Triple: tr("old1", "v"), Sources: []string{"good1"}})
	donor.Put(store.Entry{Triple: tr("reboot1", "v"), Sources: []string{"good1", "good2"}})
	var snap bytes.Buffer
	if err := donor.Write(&snap); err != nil {
		t.Fatal(err)
	}
	const covered = 9
	if err := srv.Rebootstrap(covered, &snap); err != nil {
		t.Fatal(err)
	}
	if e, ok := srv.store.Get(tr("reboot1", "v")); !ok || len(e.Sources) != 2 {
		t.Fatalf("snapshot entry not merged: %+v (ok=%v)", e, ok)
	}
	if e, ok := srv.store.Get(tr("old1", "v")); !ok || len(e.Sources) != 1 {
		t.Fatalf("pre-rebootstrap entry lost or duplicated: %+v (ok=%v)", e, ok)
	}
	if got := srv.wal.Seq(); got != covered {
		t.Fatalf("WAL seq %d after rebootstrap, want %d (next shipped record lands at %d)", got, covered, covered+1)
	}

	writer := newServer(t, seedStore(t), walConfig(t.TempDir()))
	if err := writer.Rebootstrap(covered, strings.NewReader("")); err == nil {
		t.Fatal("Rebootstrap accepted on a non-follower server")
	}
	roCfg := corrConfig()
	roCfg.ReadOnly = true
	noWAL := newServer(t, seedStore(t), roCfg)
	if err := noWAL.Rebootstrap(covered, strings.NewReader("")); err == nil {
		t.Fatal("Rebootstrap accepted without a WAL")
	}
}

// TestReplStatusSurfaced: installing a status source activates the repl
// sections of /healthz and /v1/refuse and the corrfused_repl_* families;
// before installation the families are absent entirely.
func TestReplStatusSurfaced(t *testing.T) {
	cfg := corrConfig()
	cfg.ReadOnly = true
	cfg.LeaderURL = "http://leader.example:6060"
	srv := newServer(t, seedStore(t), cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, raw := replHTTP(t, "GET", ts.URL+"/metrics", ""); strings.Contains(string(raw), "corrfused_repl_") {
		t.Fatal("repl metric families present before SetReplStatus")
	}

	srv.SetReplStatus(func() ReplStatus {
		return ReplStatus{Connected: true, AppliedSeq: 41, LeaderSeq: 44, LagRecords: 3, LagSeconds: 1.5, SegmentsShipped: 7, Diverged: true, Rebootstraps: 2}
	})

	var health struct {
		Repl struct {
			Connected       bool    `json:"connected"`
			AppliedSeq      uint64  `json:"appliedSeq"`
			LeaderSeq       uint64  `json:"leaderSeq"`
			LagRecords      uint64  `json:"lagRecords"`
			LagSeconds      float64 `json:"lagSeconds"`
			SegmentsShipped uint64  `json:"segmentsShipped"`
			Diverged        bool    `json:"diverged"`
			Rebootstraps    uint64  `json:"rebootstraps"`
			Leader          string  `json:"leader"`
		} `json:"repl"`
	}
	code, raw := replHTTP(t, "GET", ts.URL+"/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	if err := json.Unmarshal(raw, &health); err != nil {
		t.Fatal(err)
	}
	if !health.Repl.Connected || health.Repl.LagRecords != 3 || health.Repl.Leader != cfg.LeaderURL ||
		health.Repl.AppliedSeq != 41 || health.Repl.LeaderSeq != 44 || health.Repl.SegmentsShipped != 7 ||
		!health.Repl.Diverged || health.Repl.Rebootstraps != 2 {
		t.Fatalf("healthz repl section wrong: %+v", health.Repl)
	}

	code, raw = replHTTP(t, "POST", ts.URL+"/v1/refuse", "")
	if code != http.StatusOK || !strings.Contains(string(raw), `"repl"`) {
		t.Fatalf("refuse summary lacks the repl section (code %d): %s", code, raw)
	}

	_, raw = replHTTP(t, "GET", ts.URL+"/metrics", "")
	metrics := string(raw)
	for _, want := range []string{
		"corrfused_repl_follower_connected 1",
		"corrfused_repl_lag_records 3",
		"corrfused_repl_lag_seconds 1.5",
		"corrfused_repl_applied_seq 41",
		"corrfused_repl_leader_seq 44",
		"corrfused_repl_segments_shipped_total 7",
		"corrfused_repl_diverged 1",
		"corrfused_repl_rebootstraps_total 2",
	} {
		if !strings.Contains(metrics, want) {
			t.Fatalf("metrics missing %q", want)
		}
	}
}
