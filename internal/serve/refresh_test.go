// Failure-injection tests for the refresh path: online-scorer failures must
// degrade the service to batch-only instead of aborting a rebuild whose
// results are already written back to the store, and the dirty-shard partial
// path must reuse clean shards while producing the same probabilities as a
// full rebuild.
package serve

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"corrfuse"
	"corrfuse/internal/shard"
	"corrfuse/internal/triple"
)

// failingScorer wraps a real online scorer and fails Observe — always when
// failAll is set, or only for one specific triple otherwise.
type failingScorer struct {
	inner   corrfuse.OnlineScorer
	failAll bool
	failOn  triple.Triple
}

func (f *failingScorer) Observe(s corrfuse.SourceID, t triple.Triple) (float64, error) {
	if f.failAll || t == f.failOn {
		return 0, fmt.Errorf("injected Observe failure for %v", t)
	}
	return f.inner.Observe(s, t)
}

func (f *failingScorer) Probability(t triple.Triple) (float64, bool) { return f.inner.Probability(t) }
func (f *failingScorer) Providers(t triple.Triple) int               { return f.inner.Providers(t) }
func (f *failingScorer) Len() int                                    { return f.inner.Len() }

// logCollector captures Logf lines for assertions.
type logCollector struct {
	mu    sync.Mutex
	lines []string
}

func (lc *logCollector) logf(format string, args ...any) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.lines = append(lc.lines, fmt.Sprintf(format, args...))
}

func (lc *logCollector) contains(sub string) bool {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	for _, l := range lc.lines {
		if strings.Contains(l, sub) {
			return true
		}
	}
	return false
}

func metricsText(t *testing.T, srv *Server) string {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

func liveInc(srv *Server) corrfuse.OnlineScorer {
	srv.live.RLock()
	defer srv.live.RUnlock()
	return srv.live.inc
}

// TestOnlineUnavailableIsSignalled: an unsupervised method has no online
// scorer; the service must come up batch-only, log the cause, and raise the
// online_disabled gauge so operators can tell this state from a healthy
// supervised deployment.
func TestOnlineUnavailableIsSignalled(t *testing.T) {
	var lc logCollector
	cfg := Config{
		Options: corrfuse.Options{Method: corrfuse.UnionK},
		Logf:    lc.logf,
	}
	srv := newServer(t, seedStore(t), cfg)
	if liveInc(srv) != nil {
		t.Fatal("unsupervised method produced an online scorer")
	}
	if !lc.contains("online scorer unavailable") {
		t.Errorf("degradation not logged; lines: %v", lc.lines)
	}
	if text := metricsText(t, srv); !strings.Contains(text, "corrfused_online_disabled 1") {
		t.Error("online_disabled gauge not raised")
	}
	// Rebuilds keep working batch-only, and ingests fall back to stored
	// batch probabilities.
	srv.ingest(Observation{Source: "good1", Subject: "t0", Predicate: "p", Object: "v"})
	sn, _, err := srv.rebuild(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if sn.seq != 2 {
		t.Fatalf("seq = %d, want 2", sn.seq)
	}
}

// TestSeedFailureCompletesSwap: when the freshly derived scorer fails while
// being seeded from the captured dataset, the rebuild must still swap the
// new snapshot in (the store already holds its results) and degrade to
// batch-only — not return an error after SetFusion.
func TestSeedFailureCompletesSwap(t *testing.T) {
	var lc logCollector
	cfg := corrConfig()
	cfg.Logf = lc.logf
	srv := newServer(t, seedStore(t), cfg)
	if liveInc(srv) == nil {
		t.Fatal("supervised config came up without an online scorer")
	}
	if text := metricsText(t, srv); !strings.Contains(text, "corrfused_online_disabled 0") {
		t.Error("online_disabled gauge raised on a healthy deployment")
	}

	srv.testOnlineHook = func(inc corrfuse.OnlineScorer, err error) (corrfuse.OnlineScorer, error) {
		if err != nil {
			return inc, err
		}
		return &failingScorer{inner: inc, failAll: true}, nil
	}
	srv.ingest(Observation{Source: "good1", Subject: "seedfail", Predicate: "p", Object: "v"})
	sn, skipped, err := srv.rebuild(context.Background(), false)
	if err != nil {
		t.Fatalf("seed failure aborted the rebuild: %v", err)
	}
	if skipped || sn.seq != 2 {
		t.Fatalf("snapshot not swapped: skipped=%v seq=%d", skipped, sn.seq)
	}
	if liveInc(srv) != nil {
		t.Fatal("failed scorer left installed")
	}
	if !lc.contains("seeding failed") {
		t.Errorf("seed failure not logged; lines: %v", lc.lines)
	}
	if text := metricsText(t, srv); !strings.Contains(text, "corrfused_online_disabled 1") {
		t.Error("online_disabled gauge not raised after seed failure")
	}
	// The new snapshot's results reached the store: the ingested claim is
	// scored by the batch model.
	if e, ok := srv.store.Get(tr("seedfail", "v")); !ok || e.Probability == 0 {
		t.Errorf("store not updated by the degraded rebuild: %+v", e)
	}

	// The next healthy rebuild restores live scoring and lowers the gauge.
	srv.testOnlineHook = nil
	if _, _, err := srv.rebuild(context.Background(), true); err != nil {
		t.Fatal(err)
	}
	if liveInc(srv) == nil {
		t.Fatal("healthy rebuild did not restore the online scorer")
	}
	if text := metricsText(t, srv); !strings.Contains(text, "corrfused_online_disabled 0") {
		t.Error("online_disabled gauge not lowered after recovery")
	}
}

// TestReplayFailureCompletesSwap: a claim ingested during the model build is
// replayed onto the new scorer at swap time; if that replay fails, the swap
// must still complete (store-backed endpoints already serve the new model)
// with the journal suffix preserved for the next rebuild.
func TestReplayFailureCompletesSwap(t *testing.T) {
	var lc logCollector
	cfg := corrConfig()
	cfg.Logf = lc.logf
	srv := newServer(t, seedStore(t), cfg)

	poison := tr("mid-build", "v")
	srv.testOnlineHook = func(inc corrfuse.OnlineScorer, err error) (corrfuse.OnlineScorer, error) {
		if err != nil {
			return inc, err
		}
		// The hook runs after the store capture, exactly where concurrent
		// ingests land in the journal suffix that swap-time replay covers.
		srv.ingest(Observation{Source: "good1", Subject: poison.Subject, Predicate: poison.Predicate, Object: poison.Object})
		return &failingScorer{inner: inc, failOn: poison}, nil
	}
	srv.ingest(Observation{Source: "good2", Subject: "pre-build", Predicate: "p", Object: "v"})
	sn, skipped, err := srv.rebuild(context.Background(), false)
	if err != nil {
		t.Fatalf("replay failure aborted the rebuild: %v", err)
	}
	if skipped || sn.seq != 2 {
		t.Fatalf("snapshot not swapped: skipped=%v seq=%d", skipped, sn.seq)
	}
	if liveInc(srv) != nil {
		t.Fatal("scorer that failed replay left installed")
	}
	if !lc.contains("journal replay failed") {
		t.Errorf("replay failure not logged; lines: %v", lc.lines)
	}
	// Journal truncation stays correct: only the suffix (the mid-build
	// claim) survives; the pre-build claim was captured and dropped.
	srv.live.RLock()
	var suffix []observation
	suffix = append(suffix, srv.live.journal...)
	srv.live.RUnlock()
	if len(suffix) != 1 || suffix[0].t != poison {
		t.Fatalf("journal suffix = %v, want the one mid-build claim", suffix)
	}
	// The mid-build claim's provenance is in the store (ingest writes the
	// store first), so the next rebuild folds it in and recovers.
	srv.testOnlineHook = nil
	if _, _, err := srv.rebuild(context.Background(), true); err != nil {
		t.Fatal(err)
	}
	if liveInc(srv) == nil {
		t.Fatal("recovery rebuild did not restore the online scorer")
	}
	if p, _, ok := srv.liveProbability(srv.snap.Load(), poison); !ok || p <= 0 {
		t.Errorf("mid-build claim lost: p=%v ok=%v", p, ok)
	}
}

// TestPartialRebuildEndToEnd: with PartialRebuild enabled, a background
// refresh after claims confined to one shard retrains exactly that shard,
// reports the counts in /metrics and /v1/refuse, and serves the same
// probabilities as a full-rebuild twin.
func TestPartialRebuildEndToEnd(t *testing.T) {
	const shards = 3
	mkServer := func(partial bool) *Server {
		cfg := corrConfig()
		cfg.Options.Shards = shards
		cfg.Options.RebuildWorkers = 2
		cfg.PartialRebuild = partial
		return newServer(t, seedStoreWide(t, 48), cfg)
	}
	partial := mkServer(true)
	full := mkServer(false)

	// Claims on one new subject dirty exactly one shard.
	obs := Observation{Source: "good1", Subject: "fresh-subject", Predicate: "p", Object: "v"}
	home := shard.Of(obs.Subject, shards)
	partial.ingest(obs)
	full.ingest(obs)

	sn, skipped, err := partial.rebuild(context.Background(), false)
	if err != nil || skipped {
		t.Fatalf("partial rebuild: err=%v skipped=%v", err, skipped)
	}
	rebuilt, reused := sn.rebuildCounts()
	if rebuilt != 1 || reused != shards-1 {
		t.Fatalf("rebuilt %d / reused %d shards, want 1 / %d", rebuilt, reused, shards-1)
	}
	for _, st := range sn.shardStats {
		if (st.Shard == home) == st.Reused {
			t.Errorf("shard %d reused=%v, dirty shard is %d", st.Shard, st.Reused, home)
		}
	}
	if _, _, err := full.rebuild(context.Background(), false); err != nil {
		t.Fatal(err)
	}

	// The partial snapshot's probabilities match the full rebuild's, on
	// clean-shard and dirty-shard triples alike.
	for _, sub := range []string{"wt0", "wt1", "wt7", "wu3", "fresh-subject"} {
		tt := tr(sub, "v")
		pp, _, okP := partial.liveProbability(partial.snap.Load(), tt)
		fp, _, okF := full.liveProbability(full.snap.Load(), tt)
		if !okP || !okF {
			t.Fatalf("%s: unknown to a snapshot (partial %v, full %v)", sub, okP, okF)
		}
		if math.Abs(pp-fp) > 1e-9 {
			t.Errorf("%s: partial %.12f != full %.12f", sub, pp, fp)
		}
	}

	if text := metricsText(t, partial); !strings.Contains(text, "corrfused_partial_rebuilds_total 1") ||
		!strings.Contains(text, "corrfused_shards_rebuilt 1") ||
		!strings.Contains(text, fmt.Sprintf("corrfused_shards_reused %d", shards-1)) ||
		!strings.Contains(text, fmt.Sprintf("corrfused_shard_reused{shard=\"%d\"} 0", home)) {
		t.Errorf("partial-rebuild metrics missing:\n%s", text)
	}

	// /v1/refuse reports the counts of the rebuild it performed. The
	// store is unchanged now, but refuse forces a rebuild: zero dirty
	// shards, everything reused.
	ts := httptest.NewServer(partial.Handler())
	defer ts.Close()
	out := postJSON(t, ts.URL+"/v1/refuse", map[string]any{})
	if got, ok := out["reusedShards"].(float64); !ok || int(got) != shards {
		t.Errorf("refuse reusedShards = %v, want %d", out["reusedShards"], shards)
	}
	if got, ok := out["rebuiltShards"].(float64); !ok || int(got) != 0 {
		t.Errorf("refuse rebuiltShards = %v, want 0", out["rebuiltShards"])
	}
}

// TestPartialRebuildNewSourceFallsBackToFull: a claim from an unknown source
// changes the source table, which partial adoption must refuse — the refresh
// degrades to retraining every shard, and the new source joins the model.
func TestPartialRebuildNewSourceFallsBackToFull(t *testing.T) {
	const shards = 3
	cfg := corrConfig()
	cfg.Options.Shards = shards
	cfg.Options.RebuildWorkers = 2
	cfg.PartialRebuild = true
	srv := newServer(t, seedStoreWide(t, 48), cfg)

	srv.ingest(Observation{Source: "newcomer", Subject: "wt0", Predicate: "p", Object: "v"})
	sn, skipped, err := srv.rebuild(context.Background(), false)
	if err != nil || skipped {
		t.Fatalf("rebuild: err=%v skipped=%v", err, skipped)
	}
	rebuilt, reused := sn.rebuildCounts()
	if reused != 0 || rebuilt != shards {
		t.Fatalf("rebuilt %d / reused %d after a source-table change, want %d / 0", rebuilt, reused, shards)
	}
	if _, ok := sn.data.SourceID("newcomer"); !ok {
		t.Fatal("new source missing from the rebuilt model")
	}
}
