// Package serve is the online fusion service: it exposes a triple store and
// a trained fusion model over HTTP/JSON, keeps probabilities fresh under a
// stream of arriving claims, and periodically re-fuses the accumulated data
// with the full correlation-aware batch model.
//
// Two models cooperate:
//
//   - A batch Fuser (any corrfuse.Method, typically a PrecRecCorr variant)
//     trained over the whole store. It is immutable; readers reach it
//     through an atomic snapshot pointer, so the read path never takes a
//     write lock and never sees a half-built model.
//
//   - An online core.Incremental scorer derived from the same quality
//     model. Every ingested claim updates it in O(1), so queries between
//     batch refreshes reflect the newest observations instantly (under the
//     independence model, the best an O(1) update can do).
//
// A background refresher (and POST /v1/refuse) rebuilds the batch model
// from the accumulated store, writes its results back as the authoritative
// fusion state (store.SetFusion, so demotions stick), reseeds the
// incremental scorer, and swaps the new snapshot in atomically. A store
// data-version counter lets the refresher skip rebuilds when nothing that
// feeds the model has changed.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"corrfuse"
	"corrfuse/internal/index"
	"corrfuse/internal/obs"
	"corrfuse/internal/serve/middleware"
	"corrfuse/internal/store"
	"corrfuse/internal/triple"
	"corrfuse/internal/wal"
)

// Default /v1/score bulk request limits; see Config.MaxScoreTriples and
// Config.MaxBodyBytes.
const (
	DefaultMaxScoreTriples = 1024
	DefaultMaxBodyBytes    = 1 << 20
)

// Config configures a Server.
type Config struct {
	// Options are the fusion options for batch (re)builds. Supervised
	// methods (the default PrecRecCorr) require gold labels in the store.
	// Options.Shards > 1 selects the subject-hash-sharded engine: the
	// store is partitioned by subject hash and the shard models are
	// rebuilt concurrently (Options.RebuildWorkers goroutines), then
	// swapped in atomically as one snapshot.
	Options corrfuse.Options

	// SubjectScope selects subject-scope accountability; the scope index
	// is re-derived from the accumulated data at every rebuild. When
	// false, Options.Scope (default global) is used as-is.
	SubjectScope bool

	// PartialRebuild, with Options.Shards > 1, makes background refreshes
	// and /v1/refuse retrain only the shards whose subjects changed since
	// the current snapshot's capture (tracked by per-shard store version
	// counters), adopting every clean shard's model verbatim — model
	// retraining, the dominant superlinear cost of a refresh, then scales
	// with the change rate rather than the store size (scoring, fusion
	// write-back and online reseeding remain linear, parallelized passes
	// over the store). See corrfuse.ShardedFuser.RebuildPartial for the
	// exactness contract. Ignored for the monolithic engine.
	PartialRebuild bool

	// PenalizeSilence selects global-scope semantics for the incremental
	// scorer: every source that does not provide a triple counts against
	// it. Match it to the batch scope (true for global scope).
	PenalizeSilence bool

	// RefreshInterval is the period of the background batch re-fusion.
	// Zero disables the refresher; re-fusion then only happens on
	// POST /v1/refuse.
	RefreshInterval time.Duration

	// MaxScoreTriples caps the number of triples accepted by one /v1/score
	// request; larger batches are rejected with 413 and a structured
	// error. 0 means DefaultMaxScoreTriples.
	MaxScoreTriples int

	// MaxBodyBytes caps the request body size in bytes for /v1/score and
	// /v1/observe; larger bodies are rejected with 413 and a structured
	// error. 0 means DefaultMaxBodyBytes.
	MaxBodyBytes int64

	// PersistPath, when non-empty, is the JSONL file the store is saved
	// to after every rebuild and on Close. With SnapshotFormat "binary"
	// (the default) every persist also maintains the mmap-able CFSN
	// binary snapshot next to it (store.BinaryPath), the format a restart
	// prefers for millisecond cold starts.
	PersistPath string

	// SnapshotFormat selects the cold-start snapshot persist maintains:
	// SnapshotBinary (default, also the zero value) writes the CFSN
	// binary snapshot next to the JSONL store; SnapshotJSONL writes only
	// the JSONL file and removes any stale binary snapshot so it can
	// never shadow newer data on the next startup.
	SnapshotFormat string

	// SnapshotLoad, when non-nil, records how the store handed to New was
	// loaded (format, size, wall time, fallback reason) — cmd/fused fills
	// it from store.LoadPreferred. /healthz and the
	// corrfused_snapshot_load_* metric families expose it; nil suppresses
	// both.
	SnapshotLoad *SnapshotLoad

	// WALDir, when non-empty, enables the durable write-ahead log: every
	// observation is appended (and, per WALSync, fsynced) BEFORE it is
	// acknowledged, New replays any log suffix the loaded store does not
	// cover (crash recovery), and each successful persist truncates the
	// segments the snapshot now covers. With an empty WALDir an
	// acknowledgment only promises the claim reached memory; the
	// inter-persist window is lost on a crash. WALDir requires
	// PersistPath: truncation rides the persist, so a WAL without
	// snapshots would grow (and replay) without bound — New rejects the
	// combination.
	WALDir string

	// WALSync is the WAL fsync policy: wal.SyncAlways (default — ack
	// means fsynced, group-committed across concurrent writers),
	// wal.SyncInterval (fsync on a timer; a power cut may lose up to one
	// interval) or wal.SyncOff (the OS decides).
	WALSync string

	// WALSyncInterval is the fsync period under wal.SyncInterval
	// (default 100ms).
	WALSyncInterval time.Duration

	// WALSegmentBytes rotates WAL segments past this size (default 4 MiB).
	WALSegmentBytes int64

	// WALRetainSegments keeps the newest N snapshot-covered WAL segments
	// across truncation instead of deleting them all. A replication leader
	// sets it so a briefly-lagging follower can still fetch recent history
	// instead of being forced into a full re-bootstrap (HTTP 410). 0 (the
	// default) truncates everything the snapshot covers.
	WALRetainSegments int

	// ReadOnly makes the server a replication follower: /v1/observe is
	// refused with a structured 403 pointing at LeaderURL, and ingestion
	// happens exclusively through ApplyReplicated. The read endpoints
	// (/v1/triple, /v1/subject, /v1/source, /v1/score) and /v1/refuse
	// (a local re-fusion of replicated data) serve normally.
	ReadOnly bool

	// LeaderURL names the leader a ReadOnly follower replicates from; it
	// is included in write-rejection errors and health output.
	LeaderURL string

	// Logf receives operational log lines. Nil silences logging.
	Logf func(format string, args ...any)

	// Logger, when non-nil, is the structured logger: slow-request records
	// (and, when Logf is nil, all operational lines) go through it, stamped
	// with the request's trace ID. With a nil Logger and a non-nil Logf,
	// structured records are bridged onto Logf as formatted text lines.
	Logger *obs.Logger

	// SlowRequestThreshold, when positive, logs a structured warning for
	// every request that takes at least this long — the sampling knob for
	// slow-request logging. Zero disables it.
	SlowRequestThreshold time.Duration

	// TraceBufferSize is the capacity of the /debug/traces ring buffer of
	// recent request and refresh traces. 0 means 256.
	TraceBufferSize int

	// TraceThreshold keeps only traces at least this slow in the ring
	// buffer. 0 (the default) retains every trace, so any request carrying
	// an X-Corrfused-Trace-Id can be found in /debug/traces; operators
	// raise it to keep only the slow ones.
	TraceThreshold time.Duration

	// DisableInstrumentation turns off the per-request observability path:
	// no traces, no latency histograms, no response-status accounting and
	// no WAL commit-wait timing. /metrics still serves (counters that
	// pre-date the instrumentation layer keep counting). Intended for the
	// overhead benchmarks; production deployments leave it off.
	DisableInstrumentation bool

	// RateLimit, when positive, rate-limits the /v1 endpoints: each API
	// key (the X-Api-Key request header) sustains RateLimit requests per
	// second from its own token bucket, and every keyless request draws
	// from one shared fallback bucket. Over-budget requests are refused
	// with 429, a Retry-After header and a structured error before any
	// handler work runs. /healthz, /metrics and /debug/traces are exempt.
	// Zero disables rate limiting.
	RateLimit float64

	// RateBurst is the token-bucket depth under RateLimit — the instant
	// burst a key may spend on top of the sustained rate. 0 defaults to
	// twice RateLimit (at least 1).
	RateBurst int

	// RequestTimeout, when positive, is the per-request deadline budget:
	// each /v1 request's context is bounded by it, and the deadline
	// propagates into ingest validation, WAL commit waits and rebuild
	// stages — a canceled or expired request stops consuming CPU and
	// fsync slots at the next checkpoint. /v1/refuse gets refuseTimeoutFactor
	// times the budget (a forced re-fusion is legitimately the slowest
	// call in the API). Zero disables deadlines.
	RequestTimeout time.Duration

	// MaxInFlight, when positive, caps concurrently executing /v1
	// requests. Past the cap, requests are shed with 503: reads
	// (/v1/score, /v1/subject, /v1/source, /v1/triple) are refused while
	// slots remain reserved for durable writes, and refused earlier still
	// while the service is under pressure (WAL fsync waits stalling, or a
	// rebuild in progress) — recomputable load sheds first, acknowledged
	// durability last. Zero disables shedding.
	MaxInFlight int
}

// Config.SnapshotFormat values.
const (
	SnapshotBinary = "binary"
	SnapshotJSONL  = "jsonl"
)

// SnapshotLoad describes how the store a Server was built over was
// loaded at startup; see Config.SnapshotLoad.
type SnapshotLoad struct {
	// Format is "binary" (CFSN snapshot) or "jsonl".
	Format string
	// Bytes is the size of the file the store was loaded from.
	Bytes int64
	// Mapped reports a binary load served zero-copy from an mmap.
	Mapped bool
	// Duration is the wall time of the load (the cold-start cost).
	Duration time.Duration
	// FallbackReason is non-empty when a binary snapshot existed but
	// failed validation and the JSONL store was loaded instead.
	FallbackReason string
}

// refuseTimeoutFactor scales Config.RequestTimeout into the /v1/refuse
// deadline budget: a forced batch re-fusion is expected to outlast any
// normal request by about this much.
const refuseTimeoutFactor = 10

// Pressure signal constants: a WAL commit wait at least pressureCommitWait
// long marks the service under pressure for the next pressureWindow, and
// so does a rebuild in progress. Under pressure the load shedder halves
// the read admission threshold (see Config.MaxInFlight).
const (
	pressureCommitWait = 50 * time.Millisecond
	pressureWindow     = time.Second
)

// observation is a journaled ingest: a claim applied to the live scorer
// that the next rebuild must not lose while it re-seeds from a store
// capture taken concurrently with ingestion.
type observation struct {
	source string
	t      triple.Triple
}

// snapshot is one immutable generation of the batch model. Readers load it
// through an atomic pointer and use it without locks.
type snapshot struct {
	// fuser is the trained batch model: the monolithic Fuser, or a
	// ShardedFuser when Config.Options.Shards > 1.
	fuser corrfuse.Model
	// data is the dataset the fuser was trained on; it maps source names
	// and triples to the IDs both models use. It is immutable.
	data *corrfuse.Dataset
	// idx is the immutable fused-result index built from this snapshot's
	// batch results: triple-ID point reads and pre-ranked per-subject and
	// per-source slices, all O(1) and lock-free. idx.Version() always
	// equals version — responses expose both so readers can prove they
	// never mixed generations.
	idx *index.Index
	// version is the store data version the snapshot was captured at.
	version uint64
	// shardVersions is the per-shard store version capture the snapshot
	// was built from (nil unless partial rebuilds are enabled); the next
	// rebuild diffs it against a fresh capture to find the dirty shards.
	shardVersions []uint64
	// seq numbers snapshots 1, 2, … ; /healthz and /metrics expose it.
	seq      uint64
	builtAt  time.Time
	triples  int
	accepted int
	// shardStats holds per-shard sizes and build timings when the model
	// is sharded (nil for the monolithic engine); /metrics exposes them.
	shardStats []corrfuse.ShardStat
}

// rebuildCounts reports how many shards the snapshot's build retrained vs
// adopted from the previous model (0, 0 for the monolithic engine).
func (sn *snapshot) rebuildCounts() (rebuilt, reused int) {
	for _, st := range sn.shardStats {
		if st.Reused {
			reused++
		} else {
			rebuilt++
		}
	}
	return rebuilt, reused
}

// Server is the online fusion service. Build one with New, mount Handler,
// call Start to launch the background refresher and Close to shut down.
type Server struct {
	cfg   Config
	store *store.Store
	snap  atomic.Pointer[snapshot]

	// live guards the incremental scorer (its maps are mutated on every
	// ingest) and the journal of observations since the last capture.
	// Queries take the read lock only.
	live struct {
		sync.RWMutex
		inc corrfuse.OnlineScorer
		// data is the dataset inc's source IDs refer to (the current
		// snapshot's dataset).
		data    *corrfuse.Dataset
		journal []observation
		// unknown holds source names seen in ingests but absent from
		// the current quality model; their claims reach the store and
		// the journal, and join the models at the next rebuild.
		unknown map[string]bool
	}

	// rebuildMu serializes batch rebuilds (refresher ticks and /v1/refuse).
	rebuildMu sync.Mutex

	// rebuildActive is 1 while a rebuild holds rebuildMu: one of the two
	// pressure signals the load shedder reads (the other is a recent slow
	// WAL commit wait, slowCommitAt).
	rebuildActive atomic.Bool

	// slowCommitAt is the unix-nano timestamp of the last WAL commit wait
	// that crossed pressureCommitWait (0: never). Within pressureWindow of
	// it the service counts as under pressure and sheds reads earlier.
	slowCommitAt atomic.Int64

	// Admission control (nil members when the corresponding Config knob is
	// zero): the limiter guards the /v1 endpoints per API key, the shedder
	// caps in-flight work shedding reads before durable writes, and
	// refuseFlight coalesces concurrent /v1/refuse rebuilds into one.
	limiter      *middleware.Limiter
	shedder      *middleware.Shedder
	refuseFlight middleware.Flight

	// rateKeys caps the label cardinality of corrfused_ratelimited_total:
	// past rateKeyLabelMax distinct API keys, further keys are counted
	// under the label "other" (the limiter itself still isolates them).
	rateKeys struct {
		sync.Mutex
		seen map[string]bool
	}

	// wal is the durable write-ahead log, nil when Config.WALDir is empty.
	// Ingests append to it before they are acknowledged; persist()
	// truncates the segments each saved snapshot covers.
	wal *wal.WAL

	// replStatus, when set (followers only), reports the replication
	// position for /healthz, /v1/refuse and the corrfused_repl_* metric
	// families (which are suppressed while it is nil).
	replStatus atomic.Pointer[replStatusFn]
	// walRecovered is the number of acknowledged observations New replayed
	// from the WAL into the store at startup (crash recovery).
	walRecovered int

	// closing flips at the start of Close, before the final persist: from
	// then on observes are refused (503) unless the WAL can still make
	// them durable — an ack during shutdown must never be lost.
	closing atomic.Bool

	// persistMu serializes persist() (refresher ticks, /v1/refuse, Close).
	// Without it a slow Save racing a newer one could rename an OLDER
	// store snapshot over the target after the newer persist already
	// truncated the WAL segments covering the difference — losing
	// acknowledged, fsynced writes.
	persistMu sync.Mutex

	m metrics

	// Observability (built by initObs before the WAL opens and the initial
	// rebuild runs, so every instrument exists for the server's whole life).
	reg           *obs.Registry
	obsOn         bool // per-request instrumentation enabled
	logger        *obs.Logger
	traces        *obs.TraceRecorder
	slowThreshold time.Duration
	reqCounts     *obs.CounterVec   // corrfused_requests_total{endpoint}
	reqHist       *obs.HistogramVec // corrfused_request_seconds{endpoint}
	stageHist     *obs.HistogramVec // corrfused_request_stage_seconds{stage}
	respCodes     *obs.CounterVec   // corrfused_responses_total{code}
	walWait       *obs.Histogram    // corrfused_wal_commit_wait_seconds
	rebuildStage  *obs.HistogramVec // corrfused_rebuild_stage_seconds{stage}

	// testOnlineHook, when non-nil, intercepts the online scorer derived
	// during a rebuild. Tests use it to inject scorers whose Observe fails
	// mid-replay; production code never sets it.
	testOnlineHook func(corrfuse.OnlineScorer, error) (corrfuse.OnlineScorer, error)

	// testStageHook, when non-nil, runs at the end of every rebuild stage
	// with the stage's name. Tests use it to gate or slow a stage (proving
	// deadline propagation and single-flight coalescing deterministically);
	// production code never sets it.
	testStageHook func(stage string)

	// Effective /v1/score limits (Config values after defaulting).
	maxScoreTriples int
	maxBodyBytes    int64

	mux     *http.ServeMux
	handler http.Handler
	started time.Time

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// New builds a Server over st and trains the initial batch snapshot.
func New(st *store.Store, cfg Config) (*Server, error) {
	if st == nil {
		return nil, fmt.Errorf("serve: nil store")
	}
	s := &Server{
		cfg:             cfg,
		store:           st,
		maxScoreTriples: cfg.MaxScoreTriples,
		maxBodyBytes:    cfg.MaxBodyBytes,
		started:         time.Now(),
		stop:            make(chan struct{}),
		done:            make(chan struct{}),
	}
	if s.maxScoreTriples <= 0 {
		s.maxScoreTriples = DefaultMaxScoreTriples
	}
	if s.maxBodyBytes <= 0 {
		s.maxBodyBytes = DefaultMaxBodyBytes
	}
	s.live.unknown = make(map[string]bool)
	switch cfg.SnapshotFormat {
	case "", SnapshotBinary, SnapshotJSONL:
	default:
		return nil, fmt.Errorf("serve: unknown SnapshotFormat %q (want %q or %q)", cfg.SnapshotFormat, SnapshotBinary, SnapshotJSONL)
	}
	s.initObs()
	if cfg.WALDir != "" && cfg.PersistPath == "" {
		return nil, fmt.Errorf("serve: WALDir requires PersistPath: WAL truncation rides the persist, so the log would grow and replay without bound")
	}
	if cfg.WALDir != "" {
		// Open the log and replay the acknowledged observations the loaded
		// store does not cover — the writes a crash would otherwise have
		// dropped. Replay precedes the initial fusion below, so the first
		// snapshot already scores the recovered claims; replaying a record
		// the store does cover is a no-op (Put merges provenance).
		walOpts := wal.Options{
			Sync:           cfg.WALSync,
			SyncInterval:   cfg.WALSyncInterval,
			SegmentBytes:   cfg.WALSegmentBytes,
			RetainSegments: cfg.WALRetainSegments,
			Logf:           s.logf,
			// Always hooked (not only when instrumented): commit waits are
			// one of the load shedder's pressure signals.
			OnCommitWait: s.onCommitWait,
		}
		w, recs, err := wal.Open(cfg.WALDir, walOpts)
		if err != nil {
			return nil, fmt.Errorf("serve: wal: %w", err)
		}
		for _, r := range recs {
			st.Put(store.Entry{
				Triple:  triple.Triple{Subject: r.Subject, Predicate: r.Predicate, Object: r.Object},
				Sources: []string{r.Source},
				Label:   r.Label,
			})
		}
		s.wal = w
		s.walRecovered = len(recs)
		if len(recs) > 0 {
			s.logf("serve: wal: recovered %d acknowledged observations (through seq %d)", len(recs), recs[len(recs)-1].Seq)
		}
	}
	if cfg.PartialRebuild && cfg.Options.Shards > 1 {
		// Per-shard version counters feed the dirty-shard diff of every
		// subsequent rebuild; the initial build below records the first
		// capture.
		st.TrackShards(cfg.Options.Shards)
	}
	//lint:ignore ctxflow startup fusion runs before any request exists; New has no caller deadline to inherit
	if _, _, err := s.rebuild(context.Background(), true); err != nil {
		if s.wal != nil {
			//lint:ignore errswallow best-effort cleanup; the initial-fusion error is returned
			s.wal.Close()
		}
		return nil, fmt.Errorf("serve: initial fusion: %w", err)
	}
	if cfg.RateLimit > 0 {
		s.limiter = middleware.NewLimiter(cfg.RateLimit, cfg.RateBurst)
		s.rateKeys.seen = make(map[string]bool)
	}
	if cfg.MaxInFlight > 0 {
		s.shedder = middleware.NewShedder(cfg.MaxInFlight, s.underPressure)
	}
	s.mux = http.NewServeMux()
	s.routes()
	s.handler = s.instrument(s.mux)
	return s, nil
}

// onCommitWait receives every WAL commit's durability wait: it feeds the
// commit-wait histogram (when instrumented) and stamps the pressure signal
// when the wait crosses pressureCommitWait — fsync stalls are the moment to
// start shedding recomputable reads in favor of acknowledged writes.
func (s *Server) onCommitWait(d time.Duration) {
	if s.obsOn {
		s.walWait.Observe(d)
	}
	if d >= pressureCommitWait {
		s.slowCommitAt.Store(time.Now().UnixNano())
	}
}

// underPressure reports whether the service should shed load early: a
// rebuild is holding the refresh machinery, or a WAL commit stalled on
// fsync within the last pressureWindow.
func (s *Server) underPressure() bool {
	if s.rebuildActive.Load() {
		return true
	}
	if at := s.slowCommitAt.Load(); at != 0 && time.Now().UnixNano()-at < int64(pressureWindow) {
		return true
	}
	return false
}

// Handler returns the HTTP handler serving the v1 API, wrapped in the
// instrumentation middleware (tracing, latency histograms, response-status
// accounting) unless Config.DisableInstrumentation is set.
func (s *Server) Handler() http.Handler { return s.handler }

// TracesHandler returns the /debug/traces handler (the ring buffer of recent
// request and refresh traces as JSON). It is also routed on the main mux;
// this accessor lets cmd/fused expose it on the separate debug listener next
// to pprof.
func (s *Server) TracesHandler() http.Handler { return s.traces.Handler() }

// MetricsHandler returns the /metrics handler, for mounting on a separate
// debug listener.
func (s *Server) MetricsHandler() http.Handler { return http.HandlerFunc(s.handleMetrics) }

// Start launches the background refresher (if RefreshInterval > 0). It is
// safe to call more than once; only the first call has an effect.
func (s *Server) Start() {
	s.startOnce.Do(func() {
		if s.cfg.RefreshInterval > 0 {
			go s.refresher()
		} else {
			close(s.done)
		}
	})
}

// Close stops the refresher, saves the store a final time and closes the
// WAL. It is safe to call more than once, and also without a prior Start;
// the context bounds the wait for the refresher.
//
// Shutdown ordering for in-flight ingests: closing flips before the final
// persist, and from then on handleObserve refuses new observations (503)
// unless the WAL can still make them durable. An observation the WAL
// accepted after the final persist's capture stays in the log (truncation
// only covers the captured prefix) and is replayed on the next startup —
// acknowledged never means lost, even during shutdown.
func (s *Server) Close(ctx context.Context) error {
	s.closing.Store(true)
	s.stopOnce.Do(func() { close(s.stop) })
	// If Start never ran, consume its Once so no refresher can launch
	// later and there is nothing to wait for.
	s.startOnce.Do(func() { close(s.done) })
	select {
	case <-s.done:
	case <-ctx.Done():
		return ctx.Err()
	}
	err := s.persist()
	if s.wal != nil {
		if werr := s.wal.Close(); err == nil {
			err = werr
		}
	}
	return err
}

// Snapshot returns the sequence number, store version and age of the
// current batch snapshot.
func (s *Server) Snapshot() (seq, version uint64, age time.Duration) {
	sn := s.snap.Load()
	return sn.seq, sn.version, time.Since(sn.builtAt)
}

// logf emits one operational log line: through the legacy Logf sink when
// configured, otherwise through the structured Logger (at info level). With
// neither configured it is silent.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
		return
	}
	s.logger.Logf(format, args...)
}

// binarySnapshots reports whether persist maintains the CFSN binary
// snapshot next to the JSONL store (Config.SnapshotFormat).
func (s *Server) binarySnapshots() bool {
	return s.cfg.SnapshotFormat != SnapshotJSONL
}

// persist saves the store and, on success, truncates the WAL segments the
// snapshot now covers. The WAL sequence is captured BEFORE the save: every
// record at or below the capture finished its Append, and ingest writes the
// store before appending, so the saved snapshot is guaranteed to contain
// all of them — truncating through the capture can never drop an
// acknowledged observation the snapshot missed. Failures are counted
// (corrfused_persist_failures_total) and the latest error is surfaced in
// /v1/refuse so operators can alert on a service that can no longer save.
//
// Under SnapshotFormat "binary" the CFSN snapshot is written before the
// JSONL save, and both before the WAL truncation. The ordering is what
// keeps truncation safe: the next startup PREFERS the .cfsn file, so a
// stale one surviving past a truncation could resurrect a pre-truncation
// store state and lose acknowledged writes. Truncation therefore only
// proceeds once the binary snapshot next to the store is verifiably
// fresh or gone — a binary save failure demotes this persist to
// JSONL-only by deleting the stale .cfsn (and skips truncation if even
// the delete fails). A binary-stage failure never fails the persist:
// the JSONL save is the source of truth for durability.
func (s *Server) persist() error {
	if s.cfg.PersistPath == "" {
		return nil
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	var capSeq uint64
	if s.wal != nil {
		capSeq = s.wal.Seq()
	}
	truncateOK := true
	var binErr error
	binPath := store.BinaryPath(s.cfg.PersistPath)
	if s.binarySnapshots() {
		start := time.Now()
		if binErr = s.store.SaveBinary(binPath); binErr != nil {
			// Counted below: persistFailures advances at most once per
			// persist call, whichever stages failed.
			s.m.lastPersistErr.Store(binErr.Error())
			s.logf("serve: persist: binary snapshot: %v", binErr)
			truncateOK = s.removeStaleBinary(binPath)
		} else {
			s.rebuildStage.With("snapshot_save_binary").Observe(time.Since(start))
		}
	} else {
		// JSONL-only mode: a .cfsn left over from a binary-mode run would
		// shadow every future JSONL save on restart; remove it.
		truncateOK = s.removeStaleBinary(binPath)
	}
	start := time.Now()
	if err := s.store.Save(s.cfg.PersistPath); err != nil {
		s.m.persistFailures.Add(1)
		s.m.lastPersistErr.Store(err.Error())
		return fmt.Errorf("serve: persist: %w", err)
	}
	s.rebuildStage.With("snapshot_save_jsonl").Observe(time.Since(start))
	if binErr == nil {
		s.m.lastPersistErr.Store("")
	} else {
		s.m.persistFailures.Add(1)
	}
	if s.wal != nil && truncateOK {
		if err := s.wal.TruncateThrough(capSeq); err != nil {
			// Non-fatal: an untruncated segment only costs replay time on
			// the next startup, never correctness (replay is idempotent).
			s.logf("serve: wal truncate: %v", err)
		}
	}
	return nil
}

// removeStaleBinary deletes the binary snapshot next to the store so it
// cannot shadow a newer JSONL save on the next startup. It reports
// whether WAL truncation is safe — true only when the file is verifiably
// gone.
func (s *Server) removeStaleBinary(path string) bool {
	err := os.Remove(path)
	if err == nil || os.IsNotExist(err) {
		return true
	}
	s.logf("serve: persist: removing stale binary snapshot: %v", err)
	return false
}

// lastPersistError returns the most recent persist failure, "" after a
// successful save (or before any).
func (s *Server) lastPersistError() string {
	if v, ok := s.m.lastPersistErr.Load().(string); ok {
		return v
	}
	return ""
}
