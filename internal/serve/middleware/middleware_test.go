package middleware

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an injectable clock for the limiter tests: refills become a
// function of explicit advances, never of wall time.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1700000000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
}

// TestLimiterTable drives the token bucket through scripted sequences of
// requests and clock advances: exhaustion refuses with the exact wait to
// the next token, refills restore exactly rate*dt tokens, and the bucket
// never exceeds its burst depth.
func TestLimiterTable(t *testing.T) {
	type step struct {
		advance   time.Duration
		wantOK    bool
		wantRetry time.Duration // only checked when !wantOK
	}
	cases := []struct {
		name  string
		rate  float64
		burst int
		steps []step
	}{
		{
			name: "burst then refused with full-token wait", rate: 1, burst: 2,
			steps: []step{
				{wantOK: true},
				{wantOK: true},
				{wantOK: false, wantRetry: time.Second},
			},
		},
		{
			name: "partial refill shortens the wait", rate: 2, burst: 1,
			steps: []step{
				{wantOK: true},
				{wantOK: false, wantRetry: 500 * time.Millisecond},
				// 250ms refills half a token; half a token remains, 250ms away.
				{advance: 250 * time.Millisecond, wantOK: false, wantRetry: 250 * time.Millisecond},
				{advance: 250 * time.Millisecond, wantOK: true},
			},
		},
		{
			name: "refill caps at burst", rate: 10, burst: 3,
			steps: []step{
				// A long idle period must not bank more than burst tokens.
				{advance: time.Hour, wantOK: true},
				{wantOK: true},
				{wantOK: true},
				{wantOK: false, wantRetry: 100 * time.Millisecond},
			},
		},
		{
			name: "default burst is twice the rate", rate: 2, burst: 0,
			steps: []step{
				{wantOK: true},
				{wantOK: true},
				{wantOK: true},
				{wantOK: true},
				{wantOK: false, wantRetry: 500 * time.Millisecond},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clock := newFakeClock()
			l := NewLimiter(tc.rate, tc.burst)
			l.now = clock.Now
			for i, st := range tc.steps {
				clock.Advance(st.advance)
				ok, retry := l.Allow("k")
				if ok != st.wantOK {
					t.Fatalf("step %d: Allow = %v, want %v", i, ok, st.wantOK)
				}
				if !st.wantOK {
					if diff := retry - st.wantRetry; diff < -time.Millisecond || diff > time.Millisecond {
						t.Fatalf("step %d: retryAfter = %v, want %v", i, retry, st.wantRetry)
					}
				} else if retry != 0 {
					t.Fatalf("step %d: admitted request reported retryAfter %v", i, retry)
				}
			}
		})
	}
}

// TestLimiterKeyIsolation: each key owns its own bucket, and the empty key
// is the shared fallback — one anonymous client draining it starves the
// others, while a keyed client is untouched.
func TestLimiterKeyIsolation(t *testing.T) {
	clock := newFakeClock()
	l := NewLimiter(1, 1)
	l.now = clock.Now
	if ok, _ := l.Allow(""); !ok {
		t.Fatal("first anonymous request refused")
	}
	if ok, _ := l.Allow(""); ok {
		t.Fatal("fallback bucket did not exhaust: second anonymous request admitted")
	}
	if ok, _ := l.Allow("alice"); !ok {
		t.Fatal("keyed client starved by the anonymous bucket")
	}
	if ok, _ := l.Allow("bob"); !ok {
		t.Fatal("keyed client starved by another key's bucket")
	}
}

// TestLimiterEviction: refilled buckets are evicted past the key cap, so a
// key-spraying client cannot grow the map without bound, while a draining
// bucket survives eviction (forgetting it would reset its debt).
func TestLimiterEviction(t *testing.T) {
	clock := newFakeClock()
	l := NewLimiter(1, 2)
	l.now = clock.Now
	l.maxKeys = 8
	l.Allow("debtor") // holds 1 of 2 tokens: must survive
	for i := 0; i < 50; i++ {
		clock.Advance(10 * time.Second) // everyone else refills fully
		l.Allow(fmt.Sprintf("spray-%d", i))
	}
	if got := l.Keys(); got > l.maxKeys+1 {
		t.Fatalf("bucket map grew to %d keys, cap %d", got, l.maxKeys)
	}
	// The debtor was fully refilled by the advances too — but a key still
	// in debt at eviction time must keep its bucket. Re-create the
	// condition: drain a key, trip an eviction with zero elapsed time.
	l.Allow("fresh-debtor")
	l.Allow("fresh-debtor")
	for i := 0; i < 20; i++ {
		l.Allow(fmt.Sprintf("spray2-%d", i))
	}
	if ok, _ := l.Allow("fresh-debtor"); ok {
		t.Fatal("draining bucket was evicted: drained key got a fresh burst")
	}
}

// TestShedderClassOrdering is the shed-reads-before-writes table: at every
// occupancy level, reads must be refused while writes are still admitted,
// and under pressure reads shed at half their normal threshold.
func TestShedderClassOrdering(t *testing.T) {
	cases := []struct {
		name        string
		max         int
		pressure    bool
		occupancy   int // write slots held before the probe
		wantReadOK  bool
		wantWriteOK bool
	}{
		{name: "empty gate admits both", max: 4, occupancy: 0, wantReadOK: true, wantWriteOK: true},
		{name: "reads shed at reserve boundary, writes admitted", max: 4, occupancy: 3, wantReadOK: false, wantWriteOK: true},
		{name: "full gate sheds both", max: 4, occupancy: 4, wantReadOK: false, wantWriteOK: false},
		{name: "pressure halves the read threshold", max: 8, pressure: true, occupancy: 3, wantReadOK: false, wantWriteOK: true},
		{name: "same occupancy without pressure admits the read", max: 8, pressure: false, occupancy: 3, wantReadOK: true, wantWriteOK: true},
		{name: "max 1 shares the single slot", max: 1, occupancy: 0, wantReadOK: true, wantWriteOK: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pressure := tc.pressure
			s := NewShedder(tc.max, func() bool { return pressure })
			for i := 0; i < tc.occupancy; i++ {
				if !s.Acquire(ClassWrite) {
					t.Fatalf("setup write %d refused", i)
				}
			}
			if got := s.Acquire(ClassRead); got != tc.wantReadOK {
				t.Errorf("read admitted = %v, want %v", got, tc.wantReadOK)
			} else if got {
				s.Release()
			}
			if got := s.Acquire(ClassWrite); got != tc.wantWriteOK {
				t.Errorf("write admitted = %v, want %v", got, tc.wantWriteOK)
			} else if got {
				s.Release()
			}
		})
	}
}

// TestShedderReleaseFreesSlot: a shed gate recovers as soon as work drains.
func TestShedderReleaseFreesSlot(t *testing.T) {
	s := NewShedder(2, nil)
	if !s.Acquire(ClassWrite) || !s.Acquire(ClassWrite) {
		t.Fatal("setup acquires refused")
	}
	if s.Acquire(ClassWrite) {
		t.Fatal("full gate admitted a third write")
	}
	s.Release()
	if !s.Acquire(ClassWrite) {
		t.Fatal("released slot not reusable")
	}
	if got := s.InFlight(); got != 2 {
		t.Fatalf("InFlight = %d, want 2", got)
	}
}

// TestFlightCoalesce: N concurrent Do calls run fn exactly once and share
// its result; exactly one caller reports shared == false.
func TestFlightCoalesce(t *testing.T) {
	var f Flight
	var runs atomic.Int32
	release := make(chan struct{})
	const n = 8

	var wg sync.WaitGroup
	starters := make(chan bool, n)
	results := make(chan any, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := f.Do(context.Background(), func(ctx context.Context) (any, error) {
				runs.Add(1)
				<-release
				return "result", nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			starters <- !shared
			results <- v
		}()
	}
	// Wait until every goroutine has joined the flight, then release.
	for i := 0; i < 1000 && f.Waiters() < n; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := f.Waiters(); got != n {
		t.Fatalf("Waiters = %d, want %d", got, n)
	}
	close(release)
	wg.Wait()
	close(starters)
	close(results)
	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	nonShared := 0
	for s := range starters {
		if s {
			nonShared++
		}
	}
	if nonShared != 1 {
		t.Fatalf("%d callers report starting the flight, want 1", nonShared)
	}
	for v := range results {
		if v != "result" {
			t.Fatalf("caller got %v, want shared result", v)
		}
	}
}

// TestFlightCancelWhenAbandoned: the flight's context is canceled exactly
// when the last waiter gives up — not when the first does — and a later Do
// starts a fresh flight instead of joining the doomed one.
func TestFlightCancelWhenAbandoned(t *testing.T) {
	var f Flight
	fnCtx := make(chan context.Context, 1)
	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()

	var wg sync.WaitGroup
	wg.Add(2)
	errs := make(chan error, 2)
	go func() {
		defer wg.Done()
		_, _, err := f.Do(ctx1, func(ctx context.Context) (any, error) {
			fnCtx <- ctx
			<-ctx.Done()
			return nil, ctx.Err()
		})
		errs <- err
	}()
	inner := <-fnCtx
	go func() {
		defer wg.Done()
		_, _, err := f.Do(ctx2, func(ctx context.Context) (any, error) {
			t.Error("second Do started a new flight while one was running")
			return nil, nil
		})
		errs <- err
	}()
	for i := 0; i < 1000 && f.Waiters() < 2; i++ {
		time.Sleep(time.Millisecond)
	}

	// First waiter leaves: the shared work must keep running.
	cancel1()
	select {
	case <-inner.Done():
		t.Fatal("flight canceled while a waiter remained")
	case <-time.After(20 * time.Millisecond):
	}

	// Last waiter leaves: now the work is canceled.
	cancel2()
	select {
	case <-inner.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("flight not canceled after the last waiter left")
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter error = %v, want context.Canceled", err)
		}
	}

	// A fresh Do must not join the abandoned call.
	v, shared, err := f.Do(context.Background(), func(ctx context.Context) (any, error) {
		return "fresh", nil
	})
	if err != nil || shared || v != "fresh" {
		t.Fatalf("post-abandon Do = (%v, shared=%v, %v), want fresh unshared run", v, shared, err)
	}
}

// TestChainOrder: Chain(h, a, b) runs a outside b, and nil middlewares are
// skipped.
func TestChainOrder(t *testing.T) {
	var order []string
	mk := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		order = append(order, "handler")
	}), mk("outer"), nil, mk("inner"))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	want := []string{"outer", "inner", "handler"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestWithTimeout: the handler's context carries the budget as a deadline,
// and a non-positive budget contributes no middleware at all.
func TestWithTimeout(t *testing.T) {
	var gotDeadline bool
	h := Chain(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, gotDeadline = r.Context().Deadline()
	}), WithTimeout(time.Minute))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if !gotDeadline {
		t.Fatal("handler context carries no deadline")
	}
	if WithTimeout(0) != nil {
		t.Fatal("WithTimeout(0) should disable the middleware")
	}
}
