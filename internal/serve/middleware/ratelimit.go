package middleware

import (
	"math"
	"net/http"
	"sync"
	"time"
)

// defaultMaxKeys bounds the per-key bucket map: past this many distinct
// keys, fully refilled buckets (indistinguishable from never-seen ones) are
// evicted before a new key is admitted, so a key-spraying client cannot
// grow the map without bound.
const defaultMaxKeys = 4096

// Limiter is a token-bucket rate limiter keyed by API key. Each key owns an
// independent bucket of depth burst refilled at rate tokens per second; the
// empty key is the shared fallback bucket every keyless client draws from,
// so anonymous traffic competes for one budget while keyed clients are
// isolated from each other.
//
// All methods are safe for concurrent use.
type Limiter struct {
	rate    float64 // tokens per second
	burst   float64 // bucket depth
	maxKeys int

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // injectable clock for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter builds a limiter sustaining rate requests/second per key with
// bursts of up to burst. A non-positive burst defaults to twice the rate
// (at least 1), the conventional "one second of slack" bucket depth.
// NewLimiter panics on a non-positive rate: a limiter that admits nothing
// is a misconfiguration, not a policy (disable rate limiting by not
// installing the middleware instead).
func NewLimiter(rate float64, burst int) *Limiter {
	if rate <= 0 {
		panic("middleware: NewLimiter requires a positive rate")
	}
	b := float64(burst)
	if burst <= 0 {
		b = math.Max(1, 2*rate)
	}
	return &Limiter{
		rate:    rate,
		burst:   b,
		maxKeys: defaultMaxKeys,
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// Allow reports whether one request under key fits the budget right now,
// consuming a token if so. When it does not, retryAfter is the wait until
// the bucket next frees a whole token — the value for the Retry-After
// header, so well-behaved clients converge on the sustainable rate instead
// of hammering.
func (l *Limiter) Allow(key string) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= l.maxKeys {
			l.evictLocked()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+l.rate*now.Sub(b.last).Seconds())
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// evictLocked drops every bucket that has refilled completely: such a
// bucket is byte-for-byte what a brand-new key would get, so forgetting it
// changes no admission decision. Callers hold l.mu. If every bucket is
// still draining (maxKeys keys genuinely active at once), the map grows
// past the soft cap rather than penalizing a live key.
func (l *Limiter) evictLocked() {
	now := l.now()
	for k, b := range l.buckets {
		if math.Min(l.burst, b.tokens+l.rate*now.Sub(b.last).Seconds()) >= l.burst {
			delete(l.buckets, k)
		}
	}
}

// Keys returns the number of tracked buckets (tests and introspection).
func (l *Limiter) Keys() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// LimitFunc wires a Limiter into a Middleware: keyFunc extracts the API key
// from the request (return "" for the shared fallback bucket) and reject
// writes the 429 response — presentation stays with the caller, so the
// serve package keeps its structured JSON error shape and its counters.
func (l *Limiter) LimitFunc(keyFunc func(*http.Request) string, reject func(w http.ResponseWriter, r *http.Request, key string, retryAfter time.Duration)) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			key := keyFunc(r)
			if ok, retryAfter := l.Allow(key); !ok {
				reject(w, r, key, retryAfter)
				return
			}
			next.ServeHTTP(w, r)
		})
	}
}
