// Package middleware is the admission-control layer of the fusion service:
// composable HTTP middlewares that decide whether a request may enter the
// serving stack at all, and under what budget, before any handler work
// runs. The paper's premise is that fused answers stay trustworthy under
// messy, overlapping inputs; this package is the serving-side counterpart —
// answers stay available and bounded-latency under messy, overlapping
// clients.
//
// The primitives are deliberately independent of the serve package so they
// can be unit-tested (and reused) in isolation:
//
//   - Limiter: per-API-key token buckets with a shared fallback bucket for
//     keyless clients. Over-budget requests are rejected up front (429),
//     with the exact wait until a token frees.
//   - Shedder: a max-in-flight gate with priority classes — reads are shed
//     before durable writes, and earlier still while the service is under
//     pressure (WAL fsync stalls, a rebuild in progress).
//   - Flight: single-flight coalescing with reference-counted
//     cancellation, so N concurrent refresh requests trigger one rebuild
//     that is itself canceled once every caller has gone away.
//   - WithTimeout: a per-endpoint deadline budget propagated through the
//     request context into ingest, WAL commit waits and rebuilds.
//
// Policy (which endpoint gets which class, budget and bucket) and
// presentation (the structured JSON error bodies, the Prometheus counters)
// stay in the serve package; this package only answers "may this request
// proceed, and for how long".
package middleware

import (
	"context"
	"net/http"
	"time"
)

// Middleware wraps an http.Handler with one admission concern.
type Middleware func(http.Handler) http.Handler

// Chain composes middlewares around h. The first middleware is the
// outermost: Chain(h, a, b) serves a(b(h)), so a sees every request first
// and b only the ones a admitted.
func Chain(h http.Handler, mws ...Middleware) http.Handler {
	for i := len(mws) - 1; i >= 0; i-- {
		if mws[i] == nil {
			continue
		}
		h = mws[i](h)
	}
	return h
}

// WithTimeout bounds each request's context by d: the handler (and
// everything it propagates the context into — WAL commit waits, rebuild
// stages) observes cancellation once the budget is spent, so a slow client
// or an oversized job stops burning CPU at the next checkpoint instead of
// running to completion for an answer nobody is waiting on. A
// non-positive d disables the middleware.
func WithTimeout(d time.Duration) Middleware {
	if d <= 0 {
		return nil
	}
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}
