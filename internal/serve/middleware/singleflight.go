package middleware

import (
	"context"
	"sync"
)

// Flight coalesces concurrent invocations of one expensive operation: while
// a call is running, later callers join it and share its result instead of
// starting their own. It exists for /v1/refuse — N clients asking for a
// refresh at once want one rebuild, not N serialized ones.
//
// Cancellation is reference-counted: the underlying function runs under a
// context detached from any single caller (the first caller's disconnect
// must not abort work others are waiting on), and that context is canceled
// only when every joined caller has gone away — at which point nobody wants
// the result and the work should stop burning CPU at its next checkpoint.
type Flight struct {
	mu  sync.Mutex
	cur *flightCall
}

type flightCall struct {
	ctx     context.Context
	cancel  context.CancelFunc
	waiters int
	done    chan struct{}
	val     any
	err     error
}

// Do invokes fn, or joins an invocation already in progress. It returns
// fn's result, with shared reporting whether this caller joined rather than
// started the call. If ctx is done before the call completes, Do abandons
// the wait and returns ctx's error; the call itself keeps running for the
// remaining waiters and is canceled (through the context passed to fn) once
// the last waiter abandons.
func (f *Flight) Do(ctx context.Context, fn func(context.Context) (any, error)) (val any, shared bool, err error) {
	f.mu.Lock()
	c := f.cur
	if c == nil {
		c = &flightCall{done: make(chan struct{}), waiters: 1}
		//lint:ignore ctxflow the shared call must outlive any one caller's ctx; waiter refcounting cancels it
		c.ctx, c.cancel = context.WithCancel(context.Background())
		f.cur = c
		f.mu.Unlock()
		go func() {
			v, err := fn(c.ctx)
			f.mu.Lock()
			c.val, c.err = v, err
			if f.cur == c {
				f.cur = nil
			}
			f.mu.Unlock()
			c.cancel()
			close(c.done)
		}()
	} else {
		c.waiters++
		shared = true
		f.mu.Unlock()
	}
	select {
	case <-c.done:
		return c.val, shared, c.err
	case <-ctx.Done():
		f.mu.Lock()
		c.waiters--
		last := c.waiters == 0
		if last && f.cur == c {
			// Nobody is waiting anymore: detach the doomed call so a new
			// request starts fresh instead of joining work that is about
			// to observe its cancellation. The goroutine above still
			// publishes into c (its waiters are gone) and must not clear a
			// successor's registration — hence the f.cur == c guards.
			f.cur = nil
		}
		f.mu.Unlock()
		if last {
			c.cancel()
		}
		return nil, shared, ctx.Err()
	}
}

// Waiters returns the number of callers currently joined to the in-flight
// call (0 when idle). Tests use it to deterministically assemble a burst.
func (f *Flight) Waiters() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.cur == nil {
		return 0
	}
	return f.cur.waiters
}
