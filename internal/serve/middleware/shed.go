package middleware

import (
	"net/http"
	"sync/atomic"
)

// Class is a request's admission priority. When the in-flight gate fills,
// lower-priority classes are refused first: reads are recomputable by the
// client at any time, while a refused durable write is work the client must
// retry and the service must re-validate — so reads shed first, and durable
// writes keep a reserved headroom all the way to the gate's capacity.
type Class int

const (
	// ClassWrite is the durable-write (and control) priority: admitted
	// until the gate is completely full.
	ClassWrite Class = iota
	// ClassRead is the query priority: shed while capacity remains for
	// writes, and earlier still under pressure.
	ClassRead
)

// Shedder is a max-in-flight admission gate with two priority classes and
// an external pressure signal. Occupancy is one atomic counter; admission
// is an increment, a threshold compare and (on refusal) a decrement, so the
// gate costs nanoseconds on the hot path.
//
// Thresholds: writes are admitted while occupancy ≤ max. Reads are admitted
// while occupancy ≤ readMax, which reserves max/4 slots (at least one, when
// max permits) for writes; while pressure() reports true — the serve layer
// wires it to "WAL fsync waits are stalling or a rebuild is running" — the
// read threshold halves again, shedding recomputable load exactly when the
// expensive machinery is busiest. With max == 1 there is no room for a
// reservation and both classes share the single slot.
type Shedder struct {
	max             int64
	readMax         int64
	pressureReadMax int64
	pressure        func() bool

	inflight atomic.Int64
}

// NewShedder builds a gate admitting at most max concurrent requests.
// pressure may be nil (no pressure signal). NewShedder panics on a
// non-positive max: disable shedding by not installing the middleware.
func NewShedder(max int, pressure func() bool) *Shedder {
	if max <= 0 {
		panic("middleware: NewShedder requires a positive max")
	}
	m := int64(max)
	reserve := m / 4
	if reserve == 0 && m > 1 {
		reserve = 1
	}
	readMax := m - reserve
	return &Shedder{
		max:             m,
		readMax:         readMax,
		pressureReadMax: readMax / 2,
		pressure:        pressure,
	}
}

// Acquire claims one in-flight slot for a request of class c, reporting
// whether it was admitted. Every successful Acquire must be paired with
// exactly one Release.
func (s *Shedder) Acquire(c Class) bool {
	limit := s.max
	if c == ClassRead {
		limit = s.readMax
		if s.pressure != nil && s.pressure() {
			limit = s.pressureReadMax
		}
	}
	if s.inflight.Add(1) > limit {
		s.inflight.Add(-1)
		return false
	}
	return true
}

// Release frees a slot claimed by a successful Acquire.
func (s *Shedder) Release() { s.inflight.Add(-1) }

// InFlight returns the current occupancy (the corrfused_inflight gauge).
func (s *Shedder) InFlight() int64 { return s.inflight.Load() }

// ShedFunc wires the gate into a Middleware for one request class; reject
// writes the 503 response (presentation and counting stay with the caller).
func (s *Shedder) ShedFunc(c Class, reject func(w http.ResponseWriter, r *http.Request)) Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !s.Acquire(c) {
				reject(w, r)
				return
			}
			defer s.Release()
			next.ServeHTTP(w, r)
		})
	}
}
