package serve

// Replication integration. The serve package deliberately does not import
// internal/repl: the follower loop and the leader endpoints live there and
// reach the server through the small surface below (cmd/fused wires the two
// together). This keeps the dependency arrow pointing one way — repl knows
// wal, serve knows neither.

import (
	"fmt"
	"io"
	"net/http"

	"corrfuse/internal/store"
	"corrfuse/internal/triple"
	"corrfuse/internal/wal"
)

// ReplStatus is a follower's replication position as surfaced on /healthz,
// /v1/refuse and the corrfused_repl_* metric families. cmd/fused maps it
// from the repl follower's own status type.
type ReplStatus struct {
	// Connected reports the last leader contact succeeded; false means the
	// follower is serving stale reads while it retries.
	Connected bool
	// AppliedSeq is the last replicated record applied locally; LeaderSeq
	// is the leader's head as of the last contact.
	AppliedSeq, LeaderSeq uint64
	// SegmentsShipped counts shipment batches applied since start.
	SegmentsShipped uint64
	// LagRecords and LagSeconds quantify how far and for how long the
	// follower trails the leader (both 0 when caught up).
	LagRecords uint64
	LagSeconds float64
	// Diverged reports the follower holds records outside the leader's
	// durable history; fetching has stopped until an operator wipes the
	// follower's state and re-bootstraps it.
	Diverged bool
	// Rebootstraps counts automatic snapshot re-bootstraps after the leader
	// truncated past this follower's position (HTTP 410).
	Rebootstraps uint64
}

type replStatusFn func() ReplStatus

// SetReplStatus installs the replication-status source (a follower's status
// getter). Installing it activates the corrfused_repl_* metric families and
// the repl sections of /healthz and /v1/refuse.
func (s *Server) SetReplStatus(f func() ReplStatus) {
	if f == nil {
		s.replStatus.Store(nil)
		return
	}
	fn := replStatusFn(f)
	s.replStatus.Store(&fn)
}

// replStatusNow returns the current replication status and whether a source
// is installed.
func (s *Server) replStatusNow() (ReplStatus, bool) {
	fn := s.replStatus.Load()
	if fn == nil {
		return ReplStatus{}, false
	}
	return (*fn)(), true
}

// replSummary is the repl section of /healthz and /v1/refuse.
func (s *Server) replSummary(st ReplStatus) map[string]any {
	out := map[string]any{
		"connected":       st.Connected,
		"appliedSeq":      st.AppliedSeq,
		"leaderSeq":       st.LeaderSeq,
		"lagRecords":      st.LagRecords,
		"lagSeconds":      st.LagSeconds,
		"segmentsShipped": st.SegmentsShipped,
		"diverged":        st.Diverged,
		"rebootstraps":    st.Rebootstraps,
	}
	if s.cfg.LeaderURL != "" {
		out["leader"] = s.cfg.LeaderURL
	}
	return out
}

// rejectReadOnly answers a write attempt on a follower with a structured 403
// naming the leader, so clients can redirect themselves. It lives outside
// the hot-path handler: rejection is the cold branch and may allocate.
func (s *Server) rejectReadOnly(w http.ResponseWriter) {
	out := map[string]any{"error": "read-only follower: send writes to the leader"}
	if s.cfg.LeaderURL != "" {
		out["leader"] = s.cfg.LeaderURL
	}
	s.writeJSON(w, http.StatusForbidden, out)
}

// ApplyReplicated applies one verified shipment batch to the follower's
// store, journal and live scorer — the same path ingest takes, minus the
// local WAL append (the replication loop appends the shipped lines verbatim
// afterwards, preserving the store-write-before-log-append ordering that
// makes truncation safe). Records are applied in order; re-applying a
// record after a crash-refetch is idempotent (Put merges provenance,
// Observe tolerates repeats).
func (s *Server) ApplyReplicated(recs []wal.Record) error {
	if !s.cfg.ReadOnly {
		return fmt.Errorf("serve: ApplyReplicated on a non-follower server")
	}
	for _, r := range recs {
		t := triple.Triple{Subject: r.Subject, Predicate: r.Predicate, Object: r.Object}
		s.store.Put(store.Entry{Triple: t, Sources: []string{r.Source}, Label: r.Label})
		s.m.observations.Add(1)
		s.live.Lock()
		s.live.journal = append(s.live.journal, observation{source: r.Source, t: t})
		if s.live.inc != nil {
			if sid, known := s.live.data.SourceID(r.Source); known {
				if _, err := s.live.inc.Observe(sid, t); err != nil {
					// Same degradation as a failed journal replay: the store
					// holds the record, batch rebuilds stay correct, live
					// scoring turns off until the next rebuild reseeds it.
					s.live.inc = nil
					s.logf("serve: repl: live scorer failed applying seq %d, serving batch results only: %v", r.Seq, err)
				}
			} else {
				s.live.unknown[r.Source] = true
			}
		}
		s.live.Unlock()
	}
	return nil
}

// Rebootstrap replaces this follower's replication position with a fresh
// leader snapshot: the snapshot stream (the leader's store as JSONL) is
// merged into the local store and the local WAL is rebased so the next
// shipped record is covered+1. It is the apply half of the follower's
// automatic 410 recovery — the repl loop downloads the snapshot (see
// repl.Snapshot) and hands the stream here.
//
// Merging (rather than wiping) the store is sound precisely because this
// path runs only on truncation, never divergence: a truncated follower is
// strictly BEHIND the leader, so every local entry also appears in the
// snapshot and Put's provenance merge is idempotent. The store write lands
// before the WAL rebase, preserving the store-before-log ordering the rest
// of replication relies on; a crash between the two replays the old log
// against a store that already absorbed the snapshot, which is harmless,
// and the next 410 restarts the recovery.
func (s *Server) Rebootstrap(covered uint64, r io.Reader) error {
	if !s.cfg.ReadOnly {
		return fmt.Errorf("serve: Rebootstrap on a non-follower server")
	}
	if s.wal == nil {
		return fmt.Errorf("serve: Rebootstrap without a WAL")
	}
	if err := s.store.Read(r); err != nil {
		return fmt.Errorf("serve: rebootstrap: snapshot: %w", err)
	}
	// The snapshot's observations bypassed the live scorer's journal, so
	// its incremental state no longer matches the store: degrade to batch
	// results until the next rebuild reseeds it, the same fallback a failed
	// journal replay uses.
	s.live.Lock()
	if s.live.inc != nil {
		s.live.inc = nil
		s.logf("serve: rebootstrap: live scorer reset; serving batch results until the next rebuild")
	}
	s.live.Unlock()
	if err := s.wal.Rebase(covered + 1); err != nil {
		return fmt.Errorf("serve: rebootstrap: %w", err)
	}
	return nil
}

// CoveredSeq reports a WAL sequence S such that a snapshot written by
// WriteSnapshot afterwards contains every record <= S: ingest writes the
// store before appending to the log, so everything at or below the current
// head is already applied. The leader's bootstrap endpoint captures this
// BEFORE streaming the store.
//
// S is the DURABILITY watermark, not the head: records appended but not yet
// fsynced would be lost by a leader crash, and the crashed leader would
// reassign their sequence numbers to different data. A follower bootstrapped
// with covered = head would then keep the lost records and resume at
// covered+1 with perfect seq continuity — a silent permanent fork, the exact
// failure ReadFrom's durable cap exists to prevent. durable <= head and
// everything <= head is in the store, so the snapshot still contains every
// record <= covered; the extra records beyond covered are re-applied
// idempotently when shipping resumes.
func (s *Server) CoveredSeq() uint64 {
	if s.wal == nil {
		return 0
	}
	return s.wal.Stats().DurableSeq
}

// WriteSnapshot streams the store as JSONL for follower bootstrap.
func (s *Server) WriteSnapshot(w io.Writer) error {
	return s.store.Write(w)
}

// WAL returns the server's write-ahead log (nil without Config.WALDir) —
// the replication leader ships from it, and a follower's fetch loop appends
// shipped lines to it.
func (s *Server) WAL() *wal.WAL {
	return s.wal
}
