package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"corrfuse"
	"corrfuse/internal/store"
	"corrfuse/internal/triple"
)

func tr(sub, obj string) triple.Triple {
	return triple.Triple{Subject: sub, Predicate: "p", Object: obj}
}

// seedStore builds a training store: good1 and good2 are perfect copies
// (each provides all 8 true triples), bad provides one true and four false
// triples. u1 is an unlabeled triple claimed by both copiers, and "stale"
// is a pre-existing entry wrongly marked accepted with a high probability
// on the word of the bad source alone.
func seedStore(t *testing.T) *store.Store {
	t.Helper()
	return seedStoreData()
}

// seedStoreData is the testing.T-free builder behind seedStore, shared with
// the ingest benchmarks and the crash-recovery subprocess.
func seedStoreData() *store.Store {
	st := store.New()
	for i := 0; i < 8; i++ {
		srcs := []string{"good1", "good2"}
		if i == 0 {
			srcs = append(srcs, "bad")
		}
		st.Put(store.Entry{Triple: tr(fmt.Sprintf("t%d", i), "v"), Sources: srcs, Label: "true"})
	}
	for i := 0; i < 4; i++ {
		st.Put(store.Entry{Triple: tr(fmt.Sprintf("f%d", i), "v"), Sources: []string{"bad"}, Label: "false"})
	}
	// One false triple shared by the copiers gives their joint false
	// positive rate training support, so the correlation correction for
	// co-provided triples points downward (the classic copy discount).
	st.Put(store.Entry{Triple: tr("fshared", "v"), Sources: []string{"good1", "good2"}, Label: "false"})
	st.Put(store.Entry{Triple: tr("u1", "v"), Sources: []string{"good1", "good2"}})
	st.Put(store.Entry{Triple: tr("stale", "v"), Sources: []string{"bad"}, Probability: 0.99, Accepted: true})
	return st
}

func newServer(t *testing.T, st *store.Store, cfg Config) *Server {
	t.Helper()
	srv, err := New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Start()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			t.Errorf("Close: %v", err)
		}
	})
	return srv
}

func corrConfig() Config {
	return Config{
		Options:         corrfuse.Options{Method: corrfuse.PrecRecCorr, Smoothing: 0.1},
		PenalizeSilence: true,
	}
}

func postJSON(t *testing.T, url string, body any) map[string]any {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: %d: %s", url, resp.StatusCode, msg)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func getJSON(t *testing.T, url string) (map[string]any, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out, resp.StatusCode
}

func tripleURL(base string, tt triple.Triple) string {
	return fmt.Sprintf("%s/v1/triple?subject=%s&predicate=%s&object=%s", base, tt.Subject, tt.Predicate, tt.Object)
}

// TestEndToEnd drives the full loop over HTTP: the initial fusion demotes a
// stale acceptance, ingested claims are instantly visible through the
// incremental model, and a forced re-fusion swaps in the batch
// (correlation-corrected) probability and persists it to the store.
func TestEndToEnd(t *testing.T) {
	st := seedStore(t)
	srv := newServer(t, st, corrConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Initial fusion (snapshot 1) already demoted the stale entry.
	if e, ok := st.Get(tr("stale", "v")); !ok || e.Accepted || e.Probability >= 0.5 {
		t.Fatalf("stale entry not demoted by initial fusion: %+v", e)
	}
	body, code := getJSON(t, tripleURL(ts.URL, tr("stale", "v")))
	if code != http.StatusOK {
		t.Fatalf("GET triple: %d", code)
	}
	result := body["result"].(map[string]any)
	if result["accepted"].(bool) {
		t.Fatal("stale entry still accepted over HTTP")
	}

	// Health reports the first snapshot.
	health, _ := getJSON(t, ts.URL+"/healthz")
	if health["snapshotSeq"].(float64) != 1 {
		t.Fatalf("snapshotSeq = %v, want 1", health["snapshotSeq"])
	}

	// Ingest a fresh triple from the two copying sources: both claims are
	// scored instantly by the live model.
	obs := func(src string, tt triple.Triple) map[string]any {
		return postJSON(t, ts.URL+"/v1/observe", Observation{
			Source: src, Subject: tt.Subject, Predicate: tt.Predicate, Object: tt.Object,
		})
	}
	u2 := tr("u2", "v")
	first := obs("good1", u2)["results"].([]any)[0].(map[string]any)
	if !first["live"].(bool) {
		t.Fatal("observe result not served from the live model")
	}
	p1 := first["probability"].(float64)
	second := obs("good2", u2)["results"].([]any)[0].(map[string]any)
	p2 := second["probability"].(float64)
	if p2 <= p1 {
		t.Fatalf("second provider did not raise the live probability: %v then %v", p1, p2)
	}
	// The query path reports the same live value.
	body, _ = getJSON(t, tripleURL(ts.URL, u2))
	q := body["result"].(map[string]any)
	if !q["live"].(bool) || math.Abs(q["probability"].(float64)-p2) > 1e-12 {
		t.Fatalf("query after ingest = %+v, want live probability %v", q, p2)
	}

	// Batch re-fusion: the copying sources are perfectly correlated, so
	// the correlation-aware batch model must correct the independence
	// estimate downward — and the corrected value must reach the store.
	ref := postJSON(t, ts.URL+"/v1/refuse", struct{}{})
	if ref["skipped"].(bool) {
		t.Fatal("refuse skipped despite new observations")
	}
	if ref["snapshotSeq"].(float64) != 2 {
		t.Fatalf("snapshotSeq after refuse = %v, want 2", ref["snapshotSeq"])
	}
	body, _ = getJSON(t, tripleURL(ts.URL, u2))
	q = body["result"].(map[string]any)
	if q["live"].(bool) {
		t.Fatal("query after refuse still served from the live model")
	}
	batch := q["probability"].(float64)
	if batch >= p2 {
		t.Fatalf("batch correlation-corrected probability %v not below independence estimate %v", batch, p2)
	}
	if e, _ := st.Get(u2); math.Abs(e.Probability-batch) > 1e-12 {
		t.Fatalf("store not updated by re-fusion: %v != %v", e.Probability, batch)
	}

	// u1 (claimed by both copiers since the seed) matches u2 exactly
	// after the rebuild: same provider pattern, same probability.
	body, _ = getJSON(t, tripleURL(ts.URL, tr("u1", "v")))
	if p := body["result"].(map[string]any)["probability"].(float64); math.Abs(p-batch) > 1e-9 {
		t.Fatalf("u1 probability %v != u2 probability %v", p, batch)
	}
}

func TestSubjectSourceAndScore(t *testing.T) {
	st := seedStore(t)
	srv := newServer(t, st, corrConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, code := getJSON(t, ts.URL+"/v1/subject/u1")
	if code != http.StatusOK || len(body["results"].([]any)) != 1 {
		t.Fatalf("subject query: code %d body %v", code, body)
	}
	body, _ = getJSON(t, ts.URL+"/v1/source/bad")
	if n := len(body["results"].([]any)); n != 6 {
		t.Fatalf("source bad has %d entries, want 6", n)
	}

	// Batch score: a snapshot triple, a live-only triple, an unknown one.
	postJSON(t, ts.URL+"/v1/observe", Observation{Source: "good1", Subject: "fresh", Predicate: "p", Object: "v"})
	sc := postJSON(t, ts.URL+"/v1/score", ScoreRequest{Triples: []triple.Triple{
		tr("u1", "v"), tr("fresh", "v"), tr("nosuch", "v"),
	}})
	results := sc["results"].([]any)
	wantBasis := []string{"snapshot", "live", "unknown"}
	for i, want := range wantBasis {
		if got := results[i].(map[string]any)["basis"].(string); got != want {
			t.Errorf("score[%d] basis = %q, want %q", i, got, want)
		}
	}

	// Errors: malformed and empty requests, unknown triple.
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed score: %d", resp.StatusCode)
	}
	if _, code := getJSON(t, tripleURL(ts.URL, tr("nosuch", "v"))); code != http.StatusNotFound {
		t.Fatalf("unknown triple: %d", code)
	}
}

// TestRefreshSkipsUnchangedStore: the refresher must not rebuild when the
// store's data version has not moved — and fusion writebacks themselves
// must not count as data changes.
func TestRefreshSkipsUnchangedStore(t *testing.T) {
	srv := newServer(t, seedStore(t), corrConfig())
	if _, skipped, err := srv.rebuild(context.Background(), false); err != nil || !skipped {
		t.Fatalf("rebuild over unchanged store: skipped=%v err=%v", skipped, err)
	}
	srv.ingest(Observation{Source: "good1", Subject: "new", Predicate: "p", Object: "v"})
	sn, skipped, err := srv.rebuild(context.Background(), false)
	if err != nil || skipped {
		t.Fatalf("rebuild after ingest: skipped=%v err=%v", skipped, err)
	}
	if sn.seq != 2 {
		t.Fatalf("seq = %d, want 2", sn.seq)
	}
	if _, skipped, _ := srv.rebuild(context.Background(), false); !skipped {
		t.Fatal("rebuild immediately after rebuild not skipped")
	}
}

// TestUnknownSourcePending: claims from a source outside the quality model
// are stored and flagged, and join the models at the next re-fusion.
func TestUnknownSourcePending(t *testing.T) {
	st := seedStore(t)
	srv := newServer(t, st, corrConfig())
	res, _, _ := srv.ingest(Observation{Source: "newcomer", Subject: "x", Predicate: "p", Object: "v"})
	if !res.PendingSource {
		t.Fatal("claim from unknown source not flagged pending")
	}
	if e, ok := st.Get(tr("x", "v")); !ok || len(e.Sources) != 1 {
		t.Fatalf("claim from unknown source not stored: %+v", e)
	}
	if _, skipped, err := srv.rebuild(context.Background(), false); err != nil || skipped {
		t.Fatalf("rebuild: skipped=%v err=%v", skipped, err)
	}
	res, _, _ = srv.ingest(Observation{Source: "newcomer", Subject: "y", Predicate: "p", Object: "v"})
	if res.PendingSource || !res.Live {
		t.Fatalf("newcomer still pending after re-fusion: %+v", res)
	}
}

// TestIncrementalBatchParity: on an independence-model dataset (PrecRec),
// the live probabilities served between refreshes must equal what a batch
// fuser over the combined data would compute.
func TestIncrementalBatchParity(t *testing.T) {
	st := seedStore(t)
	srv := newServer(t, st, Config{
		Options:         corrfuse.Options{Method: corrfuse.PrecRec, Smoothing: 0.1},
		PenalizeSilence: true,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	stream := []Observation{
		{Source: "good1", Subject: "n1", Predicate: "p", Object: "v"},
		{Source: "good2", Subject: "n1", Predicate: "p", Object: "v"},
		{Source: "bad", Subject: "n1", Predicate: "p", Object: "v"},
		{Source: "good2", Subject: "n2", Predicate: "p", Object: "v"},
		{Source: "bad", Subject: "n3", Predicate: "p", Object: "v"},
	}
	postJSON(t, ts.URL+"/v1/observe", map[string]any{"observations": stream})

	// Offline reference: batch PrecRec over the store plus the stream.
	d := st.Dataset()
	ref, err := corrfuse.New(d, corrfuse.Options{Method: corrfuse.PrecRec, Smoothing: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	for _, sub := range []string{"n1", "n2", "n3"} {
		tt := tr(sub, "v")
		want, ok := ref.Probability(tt)
		if !ok {
			t.Fatalf("reference fuser does not know %v", tt)
		}
		body, _ := getJSON(t, tripleURL(ts.URL, tt))
		q := body["result"].(map[string]any)
		if !q["live"].(bool) {
			t.Fatalf("%v not served live", tt)
		}
		if got := q["probability"].(float64); math.Abs(got-want) > 1e-9 {
			t.Errorf("%v: live %v != batch %v", tt, got, want)
		}
	}
}

// TestConcurrentIngestAndQuery hammers the service with parallel writers,
// readers and re-fusers; run under -race it checks the snapshot-swap and
// journal protocol.
func TestConcurrentIngestAndQuery(t *testing.T) {
	st := seedStore(t)
	srv := newServer(t, st, corrConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const writers, readers, rounds = 4, 4, 30
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			sources := []string{"good1", "good2", "bad", "latecomer"}
			for i := 0; i < rounds; i++ {
				postJSON(t, ts.URL+"/v1/observe", Observation{
					Source:  sources[rng.Intn(len(sources))],
					Subject: fmt.Sprintf("c%d", rng.Intn(10)), Predicate: "p", Object: "v",
				})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				getJSON(t, tripleURL(ts.URL, tr(fmt.Sprintf("c%d", i%10), "v")))
				postJSON(t, ts.URL+"/v1/score", ScoreRequest{Triples: []triple.Triple{tr("u1", "v"), tr(fmt.Sprintf("c%d", i%10), "v")}})
				if i%7 == 0 {
					resp, err := http.Get(ts.URL + "/metrics")
					if err != nil {
						t.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			postJSON(t, ts.URL+"/v1/refuse", struct{}{})
		}
	}()
	wg.Wait()

	// The final state is consistent: one more forced re-fusion must leave
	// every concurrent claim scored in the store.
	postJSON(t, ts.URL+"/v1/refuse", struct{}{})
	for i := 0; i < 10; i++ {
		tt := tr(fmt.Sprintf("c%d", i), "v")
		if e, ok := st.Get(tt); ok && e.Probability == 0 {
			t.Errorf("%v stored but never scored", tt)
		}
	}
}

// seedStoreWide builds a training store spread over many subjects so a
// subject-hash partition gives every shard data: per subject block, the two
// copiers provide a true triple, bad provides a false one, and the copiers
// share one false triple per 8 blocks.
func seedStoreWide(t *testing.T, blocks int) *store.Store {
	t.Helper()
	st := store.New()
	for i := 0; i < blocks; i++ {
		st.Put(store.Entry{Triple: tr(fmt.Sprintf("wt%d", i), "v"), Sources: []string{"good1", "good2"}, Label: "true"})
		if i%2 == 0 {
			st.Put(store.Entry{Triple: tr(fmt.Sprintf("wf%d", i), "v"), Sources: []string{"bad"}, Label: "false"})
		}
		if i%8 == 0 {
			st.Put(store.Entry{Triple: tr(fmt.Sprintf("wfs%d", i), "v"), Sources: []string{"good1", "good2"}, Label: "false"})
		}
		st.Put(store.Entry{Triple: tr(fmt.Sprintf("wu%d", i), "v"), Sources: []string{"good1", "good2"}})
	}
	return st
}

// TestShardedStress hammers a sharded service with concurrent writers,
// readers and forced re-fusions (run under -race in CI). It checks the two
// invariants the sharded rebuild path must keep under fire:
//
//   - no lost journal claims: after a final quiescent re-fusion, every
//     claim issued during the storm is in the store with its provenance and
//     is scored by the batch snapshot;
//   - monotonically increasing snapshot versions: every observer sees
//     /healthz snapshot sequence numbers non-decreasing, and each forced
//     re-fusion returns a strictly larger sequence than the one before it.
func TestShardedStress(t *testing.T) {
	st := seedStoreWide(t, 48)
	cfg := corrConfig()
	cfg.Options.Shards = 3
	cfg.Options.RebuildWorkers = 2
	srv := newServer(t, st, cfg)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if _, ok := srv.snap.Load().fuser.(*corrfuse.ShardedFuser); !ok {
		t.Fatalf("snapshot model is %T, want *corrfuse.ShardedFuser", srv.snap.Load().fuser)
	}

	const writers, readers, rounds = 4, 3, 25
	type claim struct {
		source string
		t      triple.Triple
	}
	claims := make([][]claim, writers)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			sources := []string{"good1", "good2", "bad"}
			for i := 0; i < rounds; i++ {
				c := claim{
					source: sources[rng.Intn(len(sources))],
					t:      tr(fmt.Sprintf("storm-%d-%d", w, rng.Intn(40)), "v"),
				}
				label := ""
				if i%5 == 0 {
					label = "true"
				}
				postJSON(t, ts.URL+"/v1/observe", Observation{
					Source: c.source, Subject: c.t.Subject, Predicate: c.t.Predicate, Object: c.t.Object,
					Label: label,
				})
				claims[w] = append(claims[w], c)
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			lastSeq := float64(0)
			for i := 0; i < rounds; i++ {
				sc := postJSON(t, ts.URL+"/v1/score", ScoreRequest{Triples: []triple.Triple{
					tr("wu1", "v"), tr(fmt.Sprintf("storm-%d-%d", i%4, i%40), "v"),
				}})
				if seq := sc["snapshotSeq"].(float64); seq < lastSeq {
					t.Errorf("reader %d: snapshot seq went backwards: %v after %v", r, seq, lastSeq)
					return
				} else {
					lastSeq = seq
				}
				health, _ := getJSON(t, ts.URL+"/healthz")
				if seq := health["snapshotSeq"].(float64); seq < lastSeq {
					t.Errorf("reader %d: healthz seq went backwards: %v after %v", r, seq, lastSeq)
					return
				}
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		lastSeq := float64(0)
		for i := 0; i < 6; i++ {
			ref := postJSON(t, ts.URL+"/v1/refuse", struct{}{})
			seq := ref["snapshotSeq"].(float64)
			if seq <= lastSeq {
				t.Errorf("forced re-fusion %d did not advance the snapshot: %v after %v", i, seq, lastSeq)
				return
			}
			lastSeq = seq
		}
	}()
	wg.Wait()

	// Quiesce: one final forced re-fusion folds every journaled claim into
	// the batch model.
	postJSON(t, ts.URL+"/v1/refuse", struct{}{})
	sn := srv.snap.Load()
	if sn.version != srv.store.Version() {
		t.Errorf("final snapshot at store version %d, store is at %d", sn.version, srv.store.Version())
	}
	if len(sn.shardStats) != 3 {
		t.Errorf("final snapshot has %d shard stats, want 3", len(sn.shardStats))
	}
	for w := range claims {
		for _, c := range claims[w] {
			e, ok := st.Get(c.t)
			if !ok {
				t.Fatalf("claim %v lost from the store", c.t)
			}
			if !containsStr(e.Sources, c.source) {
				t.Fatalf("claim (%s, %v) lost its provenance: %v", c.source, c.t, e.Sources)
			}
			id, ok := sn.data.TripleID(c.t)
			if !ok {
				t.Fatalf("claim %v missing from the final snapshot dataset", c.t)
			}
			if len(sn.data.Providers(id)) == 0 {
				t.Fatalf("claim %v has no providers in the final snapshot", c.t)
			}
		}
	}

	// The sharded snapshot exposes per-shard build metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"corrfused_shards 3", `corrfused_shard_rebuild_seconds{shard="2"}`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func containsStr(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// TestMetricsExposition: the endpoint emits the advertised families with
// coherent values.
func TestMetricsExposition(t *testing.T) {
	st := seedStore(t)
	srv := newServer(t, st, corrConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	postJSON(t, ts.URL+"/v1/observe", Observation{Source: "good1", Subject: "m1", Predicate: "p", Object: "v"})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		`corrfused_requests_total{endpoint="observe"} 1`,
		"corrfused_observations_total 1",
		"corrfused_snapshot_seq 1",
		"corrfused_rebuilds_total 1",
		"corrfused_ingest_lag 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestPersistence: re-fusion results survive a save/load round trip and a
// service restart resumes from them.
func TestPersistence(t *testing.T) {
	path := t.TempDir() + "/store.jsonl"
	st := seedStore(t)
	cfg := corrConfig()
	cfg.PersistPath = path
	srv, err := New(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.ingest(Observation{Source: "good1", Subject: "saved", Predicate: "p", Object: "v"})
	srv.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatal(err)
	}

	reloaded, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reloaded.Get(tr("saved", "v")); !ok {
		t.Fatal("ingested claim not persisted")
	}
	if e, _ := reloaded.Get(tr("stale", "v")); e.Accepted {
		t.Fatal("demotion not persisted")
	}
	srv2 := newServer(t, reloaded, corrConfig())
	if seq, _, _ := srv2.Snapshot(); seq != 1 {
		t.Fatalf("restarted snapshot seq = %d", seq)
	}
}

// TestCloseWithoutStart: Close must not hang (nor skip the final persist)
// when the refresher was never started.
func TestCloseWithoutStart(t *testing.T) {
	path := t.TempDir() + "/store.jsonl"
	cfg := corrConfig()
	cfg.RefreshInterval = time.Minute
	cfg.PersistPath = path
	srv, err := New(seedStore(t), cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.ingest(Observation{Source: "good1", Subject: "unsaved", Predicate: "p", Object: "v"})
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatalf("Close without Start: %v", err)
	}
	reloaded, err := store.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reloaded.Get(tr("unsaved", "v")); !ok {
		t.Fatal("Close without Start did not persist")
	}
	srv.Start() // must be a no-op after Close
}

// TestObserveBatchValidation: a batch with any invalid observation is
// rejected wholesale — nothing from it may reach the store.
func TestObserveBatchValidation(t *testing.T) {
	st := seedStore(t)
	srv := newServer(t, st, corrConfig())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	raw, _ := json.Marshal(map[string]any{"observations": []map[string]string{
		{"source": "good1", "subject": "partial", "predicate": "p", "object": "v"},
		{"source": "good2", "subject": "partial", "predicate": "p", "object": "v", "label": "maybe"},
	}})
	resp, err := http.Post(ts.URL+"/v1/observe", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid batch: %d, want 400", resp.StatusCode)
	}
	if _, ok := st.Get(tr("partial", "v")); ok {
		t.Fatal("rejected batch partially ingested")
	}
}

// TestSkippedRebuildTrimsJournal: duplicate-claim traffic must not grow the
// journal across version-gated rebuild skips.
func TestSkippedRebuildTrimsJournal(t *testing.T) {
	srv := newServer(t, seedStore(t), corrConfig())
	for i := 0; i < 5; i++ {
		srv.ingest(Observation{Source: "good1", Subject: "t0", Predicate: "p", Object: "v"})
	}
	srv.live.RLock()
	n := len(srv.live.journal)
	srv.live.RUnlock()
	if n != 5 {
		t.Fatalf("journal = %d entries, want 5", n)
	}
	if _, skipped, err := srv.rebuild(context.Background(), false); err != nil || !skipped {
		t.Fatalf("duplicate claims must not force a rebuild: skipped=%v err=%v", skipped, err)
	}
	srv.live.RLock()
	n = len(srv.live.journal)
	srv.live.RUnlock()
	if n != 0 {
		t.Fatalf("journal not trimmed on skipped rebuild: %d entries", n)
	}
}
