package wal

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// corruptSegment rewrites seg through fn — the hand-corruption helper for
// replay regression tests.
func corruptSegment(t *testing.T, seg string, fn func([]byte) []byte) {
	t.Helper()
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, fn(raw), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestBlankLineMidLogRejected: a zero-length line between records is
// corruption, not a torn tail — replay must fail loudly instead of silently
// skipping it (the pre-replication behavior this test pins down).
func TestBlankLineMidLogRejected(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 4; i++ {
		appendCommit(t, w, rec(i))
	}
	w.Close()
	seg := lastSegment(t, dir)
	corruptSegment(t, seg, func(raw []byte) []byte {
		lines := strings.SplitAfter(string(raw), "\n")
		// Inject a blank line between the second and third records.
		return []byte(lines[0] + lines[1] + "\n" + strings.Join(lines[2:], ""))
	})
	_, _, err := Open(dir, Options{})
	if err == nil {
		t.Fatal("Open replayed past a blank line mid-log")
	}
	if !strings.Contains(err.Error(), "blank line") {
		t.Fatalf("error does not name the blank line: %v", err)
	}
}

// TestBlankLineMidEarlierSegmentRejected: same corruption in a non-final
// segment — also an error (only the last segment has a torn tail to excuse).
func TestBlankLineMidEarlierSegmentRejected(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{SegmentBytes: 1}) // rotate every append
	for i := 0; i < 4; i++ {
		appendCommit(t, w, rec(i))
	}
	w.Close()
	paths, _ := filepath.Glob(filepath.Join(dir, "wal-*.jsonl"))
	if len(paths) < 3 {
		t.Fatalf("expected several segments, got %v", paths)
	}
	corruptSegment(t, paths[1], func(raw []byte) []byte {
		return append([]byte("\n"), raw...)
	})
	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a blank line in a non-final segment")
	}
}

// TestBlankTailTrimmed: a blank line that IS the torn tail of the last
// segment (nothing after it) is trimmed like any other torn tail.
func TestBlankTailTrimmed(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		appendCommit(t, w, rec(i))
	}
	w.Close()
	corruptSegment(t, lastSegment(t, dir), func(raw []byte) []byte {
		return append(raw, '\n')
	})
	w2, recs := mustOpen(t, dir, Options{})
	defer w2.Close()
	if len(recs) != 3 {
		t.Fatalf("recovered %d records, want 3 (blank tail should be trimmed)", len(recs))
	}
}

// shipAll drains a leader's log from seq 1 in small batches, re-verifying
// each shipment, and returns the raw lines and decoded records.
func shipAll(t *testing.T, w *WAL, maxBytes int64) ([][]byte, []Record) {
	t.Helper()
	var raws [][]byte
	var recs []Record
	from := uint64(1)
	for {
		sh, err := w.ReadFrom(from, maxBytes)
		if err != nil {
			t.Fatalf("ReadFrom(%d): %v", from, err)
		}
		if sh.Last < sh.First {
			return raws, recs
		}
		r, rs, err := SplitShipment(sh.Lines, sh.First)
		if err != nil {
			t.Fatalf("SplitShipment: %v", err)
		}
		raws = append(raws, r...)
		recs = append(recs, rs...)
		from = sh.Last + 1
	}
}

// TestShipRoundTrip: lines read by ReadFrom and appended verbatim with
// AppendShipped produce a follower log that replays to the exact same
// records — across leader-side segment rotation and in multiple batches.
func TestShipRoundTrip(t *testing.T) {
	leaderDir, followerDir := t.TempDir(), t.TempDir()
	leader, _ := mustOpen(t, leaderDir, Options{SegmentBytes: 256})
	const n = 20
	for i := 0; i < n; i++ {
		appendCommit(t, leader, rec(i))
	}
	raws, shipped := shipAll(t, leader, 512) // force multiple batches
	leader.Close()
	if len(shipped) != n {
		t.Fatalf("shipped %d records, want %d", len(shipped), n)
	}

	follower, _ := mustOpen(t, followerDir, Options{SegmentBytes: 256})
	for i, raw := range raws {
		seq, err := follower.AppendShipped(raw)
		if err != nil {
			t.Fatalf("AppendShipped %d: %v", i, err)
		}
		if seq != uint64(i+1) {
			t.Fatalf("AppendShipped %d returned seq %d", i, seq)
		}
	}
	if err := follower.Close(); err != nil {
		t.Fatal(err)
	}
	_, replayed := mustOpen(t, followerDir, Options{})
	if len(replayed) != n {
		t.Fatalf("follower replayed %d records, want %d", len(replayed), n)
	}
	for i := range replayed {
		if replayed[i] != shipped[i] {
			t.Fatalf("record %d diverged: follower %+v, leader %+v", i, replayed[i], shipped[i])
		}
	}
}

// TestShipDurableCap: records not yet covered by an fsync must never ship —
// a leader crash could reassign their sequence numbers.
func TestShipDurableCap(t *testing.T) {
	w, _ := mustOpen(t, t.TempDir(), Options{Sync: SyncOff})
	defer w.Close()
	appendCommit(t, w, rec(0)) // SyncOff Commit leaves durability at the last real fsync
	if _, err := w.Append(rec(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil { // seqs 1-2 durable now
		t.Fatal(err)
	}
	if _, err := w.Append(rec(2)); err != nil { // seq 3: flushed maybe, never synced
		t.Fatal(err)
	}
	sh, err := w.ReadFrom(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Last != 2 {
		t.Fatalf("shipment reached seq %d, want durable cap 2", sh.Last)
	}
	if sh.HeadSeq != 3 || sh.DurableSeq != 2 {
		t.Fatalf("watermarks HeadSeq=%d DurableSeq=%d, want 3 and 2", sh.HeadSeq, sh.DurableSeq)
	}
}

// TestShipTruncated: asking for history removed by TruncateThrough yields
// *TruncatedError naming the earliest retained seq, and shipping resumes
// cleanly from there.
func TestShipTruncated(t *testing.T) {
	w, _ := mustOpen(t, t.TempDir(), Options{SegmentBytes: 1})
	defer w.Close()
	for i := 0; i < 6; i++ {
		appendCommit(t, w, rec(i))
	}
	if err := w.TruncateThrough(4); err != nil {
		t.Fatal(err)
	}
	_, err := w.ReadFrom(2, 0)
	var te *TruncatedError
	if !errors.As(err, &te) {
		t.Fatalf("ReadFrom(2) after TruncateThrough(4): err=%v, want *TruncatedError", err)
	}
	if te.Earliest != 5 {
		t.Fatalf("TruncatedError.Earliest = %d, want 5", te.Earliest)
	}
	sh, err := w.ReadFrom(te.Earliest, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sh.First != 5 || sh.Last != 6 {
		t.Fatalf("resume shipment [%d,%d], want [5,6]", sh.First, sh.Last)
	}
}

// TestShipRejectsTamperedLines: follower-side verification — a flipped bit,
// a blank line, or a sequence gap in a shipment must be rejected by both
// SplitShipment and AppendShipped.
func TestShipRejectsTamperedLines(t *testing.T) {
	w, _ := mustOpen(t, t.TempDir(), Options{})
	appendCommit(t, w, rec(0))
	appendCommit(t, w, rec(1))
	sh, err := w.ReadFrom(1, 0)
	w.Close()
	if err != nil {
		t.Fatal(err)
	}

	tampered := append([]byte(nil), sh.Lines...)
	tampered[len(tampered)/2] ^= 0x40
	if _, _, err := SplitShipment(tampered, sh.First); err == nil {
		t.Fatal("SplitShipment accepted a flipped bit")
	}

	blank := append([]byte("\n"), sh.Lines...)
	if _, _, err := SplitShipment(blank, sh.First); err == nil {
		t.Fatal("SplitShipment accepted a blank line")
	}

	raws, _, err := SplitShipment(sh.Lines, sh.First)
	if err != nil {
		t.Fatal(err)
	}
	follower, _ := mustOpen(t, t.TempDir(), Options{})
	defer follower.Close()
	if _, err := follower.AppendShipped(raws[1]); err == nil {
		t.Fatal("AppendShipped accepted a gap (seq 2 onto an empty log)")
	}
	if _, err := follower.AppendShipped(nil); err == nil {
		t.Fatal("AppendShipped accepted a blank line")
	}
	if _, err := follower.AppendShipped(raws[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := follower.AppendShipped(raws[0]); err == nil {
		t.Fatal("AppendShipped accepted a duplicate seq")
	}
}

// TestRetainSegments: with RetainSegments set, TruncateThrough keeps the
// newest N covered segments on disk for followers to catch up from, and
// ReadFrom can still serve them.
func TestRetainSegments(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{SegmentBytes: 1, RetainSegments: 2})
	defer w.Close()
	const n = 8
	for i := 0; i < n; i++ {
		appendCommit(t, w, rec(i))
	}
	if err := w.TruncateThrough(n); err != nil {
		t.Fatal(err)
	}
	// The two newest covered, non-empty segments (seqs 7 and 8) survive.
	sh, err := w.ReadFrom(7, 0)
	if err != nil {
		t.Fatalf("ReadFrom(7) after retained truncate: %v", err)
	}
	if sh.First != 7 || sh.Last != 8 {
		t.Fatalf("retained shipment [%d,%d], want [7,8]", sh.First, sh.Last)
	}
	var te *TruncatedError
	if _, err := w.ReadFrom(1, 0); !errors.As(err, &te) {
		t.Fatalf("seqs beyond the retention window should be truncated, got %v", err)
	}
	// Replay agrees with the retention window, and a restart converges.
	_, recs := mustOpenSecond(t, dir)
	if len(recs) != 2 || recs[0].Seq != 7 {
		t.Fatalf("retained replay %+v, want seqs 7-8", recs)
	}
}

// TestRetainSegmentsIgnoresEmptyMarkers: the retention quota counts only
// segments that actually hold records. A zero-record marker (first > last)
// in the covered prefix must not consume a retained slot — that would
// silently shrink the shipped-history window below RetainSegments. Today's
// append/rotate paths never close an empty segment, so the marker is
// fabricated directly (white box) to pin the arithmetic down.
func TestRetainSegmentsIgnoresEmptyMarkers(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{SegmentBytes: 1, RetainSegments: 2})
	defer w.Close()
	for i := 0; i < 5; i++ {
		appendCommit(t, w, rec(i)) // closed [1,1]..[4,4], open wal-5 holds 5
	}
	marker := filepath.Join(dir, "wal-empty-marker")
	if err := os.WriteFile(marker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	w.mu.Lock()
	w.segs = append(w.segs, segment{path: marker, first: 5, last: 4})
	w.mu.Unlock()

	if err := w.TruncateThrough(4); err != nil {
		t.Fatal(err)
	}
	// The two newest NON-EMPTY covered segments (seqs 3 and 4) survive; with
	// the marker spending a slot, seq 3 would already be gone.
	sh, err := w.ReadFrom(3, 0)
	if err != nil {
		t.Fatalf("ReadFrom(3) after retained truncate: %v", err)
	}
	if sh.First != 3 || sh.Last != 5 {
		t.Fatalf("retained shipment [%d,%d], want [3,5]", sh.First, sh.Last)
	}
	var te *TruncatedError
	if _, err := w.ReadFrom(2, 0); !errors.As(err, &te) {
		t.Fatalf("seq 2 should be beyond the retention window, got %v", err)
	}
	// The marker sits past the removable prefix and survives (contiguity).
	if _, err := os.Stat(marker); err != nil {
		t.Fatalf("marker past the retained prefix was removed: %v", err)
	}
}

// TestWriteBootstrapSegment: the empty marker pins a fresh log to the first
// uncovered seq, so the first shipped record continues it without a gap —
// and bootstrap refuses a directory that already has history.
func TestWriteBootstrapSegment(t *testing.T) {
	dir := t.TempDir()
	if err := WriteBootstrapSegment(dir, 43); err != nil {
		t.Fatal(err)
	}
	if err := WriteBootstrapSegment(dir, 43); err == nil {
		t.Fatal("bootstrap overwrote an existing log")
	}
	w, recs := mustOpen(t, dir, Options{})
	defer w.Close()
	if len(recs) != 0 {
		t.Fatalf("bootstrap marker replayed records: %+v", recs)
	}
	if got := w.Seq(); got != 42 {
		t.Fatalf("bootstrapped Seq() = %d, want 42", got)
	}
	seq, err := w.Append(rec(0))
	if err != nil {
		t.Fatal(err)
	}
	if seq != 43 {
		t.Fatalf("first append after bootstrap got seq %d, want 43", seq)
	}
	if err := WriteBootstrapSegment(dir, 1); err == nil {
		t.Fatal("bootstrap ignored existing segments")
	}
	if err := WriteBootstrapSegment(t.TempDir(), 0); err == nil {
		t.Fatal("bootstrap accepted seq 0")
	}
}
