package wal

// Segment shipping: the replication surface of the log. A leader reads
// verbatim CRC-enveloped lines with ReadFrom and ships them to followers,
// which re-verify every envelope and append the lines to their own log with
// AppendShipped — byte-identical records, leader-assigned sequence numbers,
// end-to-end checksummed. WriteBootstrapSegment pins a freshly-bootstrapped
// follower's log to the first sequence its snapshot does not cover.

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
)

// TruncatedError is returned by ReadFrom when the requested position
// predates the earliest retained record: the history was truncated away and
// the caller must re-bootstrap from a snapshot instead of replaying the log.
type TruncatedError struct {
	// Earliest is the first sequence number still readable from the log.
	Earliest uint64
}

func (e *TruncatedError) Error() string {
	return fmt.Sprintf("wal: requested history truncated; earliest retained seq is %d", e.Earliest)
}

// Shipment is one batch of verbatim log lines read for replication.
type Shipment struct {
	// First and Last bound the sequence numbers of Lines (First > Last:
	// the batch is empty — the reader is caught up to the durable head).
	First, Last uint64
	// HeadSeq is the last assigned sequence number at read time; Last can
	// trail it by records not yet covered by an fsync.
	HeadSeq uint64
	// DurableSeq is the durability watermark at read time; ReadFrom never
	// ships past it.
	DurableSeq uint64
	// Lines holds the shipped records exactly as they are on disk: one
	// CRC-enveloped JSON document per newline-terminated line.
	Lines []byte
}

// ReadFrom reads verbatim log lines for records sequenced from (1 if 0) and
// up, capped at maxBytes (a default is applied when <= 0) and at the
// durability watermark — a record no fsync covers yet must not reach a
// follower, or a leader crash could reuse its sequence number for different
// data and fork the replicas. The CRC envelopes are passed through
// untouched so receivers re-verify them end to end.
//
// An empty Shipment (First > Last) means the reader is caught up; a
// *TruncatedError means the requested history is gone and the caller must
// re-bootstrap from a snapshot.
func (w *WAL) ReadFrom(from uint64, maxBytes int64) (Shipment, error) {
	if from == 0 {
		from = 1
	}
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return Shipment{}, ErrClosed
	}
	head := w.seq
	w.dmu.Lock()
	durable := w.durable
	w.dmu.Unlock()
	sh := Shipment{First: from, Last: from - 1, HeadSeq: head, DurableSeq: durable}
	if from > durable {
		w.mu.Unlock()
		return sh, nil
	}
	// Earliest retained record: the first non-empty closed segment's first
	// sequence, else the open segment's (empty markers hold no records).
	earliest := uint64(0)
	for _, sg := range w.segs {
		if sg.first <= sg.last {
			earliest = sg.first
			break
		}
	}
	if earliest == 0 && head >= w.segFirst {
		earliest = w.segFirst
	}
	if earliest == 0 || from < earliest {
		w.mu.Unlock()
		return Shipment{}, &TruncatedError{Earliest: earliest}
	}
	// Collect the files intersecting [from, durable]. Records at or below
	// the durable watermark are fully flushed (fsync implies flush), so the
	// open segment's file holds every byte we will read — after one buffer
	// flush covering anything queued since the last sync pass.
	var paths []string
	for _, sg := range w.segs {
		if sg.first <= sg.last && sg.last >= from && sg.first <= durable {
			paths = append(paths, sg.path)
		}
	}
	if head >= w.segFirst && durable >= w.segFirst {
		if err := w.bw.Flush(); err != nil {
			w.mu.Unlock()
			return Shipment{}, fmt.Errorf("wal: %w", err)
		}
		paths = append(paths, w.segmentPath(w.segFirst))
	}
	w.mu.Unlock()

	// Scan outside the lock: the files only grow or get removed by a
	// concurrent truncation (which surfaces as an open/continuity error the
	// caller retries).
	var buf bytes.Buffer
	next := from
	for _, p := range paths {
		done, err := shipLines(p, &next, durable, maxBytes, &buf)
		if err != nil {
			return Shipment{}, err
		}
		if done {
			break
		}
	}
	if next == from {
		// from is within the retained, durable range yet nothing shipped:
		// the segment holding it vanished or failed mid-scan.
		return Shipment{}, fmt.Errorf("wal: record %d unreadable (segment truncated or corrupt mid-ship)", from)
	}
	sh.Last = next - 1
	sh.Lines = buf.Bytes()
	return sh, nil
}

// shipLines appends path's verbatim lines for records sequenced [*next,
// limit] to buf, advancing *next per shipped record, until the file or the
// budget is exhausted. done reports that the batch is complete (limit or
// maxBytes reached).
func shipLines(path string, next *uint64, limit uint64, maxBytes int64, buf *bytes.Buffer) (done bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, fmt.Errorf("wal: ship: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 64<<10)
	var env envelope
	for {
		if *next > limit {
			return true, nil
		}
		raw, rerr := br.ReadBytes('\n')
		if rerr == io.EOF && len(raw) == 0 {
			return false, nil
		}
		if rerr == io.EOF {
			// Newline-less tail: an append in flight past the durable
			// watermark. Every record <= limit is complete, so hitting the
			// tail means this file is exhausted for our range.
			return false, nil
		}
		if rerr != nil {
			return false, fmt.Errorf("wal: ship %s: %w", path, rerr)
		}
		line := raw
		raw = raw[:len(raw)-1]
		if len(raw) == 0 {
			return false, fmt.Errorf("wal: ship %s: blank line mid-log (corruption)", path)
		}
		rec, perr := decodeLine(raw, &env)
		if perr != nil {
			return false, fmt.Errorf("wal: ship %s: %w", path, perr)
		}
		if rec.Seq < *next {
			continue // before the requested range
		}
		if rec.Seq != *next {
			return false, fmt.Errorf("wal: ship %s: sequence %d, want %d (gap)", path, rec.Seq, *next)
		}
		buf.Write(line)
		*next = rec.Seq + 1
		if int64(buf.Len()) >= maxBytes {
			return true, nil
		}
	}
}

// AppendShipped appends one leader-shipped log line verbatim: the CRC
// envelope is re-verified, and the record's sequence number must continue
// the local log exactly (Seq()+1) — a gap, duplicate, blank or corrupt
// shipped line is rejected, so a follower can never write a log its own
// replay would refuse to open. raw is one line WITHOUT its newline
// terminator. Rotation applies as for Append.
//
// Durability is deliberately not waited on: a follower that crashes simply
// refetches the unsynced suffix from the leader, so its exposure is a
// refetch, never data loss — the leader already holds every shipped record
// durably.
func (w *WAL) AppendShipped(raw []byte) (uint64, error) {
	if len(bytes.TrimSpace(raw)) == 0 {
		return 0, errors.New("wal: shipped line is blank: rejecting corrupt shipment")
	}
	var env envelope
	rec, err := decodeLine(raw, &env)
	if err != nil {
		return 0, fmt.Errorf("wal: shipped line: %w", err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if rec.Seq != w.seq+1 {
		return 0, fmt.Errorf("wal: shipped record seq %d does not continue the log at %d", rec.Seq, w.seq+1)
	}
	if w.segBytes >= w.opts.SegmentBytes && w.seq >= w.segFirst {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	line := make([]byte, 0, len(raw)+1)
	line = append(append(line, raw...), '\n')
	if _, err := w.bw.Write(line); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	w.seq = rec.Seq
	w.segBytes += int64(len(line))
	return rec.Seq, nil
}

// SplitShipment splits a Shipment's Lines back into individual raw lines
// (newline terminators stripped), verifying each envelope and that the
// sequence numbers run contiguously from first — the follower-side
// re-verification of everything the leader passed through verbatim. A blank
// line anywhere in a shipment is corruption and rejects the whole batch.
func SplitShipment(lines []byte, first uint64) (raws [][]byte, recs []Record, err error) {
	next := first
	var env envelope
	for len(lines) > 0 {
		nl := bytes.IndexByte(lines, '\n')
		if nl < 0 {
			return nil, nil, errors.New("wal: shipment ends mid-line (truncated transfer)")
		}
		raw := lines[:nl]
		lines = lines[nl+1:]
		if len(bytes.TrimSpace(raw)) == 0 {
			return nil, nil, errors.New("wal: shipment contains a blank line: rejecting corrupt shipment")
		}
		rec, perr := decodeLine(raw, &env)
		if perr != nil {
			return nil, nil, fmt.Errorf("wal: shipment: %w", perr)
		}
		if rec.Seq != next {
			return nil, nil, fmt.Errorf("wal: shipment: sequence %d, want %d (gap or reordering)", rec.Seq, next)
		}
		next++
		raws = append(raws, raw)
		recs = append(recs, rec)
	}
	return raws, recs, nil
}

// HasSegments reports whether dir holds any valid segment files. A missing
// directory has none. Bootstrap decisions key off this: a follower with any
// local history resumes from it instead of re-snapshotting.
func HasSegments(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() && isSegmentName(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

// WriteBootstrapSegment creates an empty segment pinning a fresh log's next
// sequence number to first: a follower bootstrapped from a snapshot
// covering sequences below first starts its local log exactly there, so the
// first shipped record continues it without a gap. The file is written
// under a .tmp name and renamed into place (directory fsynced), so a crash
// mid-bootstrap leaves only a loudly-ignored leftover. The directory must
// not already contain segments.
func WriteBootstrapSegment(dir string, first uint64) error {
	if first == 0 {
		return errors.New("wal: bootstrap sequence must be positive")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() && isSegmentName(e.Name()) {
			return fmt.Errorf("wal: bootstrap refused: %s already holds segment %s", dir, e.Name())
		}
	}
	path := segmentFile(dir, first)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		//lint:ignore errswallow best-effort removal of the orphaned temp file; the rename error is returned
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	return syncDir(dir)
}
