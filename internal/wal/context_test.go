package wal

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestCommitContextAbandon: a canceled context abandons the commit wait
// with the context's error — the non-acknowledgment — but the record stays
// in the log and becomes durable with the next commit, surviving a reopen:
// at-least-once, never acknowledged-then-lost.
func TestCommitContextAbandon(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{})
	seq, err := w.Append(rec(0))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := w.CommitContext(ctx, seq); !errors.Is(err, context.Canceled) {
		t.Fatalf("CommitContext with canceled ctx = %v, want context.Canceled", err)
	}

	// The abandoned record is still in the log: the next commit makes it
	// durable and a reopen replays it.
	if err := w.Commit(seq); err != nil {
		t.Fatalf("Commit after abandoned wait: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, recs := mustOpen(t, dir, Options{})
	if len(recs) != 1 || recs[0].Subject != rec(0).Subject {
		t.Fatalf("reopen recovered %v, want the abandoned-then-committed record", recs)
	}
}

// TestCommitContextDurabilityWins: when the fsync lands before the waiter
// notices its expired context, the commit reports success — the durability
// check deliberately precedes the context check, so an achieved commit is
// never mis-reported as abandoned.
func TestCommitContextDurabilityWins(t *testing.T) {
	w, _ := mustOpen(t, t.TempDir(), Options{})
	seq := appendCommit(t, w, rec(0)) // already durable
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := w.CommitContext(ctx, seq); err != nil {
		t.Fatalf("CommitContext on already-durable seq = %v, want nil", err)
	}
}

// TestCommitContextWakesFollower: a follower parked on the group-commit
// cond while a leader holds the fsync is woken by its own deadline (the
// context.AfterFunc broadcast), not stranded until the leader returns. The
// leader's fsync is simulated by holding the syncing flag.
func TestCommitContextWakesFollower(t *testing.T) {
	w, _ := mustOpen(t, t.TempDir(), Options{})
	seq, err := w.Append(rec(0))
	if err != nil {
		t.Fatal(err)
	}

	// Pose as a leader mid-fsync: followers must queue on the cond.
	w.dmu.Lock()
	w.syncing = true
	w.dmu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- w.CommitContext(ctx, seq) }()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("follower wait = %v, want context.DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deadline did not wake the parked follower")
	}

	// Release the fake leader; a fresh commit must still succeed.
	w.dmu.Lock()
	w.syncing = false
	w.dcond.Broadcast()
	w.dmu.Unlock()
	if err := w.Commit(seq); err != nil {
		t.Fatalf("Commit after released leader: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}
