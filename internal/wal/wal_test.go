package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func rec(i int) Record {
	return Record{
		Source:    fmt.Sprintf("src%d", i%3),
		Subject:   fmt.Sprintf("s%d", i),
		Predicate: "p",
		Object:    "v",
	}
}

func mustOpen(t *testing.T, dir string, opts Options) (*WAL, []Record) {
	t.Helper()
	w, recs, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return w, recs
}

func appendCommit(t *testing.T, w *WAL, r Record) uint64 {
	t.Helper()
	seq, err := w.Append(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(seq); err != nil {
		t.Fatal(err)
	}
	return seq
}

// TestAppendReplay: records round-trip through a close/reopen with
// contiguous sequence numbers, and the reopened log continues the sequence.
func TestAppendReplay(t *testing.T) {
	dir := t.TempDir()
	w, recovered := mustOpen(t, dir, Options{})
	if len(recovered) != 0 {
		t.Fatalf("fresh log recovered %d records", len(recovered))
	}
	const n = 25
	for i := 0; i < n; i++ {
		if seq := appendCommit(t, w, rec(i)); seq != uint64(i+1) {
			t.Fatalf("append %d got seq %d", i, seq)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs := mustOpen(t, dir, Options{})
	defer w2.Close()
	if len(recs) != n {
		t.Fatalf("recovered %d records, want %d", len(recs), n)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
		if r.Subject != fmt.Sprintf("s%d", i) || r.Source != fmt.Sprintf("src%d", i%3) {
			t.Fatalf("record %d corrupted: %+v", i, r)
		}
	}
	if seq := appendCommit(t, w2, rec(n)); seq != n+1 {
		t.Fatalf("sequence did not survive reopen: got %d, want %d", seq, n+1)
	}
	if st := w2.Stats(); st.Recovered != n {
		t.Fatalf("Stats.Recovered = %d, want %d", st.Recovered, n)
	}
}

// lastSegment returns the path of the highest-named segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.jsonl"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no segments in %s (err=%v)", dir, err)
	}
	sort.Strings(paths)
	return paths[len(paths)-1]
}

// TestTornTailTrimmed: a partial final record — a crash mid-append — is
// trimmed on Open, replay keeps everything before it, and appending after
// recovery yields a clean log.
func TestTornTailTrimmed(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 5; i++ {
		appendCommit(t, w, rec(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the last record: drop its final 7 bytes (newline included).
	if err := os.WriteFile(seg, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	w2, recs := mustOpen(t, dir, Options{})
	if len(recs) != 4 {
		t.Fatalf("recovered %d records after tear, want 4", len(recs))
	}
	appendCommit(t, w2, rec(9))
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}

	w3, recs := mustOpen(t, dir, Options{})
	defer w3.Close()
	if len(recs) != 5 {
		t.Fatalf("recovered %d records after post-tear append, want 5", len(recs))
	}
	// The re-used sequence number 5 now names the post-recovery record.
	if last := recs[4]; last.Seq != 5 || last.Subject != "s9" {
		t.Fatalf("post-tear append corrupted: %+v", last)
	}
}

// TestNewlinelessTailTorn: a final record whose bytes all made it but whose
// newline did not is torn — keeping it would glue the next append onto the
// same line and corrupt both.
func TestNewlinelessTailTorn(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 3; i++ {
		appendCommit(t, w, rec(i))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	seg := lastSegment(t, dir)
	raw, _ := os.ReadFile(seg)
	os.WriteFile(seg, raw[:len(raw)-1], 0o644) // strip only the final newline

	w2, recs := mustOpen(t, dir, Options{})
	if len(recs) != 2 {
		t.Fatalf("recovered %d records, want 2 (newline-less tail must be torn)", len(recs))
	}
	appendCommit(t, w2, rec(7))
	w2.Close()
	w3, recs := mustOpen(t, dir, Options{})
	defer w3.Close()
	if len(recs) != 3 {
		t.Fatalf("append after trim left %d replayable records, want 3", len(recs))
	}
}

// TestCorruptRecordDetected: a bit flip in a record's payload fails the CRC;
// in the last segment replay stops before it, anywhere else Open errors.
func TestCorruptRecordDetected(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{})
	for i := 0; i < 4; i++ {
		appendCommit(t, w, rec(i))
	}
	w.Close()
	seg := lastSegment(t, dir)
	raw, _ := os.ReadFile(seg)
	// Flip a byte inside the second record's payload.
	lines := strings.SplitAfter(string(raw), "\n")
	second := []byte(lines[1])
	second[len(second)/2] ^= 0x40
	lines[1] = string(second)
	os.WriteFile(seg, []byte(strings.Join(lines, "")), 0o644)

	_, recs := mustOpen(t, dir, Options{})
	if len(recs) != 1 {
		t.Fatalf("replay past a corrupt record: got %d records, want 1", len(recs))
	}
}

// TestCorruptMiddleSegmentFails: corruption in a non-final segment is not a
// torn tail — it must fail Open loudly instead of replaying a silent gap.
func TestCorruptMiddleSegmentFails(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{SegmentBytes: 1}) // rotate every append
	for i := 0; i < 4; i++ {
		appendCommit(t, w, rec(i))
	}
	w.Close()
	paths, _ := filepath.Glob(filepath.Join(dir, "wal-*.jsonl"))
	sort.Strings(paths)
	if len(paths) < 3 {
		t.Fatalf("expected several segments, got %v", paths)
	}
	raw, _ := os.ReadFile(paths[1])
	raw[len(raw)/2] ^= 0x40
	os.WriteFile(paths[1], raw, 0o644)

	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("Open accepted a corrupt middle segment")
	}
}

// TestRotationAndTruncate: a tiny segment threshold forces rotation on
// every append; TruncateThrough removes exactly the covered segments and a
// reopen replays only the suffix.
func TestRotationAndTruncate(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{SegmentBytes: 1})
	const n = 10
	for i := 0; i < n; i++ {
		appendCommit(t, w, rec(i))
	}
	if st := w.Stats(); st.Segments < n {
		t.Fatalf("expected ~%d segments, got %d", n, st.Segments)
	}

	if err := w.TruncateThrough(6); err != nil {
		t.Fatal(err)
	}
	_, recs := mustOpenSecond(t, dir)
	if len(recs) != n-6 {
		t.Fatalf("after TruncateThrough(6): %d records on disk, want %d", len(recs), n-6)
	}
	if recs[0].Seq != 7 {
		t.Fatalf("suffix starts at seq %d, want 7", recs[0].Seq)
	}

	// Truncating through the head (snapshot taken at the log head) empties
	// the log: the open segment rotates so it can be deleted too.
	if err := w.TruncateThrough(n); err != nil {
		t.Fatal(err)
	}
	_, recs = mustOpenSecond(t, dir)
	if len(recs) != 0 {
		t.Fatalf("after TruncateThrough(head): %d records on disk, want 0", len(recs))
	}

	// The log still appends correctly after being emptied.
	seq := appendCommit(t, w, rec(99))
	if seq != n+1 {
		t.Fatalf("append after truncate got seq %d, want %d", seq, n+1)
	}
	w.Close()
	_, recs = mustOpenSecond(t, dir)
	if len(recs) != 1 || recs[0].Seq != n+1 {
		t.Fatalf("post-truncate append not replayed: %+v", recs)
	}
}

// mustOpenSecond opens the directory read-only-style (a second WAL over the
// same files) just to observe what a fresh process would replay, and closes
// it again. The primary writer must not be appending concurrently.
func mustOpenSecond(t *testing.T, dir string) (*WAL, []Record) {
	t.Helper()
	w, recs, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return w, recs
}

// TestGroupCommit: with a deliberately slow fsync, concurrent writers must
// coalesce into far fewer fsyncs than appends — and every committed record
// must actually be durable and replayable.
func TestGroupCommit(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{})
	var fsyncs atomic.Int64
	w.syncFile = func(f *os.File) error {
		fsyncs.Add(1)
		time.Sleep(2 * time.Millisecond) // a disk-like fsync latency
		return f.Sync()
	}

	const writers, per = 8, 10
	var wg sync.WaitGroup
	var maxSeq atomic.Uint64
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seq, err := w.Append(rec(g*per + i))
				if err != nil {
					t.Error(err)
					return
				}
				if err := w.Commit(seq); err != nil {
					t.Error(err)
					return
				}
				for {
					cur := maxSeq.Load()
					if seq <= cur || maxSeq.CompareAndSwap(cur, seq) {
						break
					}
				}
			}
		}(g)
	}
	wg.Wait()

	total := int64(writers * per)
	if got := fsyncs.Load(); got >= total {
		t.Errorf("no group commit: %d fsyncs for %d committed appends", got, total)
	}
	st := w.Stats()
	if st.DurableSeq < uint64(total) {
		t.Errorf("DurableSeq = %d after %d commits", st.DurableSeq, total)
	}
	if st.LastGroupCommit == 0 {
		t.Error("LastGroupCommit never recorded")
	}
	w.Close()

	_, recs := mustOpenSecond(t, dir)
	if len(recs) != int(total) {
		t.Fatalf("replayed %d records, want %d", len(recs), total)
	}
}

// TestClosedOperationsFail: appends and commits after Close report
// ErrClosed instead of pretending to be durable.
func TestClosedOperationsFail(t *testing.T) {
	w, _ := mustOpen(t, t.TempDir(), Options{})
	seq := appendCommit(t, w, rec(0))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(rec(1)); err != ErrClosed {
		t.Fatalf("Append after Close: %v, want ErrClosed", err)
	}
	if err := w.Commit(seq + 1); err != ErrClosed {
		t.Fatalf("Commit past head after Close: %v, want ErrClosed", err)
	}
	if err := w.TruncateThrough(seq); err != ErrClosed {
		t.Fatalf("TruncateThrough after Close: %v, want ErrClosed", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestIntervalAndOffPolicies: commits return without waiting for fsync, the
// data still reaches the OS (visible after Close → reopen), and the ticker
// advances the durability watermark under SyncInterval.
func TestIntervalAndOffPolicies(t *testing.T) {
	for _, policy := range []string{SyncInterval, SyncOff} {
		t.Run(policy, func(t *testing.T) {
			dir := t.TempDir()
			w, _ := mustOpen(t, dir, Options{Sync: policy, SyncInterval: 5 * time.Millisecond})
			const n = 10
			for i := 0; i < n; i++ {
				appendCommit(t, w, rec(i))
			}
			if policy == SyncInterval {
				deadline := time.Now().Add(2 * time.Second)
				for w.Stats().DurableSeq < n {
					if time.Now().After(deadline) {
						t.Fatal("interval fsync never covered the appends")
					}
					time.Sleep(time.Millisecond)
				}
			}
			w.Close()
			_, recs := mustOpenSecond(t, dir)
			if len(recs) != n {
				t.Fatalf("replayed %d records, want %d", len(recs), n)
			}
		})
	}
}

// TestBadSyncPolicyRejected: Open validates the policy up front.
func TestBadSyncPolicyRejected(t *testing.T) {
	if _, _, err := Open(t.TempDir(), Options{Sync: "sometimes"}); err == nil {
		t.Fatal("Open accepted an unknown sync policy")
	}
}

// TestStatsBytes: Stats tracks bytes across rotations and truncations.
func TestStatsBytes(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{SegmentBytes: 256})
	for i := 0; i < 20; i++ {
		appendCommit(t, w, rec(i))
	}
	before := w.Stats()
	if before.Bytes == 0 || before.Segments < 2 {
		t.Fatalf("implausible stats before truncate: %+v", before)
	}
	if err := w.TruncateThrough(10); err != nil {
		t.Fatal(err)
	}
	after := w.Stats()
	if after.Bytes >= before.Bytes || after.Segments >= before.Segments {
		t.Fatalf("truncate did not shrink the log: %+v -> %+v", before, after)
	}
	w.Close()
}

// TestSeqSurvivesTruncateAndReopen: the regression test for the empty-log
// reboot — after a persist truncates the whole log and the process
// restarts, the sequence must continue from the segment name, not reset
// (a reset would reuse sequence numbers and wedge a later recovery on a
// bogus gap).
func TestSeqSurvivesTruncateAndReopen(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{})
	const n = 5
	for i := 0; i < n; i++ {
		appendCommit(t, w, rec(i))
	}
	if err := w.TruncateThrough(n); err != nil { // snapshot covered everything
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs := mustOpen(t, dir, Options{})
	if len(recs) != 0 {
		t.Fatalf("empty log replayed %d records", len(recs))
	}
	if seq := appendCommit(t, w2, rec(n)); seq != n+1 {
		t.Fatalf("sequence reset across truncate+reopen: got %d, want %d", seq, n+1)
	}
	// A later persist + crash + reboot must still recover cleanly.
	if err := w2.TruncateThrough(n + 1); err != nil {
		t.Fatal(err)
	}
	appendCommit(t, w2, rec(n+1))
	w2.Close()
	w3, recs := mustOpen(t, dir, Options{})
	defer w3.Close()
	if len(recs) != 1 || recs[0].Seq != n+2 {
		t.Fatalf("recovery after truncate cycles: %+v, want single record seq %d", recs, n+2)
	}
}

// TestRebase: a rebase deletes every segment (open one included), pins the
// sequence so the next append lands at exactly first, and the surviving
// on-disk state replays cleanly across a reopen — the follower re-bootstrap
// primitive.
func TestRebase(t *testing.T) {
	dir := t.TempDir()
	w, _ := mustOpen(t, dir, Options{SegmentBytes: 1}) // one record per segment
	for i := 0; i < 5; i++ {
		appendCommit(t, w, rec(i))
	}

	const first = 42
	if err := w.Rebase(first); err != nil {
		t.Fatal(err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 1 || paths[0] != filepath.Join(dir, fmt.Sprintf("wal-%016d.jsonl", first)) {
		t.Fatalf("rebase left segments %v, want only the pin for seq %d", paths, first)
	}
	if got := w.Seq(); got != first-1 {
		t.Fatalf("Seq() = %d after rebase, want %d", got, first-1)
	}
	if st := w.Stats(); st.DurableSeq != first-1 || st.Segments != 1 || st.Bytes != 0 {
		t.Fatalf("stats after rebase: %+v", st)
	}
	if seq := appendCommit(t, w, rec(100)); seq != first {
		t.Fatalf("first post-rebase append got seq %d, want %d", seq, first)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs := mustOpen(t, dir, Options{})
	defer w2.Close()
	if len(recs) != 1 || recs[0].Seq != first {
		t.Fatalf("reopen after rebase recovered %+v, want one record at seq %d", recs, first)
	}
	if seq := appendCommit(t, w2, rec(101)); seq != first+1 {
		t.Fatalf("post-reopen append got seq %d, want %d", seq, first+1)
	}

	if err := w2.Rebase(0); err == nil {
		t.Fatal("Rebase(0) accepted")
	}
}

// TestRebaseClosed: rebasing a closed log fails with ErrClosed.
func TestRebaseClosed(t *testing.T) {
	w, _ := mustOpen(t, t.TempDir(), Options{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Rebase(7); err != ErrClosed {
		t.Fatalf("Rebase on closed log: %v, want ErrClosed", err)
	}
}

// TestForeignSegmentNameIgnoredLoudly: a wal-*.jsonl file whose name carries
// no sequence number cannot pin the log position — Open must skip it without
// replaying it, and must say so (log line + IgnoredFiles stat) instead of
// failing the whole log or silently replaying garbage.
func TestForeignSegmentNameIgnoredLoudly(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-backup.jsonl"), []byte("garbage\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000042.jsonl.tmp"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	var logged []string
	w, recs, err := Open(dir, Options{Logf: func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(recs) != 0 {
		t.Fatalf("foreign files replayed as records: %+v", recs)
	}
	if got := w.Stats().IgnoredFiles; got != 2 {
		t.Fatalf("IgnoredFiles = %d, want 2", got)
	}
	if len(logged) != 2 {
		t.Fatalf("ignored files logged %d times, want 2: %q", len(logged), logged)
	}
	for _, line := range logged {
		if !strings.Contains(line, "ignoring") {
			t.Fatalf("log line does not announce the ignore: %q", line)
		}
	}
	// The foreign files must survive untouched for operator inspection.
	for _, name := range []string{"wal-backup.jsonl", "wal-0000000000000042.jsonl.tmp"} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("ignored file %s disturbed: %v", name, err)
		}
	}
}

// TestOnCommitWaitHook: every Commit reports its durability wait to the
// hook, under every sync policy, and a zero-seq Commit (empty batch) skips
// the hook entirely.
func TestOnCommitWaitHook(t *testing.T) {
	for _, policy := range []string{SyncAlways, SyncInterval, SyncOff} {
		t.Run(policy, func(t *testing.T) {
			var calls atomic.Int64
			var total atomic.Int64
			w, _ := mustOpen(t, t.TempDir(), Options{
				Sync: policy,
				OnCommitWait: func(d time.Duration) {
					calls.Add(1)
					total.Add(int64(d))
				},
			})
			defer w.Close()
			for i := 0; i < 3; i++ {
				appendCommit(t, w, rec(i))
			}
			if got := calls.Load(); got != 3 {
				t.Fatalf("hook called %d times, want 3", got)
			}
			if total.Load() < 0 {
				t.Fatalf("negative total wait %v", time.Duration(total.Load()))
			}
			if err := w.Commit(0); err != nil {
				t.Fatal(err)
			}
			if got := calls.Load(); got != 3 {
				t.Fatalf("zero-seq Commit invoked the hook (%d calls)", got)
			}
		})
	}
}

// TestOnCommitWaitMeasuresFsync: with an artificially slow fsync the hook's
// reported wait must cover the fsync latency — the signal operators use to
// attribute ingest tail latency to storage stalls.
func TestOnCommitWaitMeasuresFsync(t *testing.T) {
	const stall = 20 * time.Millisecond
	var waits []time.Duration
	var mu sync.Mutex
	w, _ := mustOpen(t, t.TempDir(), Options{
		Sync: SyncAlways,
		OnCommitWait: func(d time.Duration) {
			mu.Lock()
			waits = append(waits, d)
			mu.Unlock()
		},
	})
	defer w.Close()
	w.syncFile = func(f *os.File) error {
		time.Sleep(stall)
		return f.Sync()
	}
	appendCommit(t, w, rec(0))
	mu.Lock()
	defer mu.Unlock()
	if len(waits) != 1 || waits[0] < stall {
		t.Fatalf("hook reported %v, want >= %v", waits, stall)
	}
}
