// Package wal is a segmented, append-only write-ahead log of observations:
// the durability substrate under the fusion service's ingest path. Every
// acknowledged claim is appended as a CRC-protected JSONL record with a
// monotone sequence number before the acknowledgment is sent, so a crash
// between two snapshot saves loses nothing that was acknowledged.
//
// Durability is group-committed: concurrent writers append to a shared
// buffer under a short mutex and then wait on a commit ticket; a single
// syncer goroutine flushes and fsyncs once for every batch of waiters and
// releases them all, so the per-write fsync cost amortizes across
// concurrent writers instead of serializing them (one fsync per write).
//
// The log is a directory of JSONL segments (wal-<firstseq>.jsonl). Appends
// rotate to a fresh segment past a size threshold, and TruncateThrough
// deletes the segments a newer store snapshot fully covers, so the live log
// tracks the un-snapshotted suffix of the write stream, not its history.
// Open replays the surviving records in order, tolerating (and trimming) a
// torn final record from a crash mid-append; corruption anywhere else is an
// error, never a silent gap.
package wal

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Sync policies. Always is the durable default: Commit returns only after
// an fsync covers the committed sequence number (group-committed across
// concurrent writers). Interval flushes each commit to the OS and fsyncs on
// a timer, bounding loss to one interval of acknowledged writes on a power
// cut (a process crash alone loses nothing the OS received). Off never
// fsyncs outside rotation and Close; the OS decides when bytes reach disk.
const (
	SyncAlways   = "always"
	SyncInterval = "interval"
	SyncOff      = "off"
)

// Defaults for Options zero values.
const (
	DefaultSegmentBytes = 4 << 20
	DefaultSyncInterval = 100 * time.Millisecond
)

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("wal: closed")

// Record is one acknowledged observation. Seq is assigned by Append and is
// strictly monotone across the life of the log, surviving restarts.
type Record struct {
	Seq       uint64 `json:"seq"`
	Source    string `json:"source"`
	Subject   string `json:"subject"`
	Predicate string `json:"predicate"`
	Object    string `json:"object"`
	Label     string `json:"label,omitempty"`
}

// envelope is the on-disk line: the marshaled record plus an IEEE CRC32
// over its exact bytes, so a torn or bit-flipped line never replays as a
// plausible observation.
type envelope struct {
	CRC uint32          `json:"crc"`
	Rec json.RawMessage `json:"rec"`
}

// Options configures a WAL. The zero value means SyncAlways, a 4 MiB
// segment threshold and a 100 ms fsync interval (for SyncInterval).
type Options struct {
	// Sync is the fsync policy: SyncAlways (default), SyncInterval, SyncOff.
	Sync string
	// SyncInterval is the fsync period under SyncInterval.
	SyncInterval time.Duration
	// SegmentBytes rotates the live segment once it grows past this size.
	SegmentBytes int64
	// OnCommitWait, when non-nil, receives the wall time each Commit call
	// spent making its sequence durable — the group-commit wait under
	// SyncAlways (queueing for a leader's fsync included), the buffer
	// flush under the other policies. It is the observability hook for
	// attributing ingest tail latency to fsync stalls; implementations
	// must be cheap and non-blocking (e.g. a histogram observation).
	OnCommitWait func(time.Duration)

	// RetainSegments keeps up to this many newest fully-covered segments
	// alive across TruncateThrough calls instead of deleting them all.
	// Retained segments cost idempotent replay on the next Open and disk
	// space, and buy replication history: a follower that reconnects after
	// missing a truncation can still fetch the covered suffix via ReadFrom
	// instead of needing a full snapshot re-bootstrap. 0 (the default)
	// truncates everything a snapshot covers, the pre-replication behavior.
	RetainSegments int

	// Logf receives operational log lines (ignored leftover files found by
	// Open, and nothing on the hot path). Nil silences them.
	Logf func(format string, args ...any)
}

// Stats is a point-in-time snapshot of the log's state.
type Stats struct {
	// Seq is the last assigned sequence number (0 before any append).
	Seq uint64
	// DurableSeq is the highest sequence number an fsync is known to
	// cover. Under SyncInterval/SyncOff it trails Seq by design.
	DurableSeq uint64
	// Segments is the number of live segment files, the open one included.
	Segments int
	// Bytes is the total size of the live segment files.
	Bytes int64
	// Fsyncs counts fsync calls on segment data (group commits, interval
	// ticks, rotations).
	Fsyncs uint64
	// LastGroupCommit is the number of records the most recent group
	// commit fsync made durable in one call.
	LastGroupCommit uint64
	// Recovered is the number of records Open replayed.
	Recovered int
	// IgnoredFiles is the number of non-segment files Open found (and
	// loudly ignored) in the log directory — typically .tmp leftovers from
	// a segment creation or download that crashed mid-write.
	IgnoredFiles int
}

// segment is a closed (no longer written) segment file.
type segment struct {
	path        string
	first, last uint64 // sequence numbers it contains (first > last: empty)
	bytes       int64
}

// WAL is an open write-ahead log. It is safe for concurrent use.
type WAL struct {
	dir  string
	opts Options

	// mu guards the write state: the open segment, its buffered writer,
	// and the sequence counter. Appends hold it only for an in-memory
	// buffer write; fsyncs happen outside it.
	mu       sync.Mutex
	f        *os.File
	bw       *bufio.Writer
	seq      uint64 // last assigned
	segFirst uint64 // seq of the open segment's first record (seq+1 at creation)
	segBytes int64
	segs     []segment // closed segments, ascending
	closed   bool

	// dmu guards the durability state commit waiters block on.
	dmu       sync.Mutex
	dcond     *sync.Cond
	durable   uint64
	syncing   bool  // a group-commit leader's fsync is in flight
	syncErr   error // sticky: a failed fsync poisons the log (fail-stop)
	dclosed   bool
	fsyncs    atomic.Uint64
	lastGroup atomic.Uint64

	quit       chan struct{}
	syncerDone chan struct{}

	closeOnce sync.Once
	closeErr  error

	recovered    int
	ignoredFiles int

	// syncFile is the fsync implementation, injectable by tests (e.g. to
	// slow it down and prove commits coalesce).
	syncFile func(*os.File) error
}

// Open opens (creating if necessary) the log directory, replays every
// surviving record in order and returns them along with a WAL positioned to
// append after the last one. A torn final record — a crash mid-append — is
// trimmed from the last segment and replay stops there; a corrupt record
// anywhere earlier is an error.
func Open(dir string, opts Options) (*WAL, []Record, error) {
	switch opts.Sync {
	case "":
		opts.Sync = SyncAlways
	case SyncAlways, SyncInterval, SyncOff:
	default:
		return nil, nil, fmt.Errorf("wal: unknown sync policy %q", opts.Sync)
	}
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.SyncInterval <= 0 {
		opts.SyncInterval = DefaultSyncInterval
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	w := &WAL{
		dir:        dir,
		opts:       opts,
		quit:       make(chan struct{}),
		syncerDone: make(chan struct{}),
		syncFile:   (*os.File).Sync,
	}
	w.dcond = sync.NewCond(&w.dmu)

	// Strict directory scan instead of a glob: only exact segment names
	// (wal-<digits>.jsonl, as segmentPath writes them) replay. Anything
	// else — .tmp leftovers from a segment creation or download that
	// crashed mid-write, stray files — is ignored LOUDLY (logged and
	// counted in Stats.IgnoredFiles), never replayed as garbage and never
	// allowed to wedge recovery.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	var paths []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && isSegmentName(name) {
			paths = append(paths, filepath.Join(dir, name))
			continue
		}
		w.ignoredFiles++
		w.logf("wal: ignoring non-segment entry %s in log directory (leftover from an interrupted write?)", name)
	}
	sort.Strings(paths) // zero-padded first-seq names sort chronologically

	var records []Record
	next := uint64(0) // expected seq of the next record; 0 = any (first retained)
	for i, path := range paths {
		last := i == len(paths)-1
		recs, good, size, err := readSegment(path, next, last)
		if err != nil {
			return nil, nil, err
		}
		if last && good < size {
			// Torn tail: trim the file to the last good record boundary so
			// a future replay never walks past garbage.
			if err := os.Truncate(path, good); err != nil {
				return nil, nil, fmt.Errorf("wal: trim torn tail of %s: %w", path, err)
			}
			size = good
		}
		sg := segment{path: path, bytes: size}
		if len(recs) > 0 {
			sg.first, sg.last = recs[0].Seq, recs[len(recs)-1].Seq
			next = sg.last + 1
		} else {
			// An empty segment (fresh, or fully torn-trimmed) still pins
			// the sequence: its name is the seq of the first record it
			// would hold. Guessing instead (e.g. restarting at 1) would
			// reset the counter after a truncate-then-reboot and reuse
			// sequence numbers, eventually wedging recovery on a bogus
			// gap error.
			first, err := parseSegmentFirst(path)
			if err != nil {
				return nil, nil, err
			}
			if next != 0 && first != next {
				return nil, nil, fmt.Errorf("wal: empty segment %s does not continue the log at seq %d", path, next)
			}
			next = first
			sg.first, sg.last = first, first-1
		}
		w.segs = append(w.segs, sg)
		records = append(records, recs...)
	}
	if next > 0 {
		w.seq = next - 1
	}
	w.recovered = len(records)
	// Everything replayed is on disk already.
	w.durable = w.seq

	// Continue appending to the last segment if there is one (it was
	// trimmed to a clean record boundary above); otherwise start fresh.
	if n := len(w.segs); n > 0 {
		sg := w.segs[n-1]
		w.segs = w.segs[:n-1]
		f, err := os.OpenFile(sg.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("wal: reopen %s: %w", sg.path, err)
		}
		w.f = f
		w.segBytes = sg.bytes
		w.segFirst = sg.first
	} else {
		if err := w.createSegment(); err != nil {
			return nil, nil, err
		}
	}
	w.bw = bufio.NewWriter(w.f)

	// Only the interval policy needs a background goroutine; under
	// SyncAlways the committing writers themselves run the group commits
	// (leader/follower), and SyncOff never fsyncs outside rotation/Close.
	if opts.Sync == SyncInterval {
		go w.syncer()
	} else {
		close(w.syncerDone)
	}
	return w, records, nil
}

// readSegment replays one segment file through a streaming reader — O(line)
// memory, not O(segment), which matters once replication retains more
// segments and a follower bootstraps through the whole log. next is the
// expected sequence number of its first record (0 = accept any); last marks
// the final segment, whose tail may be torn. It returns the records, the
// byte offset just past the last good record, and the file size. A record
// is good only if it parses, its CRC matches AND its newline terminator
// made it to disk — a newline-less tail is torn even when the bytes so far
// parse, because appending to it would glue two records into one corrupt
// line.
//
// A blank line is corruption, not a tear: the writer emits a record's
// newline as the LAST byte of its line, so no crash point can produce a
// lone newline with data after it. Blank lines therefore fail loudly
// everywhere except one spot — a blank line that IS the torn tail of the
// last segment (nothing after it), which is trimmed like any other tear.
func readSegment(path string, next uint64, last bool) (recs []Record, good, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wal: %w", err)
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wal: %w", err)
	}
	size = fi.Size()
	br := bufio.NewReaderSize(f, 64<<10)
	var offset int64
	line := 0
	var env envelope
	for offset < size {
		raw, rerr := br.ReadBytes('\n')
		if rerr != nil {
			if rerr == io.EOF {
				if last {
					return recs, offset, size, nil
				}
				return nil, 0, 0, fmt.Errorf("wal: %s: record without newline terminator mid-log", path)
			}
			return nil, 0, 0, fmt.Errorf("wal: %s: %w", path, rerr)
		}
		line++
		lineLen := int64(len(raw))
		raw = raw[:len(raw)-1] // drop the terminator
		if len(raw) == 0 {
			if last && offset+lineLen == size {
				// The blank line is the file's final content: trim it as a
				// torn tail so replay resumes on a clean boundary.
				return recs, offset, size, nil
			}
			return nil, 0, 0, fmt.Errorf("wal: %s line %d: blank line mid-log (corruption, not a torn tail)", path, line)
		}
		rec, perr := decodeLine(raw, &env)
		if perr != nil {
			if last {
				// Torn tail from a crash mid-append: everything after
				// the tear was written later and is equally suspect.
				return recs, offset, size, nil
			}
			return nil, 0, 0, fmt.Errorf("wal: %s line %d: %w", path, line, perr)
		}
		if next != 0 && rec.Seq != next {
			return nil, 0, 0, fmt.Errorf("wal: %s line %d: sequence %d, want %d (gap or reordering)", path, line, rec.Seq, next)
		}
		next = rec.Seq + 1
		recs = append(recs, rec)
		offset += lineLen
	}
	return recs, offset, size, nil
}

// decodeLine parses and verifies one JSONL envelope.
func decodeLine(raw []byte, env *envelope) (Record, error) {
	if err := json.Unmarshal(raw, env); err != nil {
		return Record{}, fmt.Errorf("parse: %w", err)
	}
	if crc32.ChecksumIEEE(env.Rec) != env.CRC {
		return Record{}, errors.New("crc mismatch")
	}
	var rec Record
	if err := json.Unmarshal(env.Rec, &rec); err != nil {
		return Record{}, fmt.Errorf("record: %w", err)
	}
	if rec.Seq == 0 {
		return Record{}, errors.New("record without sequence number")
	}
	return rec, nil
}

// segmentPath names a segment by the first sequence number it will hold.
func (w *WAL) segmentPath(first uint64) string {
	return segmentFile(w.dir, first)
}

// segmentFile is segmentPath without a WAL: the canonical segment name for
// a directory, shared with WriteBootstrapSegment.
func segmentFile(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016d.jsonl", first))
}

// isSegmentName reports whether name is exactly a segment file name as
// segmentFile produces them: wal-<digits>.jsonl, nothing more. Open replays
// only matching files; everything else in the directory is ignored loudly.
func isSegmentName(name string) bool {
	const pre, suf = "wal-", ".jsonl"
	if !strings.HasPrefix(name, pre) || !strings.HasSuffix(name, suf) {
		return false
	}
	mid := name[len(pre) : len(name)-len(suf)]
	if mid == "" {
		return false
	}
	for i := 0; i < len(mid); i++ {
		if mid[i] < '0' || mid[i] > '9' {
			return false
		}
	}
	return true
}

// logf emits one operational log line through Options.Logf (silent when nil).
func (w *WAL) logf(format string, args ...any) {
	if w.opts.Logf != nil {
		w.opts.Logf(format, args...)
	}
}

// parseSegmentFirst recovers the first sequence number a segment was named
// for (the inverse of segmentPath).
func parseSegmentFirst(path string) (uint64, error) {
	name := filepath.Base(path)
	var first uint64
	if _, err := fmt.Sscanf(name, "wal-%d.jsonl", &first); err != nil || first == 0 {
		return 0, fmt.Errorf("wal: segment %s has no parseable sequence in its name", path)
	}
	return first, nil
}

// createSegment opens a fresh segment for the next record and fsyncs the
// directory so the new name survives a crash. The file is created under a
// .tmp name and renamed into place: a crash mid-creation then leaves a
// leftover Open ignores loudly instead of a file the segment scan would
// pick up — the same discipline follower segment downloads use, so a
// partially-written file can never enter the replayed set. Callers hold mu
// (or are single-threaded in Open).
func (w *WAL) createSegment() error {
	first := w.seq + 1
	path := w.segmentPath(first)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		//lint:ignore errswallow cleanup on the error path; the rename error is returned
		f.Close()
		//lint:ignore errswallow best-effort removal of the orphaned temp file
		os.Remove(tmp)
		return fmt.Errorf("wal: %w", err)
	}
	if err := syncDir(w.dir); err != nil {
		//lint:ignore errswallow cleanup on the error path; the directory-fsync error is returned
		f.Close()
		return err
	}
	w.f = f
	w.segFirst = first
	w.segBytes = 0
	return nil
}

// rotate closes the open segment (flushed and fsynced, so every record in
// it counts as durable from here on) and starts a new one. Callers hold mu.
//
// The fsync deliberately runs under mu, stalling concurrent appends once
// per SegmentBytes: the single `durable` watermark is only sound if every
// fsync-covered sequence range is contiguous, which the synchronous
// old-segment fsync guarantees. Retiring the file asynchronously would
// need a per-segment durability frontier to avoid acknowledging records
// whose file has not been synced yet — complexity not worth a bounded,
// rare stall.
func (w *WAL) rotate() error {
	if err := w.bw.Flush(); err != nil {
		return fmt.Errorf("wal: rotate flush: %w", err)
	}
	if err := w.syncFile(w.f); err != nil {
		return fmt.Errorf("wal: rotate fsync: %w", err)
	}
	w.fsyncs.Add(1)
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	w.segs = append(w.segs, segment{path: w.segmentPath(w.segFirst), first: w.segFirst, last: w.seq, bytes: w.segBytes})
	if err := w.createSegment(); err != nil {
		return err
	}
	w.bw.Reset(w.f)
	// The closed segment is fully fsynced: everything up to its last
	// record is durable even if no group commit ran yet.
	w.dmu.Lock()
	if last := w.segs[len(w.segs)-1].last; last > w.durable {
		w.durable = last
		w.dcond.Broadcast()
	}
	w.dmu.Unlock()
	return nil
}

// Append writes one record to the log buffer and returns its sequence
// number. It does NOT wait for durability — call Commit with the returned
// (or the batch's highest) sequence number before acknowledging.
func (w *WAL) Append(r Record) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	if w.segBytes >= w.opts.SegmentBytes && w.seq >= w.segFirst {
		if err := w.rotate(); err != nil {
			return 0, err
		}
	}
	w.seq++
	r.Seq = w.seq
	rec, err := json.Marshal(r)
	if err != nil {
		w.seq--
		return 0, fmt.Errorf("wal: %w", err)
	}
	line, err := json.Marshal(envelope{CRC: crc32.ChecksumIEEE(rec), Rec: rec})
	if err != nil {
		w.seq--
		return 0, fmt.Errorf("wal: %w", err)
	}
	line = append(line, '\n')
	if _, err := w.bw.Write(line); err != nil {
		return 0, fmt.Errorf("wal: %w", err)
	}
	w.segBytes += int64(len(line))
	return w.seq, nil
}

// Commit makes the log durable through seq per the sync policy and then
// returns. Under SyncAlways it blocks until a (group-committed) fsync
// covers seq; under SyncInterval and SyncOff it only pushes the buffer to
// the OS — the fsync happens on the timer, or whenever the OS decides.
func (w *WAL) Commit(seq uint64) error {
	//lint:ignore ctxflow compatibility shim for deadline-less callers; request paths use CommitContext
	return w.CommitContext(context.Background(), seq)
}

// CommitContext is Commit bounded by a context: a waiter whose ctx is done
// before an fsync covers seq abandons the wait and returns the context's
// error. The record stays in the log and becomes durable with the next
// group commit regardless — abandoning only means the caller must not
// acknowledge, so the observation is at-least-once (replayed on recovery if
// the client retries against a crashed server), never acknowledged-then-
// lost. This is the deadline-propagation hook for the serve layer's ingest
// budget: a client that is gone stops occupying a commit slot.
func (w *WAL) CommitContext(ctx context.Context, seq uint64) error {
	if seq == 0 {
		return nil
	}
	if w.opts.OnCommitWait != nil {
		begin := time.Now()
		defer func() { w.opts.OnCommitWait(time.Since(begin)) }()
	}
	if w.opts.Sync != SyncAlways {
		// The commit itself only pushes to the OS, but a sticky fsync
		// failure from the interval syncer must still fail the ack:
		// otherwise the service would keep acknowledging writes forever
		// while nothing new reaches disk, unbounding the documented
		// one-interval loss window.
		w.dmu.Lock()
		serr := w.syncErr
		w.dmu.Unlock()
		if serr != nil {
			return serr
		}
		w.mu.Lock()
		if w.closed {
			w.mu.Unlock()
			return ErrClosed
		}
		err := w.bw.Flush()
		w.mu.Unlock()
		if err != nil {
			return fmt.Errorf("wal: %w", err)
		}
		return nil
	}
	// Leader/follower group commit: the first waiter whose record is not
	// yet durable runs the flush+fsync itself (no goroutine handoff on
	// the hot path); everyone who appended before its flush rides the same
	// fsync and is released together. Writers that arrive during the
	// leader's fsync queue up as the next batch and elect the next leader
	// the moment the broadcast wakes them.
	//
	// Cancellation: sync.Cond cannot select on a channel, so a canceled
	// context wakes the waiters with a broadcast and each checks its own
	// ctx on the way around the loop. The durability check deliberately
	// precedes the ctx check — if the fsync made seq durable by the time
	// the waiter wakes, the commit succeeded and is reported as such.
	if done := ctx.Done(); done != nil {
		stop := context.AfterFunc(ctx, func() {
			w.dmu.Lock()
			w.dcond.Broadcast()
			w.dmu.Unlock()
		})
		defer stop()
	}
	w.dmu.Lock()
	defer w.dmu.Unlock()
	for {
		if w.durable >= seq {
			return nil
		}
		if w.syncErr != nil {
			return w.syncErr
		}
		if w.dclosed {
			return ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if !w.syncing {
			w.syncing = true
			w.dmu.Unlock()
			// Let already-runnable writers finish their appends before the
			// flush picks its target: on few-core machines the leader
			// otherwise outruns the pack and fsyncs batches of one.
			runtime.Gosched()
			target, err := w.flushAndSync()
			w.dmu.Lock()
			w.syncing = false
			w.finishSync(target, err)
			w.dcond.Broadcast()
			continue
		}
		w.dcond.Wait()
	}
}

// syncer is the interval policy's timer loop.
func (w *WAL) syncer() {
	defer close(w.syncerDone)
	t := time.NewTicker(w.opts.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-w.quit:
			w.syncPass()
			return
		case <-t.C:
			w.syncPass()
		}
	}
}

// flushAndSync pushes the buffer to the OS under mu, then fsyncs OUTSIDE
// it so appends proceed concurrently with the disk wait. It returns the
// highest sequence number the pass covered.
func (w *WAL) flushAndSync() (uint64, error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrClosed
	}
	target := w.seq
	err := w.bw.Flush()
	f := w.f
	w.mu.Unlock()
	if err == nil {
		err = w.syncFile(f)
		// A rotation may close f between our flush and fsync; rotation
		// itself fsyncs the segment first, so the data is durable and the
		// error is benign.
		if errors.Is(err, os.ErrClosed) {
			err = nil
		}
	}
	w.fsyncs.Add(1)
	if err != nil {
		return target, fmt.Errorf("wal: fsync: %w", err)
	}
	return target, nil
}

// finishSync records a completed pass. Callers hold dmu.
func (w *WAL) finishSync(target uint64, err error) {
	if err != nil {
		w.syncErr = err
	} else if target > w.durable {
		w.lastGroup.Store(target - w.durable)
		w.durable = target
	}
}

// syncPass is one complete flush+fsync+publish cycle (interval ticks,
// forced Sync).
func (w *WAL) syncPass() {
	target, err := w.flushAndSync()
	if errors.Is(err, ErrClosed) {
		return
	}
	w.dmu.Lock()
	w.finishSync(target, err)
	w.dcond.Broadcast()
	w.dmu.Unlock()
}

// Seq returns the last assigned sequence number. Every record at or below
// it has completed its Append call.
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// TruncateThrough deletes the segments whose records a newer snapshot fully
// covers (every record seq'd at or below seq). The open segment is rotated
// first if it is fully covered too, so a snapshot taken at the log head
// empties the log. Records above seq are always retained, and so are the
// newest Options.RetainSegments covered segments — replication history a
// lagging follower can still fetch (see ReadFrom) at the cost of idempotent
// replay on the next Open.
func (w *WAL) TruncateThrough(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	if w.seq <= seq && w.seq >= w.segFirst {
		if err := w.rotate(); err != nil {
			return err
		}
	}
	// Delete only a contiguous prefix: if a removal fails, every later
	// segment must survive too, or the log would recover with a mid-log
	// sequence gap and refuse to open. A retained covered segment only
	// costs idempotent replay; a gap is fatal.
	covered := 0
	for _, sg := range w.segs {
		if sg.last > seq { // holds for empty markers too (first > last)
			break
		}
		covered++
	}
	// Retention quota: only segments that actually hold records (first <=
	// last) count toward RetainSegments — an empty rotation/bootstrap marker
	// buys a reconnecting follower no history, so spending a retained slot
	// on one would silently shrink the shipped-history window below the
	// configured size. limit is the length of the removable prefix; markers
	// inside it go too, markers past it survive (contiguity).
	limit := covered
	if quota := w.opts.RetainSegments; quota > 0 {
		limit = 0
		nonEmpty := 0
		for i := covered - 1; i >= 0; i-- {
			if sg := w.segs[i]; sg.first <= sg.last {
				if nonEmpty++; nonEmpty == quota {
					limit = i
					break
				}
			}
		}
	}
	removed := false
	var firstErr error
	drop := 0
	for _, sg := range w.segs[:covered] {
		if drop >= limit {
			break
		}
		if err := os.Remove(sg.path); err != nil {
			firstErr = fmt.Errorf("wal: truncate: %w", err)
			break
		}
		removed = true
		drop++
	}
	w.segs = append(w.segs[:0:0], w.segs[drop:]...)
	if removed {
		if err := syncDir(w.dir); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Rebase discards the log's entire local history and restarts it so the
// next appended record is assigned sequence number first. It is the
// follower re-bootstrap primitive: after the leader truncates past a
// follower's position, the follower downloads a fresh snapshot covering
// sequence first-1, at which point its local records are at best redundant
// with the snapshot — so every segment (the open one included) is deleted
// and a fresh empty segment named for first pins the counter, exactly as
// WriteBootstrapSegment does for a cold bootstrap. The buffered tail is
// deliberately NOT flushed: it is history being discarded, not data to
// preserve.
func (w *WAL) Rebase(first uint64) error {
	if first == 0 {
		return errors.New("wal: Rebase needs a sequence >= 1")
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return ErrClosed
	}
	//lint:ignore errswallow the segment is deleted next; nothing in it to preserve
	w.f.Close()
	// Delete newest-first so a failure partway leaves a contiguous prefix —
	// an old log a future Open can still replay — never a mid-log gap. A
	// failed Rebase leaves the WAL wedged on a closed file; the caller's
	// retry (the follower loop re-bootstraps again on the next 410) runs the
	// whole sequence over and completes the deletion.
	doomed := append(append([]segment(nil), w.segs...), segment{path: w.segmentPath(w.segFirst)})
	for i := len(doomed) - 1; i >= 0; i-- {
		if err := os.Remove(doomed[i].path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("wal: rebase: %w", err)
		}
	}
	w.segs = nil
	w.seq = first - 1
	// createSegment fsyncs the directory, covering the removals above too.
	if err := w.createSegment(); err != nil {
		return err
	}
	w.bw.Reset(w.f)
	// Everything below first lives in the snapshot the caller applied; the
	// log itself is empty, so the durability watermark is exactly first-1.
	w.dmu.Lock()
	w.durable = first - 1
	w.lastGroup.Store(0)
	w.dcond.Broadcast()
	w.dmu.Unlock()
	return nil
}

// Sync forces one flush+fsync pass regardless of policy.
func (w *WAL) Sync() error {
	w.syncPass()
	w.dmu.Lock()
	defer w.dmu.Unlock()
	return w.syncErr
}

// Stats returns a point-in-time snapshot of the log's state.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	st := Stats{
		Seq:          w.seq,
		Segments:     len(w.segs) + 1,
		Bytes:        w.segBytes,
		Recovered:    w.recovered,
		IgnoredFiles: w.ignoredFiles,
	}
	for _, sg := range w.segs {
		st.Bytes += sg.bytes
	}
	if w.closed {
		st.Segments--
	}
	w.mu.Unlock()
	w.dmu.Lock()
	st.DurableSeq = w.durable
	w.dmu.Unlock()
	st.Fsyncs = w.fsyncs.Load()
	st.LastGroupCommit = w.lastGroup.Load()
	return st
}

// Close flushes and fsyncs the open segment and stops the syncer. Appends
// and commits after Close return ErrClosed; commit waiters in flight are
// released (their records are flushed, but only fsync-covered ones were
// ever reported durable).
func (w *WAL) Close() error {
	w.closeOnce.Do(func() {
		close(w.quit)
		<-w.syncerDone // final syncPass covers everything appended so far
		w.mu.Lock()
		err := w.bw.Flush()
		if serr := w.syncFile(w.f); err == nil {
			err = serr
		}
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
		final := w.seq
		w.closed = true
		w.mu.Unlock()
		w.dmu.Lock()
		if err == nil && final > w.durable {
			w.durable = final
		}
		w.dclosed = true
		w.dcond.Broadcast()
		w.dmu.Unlock()
		if err != nil {
			w.closeErr = fmt.Errorf("wal: close: %w", err)
		}
	})
	return w.closeErr
}

// syncDir fsyncs a directory so renames, creations and deletions in it are
// on disk. Windows cannot fsync a directory handle (and does not need to:
// NTFS metadata operations are journaled), so it is a no-op there.
func syncDir(dir string) error {
	if runtime.GOOS == "windows" {
		return nil
	}
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("wal: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	return nil
}
