package triple

import (
	"testing"
	"testing/quick"
)

func tr(s, p, o string) Triple { return Triple{Subject: s, Predicate: p, Object: o} }

func TestKeyRoundTrip(t *testing.T) {
	cases := []Triple{
		tr("Obama", "profession", "president"),
		tr("", "", ""),
		tr("a b", "c,d", "e|f"),
		tr("unicode-日本", "語", "🙂"),
	}
	for _, c := range cases {
		got, err := ParseKey(c.Key())
		if err != nil {
			t.Fatalf("ParseKey(%q): %v", c.Key(), err)
		}
		if got != c {
			t.Errorf("round trip %v != %v", got, c)
		}
	}
}

func TestKeyRoundTripProperty(t *testing.T) {
	f := func(s, p, o string) bool {
		// The separator byte cannot appear in components.
		for _, str := range []string{s, p, o} {
			for i := 0; i < len(str); i++ {
				if str[i] == 0x1f {
					return true // skip
				}
			}
		}
		in := tr(s, p, o)
		out, err := ParseKey(in.Key())
		return err == nil && out == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseKeyErrors(t *testing.T) {
	for _, k := range []string{"", "a", "a\x1fb", "a\x1fb\x1fc\x1fd"} {
		if _, err := ParseKey(k); err == nil {
			t.Errorf("ParseKey(%q): want error", k)
		}
	}
}

func TestLabelString(t *testing.T) {
	if Unknown.String() != "unknown" || True.String() != "true" || False.String() != "false" {
		t.Error("Label.String mismatch")
	}
}

func TestAddSourceIdempotent(t *testing.T) {
	d := NewDataset()
	a := d.AddSource("A")
	b := d.AddSource("B")
	if a == b {
		t.Fatal("distinct sources share an ID")
	}
	if again := d.AddSource("A"); again != a {
		t.Errorf("re-adding A: got %d, want %d", again, a)
	}
	if d.NumSources() != 2 {
		t.Errorf("NumSources = %d, want 2", d.NumSources())
	}
	if d.SourceName(a) != "A" {
		t.Errorf("SourceName(%d) = %q", a, d.SourceName(a))
	}
	if id, ok := d.SourceID("B"); !ok || id != b {
		t.Errorf("SourceID(B) = (%d, %v)", id, ok)
	}
	if _, ok := d.SourceID("C"); ok {
		t.Error("SourceID(C) should be missing")
	}
}

func TestObserveIdempotent(t *testing.T) {
	d := NewDataset()
	a := d.AddSource("A")
	x := tr("e", "p", "v")
	id1 := d.Observe(a, x)
	id2 := d.Observe(a, x)
	if id1 != id2 {
		t.Fatalf("duplicate Observe returned different IDs: %d, %d", id1, id2)
	}
	if got := len(d.Providers(id1)); got != 1 {
		t.Errorf("providers = %d, want 1", got)
	}
	if got := d.OutputSize(a); got != 1 {
		t.Errorf("|O_A| = %d, want 1", got)
	}
}

func TestObservePanicsOnUnknownSource(t *testing.T) {
	d := NewDataset()
	defer func() {
		if recover() == nil {
			t.Error("Observe with unregistered source should panic")
		}
	}()
	d.Observe(SourceID(3), tr("e", "p", "v"))
}

func TestLabels(t *testing.T) {
	d := NewDataset()
	a := d.AddSource("A")
	x, y, z := tr("e", "p", "1"), tr("e", "p", "2"), tr("e", "p", "3")
	d.Observe(a, x)
	d.Observe(a, y)
	d.SetLabel(x, True)
	d.SetLabel(y, False)
	d.SetLabel(z, True) // unprovided gold triple
	nt, nf := d.CountLabels()
	if nt != 2 || nf != 1 {
		t.Errorf("CountLabels = (%d, %d), want (2, 1)", nt, nf)
	}
	if got := len(d.Labeled()); got != 3 {
		t.Errorf("Labeled = %d, want 3", got)
	}
	if got := len(d.TrueTriples()); got != 2 {
		t.Errorf("TrueTriples = %d, want 2", got)
	}
	if got := len(d.FalseTriples()); got != 1 {
		t.Errorf("FalseTriples = %d, want 1", got)
	}
	zid, ok := d.TripleID(z)
	if !ok {
		t.Fatal("labeled triple not interned")
	}
	if len(d.Providers(zid)) != 0 {
		t.Error("unprovided triple has providers")
	}
}

func TestProvidersSorted(t *testing.T) {
	d := NewDataset()
	var ids []SourceID
	for _, n := range []string{"C", "A", "B", "E", "D"} {
		ids = append(ids, d.AddSource(n))
	}
	x := tr("e", "p", "v")
	// Observe in a scrambled order.
	for _, i := range []int{3, 0, 4, 2, 1} {
		d.Observe(ids[i], x)
	}
	id, _ := d.TripleID(x)
	prov := d.Providers(id)
	for i := 1; i < len(prov); i++ {
		if prov[i-1] >= prov[i] {
			t.Fatalf("providers not strictly sorted: %v", prov)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	d := NewDataset()
	a := d.AddSource("A")
	x := tr("e", "p", "v")
	d.Observe(a, x)
	d.SetLabel(x, True)

	c := d.Clone()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mutating the clone must not affect the original.
	b := c.AddSource("B")
	c.Observe(b, tr("e", "p", "w"))
	c.SetLabel(x, False)
	if d.NumSources() != 1 {
		t.Error("clone mutation leaked sources into original")
	}
	id, _ := d.TripleID(x)
	if d.Label(id) != True {
		t.Error("clone mutation leaked labels into original")
	}
}

func TestScopeGlobal(t *testing.T) {
	d := NewDataset()
	a := d.AddSource("A")
	x := tr("e", "p", "v")
	id := d.Observe(a, x)
	if !(ScopeGlobal{}).InScope(d, a, id) {
		t.Error("ScopeGlobal should always be in scope")
	}
}

func TestScopeSubject(t *testing.T) {
	d := NewDataset()
	a := d.AddSource("A")
	b := d.AddSource("B")
	obama1 := tr("Obama", "profession", "president")
	obama2 := tr("Obama", "profession", "lawyer")
	bush := tr("Bush", "profession", "president")
	d.Observe(a, obama1)
	d.Observe(b, bush)
	id2 := d.SetLabel(obama2, True)

	sc := NewScopeSubject(d)
	if !sc.InScope(d, a, id2) {
		t.Error("A covers Obama, should be in scope for obama2")
	}
	if sc.InScope(d, b, id2) {
		t.Error("B covers only Bush, should be out of scope for obama2")
	}
	bushID, _ := d.TripleID(bush)
	if sc.InScope(d, a, bushID) {
		t.Error("A does not cover Bush")
	}
	// A different dataset falls back to conservative true.
	other := NewDataset()
	other.AddSource("A")
	oid := other.Observe(0, obama2)
	if !sc.InScope(other, 0, oid) {
		t.Error("foreign dataset should be conservatively in scope")
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	d := NewDataset()
	a := d.AddSource("A")
	d.Observe(a, tr("e", "p", "v"))
	// Corrupt: remove the output entry but keep the provider entry.
	d.outputs[a] = nil
	if err := d.Validate(); err == nil {
		t.Error("Validate should detect asymmetric observation")
	}
}

func TestDatasetZeroValueBuilders(t *testing.T) {
	var d Dataset
	a := d.AddSource("A")
	id := d.Observe(a, tr("e", "p", "v"))
	if id != 0 || d.NumTriples() != 1 {
		t.Error("zero-value Dataset should be usable")
	}
}
