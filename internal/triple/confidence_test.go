package triple

import "testing"

func obs(src string, o string, conf float64) ConfidenceObservation {
	return ConfidenceObservation{
		Source:     src,
		Triple:     Triple{Subject: "e", Predicate: "p", Object: o},
		Confidence: conf,
	}
}

func TestMaterializeThresholds(t *testing.T) {
	observations := []ConfidenceObservation{
		obs("A", "1", 0.9),
		obs("A", "2", 0.4),
		obs("B", "1", 0.6),
		obs("B", "3", 0.2),
	}
	d, err := Materialize(observations, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumSources() != 2 {
		t.Fatalf("sources = %d", d.NumSources())
	}
	a, _ := d.SourceID("A")
	b, _ := d.SourceID("B")
	if d.OutputSize(a) != 1 || d.OutputSize(b) != 1 {
		t.Errorf("outputs = %d, %d; want 1, 1", d.OutputSize(a), d.OutputSize(b))
	}
	t1 := Triple{Subject: "e", Predicate: "p", Object: "1"}
	id, ok := d.TripleID(t1)
	if !ok || len(d.Providers(id)) != 2 {
		t.Error("both sources clear the threshold for object 1")
	}
	// Threshold 0 keeps everything.
	all, err := Materialize(observations, 0)
	if err != nil {
		t.Fatal(err)
	}
	if all.NumTriples() != 3 {
		t.Errorf("triples = %d, want 3", all.NumTriples())
	}
}

func TestMaterializeValidation(t *testing.T) {
	if _, err := Materialize(nil, 1.5); err == nil {
		t.Error("invalid threshold should fail")
	}
	if _, err := Materialize([]ConfidenceObservation{obs("", "1", 0.5)}, 0.5); err == nil {
		t.Error("missing source should fail")
	}
	if _, err := Materialize([]ConfidenceObservation{obs("A", "1", 2)}, 0.5); err == nil {
		t.Error("invalid confidence should fail")
	}
}

func TestThresholdSweep(t *testing.T) {
	observations := []ConfidenceObservation{
		obs("A", "1", 0.9), obs("A", "2", 0.5), obs("A", "3", 0.1),
	}
	sweep, err := ThresholdSweep(observations, []float64{0.0, 0.5, 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if sweep[0.0] != 3 || sweep[0.5] != 2 || sweep[0.95] != 0 {
		t.Errorf("sweep = %v", sweep)
	}
}
