// Package triple defines the data model for multi-source data fusion:
// knowledge triples, data sources, and the observation matrix relating them.
//
// The model follows Section 2 of "Fusing Data with Correlations" (SIGMOD'14):
// a set of sources S = {S1..Sn}, each providing a set of output triples Oi.
// Semantics are independent-triple and open-world: the truthfulness of each
// triple is independent of other triples, and a source that does not provide
// a triple is agnostic about it rather than claiming it false.
package triple

import (
	"fmt"
	"sort"
	"strings"
)

// Triple is one unit of data: a {subject, predicate, object} statement,
// equivalently a cell {row-entity, column-attribute, value}.
type Triple struct {
	Subject   string
	Predicate string
	Object    string
}

// String renders the triple in the paper's curly-brace notation.
func (t Triple) String() string {
	return fmt.Sprintf("{%s, %s, %s}", t.Subject, t.Predicate, t.Object)
}

// Key returns a canonical string key for the triple, usable as a map key in
// serialized form. Components are joined with a separator that is unlikely to
// appear in data; the in-memory struct itself is already comparable.
func (t Triple) Key() string {
	return t.Subject + "\x1f" + t.Predicate + "\x1f" + t.Object
}

// ParseKey reverses Key. It returns an error if k does not contain exactly
// three components.
func ParseKey(k string) (Triple, error) {
	parts := strings.Split(k, "\x1f")
	if len(parts) != 3 {
		return Triple{}, fmt.Errorf("triple: malformed key %q", k)
	}
	return Triple{Subject: parts[0], Predicate: parts[1], Object: parts[2]}, nil
}

// SourceID identifies a data source within a Dataset. IDs are dense indexes
// assigned in registration order, so they can index slices and bitsets.
type SourceID int

// TripleID identifies a distinct triple within a Dataset. IDs are dense
// indexes assigned in first-observation order.
type TripleID int

// Source describes one data source (an extractor, a website, a seller…).
type Source struct {
	ID   SourceID
	Name string
}

// Label is the gold-standard truth label of a triple.
type Label int8

// Label values. Unknown means no gold label is available for the triple.
const (
	Unknown Label = iota
	True
	False
)

// String implements fmt.Stringer.
func (l Label) String() string {
	switch l {
	case True:
		return "true"
	case False:
		return "false"
	default:
		return "unknown"
	}
}

// Dataset holds a set of sources, the distinct triples they provide, the
// observation matrix (which source provides which triple), and optional gold
// labels. The zero value is an empty dataset ready for use.
//
// Dataset is not safe for concurrent mutation; concurrent reads are fine.
type Dataset struct {
	sources []Source
	triples []Triple

	sourceByName map[string]SourceID
	tripleByKey  map[Triple]TripleID

	// providers[t] lists, in ascending order, the sources that provide t.
	providers [][]SourceID
	// outputs[s] lists, in ascending order, the triples provided by s.
	outputs [][]TripleID

	labels []Label
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset {
	return &Dataset{
		sourceByName: make(map[string]SourceID),
		tripleByKey:  make(map[Triple]TripleID),
	}
}

// NewDatasetCap returns an empty dataset with capacity hints for the number
// of sources and distinct triples it will hold, so bulk loads (the shard
// partitioner, store conversions) avoid incremental map and slice growth.
// The hints are not limits.
func NewDatasetCap(sources, triples int) *Dataset {
	return &Dataset{
		sourceByName: make(map[string]SourceID, sources),
		tripleByKey:  make(map[Triple]TripleID, triples),
		sources:      make([]Source, 0, sources),
		outputs:      make([][]TripleID, 0, sources),
		triples:      make([]Triple, 0, triples),
		providers:    make([][]SourceID, 0, triples),
		labels:       make([]Label, 0, triples),
	}
}

// AddSource registers a source by name and returns its ID. Registering the
// same name twice returns the existing ID.
func (d *Dataset) AddSource(name string) SourceID {
	if d.sourceByName == nil {
		d.sourceByName = make(map[string]SourceID)
	}
	if id, ok := d.sourceByName[name]; ok {
		return id
	}
	id := SourceID(len(d.sources))
	d.sources = append(d.sources, Source{ID: id, Name: name})
	d.sourceByName[name] = id
	d.outputs = append(d.outputs, nil)
	return id
}

// internTriple returns the ID for t, registering it if new.
func (d *Dataset) internTriple(t Triple) TripleID {
	if d.tripleByKey == nil {
		d.tripleByKey = make(map[Triple]TripleID)
	}
	if id, ok := d.tripleByKey[t]; ok {
		return id
	}
	id := TripleID(len(d.triples))
	d.triples = append(d.triples, t)
	d.tripleByKey[t] = id
	d.providers = append(d.providers, nil)
	d.labels = append(d.labels, Unknown)
	return id
}

// Observe records that source s provides triple t, returning t's ID.
// Duplicate observations are idempotent.
func (d *Dataset) Observe(s SourceID, t Triple) TripleID {
	if int(s) < 0 || int(s) >= len(d.sources) {
		panic(fmt.Sprintf("triple: Observe with unregistered source %d", s))
	}
	id := d.internTriple(t)
	if !containsSource(d.providers[id], s) {
		d.providers[id] = insertSource(d.providers[id], s)
		d.outputs[s] = insertTriple(d.outputs[s], id)
	}
	return id
}

// SetLabel assigns a gold-standard label to triple t. The triple is interned
// if it has not been observed yet (a gold triple missed by every source).
func (d *Dataset) SetLabel(t Triple, l Label) TripleID {
	id := d.internTriple(t)
	d.labels[id] = l
	return id
}

// NumSources returns the number of registered sources.
func (d *Dataset) NumSources() int { return len(d.sources) }

// NumTriples returns the number of distinct triples.
func (d *Dataset) NumTriples() int { return len(d.triples) }

// Sources returns the registered sources in ID order. The returned slice
// must not be modified.
func (d *Dataset) Sources() []Source { return d.sources }

// SourceID returns the ID of the named source.
func (d *Dataset) SourceID(name string) (SourceID, bool) {
	id, ok := d.sourceByName[name]
	return id, ok
}

// SourceName returns the name of source s.
func (d *Dataset) SourceName(s SourceID) string { return d.sources[s].Name }

// Triple returns the triple with the given ID.
func (d *Dataset) Triple(id TripleID) Triple { return d.triples[id] }

// TripleID returns the ID of t if it has been observed or labeled.
func (d *Dataset) TripleID(t Triple) (TripleID, bool) {
	id, ok := d.tripleByKey[t]
	return id, ok
}

// Label returns the gold label of triple id (Unknown if none).
func (d *Dataset) Label(id TripleID) Label { return d.labels[id] }

// Providers returns the sources that provide triple id, in ascending ID
// order. The returned slice must not be modified.
func (d *Dataset) Providers(id TripleID) []SourceID { return d.providers[id] }

// Provides reports whether source s provides triple id.
func (d *Dataset) Provides(s SourceID, id TripleID) bool {
	return containsSource(d.providers[id], s)
}

// Output returns the triples provided by source s, in ascending ID order.
// The returned slice must not be modified.
func (d *Dataset) Output(s SourceID) []TripleID { return d.outputs[s] }

// OutputSize returns |Oi| for source s.
func (d *Dataset) OutputSize(s SourceID) int { return len(d.outputs[s]) }

// Labeled returns the IDs of all triples with a non-Unknown gold label,
// in ascending ID order.
func (d *Dataset) Labeled() []TripleID {
	out := make([]TripleID, 0, len(d.labels))
	for id, l := range d.labels {
		if l != Unknown {
			out = append(out, TripleID(id))
		}
	}
	return out
}

// TrueTriples returns the IDs of all triples labeled True.
func (d *Dataset) TrueTriples() []TripleID {
	out := make([]TripleID, 0, len(d.labels))
	for id, l := range d.labels {
		if l == True {
			out = append(out, TripleID(id))
		}
	}
	return out
}

// FalseTriples returns the IDs of all triples labeled False.
func (d *Dataset) FalseTriples() []TripleID {
	out := make([]TripleID, 0, len(d.labels))
	for id, l := range d.labels {
		if l == False {
			out = append(out, TripleID(id))
		}
	}
	return out
}

// CountLabels returns the number of True and False gold labels.
func (d *Dataset) CountLabels() (numTrue, numFalse int) {
	for _, l := range d.labels {
		switch l {
		case True:
			numTrue++
		case False:
			numFalse++
		}
	}
	return
}

// Validate checks internal consistency (index symmetry, ordering). It is
// intended for tests and for data loaded from external files.
func (d *Dataset) Validate() error {
	if len(d.providers) != len(d.triples) || len(d.labels) != len(d.triples) {
		return fmt.Errorf("triple: index length mismatch")
	}
	if len(d.outputs) != len(d.sources) {
		return fmt.Errorf("triple: outputs length mismatch")
	}
	for id, provs := range d.providers {
		if !sort.SliceIsSorted(provs, func(i, j int) bool { return provs[i] < provs[j] }) {
			return fmt.Errorf("triple: providers of %d not sorted", id)
		}
		for _, s := range provs {
			if int(s) < 0 || int(s) >= len(d.sources) {
				return fmt.Errorf("triple: provider %d of triple %d out of range", s, id)
			}
			if !containsTriple(d.outputs[s], TripleID(id)) {
				return fmt.Errorf("triple: asymmetric observation (%d, %d)", s, id)
			}
		}
	}
	for s, out := range d.outputs {
		for _, id := range out {
			if !containsSource(d.providers[id], SourceID(s)) {
				return fmt.Errorf("triple: asymmetric output (%d, %d)", s, id)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the dataset.
func (d *Dataset) Clone() *Dataset {
	c := NewDataset()
	c.sources = append([]Source(nil), d.sources...)
	c.triples = append([]Triple(nil), d.triples...)
	c.labels = append([]Label(nil), d.labels...)
	for name, id := range d.sourceByName {
		c.sourceByName[name] = id
	}
	for t, id := range d.tripleByKey {
		c.tripleByKey[t] = id
	}
	c.providers = make([][]SourceID, len(d.providers))
	for i, p := range d.providers {
		c.providers[i] = append([]SourceID(nil), p...)
	}
	c.outputs = make([][]TripleID, len(d.outputs))
	for i, o := range d.outputs {
		c.outputs[i] = append([]TripleID(nil), o...)
	}
	return c
}

func containsSource(xs []SourceID, s SourceID) bool {
	i := sort.Search(len(xs), func(i int) bool { return xs[i] >= s })
	return i < len(xs) && xs[i] == s
}

func insertSource(xs []SourceID, s SourceID) []SourceID {
	i := sort.Search(len(xs), func(i int) bool { return xs[i] >= s })
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = s
	return xs
}

func containsTriple(xs []TripleID, t TripleID) bool {
	i := sort.Search(len(xs), func(i int) bool { return xs[i] >= t })
	return i < len(xs) && xs[i] == t
}

func insertTriple(xs []TripleID, t TripleID) []TripleID {
	i := sort.Search(len(xs), func(i int) bool { return xs[i] >= t })
	xs = append(xs, 0)
	copy(xs[i+1:], xs[i:])
	xs[i] = t
	return xs
}
