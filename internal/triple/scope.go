package triple

// Scope determines which sources are "in scope" for a triple: a source that
// does not provide t counts as evidence against t only when t is within the
// source's scope (Section 2.1: Ot contains the observation that Si does not
// provide t only if Si provides other data in the domain of t; Section 2.2:
// recall should be computed with respect to the scope of a source's input).
type Scope interface {
	// InScope reports whether source s should be held accountable for
	// triple id in dataset d.
	InScope(d *Dataset, s SourceID, id TripleID) bool
}

// ScopeGlobal treats every source as in scope for every triple. This matches
// the simplified presentation in the paper ("for simplicity of presentation
// ... we ignore the scope of each source").
type ScopeGlobal struct{}

// InScope implements Scope; it always reports true.
func (ScopeGlobal) InScope(*Dataset, SourceID, TripleID) bool { return true }

// ScopeSubject holds a source in scope for a triple only if the source
// provides at least one triple with the same subject (row entity). It models
// complementary-domain sources: a source that says nothing about Obama is not
// penalized for missing Obama's professions.
//
// ScopeSubject precomputes its index on first use and is therefore only valid
// for a dataset that is no longer being mutated. Build one per dataset with
// NewScopeSubject.
type ScopeSubject struct {
	d *Dataset
	// covers[s] is the set of subjects source s provides data about.
	covers []map[string]bool
}

// NewScopeSubject indexes d by subject per source.
func NewScopeSubject(d *Dataset) *ScopeSubject {
	sc := &ScopeSubject{d: d, covers: make([]map[string]bool, d.NumSources())}
	for s := range sc.covers {
		m := make(map[string]bool)
		for _, id := range d.Output(SourceID(s)) {
			m[d.Triple(id).Subject] = true
		}
		sc.covers[s] = m
	}
	return sc
}

// InScope implements Scope.
func (sc *ScopeSubject) InScope(d *Dataset, s SourceID, id TripleID) bool {
	if d != sc.d {
		// The index was built for a different dataset; be conservative.
		return true
	}
	return sc.covers[s][d.Triple(id).Subject]
}
