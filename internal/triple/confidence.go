package triple

import (
	"fmt"
	"sort"
)

// ConfidenceObservation is a source's claim with an attached confidence
// score, as produced by real extraction systems. Section 2.1: "a source Si
// may provide a confidence score associated with each triple t; we can
// consider that Si outputs t if the assigned confidence score exceeds a
// certain threshold."
type ConfidenceObservation struct {
	Source     string
	Triple     Triple
	Confidence float64
}

// Materialize builds a deterministic Dataset from confidence-scored
// observations by thresholding: source S outputs t iff its best confidence
// for t is ≥ threshold. Sources are registered in first-appearance order;
// observations below the threshold still register the source (so its scope
// and output size reflect what it attempted).
func Materialize(obs []ConfidenceObservation, threshold float64) (*Dataset, error) {
	if threshold < 0 || threshold > 1 {
		return nil, fmt.Errorf("triple: threshold %v outside [0,1]", threshold)
	}
	d := NewDataset()
	for _, o := range obs {
		if o.Source == "" {
			return nil, fmt.Errorf("triple: observation of %v without source", o.Triple)
		}
		if o.Confidence < 0 || o.Confidence > 1 {
			return nil, fmt.Errorf("triple: confidence %v outside [0,1]", o.Confidence)
		}
		s := d.AddSource(o.Source)
		if o.Confidence >= threshold {
			d.Observe(s, o.Triple)
		}
	}
	return d, nil
}

// ThresholdSweep materializes the observations at each threshold and reports
// the output size per threshold — a quick aid for choosing the cutoff.
// Thresholds are processed in ascending order.
func ThresholdSweep(obs []ConfidenceObservation, thresholds []float64) (map[float64]int, error) {
	sorted := append([]float64(nil), thresholds...)
	sort.Float64s(sorted)
	out := make(map[float64]int, len(sorted))
	for _, th := range sorted {
		d, err := Materialize(obs, th)
		if err != nil {
			return nil, err
		}
		total := 0
		for s := 0; s < d.NumSources(); s++ {
			total += d.OutputSize(SourceID(s))
		}
		out[th] = total
	}
	return out, nil
}
