// Package cluster groups sources by pairwise correlation so the
// correlation-aware fusion algorithms stay tractable on datasets with many
// sources. Following Section 5 of the paper ("we divide sources into
// clusters based on their pairwise correlations, and assume that sources
// across clusters are independent"), sources whose pairwise correlation
// factors deviate from 1 are merged; everything else stays in singleton
// clusters.
package cluster

import (
	"math"
	"sort"

	"corrfuse/internal/quality"
	"corrfuse/internal/triple"
)

// Options configures correlation clustering.
type Options struct {
	// Threshold is the minimum significance (a z-score: observed minus
	// expected co-provision count, in standard deviations under
	// independence) for a pair to be considered correlated. Default 3.
	Threshold float64
	// MaxClusterSize caps cluster growth so the downstream
	// inclusion–exclusion stays feasible. Default 22 (the largest
	// cluster the paper reports for BOOK).
	MaxClusterSize int
	// MinSupport is the minimum number of labeled triples jointly
	// provided by a pair for its correlation estimate to be trusted.
	// Pairs below it are treated as independent; pairs moderately above
	// it have their correlation estimate shrunk toward independence.
	// Default 8.
	MinSupport int
}

func (o *Options) normalize() {
	if o.Threshold <= 0 {
		o.Threshold = 3
	}
	if o.MaxClusterSize <= 0 {
		o.MaxClusterSize = 22
	}
	if o.MinSupport <= 0 {
		o.MinSupport = 8
	}
}

// edge is a correlated pair with its strength.
type edge struct {
	a, b     int
	strength float64
}

// Cluster partitions the sources of est's dataset into correlation
// clusters. Pairs are scored by the larger of their true-triple and
// false-triple correlation deviations |log C|; edges above the threshold are
// merged greedily in decreasing strength order, never growing a cluster past
// MaxClusterSize. The result is a partition covering every source, suitable
// for core.Config.Clusters.
func Cluster(est *quality.Estimator, opts Options) [][]triple.SourceID {
	opts.normalize()
	d := est.Dataset()
	n := d.NumSources()

	var edges []edge
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			s := pairStrength(est, triple.SourceID(a), triple.SourceID(b), opts.MinSupport)
			if s >= opts.Threshold {
				edges = append(edges, edge{a: a, b: b, strength: s})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].strength > edges[j].strength })

	uf := newUnionFind(n)
	for _, e := range edges {
		ra, rb := uf.find(e.a), uf.find(e.b)
		if ra == rb {
			continue
		}
		if uf.size[ra]+uf.size[rb] > opts.MaxClusterSize {
			continue
		}
		uf.union(ra, rb)
	}

	groups := make(map[int][]triple.SourceID)
	for i := 0; i < n; i++ {
		r := uf.find(i)
		groups[r] = append(groups[r], triple.SourceID(i))
	}
	roots := make([]int, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Ints(roots)
	out := make([][]triple.SourceID, 0, len(groups))
	for _, r := range roots {
		out = append(out, groups[r])
	}
	return out
}

// pairStrength returns the significance of the pair's deviation from
// independence: the larger of the true-side and false-side z-scores of the
// observed co-provision count against its independence expectation. Raw
// correlation-factor ratios are NOT used here — for sparse sources a handful
// of coincidences produces an enormous but meaningless factor, whereas the
// z-score correctly discounts low counts. Pairs whose joint support is below
// minSupport score 0.
func pairStrength(est *quality.Estimator, a, b triple.SourceID, minSupport int) float64 {
	bothTrue, bothFalse, aTrue, aFalse, bTrue, bFalse, totTrue, totFalse := est.PairCounts(a, b)
	if bothTrue+bothFalse < minSupport {
		return 0
	}
	z := func(both, an, bn, tot int) float64 {
		if tot == 0 {
			return 0
		}
		expected := float64(an) * float64(bn) / float64(tot)
		if expected <= 0 {
			return 0
		}
		return math.Abs(float64(both)-expected) / math.Sqrt(expected)
	}
	zt := z(bothTrue, aTrue, bTrue, totTrue)
	zf := z(bothFalse, aFalse, bFalse, totFalse)
	s := math.Max(zt, zf)
	if math.IsInf(s, 0) || math.IsNaN(s) {
		return 0
	}
	return s
}

// unionFind is a small weighted union–find.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.size[ra] < uf.size[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	uf.size[ra] += uf.size[rb]
}
