package cluster

import (
	"testing"

	"corrfuse/internal/dataset"
	"corrfuse/internal/quality"
	"corrfuse/internal/triple"
)

// buildCopied creates three replicated sources and two independents over
// enough triples that the pairwise correlation is unambiguous.
func buildCopied(t *testing.T) *quality.Estimator {
	t.Helper()
	spec := dataset.SyntheticSpec{
		NumTrue:  300,
		NumFalse: 300,
		Seed:     42,
		Sources: []dataset.SourceSpec{
			{Precision: 0.7, Recall: 0.5},
			{Precision: 0.7, Recall: 0.5},
			{Precision: 0.7, Recall: 0.5},
			{Precision: 0.7, Recall: 0.5},
			{Precision: 0.7, Recall: 0.5},
		},
		Groups: []dataset.GroupSpec{
			{Members: []int{0, 1, 2}, OnTrue: true, Strength: 0.9},
			{Members: []int{0, 1, 2}, OnTrue: false, Strength: 0.9},
		},
	}
	d, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	est, err := quality.NewEstimator(d, quality.Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	return est
}

func TestClusterFindsCopyGroup(t *testing.T) {
	est := buildCopied(t)
	clusters := Cluster(est, Options{})
	// Expect {0,1,2} together and 3, 4 as singletons.
	var big []triple.SourceID
	singles := 0
	for _, c := range clusters {
		if len(c) > 1 {
			if big != nil {
				t.Fatalf("more than one multi-source cluster: %v", clusters)
			}
			big = c
		} else {
			singles++
		}
	}
	if len(big) != 3 || singles != 2 {
		t.Fatalf("clusters = %v, want {0,1,2} + 2 singletons", clusters)
	}
	want := map[triple.SourceID]bool{0: true, 1: true, 2: true}
	for _, s := range big {
		if !want[s] {
			t.Errorf("unexpected member %d in the copy cluster", s)
		}
	}
}

func TestClusterIsPartition(t *testing.T) {
	est := buildCopied(t)
	clusters := Cluster(est, Options{})
	seen := map[triple.SourceID]bool{}
	total := 0
	for _, c := range clusters {
		for _, s := range c {
			if seen[s] {
				t.Fatalf("source %d in two clusters", s)
			}
			seen[s] = true
			total++
		}
	}
	if total != est.Dataset().NumSources() {
		t.Errorf("partition covers %d of %d sources", total, est.Dataset().NumSources())
	}
}

func TestMaxClusterSizeRespected(t *testing.T) {
	est := buildCopied(t)
	clusters := Cluster(est, Options{MaxClusterSize: 2})
	for _, c := range clusters {
		if len(c) > 2 {
			t.Errorf("cluster %v exceeds max size 2", c)
		}
	}
}

func TestIndependentSourcesStaySingleton(t *testing.T) {
	spec := dataset.UniformSpec(6, 600, 0.5, 0.7, 0.5, 99)
	d, err := dataset.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	est, err := quality.NewEstimator(d, quality.Options{Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	clusters := Cluster(est, Options{})
	for _, c := range clusters {
		if len(c) > 1 {
			t.Errorf("independent sources clustered together: %v", c)
		}
	}
}

func TestUnionFind(t *testing.T) {
	uf := newUnionFind(5)
	uf.union(0, 1)
	uf.union(3, 4)
	if uf.find(0) != uf.find(1) || uf.find(3) != uf.find(4) {
		t.Error("union failed")
	}
	if uf.find(0) == uf.find(3) {
		t.Error("disjoint sets merged")
	}
	uf.union(1, 3)
	if uf.find(0) != uf.find(4) {
		t.Error("transitive union failed")
	}
	if uf.size[uf.find(0)] != 4 {
		t.Errorf("size = %d, want 4", uf.size[uf.find(0)])
	}
}
