package resolve

import (
	"testing"

	"corrfuse/internal/core"
	"corrfuse/internal/dataset"
	"corrfuse/internal/quality"
	"corrfuse/internal/triple"
)

func mk(s, p, o string) triple.Triple {
	return triple.Triple{Subject: s, Predicate: p, Object: o}
}

func TestSingleValuedKeepsBest(t *testing.T) {
	scored := []Scored{
		{ID: 0, Triple: mk("Obama", "born", "1961"), Probability: 0.9},
		{ID: 1, Triple: mk("Obama", "born", "1936"), Probability: 0.6},
		{ID: 2, Triple: mk("Obama", "profession", "president"), Probability: 0.8},
		{ID: 3, Triple: mk("Obama", "profession", "lawyer"), Probability: 0.7},
		{ID: 4, Triple: mk("Bush", "born", "1946"), Probability: 0.55},
	}
	out := SingleValued(scored, map[string]bool{"born": true})
	want := map[triple.TripleID]bool{0: true, 2: true, 3: true, 4: true}
	if len(out) != 4 {
		t.Fatalf("kept %d, want 4: %v", len(out), out)
	}
	for _, s := range out {
		if !want[s.ID] {
			t.Errorf("unexpected survivor %v", s.Triple)
		}
	}
}

func TestSingleValuedTieBreak(t *testing.T) {
	scored := []Scored{
		{ID: 0, Triple: mk("e", "p", "bbb"), Probability: 0.5},
		{ID: 1, Triple: mk("e", "p", "aaa"), Probability: 0.5},
	}
	out := SingleValued(scored, map[string]bool{"p": true})
	if len(out) != 1 || out[0].Triple.Object != "aaa" {
		t.Errorf("tie should break to the lexicographically smaller object: %v", out)
	}
}

func TestSingleValuedNoPredicates(t *testing.T) {
	scored := []Scored{
		{ID: 0, Triple: mk("e", "p", "1"), Probability: 0.9},
		{ID: 1, Triple: mk("e", "p", "2"), Probability: 0.8},
	}
	out := SingleValued(scored, nil)
	if len(out) != 2 {
		t.Error("without single-valued predicates everything passes through")
	}
}

func TestPartitionCoversEverything(t *testing.T) {
	d := dataset.Obama()
	parts := Partition(d, ByPredicate)
	total := 0
	for _, p := range parts {
		total += p.NumTriples()
		if p.NumSources() != d.NumSources() {
			t.Error("partitions must share the source registry")
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if total != d.NumTriples() {
		t.Errorf("partitions cover %d of %d triples", total, d.NumTriples())
	}
	if len(parts) < 5 {
		t.Errorf("obama has several predicates, got %d domains", len(parts))
	}
	if len(Domains(parts)) != len(parts) {
		t.Error("Domains should list every domain")
	}
}

func TestBySubjectPrefix(t *testing.T) {
	f := BySubjectPrefix('-')
	if got := f(mk("pizzeria-42", "p", "v")); got != "pizzeria" {
		t.Errorf("domain = %q", got)
	}
	if got := f(mk("nodash", "p", "v")); got != "nodash" {
		t.Errorf("domain = %q", got)
	}
}

// TestDomainFusionBeatsGlobalWhenQualityIsDomainDependent builds the §7
// scenario: a source that is excellent in one domain and poor in another.
// Per-domain quality estimation recovers the difference; global estimation
// averages it away.
func TestDomainFusionBeatsGlobalWhenQualityIsDomainDependent(t *testing.T) {
	// Two domains, one source per claim; source "mixed" is 95% accurate on
	// domain A and 20% accurate on domain B. Source "meh" is 60% on both.
	d := triple.NewDataset()
	mixed := d.AddSource("mixed")
	meh := d.AddSource("meh")

	addClaims := func(domain string, n int, mixedAcc float64) {
		for i := 0; i < n; i++ {
			sub := domain + "-" + itoa(i)
			truth := mk(sub, "value", "correct")
			wrong := mk(sub, "value", "wrong")
			d.SetLabel(truth, triple.True)
			d.SetLabel(wrong, triple.False)
			// mixed claims correctly with mixedAcc.
			if float64(i%100)/100 < mixedAcc {
				d.Observe(mixed, truth)
			} else {
				d.Observe(mixed, wrong)
			}
			// meh claims correctly 60% of the time.
			if i%5 < 3 {
				d.Observe(meh, truth)
			} else {
				d.Observe(meh, wrong)
			}
		}
	}
	addClaims("alpha", 300, 0.95)
	addClaims("beta", 300, 0.20)

	fuseF1 := func(target *triple.Dataset, domainAware bool) float64 {
		score := func(part *triple.Dataset) []Scored {
			est, err := quality.NewEstimator(part, quality.Options{Alpha: 0.5, Smoothing: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			alg, err := core.NewPrecRec(core.Config{Dataset: part, Params: est})
			if err != nil {
				t.Fatal(err)
			}
			var out []Scored
			for i := 0; i < part.NumTriples(); i++ {
				id := triple.TripleID(i)
				if len(part.Providers(id)) == 0 {
					continue
				}
				out = append(out, Scored{ID: id, Triple: part.Triple(id), Probability: alg.Probability(id)})
			}
			return out
		}
		var scored []Scored
		if domainAware {
			parts := Partition(target, BySubjectPrefix('-'))
			merged := make(map[Domain][]Scored, len(parts))
			for dom, part := range parts {
				merged[dom] = score(part)
			}
			var err error
			scored, err = Merge(target, merged)
			if err != nil {
				t.Fatal(err)
			}
		} else {
			scored = score(target)
		}
		var tp, fp, fn int
		for _, s := range scored {
			id, _ := target.TripleID(s.Triple)
			isTrue := target.Label(id) == triple.True
			accepted := s.Probability > 0.5
			switch {
			case accepted && isTrue:
				tp++
			case accepted && !isTrue:
				fp++
			case isTrue:
				fn++
			}
		}
		if tp == 0 {
			return 0
		}
		p := float64(tp) / float64(tp+fp)
		r := float64(tp) / float64(tp+fn)
		return 2 * p * r / (p + r)
	}

	global := fuseF1(d, false)
	domain := fuseF1(d, true)
	if domain <= global {
		t.Errorf("domain-aware F1 %v should beat global F1 %v", domain, global)
	}
}

func TestMergeRejectsForeignTriples(t *testing.T) {
	d := dataset.Obama()
	_, err := Merge(d, map[Domain][]Scored{
		"x": {{Triple: mk("nobody", "none", "x"), Probability: 0.5}},
	})
	if err == nil {
		t.Error("foreign triple should fail to merge")
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
