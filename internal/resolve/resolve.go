// Package resolve implements the extensions sketched in the paper's
// future-work section (§7): single-truth resolution for attributes that can
// hold only one value (e.g. a birth date), and domain-partitioned fusion for
// sources whose quality varies by domain (e.g. a source that is mediocre
// overall but excellent on one category of entities).
package resolve

import (
	"fmt"
	"sort"

	"corrfuse/internal/triple"
)

// Scored pairs a triple with a fusion probability; it mirrors the public
// API's ScoredTriple without importing the root package (no import cycles).
type Scored struct {
	ID          triple.TripleID
	Triple      triple.Triple
	Probability float64
}

// SingleValued enforces single-truth semantics for the given predicates: for
// every (subject, predicate) key with a single-valued predicate, only the
// highest-probability value survives (ties broken deterministically by
// object string); its competitors are suppressed regardless of their own
// probabilities. Multi-valued predicates pass through unchanged.
//
// This is the paper's "a person only has a single birth date" scenario: the
// open-world model scores each value independently, and single-truth
// attributes need exactly this arbitration step on top.
func SingleValued(scored []Scored, singleValued map[string]bool) []Scored {
	type key struct{ subject, predicate string }
	best := make(map[key]Scored)
	for _, s := range scored {
		if !singleValued[s.Triple.Predicate] {
			continue
		}
		k := key{s.Triple.Subject, s.Triple.Predicate}
		cur, ok := best[k]
		if !ok || s.Probability > cur.Probability ||
			(s.Probability == cur.Probability && s.Triple.Object < cur.Triple.Object) {
			best[k] = s
		}
	}
	out := make([]Scored, 0, len(scored))
	for _, s := range scored {
		if !singleValued[s.Triple.Predicate] {
			out = append(out, s)
			continue
		}
		k := key{s.Triple.Subject, s.Triple.Predicate}
		if best[k].Triple == s.Triple {
			out = append(out, s)
		}
	}
	return out
}

// Domain names a group of triples that share quality characteristics.
type Domain string

// DomainFunc assigns each triple to a domain. ByPredicate is the common
// choice; any deterministic assignment works.
type DomainFunc func(t triple.Triple) Domain

// ByPredicate assigns every triple to its predicate's domain.
func ByPredicate(t triple.Triple) Domain { return Domain(t.Predicate) }

// BySubjectPrefix groups triples by the prefix of the subject up to the
// first separator byte — a stand-in for entity categories (e.g. "pizzeria-"
// vs "steakhouse-").
func BySubjectPrefix(sep byte) DomainFunc {
	return func(t triple.Triple) Domain {
		for i := 0; i < len(t.Subject); i++ {
			if t.Subject[i] == sep {
				return Domain(t.Subject[:i])
			}
		}
		return Domain(t.Subject)
	}
}

// Partition splits a dataset into per-domain datasets, each containing the
// same source registry, the triples of that domain, and their labels. Fusing
// each partition separately trains a quality model per domain, the remedy
// the paper proposes for domain-dependent source quality ("a source may have
// low overall precision, but may be particularly accurate with respect to
// Pizzerias").
func Partition(d *triple.Dataset, f DomainFunc) map[Domain]*triple.Dataset {
	if f == nil {
		f = ByPredicate
	}
	out := make(map[Domain]*triple.Dataset)
	get := func(dom Domain) *triple.Dataset {
		p, ok := out[dom]
		if !ok {
			p = triple.NewDataset()
			for _, s := range d.Sources() {
				p.AddSource(s.Name)
			}
			out[dom] = p
		}
		return p
	}
	for i := 0; i < d.NumTriples(); i++ {
		id := triple.TripleID(i)
		t := d.Triple(id)
		p := get(f(t))
		for _, s := range d.Providers(id) {
			p.Observe(s, t)
		}
		if l := d.Label(id); l != triple.Unknown {
			p.SetLabel(t, l)
		} else if len(d.Providers(id)) == 0 {
			p.SetLabel(t, triple.Unknown)
		}
	}
	return out
}

// Domains lists the domains of a partition in deterministic order.
func Domains(parts map[Domain]*triple.Dataset) []Domain {
	out := make([]Domain, 0, len(parts))
	for dom := range parts {
		out = append(out, dom)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Merge recombines per-domain scored results into one slice, re-mapping the
// IDs back to the original dataset. Triples absent from the original dataset
// are an error (they cannot be re-mapped).
func Merge(original *triple.Dataset, parts map[Domain][]Scored) ([]Scored, error) {
	var out []Scored
	for dom, scored := range parts {
		for _, s := range scored {
			id, ok := original.TripleID(s.Triple)
			if !ok {
				return nil, fmt.Errorf("resolve: domain %q triple %v not in the original dataset", dom, s.Triple)
			}
			out = append(out, Scored{ID: id, Triple: s.Triple, Probability: s.Probability})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Probability != out[j].Probability {
			return out[i].Probability > out[j].Probability
		}
		return out[i].ID < out[j].ID
	})
	return out, nil
}
