package eval

import (
	"math"
	"testing"
	"testing/quick"

	"corrfuse/internal/stat"
)

func TestClassify(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.4, 0.3}
	labels := []bool{true, false, true, false}
	m := Classify(scores, labels, 0.5)
	if m.TP != 1 || m.FP != 1 || m.FN != 1 || m.TN != 1 {
		t.Fatalf("confusion = %+v", m)
	}
	if m.Precision() != 0.5 || m.Recall() != 0.5 || m.F1() != 0.5 || m.Accuracy() != 0.5 {
		t.Errorf("metrics: %v", m)
	}
}

func TestMetricsEdgeCases(t *testing.T) {
	var m BinaryMetrics
	if m.Precision() != 0 || m.Recall() != 0 || m.F1() != 0 || m.Accuracy() != 0 {
		t.Error("empty metrics should be 0")
	}
	m = BinaryMetrics{TP: 5}
	if m.Precision() != 1 || m.Recall() != 1 || m.F1() != 1 {
		t.Error("perfect metrics should be 1")
	}
}

func TestClassifyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch should panic")
		}
	}()
	Classify([]float64{1}, []bool{true, false}, 0.5)
}

func TestPerfectRankingAUC(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.2, 0.1}
	labels := []bool{true, true, false, false}
	if got := AUCROC(scores, labels); !stat.ApproxEqual(got, 1, 1e-12) {
		t.Errorf("AUC-ROC = %v, want 1", got)
	}
	if got := AUCPR(scores, labels); !stat.ApproxEqual(got, 1, 1e-12) {
		t.Errorf("AUC-PR = %v, want 1", got)
	}
}

func TestInvertedRankingAUC(t *testing.T) {
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	labels := []bool{true, true, false, false}
	if got := AUCROC(scores, labels); !stat.ApproxEqual(got, 0, 1e-12) {
		t.Errorf("AUC-ROC = %v, want 0", got)
	}
}

func TestUniformScoresAUCHalf(t *testing.T) {
	// All scores tied: AUC-ROC must be exactly 0.5 regardless of the
	// label order (the tie-aware construction).
	scores := []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	labels := []bool{true, false, true, false, false, true}
	if got := AUCROC(scores, labels); !stat.ApproxEqual(got, 0.5, 1e-12) {
		t.Errorf("AUC-ROC with all ties = %v, want 0.5", got)
	}
}

func TestTieOrderInvariance(t *testing.T) {
	// Swapping the order of tied items must not change the AUCs.
	scores := []float64{0.9, 0.5, 0.5, 0.5, 0.1}
	labelsA := []bool{true, true, false, false, false}
	labelsB := []bool{true, false, false, true, false}
	if a, b := AUCROC(scores, labelsA), AUCROC(scores, labelsB); !stat.ApproxEqual(a, b, 1e-12) {
		t.Errorf("AUC-ROC tie order dependence: %v vs %v", a, b)
	}
	if a, b := AUCPR(scores, labelsA), AUCPR(scores, labelsB); !stat.ApproxEqual(a, b, 1e-9) {
		t.Errorf("AUC-PR tie order dependence: %v vs %v", a, b)
	}
}

func TestAUCROCEqualsMannWhitney(t *testing.T) {
	// AUC-ROC must equal the tie-corrected Mann–Whitney U statistic.
	f := func(raw []byte) bool {
		if len(raw) < 4 {
			return true
		}
		scores := make([]float64, len(raw))
		labels := make([]bool, len(raw))
		nPos := 0
		for i, b := range raw {
			scores[i] = float64(b % 8) // coarse → many ties
			labels[i] = b%3 == 0
			if labels[i] {
				nPos++
			}
		}
		if nPos == 0 || nPos == len(raw) {
			return true
		}
		var u float64
		for i := range scores {
			if !labels[i] {
				continue
			}
			for j := range scores {
				if labels[j] {
					continue
				}
				switch {
				case scores[i] > scores[j]:
					u += 1
				case scores[i] == scores[j]:
					u += 0.5
				}
			}
		}
		mw := u / float64(nPos*(len(raw)-nPos))
		return stat.ApproxEqual(AUCROC(scores, labels), mw, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestROCCurveEndpoints(t *testing.T) {
	scores := []float64{0.9, 0.1, 0.5}
	labels := []bool{true, false, true}
	pts := ROCCurve(scores, labels)
	first, last := pts[0], pts[len(pts)-1]
	if first.X != 0 || first.Y != 0 {
		t.Errorf("ROC must start at origin, got %v", first)
	}
	if last.X != 1 || last.Y != 1 {
		t.Errorf("ROC must end at (1,1), got %v", last)
	}
}

func TestPRCurveMonotoneRecall(t *testing.T) {
	scores := []float64{0.9, 0.7, 0.7, 0.4, 0.2}
	labels := []bool{true, false, true, true, false}
	pts := PRCurve(scores, labels)
	for i := 1; i < len(pts); i++ {
		if pts[i].X < pts[i-1].X-1e-12 {
			t.Fatalf("recall not monotone at %d: %v < %v", i, pts[i].X, pts[i-1].X)
		}
	}
	if last := pts[len(pts)-1]; !stat.ApproxEqual(last.X, 1, 1e-12) {
		t.Errorf("final recall = %v, want 1", last.X)
	}
}

func TestAUCBounds(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) < 2 {
			return true
		}
		scores := make([]float64, len(raw))
		labels := make([]bool, len(raw))
		hasPos, hasNeg := false, false
		for i, b := range raw {
			scores[i] = float64(b) / 255
			labels[i] = b%2 == 0
			if labels[i] {
				hasPos = true
			} else {
				hasNeg = true
			}
		}
		if !hasPos || !hasNeg {
			return true
		}
		pr, roc := AUCPR(scores, labels), AUCROC(scores, labels)
		return pr >= -1e-12 && pr <= 1+1e-12 && roc >= -1e-12 && roc <= 1+1e-12 &&
			!math.IsNaN(pr) && !math.IsNaN(roc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAUCDegenerate(t *testing.T) {
	if AUC(nil) != 0 || AUC([]Point{{0, 1}}) != 0 {
		t.Error("degenerate curves should have zero area")
	}
	// Unit square.
	if got := AUC([]Point{{0, 1}, {1, 1}}); got != 1 {
		t.Errorf("flat unit curve area = %v", got)
	}
}
