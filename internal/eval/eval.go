// Package eval provides the evaluation metrics used in Section 5 of the
// paper: precision/recall/F1 of binary decisions, precision–recall and ROC
// curves over ranked truthfulness scores, and the areas under those curves.
package eval

import (
	"fmt"
	"sort"

	"corrfuse/internal/stat"
)

// BinaryMetrics summarizes binary classification quality.
type BinaryMetrics struct {
	TP, FP, TN, FN int
}

// Precision returns TP/(TP+FP), or 0 when nothing was returned as true.
func (m BinaryMetrics) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall returns TP/(TP+FN), or 0 when there are no true items.
func (m BinaryMetrics) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (m BinaryMetrics) F1() float64 { return stat.HarmonicMean(m.Precision(), m.Recall()) }

// Accuracy returns (TP+TN)/total.
func (m BinaryMetrics) Accuracy() float64 {
	total := m.TP + m.FP + m.TN + m.FN
	if total == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(total)
}

// String implements fmt.Stringer.
func (m BinaryMetrics) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F1=%.3f", m.Precision(), m.Recall(), m.F1())
}

// Classify computes BinaryMetrics by thresholding scores at threshold:
// score > threshold counts as an accepted (returned-true) item. labels[i]
// reports whether item i is actually true.
func Classify(scores []float64, labels []bool, threshold float64) BinaryMetrics {
	if len(scores) != len(labels) {
		panic("eval: scores and labels length mismatch")
	}
	var m BinaryMetrics
	for i, s := range scores {
		accepted := s > threshold
		switch {
		case accepted && labels[i]:
			m.TP++
		case accepted && !labels[i]:
			m.FP++
		case !accepted && labels[i]:
			m.FN++
		default:
			m.TN++
		}
	}
	return m
}

// Point is one point of a PR or ROC curve.
type Point struct {
	X, Y float64
}

// scoreBlock is a group of items sharing one score value, in descending
// score order. Grouping makes the curves tie-aware: all items with equal
// score are added as one step, so the curve (and its area) does not depend
// on the arbitrary input order of tied items.
type scoreBlock struct {
	tp, fp int
}

// blocks groups items by descending score.
func blocks(scores []float64, labels []bool) []scoreBlock {
	if len(scores) != len(labels) {
		panic("eval: scores and labels length mismatch")
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	var out []scoreBlock
	for j := 0; j < len(idx); {
		k := j
		var b scoreBlock
		for k < len(idx) && scores[idx[k]] == scores[idx[j]] {
			if labels[idx[k]] {
				b.tp++
			} else {
				b.fp++
			}
			k++
		}
		out = append(out, b)
		j = k
	}
	return out
}

// PRCurve ranks items by descending score and plots precision (Y) versus
// recall (X) after each distinct score threshold, as in the paper's PR-curve
// methodology. Tied scores enter as a single step.
func PRCurve(scores []float64, labels []bool) []Point {
	totalTrue := 0
	for _, l := range labels {
		if l {
			totalTrue++
		}
	}
	points := []Point{{X: 0, Y: 1}} // anchor; Y fixed up after the first block
	tp, fp := 0.0, 0.0
	for _, b := range blocks(scores, labels) {
		// Subdivide the block: under a random order of tied items the
		// expected path mixes the block's positives and negatives
		// uniformly, which the subdivision approximates.
		steps := b.tp + b.fp
		if steps > 64 {
			steps = 64
		}
		for s := 1; s <= steps; s++ {
			f := float64(s) / float64(steps)
			curTP := tp + f*float64(b.tp)
			curFP := fp + f*float64(b.fp)
			var prec, rec float64
			if curTP+curFP > 0 {
				prec = curTP / (curTP + curFP)
			}
			if totalTrue > 0 {
				rec = curTP / float64(totalTrue)
			}
			points = append(points, Point{X: rec, Y: prec})
		}
		tp += float64(b.tp)
		fp += float64(b.fp)
	}
	// Anchor the curve at recall 0 with the precision of the very first
	// ranked step, the usual convention that gives a perfect ranking an
	// area of 1.
	if len(points) > 1 {
		points[0].Y = points[1].Y
	}
	return points
}

// ROCCurve ranks items by descending score and plots the true positive rate
// (Y) versus the false positive rate (X) after each distinct score
// threshold, starting at (0, 0). Tied scores enter as a single step, so the
// area under the curve equals the tie-corrected Mann–Whitney statistic.
func ROCCurve(scores []float64, labels []bool) []Point {
	totalTrue, totalFalse := 0, 0
	for _, l := range labels {
		if l {
			totalTrue++
		} else {
			totalFalse++
		}
	}
	points := []Point{{0, 0}}
	tp, fp := 0, 0
	for _, b := range blocks(scores, labels) {
		tp += b.tp
		fp += b.fp
		var tpr, fpr float64
		if totalTrue > 0 {
			tpr = float64(tp) / float64(totalTrue)
		}
		if totalFalse > 0 {
			fpr = float64(fp) / float64(totalFalse)
		}
		points = append(points, Point{X: fpr, Y: tpr})
	}
	return points
}

// AUC integrates a curve with the trapezoid rule over X. Points must be in
// non-decreasing X order (PRCurve and ROCCurve output satisfy this for X
// produced by cumulative counts).
func AUC(points []Point) float64 {
	if len(points) < 2 {
		return 0
	}
	var k stat.KahanSum
	for i := 1; i < len(points); i++ {
		dx := points[i].X - points[i-1].X
		if dx < 0 {
			dx = 0
		}
		k.Add(dx * (points[i].Y + points[i-1].Y) / 2)
	}
	return k.Sum()
}

// AUCPR returns the area under the precision–recall curve.
func AUCPR(scores []float64, labels []bool) float64 { return AUC(PRCurve(scores, labels)) }

// AUCROC returns the area under the ROC curve.
func AUCROC(scores []float64, labels []bool) float64 { return AUC(ROCCurve(scores, labels)) }
