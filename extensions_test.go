package corrfuse_test

import (
	"testing"

	"corrfuse"
)

func TestMaterializePublicAPI(t *testing.T) {
	obs := []corrfuse.ConfidenceObservation{
		{Source: "A", Triple: corrfuse.Triple{Subject: "e", Predicate: "p", Object: "1"}, Confidence: 0.9},
		{Source: "A", Triple: corrfuse.Triple{Subject: "e", Predicate: "p", Object: "2"}, Confidence: 0.2},
		{Source: "B", Triple: corrfuse.Triple{Subject: "e", Predicate: "p", Object: "1"}, Confidence: 0.8},
	}
	d, err := corrfuse.Materialize(obs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumTriples() != 1 {
		t.Errorf("triples = %d, want 1 (low-confidence claim dropped)", d.NumTriples())
	}
}

func TestNormalizerPublicAPI(t *testing.T) {
	n := corrfuse.NewNormalizer()
	n.MapEntity("Barack Obama", "Obama")
	got := n.Apply(corrfuse.Triple{Subject: "  barack  OBAMA ", Predicate: "Spouse", Object: "Michelle."})
	if got.Subject != "Obama" || got.Predicate != "spouse" || got.Object != "michelle" {
		t.Errorf("Apply = %v", got)
	}
}

func TestIncrementalPublicAPI(t *testing.T) {
	d := obama()
	f, err := corrfuse.New(d, corrfuse.Options{Method: corrfuse.PrecRec})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := f.Incremental(true)
	if err != nil {
		t.Fatal(err)
	}
	// Stream the Obama observations; final state must match batch PrecRec.
	for s := 0; s < d.NumSources(); s++ {
		for _, id := range d.Output(corrfuse.SourceID(s)) {
			if _, err := inc.Observe(corrfuse.SourceID(s), d.Triple(id)); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := 0; i < d.NumTriples(); i++ {
		tr := d.Triple(corrfuse.TripleID(i))
		batch, _ := f.Probability(tr)
		online, ok := inc.Probability(tr)
		if !ok {
			t.Fatalf("%v unobserved", tr)
		}
		if diff := batch - online; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("%v: online %v vs batch %v", tr, online, batch)
		}
	}
	// Unsupervised methods have no quality model.
	u, err := corrfuse.New(d, corrfuse.Options{Method: corrfuse.UnionK})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Incremental(true); err == nil {
		t.Error("UnionK should not offer an incremental fuser")
	}
}

func TestResolveSingleValuedPublicAPI(t *testing.T) {
	d := obama()
	f, err := corrfuse.New(d, corrfuse.Options{Method: corrfuse.PrecRec})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Fuse()
	if err != nil {
		t.Fatal(err)
	}
	// "profession" has three true values; treating it as single-valued
	// must keep exactly one.
	resolved := res.ResolveSingleValued([]string{"profession"})
	count := 0
	for _, st := range resolved.All {
		if st.Triple.Predicate == "profession" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("single-valued profession kept %d values, want 1", count)
	}
	// Other predicates untouched.
	var spouse int
	for _, st := range resolved.All {
		if st.Triple.Predicate == "spouse" {
			spouse++
		}
	}
	if spouse != 1 {
		t.Errorf("spouse rows = %d, want 1 (unchanged)", spouse)
	}
	// Accepted is a subset of the kept rows.
	kept := map[corrfuse.TripleID]bool{}
	for _, st := range resolved.All {
		kept[st.ID] = true
	}
	for _, st := range resolved.Accepted {
		if !kept[st.ID] {
			t.Error("accepted row missing from All")
		}
	}
}
