// Read-path query benchmarks on the 52k-triple store-scale dataset
// (shardBenchDataset): the indexed serving path against the pre-index
// baseline, for single-triple requests, 64-triple bulk requests and subject
// listings.
//
// The Indexed benchmarks drive the real HTTP serving stack (mux, JSON
// decode, frozen-index reads, JSON encode) through ServeHTTP. The Baseline
// benchmarks reconstruct the pre-index request cost at the same altitude —
// JSON decode, model recompute through the fusion algorithm (an unfrozen
// engine, exactly what every request paid before the read index), response
// assembly, JSON encode — without the HTTP layer, which only biases the
// comparison against the indexed path.
//
// Every benchmark reports a triples/s throughput metric; the acceptance
// ratio is BenchmarkQueryBulk64Indexed vs BenchmarkQuerySingleBaseline.
// CI uploads the results as BENCH_query.json.
package corrfuse_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"corrfuse"
	"corrfuse/internal/serve"
	"corrfuse/internal/store"
	"corrfuse/internal/triple"
)

// queryBenchState caches the trained server and query workload across the
// BenchmarkQuery* family (training the 52k-triple model once).
type queryBenchState struct {
	handler http.Handler
	// handlerNoObs serves the same data with Config.DisableInstrumentation:
	// the per-request delta against handler is the observability overhead.
	handlerNoObs http.Handler
	// handlerAdmission serves the same data with the full admission chain
	// enabled at thresholds the benchmark can never trip: the delta
	// against handler is the per-request admission overhead.
	handlerAdmission http.Handler
	baseline         corrfuse.Model // unfrozen: scores recompute through the algorithm
	st               *store.Store
	triples          []triple.Triple
}

// hubSubject is a deliberately wide subject (hubEntries triples) added on
// top of the 52k entity triples, so the subject benchmarks measure listing
// work rather than per-request fixed costs.
const (
	hubSubject = "hub-entity"
	hubEntries = 512
)

var queryBenchCache *queryBenchState

func queryBench(b *testing.B) *queryBenchState {
	b.Helper()
	if queryBenchCache != nil {
		return queryBenchCache
	}
	d := shardBenchDataset(b)
	opts := shardBenchOpts()
	opts.Shards = 8
	opts.RebuildWorkers = 8

	st := store.FromDataset(d)
	for i := 0; i < hubEntries; i++ {
		st.Put(store.Entry{
			Triple:  triple.Triple{Subject: hubSubject, Predicate: fmt.Sprintf("ph%d", i), Object: "v"},
			Sources: []string{fmt.Sprintf("indep-%d", i%48)},
		})
	}
	srv, err := serve.New(st, serve.Config{Options: opts, PenalizeSilence: true})
	if err != nil {
		b.Fatal(err)
	}
	srvNoObs, err := serve.New(st, serve.Config{Options: opts, PenalizeSilence: true, DisableInstrumentation: true})
	if err != nil {
		b.Fatal(err)
	}
	srvAdmission, err := serve.New(st, serve.Config{
		Options: opts, PenalizeSilence: true,
		// Generous enough that no benchmark request is ever refused: the
		// measurement is the chain's bookkeeping, not its rejections.
		RateLimit:      1e9,
		RateBurst:      1 << 30,
		RequestTimeout: time.Hour,
		MaxInFlight:    1 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}

	// The unfrozen engine never fuses, so its Score/Probability run the
	// correlation-aware algorithm per call — the pre-index read path. It is
	// trained over the same data the server captured.
	d2 := st.Dataset()
	baseline, err := corrfuse.NewModel(d2, opts)
	if err != nil {
		b.Fatal(err)
	}

	qs := &queryBenchState{
		handler:          srv.Handler(),
		handlerNoObs:     srvNoObs.Handler(),
		handlerAdmission: srvAdmission.Handler(),
		baseline:         baseline,
		st:               st,
	}
	for _, id := range providedIDs(d2) {
		qs.triples = append(qs.triples, d2.Triple(id))
	}
	queryBenchCache = qs
	return qs
}

// postScore drives one /v1/score request through the serving stack.
func postScore(b *testing.B, h http.Handler, body []byte) {
	b.Helper()
	req := httptest.NewRequest("POST", "/v1/score", bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatalf("/v1/score: %d: %s", w.Code, w.Body.String())
	}
}

// scoreBodies pre-marshals rotating request bodies of n triples each.
func scoreBodies(b *testing.B, qs *queryBenchState, n int) [][]byte {
	b.Helper()
	const rotation = 64
	bodies := make([][]byte, rotation)
	for i := range bodies {
		var req serve.ScoreRequest
		for j := 0; j < n; j++ {
			req.Triples = append(req.Triples, qs.triples[(i*n+j)%len(qs.triples)])
		}
		raw, err := json.Marshal(req)
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = raw
	}
	return bodies
}

func reportTriplesPerSec(b *testing.B, perOp int) {
	b.ReportMetric(float64(b.N*perOp)/b.Elapsed().Seconds(), "triples/s")
}

// BenchmarkQuerySingleIndexed: one triple per request through the full
// serving stack, answered from the frozen index.
func BenchmarkQuerySingleIndexed(b *testing.B) {
	qs := queryBench(b)
	bodies := scoreBodies(b, qs, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postScore(b, qs.handler, bodies[i%len(bodies)])
	}
	reportTriplesPerSec(b, 1)
}

// BenchmarkQuerySingleBaseline: the pre-index cost of the same request —
// decode, recompute the probability through the correlation-aware
// algorithm, assemble and encode the response.
func BenchmarkQuerySingleBaseline(b *testing.B) {
	qs := queryBench(b)
	bodies := scoreBodies(b, qs, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baselineScore(b, qs, bodies[i%len(bodies)])
	}
	reportTriplesPerSec(b, 1)
}

// BenchmarkQueryBulk64Indexed is the acceptance benchmark: 64-triple bulk
// requests through the full serving stack, answered from the frozen index.
// Its triples/s must be ≥ 5× BenchmarkQuerySingleBaseline's.
func BenchmarkQueryBulk64Indexed(b *testing.B) {
	qs := queryBench(b)
	bodies := scoreBodies(b, qs, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postScore(b, qs.handler, bodies[i%len(bodies)])
	}
	reportTriplesPerSec(b, 64)
}

// BenchmarkQueryBulk64IndexedNoObs re-runs the acceptance benchmark with
// instrumentation disabled (no tracing, no latency histograms, no status
// accounting): the delta against BenchmarkQueryBulk64Indexed is the
// end-to-end observability overhead on the read path — budgeted at ≤ 5%.
// CI records both in BENCH_obs.json.
func BenchmarkQueryBulk64IndexedNoObs(b *testing.B) {
	qs := queryBench(b)
	bodies := scoreBodies(b, qs, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postScore(b, qs.handlerNoObs, bodies[i%len(bodies)])
	}
	reportTriplesPerSec(b, 64)
}

// BenchmarkQueryBulk64IndexedAdmission re-runs the acceptance benchmark
// with the full admission chain enabled (rate limit, shed gate, deadline)
// at thresholds it never trips: the delta against
// BenchmarkQueryBulk64Indexed is the admission overhead on the read path —
// budgeted at ≤ 5%. CI records both in BENCH_admission.json.
func BenchmarkQueryBulk64IndexedAdmission(b *testing.B) {
	qs := queryBench(b)
	bodies := scoreBodies(b, qs, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		postScore(b, qs.handlerAdmission, bodies[i%len(bodies)])
	}
	reportTriplesPerSec(b, 64)
}

// BenchmarkQueryBulk64Baseline: the same bulk batch recomputed through the
// algorithm per request (the pre-index bulk path).
func BenchmarkQueryBulk64Baseline(b *testing.B) {
	qs := queryBench(b)
	bodies := scoreBodies(b, qs, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baselineScore(b, qs, bodies[i%len(bodies)])
	}
	reportTriplesPerSec(b, 64)
}

// baselineScore replays the pre-index /v1/score work: decode the request,
// resolve IDs, recompute probabilities through the unfrozen model, assemble
// results, encode the response.
func baselineScore(b *testing.B, qs *queryBenchState, body []byte) {
	b.Helper()
	var req serve.ScoreRequest
	if err := json.Unmarshal(body, &req); err != nil {
		b.Fatal(err)
	}
	d := qs.baseline.Dataset()
	results := make([]serve.ScoreResult, len(req.Triples))
	var idxs []int
	var ids []corrfuse.TripleID
	for i, t := range req.Triples {
		results[i] = serve.ScoreResult{Triple: t, Basis: "unknown"}
		if id, ok := d.TripleID(t); ok && len(d.Providers(id)) > 0 {
			idxs = append(idxs, i)
			ids = append(ids, id)
		}
	}
	for j, p := range qs.baseline.Score(ids) {
		results[idxs[j]].Probability = p
		results[idxs[j]].Basis = "snapshot"
	}
	enc := json.NewEncoder(io.Discard)
	if err := enc.Encode(map[string]any{"results": results, "snapshotSeq": 1}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkQuerySubjectIndexed: wide-subject listings through the full
// serving stack — pre-ranked slices straight out of the frozen index, no
// store scan, no per-request sort.
func BenchmarkQuerySubjectIndexed(b *testing.B) {
	qs := queryBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", "/v1/subject/"+hubSubject, nil)
		w := httptest.NewRecorder()
		qs.handler.ServeHTTP(w, req)
		if w.Code != http.StatusOK {
			b.Fatalf("/v1/subject: %d", w.Code)
		}
	}
	reportTriplesPerSec(b, hubEntries)
}

// BenchmarkQuerySubjectBaseline: the pre-index listing of the same wide
// subject — scan the store's subject slice, assemble statuses, rank them
// per request, encode.
func BenchmarkQuerySubjectBaseline(b *testing.B) {
	qs := queryBench(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		entries := qs.st.BySubject(hubSubject)
		out := make([]serve.TripleStatus, len(entries))
		for j, e := range entries {
			out[j] = serve.TripleStatus{
				Triple: e.Triple, Sources: e.Sources, Label: e.Label,
				Probability: e.Probability, BatchProbability: e.Probability,
				Accepted: e.Accepted,
			}
		}
		sort.SliceStable(out, func(a, c int) bool { return out[a].Probability > out[c].Probability })
		enc := json.NewEncoder(io.Discard)
		if err := enc.Encode(map[string]any{"results": out, "snapshotSeq": 1}); err != nil {
			b.Fatal(err)
		}
	}
	reportTriplesPerSec(b, hubEntries)
}
