// Differential tests for the sharded fusion engine: when quality evidence
// and correlation are subject-scoped and no source's data crosses shards,
// ShardedFuser must reproduce the monolithic Fuser's probabilities exactly
// (within floating-point noise); when correlations cross shards, the
// divergence must stay bounded and the two engines must agree on every
// confidently classified triple.
package corrfuse_test

import (
	"fmt"
	"math"
	"testing"

	"corrfuse"
	"corrfuse/internal/shard"
	"corrfuse/internal/triple"
)

const nShards = 4

// subjectPartitionedDataset builds a dataset whose sources each cover
// subjects of exactly one shard of an nShards-way partition:
//
//   - copierA-g and copierB-g provide identical true triples plus a shared
//     false triple (strong positive correlation, subject-scoped),
//   - indep-g provides a mix on its own.
//
// With subject scope, every statistic the quality estimator computes for
// these sources is confined to one shard, which is the regime where
// shard-local training is exact.
func subjectPartitionedDataset(t testing.TB) *corrfuse.Dataset {
	t.Helper()
	d := corrfuse.NewDataset()
	var a, b, c [nShards]corrfuse.SourceID
	for g := 0; g < nShards; g++ {
		a[g] = d.AddSource(fmt.Sprintf("copierA-%d", g))
		b[g] = d.AddSource(fmt.Sprintf("copierB-%d", g))
		c[g] = d.AddSource(fmt.Sprintf("indep-%d", g))
	}
	// Collect 24 subjects per shard (deterministically, by hashing the
	// same subject names the router will hash).
	perShard := make([][]string, nShards)
	for i := 0; len(perShard[0]) < 24 || len(perShard[1]) < 24 || len(perShard[2]) < 24 || len(perShard[3]) < 24; i++ {
		sub := fmt.Sprintf("subject-%04d", i)
		g := shard.Of(sub, nShards)
		if len(perShard[g]) < 24 {
			perShard[g] = append(perShard[g], sub)
		}
	}
	for g := 0; g < nShards; g++ {
		for j, sub := range perShard[g] {
			tt := corrfuse.Triple{Subject: sub, Predicate: "p", Object: "v"}
			switch j % 6 {
			case 0, 1: // true triple both copiers provide
				d.Observe(a[g], tt)
				d.Observe(b[g], tt)
				d.SetLabel(tt, corrfuse.True)
			case 2: // true triple the independent source also finds
				d.Observe(a[g], tt)
				d.Observe(b[g], tt)
				d.Observe(c[g], tt)
				d.SetLabel(tt, corrfuse.True)
			case 3: // shared copier mistake: joint FPR support
				d.Observe(a[g], tt)
				d.Observe(b[g], tt)
				d.SetLabel(tt, corrfuse.False)
			case 4: // independent-source mistake
				d.Observe(c[g], tt)
				d.SetLabel(tt, corrfuse.False)
			case 5: // unlabeled co-provided triple: the scoring target
				d.Observe(a[g], tt)
				d.Observe(b[g], tt)
				if j%2 == 0 {
					d.Observe(c[g], tt)
				}
			}
		}
	}
	return d
}

func providedIDs(d *corrfuse.Dataset) []corrfuse.TripleID {
	var ids []corrfuse.TripleID
	for i := 0; i < d.NumTriples(); i++ {
		if len(d.Providers(corrfuse.TripleID(i))) > 0 {
			ids = append(ids, corrfuse.TripleID(i))
		}
	}
	return ids
}

// TestShardedMatchesMonolithicSubjectScoped: with subject-scoped
// correlation, the sharded engine is exact — probabilities match the
// monolithic engine within 1e-9 for every supervised method.
func TestShardedMatchesMonolithicSubjectScoped(t *testing.T) {
	d := subjectPartitionedDataset(t)
	for _, method := range []corrfuse.Method{
		corrfuse.PrecRec,
		corrfuse.PrecRecCorr,
		corrfuse.PrecRecCorrAggressive,
		corrfuse.PrecRecCorrElastic,
	} {
		t.Run(method.String(), func(t *testing.T) {
			opts := corrfuse.Options{
				Method:    method,
				Scope:     corrfuse.NewScopeSubject(d),
				Smoothing: 0.1,
			}
			mono, err := corrfuse.New(d, opts)
			if err != nil {
				t.Fatal(err)
			}
			opts.Shards = nShards
			opts.RebuildWorkers = nShards
			sharded, err := corrfuse.NewSharded(d, opts)
			if err != nil {
				t.Fatal(err)
			}
			ids := providedIDs(d)
			monoP := mono.Score(ids)
			shardP := sharded.Score(ids)
			for i, id := range ids {
				if diff := math.Abs(monoP[i] - shardP[i]); diff > 1e-9 {
					t.Errorf("%v: monolithic %.12f, sharded %.12f (diff %.3g)",
						d.Triple(id), monoP[i], shardP[i], diff)
				}
			}
			// The per-triple routing path must agree with batch scoring.
			for _, id := range ids[:10] {
				tt := d.Triple(id)
				p, ok := sharded.Probability(tt)
				if !ok {
					t.Fatalf("sharded engine does not know %v", tt)
				}
				if math.Abs(p-sharded.ProbabilityByID(id)) > 1e-15 {
					t.Errorf("%v: Probability %v != ProbabilityByID %v", tt, p, sharded.ProbabilityByID(id))
				}
			}
		})
	}
}

// TestShardedFuseMergesGlobally: Fuse returns globally ranked results keyed
// by global TripleIDs, covering exactly the provided triples, with the same
// accepted set as the monolithic engine (subject-scoped regime).
func TestShardedFuseMergesGlobally(t *testing.T) {
	d := subjectPartitionedDataset(t)
	opts := corrfuse.Options{
		Method:    corrfuse.PrecRecCorr,
		Scope:     corrfuse.NewScopeSubject(d),
		Smoothing: 0.1,
		Shards:    nShards,
	}
	sharded, err := corrfuse.NewSharded(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sharded.Fuse()
	if err != nil {
		t.Fatal(err)
	}
	ids := providedIDs(d)
	if len(res.All) != len(ids) {
		t.Fatalf("Fuse scored %d triples, dataset provides %d", len(res.All), len(ids))
	}
	seen := make(map[corrfuse.TripleID]bool, len(res.All))
	for i, st := range res.All {
		if d.Triple(st.ID) != st.Triple {
			t.Fatalf("result %d: ID %d is not global (names %v, triple is %v)", i, st.ID, d.Triple(st.ID), st.Triple)
		}
		if seen[st.ID] {
			t.Fatalf("result %d: duplicate ID %d", i, st.ID)
		}
		seen[st.ID] = true
		if i > 0 && res.All[i-1].Probability < st.Probability {
			t.Fatalf("merged ranking not sorted at %d: %v then %v", i, res.All[i-1].Probability, st.Probability)
		}
		if st.Probability != sharded.ProbabilityByID(st.ID) {
			t.Fatalf("result %d: Fuse probability %v != ProbabilityByID %v", i, st.Probability, sharded.ProbabilityByID(st.ID))
		}
	}
	monoOpts := opts
	monoOpts.Shards = 0
	mono, err := corrfuse.New(d, monoOpts)
	if err != nil {
		t.Fatal(err)
	}
	monoRes, err := mono.Fuse()
	if err != nil {
		t.Fatal(err)
	}
	monoAccepted := make(map[corrfuse.TripleID]bool, len(monoRes.Accepted))
	for _, st := range monoRes.Accepted {
		monoAccepted[st.ID] = true
	}
	if len(res.Accepted) != len(monoRes.Accepted) {
		t.Fatalf("sharded accepts %d, monolithic %d", len(res.Accepted), len(monoRes.Accepted))
	}
	for _, st := range res.Accepted {
		if !monoAccepted[st.ID] {
			t.Errorf("sharded accepts %v, monolithic does not", st.Triple)
		}
	}
}

// TestShardedHonorsTrainRestriction: a caller-supplied Options.Train set
// (global TripleIDs) must restrict every shard's training slice — the IDs
// are translated through the partition — so the sharded engine still
// matches the monolithic one in the subject-scoped regime.
func TestShardedHonorsTrainRestriction(t *testing.T) {
	d := subjectPartitionedDataset(t)
	// A prefix of the labeled triples (generation order groups them by
	// shard bucket), so the restriction skews the per-group label mix
	// instead of sampling it proportionally.
	labeled := d.Labeled()
	train := labeled[:len(labeled)*3/5]
	opts := corrfuse.Options{
		Method:    corrfuse.PrecRecCorr,
		Scope:     corrfuse.NewScopeSubject(d),
		Smoothing: 0.1,
		Train:     train,
	}
	mono, err := corrfuse.New(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	monoFull, err := corrfuse.New(d, corrfuse.Options{
		Method: corrfuse.PrecRecCorr, Scope: opts.Scope, Smoothing: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts.Shards = nShards
	sharded, err := corrfuse.NewSharded(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	ids := providedIDs(d)
	monoP := mono.Score(ids)
	fullP := monoFull.Score(ids)
	shardP := sharded.Score(ids)
	restrictionMatters := false
	for i, id := range ids {
		if diff := math.Abs(monoP[i] - shardP[i]); diff > 1e-9 {
			t.Errorf("%v: restricted monolithic %.12f, restricted sharded %.12f (diff %.3g)",
				d.Triple(id), monoP[i], shardP[i], diff)
		}
		if math.Abs(monoP[i]-fullP[i]) > 1e-9 {
			restrictionMatters = true
		}
	}
	if !restrictionMatters {
		t.Fatal("Train restriction changed nothing; the test is vacuous")
	}
}

// crossShardDataset builds the regime where sharding is approximate: two
// copying sources and one independent source whose data — and labels —
// spread over every shard under the global scope.
func crossShardDataset(t testing.TB) *corrfuse.Dataset {
	t.Helper()
	d := corrfuse.NewDataset()
	a := d.AddSource("copierA")
	b := d.AddSource("copierB")
	c := d.AddSource("indep")
	for i := 0; i < 160; i++ {
		tt := corrfuse.Triple{Subject: fmt.Sprintf("subject-%04d", i), Predicate: "p", Object: "v"}
		switch i % 8 {
		case 0, 1, 2:
			d.Observe(a, tt)
			d.Observe(b, tt)
			d.SetLabel(tt, corrfuse.True)
		case 3:
			d.Observe(a, tt)
			d.Observe(b, tt)
			d.Observe(c, tt)
			d.SetLabel(tt, corrfuse.True)
		case 4:
			d.Observe(a, tt)
			d.Observe(b, tt)
			d.SetLabel(tt, corrfuse.False)
		case 5:
			d.Observe(c, tt)
			d.SetLabel(tt, corrfuse.False)
		case 6, 7:
			d.Observe(a, tt)
			d.Observe(b, tt)
			if i%16 >= 8 {
				d.Observe(c, tt)
			}
		}
	}
	return d
}

// TestShardedDivergenceBoundCrossShard documents and bounds the
// approximation when correlations cross shards. Each shard estimates source
// quality and joint statistics from its own label slice, so the estimates
// are unbiased but noisier (the slice is ~1/N of the training data) and
// cross-shard joint support shrinks. The divergence observed here is a few
// percent; the test pins a 0.15 ceiling on per-triple divergence and
// requires both engines to classify every confident triple (monolithic
// probability outside [0.35, 0.65]) identically.
func TestShardedDivergenceBoundCrossShard(t *testing.T) {
	d := crossShardDataset(t)
	opts := corrfuse.Options{Method: corrfuse.PrecRecCorr, Smoothing: 0.1}
	mono, err := corrfuse.New(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Shards = nShards
	sharded, err := corrfuse.NewSharded(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	ids := providedIDs(d)
	monoP := mono.Score(ids)
	shardP := sharded.Score(ids)
	maxDiff := 0.0
	for i, id := range ids {
		diff := math.Abs(monoP[i] - shardP[i])
		if diff > maxDiff {
			maxDiff = diff
		}
		if monoP[i] > 0.65 || monoP[i] < 0.35 {
			if (monoP[i] > 0.5) != (shardP[i] > 0.5) {
				t.Errorf("%v: engines disagree on a confident triple: monolithic %.4f, sharded %.4f",
					d.Triple(id), monoP[i], shardP[i])
			}
		}
	}
	t.Logf("max cross-shard divergence over %d triples: %.6f", len(ids), maxDiff)
	if maxDiff > 0.15 {
		t.Fatalf("cross-shard divergence %.4f exceeds the documented 0.15 bound", maxDiff)
	}
}

// TestShardedOnlineRoutingParity: the sharded online scorer must agree with
// the monolithic one in the subject-scoped regime (provider-only evidence),
// and with the batch engine's own independence model for fresh claims.
func TestShardedOnlineRoutingParity(t *testing.T) {
	d := subjectPartitionedDataset(t)
	opts := corrfuse.Options{
		Method:    corrfuse.PrecRec,
		Scope:     corrfuse.NewScopeSubject(d),
		Smoothing: 0.1,
	}
	mono, err := corrfuse.New(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Shards = nShards
	sharded, err := corrfuse.NewSharded(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	monoInc, err := mono.Online(false)
	if err != nil {
		t.Fatal(err)
	}
	shardInc, err := sharded.Online(false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		tt := corrfuse.Triple{Subject: fmt.Sprintf("fresh-%03d", i), Predicate: "p", Object: "v"}
		sid := triple.SourceID(i % d.NumSources())
		pm, err := monoInc.Observe(sid, tt)
		if err != nil {
			t.Fatal(err)
		}
		ps, err := shardInc.Observe(sid, tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pm-ps) > 1e-9 {
			t.Errorf("claim %d: monolithic live %.9f, sharded live %.9f", i, pm, ps)
		}
	}
	if monoInc.Len() != shardInc.Len() {
		t.Errorf("Len: monolithic %d, sharded %d", monoInc.Len(), shardInc.Len())
	}
}

// TestNewModelDispatch: NewModel picks the engine by Options.Shards and
// Rebuild preserves it.
func TestNewModelDispatch(t *testing.T) {
	d := subjectPartitionedDataset(t)
	opts := corrfuse.Options{Method: corrfuse.PrecRecCorr, Smoothing: 0.1}
	m, err := corrfuse.NewModel(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.(*corrfuse.Fuser); !ok {
		t.Fatalf("Shards=0 built %T, want *Fuser", m)
	}
	opts.Shards = nShards
	m, err = corrfuse.NewModel(d, opts)
	if err != nil {
		t.Fatal(err)
	}
	sf, ok := m.(*corrfuse.ShardedFuser)
	if !ok {
		t.Fatalf("Shards=%d built %T, want *ShardedFuser", nShards, m)
	}
	if sf.NumShards() != nShards {
		t.Fatalf("NumShards = %d, want %d", sf.NumShards(), nShards)
	}
	stats := sf.ShardStats()
	if len(stats) != nShards {
		t.Fatalf("ShardStats has %d entries", len(stats))
	}
	total := 0
	for i, st := range stats {
		if st.Shard != i {
			t.Errorf("stats[%d].Shard = %d", i, st.Shard)
		}
		total += st.Triples
	}
	if total != d.NumTriples() {
		t.Errorf("shard stats cover %d triples, dataset has %d", total, d.NumTriples())
	}
	reb, err := corrfuse.Rebuild(m, d)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := reb.(*corrfuse.ShardedFuser); !ok {
		t.Fatalf("Rebuild of sharded model built %T", reb)
	}
}
