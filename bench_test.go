// Benchmarks regenerating every table and figure of the paper's evaluation
// (see DESIGN.md's per-experiment index, E1–E14). Each BenchmarkFig* runs
// the corresponding experiment end to end; the BenchmarkMethod* family
// measures per-method scoring cost on the simulated REVERB dataset,
// reproducing the *relative* runtimes of Figure 5b (Union ≪ PrecRec <
// 3-Estimates/LTM ≪ PrecRecCorr; elastic level 3 between PrecRec and exact).
//
// Run with: go test -bench=. -benchmem
package corrfuse_test

import (
	"fmt"
	"io"
	"testing"

	"corrfuse"
	"corrfuse/internal/baseline"
	"corrfuse/internal/cluster"
	"corrfuse/internal/core"
	"corrfuse/internal/dataset"
	"corrfuse/internal/experiments"
	"corrfuse/internal/quality"
	"corrfuse/internal/shard"
	"corrfuse/internal/triple"
)

// --- E1/E2/E4: Figure 1b, 1c and 3 (running-example tables) ---------------

func BenchmarkFig1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.PrintFig1b(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1c(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.PrintFig1c(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.PrintFig3(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E6–E8: Figure 4 (method suites on the simulated datasets) ------------

func benchFig4(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(name, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4aReVerb(b *testing.B)     { benchFig4(b, "reverb") }
func BenchmarkFig4bRestaurant(b *testing.B) { benchFig4(b, "restaurant") }
func BenchmarkFig4cBook(b *testing.B)       { benchFig4(b, "book") }

// --- E9: Figure 5a (elastic level sweep) -----------------------------------

func BenchmarkFig5aElasticLevels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, name := range []string{"reverb", "restaurant"} {
			if _, err := experiments.Fig5a(name, 1, 3); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- E10: Figure 5b (runtime table); the BenchmarkMethod* family below
// provides the per-cell measurements. ---------------------------------------

func BenchmarkFig5bRuntimes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, _, err := experiments.Fig5b(1); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E11–E13: Figure 6 (synthetic sweeps, reduced repetitions) -------------

func benchSweep(b *testing.B, cfg experiments.SweepConfig) {
	b.Helper()
	cfg.Reps = 2 // full paper setting is 10; 2 keeps the bench tractable
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunSweep(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6aLowPrecision(b *testing.B)  { benchSweep(b, experiments.Fig6a()) }
func BenchmarkFig6bHighPrecision(b *testing.B) { benchSweep(b, experiments.Fig6b()) }
func BenchmarkFig6cLowRecall(b *testing.B)     { benchSweep(b, experiments.Fig6c()) }

// --- E14: Figure 7 (correlated synthetic scenarios) ------------------------

func BenchmarkFig7Correlated(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(1, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 5b cells: per-method scoring cost on simulated REVERB ----------

// reverbFixture caches the dataset/estimator across benchmark runs.
type reverbFixture struct {
	d      *triple.Dataset
	est    *quality.Estimator
	ids    []triple.TripleID
	labels []bool
}

var reverbCache *reverbFixture

func reverbSetup(b *testing.B) *reverbFixture {
	b.Helper()
	if reverbCache != nil {
		return reverbCache
	}
	d, err := dataset.SimulatedReVerb(1)
	if err != nil {
		b.Fatal(err)
	}
	est, err := quality.NewEstimator(d, quality.Options{Alpha: experiments.DeriveAlpha(d)})
	if err != nil {
		b.Fatal(err)
	}
	fx := &reverbFixture{d: d, est: est}
	for i := 0; i < d.NumTriples(); i++ {
		id := triple.TripleID(i)
		if len(d.Providers(id)) > 0 {
			fx.ids = append(fx.ids, id)
			fx.labels = append(fx.labels, d.Label(id) == triple.True)
		}
	}
	reverbCache = fx
	return fx
}

func BenchmarkMethodUnion50(b *testing.B) {
	fx := reverbSetup(b)
	u, err := baseline.NewUnionK(fx.d, 50)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.Score(fx.ids)
	}
}

func BenchmarkMethodThreeEstimates(b *testing.B) {
	fx := reverbSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		te := baseline.NewThreeEstimates(fx.d, baseline.ThreeEstimatesOptions{})
		te.Score(fx.ids)
	}
}

func BenchmarkMethodLTM10Iter(b *testing.B) {
	fx := reverbSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := baseline.NewLTM(fx.d, baseline.LTMOptions{Iterations: 10, Seed: 1})
		m.Score(fx.ids)
	}
}

func BenchmarkMethodPrecRec(b *testing.B) {
	fx := reverbSetup(b)
	pr, err := core.NewPrecRec(core.Config{Dataset: fx.d, Params: fx.est})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr.Score(fx.ids)
	}
}

func BenchmarkMethodPrecRecCorrExact(b *testing.B) {
	fx := reverbSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex, err := core.NewExact(core.Config{Dataset: fx.d, Params: fx.est})
		if err != nil {
			b.Fatal(err)
		}
		ex.Score(fx.ids)
	}
}

func BenchmarkMethodPrecRecCorrAggressive(b *testing.B) {
	fx := reverbSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ag, err := core.NewAggressive(core.Config{Dataset: fx.d, Params: fx.est})
		if err != nil {
			b.Fatal(err)
		}
		ag.Score(fx.ids)
	}
}

func BenchmarkMethodPrecRecCorrElastic3(b *testing.B) {
	fx := reverbSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		el, err := core.NewElastic(core.Config{Dataset: fx.d, Params: fx.est}, 3)
		if err != nil {
			b.Fatal(err)
		}
		el.Score(fx.ids)
	}
}

// --- Ablations for design choices called out in DESIGN.md ------------------

// BenchmarkAblationPatternMemoOff measures exact scoring without the benefit
// of cross-triple pattern sharing by rebuilding the algorithm per triple.
func BenchmarkAblationPatternMemoOff(b *testing.B) {
	fx := reverbSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, id := range fx.ids[:200] {
			ex, err := core.NewExact(core.Config{Dataset: fx.d, Params: fx.est})
			if err != nil {
				b.Fatal(err)
			}
			ex.Probability(id)
		}
	}
}

// BenchmarkAblationPatternMemoOn is the memoized counterpart scoring the
// same 200 triples with one algorithm instance.
func BenchmarkAblationPatternMemoOn(b *testing.B) {
	fx := reverbSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex, err := core.NewExact(core.Config{Dataset: fx.d, Params: fx.est})
		if err != nil {
			b.Fatal(err)
		}
		for _, id := range fx.ids[:200] {
			ex.Probability(id)
		}
	}
}

// BenchmarkAblationElasticLevels shows the cost growth across λ (Prop 4.11:
// O(n^λ) per triple).
func BenchmarkAblationElasticLevels(b *testing.B) {
	fx := reverbSetup(b)
	for _, level := range []int{0, 1, 2, 3, 4} {
		level := level
		b.Run(levelName(level), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				el, err := core.NewElastic(core.Config{Dataset: fx.d, Params: fx.est}, level)
				if err != nil {
					b.Fatal(err)
				}
				el.Score(fx.ids)
			}
		})
	}
}

func levelName(l int) string {
	return "level-" + string(rune('0'+l))
}

// BenchmarkAblationParallelScoring contrasts serial and parallel scoring of
// the exact model on the simulated BOOK dataset (the paper notes the
// per-term independence parallelizes well).
func BenchmarkAblationParallelScoring(b *testing.B) {
	d, err := dataset.SimulatedBook(1)
	if err != nil {
		b.Fatal(err)
	}
	scope := triple.NewScopeSubject(d)
	est, err := quality.NewEstimator(d, quality.Options{
		Alpha: experiments.DeriveAlpha(d), Scope: scope, Smoothing: 0.5, MinJointSupport: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	clusters := cluster.Cluster(est, cluster.Options{MaxClusterSize: 6})
	var ids []triple.TripleID
	for i := 0; i < d.NumTriples(); i++ {
		if len(d.Providers(triple.TripleID(i))) > 0 {
			ids = append(ids, triple.TripleID(i))
		}
	}
	for _, workers := range []int{1, 4, 0} {
		workers := workers
		name := "serial"
		switch workers {
		case 4:
			name = "workers-4"
		case 0:
			name = "workers-max"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ex, err := core.NewExact(core.Config{Dataset: d, Params: est, Scope: scope, Clusters: clusters})
				if err != nil {
					b.Fatal(err)
				}
				core.ParallelScore(ex, ids, workers)
			}
		})
	}
}

// --- Sharded engine: rebuild and score vs the monolithic path --------------

// shardBenchOpts is the store-scale configuration the sharded benchmarks
// compare under: the exact correlation-aware method over forced correlation
// clusters — the paper's §5 configuration for wide sources, without which
// the single-cluster inclusion–exclusion over 24 sources is intractable.
func shardBenchOpts() corrfuse.Options {
	return corrfuse.Options{
		Method:         corrfuse.PrecRecCorr,
		Smoothing:      0.5,
		Alpha:          0.6,
		Clustering:     corrfuse.ClusterAlways,
		MaxClusterSize: 6,
	}
}

// shardBenchCache holds the ≥50k-triple synthetic store-scale dataset used
// by the BenchmarkShard* family (built once; the generators are
// deterministic).
var shardBenchCache *triple.Dataset

// shardBenchDataset synthesizes a store at the scale the ISSUE acceptance
// criterion names: ≥50k distinct triples from a wide source set — 48 groups
// of a copying pair plus an independent source (144 sources), 40% labeled.
// This is the training-bound regime that motivates sharding: quality
// estimation and pairwise correlation clustering over a wide source set are
// the serial wall of a monolithic rebuild (scoring already parallelizes via
// ParallelScore), and both partition cleanly by shard. Subjects spread
// uniformly over any shard count via the hash.
func shardBenchDataset(b *testing.B) *triple.Dataset {
	b.Helper()
	if shardBenchCache != nil {
		return shardBenchCache
	}
	const groups = 48
	d := triple.NewDataset()
	var copA, copB, ind [groups]triple.SourceID
	for g := 0; g < groups; g++ {
		copA[g] = d.AddSource(fmt.Sprintf("copierA-%d", g))
		copB[g] = d.AddSource(fmt.Sprintf("copierB-%d", g))
		ind[g] = d.AddSource(fmt.Sprintf("indep-%d", g))
	}
	const subjects = 13000
	n := 0
	for s := 0; s < subjects; s++ {
		sub := fmt.Sprintf("entity-%05d", s)
		for p := 0; p < 4; p++ {
			t := triple.Triple{Subject: sub, Predicate: fmt.Sprintf("p%d", p), Object: "v"}
			g := (s + p) % groups
			switch n % 5 {
			case 0, 1: // copied true-looking triple
				d.Observe(copA[g], t)
				d.Observe(copB[g], t)
			case 2: // corroborated by the independent source
				d.Observe(copA[g], t)
				d.Observe(copB[g], t)
				d.Observe(ind[g], t)
			case 3: // independent-only
				d.Observe(ind[g], t)
			case 4: // copied mistake candidate
				d.Observe(copA[g], t)
				d.Observe(copB[g], t)
			}
			if n%10 < 4 { // 40% labeled; mistakes false, the rest true
				if n%5 == 4 || (n%5 == 3 && n%20 >= 10) {
					d.SetLabel(t, triple.False)
				} else {
					d.SetLabel(t, triple.True)
				}
			}
			n++
		}
	}
	if d.NumTriples() < 50000 {
		b.Fatalf("benchmark dataset has %d triples, need >= 50k", d.NumTriples())
	}
	shardBenchCache = d
	return d
}

// BenchmarkShardTrainMonolithic measures the single-threaded wall the
// sharded engine removes: monolithic model training (quality estimation +
// pairwise correlation clustering) over the whole store. Scoring is NOT
// included here — it already parallelizes via ParallelScore; training is
// the serial section that caps rebuild scaling.
func BenchmarkShardTrainMonolithic(b *testing.B) {
	d := shardBenchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := corrfuse.New(d, shardBenchOpts()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardTrainSharded8 is the sharded counterpart: partition plus 8
// concurrent shard trainings. On a multicore runner this is where the ≥3×
// rebuild speedup comes from.
func BenchmarkShardTrainSharded8(b *testing.B) {
	d := shardBenchDataset(b)
	opts := shardBenchOpts()
	opts.Shards = 8
	opts.RebuildWorkers = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := corrfuse.NewSharded(d, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardRebuildMonolithic is the baseline the acceptance criterion
// measures against: one monolithic train-and-fuse over the whole store.
func BenchmarkShardRebuildMonolithic(b *testing.B) {
	d := shardBenchDataset(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f, err := corrfuse.New(d, shardBenchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := f.Fuse(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardRebuildSharded8 is the sharded counterpart: partition,
// train 8 shard models concurrently, fuse and merge. On a multicore runner
// this is the ≥3× path; the per-shard timings land in ShardStats.
func BenchmarkShardRebuildSharded8(b *testing.B) {
	d := shardBenchDataset(b)
	opts := shardBenchOpts()
	opts.Shards = 8
	opts.RebuildWorkers = 8
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sf, err := corrfuse.NewSharded(d, opts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sf.Fuse(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardScoreMonolithic scores every triple with the prebuilt
// monolithic model (ParallelScore inside). providedIDs lives in
// shard_differential_test.go (same package).
func BenchmarkShardScoreMonolithic(b *testing.B) {
	d := shardBenchDataset(b)
	f, err := corrfuse.New(d, shardBenchOpts())
	if err != nil {
		b.Fatal(err)
	}
	ids := providedIDs(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Score(ids)
	}
}

// BenchmarkShardScoreSharded8 scores every triple with the prebuilt sharded
// model (shards scored concurrently).
func BenchmarkShardScoreSharded8(b *testing.B) {
	d := shardBenchDataset(b)
	opts := shardBenchOpts()
	opts.Shards = 8
	opts.RebuildWorkers = 8
	sf, err := corrfuse.NewSharded(d, opts)
	if err != nil {
		b.Fatal(err)
	}
	ids := providedIDs(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sf.Score(ids)
	}
}

// --- Dirty-shard partial rebuilds: wall time ∝ dirty fraction --------------

// dirtyShardMutation clones the 52k-triple store-scale dataset and adds a
// handful of unlabeled claims per dirty shard (existing sources, existing
// subjects), the change profile of a heavy ingest stream between refreshes.
// Labels stay untouched, so the partial rebuild's fallback-reuse fast path
// applies and the rebuild is exact.
func dirtyShardMutation(b *testing.B, d *triple.Dataset, shards int, dirty []int) *triple.Dataset {
	b.Helper()
	d2 := d.Clone()
	want := make(map[int]int, len(dirty))
	for _, g := range dirty {
		want[g] = 32 // new claims per dirty shard
	}
	src, ok := d2.SourceID("indep-0")
	if !ok {
		b.Fatal("benchmark dataset misses indep-0")
	}
	for s := 0; s < 13000; s++ {
		sub := fmt.Sprintf("entity-%05d", s)
		g := shard.Of(sub, shards)
		if want[g] == 0 {
			continue
		}
		want[g]--
		d2.Observe(src, triple.Triple{Subject: sub, Predicate: "p-fresh", Object: "v"})
	}
	for g, left := range want {
		if left > 0 {
			b.Fatalf("shard %d short %d mutation subjects", g, left)
		}
	}
	return d2
}

// benchRebuildDirty measures RebuildPartial over the 52k-triple store with
// the given dirty shards of 8: the refresh path's model-retraining cost when
// only a fraction of the subject space changed since the last snapshot.
func benchRebuildDirty(b *testing.B, dirty []int) {
	d := shardBenchDataset(b)
	opts := shardBenchOpts()
	opts.Shards = 8
	opts.RebuildWorkers = 8
	sf, err := corrfuse.NewSharded(d, opts)
	if err != nil {
		b.Fatal(err)
	}
	d2 := dirtyShardMutation(b, d, opts.Shards, dirty)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next, err := sf.RebuildPartial(d2, dirty)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reused := 0
			for _, st := range next.ShardStats() {
				if st.Reused {
					reused++
				}
			}
			if reused != opts.Shards-len(dirty) {
				b.Fatalf("reused %d shards, want %d", reused, opts.Shards-len(dirty))
			}
		}
	}
}

// BenchmarkRebuildDirty1of8 is the acceptance benchmark: retraining 1 dirty
// shard of 8 must land well below the full-rebuild wall
// (BenchmarkRebuildFull8of8 / BenchmarkShardTrainSharded8).
func BenchmarkRebuildDirty1of8(b *testing.B) { benchRebuildDirty(b, []int{0}) }

// BenchmarkRebuildDirty4of8 shows the wall time growing with the dirty
// fraction, not the store size.
func BenchmarkRebuildDirty4of8(b *testing.B) { benchRebuildDirty(b, []int{0, 1, 2, 3}) }

// BenchmarkRebuildFull8of8 drives the same partial path with every shard
// dirty — the full-rebuild baseline through identical code, making the
// 1-of-8 / 4-of-8 / 8-of-8 proportionality directly comparable.
func BenchmarkRebuildFull8of8(b *testing.B) { benchRebuildDirty(b, []int{0, 1, 2, 3, 4, 5, 6, 7}) }

// BenchmarkEstimatorJointStats measures the bitset-backed joint statistics.
func BenchmarkEstimatorJointStats(b *testing.B) {
	d, err := dataset.SimulatedBook(1)
	if err != nil {
		b.Fatal(err)
	}
	est, err := quality.NewEstimator(d, quality.Options{Alpha: 0.34, Smoothing: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	subset := []triple.SourceID{0, 1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Vary the subset so the memo cache does not absorb the work.
		s := subset
		s[4] = triple.SourceID(5 + i%300)
		if _, ok := est.JointRecall(s); !ok {
			continue
		}
	}
}
