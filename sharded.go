package corrfuse

import (
	"fmt"
	"time"

	"corrfuse/internal/quality"
	"corrfuse/internal/shard"
	"corrfuse/internal/triple"
)

// Model is the common read surface of the monolithic Fuser and the
// ShardedFuser, so callers (notably internal/serve) can swap engines without
// caring which one is behind a snapshot. Both implementations are immutable
// and safe for concurrent use after construction.
type Model interface {
	MethodName() string
	Probability(t Triple) (p float64, ok bool)
	ProbabilityByID(id TripleID) float64
	Score(ids []TripleID) []float64
	Decide(t Triple) (accepted, known bool)
	Fuse() (*Result, error)
	// FrozenScores freezes the model on first call and returns the dense
	// per-TripleID score tables, shared (not copied) with the model's
	// immutable index; callers must not mutate them.
	FrozenScores() (probs []float64, provided, accepted []bool)
	Dataset() *Dataset
	Options() Options
	// Online derives an incremental scorer from the trained quality
	// model; it fails for methods without one (the unsupervised
	// baselines).
	Online(penalizeSilence bool) (OnlineScorer, error)
}

// OnlineScorer is the surface of the O(1)-update online scorers: the
// monolithic Incremental and the subject-hash-routed ShardedIncremental.
// Implementations are NOT internally synchronized; callers serialize access
// (internal/serve guards its scorer with the live lock).
type OnlineScorer interface {
	Observe(s SourceID, t Triple) (float64, error)
	Probability(t Triple) (p float64, ok bool)
	Providers(t Triple) int
	Len() int
}

// NewModel builds the fusion model selected by opts: a ShardedFuser when
// opts.Shards > 1, the monolithic Fuser otherwise.
func NewModel(d *Dataset, opts Options) (Model, error) {
	if opts.Shards > 1 {
		return NewSharded(d, opts)
	}
	return New(d, opts)
}

// Rebuild trains a fresh model of the same kind as m over d, re-deriving
// dataset-bound options the way Fuser.Rebuild does.
func Rebuild(m Model, d *Dataset) (Model, error) {
	switch f := m.(type) {
	case *Fuser:
		return f.Rebuild(d)
	case *ShardedFuser:
		return f.Rebuild(d)
	default:
		return nil, fmt.Errorf("corrfuse: cannot rebuild model of type %T", m)
	}
}

// Online derives an OnlineScorer from the monolithic Fuser's quality model;
// it is Incremental behind the Model interface.
func (f *Fuser) Online(penalizeSilence bool) (OnlineScorer, error) {
	inc, err := f.Incremental(penalizeSilence)
	if err != nil {
		return nil, err
	}
	return inc, nil
}

// ShardStat reports one shard's size and build cost.
type ShardStat struct {
	// Shard is the shard index.
	Shard int
	// Triples is the number of distinct triples routed to the shard.
	Triples int
	// Labeled is the number of labeled triples in the shard's training
	// slice.
	Labeled int
	// Build is the wall time of the shard's model build. For a shard
	// adopted by RebuildPartial it is the build time of the adopted model,
	// not of the adoption (which is near-free).
	Build time.Duration
	// Reused reports that RebuildPartial adopted the previous model's
	// Fuser for this shard instead of retraining it.
	Reused bool
}

// ShardedFuser is a subject-hash-sharded fusion engine: the dataset is
// partitioned into Options.Shards shards (every triple about one subject
// lands in the same shard), an independent Fuser is trained per shard
// concurrently, and queries are routed by subject hash. It implements the
// same Probability/Score/Fuse surface as the monolithic Fuser over the
// global dataset's TripleIDs, with Fuse merging the shard results into one
// globally ranked Result.
//
// Consistency contract. Each shard trains its quality estimator and
// correlation clusters on its own label slice, so the sharded model equals
// the monolithic one exactly when quality evidence and correlation are
// subject-scoped and no source's data crosses shards — with
// Options.Scope = NewScopeSubject and sources whose subjects all hash to
// one shard, probabilities agree to floating-point roundoff (see
// shard_differential_test.go). When a source's labels or a correlated
// group's co-provisions spread over several shards, each shard estimates
// from its slice: expectations are unchanged but estimator variance grows
// roughly with the shard count, and cross-shard joint statistics lose
// support (falling back to independence). Sources absent from a shard's
// label slice inherit their globally estimated quality rather than
// degenerate zero-precision estimates.
type ShardedFuser struct {
	d      *Dataset
	opts   Options
	part   *shard.Partition
	fusers []*Fuser
	stats  []ShardStat

	// fallback is the globally trained quality estimator handed to the
	// per-shard builds (nil when no shard needed it). RebuildPartial
	// reuses it verbatim when no rebuilt shard's labeled slice changed.
	fallback quality.Params

	// fr is the frozen score index in global TripleID space; see Freeze.
	fr frozen
}

// NewSharded builds a sharded fusion engine over d with opts.Shards shards,
// training the shard models concurrently on Options.RebuildWorkers
// goroutines (0 = GOMAXPROCS).
func NewSharded(d *Dataset, opts Options) (*ShardedFuser, error) {
	if d == nil {
		return nil, fmt.Errorf("corrfuse: nil dataset")
	}
	if opts.Shards < 2 {
		return nil, fmt.Errorf("corrfuse: NewSharded needs Shards >= 2, got %d", opts.Shards)
	}
	if opts.Scope == nil {
		opts.Scope = ScopeGlobal{}
	}
	sf := &ShardedFuser{
		d:      d,
		opts:   opts,
		part:   shard.New(d, opts.Shards, opts.RebuildWorkers),
		fusers: make([]*Fuser, opts.Shards),
		stats:  make([]ShardStat, opts.Shards),
	}

	// Shard options: a caller-supplied Train set holds global TripleIDs,
	// which are translated per shard through the partition so every shard
	// trains on exactly the slice of the restriction it owns (nil keeps
	// the default: all labeled triples). Parallelism is forced serial
	// inside a shard — the ShardedFuser parallelizes across shards and
	// keeps one level of workers.
	sub := opts
	sub.Shards = 0
	sub.Train = nil
	sub.Parallelism = 1
	var trainPerShard [][]TripleID
	if opts.Train != nil {
		trainPerShard = make([][]TripleID, opts.Shards)
		for _, id := range opts.Train {
			si, local := sf.part.Locate(id)
			trainPerShard[si] = append(trainPerShard[si], local)
		}
	}

	// For supervised methods, a globally trained estimator serves as the
	// per-source quality fallback for sources a shard has no labeled
	// evidence about. It is only built when some shard actually needs it
	// (a cheap pre-pass over the label slices), keeping the serial
	// fraction of a sharded rebuild minimal when labels cover every
	// source everywhere. A globally label-less dataset always needs it,
	// so the build surfaces "no true labels" as one clear error, exactly
	// like the monolithic path.
	if supervised(opts.Method) && anyShardNeedsFallback(sf.part, trainPerShard) {
		est, err := quality.NewEstimator(d, quality.Options{
			Alpha:     effectiveAlpha(opts.Alpha),
			Scope:     opts.Scope,
			Smoothing: opts.Smoothing,
			Train:     opts.Train,
		})
		if err != nil {
			return nil, err
		}
		sub.qualityFallback = est
		sf.fallback = est
	}

	toBuild := make([]int, opts.Shards)
	for i := range toBuild {
		toBuild[i] = i
	}
	if err := sf.buildShardFusers(toBuild, sub, trainPerShard); err != nil {
		return nil, err
	}
	return sf, nil
}

// buildShardFusers trains the shard models for the given shard indexes
// concurrently (Options.RebuildWorkers goroutines), filling sf.fusers and
// sf.stats. trainPerShard, when non-nil, restricts each shard's training
// slice (shard-local IDs); nil keeps the default (all labeled triples).
func (sf *ShardedFuser) buildShardFusers(toBuild []int, sub Options, trainPerShard [][]TripleID) error {
	subjectScoped := false
	if _, ok := sf.opts.Scope.(*triple.ScopeSubject); ok {
		subjectScoped = true
	}
	return shard.ForEach(len(toBuild), sf.opts.RebuildWorkers, func(k int) error {
		i := toBuild[k]
		begin := time.Now()
		so := sub
		if trainPerShard != nil {
			// An empty (non-nil) slice keeps the restriction: a shard
			// owning no training triple must not widen to all labels.
			so.Train = trainPerShard[i]
			if so.Train == nil {
				so.Train = []TripleID{}
			}
		}
		if subjectScoped {
			// Re-index subject coverage for the shard's dataset. The
			// subject-hash partition keeps a subject's triples in one
			// shard, so the shard-local index equals the global one
			// restricted to the shard.
			so.Scope = NewScopeSubject(sf.part.Shard(i))
		}
		f, err := New(sf.part.Shard(i), so)
		if err != nil {
			return fmt.Errorf("corrfuse: shard %d: %w", i, err)
		}
		sf.fusers[i] = f
		sf.stats[i] = ShardStat{
			Shard:   i,
			Triples: sf.part.Shard(i).NumTriples(),
			Labeled: len(sf.part.Shard(i).Labeled()),
			Build:   time.Since(begin),
		}
		return nil
	})
}

// anyShardNeedsFallback reports whether any shard's training slice misses a
// source entirely (no labeled triple provided) or has no true labels — the
// two situations where per-shard estimation needs the global fallback.
// trainPerShard, when non-nil, restricts each shard's slice the way the
// shard estimators will be restricted (shard-local IDs); nil means all
// labeled triples.
func anyShardNeedsFallback(p *shard.Partition, trainPerShard [][]TripleID) bool {
	for i := 0; i < p.NumShards(); i++ {
		sd := p.Shard(i)
		slice := sd.Labeled()
		if trainPerShard != nil {
			slice = trainPerShard[i]
		}
		provided := make([]bool, sd.NumSources())
		hasTrue := false
		for _, id := range slice {
			if sd.Label(id) == Unknown {
				continue
			}
			if sd.Label(id) == True {
				hasTrue = true
			}
			for _, s := range sd.Providers(id) {
				provided[s] = true
			}
		}
		if !hasTrue {
			return true
		}
		for _, ok := range provided {
			if !ok {
				return true
			}
		}
	}
	return false
}

// supervised reports whether the method trains a quality estimator.
func supervised(m Method) bool {
	switch m {
	case PrecRec, PrecRecCorr, PrecRecCorrAggressive, PrecRecCorrElastic:
		return true
	}
	return false
}

// effectiveAlpha applies New's Alpha defaulting.
func effectiveAlpha(alpha float64) float64 {
	if alpha == 0 {
		return 0.5
	}
	return alpha
}

// NumShards returns the shard count.
func (sf *ShardedFuser) NumShards() int { return len(sf.fusers) }

// ShardStats returns per-shard sizes and build timings, in shard order.
func (sf *ShardedFuser) ShardStats() []ShardStat {
	out := make([]ShardStat, len(sf.stats))
	copy(out, sf.stats)
	return out
}

// ShardFuser returns shard i's trained Fuser (its TripleIDs are local to the
// shard's dataset). Exposed for inspection and tests.
func (sf *ShardedFuser) ShardFuser(i int) *Fuser { return sf.fusers[i] }

// PartitionTimings returns the stage costs of the partition build behind
// this engine (serial routing pass, concurrent shard dataset builds) — the
// partition share of a rebuild's wall time, surfaced by the service's
// corrfused_rebuild_stage_seconds metrics.
func (sf *ShardedFuser) PartitionTimings() shard.Timings { return sf.part.Timings() }

// MethodName returns the underlying method name tagged with the shard count.
func (sf *ShardedFuser) MethodName() string {
	return fmt.Sprintf("%s/%d-sharded", sf.fusers[0].MethodName(), len(sf.fusers))
}

// Dataset returns the global dataset the engine was built over.
func (sf *ShardedFuser) Dataset() *Dataset { return sf.d }

// Options returns the effective options the engine was built with.
func (sf *ShardedFuser) Options() Options { return sf.opts }

// shardFor routes a triple to its shard's Fuser by subject hash.
func (sf *ShardedFuser) shardFor(t Triple) *Fuser {
	return sf.fusers[shard.Of(t.Subject, len(sf.fusers))]
}

// Probability returns Pr(t true | observations) for a triple present in the
// dataset; ok is false when the triple is unknown.
func (sf *ShardedFuser) Probability(t Triple) (p float64, ok bool) {
	return sf.shardFor(t).Probability(t)
}

// ProbabilityByID returns Pr(t true | observations) for a global TripleID.
// After Freeze the value is an O(1) read from the frozen score index.
func (sf *ShardedFuser) ProbabilityByID(id TripleID) float64 {
	if p, _, ok := sf.fr.lookup(id); ok {
		return p
	}
	si, local := sf.part.Locate(id)
	return sf.fusers[si].ProbabilityByID(local)
}

// Decide reports whether the triple is accepted as true.
func (sf *ShardedFuser) Decide(t Triple) (accepted, known bool) {
	return sf.shardFor(t).Decide(t)
}

// Score computes probabilities for the given global TripleIDs. After Freeze
// every provided ID is an O(1) index read; before, the shards score
// concurrently with Options.Parallelism workers (0 = GOMAXPROCS,
// 1 = serial).
func (sf *ShardedFuser) Score(ids []TripleID) []float64 {
	if sf.fr.ready.Load() {
		return sf.fr.score(ids, sf.scoreModel)
	}
	return sf.scoreModel(ids)
}

// scoreModel routes the IDs to their shards and scores them there (the
// pre-freeze path).
func (sf *ShardedFuser) scoreModel(ids []TripleID) []float64 {
	out := make([]float64, len(ids))
	n := len(sf.fusers)
	perShard := make([][]TripleID, n)
	perIdx := make([][]int, n)
	for i, id := range ids {
		si, local := sf.part.Locate(id)
		perShard[si] = append(perShard[si], local)
		perIdx[si] = append(perIdx[si], i)
	}
	// Scoring cannot fail; ForEach's error path is unused here.
	shard.ForEach(n, sf.opts.Parallelism, func(si int) error {
		if len(perShard[si]) == 0 {
			return nil
		}
		for j, p := range sf.fusers[si].Score(perShard[si]) {
			out[perIdx[si][j]] = p
		}
		return nil
	})
	return out
}

// Freeze freezes every shard's score index concurrently (with
// Options.Parallelism workers) and assembles the merged, globally ranked
// tables in global TripleID space. It is idempotent and safe for concurrent
// use; Fuse calls it implicitly. A shard adopted by RebuildPartial keeps its
// frozen index (its dataset is verified identical), so a partial rebuild
// only rescores the retrained shards.
func (sf *ShardedFuser) Freeze() {
	sf.fr.once.Do(func() {
		n := len(sf.fusers)
		// Scoring cannot fail; ForEach's error path is unused here.
		shard.ForEach(n, sf.opts.Parallelism, func(si int) error {
			sf.fusers[si].Freeze()
			return nil
		})
		nt := sf.d.NumTriples()
		probs := make([]float64, nt)
		provided := make([]bool, nt)
		accepted := make([]bool, nt)
		for si, f := range sf.fusers {
			for lid, ok := range f.fr.provided {
				if !ok {
					continue
				}
				gid := sf.part.GlobalID(si, TripleID(lid))
				probs[gid] = f.fr.probs[lid]
				provided[gid] = true
				accepted[gid] = f.fr.accepted[lid]
			}
		}
		sf.fr.probs = probs
		sf.fr.provided = provided
		sf.fr.accepted = accepted
		sf.fr.ready.Store(true)
	})
}

// FrozenScores freezes the engine (if it is not already) and returns the
// dense score tables in global TripleID space; see Fuser.FrozenScores for
// the sharing contract.
func (sf *ShardedFuser) FrozenScores() (probs []float64, provided, accepted []bool) {
	sf.Freeze()
	return sf.fr.probs, sf.fr.provided, sf.fr.accepted
}

// Fuse scores every provided triple shard by shard and merges the shard
// results into one globally ranked Result keyed by global TripleIDs. Unlike
// chaining the per-shard Fuse results, the merge ranks once globally —
// per-shard orderings would be thrown away anyway. The first call freezes
// the score index (see Freeze) and ranks it; every subsequent call returns
// copies of the frozen ranking without rescoring or re-sorting.
func (sf *ShardedFuser) Fuse() (*Result, error) {
	sf.Freeze()
	return sf.fr.rankedResult(sf.d), nil
}

// Rebuild trains a new ShardedFuser over d with this engine's options,
// mirroring Fuser.Rebuild: Train is cleared (its IDs belong to the original
// dataset) and a subject scope is re-indexed for d.
func (sf *ShardedFuser) Rebuild(d *Dataset) (*ShardedFuser, error) {
	if d == nil {
		return nil, fmt.Errorf("corrfuse: Rebuild with nil dataset")
	}
	opts := sf.opts
	opts.Train = nil
	if _, ok := opts.Scope.(*triple.ScopeSubject); ok {
		opts.Scope = NewScopeSubject(d)
	}
	return NewSharded(d, opts)
}

// RebuildPartial trains a new ShardedFuser over d retraining only the dirty
// shards; every other shard's immutable Fuser and stats are adopted from
// this engine verbatim. dirty holds the indexes of shards whose subjects may
// have changed since this engine's dataset was captured (e.g. from the
// store's per-shard version counters); out-of-range indexes are an error,
// duplicates are fine. Like Rebuild, Train is cleared and a subject scope is
// re-indexed for d. An engine that was itself built under a Train
// restriction delegates to Rebuild: its shard models bake that restriction
// in, so none of them may be adopted into the unrestricted result.
//
// Adoption is verified, not assumed: a shard is only reused when its slice
// of d is positionally identical to this engine's (same triples, labels and
// providers — see shard.RebuildPartial), so an understated dirty set
// degrades to retraining the changed shard, never to serving a stale model.
// A changed source table disables adoption entirely (every shard scores
// against the full source table).
//
// Exactness. A reused shard's Fuser was trained on a dataset identical to
// the one a full rebuild would train on, so RebuildPartial equals a full
// sharded rebuild exactly whenever the global quality fallback is unused or
// unchanged. The fallback (the globally trained estimator backing sources a
// shard has no labeled evidence about) is re-derived only when a retrained
// shard's labeled slice changed — labels added, removed, flipped, or a
// labeled triple's provenance changed — or when the source table changed
// (the old estimator's tables are indexed by the old table); reused shards
// then keep the quality
// they were built with until their shard next changes (or a full Rebuild).
// Under subject scope a new unlabeled triple can also shift the global
// estimator by widening a source's coverage; that drift is bounded by the
// same argument as cross-shard estimation (see the consistency contract
// above) and is the price of not retraining clean shards.
func (sf *ShardedFuser) RebuildPartial(d *Dataset, dirty []int) (*ShardedFuser, error) {
	if d == nil {
		return nil, fmt.Errorf("corrfuse: RebuildPartial with nil dataset")
	}
	if sf.opts.Train != nil {
		// This engine's shard models (and fallback estimator) were
		// trained under a Train restriction that any rebuild clears —
		// adopting them would mix restricted and unrestricted training
		// in one model. Fall back to the full rebuild the contract is
		// stated against.
		return sf.Rebuild(d)
	}
	n := len(sf.fusers)
	keep := make([]bool, n)
	for i := range keep {
		keep[i] = true
	}
	for _, si := range dirty {
		if si < 0 || si >= n {
			return nil, fmt.Errorf("corrfuse: RebuildPartial: shard %d out of range [0,%d)", si, n)
		}
		keep[si] = false
	}
	opts := sf.opts
	opts.Train = nil
	if _, ok := opts.Scope.(*triple.ScopeSubject); ok {
		opts.Scope = NewScopeSubject(d)
	}

	part, reused, sameSources := shard.RebuildPartial(d, sf.part, keep, opts.RebuildWorkers)
	next := &ShardedFuser{
		d:      d,
		opts:   opts,
		part:   part,
		fusers: make([]*Fuser, n),
		stats:  make([]ShardStat, n),
	}
	var toBuild []int
	labelsChanged := false
	for si := 0; si < n; si++ {
		if reused[si] {
			next.fusers[si] = sf.fusers[si]
			next.stats[si] = sf.stats[si]
			next.stats[si].Reused = true
			continue
		}
		toBuild = append(toBuild, si)
		if !labeledSliceUnchanged(sf.part.Shard(si), part.Shard(si)) {
			labelsChanged = true
		}
	}

	sub := opts
	sub.Shards = 0
	sub.Train = nil
	sub.Parallelism = 1
	if supervised(opts.Method) && anyShardNeedsFallback(part, nil) {
		fb := sf.fallback
		// A changed source table makes the previous estimator unusable
		// regardless of labels: its per-source tables are sized and
		// indexed by the old table.
		if fb == nil || labelsChanged || !sameSources {
			est, err := quality.NewEstimator(d, quality.Options{
				Alpha:     effectiveAlpha(opts.Alpha),
				Scope:     opts.Scope,
				Smoothing: opts.Smoothing,
			})
			if err != nil {
				return nil, err
			}
			fb = est
		}
		sub.qualityFallback = fb
		next.fallback = fb
	}
	if err := next.buildShardFusers(toBuild, sub, nil); err != nil {
		return nil, err
	}
	return next, nil
}

// labeledSliceUnchanged reports whether two captures of one shard carry the
// same labeled slice: the same labeled triples with the same labels and the
// same providers. This is exactly the evidence the global quality fallback
// estimator is counted from, so an unchanged slice in every retrained shard
// means the previous fallback is still exact (clean shards are unchanged by
// definition).
func labeledSliceUnchanged(old, new *triple.Dataset) bool {
	ol, nl := old.Labeled(), new.Labeled()
	if len(ol) != len(nl) {
		return false
	}
	for _, id := range nl {
		t := new.Triple(id)
		oid, ok := old.TripleID(t)
		if !ok || old.Label(oid) != new.Label(id) {
			return false
		}
		po, pn := old.Providers(oid), new.Providers(id)
		if len(po) != len(pn) {
			return false
		}
		for k := range po {
			if po[k] != pn[k] {
				return false
			}
		}
	}
	return true
}

// Online derives a subject-hash-routed online scorer: one Incremental per
// shard, each seeded with its shard's quality model, behind the routing
// function the batch engine uses. It fails when the underlying method has
// no quality model.
func (sf *ShardedFuser) Online(penalizeSilence bool) (OnlineScorer, error) {
	incs := make([]*Incremental, len(sf.fusers))
	for i, f := range sf.fusers {
		inc, err := f.Incremental(penalizeSilence)
		if err != nil {
			return nil, fmt.Errorf("corrfuse: shard %d: %w", i, err)
		}
		incs[i] = inc
	}
	return &ShardedIncremental{incs: incs}, nil
}

// ShardedIncremental routes online claims to per-shard incremental scorers
// by subject hash, so live probabilities agree with the shard that will
// score the triple at the next batch rebuild. Like Incremental, it is not
// internally synchronized.
type ShardedIncremental struct {
	incs []*Incremental
}

func (si *ShardedIncremental) route(t Triple) *Incremental {
	return si.incs[shard.Of(t.Subject, len(si.incs))]
}

// Observe records that source s provides t, updating the owning shard's
// scorer in O(1). It returns the updated probability.
func (si *ShardedIncremental) Observe(s SourceID, t Triple) (float64, error) {
	return si.route(t).Observe(s, t)
}

// Probability returns the current probability of t; ok is false for triples
// never observed.
func (si *ShardedIncremental) Probability(t Triple) (p float64, ok bool) {
	return si.route(t).Probability(t)
}

// Providers returns how many sources currently provide t.
func (si *ShardedIncremental) Providers(t Triple) int {
	return si.route(t).Providers(t)
}

// Len returns the number of distinct triples observed across all shards.
func (si *ShardedIncremental) Len() int {
	n := 0
	for _, inc := range si.incs {
		n += inc.Len()
	}
	return n
}
