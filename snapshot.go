package corrfuse

import (
	"fmt"

	"corrfuse/internal/triple"
)

// Rebuild trains a new Fuser over d with this Fuser's options. A Fuser is
// immutable once built; Rebuild is the path by which a long-running system
// folds newly accumulated observations into a fresh model and atomically
// swaps it in (see internal/serve).
//
// Two options are re-derived rather than copied verbatim:
//
//   - Train is cleared: it holds TripleIDs of the original dataset, which
//     are meaningless in d, so the new model trains on every labeled triple
//     of d.
//   - A subject scope (NewScopeSubject) is re-indexed for d; its per-source
//     subject coverage is dataset-specific. ScopeGlobal and custom
//     dataset-agnostic scopes are kept as-is.
func (f *Fuser) Rebuild(d *Dataset) (*Fuser, error) {
	if d == nil {
		return nil, fmt.Errorf("corrfuse: Rebuild with nil dataset")
	}
	opts := f.opts
	opts.Train = nil
	if _, ok := opts.Scope.(*triple.ScopeSubject); ok {
		opts.Scope = NewScopeSubject(d)
	}
	return New(d, opts)
}

// Dataset returns the dataset the Fuser was trained on. The dataset must
// not be mutated while the Fuser is in use.
func (f *Fuser) Dataset() *Dataset { return f.d }

// Options returns the effective options the Fuser was built with (after
// defaulting).
func (f *Fuser) Options() Options { return f.opts }
