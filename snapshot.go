package corrfuse

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"corrfuse/internal/triple"
)

// frozen is a model's immutable score index: every provided triple's
// probability and acceptance decision, computed once by Freeze, plus the
// globally ranked result lists. After Freeze, the model's read surface
// (Probability, Score, Fuse) serves from these tables in O(1) per triple
// instead of re-running the fusion algorithm per call — the shape the
// serving layer's per-snapshot read index is built from.
//
// ready is only set after every table is fully written (inside the Once),
// so lock-free readers either see the complete index or take the compute
// path; both return identical values because the tables hold the
// algorithm's own outputs verbatim.
type frozen struct {
	once  sync.Once
	ready atomic.Bool

	// Dense by TripleID; provided marks the IDs the tables cover (triples
	// with at least one provider). Unprovided IDs keep the compute path:
	// their probabilities are rarely asked for and freezing them would
	// change no served value, only pre-pay cost.
	probs    []float64
	provided []bool
	accepted []bool

	// all and acceptedRank are the ranked result lists Fuse returns
	// (descending probability, stable within equal scores). They are built
	// lazily by rankedResult on the first Fuse call — the serving layer
	// reads only the tables above, so a model that is frozen but never
	// fused pays no sort and pins no ScoredTriple lists.
	rankOnce     sync.Once
	all          []ScoredTriple
	acceptedRank []ScoredTriple
}

// rankedResult builds the ranked result lists from the frozen tables once
// (dataset order in, stable descending-probability sort) and returns a
// fresh Result backed by copies, so callers may reorder or filter (e.g.
// ResolveSingleValued) without corrupting the shared lists. d must be the
// dataset the tables are dense over.
func (fr *frozen) rankedResult(d *Dataset) *Result {
	fr.rankOnce.Do(func() {
		var all, acc []ScoredTriple
		for i, ok := range fr.provided {
			if !ok {
				continue
			}
			id := TripleID(i)
			st := ScoredTriple{Triple: d.Triple(id), ID: id, Probability: fr.probs[i]}
			all = append(all, st)
			if fr.accepted[i] {
				acc = append(acc, st)
			}
		}
		sortByProb(all)
		sortByProb(acc)
		fr.all = all
		fr.acceptedRank = acc
	})
	return &Result{
		All:      append([]ScoredTriple(nil), fr.all...),
		Accepted: append([]ScoredTriple(nil), fr.acceptedRank...),
	}
}

// lookup reads one ID from the frozen tables. ok is false while the tables
// are not ready or for IDs outside the provided set — callers then fall
// back to the compute path.
func (fr *frozen) lookup(id TripleID) (p float64, accepted, ok bool) {
	if !fr.ready.Load() || int(id) >= len(fr.provided) || !fr.provided[id] {
		return 0, false, false
	}
	return fr.probs[id], fr.accepted[id], true
}

// score answers a Score call from the frozen tables, falling back to
// slowPath for the (rare) IDs outside the provided set.
func (fr *frozen) score(ids []TripleID, slowPath func([]TripleID) []float64) []float64 {
	out := make([]float64, len(ids))
	var slowIdx []int
	var slow []TripleID
	for i, id := range ids {
		if p, _, ok := fr.lookup(id); ok {
			out[i] = p
			continue
		}
		slowIdx = append(slowIdx, i)
		slow = append(slow, id)
	}
	if len(slow) > 0 {
		for j, p := range slowPath(slow) {
			out[slowIdx[j]] = p
		}
	}
	return out
}

// sortByProb ranks scored triples by descending probability, stable within
// equal scores (so dataset order breaks ties, deterministically).
func sortByProb(list []ScoredTriple) {
	sort.SliceStable(list, func(a, b int) bool {
		return list[a].Probability > list[b].Probability
	})
}

// Freeze scores every provided triple of the dataset once and caches the
// results, turning Probability, Score and Fuse into O(1) table reads. It is
// idempotent and safe for concurrent use; Fuse calls it implicitly, so a
// model that has fused once serves all subsequent reads from the index.
// Concurrent readers during the freeze take the compute path and observe
// the same values (the tables hold the algorithm's outputs verbatim).
func (f *Fuser) Freeze() {
	f.fr.once.Do(func() {
		n := f.d.NumTriples()
		var ids []TripleID
		for i := 0; i < n; i++ {
			if len(f.d.Providers(TripleID(i))) > 0 {
				ids = append(ids, TripleID(i))
			}
		}
		scores := f.scoreModel(ids)
		probs := make([]float64, n)
		provided := make([]bool, n)
		accepted := make([]bool, n)
		for i, id := range ids {
			p := scores[i]
			probs[id] = p
			provided[id] = true
			if f.decideScored(id, p) {
				accepted[id] = true
			}
		}
		f.fr.probs = probs
		f.fr.provided = provided
		f.fr.accepted = accepted
		f.fr.ready.Store(true)
	})
}

// FrozenScores freezes the model (if it is not already) and returns the
// dense score tables by TripleID: probability, whether the ID is in the
// fused result set, and the acceptance decision. The slices are the index
// itself, not copies — they are immutable and safe to share; callers must
// not mutate them. This is the zero-copy hand-off the serving layer builds
// its per-snapshot read index from.
func (f *Fuser) FrozenScores() (probs []float64, provided, accepted []bool) {
	f.Freeze()
	return f.fr.probs, f.fr.provided, f.fr.accepted
}

// Rebuild trains a new Fuser over d with this Fuser's options. A Fuser is
// immutable once built; Rebuild is the path by which a long-running system
// folds newly accumulated observations into a fresh model and atomically
// swaps it in (see internal/serve).
//
// Two options are re-derived rather than copied verbatim:
//
//   - Train is cleared: it holds TripleIDs of the original dataset, which
//     are meaningless in d, so the new model trains on every labeled triple
//     of d.
//   - A subject scope (NewScopeSubject) is re-indexed for d; its per-source
//     subject coverage is dataset-specific. ScopeGlobal and custom
//     dataset-agnostic scopes are kept as-is.
func (f *Fuser) Rebuild(d *Dataset) (*Fuser, error) {
	if d == nil {
		return nil, fmt.Errorf("corrfuse: Rebuild with nil dataset")
	}
	opts := f.opts
	opts.Train = nil
	if _, ok := opts.Scope.(*triple.ScopeSubject); ok {
		opts.Scope = NewScopeSubject(d)
	}
	return New(d, opts)
}

// Dataset returns the dataset the Fuser was trained on. The dataset must
// not be mutated while the Fuser is in use.
func (f *Fuser) Dataset() *Dataset { return f.d }

// Options returns the effective options the Fuser was built with (after
// defaulting).
func (f *Fuser) Options() Options { return f.opts }
