package corrfuse_test

import (
	"testing"

	"corrfuse"
	"corrfuse/internal/dataset"
)

// obama returns the Figure-1 running example through the public API surface.
func obama() *corrfuse.Dataset { return dataset.Obama() }

func TestFuseObamaPrecRec(t *testing.T) {
	d := obama()
	f, err := corrfuse.New(d, corrfuse.Options{Method: corrfuse.PrecRec})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Fuse()
	if err != nil {
		t.Fatal(err)
	}
	// Section 2.3 headline: precision 0.75, recall 1 → 8 accepted, 6 true.
	if len(res.Accepted) != 8 {
		t.Fatalf("accepted %d triples, want 8", len(res.Accepted))
	}
	trueAccepted := 0
	for _, st := range res.Accepted {
		id, _ := d.TripleID(st.Triple)
		if d.Label(id) == corrfuse.True {
			trueAccepted++
		}
	}
	if trueAccepted != 6 {
		t.Errorf("true accepted = %d, want 6 (precision 0.75)", trueAccepted)
	}
	if len(res.All) != 10 {
		t.Errorf("all = %d, want 10", len(res.All))
	}
	// Ranking is descending.
	for i := 1; i < len(res.All); i++ {
		if res.All[i].Probability > res.All[i-1].Probability {
			t.Fatal("result not sorted by probability")
		}
	}
}

func TestFuseObamaCorrBeatsPrecRec(t *testing.T) {
	d := obama()
	run := func(m corrfuse.Method) (prec, rec float64) {
		f, err := corrfuse.New(d, corrfuse.Options{Method: m})
		if err != nil {
			t.Fatal(err)
		}
		res, err := f.Fuse()
		if err != nil {
			t.Fatal(err)
		}
		tp := 0
		for _, st := range res.Accepted {
			id, _ := d.TripleID(st.Triple)
			if d.Label(id) == corrfuse.True {
				tp++
			}
		}
		if len(res.Accepted) == 0 {
			return 0, 0
		}
		return float64(tp) / float64(len(res.Accepted)), float64(tp) / 6
	}
	pIndep, _ := run(corrfuse.PrecRec)
	pCorr, rCorr := run(corrfuse.PrecRecCorr)
	if pCorr < pIndep {
		t.Errorf("correlation-aware precision %v should be >= independent %v", pCorr, pIndep)
	}
	// Section 2.3: the correlation model reaches precision 1 here.
	if pCorr != 1 {
		t.Errorf("PrecRecCorr precision = %v, want 1 (paper §2.3)", pCorr)
	}
	if rCorr < 0.8 {
		t.Errorf("PrecRecCorr recall = %v, want ≈ 0.83", rCorr)
	}
}

func TestAllMethodsRun(t *testing.T) {
	d := obama()
	methods := []corrfuse.Method{
		corrfuse.PrecRec, corrfuse.PrecRecCorr, corrfuse.PrecRecCorrAggressive,
		corrfuse.PrecRecCorrElastic, corrfuse.UnionK, corrfuse.ThreeEstimates, corrfuse.LTM,
	}
	for _, m := range methods {
		f, err := corrfuse.New(d, corrfuse.Options{Method: m})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if f.MethodName() == "" {
			t.Errorf("%v: empty method name", m)
		}
		res, err := f.Fuse()
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		for _, st := range res.All {
			if st.Probability < 0 || st.Probability > 1 {
				t.Errorf("%v: probability %v out of range", m, st.Probability)
			}
		}
	}
}

func TestProbabilityAndDecide(t *testing.T) {
	d := obama()
	f, err := corrfuse.New(d, corrfuse.Options{Method: corrfuse.PrecRec})
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := dataset.ObamaTriple(2) // false triple
	p, ok := f.Probability(t2)
	if !ok {
		t.Fatal("t2 should be known")
	}
	if p >= 0.5 {
		t.Errorf("Pr(t2) = %v, want < 0.5", p)
	}
	if acc, known := f.Decide(t2); !known || acc {
		t.Errorf("Decide(t2) = (%v, %v), want (false, true)", acc, known)
	}
	unknown := corrfuse.Triple{Subject: "nobody", Predicate: "none", Object: "x"}
	if _, ok := f.Probability(unknown); ok {
		t.Error("unknown triple reported known")
	}
	if _, known := f.Decide(unknown); known {
		t.Error("unknown triple decided")
	}
}

func TestOptionValidation(t *testing.T) {
	if _, err := corrfuse.New(nil, corrfuse.Options{}); err == nil {
		t.Error("nil dataset should fail")
	}
	d := obama()
	if _, err := corrfuse.New(d, corrfuse.Options{Alpha: 1.5}); err == nil {
		t.Error("invalid alpha should fail")
	}
	if _, err := corrfuse.New(d, corrfuse.Options{Method: corrfuse.Method(99)}); err == nil {
		t.Error("unknown method should fail")
	}
	if _, err := corrfuse.New(d, corrfuse.Options{Method: corrfuse.UnionK, UnionK: 300}); err == nil {
		t.Error("invalid UnionK should fail")
	}
	// No labels → supervised methods fail.
	empty := corrfuse.NewDataset()
	s := empty.AddSource("A")
	empty.Observe(s, corrfuse.Triple{Subject: "e", Predicate: "p", Object: "v"})
	if _, err := corrfuse.New(empty, corrfuse.Options{Method: corrfuse.PrecRec}); err == nil {
		t.Error("supervised method without labels should fail")
	}
	// Unsupervised methods are fine without labels.
	if _, err := corrfuse.New(empty, corrfuse.Options{Method: corrfuse.UnionK}); err != nil {
		t.Errorf("UnionK without labels: %v", err)
	}
}

func TestClusteringModes(t *testing.T) {
	d, err := dataset.SimulatedBook(5)
	if err != nil {
		t.Fatal(err)
	}
	// ClusterNever with 333 sources and the exact method must fail.
	_, err = corrfuse.New(d, corrfuse.Options{
		Method:     corrfuse.PrecRecCorr,
		Clustering: corrfuse.ClusterNever,
	})
	if err == nil {
		t.Error("exact over 333 sources without clustering should fail")
	}
	// ClusterAuto clusters and succeeds.
	f, err := corrfuse.New(d, corrfuse.Options{
		Method:         corrfuse.PrecRecCorr,
		Scope:          corrfuse.NewScopeSubject(d),
		Smoothing:      0.5,
		MaxClusterSize: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Clusters() == nil {
		t.Error("auto mode should have produced clusters")
	}
	// Elastic without clustering works at any width.
	if _, err := corrfuse.New(d, corrfuse.Options{
		Method:     corrfuse.PrecRecCorrElastic,
		Clustering: corrfuse.ClusterNever,
		Smoothing:  0.5,
	}); err != nil {
		t.Errorf("elastic without clustering: %v", err)
	}
}

func TestMethodString(t *testing.T) {
	names := map[corrfuse.Method]string{
		corrfuse.PrecRec:               "PrecRec",
		corrfuse.PrecRecCorr:           "PrecRecCorr",
		corrfuse.PrecRecCorrElastic:    "PrecRecCorr-Elastic",
		corrfuse.PrecRecCorrAggressive: "PrecRecCorr-Aggressive",
		corrfuse.UnionK:                "Union-K",
		corrfuse.ThreeEstimates:        "3-Estimates",
		corrfuse.LTM:                   "LTM",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d.String() = %q, want %q", m, m.String(), want)
		}
	}
	if corrfuse.Method(42).String() == "" {
		t.Error("unknown method should render")
	}
}

func TestTrainSplit(t *testing.T) {
	// Using only half the gold labels for training still fuses sensibly.
	d, err := dataset.SimulatedRestaurant(9, 4)
	if err != nil {
		t.Fatal(err)
	}
	labeled := d.Labeled()
	train := labeled[:len(labeled)/2]
	f, err := corrfuse.New(d, corrfuse.Options{Method: corrfuse.PrecRecCorr, Train: train})
	if err != nil {
		t.Fatal(err)
	}
	res, err := f.Fuse()
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate on the held-out half.
	held := map[corrfuse.TripleID]bool{}
	for _, id := range labeled[len(labeled)/2:] {
		held[id] = true
	}
	tp, fp := 0, 0
	for _, st := range res.Accepted {
		if !held[st.ID] {
			continue
		}
		if d.Label(st.ID) == corrfuse.True {
			tp++
		} else {
			fp++
		}
	}
	if tp == 0 {
		t.Fatal("no held-out true triples accepted")
	}
	if prec := float64(tp) / float64(tp+fp); prec < 0.7 {
		t.Errorf("held-out precision = %v, want >= 0.7", prec)
	}
}

func TestClusterAlwaysMode(t *testing.T) {
	d, err := dataset.SimulatedReVerb(11)
	if err != nil {
		t.Fatal(err)
	}
	f, err := corrfuse.New(d, corrfuse.Options{
		Method:     corrfuse.PrecRecCorr,
		Alpha:      0.26,
		Clustering: corrfuse.ClusterAlways,
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Clusters() == nil {
		t.Error("ClusterAlways should produce a partition")
	}
	if _, err := f.Fuse(); err != nil {
		t.Fatal(err)
	}
}

func TestParallelismOption(t *testing.T) {
	d, err := dataset.SimulatedReVerb(13)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := corrfuse.New(d, corrfuse.Options{Method: corrfuse.PrecRecCorr, Alpha: 0.26, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := corrfuse.New(d, corrfuse.Options{Method: corrfuse.PrecRecCorr, Alpha: 0.26, Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := serial.Fuse()
	if err != nil {
		t.Fatal(err)
	}
	rp, err := parallel.Fuse()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs.All) != len(rp.All) || len(rs.Accepted) != len(rp.Accepted) {
		t.Fatal("parallel and serial fusion disagree on set sizes")
	}
	for i := range rs.All {
		if rs.All[i].Probability != rp.All[i].Probability {
			t.Fatal("parallel and serial fusion disagree on probabilities")
		}
	}
}

func TestElasticLevelOption(t *testing.T) {
	d := obama()
	for _, level := range []int{1, 2, 5} {
		f, err := corrfuse.New(d, corrfuse.Options{Method: corrfuse.PrecRecCorrElastic, ElasticLevel: level})
		if err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
		if _, err := f.Fuse(); err != nil {
			t.Fatalf("level %d: %v", level, err)
		}
	}
}
