// Package lint is a stdlib-only analysis framework with the shape of
// golang.org/x/tools/go/analysis: analyzers receive a typed package (a
// Pass) and report position-anchored diagnostics. The build container
// pins the main module to zero third-party dependencies, so instead of
// depending on x/tools this package re-implements the thin slice of it
// corrfuselint needs — a loader (load.go), the Analyzer/Pass contract
// (this file), and //lint:ignore suppression (ignore.go).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named check. Run inspects a single package through its
// Pass and reports findings; it is called once per target package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. Lowercase, no spaces.
	Name string
	// Doc is the one-line invariant the analyzer guards.
	Doc string
	Run func(*Pass) error
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Pass carries one typed package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's non-test files, parsed with comments.
	Files []*ast.File
	// PkgPath is the package's import path (fixture modules get their
	// own paths; path-scoped analyzers match on suffixes/substrings).
	PkgPath string
	Pkg     *types.Package
	Info    *types.Info
	// Marked reports whether the declaration of obj carries the given
	// //corrfuse:<marker> directive in its doc comment, program-wide
	// (annotations on any loaded target package are visible).
	Marked func(obj types.Object, marker string) bool

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies every analyzer to every target package of the program and
// returns the surviving diagnostics sorted by position: findings on
// lines carrying (or immediately following) a matching //lint:ignore
// directive are dropped, and malformed directives are themselves
// reported. The error aggregates analyzer failures, not findings.
func (prog *Program) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range prog.Targets() {
		ignores, bad := scanIgnores(prog.Fset, pkg.Files)
		diags = append(diags, bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     prog.Fset,
				Files:    pkg.Files,
				PkgPath:  pkg.Path,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				Marked:   prog.Marked,
			}
			pass.report = func(d Diagnostic) {
				if ignores.match(d) {
					return
				}
				diags = append(diags, d)
			}
			if err := a.Run(pass); err != nil {
				return diags, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// WalkStack traverses root in source order calling fn with each node and
// its ancestor stack (outermost first, not including n). Returning false
// prunes the subtree below n.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
			return true
		}
		return false
	})
}
