package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one loaded, typechecked package.
type Package struct {
	Path  string
	Dir   string
	Files []*ast.File
	Types *types.Package
	// Info is populated for target (pattern-matched) packages only;
	// dependency packages are typechecked API-only.
	Info   *types.Info
	Target bool
}

// Program is a loaded set of packages: the targets the patterns matched
// plus every dependency, all typechecked against one FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	byPath map[string]*Package
	// marked holds the objects whose declaration doc carries a
	// //corrfuse:<marker> directive, keyed by marker name.
	marked map[string]map[types.Object]bool
}

// Targets returns the pattern-matched packages in load order.
func (prog *Program) Targets() []*Package {
	var out []*Package
	for _, p := range prog.Packages {
		if p.Target {
			out = append(out, p)
		}
	}
	return out
}

// Marked reports whether obj's declaration carries //corrfuse:<marker>.
func (prog *Program) Marked(obj types.Object, marker string) bool {
	return obj != nil && prog.marked[marker][obj]
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir (module-aware, workspace off, cgo off so
// every dependency resolves to pure-Go files the typechecker can read),
// parses every package, and typechecks the whole graph in the
// dependency order `go list -deps` guarantees. Dependencies are checked
// API-only (IgnoreFuncBodies); targets get full bodies and types.Info.
//
// GOWORK and CGO_ENABLED are forced in the process environment, not just
// the subprocess: go/build shells back out to the go command on module
// import paths and must see the same view.
func Load(dir string, patterns []string) (*Program, error) {
	os.Setenv("GOWORK", "off")
	os.Setenv("CGO_ENABLED", "0")
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-deps", "-json=ImportPath,Dir,Name,GoFiles,Imports,ImportMap,Standard,DepOnly,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var listed []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		lp := &listPkg{}
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		listed = append(listed, lp)
	}

	prog := &Program{
		Fset:   token.NewFileSet(),
		byPath: make(map[string]*Package, len(listed)),
		marked: make(map[string]map[types.Object]bool),
	}
	imp := &progImporter{prog: prog}
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			prog.byPath["unsafe"] = &Package{Path: "unsafe", Types: types.Unsafe}
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg := &Package{Path: lp.ImportPath, Dir: lp.Dir, Target: !lp.DepOnly}
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(prog.Fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", filepath.Join(lp.Dir, name), err)
			}
			pkg.Files = append(pkg.Files, f)
		}
		if pkg.Target {
			pkg.Info = &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Defs:       make(map[*ast.Ident]types.Object),
				Uses:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
			}
		}
		imp.current = lp
		var tcErrs []error
		conf := types.Config{
			Importer:         imp,
			IgnoreFuncBodies: !pkg.Target,
			Error:            func(err error) { tcErrs = append(tcErrs, err) },
		}
		tpkg, err := conf.Check(lp.ImportPath, prog.Fset, pkg.Files, pkg.Info)
		if len(tcErrs) > 0 {
			return nil, fmt.Errorf("typechecking %s: %v", lp.ImportPath, tcErrs[0])
		}
		if err != nil {
			return nil, fmt.Errorf("typechecking %s: %v", lp.ImportPath, err)
		}
		pkg.Types = tpkg
		prog.byPath[lp.ImportPath] = pkg
		prog.Packages = append(prog.Packages, pkg)
	}
	prog.scanMarkers()
	return prog, nil
}

// progImporter resolves imports against the already-typechecked graph,
// honoring the importing package's vendor ImportMap (stdlib packages
// import vendored golang.org/x paths under remapped names).
type progImporter struct {
	prog    *Program
	current *listPkg
}

func (imp *progImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := imp.current.ImportMap[path]; ok {
		path = mapped
	}
	p, ok := imp.prog.byPath[path]
	if !ok || p.Types == nil {
		return nil, fmt.Errorf("import %q not in dependency graph (importing %s)", path, imp.current.ImportPath)
	}
	return p.Types, nil
}

// scanMarkers indexes //corrfuse:<marker> doc directives on function
// declarations of target packages, so analyzers can look annotations up
// by types.Object across package boundaries.
func (prog *Program) scanMarkers() {
	for _, pkg := range prog.Targets() {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if ok && fd.Doc != nil {
					obj := pkg.Info.Defs[fd.Name]
					if obj == nil {
						continue
					}
					for _, c := range fd.Doc.List {
						rest, ok := strings.CutPrefix(c.Text, "//corrfuse:")
						if !ok {
							continue
						}
						marker, _, _ := strings.Cut(rest, " ")
						marker = strings.TrimSpace(marker)
						if marker == "" {
							continue
						}
						if prog.marked[marker] == nil {
							prog.marked[marker] = make(map[types.Object]bool)
						}
						prog.marked[marker][obj] = true
					}
				}
			}
		}
	}
}
