package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreSet maps file → line → analyzer names suppressed on that line.
type ignoreSet map[string]map[int]map[string]bool

func (s ignoreSet) match(d Diagnostic) bool {
	names := s[d.Pos.Filename][d.Pos.Line]
	return names["*"] || names[d.Analyzer]
}

// scanIgnores collects //lint:ignore directives from a package's files.
//
// Syntax (staticcheck-compatible):
//
//	//lint:ignore analyzer1,analyzer2 reason the finding is intentional
//
// The directive suppresses matching diagnostics on its own line and on
// the line directly below it, so it works both inline after a statement
// and as a standalone comment above one. A directive without a reason
// is itself reported: a suppression whose justification nobody wrote
// down is exactly the silent exception this tool exists to prevent.
func scanIgnores(fset *token.FileSet, files []*ast.File) (ignoreSet, []Diagnostic) {
	set := make(ignoreSet)
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				body, ok := strings.CutPrefix(rest, "lint:ignore")
				if !ok || (body != "" && body[0] != ' ' && body[0] != '\t') {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(body)
				if len(fields) < 2 {
					bad = append(bad, Diagnostic{
						Pos:      pos,
						Analyzer: "lintdirective",
						Message:  "malformed //lint:ignore: need analyzer names and a reason",
					})
					continue
				}
				lines := set[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					set[pos.Filename] = lines
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					names := lines[line]
					if names == nil {
						names = make(map[string]bool)
						lines[line] = names
					}
					for _, n := range strings.Split(fields[0], ",") {
						if n = strings.TrimSpace(n); n != "" {
							names[n] = true
						}
					}
				}
			}
		}
	}
	return set, bad
}
